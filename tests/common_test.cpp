// Unit tests for the common module: types, rng, math, csv, errors.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace trustrate {
namespace {

// ---------------------------------------------------------------- types

TEST(Types, SortByTimeEstablishesInvariant) {
  RatingSeries s{{3.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {1.0, 0.7, 2, 0, RatingLabel::kHonest},
                 {2.0, 0.2, 3, 0, RatingLabel::kHonest}};
  EXPECT_FALSE(is_time_sorted(s));
  sort_by_time(s);
  EXPECT_TRUE(is_time_sorted(s));
  EXPECT_DOUBLE_EQ(s.front().time, 1.0);
  EXPECT_DOUBLE_EQ(s.back().time, 3.0);
}

TEST(Types, SortByTimeBreaksTiesByRater) {
  RatingSeries s{{1.0, 0.5, 9, 0, RatingLabel::kHonest},
                 {1.0, 0.7, 2, 0, RatingLabel::kHonest}};
  sort_by_time(s);
  EXPECT_EQ(s[0].rater, 2u);
  EXPECT_EQ(s[1].rater, 9u);
}

TEST(Types, ValuesOfPreservesOrder) {
  RatingSeries s{{1.0, 0.1, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.9, 2, 0, RatingLabel::kHonest}};
  const auto v = values_of(s);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_DOUBLE_EQ(v[1], 0.9);
}

TEST(Types, IsUnfairClassifiesLabels) {
  EXPECT_FALSE(is_unfair(RatingLabel::kHonest));
  EXPECT_FALSE(is_unfair(RatingLabel::kCareless));
  EXPECT_TRUE(is_unfair(RatingLabel::kCollaborative1));
  EXPECT_TRUE(is_unfair(RatingLabel::kCollaborative2));
}

TEST(Types, CountUnfair) {
  RatingSeries s{{1.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.5, 2, 0, RatingLabel::kCollaborative1},
                 {3.0, 0.5, 3, 0, RatingLabel::kCollaborative2},
                 {4.0, 0.5, 4, 0, RatingLabel::kCareless}};
  EXPECT_EQ(count_unfair(s), 2u);
}

TEST(Types, EmptySeriesIsSorted) {
  EXPECT_TRUE(is_time_sorted({}));
  EXPECT_EQ(count_unfair({}), 0u);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyMatch) {
  Rng rng(123);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, GaussianZeroSigmaIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.gaussian(0.3, 0.0), 0.3);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(9);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliClampsOutOfRangeProbability) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(77);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children differ from each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.uniform() == child2.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(77);
  Rng b(77);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(ca.uniform(), cb.uniform());
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(3.0, 2.0), PreconditionError);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), PreconditionError);
  EXPECT_THROW(rng.poisson(-1.0), PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

// ----------------------------------------------------------------- math

TEST(Math, ClampUnit) {
  EXPECT_DOUBLE_EQ(clamp_unit(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp_unit(0.25), 0.25);
  EXPECT_DOUBLE_EQ(clamp_unit(1.5), 1.0);
}

TEST(Math, QuantizeElevenLevelsWithZero) {
  // Paper's illustrative scale: 0, 0.1, ..., 1.0.
  EXPECT_NEAR(quantize_unit(0.03, 11, true), 0.0, 1e-12);
  EXPECT_NEAR(quantize_unit(0.07, 11, true), 0.1, 1e-12);
  EXPECT_NEAR(quantize_unit(0.55, 11, true), 0.6, 1e-12);  // ties round up
  EXPECT_NEAR(quantize_unit(1.0, 11, true), 1.0, 1e-12);
}

TEST(Math, QuantizeTenLevelsNoZero) {
  // Paper's §IV scale: 0.1, 0.2, ..., 1.0 (no zero level).
  EXPECT_NEAR(quantize_unit(0.0, 10, false), 0.1, 1e-12);
  EXPECT_NEAR(quantize_unit(0.02, 10, false), 0.1, 1e-12);
  EXPECT_NEAR(quantize_unit(0.97, 10, false), 1.0, 1e-12);
  EXPECT_NEAR(quantize_unit(0.43, 10, false), 0.4, 1e-12);
}

TEST(Math, QuantizeRejectsSilly) {
  EXPECT_THROW(quantize_unit(0.5, 1, true), PreconditionError);
}

TEST(Math, MeanOf) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_THROW(mean_of({}), PreconditionError);
}

TEST(Math, DotAndEnergy) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(energy(a), 14.0);
}

TEST(Math, CompensatedSumHandlesCancellation) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(1e16);
    xs.push_back(1.0);
    xs.push_back(-1e16);
  }
  EXPECT_NEAR(compensated_sum(xs), 1000.0, 1e-6);
}

TEST(Math, Linspace) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_DOUBLE_EQ(g[4], 1.0);
}

// ------------------------------------------------------------------ csv

TEST(Csv, SplitAndJoinRoundTrip) {
  const std::string line = "1,2.5,hello";
  const auto fields = split_csv_line(line);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(join_csv(fields), line);
}

TEST(Csv, SplitHandlesEmptyFields) {
  const auto fields = split_csv_line("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Csv, ParseDoubleRejectsGarbage) {
  EXPECT_DOUBLE_EQ(parse_double_field("2.5", "test"), 2.5);
  EXPECT_THROW(parse_double_field("2.5x", "test"), DataError);
  EXPECT_THROW(parse_double_field("", "test"), DataError);
}

TEST(Csv, ParseIntRejectsNegativeAndGarbage) {
  EXPECT_EQ(parse_int_field("42", "test"), 42);
  EXPECT_THROW(parse_int_field("-1", "test"), DataError);
  EXPECT_THROW(parse_int_field("1.5", "test"), DataError);
}

TEST(Csv, ReadCsvSkipsBlankLinesAndCr) {
  std::istringstream in("a,b\r\n\nc,d\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

// ---------------------------------------------------------------- error

TEST(Error, PreconditionMessageNamesExpression) {
  try {
    TRUSTRATE_EXPECTS(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
  }
}

}  // namespace
}  // namespace trustrate
