// Unit tests for the core module: metrics and the TrustEnhancedRatingSystem
// pipeline (filter -> Procedure 1 -> Procedure 2 -> aggregation).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "core/system.hpp"

namespace trustrate::core {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, RatiosFromConfusionCounts) {
  DetectionMetrics m{.true_positive = 8, .false_positive = 3,
                     .false_negative = 2, .true_negative = 87};
  EXPECT_DOUBLE_EQ(m.detection_ratio(), 0.8);
  EXPECT_DOUBLE_EQ(m.false_alarm_ratio(), 3.0 / 90.0);
}

TEST(Metrics, EmptyClassesGiveZero) {
  DetectionMetrics m;
  EXPECT_DOUBLE_EQ(m.detection_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.false_alarm_ratio(), 0.0);
}

TEST(Metrics, AccumulationAddsCounts) {
  DetectionMetrics a{.true_positive = 1, .false_positive = 2,
                     .false_negative = 3, .true_negative = 4};
  DetectionMetrics b = a;
  b += a;
  EXPECT_EQ(b.true_positive, 2u);
  EXPECT_EQ(b.true_negative, 8u);
}

TEST(Metrics, ScoreRatingFlags) {
  RatingSeries s{{1.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.5, 2, 0, RatingLabel::kCollaborative2},
                 {3.0, 0.5, 3, 0, RatingLabel::kCollaborative2},
                 {4.0, 0.5, 4, 0, RatingLabel::kCareless}};
  const std::vector<bool> flagged{true, true, false, false};
  const auto m = score_rating_flags(s, flagged);
  EXPECT_EQ(m.true_positive, 1u);
  EXPECT_EQ(m.false_positive, 1u);
  EXPECT_EQ(m.false_negative, 1u);
  EXPECT_EQ(m.true_negative, 1u);
}

TEST(Metrics, ScoreRatingFlagsSizeMismatchThrows) {
  RatingSeries s{{1.0, 0.5, 1, 0, RatingLabel::kHonest}};
  EXPECT_THROW(score_rating_flags(s, {}), PreconditionError);
}

TEST(Metrics, ScoreRaterDetection) {
  const std::vector<RaterId> all{1, 2, 3, 4};
  const std::unordered_set<RaterId> unfair{1, 2};
  const std::unordered_set<RaterId> detected{2, 3};
  const auto m = score_rater_detection(all, unfair, detected);
  EXPECT_EQ(m.true_positive, 1u);   // 2
  EXPECT_EQ(m.false_negative, 1u);  // 1
  EXPECT_EQ(m.false_positive, 1u);  // 3
  EXPECT_EQ(m.true_negative, 1u);   // 4
}

// ----------------------------------------------------------------- system

// Honest ratings for one product over [t0, t1). The rating spread matches
// the SIV reliable/careless mixture the default threshold is calibrated
// for (pooled sigma ~0.25); a uniformly tighter population would need a
// lower threshold.
ProductObservation honest_product(Rng& rng, ProductId id, double t0, double t1,
                                  double quality, double per_day = 8.0,
                                  RaterId pool = 200) {
  ProductObservation obs;
  obs.product = id;
  obs.t_start = t0;
  obs.t_end = t1;
  for (double t = t0 + rng.exponential(per_day); t < t1;
       t += rng.exponential(per_day)) {
    obs.ratings.push_back(
        {t, quantize_unit(clamp_unit(rng.gaussian(quality, 0.25)), 10, false),
         static_cast<RaterId>(rng.uniform_int(0, pool - 1)), id,
         RatingLabel::kHonest});
  }
  sort_by_time(obs.ratings);
  return obs;
}

// Adds a tight collaborative block from dedicated rater ids.
void add_attack(ProductObservation& obs, Rng& rng, double t0, double t1,
                double mean, double per_day, RaterId first) {
  RaterId next = first;
  for (double t = t0 + rng.exponential(per_day); t < t1;
       t += rng.exponential(per_day)) {
    obs.ratings.push_back(
        {t, quantize_unit(clamp_unit(rng.gaussian(mean, 0.02)), 10, false),
         next++, obs.product, RatingLabel::kCollaborative2});
  }
  sort_by_time(obs.ratings);
}

SystemConfig test_config() {
  SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

TEST(System, FreshSystemHasNeutralTrust) {
  TrustEnhancedRatingSystem system(test_config());
  EXPECT_DOUBLE_EQ(system.trust(5), 0.5);
  EXPECT_TRUE(system.malicious().empty());
  EXPECT_EQ(system.epochs_processed(), 0u);
}

TEST(System, HonestEpochRaisesTrust) {
  TrustEnhancedRatingSystem system(test_config());
  Rng rng(500);
  const auto obs = honest_product(rng, 0, 0.0, 30.0, 0.5);
  system.process_epoch(std::vector<ProductObservation>{obs});
  EXPECT_EQ(system.epochs_processed(), 1u);
  double mean_trust = 0.0;
  std::size_t n = 0;
  for (const auto& [id, rec] : system.trust_store().records()) {
    mean_trust += rec.trust();
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_GT(mean_trust / static_cast<double>(n), 0.5);
}

TEST(System, AttackedEpochSinksAttackerTrust) {
  TrustEnhancedRatingSystem system(test_config());
  Rng rng(501);
  // Several months of attacks by the same rater block.
  for (int month = 0; month < 6; ++month) {
    const double t0 = month * 30.0;
    auto obs = honest_product(rng, static_cast<ProductId>(month), t0, t0 + 30.0,
                              0.5);
    add_attack(obs, rng, t0 + 5.0, t0 + 15.0, 0.65, 16.0, 1000);
    system.process_epoch(std::vector<ProductObservation>{obs});
  }
  // Attacker ids start at 1000 and were reused across months.
  double attacker_trust = 0.0;
  std::size_t attackers = 0;
  double honest_trust = 0.0;
  std::size_t honest = 0;
  for (const auto& [id, rec] : system.trust_store().records()) {
    if (id >= 1000) {
      attacker_trust += rec.trust();
      ++attackers;
    } else {
      honest_trust += rec.trust();
      ++honest;
    }
  }
  ASSERT_GT(attackers, 0u);
  ASSERT_GT(honest, 0u);
  EXPECT_LT(attacker_trust / attackers, honest_trust / honest);
}

TEST(System, ReportShapesAreConsistent) {
  TrustEnhancedRatingSystem system(test_config());
  Rng rng(502);
  auto obs = honest_product(rng, 0, 0.0, 30.0, 0.5);
  add_attack(obs, rng, 5.0, 15.0, 0.65, 16.0, 1000);
  const auto report =
      system.process_epoch(std::vector<ProductObservation>{obs});
  ASSERT_EQ(report.products.size(), 1u);
  const auto& pr = report.products[0];
  EXPECT_EQ(pr.flagged.size(), obs.ratings.size());
  EXPECT_EQ(pr.filter_outcome.kept.size() + pr.filter_outcome.removed.size(),
            obs.ratings.size());
  EXPECT_EQ(pr.kept.size(), pr.filter_outcome.kept.size());
  // The detector ran on the raw series? No: default is filtered input.
  EXPECT_EQ(pr.suspicion.in_suspicious_window.size(), pr.kept.size());
}

TEST(System, DetectorOnRawOptionChangesIndexBase) {
  SystemConfig cfg = test_config();
  cfg.detector_on_filtered = false;
  TrustEnhancedRatingSystem system(cfg);
  Rng rng(503);
  auto obs = honest_product(rng, 0, 0.0, 30.0, 0.5);
  const auto report =
      system.process_epoch(std::vector<ProductObservation>{obs});
  EXPECT_EQ(report.products[0].suspicion.in_suspicious_window.size(),
            obs.ratings.size());
}

TEST(System, DisabledStagesKeepEverythingNeutral) {
  SystemConfig cfg = test_config();
  cfg.enable_filter = false;
  cfg.enable_ar_detector = false;
  TrustEnhancedRatingSystem system(cfg);
  Rng rng(504);
  auto obs = honest_product(rng, 0, 0.0, 30.0, 0.5);
  add_attack(obs, rng, 5.0, 15.0, 0.65, 16.0, 1000);
  const auto report =
      system.process_epoch(std::vector<ProductObservation>{obs});
  EXPECT_TRUE(report.products[0].filter_outcome.removed.empty());
  EXPECT_EQ(report.rating_metrics.true_positive, 0u);
  // Without evidence of misbehaviour, everybody's trust rises.
  EXPECT_TRUE(system.malicious().empty());
}

TEST(System, AggregateUsesTrust) {
  TrustEnhancedRatingSystem system(test_config());
  Rng rng(505);
  // Build trust: attackers (ids >= 1000) misbehave for 6 epochs.
  for (int month = 0; month < 6; ++month) {
    const double t0 = month * 30.0;
    auto obs = honest_product(rng, static_cast<ProductId>(month), t0, t0 + 30.0,
                              0.5);
    add_attack(obs, rng, t0 + 5.0, t0 + 15.0, 0.65, 16.0, 1000);
    system.process_epoch(std::vector<ProductObservation>{obs});
  }
  // New product: honest say 0.5, known attackers say 0.9.
  RatingSeries ratings;
  for (int i = 0; i < 30; ++i) {
    ratings.push_back({180.0 + i * 0.5,
                       quantize_unit(clamp_unit(rng.gaussian(0.5, 0.2)), 10, false),
                       static_cast<RaterId>(i), 99, RatingLabel::kHonest});
  }
  for (int i = 0; i < 30; ++i) {
    ratings.push_back({180.0 + i * 0.5 + 0.1, 0.9,
                       static_cast<RaterId>(1000 + i), 99,
                       RatingLabel::kCollaborative2});
  }
  sort_by_time(ratings);
  const double weighted =
      system.aggregate_with(ratings, agg::AggregatorKind::kModifiedWeightedAverage);
  const double simple =
      system.aggregate_with(ratings, agg::AggregatorKind::kSimpleAverage);
  EXPECT_LT(weighted, simple);  // distrusted raters down-weighted
  EXPECT_NEAR(weighted, 0.5, 0.12);
}

TEST(System, AggregateEmptyThrows) {
  TrustEnhancedRatingSystem system(test_config());
  EXPECT_THROW(system.aggregate({}), PreconditionError);
}

TEST(System, RecommendationsFeedCombinedTrust) {
  TrustEnhancedRatingSystem system(test_config());
  Rng rng(506);
  // Rater 1 builds direct trust.
  auto obs = honest_product(rng, 0, 0.0, 30.0, 0.5, 8.0, /*pool=*/2);
  system.process_epoch(std::vector<ProductObservation>{obs});
  system.add_recommendation({/*from=*/0, /*about=*/42, /*score=*/1.0});
  EXPECT_GT(system.combined_trust(42), 0.5);
}

TEST(System, ForgettingFadesEvidence) {
  SystemConfig cfg = test_config();
  cfg.forgetting = 0.5;
  TrustEnhancedRatingSystem system(cfg);
  Rng rng(507);
  auto obs = honest_product(rng, 0, 0.0, 30.0, 0.5);
  system.process_epoch(std::vector<ProductObservation>{obs});
  const double after_one = system.trust(obs.ratings[0].rater);
  // An epoch with no activity fades everyone toward the prior.
  system.process_epoch({});
  system.process_epoch({});
  const double after_idle = system.trust(obs.ratings[0].rater);
  EXPECT_LT(std::abs(after_idle - 0.5), std::abs(after_one - 0.5));
}

TEST(System, ConfigValidation) {
  SystemConfig cfg = test_config();
  cfg.b = -1.0;
  EXPECT_THROW(TrustEnhancedRatingSystem{cfg}, PreconditionError);
  cfg = test_config();
  cfg.forgetting = 0.0;
  EXPECT_THROW(TrustEnhancedRatingSystem{cfg}, PreconditionError);
  cfg = test_config();
  cfg.malicious_threshold = 1.0;
  EXPECT_THROW(TrustEnhancedRatingSystem{cfg}, PreconditionError);
}

TEST(System, UnsortedProductRatingsRejected) {
  TrustEnhancedRatingSystem system(test_config());
  ProductObservation obs;
  obs.t_end = 30.0;
  obs.ratings = {{5.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {1.0, 0.5, 2, 0, RatingLabel::kHonest}};
  EXPECT_THROW(system.process_epoch(std::vector<ProductObservation>{obs}),
               PreconditionError);
}

}  // namespace
}  // namespace trustrate::core
