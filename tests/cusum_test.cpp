// Unit tests for the CUSUM change-point detector.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "detect/cusum_detector.hpp"

namespace trustrate::detect {
namespace {

RatingSeries shifted_series(Rng& rng, std::size_t before, std::size_t after,
                            double mu0, double mu1, double sigma) {
  RatingSeries s;
  for (std::size_t i = 0; i < before + after; ++i) {
    const double mean = i < before ? mu0 : mu1;
    s.push_back({static_cast<double>(i), clamp_unit(rng.gaussian(mean, sigma)),
                 static_cast<RaterId>(i), 0, RatingLabel::kHonest});
  }
  return s;
}

TEST(Cusum, NoAlarmOnStationaryStream) {
  Rng rng(1);
  const auto s = shifted_series(rng, 300, 0, 0.5, 0.5, 0.15);
  const CusumDetector det({.k = 0.5, .h = 8.0, .warmup = 30});
  const auto res = det.analyze(s);
  EXPECT_EQ(res.alarm_count(), 0u);
  EXPECT_NEAR(res.mu0, 0.5, 0.1);
}

TEST(Cusum, DetectsUpwardShift) {
  Rng rng(2);
  const auto s = shifted_series(rng, 100, 100, 0.5, 0.68, 0.15);
  const CusumDetector det({.k = 0.4, .h = 8.0, .warmup = 30});
  const auto res = det.analyze(s);
  ASSERT_GT(res.alarm_count(), 0u);
  // The first alarm comes after the shift begins and within a reasonable
  // delay (CUSUM's expected delay ~ h / (shift/sigma - k) samples).
  EXPECT_GE(res.first_alarm(), 100u);
  EXPECT_LE(res.first_alarm(), 160u);
}

TEST(Cusum, DetectsDownwardShift) {
  Rng rng(3);
  const auto s = shifted_series(rng, 100, 100, 0.6, 0.42, 0.15);
  const CusumDetector det({.k = 0.4, .h = 8.0, .warmup = 30});
  const auto res = det.analyze(s);
  ASSERT_GT(res.alarm_count(), 0u);
  EXPECT_GE(res.first_alarm(), 100u);
}

TEST(Cusum, BacktrackedMaskCoversShiftedBlock) {
  Rng rng(4);
  const auto s = shifted_series(rng, 100, 100, 0.5, 0.7, 0.12);
  const CusumDetector det({.k = 0.4, .h = 8.0, .warmup = 30});
  const auto res = det.analyze(s);
  std::size_t flagged_after_shift = 0;
  std::size_t flagged_before_shift = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!res.in_alarm[i]) continue;
    if (i >= 100) {
      ++flagged_after_shift;
    } else {
      ++flagged_before_shift;
    }
  }
  EXPECT_GT(flagged_after_shift, 50u);
  // Bounded contamination: most of the mask lies in the shifted block.
  EXPECT_GT(flagged_after_shift, 2 * flagged_before_shift);
}

TEST(Cusum, ShortSeriesProducesNoAlarms) {
  Rng rng(5);
  const auto s = shifted_series(rng, 10, 0, 0.5, 0.5, 0.15);
  const CusumDetector det({.k = 0.5, .h = 8.0, .warmup = 30});
  const auto res = det.analyze(s);
  EXPECT_EQ(res.alarm_count(), 0u);
  EXPECT_EQ(res.first_alarm(), s.size());
}

TEST(Cusum, RestartsAfterAlarm) {
  Rng rng(6);
  // Two separated shift episodes -> at least two alarms.
  RatingSeries s;
  std::size_t t = 0;
  auto extend = [&](std::size_t n, double mu) {
    for (std::size_t i = 0; i < n; ++i, ++t) {
      s.push_back({static_cast<double>(t), clamp_unit(rng.gaussian(mu, 0.1)),
                   static_cast<RaterId>(t), 0, RatingLabel::kHonest});
    }
  };
  extend(80, 0.5);
  extend(60, 0.75);
  extend(80, 0.5);
  extend(60, 0.75);
  const CusumDetector det({.k = 0.4, .h = 6.0, .warmup = 30});
  const auto res = det.analyze(s);
  EXPECT_GE(res.alarm_count(), 2u);
}

TEST(Cusum, SigmaFloorPreventsDivisionBlowup) {
  // Constant warmup (stddev 0) must not produce infinite z-scores.
  RatingSeries s;
  for (std::size_t i = 0; i < 60; ++i) {
    s.push_back({static_cast<double>(i), 0.5, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  const CusumDetector det({.k = 0.5, .h = 8.0, .warmup = 30, .min_sigma = 0.02});
  const auto res = det.analyze(s);
  EXPECT_DOUBLE_EQ(res.sigma0, 0.02);
  EXPECT_EQ(res.alarm_count(), 0u);
}

TEST(Cusum, ConfigValidation) {
  CusumConfig bad;
  bad.h = 0.0;
  EXPECT_THROW(CusumDetector{bad}, PreconditionError);
  bad = {};
  bad.warmup = 1;
  EXPECT_THROW(CusumDetector{bad}, PreconditionError);
  bad = {};
  bad.k = -0.1;
  EXPECT_THROW(CusumDetector{bad}, PreconditionError);
}

TEST(Cusum, RequiresSortedInput) {
  RatingSeries s{{5.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {1.0, 0.5, 2, 0, RatingLabel::kHonest}};
  const CusumDetector det{CusumConfig{}};
  EXPECT_THROW(det.analyze(s), PreconditionError);
}

}  // namespace
}  // namespace trustrate::detect
