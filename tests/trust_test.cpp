// Unit tests for the trust module: beta-trust records, Procedure 2 updates,
// forgetting, opinion algebra, recommendation propagation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trust/opinion.hpp"
#include "trust/propagation.hpp"
#include "trust/record.hpp"

namespace trustrate::trust {
namespace {

// ---------------------------------------------------------------- record

TEST(TrustRecord, FreshRecordIsNeutral) {
  TrustRecord r;
  EXPECT_DOUBLE_EQ(r.trust(), 0.5);
  EXPECT_DOUBLE_EQ(r.evidence(), 0.0);
}

TEST(TrustRecord, BetaMeanFormula) {
  TrustRecord r{.successes = 8.0, .failures = 2.0};
  EXPECT_DOUBLE_EQ(r.trust(), 9.0 / 12.0);
}

TEST(TrustRecord, TrustStaysInOpenUnitInterval) {
  TrustRecord all_bad{.successes = 0.0, .failures = 1000.0};
  TrustRecord all_good{.successes = 1000.0, .failures = 0.0};
  EXPECT_GT(all_bad.trust(), 0.0);
  EXPECT_LT(all_good.trust(), 1.0);
}

TEST(TrustRecord, FadeScalesEvidence) {
  TrustRecord r{.successes = 10.0, .failures = 5.0};
  r.fade(0.5);
  EXPECT_DOUBLE_EQ(r.successes, 5.0);
  EXPECT_DOUBLE_EQ(r.failures, 2.5);
}

TEST(TrustRecord, FadePreservesTrustValue) {
  // Fading scales S and F equally, so the mean moves toward the prior
  // only through the +1/+2 terms.
  TrustRecord r{.successes = 100.0, .failures = 50.0};
  const double before = r.trust();
  r.fade(0.9);
  // Ratio S:F unchanged; trust moves slightly toward 0.5.
  EXPECT_NEAR(r.successes / r.failures, 2.0, 1e-12);
  EXPECT_LT(std::abs(r.trust() - 0.5), std::abs(before - 0.5) + 1e-12);
}

TEST(TrustRecord, FadeRejectsBadFactor) {
  TrustRecord r;
  EXPECT_THROW(r.fade(1.5), PreconditionError);
  EXPECT_THROW(r.fade(-0.1), PreconditionError);
}

// ------------------------------------------------------------ procedure 2

TEST(Procedure2, CleanEpochAddsSuccesses) {
  TrustRecord r;
  update_record(r, {.ratings = 5, .filtered = 0, .suspicious = 0,
                    .suspicion_value = 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.successes, 5.0);
  EXPECT_DOUBLE_EQ(r.failures, 0.0);
  EXPECT_GT(r.trust(), 0.5);
}

TEST(Procedure2, FilteredRatingsBecomeFailures) {
  TrustRecord r;
  update_record(r, {.ratings = 4, .filtered = 3, .suspicious = 0,
                    .suspicion_value = 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.successes, 1.0);
  EXPECT_DOUBLE_EQ(r.failures, 3.0);
  EXPECT_LT(r.trust(), 0.5);
}

TEST(Procedure2, SuspicionWeightedByB) {
  TrustRecord r;
  update_record(r, {.ratings = 2, .filtered = 0, .suspicious = 1,
                    .suspicion_value = 0.5}, 2.0);
  EXPECT_DOUBLE_EQ(r.failures, 1.0);   // b * C = 2 * 0.5
  EXPECT_DOUBLE_EQ(r.successes, 1.0);  // n - f - s = 2 - 0 - 1
}

TEST(Procedure2, SuccessesNeverGoNegative) {
  TrustRecord r;
  // Overlapping windows can make s exceed n - f; clamp at zero.
  update_record(r, {.ratings = 1, .filtered = 1, .suspicious = 2,
                    .suspicion_value = 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(r.successes, 0.0);
  EXPECT_DOUBLE_EQ(r.failures, 2.0);
}

TEST(Procedure2, RejectsNegativeB) {
  TrustRecord r;
  EXPECT_THROW(update_record(r, {}, -1.0), PreconditionError);
}

TEST(Procedure2, RepeatedSuspicionDrivesTrustDown) {
  // The paper's core trust dynamic: a rater repeatedly active in
  // suspicious intervals loses trust even if never hard-filtered.
  TrustRecord r;
  for (int month = 0; month < 12; ++month) {
    update_record(r, {.ratings = 2, .filtered = 0, .suspicious = 1,
                      .suspicion_value = 0.6}, 4.0);
  }
  EXPECT_LT(r.trust(), 0.4);
}

// ----------------------------------------------------------------- store

TEST(TrustStore, UnknownRaterHasNeutralTrust) {
  TrustStore store;
  EXPECT_DOUBLE_EQ(store.trust(42), 0.5);
  EXPECT_EQ(store.size(), 0u);
}

TEST(TrustStore, UpdateCreatesRecord) {
  TrustStore store;
  store.update(7, {.ratings = 3}, 1.0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_GT(store.trust(7), 0.5);
}

TEST(TrustStore, BelowReturnsSortedMaliciousRaters) {
  TrustStore store;
  store.update(3, {.ratings = 2, .filtered = 2}, 1.0);   // bad
  store.update(1, {.ratings = 4, .filtered = 4}, 1.0);   // bad
  store.update(2, {.ratings = 10}, 1.0);                 // good
  const auto bad = store.below(0.5);
  ASSERT_EQ(bad.size(), 2u);
  EXPECT_EQ(bad[0], 1u);
  EXPECT_EQ(bad[1], 3u);
}

TEST(TrustStore, FadeAllAffectsEveryRecord) {
  TrustStore store;
  store.update(1, {.ratings = 10}, 1.0);
  store.update(2, {.ratings = 10}, 1.0);
  store.fade_all(0.5);
  EXPECT_DOUBLE_EQ(store.record(1).successes, 5.0);
  EXPECT_DOUBLE_EQ(store.record(2).successes, 5.0);
}

// --------------------------------------------------------------- opinion

TEST(Opinion, FromEvidenceMatchesBetaMapping) {
  const Opinion o = Opinion::from_evidence(8.0, 2.0);
  EXPECT_DOUBLE_EQ(o.belief, 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(o.disbelief, 2.0 / 12.0);
  EXPECT_DOUBLE_EQ(o.uncertainty, 2.0 / 12.0);
  EXPECT_TRUE(o.valid());
}

TEST(Opinion, NoEvidenceIsVacuous) {
  const Opinion o = Opinion::from_evidence(0.0, 0.0);
  EXPECT_DOUBLE_EQ(o.uncertainty, 1.0);
  EXPECT_DOUBLE_EQ(o.expectation(), 0.5);
}

TEST(Opinion, FromValueSplitsBeliefMass) {
  const Opinion o = Opinion::from_value(0.8, 0.2);
  EXPECT_NEAR(o.belief, 0.64, 1e-12);
  EXPECT_NEAR(o.disbelief, 0.16, 1e-12);
  EXPECT_NEAR(o.uncertainty, 0.2, 1e-12);
  EXPECT_TRUE(o.valid());
}

TEST(Opinion, ExpectationUsesBaseRate) {
  const Opinion o{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(o.expectation(0.5), 0.45);
  EXPECT_DOUBLE_EQ(o.expectation(0.0), 0.2);
}

TEST(Opinion, DiscountShrinksTowardUncertainty) {
  const Opinion full_trust{1.0, 0.0, 0.0};
  const Opinion no_trust{0.0, 1.0, 0.0};
  const Opinion statement = Opinion::from_value(0.9, 0.1);

  const Opinion kept = discount(full_trust, statement);
  EXPECT_NEAR(kept.belief, statement.belief, 1e-12);

  const Opinion dropped = discount(no_trust, statement);
  EXPECT_NEAR(dropped.uncertainty, 1.0, 1e-12);
  EXPECT_TRUE(dropped.valid());
}

TEST(Opinion, DiscountNeverIncreasesBelief) {
  for (double t : {0.1, 0.5, 0.9}) {
    const Opinion trust_op = Opinion::from_value(t, 0.1);
    const Opinion statement = Opinion::from_value(0.7, 0.2);
    const Opinion out = discount(trust_op, statement);
    EXPECT_LE(out.belief, statement.belief + 1e-12);
    EXPECT_TRUE(out.valid());
  }
}

TEST(Opinion, ConsensusReducesUncertainty) {
  const Opinion a = Opinion::from_evidence(3.0, 1.0);
  const Opinion b = Opinion::from_evidence(2.0, 2.0);
  const Opinion c = consensus(a, b);
  EXPECT_TRUE(c.valid());
  EXPECT_LT(c.uncertainty, a.uncertainty);
  EXPECT_LT(c.uncertainty, b.uncertainty);
}

TEST(Opinion, ConsensusIsCommutative) {
  const Opinion a = Opinion::from_evidence(5.0, 1.0);
  const Opinion b = Opinion::from_evidence(1.0, 4.0);
  const Opinion ab = consensus(a, b);
  const Opinion ba = consensus(b, a);
  EXPECT_NEAR(ab.belief, ba.belief, 1e-12);
  EXPECT_NEAR(ab.disbelief, ba.disbelief, 1e-12);
}

TEST(Opinion, ConsensusWithVacuousIsIdentity) {
  const Opinion a = Opinion::from_evidence(5.0, 2.0);
  const Opinion vac{0.0, 0.0, 1.0};
  const Opinion c = consensus(a, vac);
  EXPECT_NEAR(c.belief, a.belief, 1e-12);
  EXPECT_NEAR(c.disbelief, a.disbelief, 1e-12);
}

TEST(Opinion, ConsensusOfDogmaticOpinionsAverages) {
  const Opinion a{1.0, 0.0, 0.0};
  const Opinion b{0.0, 1.0, 0.0};
  const Opinion c = consensus(a, b);
  EXPECT_NEAR(c.belief, 0.5, 1e-12);
  EXPECT_NEAR(c.disbelief, 0.5, 1e-12);
}

TEST(Opinion, EvidenceConsensusMatchesPooledEvidence) {
  // Consensus of beta-evidence opinions equals the opinion of the pooled
  // evidence — the defining property of the mapping.
  const Opinion a = Opinion::from_evidence(3.0, 1.0);
  const Opinion b = Opinion::from_evidence(2.0, 4.0);
  const Opinion pooled = Opinion::from_evidence(5.0, 5.0);
  const Opinion c = consensus(a, b);
  EXPECT_NEAR(c.belief, pooled.belief, 1e-9);
  EXPECT_NEAR(c.uncertainty, pooled.uncertainty, 1e-9);
}

// ------------------------------------------------------------ propagation

TEST(Propagation, NoRecommendationsGiveVacuousOpinion) {
  TrustStore store;
  RecommendationBuffer buffer;
  const Opinion o = indirect_opinion(store, buffer, 9);
  EXPECT_DOUBLE_EQ(o.uncertainty, 1.0);
}

TEST(Propagation, TrustedRecommenderMovesOpinion) {
  TrustStore store;
  store.update(1, {.ratings = 20}, 1.0);  // rater 1 is trusted
  RecommendationBuffer buffer;
  buffer.add({1, 9, 1.0});  // rater 1 endorses rater 9
  const Opinion o = indirect_opinion(store, buffer, 9);
  EXPECT_GT(o.expectation(), 0.5);
}

TEST(Propagation, UntrustedRecommenderBarelyMoves) {
  TrustStore store;
  store.update(1, {.ratings = 20, .filtered = 20}, 1.0);  // distrusted
  RecommendationBuffer buffer;
  buffer.add({1, 9, 1.0});
  const Opinion o = indirect_opinion(store, buffer, 9);
  EXPECT_NEAR(o.expectation(), 0.5, 0.05);
}

TEST(Propagation, SelfRecommendationIgnored) {
  TrustStore store;
  store.update(9, {.ratings = 20}, 1.0);
  RecommendationBuffer buffer;
  buffer.add({9, 9, 1.0});
  const Opinion o = indirect_opinion(store, buffer, 9);
  EXPECT_DOUBLE_EQ(o.uncertainty, 1.0);
}

TEST(Propagation, CombinedTrustBlendsDirectAndIndirect) {
  TrustStore store;
  store.update(1, {.ratings = 20}, 1.0);                 // trusted recommender
  store.update(9, {.ratings = 4, .filtered = 2}, 1.0);   // middling direct
  RecommendationBuffer buffer;
  buffer.add({1, 9, 1.0});
  const double combined = combined_trust(store, buffer, 9);
  const double direct_only = store.trust(9);
  EXPECT_GT(combined, direct_only);  // endorsement helps
}

TEST(Propagation, BufferRejectsOutOfRangeScore) {
  RecommendationBuffer buffer;
  EXPECT_THROW(buffer.add({1, 2, 1.5}), PreconditionError);
}

TEST(Propagation, AboutFiltersBySubject) {
  RecommendationBuffer buffer;
  buffer.add({1, 9, 1.0});
  buffer.add({2, 9, 0.0});
  buffer.add({1, 5, 1.0});
  EXPECT_EQ(buffer.about(9).size(), 2u);
  EXPECT_EQ(buffer.about(5).size(), 1u);
  EXPECT_TRUE(buffer.about(77).empty());
}

}  // namespace
}  // namespace trustrate::trust
