// Unit tests for the forgetting schemes (Record Maintenance, paper §III-B).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trust/forgetting.hpp"

namespace trustrate::trust {
namespace {

TEST(Forgetting, EffectiveMemoryRoundTrips) {
  for (double epochs : {1.0, 2.0, 10.0, 20.0, 100.0}) {
    const double lambda = lambda_for_memory(epochs);
    EXPECT_NEAR(effective_memory_epochs(lambda), epochs, 1e-9);
  }
}

TEST(Forgetting, NoFadingMeansHugeMemory) {
  EXPECT_GT(effective_memory_epochs(1.0), 1e8);
}

TEST(Forgetting, KnownValues) {
  EXPECT_NEAR(effective_memory_epochs(0.95), 20.0, 1e-9);
  EXPECT_NEAR(lambda_for_memory(20.0), 0.95, 1e-9);
}

TEST(Forgetting, PreconditionChecks) {
  EXPECT_THROW(effective_memory_epochs(-0.1), PreconditionError);
  EXPECT_THROW(effective_memory_epochs(1.5), PreconditionError);
  EXPECT_THROW(lambda_for_memory(0.5), PreconditionError);
}

TEST(WindowedRecord, EmptyIsNeutral) {
  const WindowedTrustRecord r(5);
  EXPECT_DOUBLE_EQ(r.trust(), 0.5);
  EXPECT_EQ(r.epochs_retained(), 0u);
}

TEST(WindowedRecord, AccumulatesWithinWindow) {
  WindowedTrustRecord r(5);
  r.add_epoch(4.0, 0.0);
  r.add_epoch(4.0, 0.0);
  EXPECT_DOUBLE_EQ(r.successes(), 8.0);
  EXPECT_DOUBLE_EQ(r.trust(), 9.0 / 10.0);
}

TEST(WindowedRecord, OldEpochsFallOff) {
  WindowedTrustRecord r(2);
  r.add_epoch(0.0, 10.0);  // bad epoch
  r.add_epoch(5.0, 0.0);
  r.add_epoch(5.0, 0.0);   // bad epoch now outside the window
  EXPECT_DOUBLE_EQ(r.failures(), 0.0);
  EXPECT_DOUBLE_EQ(r.successes(), 10.0);
  EXPECT_EQ(r.epochs_retained(), 2u);
}

TEST(WindowedRecord, CompleteForgivenessAfterWindow) {
  // The scheme's defining difference from exponential fading: after
  // `window` clean epochs a past attack leaves no trace at all.
  WindowedTrustRecord windowed(3);
  TrustRecord faded{.successes = 0.0, .failures = 30.0};
  windowed.add_epoch(0.0, 30.0);
  for (int i = 0; i < 3; ++i) {
    windowed.add_epoch(2.0, 0.0);
    faded.fade(0.7);
    faded.successes += 2.0;
  }
  EXPECT_DOUBLE_EQ(windowed.failures(), 0.0);  // fully forgiven
  EXPECT_GT(faded.failures, 5.0);              // fading still remembers
  EXPECT_GT(windowed.trust(), faded.trust());
}

TEST(WindowedRecord, PreconditionChecks) {
  EXPECT_THROW(WindowedTrustRecord{0}, PreconditionError);
  WindowedTrustRecord r(2);
  EXPECT_THROW(r.add_epoch(-1.0, 0.0), PreconditionError);
}

}  // namespace
}  // namespace trustrate::trust
