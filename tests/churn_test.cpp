// Tests for marketplace population dynamics (churn) and campaign cadence.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"
#include "sim/marketplace.hpp"

namespace trustrate::sim {
namespace {

MarketplaceConfig small() {
  MarketplaceConfig cfg;
  cfg.reliable_raters = 60;
  cfg.careless_raters = 30;
  cfg.pc_raters = 30;
  cfg.months = 4;
  return cfg;
}

TEST(Churn, ZeroChurnKeepsPopulationFixed) {
  auto cfg = small();
  cfg.monthly_churn = 0.0;
  Rng rng(1);
  const auto result = simulate_marketplace(cfg, rng);
  EXPECT_EQ(result.rater_count(), 120u);
}

TEST(Churn, ChurnMintsFreshIdentities) {
  auto cfg = small();
  cfg.monthly_churn = 0.2;
  Rng rng(2);
  const auto result = simulate_marketplace(cfg, rng);
  // ~20% of 120 replaced in each of months 2-4.
  EXPECT_GT(result.rater_count(), 140u);
  EXPECT_LT(result.rater_count(), 220u);
}

TEST(Churn, FreshIdentitiesKeepTheirKind) {
  auto cfg = small();
  cfg.monthly_churn = 0.3;
  Rng rng(3);
  const auto result = simulate_marketplace(cfg, rng);
  // Category proportions are preserved among all identities ever seen:
  // replacements clone the departing rater's kind.
  std::size_t reliable = 0;
  std::size_t pc = 0;
  for (const RaterKind kind : result.rater_kind) {
    reliable += kind == RaterKind::kReliable ? 1 : 0;
    pc += kind == RaterKind::kPotentialCollaborative ? 1 : 0;
  }
  const double total = static_cast<double>(result.rater_count());
  EXPECT_NEAR(reliable / total, 0.5, 0.08);
  EXPECT_NEAR(pc / total, 0.25, 0.08);
}

TEST(Churn, ChurnedOutRatersStopRating) {
  auto cfg = small();
  cfg.monthly_churn = 1.0;  // complete turnover every month
  Rng rng(4);
  const auto result = simulate_marketplace(cfg, rng);
  // Month-2+ products must be rated exclusively by identities minted after
  // the initial population.
  for (const auto& p : result.products) {
    if (p.month == 0) continue;
    for (const Rating& r : p.ratings) {
      EXPECT_GE(r.rater, 120u) << "month " << p.month;
    }
  }
}

TEST(Churn, UnfairLabelsStillOnlyFromPcKind) {
  auto cfg = small();
  cfg.monthly_churn = 0.25;
  Rng rng(5);
  const auto result = simulate_marketplace(cfg, rng);
  for (const auto& p : result.products) {
    for (const Rating& r : p.ratings) {
      if (!is_unfair(r.label)) continue;
      EXPECT_EQ(result.rater_kind[r.rater], RaterKind::kPotentialCollaborative);
    }
  }
}

TEST(Cadence, OnOffSkipsAlternateMonths) {
  auto cfg = small();
  cfg.attack_every_k_months = 2;
  Rng rng(6);
  const auto result = simulate_marketplace(cfg, rng);
  for (const auto& p : result.products) {
    if (!p.dishonest) continue;
    const std::size_t unfair = count_unfair(p.ratings);
    if (p.month % 2 == 0) {
      EXPECT_GT(unfair, 0u) << "campaign month " << p.month;
    } else {
      EXPECT_EQ(unfair, 0u) << "idle month " << p.month;
    }
  }
}

TEST(Cadence, WhitewashSybilsAreSingleUse) {
  auto cfg = small();
  cfg.whitewash = true;
  Rng rng(7);
  const auto result = simulate_marketplace(cfg, rng);
  // Each Sybil id appears in at most one product's attack.
  std::unordered_set<RaterId> seen;
  for (const auto& p : result.products) {
    std::unordered_set<RaterId> here;
    for (const Rating& r : p.ratings) {
      if (!is_unfair(r.label)) continue;
      EXPECT_FALSE(seen.contains(r.rater));
      here.insert(r.rater);
    }
    seen.insert(here.begin(), here.end());
  }
}

}  // namespace
}  // namespace trustrate::sim
