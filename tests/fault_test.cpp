// Environmental-fault-tolerance tests (ISSUE 6): the fault-injecting VFS
// shim, the retry/backoff policy, failed-fsync poisoning across every fsync
// policy, the WalWriter wound/repair cycle, the DurableStream degradation
// ladder with self-healing, ENOSPC emergency pruning, and the fault-sweep
// oracle (optionally composed with the byte-budget crash sweep).
//
// Environment knobs (the nightly CI fault-matrix job sets these for a
// date-seeded run under ASan):
//   TRUSTRATE_FAULT_SEED          scenario seed for the sweep tests
//   TRUSTRATE_FAULT_PLANS         fault plans per sweep
//   TRUSTRATE_FAULT_STRIDE        crash-budget stride of the composed sweep
//   TRUSTRATE_FAULT_ARTIFACT_DIR  where failing runs dump audit JSONL
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/durable/fault.hpp"
#include "core/durable/io.hpp"
#include "core/durable/wal.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "testkit/faults.hpp"
#include "testkit/scenario.hpp"

namespace trustrate {
namespace {

namespace fs = std::filesystem;
using core::durable::DurabilityState;
using core::durable::DurableFile;
using core::durable::DurableOptions;
using core::durable::DurableStream;
using core::durable::FaultEvent;
using core::durable::FaultInjector;
using core::durable::FaultKind;
using core::durable::FaultPlan;
using core::durable::FaultPlanOptions;
using core::durable::FsyncPolicy;
using core::durable::IoEnv;
using core::durable::IoOp;
using core::durable::RetryPolicy;
using core::durable::VirtualIoClock;
using core::durable::WalOptions;
using core::durable::WalRecord;
using core::durable::WalRecordType;
using core::durable::WalWriter;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

fs::path artifact_path(const std::string& name) {
  const char* dir = std::getenv("TRUSTRATE_FAULT_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  fs::create_directories(dir);
  return fs::path(dir) / (name + ".jsonl");
}

/// Fresh per-test scratch directory under the system temp dir.
fs::path test_dir(const std::string& name) {
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path dir =
      fs::temp_directory_path() / ("trustrate-fault-" + uniq) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Deterministic rating stream spanning several epochs (so every fsync
/// policy has barriers to fail).
RatingSeries small_stream() {
  RatingSeries stream;
  double t = 0.0;
  for (int i = 0; i < 160; ++i) {
    t += 0.75;
    stream.push_back({t, (i % 10) * 0.1, static_cast<RaterId>(1 + i % 13),
                      static_cast<ProductId>(1 + i % 3), RatingLabel::kHonest});
  }
  return stream;
}

DurableOptions options_of(FsyncPolicy fsync) {
  DurableOptions options;
  options.fsync = fsync;
  return options;
}

FaultPlan plan_of(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events = std::move(events);
  return plan;
}

std::string digest(const DurableStream& durable) {
  std::ostringstream bytes;
  core::save_checkpoint(durable.stream(), bytes);
  return bytes.str();
}

/// Reference digest of `stream` driven fault-free with `checkpoint_every`.
std::string reference_digest(const fs::path& dir, const RatingSeries& stream,
                             FsyncPolicy fsync, std::size_t checkpoint_every) {
  DurableOptions options;
  options.fsync = fsync;
  DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    durable.submit(stream[i]);
    if (checkpoint_every != 0 && (i + 1) % checkpoint_every == 0) {
      durable.checkpoint();
    }
  }
  durable.flush();
  durable.checkpoint();
  return digest(durable);
}

// ---------------------------------------------------------------------------
// Fault plans

TEST(FaultPlan, GenerateIsDeterministic) {
  FaultPlanOptions options;
  options.events = 12;
  options.read_faults = true;
  const FaultPlan a = FaultPlan::generate(42, options);
  const FaultPlan b = FaultPlan::generate(42, options);
  ASSERT_EQ(a.events.size(), 12u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].op, b.events[i].op) << i;
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_EQ(a.events[i].count, b.events[i].count) << i;
  }
  const FaultPlan c = FaultPlan::generate(43, options);
  EXPECT_NE(a.summary(), c.summary());
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_FALSE(a.summary().empty());
}

TEST(FaultPlan, GeneratorCoversTheFaultInventory) {
  // Across a seed sweep every fault family must appear — otherwise the
  // nightly matrix silently stops exercising part of the taxonomy.
  FaultPlanOptions options;
  options.events = 8;
  options.read_faults = true;
  std::vector<int> seen(8, 0);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (const FaultEvent& e : FaultPlan::generate(seed, options).events) {
      seen[static_cast<int>(e.kind)]++;
      if (e.kind == FaultKind::kReadCorrupt) {
        EXPECT_LE(e.count, 2u) << "read bursts must stay re-readable";
      }
      EXPECT_GE(e.count, 1u);
      EXPECT_LT(e.at, options.horizon_ops);
    }
  }
  for (const FaultKind kind :
       {FaultKind::kEintr, FaultKind::kShortWrite, FaultKind::kEio,
        FaultKind::kEnospc, FaultKind::kFsyncFail, FaultKind::kRenameFail,
        FaultKind::kReadCorrupt}) {
    EXPECT_GT(seen[static_cast<int>(kind)], 0) << to_string(kind);
  }
}

TEST(FaultPlan, InjectorExhaustsAfterEveryEventFires) {
  FaultInjector injector(plan_of({{IoOp::kWrite, 1, FaultKind::kEintr, 2},
                                  {IoOp::kFsync, 0, FaultKind::kFsyncFail, 1}}));
  EXPECT_FALSE(injector.exhausted());
  EXPECT_NE(injector.on_fsync(), 0);          // fsync op 0 fires
  EXPECT_EQ(injector.on_write(8).error, 0);   // write op 0: before the window
  EXPECT_EQ(injector.on_write(8).error, EINTR);
  EXPECT_FALSE(injector.exhausted());
  EXPECT_EQ(injector.on_write(8).error, EINTR);
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(injector.on_write(8).error, 0);  // healed: no further faults
  EXPECT_EQ(injector.injected(), 3u);
  EXPECT_EQ(injector.injected(FaultKind::kEintr), 2u);
  EXPECT_EQ(injector.injected(FaultKind::kFsyncFail), 1u);
}

TEST(RetryPolicy, BackoffIsExponentialWithCap) {
  const RetryPolicy policy;  // 100us, x8, cap 200ms
  EXPECT_EQ(policy.backoff_us(0), 0u);
  EXPECT_EQ(policy.backoff_us(1), 100u);
  EXPECT_EQ(policy.backoff_us(2), 800u);
  EXPECT_EQ(policy.backoff_us(3), 6400u);
  EXPECT_EQ(policy.backoff_us(4), 51200u);
  EXPECT_EQ(policy.backoff_us(5), 200000u);  // capped
  EXPECT_EQ(policy.backoff_us(9), 200000u);
}

// ---------------------------------------------------------------------------
// DurableFile under faults

TEST(DurableFileFaults, EintrAndShortWritesAreInvisible) {
  const fs::path dir = test_dir("eintr-short");
  FaultInjector injector(
      plan_of({{IoOp::kWrite, 0, FaultKind::kEintr, 1},
               {IoOp::kWrite, 1, FaultKind::kShortWrite, 1}}));
  obs::MetricsRegistry metrics;
  obs::Counter& retries = metrics.counter("trustrate_io_retries_total");
  IoEnv env;
  env.faults = &injector;
  env.retries_total = &retries;
  DurableFile file(dir / "log", env);
  file.append("hello durable world");  // EINTR, then a short write, retried
  file.sync();
  file.close();
  EXPECT_EQ(core::durable::read_file(dir / "log"), "hello durable world");
  EXPECT_EQ(file.size(), 19u);
  EXPECT_TRUE(injector.exhausted());
  EXPECT_GE(retries.value(), 2.0);  // one EINTR retry + one short continuation
}

TEST(DurableFileFaults, TransientEioHealsOnTheBackoffSchedule) {
  const fs::path dir = test_dir("transient-eio");
  FaultInjector injector(plan_of({{IoOp::kWrite, 0, FaultKind::kEio, 3}}));
  VirtualIoClock clock;
  IoEnv env;
  env.faults = &injector;
  env.policy.clock = &clock;
  DurableFile file(dir / "log", env);
  file.append("payload");  // 3 EIO attempts, 4th (last allowed) succeeds
  EXPECT_EQ(file.size(), 7u);
  EXPECT_TRUE(injector.exhausted());
  const std::vector<std::uint64_t> want = {100, 800, 6400};
  EXPECT_EQ(clock.sleeps(), want);
}

TEST(DurableFileFaults, PersistentEioClassifiesOpPathErrno) {
  const fs::path dir = test_dir("persistent-eio");
  FaultInjector injector(plan_of({{IoOp::kWrite, 0, FaultKind::kEio, 4}}));
  IoEnv env;
  env.faults = &injector;
  DurableFile file(dir / "log", env);
  try {
    file.append("payload");
    FAIL() << "persistent EIO must surface";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_NE(e.path().find("log"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(std::strerror(EIO)),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(file.size(), 0u);  // nothing persisted, accounting exact
}

TEST(DurableFileFaults, PersistentEnospcClassifies) {
  const fs::path dir = test_dir("persistent-enospc");
  FaultInjector injector(plan_of({{IoOp::kWrite, 0, FaultKind::kEnospc, 4}}));
  IoEnv env;
  env.faults = &injector;
  DurableFile file(dir / "log", env);
  try {
    file.append("payload");
    FAIL() << "persistent ENOSPC must surface";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_code(), ENOSPC);
    EXPECT_EQ(e.op(), "write");
  }
}

TEST(DurableFileFaults, FailedFsyncPoisonsTheHandle) {
  const fs::path dir = test_dir("fsync-poison");
  FaultInjector injector(plan_of({{IoOp::kFsync, 0, FaultKind::kFsyncFail, 1}}));
  IoEnv env;
  env.faults = &injector;
  DurableFile file(dir / "log", env);
  file.append("frame");
  try {
    file.sync();
    FAIL() << "injected fsync failure must surface";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "fsync");
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos);
  }
  EXPECT_TRUE(file.poisoned());
  // The plan is exhausted — the NEXT fsync would "succeed", proving nothing.
  // The handle must refuse to let that lie stand.
  EXPECT_TRUE(injector.exhausted());
  EXPECT_THROW(file.sync(), IoError);
  EXPECT_THROW(file.append("more"), IoError);
}

// ---------------------------------------------------------------------------
// WalWriter wound / repair

TEST(WalWriterFaults, WriteFaultWoundsWithoutAdvancingLsn) {
  const fs::path dir = test_dir("wal-wound");
  // Write op 0 is the segment magic; the frame write is op 1.
  FaultInjector injector(plan_of({{IoOp::kWrite, 1, FaultKind::kEio, 4}}));
  WalOptions options;
  options.fsync = FsyncPolicy::kNone;
  options.faults = &injector;
  WalWriter writer(dir, 0, options);

  WalRecord record;
  record.rating = {1.0, 0.5, 7, 1, RatingLabel::kHonest};
  EXPECT_THROW(writer.append(record), IoError);
  EXPECT_TRUE(writer.wounded());
  EXPECT_EQ(writer.next_lsn(), 0u);  // the record is NOT in the log
  EXPECT_THROW(writer.append(record), IoError);  // wounded: refuses
  EXPECT_THROW(writer.sync(), IoError);

  writer.repair();  // plan exhausted: the fresh segment opens cleanly
  EXPECT_FALSE(writer.wounded());
  EXPECT_EQ(writer.append(record), 0u);
  EXPECT_EQ(writer.append(record), 1u);
  writer.sync();

  const auto recovered = core::durable::read_wal(dir);
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.records[0].first, 0u);
  EXPECT_EQ(recovered.records[1].first, 1u);
  EXPECT_FALSE(recovered.tail_truncated);
}

TEST(WalWriterFaults, RepairUnderOngoingFaultsStaysWoundedThenHeals) {
  const fs::path dir = test_dir("wal-repair-retry");
  // Burst of 8 write faults: the first append burns 4, the first repair's
  // segment-magic write burns 4 more, the second repair succeeds.
  FaultInjector injector(plan_of({{IoOp::kWrite, 1, FaultKind::kEio, 8}}));
  WalOptions options;
  options.fsync = FsyncPolicy::kNone;
  options.faults = &injector;
  WalWriter writer(dir, 0, options);

  WalRecord record;
  record.rating = {1.0, 0.5, 7, 1, RatingLabel::kHonest};
  EXPECT_THROW(writer.append(record), IoError);
  EXPECT_TRUE(writer.wounded());
  EXPECT_THROW(writer.repair(), IoError);  // environment still failing
  EXPECT_TRUE(writer.wounded());
  writer.repair();
  EXPECT_FALSE(writer.wounded());
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(writer.append(record), 0u);
  EXPECT_EQ(core::durable::read_wal(dir).records.size(), 1u);
}

TEST(WalWriterFaults, KAlwaysFsyncFaultAdvancesLsnAndWounds) {
  const fs::path dir = test_dir("wal-fsync-fault");
  FaultInjector injector(plan_of({{IoOp::kFsync, 0, FaultKind::kFsyncFail, 1}}));
  WalOptions options;
  options.fsync = FsyncPolicy::kAlways;
  options.faults = &injector;
  WalWriter writer(dir, 0, options);

  WalRecord record;
  record.rating = {1.0, 0.5, 7, 1, RatingLabel::kHonest};
  EXPECT_THROW(writer.append(record), IoError);
  EXPECT_TRUE(writer.wounded());
  EXPECT_EQ(writer.next_lsn(), 1u);  // the frame IS in the log, unsynced

  writer.repair();
  EXPECT_FALSE(writer.wounded());
  EXPECT_EQ(writer.append(record), 1u);
  writer.sync();
  const auto recovered = core::durable::read_wal(dir);
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.next_lsn, 2u);
}

// ---------------------------------------------------------------------------
// DurableStream degradation ladder

/// Satellite (c): a failed fsync must keep the affected frames out of the
/// durable acknowledgement cursor until a heal rewrites durable state —
/// under every fsync policy (the policies only move WHERE the first fsync
/// happens: every submit, epoch barriers, or the checkpoint path).
TEST(DurableStreamLadder, FsyncPoisonDegradesThenHealsUnderEveryPolicy) {
  const RatingSeries stream = small_stream();
  for (const FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kEpoch, FsyncPolicy::kNone}) {
    const std::string tag = core::durable::to_string(policy);
    const std::string reference =
        reference_digest(test_dir("fsync-ref-" + tag), stream, policy, 32);

    const fs::path dir = test_dir("fsync-fault-" + tag);
    FaultInjector injector(
        plan_of({{IoOp::kFsync, 0, FaultKind::kFsyncFail, 1}}));
    VirtualIoClock clock;
    obs::MetricsRegistry metrics;
    obs::MemoryAuditSink audit;
    DurableOptions options;
    options.fsync = policy;
    options.faults = &injector;
    options.io.clock = &clock;
    options.heal_probe_every = 0;  // manual healing only: deterministic ladder
    options.obs = {&metrics, nullptr, &audit};
    DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);

    bool saw_degraded = false;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      durable.submit(stream[i]);
      if ((i + 1) % 32 == 0) durable.checkpoint();
      if (!saw_degraded &&
          durable.durability_state() == DurabilityState::kDegraded) {
        saw_degraded = true;
        // The frames behind the failed barrier are suspect: the durable
        // cursor must exclude them until a heal rewrites state.
        EXPECT_LT(durable.durable_acknowledged(), durable.acknowledged())
            << tag;
        EXPECT_TRUE(durable.try_heal()) << tag;
        EXPECT_EQ(durable.durability_state(), DurabilityState::kDurable)
            << tag;
        EXPECT_EQ(durable.durable_acknowledged(), durable.acknowledged())
            << tag;
      }
    }
    durable.flush();
    durable.checkpoint();
    ASSERT_TRUE(saw_degraded) << tag << ": the fsync fault never fired";
    EXPECT_TRUE(injector.exhausted()) << tag;
    EXPECT_EQ(digest(durable), reference) << tag;

    EXPECT_GE(
        metrics.counter("trustrate_durability_degradations_total").value(),
        1.0)
        << tag;
    EXPECT_GE(metrics.counter("trustrate_durability_heals_total").value(), 1.0)
        << tag;
    EXPECT_EQ(metrics.gauge("trustrate_durability_state").value(), 0.0) << tag;
    EXPECT_GE(
        audit.of_type(obs::AuditEventType::kDurabilityDegraded).size(), 1u)
        << tag;
    EXPECT_GE(
        audit.of_type(obs::AuditEventType::kDurabilityRestored).size(), 1u)
        << tag;

    // Cold recovery of the healed directory rebuilds the identical state.
    DurableStream reopened(dir, pipeline_config(), 30.0, 2, {},
                           options_of(policy));
    EXPECT_EQ(reopened.acknowledged(), durable.acknowledged()) << tag;
    EXPECT_EQ(digest(reopened), reference) << tag;
  }
}

TEST(DurableStreamLadder, PersistentWriteFaultBacklogsAndAutoHeals) {
  const RatingSeries stream = small_stream();
  const std::string reference = reference_digest(
      test_dir("backlog-ref"), stream, FsyncPolicy::kEpoch, 0);

  const fs::path dir = test_dir("backlog-fault");
  // A long EIO burst: the retry budget (4 attempts) cannot ride it out, so
  // the stream degrades and buffers; the auto heal probe brings it back.
  FaultInjector injector(plan_of({{IoOp::kWrite, 6, FaultKind::kEio, 24}}));
  VirtualIoClock clock;
  obs::MetricsRegistry metrics;
  obs::MemoryAuditSink audit;
  DurableOptions options;
  options.fsync = FsyncPolicy::kEpoch;
  options.faults = &injector;
  options.io.clock = &clock;
  options.heal_probe_every = 4;
  options.obs = {&metrics, nullptr, &audit};
  DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);

  bool saw_backlog = false;
  for (const Rating& rating : stream) {
    durable.submit(rating);
    saw_backlog = saw_backlog || durable.backlog_records() > 0;
  }
  durable.flush();
  durable.checkpoint();
  ASSERT_TRUE(saw_backlog) << "the write burst never forced a backlog";
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(durable.durability_state(), DurabilityState::kDurable);
  EXPECT_EQ(durable.backlog_records(), 0u);
  EXPECT_EQ(durable.durable_acknowledged(), durable.acknowledged());
  EXPECT_EQ(digest(durable), reference);
  EXPECT_GE(metrics.counter("trustrate_durability_io_faults_total").value(),
            1.0);
  EXPECT_GE(audit.of_type(obs::AuditEventType::kDurabilityRecovering).size(),
            1u);

  // Everything acknowledged — backlogged or not — must survive on disk.
  DurableStream reopened(dir, pipeline_config(), 30.0, 2, {},
                         options_of(FsyncPolicy::kEpoch));
  EXPECT_EQ(reopened.acknowledged(), durable.acknowledged());
  EXPECT_EQ(digest(reopened), reference);
}

TEST(DurableStreamLadder, EnospcTriggersEmergencyPruneWithoutDegrading) {
  const RatingSeries stream = small_stream();
  const std::string reference = reference_digest(
      test_dir("enospc-ref"), stream, FsyncPolicy::kEpoch, 24);

  // Sizing pass: count write ops so the ENOSPC burst lands late in the run,
  // when pruneable checkpoints and covered WAL segments exist.
  std::uint64_t write_ops = 0;
  {
    FaultInjector probe;  // empty plan: pure op counter
    DurableOptions options;
    options.fsync = FsyncPolicy::kEpoch;
    options.faults = &probe;
    DurableStream durable(test_dir("enospc-size"), pipeline_config(), 30.0, 2,
                          {}, options);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      durable.submit(stream[i]);
      if ((i + 1) % 24 == 0) durable.checkpoint();
    }
    durable.flush();
    durable.checkpoint();
    write_ops = probe.ops(IoOp::kWrite);
  }
  ASSERT_GT(write_ops, 16u);

  const fs::path dir = test_dir("enospc-fault");
  FaultInjector injector(plan_of(
      {{IoOp::kWrite, write_ops * 3 / 4, FaultKind::kEnospc, 4}}));
  VirtualIoClock clock;
  obs::MetricsRegistry metrics;
  DurableOptions options;
  options.fsync = FsyncPolicy::kEpoch;
  options.faults = &injector;
  options.io.clock = &clock;
  options.obs = {&metrics, nullptr, nullptr};
  DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    durable.submit(stream[i]);
    if ((i + 1) % 24 == 0) durable.checkpoint();
  }
  durable.flush();
  durable.checkpoint();

  EXPECT_TRUE(injector.exhausted());
  EXPECT_GE(injector.injected(FaultKind::kEnospc), 1u);
  EXPECT_GE(metrics.counter("trustrate_durability_emergency_prunes_total")
                .value(),
            1.0);
  EXPECT_EQ(durable.durability_state(), DurabilityState::kDurable);
  EXPECT_EQ(digest(durable), reference);

  DurableStream reopened(dir, pipeline_config(), 30.0, 2, {},
                         options_of(FsyncPolicy::kEpoch));
  EXPECT_EQ(reopened.acknowledged(), durable.acknowledged());
  EXPECT_EQ(digest(reopened), reference);
}

TEST(DurableStreamLadder, RenameFaultDegradesCheckpointThenHeals) {
  const RatingSeries stream = small_stream();
  const std::string reference = reference_digest(
      test_dir("rename-ref"), stream, FsyncPolicy::kEpoch, 0);

  const fs::path dir = test_dir("rename-fault");
  // Burst of 6 rename faults: the first checkpoint burns the 4-attempt
  // budget and degrades (the old file stays live — here, none yet); the
  // heal's re-checkpoint rides out the remaining 2 and lands.
  FaultInjector injector(
      plan_of({{IoOp::kRename, 0, FaultKind::kRenameFail, 6}}));
  VirtualIoClock clock;
  obs::MetricsRegistry metrics;
  DurableOptions options;
  options.fsync = FsyncPolicy::kEpoch;
  options.faults = &injector;
  options.io.clock = &clock;
  options.heal_probe_every = 0;
  options.obs = {&metrics, nullptr, nullptr};
  DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);
  for (std::size_t i = 0; i < 64; ++i) durable.submit(stream[i]);

  EXPECT_EQ(durable.checkpoint(), 0u);  // promotion blocked: no new ckpt
  EXPECT_EQ(durable.durability_state(), DurabilityState::kDegraded);
  EXPECT_EQ(durable.last_checkpoint_lsn(), 0u);

  EXPECT_TRUE(durable.try_heal());
  EXPECT_EQ(durable.durability_state(), DurabilityState::kDurable);
  EXPECT_GT(durable.last_checkpoint_lsn(), 0u);
  EXPECT_TRUE(
      fs::exists(dir / DurableStream::checkpoint_name(
                           durable.last_checkpoint_lsn())));
  EXPECT_TRUE(injector.exhausted());

  for (std::size_t i = 64; i < stream.size(); ++i) durable.submit(stream[i]);
  durable.flush();
  durable.checkpoint();
  EXPECT_EQ(digest(durable), reference);
}

TEST(DurableStreamLadder, TransientReadCorruptionDoesNotTruncateOnRecovery) {
  const RatingSeries stream = small_stream();
  const fs::path dir = test_dir("read-corrupt");
  std::string expected;
  std::uint64_t acked = 0;
  {
    DurableStream durable(dir, pipeline_config(), 30.0, 2, {},
                          options_of(FsyncPolicy::kEpoch));
    for (std::size_t i = 0; i < stream.size(); ++i) {
      durable.submit(stream[i]);
      if (i + 1 == 96) durable.checkpoint();  // checkpoint + live WAL tail
    }
    expected = digest(durable);
    acked = durable.acknowledged();
  }

  // Transient read corruption while recovering: checkpoint load and WAL
  // scan must re-read instead of skipping a rung or truncating the tail.
  FaultInjector injector(
      plan_of({{IoOp::kRead, 0, FaultKind::kReadCorrupt, 2},
               {IoOp::kRead, 4, FaultKind::kReadCorrupt, 1}}));
  DurableOptions options;
  options.fsync = FsyncPolicy::kEpoch;
  options.faults = &injector;
  DurableStream recovered(dir, pipeline_config(), 30.0, 2, {}, options);
  EXPECT_EQ(recovered.acknowledged(), acked);
  EXPECT_EQ(digest(recovered), expected);
  EXPECT_TRUE(recovered.recovery().loaded_checkpoint);
  EXPECT_EQ(recovered.recovery().corrupt_checkpoints, 0u);
  EXPECT_FALSE(recovered.recovery().wal_tail_truncated);
  EXPECT_GE(injector.injected(FaultKind::kReadCorrupt), 1u);
}

// ---------------------------------------------------------------------------
// The fault-sweep oracle

TEST(FaultSweep, HealedPlansAreBitExact) {
  const std::uint64_t seed = env_u64("TRUSTRATE_FAULT_SEED", 2);
  const testkit::Scenario scenario = testkit::make_scenario(seed);
  testkit::FaultSweepOptions options;
  options.plans = env_u64("TRUSTRATE_FAULT_PLANS", 6);
  options.audit_artifact = artifact_path("fault-sweep");
  const auto result =
      testkit::run_fault_sweep(scenario, test_dir("sweep"), options);
  EXPECT_TRUE(result.ok) << result.divergence;
  EXPECT_EQ(result.plans_run, options.plans);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_GT(result.healed_plans, 0u);
}

TEST(FaultSweep, AllFsyncPoliciesConverge) {
  const std::uint64_t seed = env_u64("TRUSTRATE_FAULT_SEED", 2);
  const testkit::Scenario scenario = testkit::make_scenario(seed + 1);
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kEpoch, FsyncPolicy::kAlways}) {
    testkit::FaultSweepOptions options;
    options.plans = 3;
    options.plan_seed_base = 7000;
    options.fsync = policy;
    options.audit_artifact = artifact_path(
        std::string("fault-sweep-") + core::durable::to_string(policy));
    const auto result = testkit::run_fault_sweep(
        scenario,
        test_dir(std::string("sweep-") + core::durable::to_string(policy)),
        options);
    EXPECT_TRUE(result.ok)
        << core::durable::to_string(policy) << ": " << result.divergence;
  }
}

TEST(FaultSweep, ComposedWithCrashSweepStillRecovers) {
  const std::uint64_t seed = env_u64("TRUSTRATE_FAULT_SEED", 2);
  const testkit::Scenario scenario = testkit::make_scenario(seed);
  testkit::FaultSweepOptions options;
  options.plans = 2;
  options.with_crashes = true;
  options.crash_stride = env_u64("TRUSTRATE_FAULT_STRIDE", 2999);
  options.crash_first = 17;
  options.audit_artifact = artifact_path("fault-crash-sweep");
  const auto result =
      testkit::run_fault_sweep(scenario, test_dir("composed"), options);
  EXPECT_TRUE(result.ok) << result.divergence;
  EXPECT_GT(result.crash_points, 0u);
  EXPECT_GT(result.clean_points, 0u);
}

}  // namespace
}  // namespace trustrate
