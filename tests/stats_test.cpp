// Unit tests for the stats module: descriptive stats, special functions,
// histogram, moving averages, whiteness tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/moving.hpp"
#include "stats/special.hpp"
#include "stats/whiteness.hpp"

namespace trustrate::stats {
namespace {

// ---------------------------------------------------------- descriptive

TEST(Descriptive, SummaryMatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Descriptive, PopulationVsSampleVariance) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(population_variance(xs), 1.0);
  EXPECT_DOUBLE_EQ(sample_variance(xs), 2.0);
}

TEST(Descriptive, SingleElementVarianceIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(sample_variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(summarize(xs).stddev, 0.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Descriptive, QuantileEndpointsAndInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_THROW(quantile(xs, 1.5), PreconditionError);
}

TEST(Descriptive, PearsonPerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  const std::vector<double> c{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, c), -1.0, 1e-12);
}

TEST(Descriptive, PearsonConstantSeriesIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, b), 0.0);
}

TEST(Descriptive, RmseZeroForIdenticalSeries) {
  const std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 1.0);
}

TEST(Descriptive, AutocorrelationLagZeroIsOne) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gaussian(0.0, 1.0));
  const auto r = autocorrelation(xs, 5);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  for (int k = 1; k <= 5; ++k) EXPECT_LT(std::fabs(r[static_cast<std::size_t>(k)]), 0.2);
}

TEST(Descriptive, AutocorrelationConstantSeriesIsZero) {
  const std::vector<double> xs(10, 4.2);
  const auto r = autocorrelation(xs, 3);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Descriptive, AutocorrelationDetectsAlternation) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const auto r = autocorrelation(xs, 2);
  EXPECT_LT(r[1], -0.9);
  EXPECT_GT(r[2], 0.9);
}

// -------------------------------------------------------------- special

TEST(Special, LogGammaMatchesFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(Special, LogGammaHalf) {
  EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(Special, RegularizedGammaBoundaries) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_p(1.0, 50.0), 1.0, 1e-12);
}

TEST(Special, ChiSquaredCdfKnownValues) {
  // Chi2 with k=2 is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(chi_squared_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  // 95th percentile of chi2(1) is about 3.841.
  EXPECT_NEAR(chi_squared_cdf(3.841, 1.0), 0.95, 1e-3);
}

TEST(Special, RegularizedBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  const double v = regularized_beta(0.3, 2.0, 5.0);
  EXPECT_NEAR(v, 1.0 - regularized_beta(0.7, 5.0, 2.0), 1e-12);
}

TEST(Special, BetaCdfUniformCase) {
  // Beta(1,1) is uniform.
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(beta_cdf(x, 1.0, 1.0), x, 1e-12);
  }
}

TEST(Special, BetaCdfKnownValue) {
  // Beta(2,2): CDF(x) = 3x^2 - 2x^3.
  const double x = 0.25;
  EXPECT_NEAR(beta_cdf(x, 2.0, 2.0), 3 * x * x - 2 * x * x * x, 1e-10);
}

TEST(Special, BetaQuantileInvertsCdf) {
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    for (double a : {0.5, 1.0, 2.0, 8.0}) {
      for (double b : {0.5, 1.0, 3.0}) {
        const double x = beta_quantile(p, a, b);
        EXPECT_NEAR(beta_cdf(x, a, b), p, 1e-7)
            << "p=" << p << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Special, BetaQuantileEndpoints) {
  EXPECT_DOUBLE_EQ(beta_quantile(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(beta_quantile(1.0, 2.0, 3.0), 1.0);
}

TEST(Special, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96) + normal_cdf(1.96), 1.0, 1e-12);
}

// ------------------------------------------------------------ histogram

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.15);   // bin 1
  h.add(0.999);  // bin 9
  h.add(1.0);    // clamped into bin 9
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToBoundaryBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FrequenciesSumToOne) {
  Histogram h(0.0, 1.0, 5);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double total = 0.0;
  for (int i = 0; i < h.bins(); ++i) total += h.frequency(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.875);
}

TEST(Histogram, EntropyUniformBeatsPeaked) {
  Histogram uniform(0.0, 1.0, 4);
  Histogram peaked(0.0, 1.0, 4);
  for (int i = 0; i < 400; ++i) {
    uniform.add((i % 4) * 0.25 + 0.1);
    peaked.add(0.1);
  }
  EXPECT_NEAR(uniform.entropy(), std::log(4.0), 1e-9);
  EXPECT_DOUBLE_EQ(peaked.entropy(), 0.0);
}

TEST(Histogram, EmptyHistogramIsWellDefined) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);
  EXPECT_DOUBLE_EQ(h.entropy(), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), PreconditionError);
}

// --------------------------------------------------------------- moving

TEST(Moving, CountWindowsMatchPaperGeometry) {
  // Fig. 4: 20-rating windows stepping by 10.
  std::vector<double> values(50, 1.0);
  std::vector<double> pos(50);
  for (int i = 0; i < 50; ++i) pos[static_cast<std::size_t>(i)] = i;
  const auto pts = moving_average_by_count(values, pos, 20, 10);
  ASSERT_EQ(pts.size(), 4u);  // starts at 0, 10, 20, 30
  EXPECT_DOUBLE_EQ(pts[0].value, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].position, 9.5);
  EXPECT_EQ(pts[0].count, 20u);
}

TEST(Moving, CountWindowAveragesValues) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pos{0.0, 1.0, 2.0, 3.0};
  const auto pts = moving_average_by_count(values, pos, 2, 2);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.5);
  EXPECT_DOUBLE_EQ(pts[1].value, 3.5);
}

TEST(Moving, TimeWindowsSkipEmpty) {
  const std::vector<double> values{1.0, 3.0};
  const std::vector<double> pos{0.5, 10.5};
  const auto pts = moving_average_by_time(values, pos, 0.0, 12.0, 1.0, 1.0);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 3.0);
}

TEST(Moving, MismatchedInputsThrow) {
  const std::vector<double> values{1.0};
  const std::vector<double> pos{1.0, 2.0};
  EXPECT_THROW(moving_average_by_count(values, pos, 1, 1), PreconditionError);
}

// ------------------------------------------------------------ whiteness

TEST(Whiteness, LjungBoxAcceptsWhiteNoise) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.gaussian(0.0, 1.0));
  const auto res = ljung_box(xs, 10);
  EXPECT_GT(res.p_value, 0.01);
}

TEST(Whiteness, LjungBoxRejectsAr1) {
  Rng rng(22);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 500; ++i) {
    xs.push_back(0.8 * xs.back() + rng.gaussian(0.0, 1.0));
  }
  const auto res = ljung_box(xs, 10);
  EXPECT_LT(res.p_value, 1e-6);
}

TEST(Whiteness, TurningPointAcceptsWhiteRejectsTrend) {
  Rng rng(23);
  std::vector<double> white;
  std::vector<double> trend;
  for (int i = 0; i < 400; ++i) {
    white.push_back(rng.gaussian(0.0, 1.0));
    trend.push_back(i * 0.1 + rng.gaussian(0.0, 0.01));
  }
  EXPECT_GT(turning_point(white).p_value, 0.01);
  EXPECT_LT(turning_point(trend).p_value, 1e-6);
}

TEST(Whiteness, PreconditionChecks) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(ljung_box(xs, 5), PreconditionError);
  EXPECT_THROW(turning_point(xs), PreconditionError);
}

}  // namespace
}  // namespace trustrate::stats
