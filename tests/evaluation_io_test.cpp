// Tests for the evaluation utilities (ROC/AUC) and trust-store persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/evaluation.hpp"
#include "trust/store_io.hpp"

namespace trustrate {
namespace {

// ------------------------------------------------------------- evaluation

TEST(Roc, CurveEvaluatesEachThreshold) {
  const std::vector<double> thresholds{0.1, 0.2, 0.3};
  const auto curve = core::roc_curve(thresholds, [](double t) {
    core::DetectionMetrics m;
    m.true_positive = static_cast<std::size_t>(t * 100);
    m.false_negative = 100 - m.true_positive;
    m.true_negative = 100;
    return m;
  });
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].threshold, 0.1);
  EXPECT_NEAR(curve[1].detection, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(curve[2].false_alarm, 0.0);
}

TEST(Roc, PerfectDetectorHasUnitAuc) {
  // Detection 1 at false alarm 0.
  const std::vector<core::RocPoint> points{{0.5, 1.0, 0.0}};
  EXPECT_DOUBLE_EQ(core::roc_auc(points), 1.0);
}

TEST(Roc, ChanceDiagonalHasHalfAuc) {
  std::vector<core::RocPoint> points;
  for (double x = 0.1; x < 1.0; x += 0.1) points.push_back({x, x, x});
  EXPECT_NEAR(core::roc_auc(points), 0.5, 1e-9);
}

TEST(Roc, AucHandlesUnsortedInput) {
  const std::vector<core::RocPoint> sorted{{0.0, 0.6, 0.1}, {0.0, 0.9, 0.4}};
  const std::vector<core::RocPoint> shuffled{{0.0, 0.9, 0.4}, {0.0, 0.6, 0.1}};
  EXPECT_NEAR(core::roc_auc(sorted), core::roc_auc(shuffled), 1e-12);
}

TEST(Roc, BestYoudenPicksLargestMargin) {
  const std::vector<core::RocPoint> points{
      {0.1, 0.9, 0.5}, {0.2, 0.8, 0.1}, {0.3, 0.4, 0.0}};
  const auto best = core::best_youden(points);
  EXPECT_DOUBLE_EQ(best.threshold, 0.2);  // margin 0.7 beats 0.4 both
}

TEST(Roc, PreconditionChecks) {
  EXPECT_THROW(core::roc_auc({}), PreconditionError);
  EXPECT_THROW(core::best_youden({}), PreconditionError);
  EXPECT_THROW(core::roc_curve({0.1}, nullptr), PreconditionError);
}

// ------------------------------------------------------------- store I/O

TEST(StoreIo, RoundTripPreservesRecords) {
  trust::TrustStore store;
  store.record(3) = {.successes = 10.5, .failures = 2.25};
  store.record(1) = {.successes = 0.0, .failures = 7.0};
  std::ostringstream out;
  trust::save_store_csv(store, out);

  std::istringstream in(out.str());
  const trust::TrustStore loaded = trust::load_store_csv(in);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.trust(3), store.trust(3));
  EXPECT_DOUBLE_EQ(loaded.trust(1), store.trust(1));
  EXPECT_DOUBLE_EQ(loaded.records().at(3).successes, 10.5);
}

TEST(StoreIo, OutputSortedById) {
  trust::TrustStore store;
  store.record(9);
  store.record(2);
  store.record(5);
  std::ostringstream out;
  trust::save_store_csv(store, out);
  const std::string text = out.str();
  EXPECT_LT(text.find("2,"), text.find("5,"));
  EXPECT_LT(text.find("5,"), text.find("9,"));
}

TEST(StoreIo, EmptyStoreRoundTrips) {
  std::ostringstream out;
  trust::save_store_csv({}, out);
  std::istringstream in(out.str());
  EXPECT_EQ(trust::load_store_csv(in).size(), 0u);
}

TEST(StoreIo, MalformedRowsRejected) {
  std::istringstream missing("1,2\n");
  EXPECT_THROW(trust::load_store_csv(missing), DataError);
  std::istringstream negative("1,-3,0\n");
  EXPECT_THROW(trust::load_store_csv(negative), DataError);
  std::istringstream duplicate("1,2,3\n1,4,5\n");
  EXPECT_THROW(trust::load_store_csv(duplicate), DataError);
  std::istringstream nan_evidence("1,nan,0\n");
  EXPECT_THROW(trust::load_store_csv(nan_evidence), DataError);
}

/// Returns the DataError message raised by loading `text`.
std::string store_error_message(const std::string& text) {
  try {
    std::istringstream in(text);
    trust::load_store_csv(in);
  } catch (const DataError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected DataError";
  return {};
}

TEST(StoreIo, ErrorsCarryLineNumbers) {
  // Bad row on file line 3; the blank line 2 still counts.
  EXPECT_NE(store_error_message("1,2,3\n\n4,5\n").find("line 3"),
            std::string::npos);
  // Duplicate rater reported at the second occurrence's line.
  EXPECT_NE(store_error_message("1,2,3\n2,0,0\n1,4,5\n").find("line 3"),
            std::string::npos);
  EXPECT_NE(store_error_message("7,nan,0\n").find("non-finite"),
            std::string::npos);
}

TEST(StoreIo, RoundTripIsExactForNonRepresentableDecimals) {
  // max_digits10 output: evidence values with no short decimal form still
  // round-trip bit-exactly (checkpoint-resume depends on this).
  trust::TrustStore store;
  store.record(1) = {.successes = 0.1 + 0.2, .failures = 1.0 / 3.0};
  store.record(2) = {.successes = 1e-17, .failures = 12345.678901234567};
  std::ostringstream out;
  trust::save_store_csv(store, out);
  std::istringstream in(out.str());
  const trust::TrustStore loaded = trust::load_store_csv(in);
  for (const auto& [id, rec] : store.records()) {
    EXPECT_EQ(loaded.records().at(id).successes, rec.successes);
    EXPECT_EQ(loaded.records().at(id).failures, rec.failures);
  }
}

}  // namespace
}  // namespace trustrate
