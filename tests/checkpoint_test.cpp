// Checkpoint/recovery tests: a stream checkpointed mid-epoch (with ratings
// still in the reorder buffer), restored into a fresh process, and resumed
// must reproduce the uninterrupted run's trust values, aggregates, and
// ingestion counters bit-exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/streaming.hpp"
#include "testkit/oracle.hpp"

namespace trustrate {
namespace {

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

RatingSeries mixed_stream(std::uint64_t seed, double days) {
  Rng rng(seed);
  RatingSeries stream;
  for (ProductId p = 1; p <= 3; ++p) {
    for (double t = rng.exponential(6.0); t < days; t += rng.exponential(6.0)) {
      stream.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 150)), p,
           RatingLabel::kHonest});
    }
  }
  sort_by_time(stream);
  return stream;
}

void expect_bitwise_equal_state(const core::StreamingRatingSystem& a,
                                const core::StreamingRatingSystem& b) {
  EXPECT_EQ(a.epochs_closed(), b.epochs_closed());
  EXPECT_EQ(a.skipped_empty_epochs(), b.skipped_empty_epochs());
  EXPECT_EQ(a.pending_ratings(), b.pending_ratings());
  EXPECT_EQ(a.buffered_ratings(), b.buffered_ratings());
  EXPECT_EQ(a.ingest_stats(), b.ingest_stats());
  EXPECT_EQ(a.epoch_health(), b.epoch_health());

  const auto& ra = a.system().trust_store().records();
  const auto& rb = b.system().trust_store().records();
  ASSERT_EQ(ra.size(), rb.size());
  for (const auto& [id, rec] : ra) {
    ASSERT_TRUE(rb.contains(id)) << "rater " << id;
    EXPECT_EQ(rec.successes, rb.at(id).successes) << "rater " << id;
    EXPECT_EQ(rec.failures, rb.at(id).failures) << "rater " << id;
  }
  for (ProductId p = 1; p <= 3; ++p) {
    EXPECT_EQ(a.aggregate(p), b.aggregate(p)) << "product " << p;
  }
}

TEST(Checkpoint, RoundTripPreservesStateExactly) {
  const RatingSeries stream_data = mixed_stream(201, 75.0);
  core::StreamingRatingSystem original(pipeline_config(), 30.0, 2,
                                       {.max_lateness_days = 2.0});
  for (const Rating& r : stream_data) original.submit(r);
  // Mid-epoch, reorder buffer non-empty: the hard case.
  ASSERT_GT(original.pending_ratings(), 0u);
  ASSERT_GT(original.buffered_ratings(), 0u);

  std::ostringstream out;
  core::save_checkpoint(original, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());

  expect_bitwise_equal_state(original, restored);
}

TEST(Checkpoint, SaveIsDeterministic) {
  const RatingSeries stream_data = mixed_stream(202, 50.0);
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  for (const Rating& r : stream_data) stream.submit(r);

  std::ostringstream a, b;
  core::save_checkpoint(stream, a);
  core::save_checkpoint(stream, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Checkpoint, ResumeReproducesUninterruptedRunExactly) {
  // The acceptance-criteria property: save mid-epoch, load, continue the
  // stream — final trust values and aggregates bitwise-match a run that was
  // never interrupted.
  const RatingSeries stream_data = mixed_stream(203, 95.0);
  const std::size_t cut = stream_data.size() / 2;

  // Uninterrupted reference.
  core::StreamingRatingSystem uninterrupted(pipeline_config(), 30.0, 2,
                                            {.max_lateness_days = 1.5});
  for (const Rating& r : stream_data) uninterrupted.submit(r);
  uninterrupted.flush();

  // Crash-and-recover run: first half, checkpoint, "restart", second half.
  core::StreamingRatingSystem first_half(pipeline_config(), 30.0, 2,
                                         {.max_lateness_days = 1.5});
  for (std::size_t i = 0; i < cut; ++i) first_half.submit(stream_data[i]);
  std::ostringstream out;
  core::save_checkpoint(first_half, out);

  std::istringstream in(out.str());
  auto resumed = core::load_checkpoint(in, pipeline_config());
  for (std::size_t i = cut; i < stream_data.size(); ++i) {
    resumed.submit(stream_data[i]);
  }
  resumed.flush();

  expect_bitwise_equal_state(uninterrupted, resumed);
}

TEST(Checkpoint, ResumedStreamStillDeduplicatesAcrossRestart) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0, 2,
                                     {.max_lateness_days = 5.0});
  const Rating r{10.0, 0.5, 1, 1, RatingLabel::kHonest};
  stream.submit(r);

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  auto resumed = core::load_checkpoint(in, pipeline_config());

  // A client retry that straddles the restart is still a duplicate.
  EXPECT_EQ(resumed.submit(r), core::IngestClass::kDuplicate);
  EXPECT_EQ(resumed.ingest_stats().duplicates, 1u);
}

TEST(Checkpoint, QuarantineSurvivesRestart) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({1.5, 2.0, 2, 1, RatingLabel::kHonest});  // malformed
  ASSERT_EQ(stream.quarantine().size(), 1u);

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  const auto resumed = core::load_checkpoint(in, pipeline_config());

  ASSERT_EQ(resumed.quarantine().size(), 1u);
  EXPECT_EQ(resumed.quarantine().front().reason,
            core::IngestClass::kMalformed);
  EXPECT_EQ(resumed.quarantine().front().rating.rater, 2u);
  EXPECT_EQ(resumed.ingest_stats().malformed, 1u);
}

TEST(Checkpoint, SkippedEmptyEpochCounterRoundTrips) {
  // The v2 anchor line carries the gap fast-forward counter.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({0.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({200.0, 0.5, 2, 1, RatingLabel::kHonest});  // skips [30,180)
  ASSERT_GT(stream.skipped_empty_epochs(), 0u);

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.skipped_empty_epochs(), stream.skipped_empty_epochs());
  expect_bitwise_equal_state(stream, restored);
}

TEST(Checkpoint, LoadsVersion1WithoutSkippedCounter) {
  // Backward compatibility: a v1 checkpoint (no skipped-empty-epoch field,
  // no checksums, no quarantine detail) still loads, with the counter
  // defaulting to 0 and details restored empty.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({1.5, 2.0, 2, 1, RatingLabel::kHonest});  // quarantined
  ASSERT_FALSE(stream.quarantine().front().detail.empty());
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  const std::string v1 = testkit::downconvert_checkpoint_v1(out.str());
  ASSERT_NE(v1.find("trustrate-checkpoint 1"), std::string::npos);
  ASSERT_EQ(v1.find("crc "), std::string::npos);

  std::istringstream in(v1);
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.skipped_empty_epochs(), 0u);
  EXPECT_EQ(restored.pending_ratings(), 1u);
  ASSERT_EQ(restored.quarantine().size(), 1u);
  EXPECT_TRUE(restored.quarantine().front().detail.empty());
}

TEST(Checkpoint, LoadsVersion2WithoutChecksums) {
  // A v2 checkpoint carries the skipped counter but no checksums and no
  // quarantine detail token.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({0.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({200.0, 0.5, 2, 1, RatingLabel::kHonest});  // skips epochs
  stream.submit({200.5, -3.0, 3, 1, RatingLabel::kHonest});  // quarantined
  ASSERT_GT(stream.skipped_empty_epochs(), 0u);
  std::ostringstream out;
  core::save_checkpoint(stream, out);

  // Rewrite v3 as v2: header version 2, checksum lines and quarantine
  // detail tokens dropped.
  std::istringstream lines(out.str());
  std::ostringstream v2;
  std::string line;
  std::size_t quarantine_entries = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("trustrate-checkpoint ", 0) == 0) {
      v2 << "trustrate-checkpoint 2\n";
      continue;
    }
    if (line.rfind("crc ", 0) == 0 || line.rfind("filecrc ", 0) == 0) continue;
    if (quarantine_entries > 0) {
      v2 << line.substr(0, line.find_last_of(' ')) << '\n';
      --quarantine_entries;
      continue;
    }
    if (line.rfind("quarantine ", 0) == 0) {
      std::istringstream fields(line);
      std::string keyword;
      fields >> keyword >> quarantine_entries;
    }
    v2 << line << '\n';
  }

  std::istringstream in(v2.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.skipped_empty_epochs(), stream.skipped_empty_epochs());
  ASSERT_EQ(restored.quarantine().size(), 1u);
  EXPECT_TRUE(restored.quarantine().front().detail.empty());
}

TEST(Checkpoint, QuarantineDetailStringRoundTrips) {
  // v3 persists the human-readable quarantine detail (free text with
  // spaces) byte-exactly through the percent-escaped wire token.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({1.5, 2.0, 2, 1, RatingLabel::kHonest});   // value > 1
  stream.submit({2.0, -1.0, 3, 1, RatingLabel::kHonest});  // value < 0
  ASSERT_EQ(stream.quarantine().size(), 2u);
  ASSERT_FALSE(stream.quarantine().front().detail.empty());

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());

  ASSERT_EQ(restored.quarantine().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(restored.quarantine()[i].detail, stream.quarantine()[i].detail);
    EXPECT_EQ(restored.quarantine()[i].reason, stream.quarantine()[i].reason);
  }
}

TEST(Checkpoint, SectionChecksumDetectsSingleFlippedByte) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  const std::string intact = out.str();
  ASSERT_NE(intact.find("crc config "), std::string::npos);
  ASSERT_NE(intact.find("filecrc "), std::string::npos);

  // Flip one payload byte mid-file: the section checksum must reject it.
  std::string corrupt = intact;
  const std::size_t at = intact.find("trust ");
  ASSERT_NE(at, std::string::npos);
  corrupt[at + 2] ^= 0x01;
  std::istringstream in(corrupt);
  EXPECT_THROW(core::load_checkpoint(in, pipeline_config()), CheckpointError);
}

TEST(Checkpoint, ErrorsCarryLineNumbers) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  std::ostringstream out;
  core::save_checkpoint(stream, out);

  // Checksum failures name the crc line...
  std::string corrupt = out.str();
  corrupt[corrupt.find("stats ") + 6] ^= 0x01;
  std::istringstream bad_crc(corrupt);
  try {
    core::load_checkpoint(bad_crc, pipeline_config());
    FAIL() << "corrupted checkpoint loaded";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
  }

  // ...and token-level parse errors (reachable in the unchecksummed v1
  // format) carry the offending token's line number.
  std::string v1 = testkit::downconvert_checkpoint_v1(out.str());
  v1.replace(v1.find("stats ") + 6, 1, "x");
  std::istringstream bad_token(v1);
  try {
    core::load_checkpoint(bad_token, pipeline_config());
    FAIL() << "corrupted v1 checkpoint loaded";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("(line 4)"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, EmptySystemRoundTrips) {
  core::StreamingRatingSystem empty(pipeline_config(), 30.0);
  std::ostringstream out;
  core::save_checkpoint(empty, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.epochs_closed(), 0u);
  EXPECT_EQ(restored.pending_ratings(), 0u);
  EXPECT_EQ(restored.ingest_stats(), core::IngestStats{});
}

TEST(Checkpoint, RejectsBadHeaderVersionAndTruncation) {
  std::istringstream empty("");
  EXPECT_THROW(core::load_checkpoint(empty, pipeline_config()),
               CheckpointError);

  std::istringstream wrong_magic("not-a-checkpoint 1");
  EXPECT_THROW(core::load_checkpoint(wrong_magic, pipeline_config()),
               CheckpointError);

  std::istringstream future_version("trustrate-checkpoint 99");
  EXPECT_THROW(core::load_checkpoint(future_version, pipeline_config()),
               CheckpointError);

  // A valid checkpoint cut short mid-section.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  const std::string full = out.str();
  std::istringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(core::load_checkpoint(truncated, pipeline_config()),
               CheckpointError);

  // Corrupted numeric field.
  std::string corrupted = full;
  corrupted.replace(corrupted.find("stats ") + 6, 1, "x");
  std::istringstream bad(corrupted);
  EXPECT_THROW(core::load_checkpoint(bad, pipeline_config()), CheckpointError);
}

}  // namespace
}  // namespace trustrate
