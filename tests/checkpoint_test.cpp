// Checkpoint/recovery tests: a stream checkpointed mid-epoch (with ratings
// still in the reorder buffer), restored into a fresh process, and resumed
// must reproduce the uninterrupted run's trust values, aggregates, and
// ingestion counters bit-exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/streaming.hpp"

namespace trustrate {
namespace {

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

RatingSeries mixed_stream(std::uint64_t seed, double days) {
  Rng rng(seed);
  RatingSeries stream;
  for (ProductId p = 1; p <= 3; ++p) {
    for (double t = rng.exponential(6.0); t < days; t += rng.exponential(6.0)) {
      stream.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 150)), p,
           RatingLabel::kHonest});
    }
  }
  sort_by_time(stream);
  return stream;
}

void expect_bitwise_equal_state(const core::StreamingRatingSystem& a,
                                const core::StreamingRatingSystem& b) {
  EXPECT_EQ(a.epochs_closed(), b.epochs_closed());
  EXPECT_EQ(a.skipped_empty_epochs(), b.skipped_empty_epochs());
  EXPECT_EQ(a.pending_ratings(), b.pending_ratings());
  EXPECT_EQ(a.buffered_ratings(), b.buffered_ratings());
  EXPECT_EQ(a.ingest_stats(), b.ingest_stats());
  EXPECT_EQ(a.epoch_health(), b.epoch_health());

  const auto& ra = a.system().trust_store().records();
  const auto& rb = b.system().trust_store().records();
  ASSERT_EQ(ra.size(), rb.size());
  for (const auto& [id, rec] : ra) {
    ASSERT_TRUE(rb.contains(id)) << "rater " << id;
    EXPECT_EQ(rec.successes, rb.at(id).successes) << "rater " << id;
    EXPECT_EQ(rec.failures, rb.at(id).failures) << "rater " << id;
  }
  for (ProductId p = 1; p <= 3; ++p) {
    EXPECT_EQ(a.aggregate(p), b.aggregate(p)) << "product " << p;
  }
}

TEST(Checkpoint, RoundTripPreservesStateExactly) {
  const RatingSeries stream_data = mixed_stream(201, 75.0);
  core::StreamingRatingSystem original(pipeline_config(), 30.0, 2,
                                       {.max_lateness_days = 2.0});
  for (const Rating& r : stream_data) original.submit(r);
  // Mid-epoch, reorder buffer non-empty: the hard case.
  ASSERT_GT(original.pending_ratings(), 0u);
  ASSERT_GT(original.buffered_ratings(), 0u);

  std::ostringstream out;
  core::save_checkpoint(original, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());

  expect_bitwise_equal_state(original, restored);
}

TEST(Checkpoint, SaveIsDeterministic) {
  const RatingSeries stream_data = mixed_stream(202, 50.0);
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  for (const Rating& r : stream_data) stream.submit(r);

  std::ostringstream a, b;
  core::save_checkpoint(stream, a);
  core::save_checkpoint(stream, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Checkpoint, ResumeReproducesUninterruptedRunExactly) {
  // The acceptance-criteria property: save mid-epoch, load, continue the
  // stream — final trust values and aggregates bitwise-match a run that was
  // never interrupted.
  const RatingSeries stream_data = mixed_stream(203, 95.0);
  const std::size_t cut = stream_data.size() / 2;

  // Uninterrupted reference.
  core::StreamingRatingSystem uninterrupted(pipeline_config(), 30.0, 2,
                                            {.max_lateness_days = 1.5});
  for (const Rating& r : stream_data) uninterrupted.submit(r);
  uninterrupted.flush();

  // Crash-and-recover run: first half, checkpoint, "restart", second half.
  core::StreamingRatingSystem first_half(pipeline_config(), 30.0, 2,
                                         {.max_lateness_days = 1.5});
  for (std::size_t i = 0; i < cut; ++i) first_half.submit(stream_data[i]);
  std::ostringstream out;
  core::save_checkpoint(first_half, out);

  std::istringstream in(out.str());
  auto resumed = core::load_checkpoint(in, pipeline_config());
  for (std::size_t i = cut; i < stream_data.size(); ++i) {
    resumed.submit(stream_data[i]);
  }
  resumed.flush();

  expect_bitwise_equal_state(uninterrupted, resumed);
}

TEST(Checkpoint, ResumedStreamStillDeduplicatesAcrossRestart) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0, 2,
                                     {.max_lateness_days = 5.0});
  const Rating r{10.0, 0.5, 1, 1, RatingLabel::kHonest};
  stream.submit(r);

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  auto resumed = core::load_checkpoint(in, pipeline_config());

  // A client retry that straddles the restart is still a duplicate.
  EXPECT_EQ(resumed.submit(r), core::IngestClass::kDuplicate);
  EXPECT_EQ(resumed.ingest_stats().duplicates, 1u);
}

TEST(Checkpoint, QuarantineSurvivesRestart) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({1.5, 2.0, 2, 1, RatingLabel::kHonest});  // malformed
  ASSERT_EQ(stream.quarantine().size(), 1u);

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  const auto resumed = core::load_checkpoint(in, pipeline_config());

  ASSERT_EQ(resumed.quarantine().size(), 1u);
  EXPECT_EQ(resumed.quarantine().front().reason,
            core::IngestClass::kMalformed);
  EXPECT_EQ(resumed.quarantine().front().rating.rater, 2u);
  EXPECT_EQ(resumed.ingest_stats().malformed, 1u);
}

TEST(Checkpoint, SkippedEmptyEpochCounterRoundTrips) {
  // The v2 anchor line carries the gap fast-forward counter.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({0.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({200.0, 0.5, 2, 1, RatingLabel::kHonest});  // skips [30,180)
  ASSERT_GT(stream.skipped_empty_epochs(), 0u);

  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.skipped_empty_epochs(), stream.skipped_empty_epochs());
  expect_bitwise_equal_state(stream, restored);
}

TEST(Checkpoint, LoadsVersion1WithoutSkippedCounter) {
  // Forward compatibility: a v1 checkpoint (no skipped-empty-epoch field)
  // still loads, with the counter defaulting to 0.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  std::string text = out.str();
  // Rewrite the header to v1 and drop the 5th anchor token (the counter).
  const auto header = text.find("trustrate-checkpoint 2");
  ASSERT_NE(header, std::string::npos);
  text.replace(header, 22, "trustrate-checkpoint 1");
  const auto anchor = text.find("anchor ");
  ASSERT_NE(anchor, std::string::npos);
  // anchor line tokens: flag start last_time epochs_closed skipped epochs
  std::istringstream line(text.substr(anchor, text.find('\n', anchor) - anchor));
  std::string tok, kw, flag, start, last, closed, skipped, epochs;
  line >> kw >> flag >> start >> last >> closed >> skipped >> epochs;
  const std::string v2_line =
      kw + ' ' + flag + ' ' + start + ' ' + last + ' ' + closed + ' ' +
      skipped + ' ' + epochs;
  const std::string v1_line =
      kw + ' ' + flag + ' ' + start + ' ' + last + ' ' + closed + ' ' + epochs;
  text.replace(anchor, v2_line.size(), v1_line);

  std::istringstream in(text);
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.skipped_empty_epochs(), 0u);
  EXPECT_EQ(restored.pending_ratings(), 1u);
}

TEST(Checkpoint, EmptySystemRoundTrips) {
  core::StreamingRatingSystem empty(pipeline_config(), 30.0);
  std::ostringstream out;
  core::save_checkpoint(empty, out);
  std::istringstream in(out.str());
  const auto restored = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(restored.epochs_closed(), 0u);
  EXPECT_EQ(restored.pending_ratings(), 0u);
  EXPECT_EQ(restored.ingest_stats(), core::IngestStats{});
}

TEST(Checkpoint, RejectsBadHeaderVersionAndTruncation) {
  std::istringstream empty("");
  EXPECT_THROW(core::load_checkpoint(empty, pipeline_config()),
               CheckpointError);

  std::istringstream wrong_magic("not-a-checkpoint 1");
  EXPECT_THROW(core::load_checkpoint(wrong_magic, pipeline_config()),
               CheckpointError);

  std::istringstream future_version("trustrate-checkpoint 99");
  EXPECT_THROW(core::load_checkpoint(future_version, pipeline_config()),
               CheckpointError);

  // A valid checkpoint cut short mid-section.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  const std::string full = out.str();
  std::istringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(core::load_checkpoint(truncated, pipeline_config()),
               CheckpointError);

  // Corrupted numeric field.
  std::string corrupted = full;
  corrupted.replace(corrupted.find("stats ") + 6, 1, "x");
  std::istringstream bad(corrupted);
  EXPECT_THROW(core::load_checkpoint(bad, pipeline_config()), CheckpointError);
}

}  // namespace
}  // namespace trustrate
