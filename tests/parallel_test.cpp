// Determinism suite for the parallel epoch engine (ISSUE 2 tentpole): the
// sharded path must produce output bitwise-identical to the serial path —
// same EpochReports, same suspicion maps, same trust evidence, same
// checkpoint bytes — at every worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/parallel/epoch_engine.hpp"
#include "core/parallel/thread_pool.hpp"
#include "core/streaming.hpp"
#include "core/system.hpp"

namespace trustrate {
namespace {

core::SystemConfig epoch_config(std::size_t workers) {
  core::SystemConfig cfg;
  cfg.filter.q = 0.05;
  cfg.ar.window_days = 10.0;
  cfg.ar.step_days = 5.0;
  cfg.ar.error_threshold = 0.022;
  cfg.b = 5.0;
  cfg.epoch_workers = workers;
  return cfg;
}

/// Seeded synthetic epoch: per product a dense honest stream over 60 days,
/// every third product also carries a tight collaborative block.
std::vector<core::ProductObservation> synthetic_epoch(std::size_t products,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<core::ProductObservation> observations(products);
  for (std::size_t p = 0; p < products; ++p) {
    core::ProductObservation& obs = observations[p];
    obs.product = static_cast<ProductId>(p);
    obs.t_start = 0.0;
    obs.t_end = 60.0;
    for (double t = rng.exponential(4.0); t < 60.0; t += rng.exponential(4.0)) {
      obs.ratings.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.2)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 400)), obs.product,
           RatingLabel::kHonest});
    }
    if (p % 3 == 0) {
      RaterId shill = static_cast<RaterId>(5000 + 100 * p);
      for (double t = 20.0 + rng.exponential(3.0); t < 35.0;
           t += rng.exponential(3.0)) {
        obs.ratings.push_back(
            {t, clamp_unit(rng.gaussian(0.65, 0.02)), shill++, obs.product,
             RatingLabel::kCollaborative2});
      }
    }
    sort_by_time(obs.ratings);
  }
  return observations;
}

void expect_bitwise_equal(const core::EpochReport& a,
                          const core::EpochReport& b) {
  EXPECT_EQ(a.detector_degraded, b.detector_degraded);
  EXPECT_EQ(a.rating_metrics.true_positive, b.rating_metrics.true_positive);
  EXPECT_EQ(a.rating_metrics.false_positive, b.rating_metrics.false_positive);
  EXPECT_EQ(a.rating_metrics.false_negative, b.rating_metrics.false_negative);
  EXPECT_EQ(a.rating_metrics.true_negative, b.rating_metrics.true_negative);
  ASSERT_EQ(a.products.size(), b.products.size());
  for (std::size_t i = 0; i < a.products.size(); ++i) {
    const core::ProductReport& pa = a.products[i];
    const core::ProductReport& pb = b.products[i];
    EXPECT_EQ(pa.product, pb.product);
    EXPECT_EQ(pa.detector_degraded, pb.detector_degraded);
    EXPECT_EQ(pa.filter_outcome.kept, pb.filter_outcome.kept);
    EXPECT_EQ(pa.filter_outcome.removed, pb.filter_outcome.removed);
    EXPECT_EQ(pa.kept, pb.kept);
    EXPECT_EQ(pa.flagged, pb.flagged);
    EXPECT_EQ(pa.suspicion.in_suspicious_window,
              pb.suspicion.in_suspicious_window);
    ASSERT_EQ(pa.suspicion.windows.size(), pb.suspicion.windows.size());
    for (std::size_t w = 0; w < pa.suspicion.windows.size(); ++w) {
      const detect::WindowReport& wa = pa.suspicion.windows[w];
      const detect::WindowReport& wb = pb.suspicion.windows[w];
      EXPECT_EQ(wa.first, wb.first);
      EXPECT_EQ(wa.last, wb.last);
      EXPECT_EQ(wa.evaluated, wb.evaluated);
      EXPECT_EQ(wa.suspicious, wb.suspicious);
      // Exact comparisons on purpose: bitwise, not approximately equal.
      // Skipped windows carry the NaN sentinel, which never compares equal
      // to itself — both sides must agree on skipping instead.
      if (wa.evaluated) {
        EXPECT_EQ(wa.model_error, wb.model_error);
      } else {
        EXPECT_TRUE(std::isnan(wa.model_error));
        EXPECT_TRUE(std::isnan(wb.model_error));
      }
      EXPECT_EQ(wa.level, wb.level);
      EXPECT_EQ(wa.window.start, wb.window.start);
      EXPECT_EQ(wa.window.end, wb.window.end);
    }
    ASSERT_EQ(pa.suspicion.suspicion.size(), pb.suspicion.suspicion.size());
    for (const auto& [rater, c] : pa.suspicion.suspicion) {
      ASSERT_TRUE(pb.suspicion.suspicion.contains(rater)) << "rater " << rater;
      EXPECT_EQ(c, pb.suspicion.suspicion.at(rater)) << "rater " << rater;
    }
  }
}

void expect_bitwise_equal_stores(const core::TrustEnhancedRatingSystem& a,
                                 const core::TrustEnhancedRatingSystem& b) {
  const auto& ra = a.trust_store().records();
  const auto& rb = b.trust_store().records();
  ASSERT_EQ(ra.size(), rb.size());
  for (const auto& [id, rec] : ra) {
    ASSERT_TRUE(rb.contains(id)) << "rater " << id;
    EXPECT_EQ(rec.successes, rb.at(id).successes) << "rater " << id;
    EXPECT_EQ(rec.failures, rb.at(id).failures) << "rater " << id;
  }
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  core::parallel::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroThreadsRunsInCaller) {
  core::parallel::ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 0u);
  std::vector<int> out(64, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  core::parallel::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  core::parallel::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("shard failure");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  core::parallel::ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(32, [&](std::size_t) { sum.fetch_add(1); });
    ASSERT_EQ(sum.load(), 32);
  }
}

// ------------------------------------------------------------ EpochEngine

TEST(EpochEngine, RejectsZeroWorkers) {
  EXPECT_THROW(core::parallel::EpochEngine engine(0), PreconditionError);
}

TEST(EpochEngine, SerialEngineMatchesAnalyzeProduct) {
  const auto observations = synthetic_epoch(4, 91);
  const core::SystemConfig cfg = epoch_config(1);
  const detect::BetaQuantileFilter filter(cfg.filter);
  const detect::ArSuspicionDetector detector(cfg.ar);
  const core::parallel::StageContext ctx{&cfg, &filter, &detector};

  core::parallel::EpochEngine engine(1);
  const auto reports = engine.analyze(observations, ctx);
  ASSERT_EQ(reports.size(), observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto direct = core::parallel::analyze_product(observations[i], ctx);
    EXPECT_EQ(reports[i].product, direct.product);
    EXPECT_EQ(reports[i].flagged, direct.flagged);
    EXPECT_EQ(reports[i].kept, direct.kept);
  }
}

TEST(EpochEngine, UnsortedObservationThrowsAtAnyWorkerCount) {
  auto observations = synthetic_epoch(4, 92);
  std::swap(observations[2].ratings.front(), observations[2].ratings.back());
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    core::TrustEnhancedRatingSystem system(epoch_config(workers));
    EXPECT_THROW(system.process_epoch(observations), PreconditionError)
        << workers << " workers";
  }
}

// --------------------------------------------------- batch determinism

TEST(ParallelEpoch, BitwiseIdenticalAcrossWorkerCounts) {
  const auto epoch1 = synthetic_epoch(12, 7);
  const auto epoch2 = synthetic_epoch(12, 8);  // second epoch: state carry

  core::TrustEnhancedRatingSystem serial(epoch_config(1));
  const core::EpochReport serial_r1 = serial.process_epoch(epoch1);
  const core::EpochReport serial_r2 = serial.process_epoch(epoch2);

  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << workers << " workers");
    core::TrustEnhancedRatingSystem parallel(epoch_config(workers));
    const core::EpochReport r1 = parallel.process_epoch(epoch1);
    const core::EpochReport r2 = parallel.process_epoch(epoch2);
    expect_bitwise_equal(serial_r1, r1);
    expect_bitwise_equal(serial_r2, r2);
    expect_bitwise_equal_stores(serial, parallel);
    // Aggregates are a function of the store: exact equality as well.
    EXPECT_EQ(serial.aggregate(epoch1.front().ratings),
              parallel.aggregate(epoch1.front().ratings));
    EXPECT_EQ(serial.malicious(), parallel.malicious());
  }
}

TEST(ParallelEpoch, DegradedProductsPropagateIdentically) {
  // One product whose windows are all too short for the normal equations
  // degrades to the beta-filter-only path; the flag must not depend on the
  // worker count.
  auto observations = synthetic_epoch(6, 17);
  observations[3].ratings.resize(4);  // fewer than 2*order+1 everywhere

  core::TrustEnhancedRatingSystem serial(epoch_config(1));
  core::TrustEnhancedRatingSystem parallel(epoch_config(4));
  const auto rs = serial.process_epoch(observations);
  const auto rp = parallel.process_epoch(observations);
  EXPECT_TRUE(rs.products[3].detector_degraded);
  expect_bitwise_equal(rs, rp);
  expect_bitwise_equal_stores(serial, parallel);
}

// ------------------------------------------------ streaming determinism

TEST(ParallelEpoch, StreamingCheckpointsAreByteIdentical) {
  // The strongest end-to-end statement: run the same hostile-ish stream
  // through the streaming front-end at 1 and 4 workers, flush, and compare
  // the full serialized state byte for byte.
  RatingSeries stream_data;
  Rng rng(51);
  for (ProductId p = 0; p < 8; ++p) {
    for (double t = rng.exponential(3.0); t < 75.0; t += rng.exponential(3.0)) {
      stream_data.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.22)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 250)), p,
           RatingLabel::kHonest});
    }
  }
  sort_by_time(stream_data);

  std::ostringstream serial_bytes, parallel_bytes;
  {
    core::StreamingRatingSystem stream(epoch_config(1), 30.0, 2,
                                       {.max_lateness_days = 1.0});
    for (const Rating& r : stream_data) stream.submit(r);
    stream.flush();
    core::save_checkpoint(stream, serial_bytes);
  }
  {
    core::StreamingRatingSystem stream(epoch_config(4), 30.0, 2,
                                       {.max_lateness_days = 1.0});
    for (const Rating& r : stream_data) stream.submit(r);
    stream.flush();
    core::save_checkpoint(stream, parallel_bytes);
  }
  EXPECT_EQ(serial_bytes.str(), parallel_bytes.str());
}

TEST(ParallelEpoch, CheckpointCrossesWorkerCounts) {
  // Worker count is configuration, not state: a checkpoint taken at 8
  // workers resumes at 1 (and vice versa) with bitwise-equal results.
  RatingSeries stream_data;
  Rng rng(52);
  for (ProductId p = 0; p < 4; ++p) {
    for (double t = rng.exponential(4.0); t < 70.0; t += rng.exponential(4.0)) {
      stream_data.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.2)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 120)), p,
           RatingLabel::kHonest});
    }
  }
  sort_by_time(stream_data);
  const std::size_t cut = stream_data.size() / 2;

  core::StreamingRatingSystem uninterrupted(epoch_config(1), 30.0);
  for (const Rating& r : stream_data) uninterrupted.submit(r);
  uninterrupted.flush();

  core::StreamingRatingSystem first_half(epoch_config(8), 30.0);
  for (std::size_t i = 0; i < cut; ++i) first_half.submit(stream_data[i]);
  std::ostringstream out;
  core::save_checkpoint(first_half, out);

  std::istringstream in(out.str());
  auto resumed = core::load_checkpoint(in, epoch_config(1));
  for (std::size_t i = cut; i < stream_data.size(); ++i) {
    resumed.submit(stream_data[i]);
  }
  resumed.flush();

  std::ostringstream a, b;
  core::save_checkpoint(uninterrupted, a);
  core::save_checkpoint(resumed, b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace trustrate
