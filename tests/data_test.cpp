// Unit tests for the data module: trace CSV I/O, the synthetic
// Netflix-like generator, and collaborative-rating injection.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/inject.hpp"
#include "data/netflix_like.hpp"
#include "data/trace.hpp"
#include "stats/descriptive.hpp"

namespace trustrate::data {
namespace {

// ----------------------------------------------------------------- trace

TEST(Trace, CsvRoundTrip) {
  RatingTrace trace;
  trace.name = "t";
  trace.ratings = {{1.5, 0.4, 3, 0, RatingLabel::kHonest},
                   {2.5, 0.8, 7, 0, RatingLabel::kHonest}};
  std::ostringstream out;
  save_trace_csv(trace, out);
  std::istringstream in(out.str());
  const RatingTrace loaded = load_trace_csv(in, "t");
  ASSERT_EQ(loaded.ratings.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.ratings[0].time, 1.5);
  EXPECT_DOUBLE_EQ(loaded.ratings[1].value, 0.8);
  EXPECT_EQ(loaded.ratings[0].rater, 3u);
}

TEST(Trace, LoadSortsByTime) {
  std::istringstream in("5.0,1,0.5\n1.0,2,0.6\n");
  const RatingTrace loaded = load_trace_csv(in, "t");
  EXPECT_TRUE(is_time_sorted(loaded.ratings));
  EXPECT_DOUBLE_EQ(loaded.ratings.front().time, 1.0);
}

TEST(Trace, LoadRejectsMalformedRows) {
  std::istringstream missing("1.0,2\n");
  EXPECT_THROW(load_trace_csv(missing, "t"), DataError);
  std::istringstream out_of_range("1.0,2,1.5\n");
  EXPECT_THROW(load_trace_csv(out_of_range, "t"), DataError);
  std::istringstream garbage("abc,2,0.5\n");
  EXPECT_THROW(load_trace_csv(garbage, "t"), DataError);
}

/// Throws `load` and returns the DataError message for inspection.
template <typename Load>
std::string data_error_message(Load load) {
  try {
    load();
  } catch (const DataError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected DataError";
  return {};
}

TEST(Trace, LoadErrorsCarryLineNumbers) {
  // The bad row is on file line 3 (line 2 is blank and must still count).
  std::istringstream truncated("1.0,2,0.5\n\n2.0,3\n");
  const std::string msg = data_error_message(
      [&] { load_trace_csv(truncated, "t"); });
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("t"), std::string::npos) << msg;
}

TEST(Trace, LoadRejectsNonFiniteValues) {
  // strtod happily parses "nan"/"inf"; the loader must not let them in
  // (NaN even slips past range checks because NaN comparisons are false).
  std::istringstream nan_value("1.0,2,nan\n");
  EXPECT_THROW(load_trace_csv(nan_value, "t"), DataError);
  std::istringstream inf_time("inf,2,0.5\n");
  EXPECT_THROW(load_trace_csv(inf_time, "t"), DataError);
  const std::string msg = data_error_message([] {
    std::istringstream in("1.0,2,nan\n");
    load_trace_csv(in, "t");
  });
  EXPECT_NE(msg.find("non-finite"), std::string::npos) << msg;
}

TEST(Trace, LoadEmptyFileYieldsEmptyTrace) {
  std::istringstream empty("");
  const RatingTrace loaded = load_trace_csv(empty, "t");
  EXPECT_TRUE(loaded.ratings.empty());
  std::istringstream blank_lines("\n\n\n");
  EXPECT_TRUE(load_trace_csv(blank_lines, "t").ratings.empty());
}

TEST(Trace, LoadRejectsTrailingTruncatedRow) {
  // Valid rows followed by a truncated final row: the error names the last
  // line, and nothing from the file leaks out.
  std::istringstream in("1.0,2,0.5\n2.0,3,0.6\n3.0,4\n");
  const std::string msg =
      data_error_message([&] { load_trace_csv(in, "t"); });
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(Trace, DurationOfEmptyTraceIsZero) {
  RatingTrace trace;
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
}

// ----------------------------------------------------------- netflix-like

TEST(NetflixLike, ArrivalRateHasSpikeAndTail) {
  NetflixLikeConfig cfg;
  const double at_peak = netflix_arrival_rate(cfg, cfg.peak_day);
  const double early = netflix_arrival_rate(cfg, 5.0);
  const double late = netflix_arrival_rate(cfg, 650.0);
  EXPECT_GT(at_peak, early);
  EXPECT_GT(at_peak, late);
  EXPECT_GT(late, 0.0);
}

TEST(NetflixLike, TraceCoversConfiguredSpan) {
  NetflixLikeConfig cfg;
  cfg.days = 300.0;
  Rng rng(300);
  const RatingTrace trace = generate_netflix_like(cfg, rng);
  ASSERT_GT(trace.ratings.size(), 200u);
  EXPECT_TRUE(is_time_sorted(trace.ratings));
  EXPECT_GE(trace.ratings.front().time, 0.0);
  EXPECT_LT(trace.ratings.back().time, 300.0);
}

TEST(NetflixLike, ValuesAreStarLevels) {
  NetflixLikeConfig cfg;
  cfg.days = 200.0;
  Rng rng(301);
  const RatingTrace trace = generate_netflix_like(cfg, rng);
  for (const Rating& r : trace.ratings) {
    const double stars = r.value * cfg.stars;
    EXPECT_NEAR(stars, std::round(stars), 1e-9);
    EXPECT_GE(stars, 1.0 - 1e-9);  // no zero-star level
    EXPECT_LE(stars, cfg.stars + 1e-9);
  }
}

TEST(NetflixLike, MeanNearConfiguredQuality) {
  NetflixLikeConfig cfg;
  Rng rng(302);
  const RatingTrace trace = generate_netflix_like(cfg, rng);
  const auto values = values_of(trace.ratings);
  const double mean = stats::summarize(values).mean;
  EXPECT_NEAR(mean, 0.5 * (cfg.quality_start + cfg.quality_end), 0.05);
}

TEST(NetflixLike, MoreRatingsNearPeak) {
  NetflixLikeConfig cfg;
  Rng rng(303);
  const RatingTrace trace = generate_netflix_like(cfg, rng);
  std::size_t near_peak = 0;
  std::size_t tail = 0;
  for (const Rating& r : trace.ratings) {
    if (r.time >= cfg.peak_day - 25 && r.time < cfg.peak_day + 25) ++near_peak;
    if (r.time >= 600 && r.time < 650) ++tail;
  }
  EXPECT_GT(near_peak, 2 * tail);
}

TEST(NetflixLike, DeterministicGivenSeed) {
  NetflixLikeConfig cfg;
  cfg.days = 100.0;
  Rng a(304);
  Rng b(304);
  EXPECT_EQ(generate_netflix_like(cfg, a).ratings,
            generate_netflix_like(cfg, b).ratings);
}

TEST(NetflixLike, ConfigValidation) {
  NetflixLikeConfig cfg;
  cfg.stars = 1;
  Rng rng(1);
  EXPECT_THROW(generate_netflix_like(cfg, rng), PreconditionError);
}

// -------------------------------------------------------------- injection

RatingTrace small_trace(Rng& rng) {
  NetflixLikeConfig cfg;
  cfg.days = 400.0;
  return generate_netflix_like(cfg, rng);
}

TEST(Inject, AddsType2AndShiftsType1InWindow) {
  Rng rng(400);
  const RatingTrace original = small_trace(rng);
  InjectionConfig inj;
  inj.attack_start = 100.0;
  inj.attack_end = 160.0;
  Rng rng2(401);
  const RatingTrace attacked = inject_collaborative(original, inj, rng2);

  EXPECT_GT(attacked.ratings.size(), original.ratings.size());
  EXPECT_TRUE(is_time_sorted(attacked.ratings));
  for (const Rating& r : attacked.ratings) {
    if (is_unfair(r.label)) {
      EXPECT_GE(r.time, inj.attack_start);
      EXPECT_LT(r.time, inj.attack_end);
    }
  }
}

TEST(Inject, Type2VolumeMatchesRecruitPower) {
  Rng rng(402);
  const RatingTrace original = small_trace(rng);
  InjectionConfig inj;
  inj.attack_start = 100.0;
  inj.attack_end = 160.0;
  inj.recruit_power2 = 1.0;

  std::size_t in_window_before = 0;
  for (const Rating& r : original.ratings) {
    if (r.time >= 100.0 && r.time < 160.0) ++in_window_before;
  }
  Rng rng2(403);
  const RatingTrace attacked = inject_collaborative(original, inj, rng2);
  std::size_t type2 = 0;
  for (const Rating& r : attacked.ratings) {
    if (r.label == RatingLabel::kCollaborative2) ++type2;
  }
  // Type-2 rate equals the empirical in-window rate; expect rough parity.
  EXPECT_NEAR(static_cast<double>(type2), static_cast<double>(in_window_before),
              0.4 * in_window_before);
}

TEST(Inject, Type1OnlyRelabelsExistingRatings) {
  Rng rng(404);
  const RatingTrace original = small_trace(rng);
  InjectionConfig inj;
  inj.attack_start = 100.0;
  inj.attack_end = 160.0;
  inj.recruit_power2 = 0.0;  // no type-2 stream
  Rng rng2(405);
  const RatingTrace attacked = inject_collaborative(original, inj, rng2);
  EXPECT_EQ(attacked.ratings.size(), original.ratings.size());
  std::size_t type1 = 0;
  for (const Rating& r : attacked.ratings) {
    if (r.label == RatingLabel::kCollaborative1) ++type1;
  }
  EXPECT_GT(type1, 0u);
}

TEST(Inject, Type2RatersGetFreshIds) {
  Rng rng(406);
  const RatingTrace original = small_trace(rng);
  RaterId max_original = 0;
  for (const Rating& r : original.ratings) max_original = std::max(max_original, r.rater);
  InjectionConfig inj;
  inj.attack_start = 100.0;
  inj.attack_end = 160.0;
  Rng rng2(407);
  const RatingTrace attacked = inject_collaborative(original, inj, rng2);
  for (const Rating& r : attacked.ratings) {
    if (r.label == RatingLabel::kCollaborative2) {
      EXPECT_GT(r.rater, max_original);
    }
  }
}

TEST(Inject, ShiftedMeanInsideWindow) {
  Rng rng(408);
  const RatingTrace original = small_trace(rng);
  InjectionConfig inj;
  inj.attack_start = 100.0;
  inj.attack_end = 160.0;
  Rng rng2(409);
  const RatingTrace attacked = inject_collaborative(original, inj, rng2);

  auto window_mean = [&](const RatingTrace& t) {
    std::vector<double> vs;
    for (const Rating& r : t.ratings) {
      if (r.time >= 100.0 && r.time < 160.0) vs.push_back(r.value);
    }
    return stats::summarize(vs).mean;
  };
  EXPECT_GT(window_mean(attacked), window_mean(original) + 0.05);
}

TEST(Inject, RejectsEmptyTraceAndBadWindow) {
  RatingTrace empty;
  InjectionConfig inj;
  Rng rng(1);
  EXPECT_THROW(inject_collaborative(empty, inj, rng), PreconditionError);
  Rng rng2(2);
  RatingTrace one;
  one.ratings = {{1.0, 0.5, 1, 0, RatingLabel::kHonest}};
  inj.attack_start = 10.0;
  inj.attack_end = 5.0;
  EXPECT_THROW(inject_collaborative(one, inj, rng2), PreconditionError);
}

}  // namespace
}  // namespace trustrate::data
