// Unit tests for the self-calibrating detection threshold.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "detect/adaptive_threshold.hpp"

namespace trustrate::detect {
namespace {

TEST(AdaptiveThreshold, StartsFromConfiguredPrior) {
  const AdaptiveThresholdTracker tracker(
      {.ratio = 0.5, .alpha = 0.1, .floor = 0.001, .initial_mean = 0.04});
  EXPECT_DOUBLE_EQ(tracker.baseline(), 0.04);
  EXPECT_DOUBLE_EQ(tracker.threshold(), 0.02);
}

TEST(AdaptiveThreshold, ConvergesToHonestBaseline) {
  AdaptiveThresholdTracker tracker(
      {.ratio = 0.6, .alpha = 0.1, .floor = 0.001, .initial_mean = 0.1});
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    tracker.observe(rng.gaussian(0.03, 0.004));
  }
  EXPECT_NEAR(tracker.baseline(), 0.03, 0.005);
  EXPECT_NEAR(tracker.threshold(), 0.018, 0.004);
}

TEST(AdaptiveThreshold, AdaptsToPopulationChange) {
  // The motivating scenario: a persistently quieter population (lower
  // rating variance) triggers recalibration and pulls the threshold down
  // rather than flagging everything forever.
  AdaptiveThresholdTracker tracker({.ratio = 0.6, .alpha = 0.1, .floor = 0.001,
                                    .initial_mean = 0.05,
                                    .recalibrate_after = 50});
  Rng rng(2);
  for (int i = 0; i < 300; ++i) tracker.observe(rng.gaussian(0.05, 0.005));
  const double high_threshold = tracker.threshold();
  for (int i = 0; i < 300; ++i) tracker.observe(rng.gaussian(0.02, 0.002));
  EXPECT_LT(tracker.threshold(), high_threshold);
  EXPECT_NEAR(tracker.baseline(), 0.02, 0.006);
}

TEST(AdaptiveThreshold, ShortCampaignDoesNotTriggerRecalibration) {
  AdaptiveThresholdTracker tracker({.ratio = 0.6, .alpha = 0.1, .floor = 0.001,
                                    .initial_mean = 0.03,
                                    .recalibrate_after = 50});
  Rng rng(7);
  for (int i = 0; i < 100; ++i) tracker.observe(rng.gaussian(0.03, 0.003));
  const double before = tracker.baseline();
  // 30 suspicious windows (a long campaign) — still below the limit.
  for (int i = 0; i < 30; ++i) tracker.observe(0.006);
  EXPECT_NEAR(tracker.baseline(), before, 1e-12);
  // Honest windows resume; baseline keeps tracking them.
  for (int i = 0; i < 20; ++i) tracker.observe(rng.gaussian(0.03, 0.003));
  EXPECT_NEAR(tracker.baseline(), 0.03, 0.006);
}

TEST(AdaptiveThreshold, SuspiciousErrorsDoNotPoisonBaseline) {
  AdaptiveThresholdTracker tracker(
      {.ratio = 0.6, .alpha = 0.1, .floor = 0.001, .initial_mean = 0.03,
       .warmup = 5});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) tracker.observe(rng.gaussian(0.03, 0.003));
  const double before = tracker.baseline();
  // A campaign shorter than recalibrate_after feeds suspicious errors.
  int absorbed = 0;
  for (int i = 0; i < 40; ++i) {
    if (tracker.observe(0.005)) ++absorbed;
  }
  EXPECT_EQ(absorbed, 0);
  EXPECT_NEAR(tracker.baseline(), before, 1e-12);
}

TEST(AdaptiveThreshold, WarmupAcceptsEverything) {
  AdaptiveThresholdTracker tracker(
      {.ratio = 0.6, .alpha = 0.5, .floor = 0.001, .initial_mean = 0.5,
       .warmup = 3});
  EXPECT_TRUE(tracker.observe(0.001));  // far below threshold, but warmup
  EXPECT_TRUE(tracker.observe(0.001));
  EXPECT_TRUE(tracker.observe(0.001));
  EXPECT_FALSE(tracker.observe(0.001));  // warmup over, now rejected
}

TEST(AdaptiveThreshold, FloorHolds) {
  AdaptiveThresholdTracker tracker(
      {.ratio = 0.6, .alpha = 0.5, .floor = 0.01, .initial_mean = 0.012,
       .warmup = 50});
  Rng rng(4);
  for (int i = 0; i < 50; ++i) tracker.observe(0.002);
  EXPECT_DOUBLE_EQ(tracker.threshold(), 0.01);
}

TEST(AdaptiveThreshold, ConfigValidation) {
  AdaptiveThresholdConfig bad;
  bad.ratio = 1.5;
  EXPECT_THROW(AdaptiveThresholdTracker{bad}, PreconditionError);
  bad = {};
  bad.alpha = 0.0;
  EXPECT_THROW(AdaptiveThresholdTracker{bad}, PreconditionError);
  bad = {};
  bad.initial_mean = 0.0;
  EXPECT_THROW(AdaptiveThresholdTracker{bad}, PreconditionError);
  AdaptiveThresholdTracker ok{AdaptiveThresholdConfig{}};
  EXPECT_THROW(ok.observe(-0.1), PreconditionError);
}

}  // namespace
}  // namespace trustrate::detect
