// Unit tests for the signal module: matrices/solvers, AR estimators,
// windowing. Includes the property at the heart of the paper: white noise
// has high normalized AR error; predictable signals have low error.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "signal/ar.hpp"
#include "signal/matrix.hpp"
#include "signal/window.hpp"

namespace trustrate::signal {
namespace {

// --------------------------------------------------------------- matrix

TEST(Matrix, MultiplyIdentity) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  const std::vector<double> x{3.0, 4.0};
  const auto y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(Matrix, SymmetryCheck) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  EXPECT_TRUE(m.is_symmetric());
  m(1, 0) = 2.0;
  EXPECT_FALSE(m.is_symmetric());
}

TEST(Solve, GaussianSolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const auto x = solve_gaussian(a, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Solve, GaussianNeedsPivoting) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const auto x = solve_gaussian(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Solve, GaussianDetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_FALSE(solve_gaussian(a, {1.0, 2.0}).has_value());
}

TEST(Solve, LdltSolvesSpdSystem) {
  Matrix a(3, 3);
  // A = B^T B + I for B = [[1,2,0],[0,1,1],[1,0,1]] is SPD.
  const double b[3][3] = {{1, 2, 0}, {0, 1, 1}, {1, 0, 1}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double acc = (i == j) ? 1.0 : 0.0;
      for (int k = 0; k < 3; ++k) acc += b[k][i] * b[k][j];
      a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = acc;
    }
  }
  const std::vector<double> truth{1.0, -2.0, 0.5};
  const auto rhs = a.multiply(truth);
  const auto x = solve_ldlt(a, rhs);
  ASSERT_TRUE(x.has_value());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR((*x)[static_cast<std::size_t>(i)], truth[static_cast<std::size_t>(i)], 1e-10);
}

TEST(Solve, LdltRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 0.0;
  a(1, 0) = 0.0; a(1, 1) = -1.0;
  EXPECT_FALSE(solve_ldlt(a, std::vector<double>{1.0, 1.0}).has_value());
}

TEST(Solve, AgreementBetweenSolvers) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4;
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.gaussian(0.0, 1.0);
    }
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = (i == j) ? 0.5 : 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += b(k, i) * b(k, j);
        a(i, j) = acc;
      }
    }
    std::vector<double> rhs(n);
    for (auto& v : rhs) v = rng.gaussian(0.0, 1.0);
    const auto x1 = solve_gaussian(a, rhs);
    const auto x2 = solve_ldlt(a, rhs);
    ASSERT_TRUE(x1 && x2);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR((*x1)[i], (*x2)[i], 1e-8);
  }
}

// ----------------------------------------------------------- AR fitting

std::vector<double> white_noise(Rng& rng, int n, double sigma = 1.0) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.gaussian(0.0, sigma));
  return xs;
}

TEST(ArCovariance, RecoversAr2Coefficients) {
  Rng rng(31);
  const std::vector<double> truth{-1.2, 0.8};  // stable AR(2)
  const auto noise = white_noise(rng, 4000, 0.5);
  const auto x = synthesize_ar(truth, noise);
  const ArModel m = fit_ar_covariance(x, 2, {.demean = true});
  ASSERT_EQ(m.order(), 2);
  EXPECT_NEAR(m.coeffs[0], truth[0], 0.03);
  EXPECT_NEAR(m.coeffs[1], truth[1], 0.03);
}

TEST(ArAutocorrelation, RecoversAr2Coefficients) {
  Rng rng(32);
  const std::vector<double> truth{-1.2, 0.8};
  const auto noise = white_noise(rng, 4000, 0.5);
  const auto x = synthesize_ar(truth, noise);
  const ArModel m = fit_ar_autocorrelation(x, 2, {.demean = true});
  EXPECT_NEAR(m.coeffs[0], truth[0], 0.05);
  EXPECT_NEAR(m.coeffs[1], truth[1], 0.05);
}

TEST(ArBurg, RecoversAr2Coefficients) {
  Rng rng(33);
  const std::vector<double> truth{-1.2, 0.8};
  const auto noise = white_noise(rng, 4000, 0.5);
  const auto x = synthesize_ar(truth, noise);
  const ArModel m = fit_ar_burg(x, 2, {.demean = true});
  EXPECT_NEAR(m.coeffs[0], truth[0], 0.05);
  EXPECT_NEAR(m.coeffs[1], truth[1], 0.05);
}

TEST(ArCovariance, WhiteNoiseHasHighError) {
  // The paper's core premise, tested across seeds: de-meaned white noise is
  // unpredictable, so the normalized error stays near 1.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto x = white_noise(rng, 200);
    const ArModel m = fit_ar_covariance(x, 4, {.demean = true});
    EXPECT_GT(m.normalized_error, 0.75) << "seed " << seed;
    EXPECT_LE(m.normalized_error, 1.0);
  }
}

TEST(ArCovariance, PredictableSignalHasLowError) {
  // A sinusoid is an extreme "collaborative" signal: nearly perfectly
  // AR-predictable.
  std::vector<double> x;
  for (int i = 0; i < 200; ++i) x.push_back(std::sin(0.3 * i));
  const ArModel m = fit_ar_covariance(x, 4, {.demean = true});
  EXPECT_LT(m.normalized_error, 1e-6);
}

TEST(ArCovariance, ConstantLevelIsPerfectlyPredictableWithoutDemean) {
  // Without demeaning a constant level is captured exactly (x(n) = x(n-1)):
  // the collaborative signature the detector keys on.
  std::vector<double> x(60, 0.8);
  const ArModel m = fit_ar_covariance(x, 4, {.demean = false});
  EXPECT_NEAR(m.normalized_error, 0.0, 1e-10);
}

TEST(ArCovariance, ConstantSignalWithDemeanIsDegenerate) {
  std::vector<double> x(60, 0.8);
  const ArModel m = fit_ar_covariance(x, 4, {.demean = true});
  EXPECT_TRUE(m.degenerate);
  EXPECT_DOUBLE_EQ(m.normalized_error, 0.0);
}

TEST(ArCovariance, ErrorAlwaysInUnitInterval) {
  Rng rng(44);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x;
    const int n = static_cast<int>(rng.uniform_int(10, 120));
    for (int i = 0; i < n; ++i) x.push_back(rng.uniform(0.0, 1.0));
    const int max_order = (n - 1) / 2;
    const int order = static_cast<int>(rng.uniform_int(1, std::max(1, std::min(6, max_order))));
    const ArModel m = fit_ar_covariance(x, order);
    EXPECT_GE(m.normalized_error, 0.0);
    EXPECT_LE(m.normalized_error, 1.0);
  }
}

TEST(ArCovariance, PreconditionsEnforced) {
  const std::vector<double> x(5, 1.0);
  EXPECT_THROW(fit_ar_covariance(x, 0), PreconditionError);
  EXPECT_THROW(fit_ar_covariance(x, 3), PreconditionError);  // needs >= 7
}

TEST(ArCovariance, ResidualsMatchReportedEnergy) {
  Rng rng(51);
  const auto x = white_noise(rng, 100);
  const ArModel m = fit_ar_covariance(x, 3, {.demean = false});
  const auto res = ar_residuals(x, m);
  double e = 0.0;
  for (double r : res) e += r * r;
  EXPECT_NEAR(e, m.residual_energy, 1e-6 * std::max(1.0, m.residual_energy));
}

TEST(ArModelApi, ResidualVarianceUsesRequestedOrderDf) {
  // Regression: residual_variance() must divide by N − requested_order even
  // after a degeneracy-forced order reduction left fewer coefficients —
  // the df used to follow order(), silently rescaling the statistic the
  // fixed 0.02 threshold was calibrated for.
  ArModel m;
  m.requested_order = 4;
  m.coeffs = {0.5};  // order() == 1 after a reduction
  m.sample_count = 20;
  m.residual_energy = 1.6;
  EXPECT_DOUBLE_EQ(m.residual_variance(), 1.6 / 16.0);  // not 1.6 / 19
}

TEST(ArCovariance, RankDeficientWindowKeepsRequestedOrderDf) {
  // Period-3 signal with the last sample breaking the pattern: the
  // regressor columns x(t−1) and x(t−4) are exactly collinear, so the
  // order-4 normal equations are singular and the fit reduces to order 3 —
  // where the broken tail sample leaves a *nonzero* residual, making the
  // df choice observable.
  std::vector<double> x;
  const double pattern[3] = {0.2, 0.7, 0.4};
  for (int i = 0; i < 20; ++i) x.push_back(pattern[i % 3]);
  x.back() = 0.9;
  const ArModel m = fit_ar_covariance(x, 4);
  ASSERT_LT(m.order(), 4);
  EXPECT_EQ(m.requested_order, 4);
  ASSERT_GT(m.residual_energy, 0.0);
  EXPECT_DOUBLE_EQ(m.residual_variance(),
                   m.residual_energy / static_cast<double>(x.size() - 4));
}

TEST(ArModelApi, PredictNextTracksAr1) {
  // x(n) = 0.9 x(n-1) + w -> coeffs = {-0.9}.
  ArModel m;
  m.coeffs = {-0.9};
  const std::vector<double> history{0.0, 1.0};
  EXPECT_NEAR(m.predict_next(history), 0.9, 1e-12);
}

TEST(ArModelApi, PredictNextUsesMean) {
  ArModel m;
  m.coeffs = {-1.0};
  m.mean = 0.5;
  const std::vector<double> history{0.7};
  // prediction = mean + 1.0 * (0.7 - 0.5)
  EXPECT_NEAR(m.predict_next(history), 0.7, 1e-12);
}

TEST(ArEstimators, AgreeOnLongStationaryData) {
  Rng rng(61);
  const std::vector<double> truth{-0.5};
  const auto noise = white_noise(rng, 8000);
  const auto x = synthesize_ar(truth, noise);
  const auto c = fit_ar_covariance(x, 1, {.demean = true});
  const auto a = fit_ar_autocorrelation(x, 1, {.demean = true});
  const auto b = fit_ar_burg(x, 1, {.demean = true});
  EXPECT_NEAR(c.coeffs[0], a.coeffs[0], 0.02);
  EXPECT_NEAR(c.coeffs[0], b.coeffs[0], 0.02);
}

TEST(ArOrderSelection, FpePrefersTrueOrder) {
  Rng rng(71);
  const std::vector<double> truth{-1.2, 0.8};
  const auto noise = white_noise(rng, 2000);
  const auto x = synthesize_ar(truth, noise);
  const int order = select_order_fpe(x, 6, {.demean = true});
  EXPECT_GE(order, 2);
  EXPECT_LE(order, 4);  // FPE may slightly overfit, never underfit here
}

TEST(ArSynthesize, ZeroCoefficientsReproduceInnovations) {
  const std::vector<double> w{1.0, -2.0, 3.0};
  const auto x = synthesize_ar({}, w);
  EXPECT_EQ(x, w);
}

// ------------------------------------------------------------ windowing

TEST(Window, TimeWindowsCoverRangeWithOverlap) {
  // Paper §IV: width 10, step 5.
  const auto ws = make_time_windows(0.0, 30.0, 10.0, 5.0);
  ASSERT_GE(ws.size(), 5u);
  EXPECT_DOUBLE_EQ(ws[0].start, 0.0);
  EXPECT_DOUBLE_EQ(ws[0].end, 10.0);
  EXPECT_DOUBLE_EQ(ws[1].start, 5.0);
  // Last window covers the end of the range.
  EXPECT_GE(ws.back().end, 30.0);
}

TEST(Window, LongHorizonEdgesStayOnGrid) {
  // Regression (ISSUE 2): window starts are computed as t0 + k*step, not by
  // repeated `start += step` — over a long horizon the accumulated
  // floating-point drift made late window edges disagree with the grid.
  const double t0 = 3.0;
  const double t1 = 1000.0;
  const double step = 0.1;  // inexact in binary: drift shows quickly
  const auto ws = make_time_windows(t0, t1, 0.7, step);
  ASSERT_GT(ws.size(), 9000u);
  for (std::size_t k = 0; k < ws.size(); ++k) {
    // Exact equality on purpose: the edge must be bitwise on the grid.
    EXPECT_EQ(ws[k].start, t0 + static_cast<double>(k) * step) << "k=" << k;
    EXPECT_EQ(ws[k].end, ws[k].start + 0.7) << "k=" << k;
  }
}

TEST(Window, SingleWindowWhenWidthCoversRange) {
  const auto ws = make_time_windows(0.0, 5.0, 10.0, 5.0);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_DOUBLE_EQ(ws[0].start, 0.0);
}

TEST(Window, CountWindowsDropIncompleteTail) {
  const auto ws = make_count_windows(25, 10, 10);
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[1].begin, 10u);
  EXPECT_EQ(ws[1].end, 20u);
}

TEST(Window, IndicesInWindowBinarySearch) {
  RatingSeries s;
  for (int i = 0; i < 10; ++i) {
    s.push_back({static_cast<double>(i), 0.5, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  const IndexWindow idx = indices_in_window(s, {2.0, 5.0});
  EXPECT_EQ(idx.begin, 2u);
  EXPECT_EQ(idx.end, 5u);  // half-open: times 2, 3, 4
}

TEST(Window, ValuesInWindowEmptyWhenNoOverlap) {
  RatingSeries s{{1.0, 0.5, 1, 0, RatingLabel::kHonest}};
  EXPECT_TRUE(values_in_window(s, {5.0, 6.0}).empty());
}

TEST(Window, ContainsIsHalfOpen) {
  const TimeWindow w{1.0, 2.0};
  EXPECT_TRUE(w.contains(1.0));
  EXPECT_FALSE(w.contains(2.0));
}

TEST(Window, PreconditionsEnforced) {
  EXPECT_THROW(make_time_windows(0.0, 10.0, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(make_time_windows(5.0, 1.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(make_count_windows(10, 0, 1), PreconditionError);
}

}  // namespace
}  // namespace trustrate::signal
