// Tests for the §IV experiment driver: structural consistency of the
// monthly statistics and product aggregates it reports.
#include <gtest/gtest.h>

#include "core/marketplace_experiment.hpp"

namespace trustrate::core {
namespace {

MarketplaceExperimentConfig small_config() {
  MarketplaceExperimentConfig cfg;
  cfg.market.reliable_raters = 80;
  cfg.market.careless_raters = 40;
  cfg.market.pc_raters = 40;
  cfg.market.months = 4;
  cfg.system = default_marketplace_system_config();
  return cfg;
}

TEST(MarketplaceExperiment, OneStatsEntryPerMonth) {
  const auto result = run_marketplace_experiment(small_config());
  ASSERT_EQ(result.months.size(), 4u);
  for (std::size_t i = 0; i < result.months.size(); ++i) {
    EXPECT_EQ(result.months[i].month, static_cast<int>(i) + 1);
  }
}

TEST(MarketplaceExperiment, AggregatesCoverEveryRatedProduct) {
  const auto cfg = small_config();
  const auto result = run_marketplace_experiment(cfg);
  // 4 months x 5 products, all of which receive ratings at these sizes.
  EXPECT_EQ(result.aggregates.size(), 20u);
  int dishonest = 0;
  for (const auto& a : result.aggregates) {
    if (a.dishonest) ++dishonest;
    EXPECT_GE(a.quality, cfg.market.quality_lo);
    EXPECT_LE(a.quality, cfg.market.quality_hi);
    for (double v : {a.simple_average, a.beta_function, a.weighted}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  EXPECT_EQ(dishonest, 4);
}

TEST(MarketplaceExperiment, TrustVectorCoversPopulation) {
  const auto result = run_marketplace_experiment(small_config());
  EXPECT_EQ(result.final_trust.size(), 160u);
  EXPECT_EQ(result.rater_kind.size(), 160u);
  for (double t : result.final_trust) {
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1.0);
  }
}

TEST(MarketplaceExperiment, RatesAreProbabilities) {
  const auto result = run_marketplace_experiment(small_config());
  for (const auto& m : result.months) {
    for (double v : {m.false_alarm_reliable, m.false_alarm_careless,
                     m.detection_pc, m.rating_metrics.detection_ratio(),
                     m.rating_metrics.false_alarm_ratio(),
                     m.window_metrics.detection_ratio()}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    for (double t : {m.mean_trust_reliable, m.mean_trust_careless,
                     m.mean_trust_pc}) {
      EXPECT_GT(t, 0.0);
      EXPECT_LT(t, 1.0);
    }
  }
}

TEST(MarketplaceExperiment, SeedChangesOutcome) {
  auto cfg = small_config();
  const auto a = run_marketplace_experiment(cfg);
  cfg.seed += 1;
  const auto b = run_marketplace_experiment(cfg);
  // Different seeds should produce observably different trust vectors.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.final_trust.size(); ++i) {
    if (a.final_trust[i] != b.final_trust[i]) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(MarketplaceExperiment, DefaultConfigIsValid) {
  // The published operating point must construct cleanly.
  const SystemConfig cfg = default_marketplace_system_config();
  EXPECT_NO_THROW(TrustEnhancedRatingSystem{cfg});
  EXPECT_TRUE(cfg.enable_filter);
  EXPECT_TRUE(cfg.enable_ar_detector);
  EXPECT_TRUE(cfg.detector_on_filtered);
}

TEST(MarketplaceExperiment, WhitewashGrowsRaterKind) {
  auto cfg = small_config();
  cfg.market.whitewash = true;
  const auto result = run_marketplace_experiment(cfg);
  // Sybil identities were appended beyond the base population.
  EXPECT_GT(result.rater_kind.size(), 160u);
  EXPECT_EQ(result.final_trust.size(), result.rater_kind.size());
}

}  // namespace
}  // namespace trustrate::core
