// Unit tests for the sim module: quality trajectories, the illustrative
// scenario generator (§III-A.2), and the marketplace simulator (§IV).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/illustrative.hpp"
#include "sim/marketplace.hpp"
#include "sim/quality.hpp"
#include "stats/descriptive.hpp"

namespace trustrate::sim {
namespace {

// ---------------------------------------------------------------- quality

TEST(Quality, LinearInterpolation) {
  const QualityTrajectory q(0.7, 0.8, 0.0, 60.0);
  EXPECT_DOUBLE_EQ(q.at(0.0), 0.7);
  EXPECT_DOUBLE_EQ(q.at(30.0), 0.75);
  EXPECT_DOUBLE_EQ(q.at(60.0), 0.8);
}

TEST(Quality, ClampedOutsideRange) {
  const QualityTrajectory q(0.7, 0.8, 0.0, 60.0);
  EXPECT_DOUBLE_EQ(q.at(-5.0), 0.7);
  EXPECT_DOUBLE_EQ(q.at(100.0), 0.8);
}

TEST(Quality, ConstantTrajectory) {
  const QualityTrajectory q = QualityTrajectory::constant(0.42);
  EXPECT_DOUBLE_EQ(q.at(0.0), 0.42);
  EXPECT_DOUBLE_EQ(q.at(1000.0), 0.42);
}

TEST(Quality, RejectsEmptyInterval) {
  EXPECT_THROW(QualityTrajectory(0.5, 0.6, 10.0, 10.0), PreconditionError);
}

// ------------------------------------------------------------ illustrative

TEST(Illustrative, SeriesIsSortedAndInRange) {
  IllustrativeConfig cfg;
  Rng rng(100);
  const RatingSeries s = generate_illustrative(cfg, rng);
  EXPECT_TRUE(is_time_sorted(s));
  for (const Rating& r : s) {
    EXPECT_GE(r.time, 0.0);
    EXPECT_LT(r.time, cfg.simu_time);
    EXPECT_GE(r.value, 0.0);
    EXPECT_LE(r.value, 1.0);
  }
}

TEST(Illustrative, ArrivalCountNearExpectation) {
  IllustrativeConfig cfg;  // 60 days at 3/day honest + attack extras
  Rng rng(101);
  const RatingSeries s = generate_illustrative_honest_only(cfg, rng);
  EXPECT_NEAR(static_cast<double>(s.size()), 180.0, 45.0);  // ~3 sigma
}

TEST(Illustrative, ValuesQuantizedToElevenLevels) {
  IllustrativeConfig cfg;
  Rng rng(102);
  const RatingSeries s = generate_illustrative(cfg, rng);
  for (const Rating& r : s) {
    const double scaled = r.value * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

TEST(Illustrative, UnfairRatingsOnlyInsideAttackWindow) {
  IllustrativeConfig cfg;
  Rng rng(103);
  const RatingSeries s = generate_illustrative(cfg, rng);
  for (const Rating& r : s) {
    if (is_unfair(r.label)) {
      EXPECT_GE(r.time, cfg.attack_start);
      EXPECT_LT(r.time, cfg.attack_end);
    }
  }
}

TEST(Illustrative, HonestOnlyHasNoUnfairLabels) {
  IllustrativeConfig cfg;
  Rng rng(104);
  const RatingSeries s = generate_illustrative_honest_only(cfg, rng);
  EXPECT_EQ(count_unfair(s), 0u);
}

TEST(Illustrative, Type2RatersAboveHonestPool) {
  IllustrativeConfig cfg;
  Rng rng(105);
  const RatingSeries s = generate_illustrative(cfg, rng);
  for (const Rating& r : s) {
    if (r.label == RatingLabel::kCollaborative2) {
      EXPECT_GE(r.rater, static_cast<RaterId>(cfg.honest_pool));
    } else {
      EXPECT_LT(r.rater, static_cast<RaterId>(cfg.honest_pool));
    }
  }
}

TEST(Illustrative, Type2MeanIsShiftedUp) {
  IllustrativeConfig cfg;
  Rng rng(106);
  const RatingSeries s = generate_illustrative(cfg, rng);
  std::vector<double> honest_in_attack;
  std::vector<double> type2;
  for (const Rating& r : s) {
    if (r.time < cfg.attack_start || r.time >= cfg.attack_end) continue;
    if (r.label == RatingLabel::kCollaborative2) {
      type2.push_back(r.value);
    } else if (r.label == RatingLabel::kHonest) {
      honest_in_attack.push_back(r.value);
    }
  }
  ASSERT_GT(type2.size(), 10u);
  ASSERT_GT(honest_in_attack.size(), 10u);
  EXPECT_GT(stats::summarize(type2).mean,
            stats::summarize(honest_in_attack).mean + 0.05);
  // The collaborative block is much tighter than honest noise.
  EXPECT_LT(stats::summarize(type2).stddev,
            stats::summarize(honest_in_attack).stddev);
}

TEST(Illustrative, Type1FractionNearRecruitPower) {
  IllustrativeConfig cfg;
  cfg.enable_type2 = false;
  cfg.recruit_power1 = 0.3;
  int type1 = 0;
  int in_window = 0;
  Rng rng(107);
  for (int run = 0; run < 20; ++run) {
    Rng child = rng.split();
    for (const Rating& r : generate_illustrative(cfg, child)) {
      if (r.time < cfg.attack_start || r.time >= cfg.attack_end) continue;
      ++in_window;
      if (r.label == RatingLabel::kCollaborative1) ++type1;
    }
  }
  EXPECT_NEAR(static_cast<double>(type1) / in_window, 0.3, 0.06);
}

TEST(Illustrative, DeterministicGivenSeed) {
  IllustrativeConfig cfg;
  Rng a(55);
  Rng b(55);
  EXPECT_EQ(generate_illustrative(cfg, a), generate_illustrative(cfg, b));
}

TEST(Illustrative, RejectsBadConfig) {
  IllustrativeConfig cfg;
  cfg.arrival_rate = 0.0;
  Rng rng(1);
  EXPECT_THROW(generate_illustrative(cfg, rng), PreconditionError);
}

// ------------------------------------------------------------ marketplace

MarketplaceConfig small_market() {
  MarketplaceConfig cfg;
  cfg.reliable_raters = 60;
  cfg.careless_raters = 30;
  cfg.pc_raters = 30;
  cfg.months = 3;
  return cfg;
}

TEST(Marketplace, ProductCalendar) {
  Rng rng(200);
  const auto result = simulate_marketplace(small_market(), rng);
  // 3 months x (4 honest + 1 dishonest).
  ASSERT_EQ(result.products.size(), 15u);
  int dishonest = 0;
  for (const auto& p : result.products) {
    if (p.dishonest) ++dishonest;
    EXPECT_DOUBLE_EQ(p.t_end - p.t_start, 30.0);
    EXPECT_GE(p.quality, 0.4);
    EXPECT_LE(p.quality, 0.6);
    EXPECT_TRUE(is_time_sorted(p.ratings));
  }
  EXPECT_EQ(dishonest, 3);
  EXPECT_EQ(result.products_in_month(1).size(), 5u);
}

TEST(Marketplace, RaterKindsPartitionIds) {
  Rng rng(201);
  const auto result = simulate_marketplace(small_market(), rng);
  ASSERT_EQ(result.rater_count(), 120u);
  EXPECT_EQ(result.rater_kind[0], RaterKind::kReliable);
  EXPECT_EQ(result.rater_kind[59], RaterKind::kReliable);
  EXPECT_EQ(result.rater_kind[60], RaterKind::kCareless);
  EXPECT_EQ(result.rater_kind[89], RaterKind::kCareless);
  EXPECT_EQ(result.rater_kind[90], RaterKind::kPotentialCollaborative);
}

TEST(Marketplace, OneRatingPerRaterPerProduct) {
  Rng rng(202);
  const auto result = simulate_marketplace(small_market(), rng);
  for (const auto& p : result.products) {
    std::vector<RaterId> raters;
    for (const Rating& r : p.ratings) raters.push_back(r.rater);
    std::sort(raters.begin(), raters.end());
    EXPECT_EQ(std::adjacent_find(raters.begin(), raters.end()), raters.end())
        << "product " << p.id;
  }
}

TEST(Marketplace, RatingsStayInsideProductMonth) {
  Rng rng(203);
  const auto result = simulate_marketplace(small_market(), rng);
  for (const auto& p : result.products) {
    for (const Rating& r : p.ratings) {
      EXPECT_GE(r.time, p.t_start);
      EXPECT_LT(r.time, p.t_end);
      EXPECT_EQ(r.product, p.id);
    }
  }
}

TEST(Marketplace, UnfairRatingsOnlyOnDishonestProductsInAttackWindow) {
  Rng rng(204);
  const auto result = simulate_marketplace(small_market(), rng);
  for (const auto& p : result.products) {
    for (const Rating& r : p.ratings) {
      if (!is_unfair(r.label)) continue;
      EXPECT_TRUE(p.dishonest);
      EXPECT_GE(r.time, p.attack_start);
      EXPECT_LT(r.time, p.attack_end);
      EXPECT_EQ(result.rater_kind[r.rater], RaterKind::kPotentialCollaborative);
    }
  }
}

TEST(Marketplace, AttackWindowInsideMonth) {
  Rng rng(205);
  const auto result = simulate_marketplace(small_market(), rng);
  for (const auto& p : result.products) {
    if (!p.dishonest) continue;
    EXPECT_GE(p.attack_start, p.t_start);
    EXPECT_LE(p.attack_end, p.t_end + 1e-9);
    EXPECT_NEAR(p.attack_end - p.attack_start, 10.0, 1e-9);
  }
}

TEST(Marketplace, RecruitPowerControlsRecruitment) {
  MarketplaceConfig cfg = small_market();
  cfg.recruit_power3 = 1.0;
  Rng rng(206);
  const auto result = simulate_marketplace(cfg, rng);
  EXPECT_EQ(result.ever_recruited.size(), 30u);  // all PC raters

  cfg.recruit_power3 = 0.0;
  Rng rng2(206);
  const auto none = simulate_marketplace(cfg, rng2);
  EXPECT_TRUE(none.ever_recruited.empty());
}

TEST(Marketplace, ValuesQuantizedToTenLevelsNoZero) {
  Rng rng(207);
  const auto result = simulate_marketplace(small_market(), rng);
  for (const auto& p : result.products) {
    for (const Rating& r : p.ratings) {
      EXPECT_GE(r.value, 0.1 - 1e-9);
      const double scaled = r.value * 10.0;
      EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    }
  }
}

TEST(Marketplace, BurstModeConcentratesAttack) {
  MarketplaceConfig cfg = small_market();
  cfg.recruit_burst = true;
  cfg.burst_mean_days = 1.0;
  Rng rng(208);
  const auto result = simulate_marketplace(cfg, rng);
  for (const auto& p : result.products) {
    if (!p.dishonest) continue;
    for (const Rating& r : p.ratings) {
      if (!is_unfair(r.label)) continue;
      EXPECT_GE(r.time, p.attack_start);
      EXPECT_LT(r.time, p.attack_end);
    }
  }
}

TEST(Marketplace, BurstAndSpreadVolumesComparable) {
  MarketplaceConfig spread = small_market();
  MarketplaceConfig burst = small_market();
  burst.recruit_burst = true;
  std::size_t unfair_spread = 0;
  std::size_t unfair_burst = 0;
  Rng rng(209);
  for (int run = 0; run < 10; ++run) {
    Rng a = rng.split();
    Rng b = rng.split();
    for (const auto& p : simulate_marketplace(spread, a).products) {
      unfair_spread += count_unfair(p.ratings);
    }
    for (const auto& p : simulate_marketplace(burst, b).products) {
      unfair_burst += count_unfair(p.ratings);
    }
  }
  ASSERT_GT(unfair_spread, 0u);
  const double ratio =
      static_cast<double>(unfair_burst) / static_cast<double>(unfair_spread);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.4);
}

TEST(Marketplace, DeterministicGivenSeed) {
  Rng a(210);
  Rng b(210);
  const auto ra = simulate_marketplace(small_market(), a);
  const auto rb = simulate_marketplace(small_market(), b);
  ASSERT_EQ(ra.products.size(), rb.products.size());
  for (std::size_t i = 0; i < ra.products.size(); ++i) {
    EXPECT_EQ(ra.products[i].ratings, rb.products[i].ratings);
  }
}

TEST(Marketplace, ConfigValidation) {
  MarketplaceConfig cfg = small_market();
  cfg.a1 = 0.5;  // must exceed 1
  Rng rng(1);
  EXPECT_THROW(simulate_marketplace(cfg, rng), PreconditionError);
  cfg = small_market();
  cfg.p_rate = 0.2;
  cfg.a1 = 6.0;  // a1 * p_rate > 1
  EXPECT_THROW(simulate_marketplace(cfg, rng), PreconditionError);
  cfg = small_market();
  cfg.attack_days = 31.0;
  EXPECT_THROW(simulate_marketplace(cfg, rng), PreconditionError);
}

}  // namespace
}  // namespace trustrate::sim
