// Integration tests: cross-module behaviour on seeded end-to-end scenarios
// — small versions of the paper's experiments asserting the qualitative
// results the figures rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/marketplace_experiment.hpp"
#include "core/system.hpp"
#include "data/inject.hpp"
#include "data/netflix_like.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "sim/illustrative.hpp"
#include "sim/marketplace.hpp"

namespace trustrate {
namespace {

// ---------------------------------------------------- illustrative (Fig 4)

TEST(Integration, IllustrativeAttackDropsModelError) {
  sim::IllustrativeConfig cfg;
  Rng rng_a(2007);
  Rng rng_h(2007);
  const RatingSeries attacked = sim::generate_illustrative(cfg, rng_a);
  const RatingSeries honest = sim::generate_illustrative_honest_only(cfg, rng_h);

  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 50;
  det_cfg.step_count = 10;
  const detect::ArSuspicionDetector det(det_cfg);

  auto min_error_in = [&](const RatingSeries& s, double t0, double t1) {
    double best = 1.0;
    for (const auto& w : det.analyze(s, 0.0, cfg.simu_time).windows) {
      if (!w.evaluated) continue;
      if (w.window.end > t0 && w.window.start < t1) {
        best = std::min(best, w.model_error);
      }
    }
    return best;
  };

  const double attacked_min =
      min_error_in(attacked, cfg.attack_start, cfg.attack_end);
  const double honest_min = min_error_in(honest, cfg.attack_start, cfg.attack_end);
  // Collaborative ratings make the attack interval markedly more
  // predictable than the same interval without them.
  EXPECT_LT(attacked_min, 0.75 * honest_min);
}

TEST(Integration, IllustrativeDetectionAcrossSeeds) {
  // A lightweight version of the 500-run experiment: detection well above
  // false alarm at the calibrated operating point.
  sim::IllustrativeConfig cfg;
  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 50;
  det_cfg.step_count = 10;
  det_cfg.error_threshold = 0.022;
  const detect::ArSuspicionDetector det(det_cfg);

  int detected = 0;
  int false_alarms = 0;
  constexpr int kRuns = 60;
  Rng root(99);
  for (int run = 0; run < kRuns; ++run) {
    Rng rng_a = root.split();
    Rng rng_h = root.split();
    const auto attacked = sim::generate_illustrative(cfg, rng_a);
    const auto honest = sim::generate_illustrative_honest_only(cfg, rng_h);
    bool hit = false;
    for (const auto& w : det.analyze(attacked, 0.0, cfg.simu_time).windows) {
      if (w.suspicious && w.window.end > cfg.attack_start &&
          w.window.start < cfg.attack_end) {
        hit = true;
      }
    }
    if (hit) ++detected;
    if (det.analyze(honest, 0.0, cfg.simu_time).suspicious_count() > 0) {
      ++false_alarms;
    }
  }
  EXPECT_GT(detected, kRuns / 2);           // paper: 0.782
  EXPECT_LT(false_alarms, kRuns / 5);       // paper: 0.06
  EXPECT_GT(detected, 3 * false_alarms);    // detection >> false alarm
}

// --------------------------------------------------- beta filter (Fig 4)

TEST(Integration, BetaFilterDoesNotStopModerateBiasBoost) {
  // The paper's Fig. 4 upper panel: even after filtering, the attack still
  // lifts the moving average — the motivation for the AR detector.
  sim::IllustrativeConfig cfg;
  Rng rng(2008);
  const RatingSeries attacked = sim::generate_illustrative(cfg, rng);
  const detect::BetaQuantileFilter filter({.q = 0.1});
  const RatingSeries kept = filter.filter(attacked).kept_series(attacked);

  auto mean_in = [](const RatingSeries& s, double t0, double t1) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const Rating& r : s) {
      if (r.time >= t0 && r.time < t1) {
        sum += r.value;
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  const double before_attack = mean_in(kept, 0.0, cfg.attack_start);
  const double during_attack = mean_in(kept, cfg.attack_start, cfg.attack_end);
  EXPECT_GT(during_attack, before_attack + 0.03);
}

// ------------------------------------------------------- Netflix (Fig 5)

TEST(Integration, InjectedTraceDropsModelErrorInAttackWindow) {
  data::NetflixLikeConfig nf;
  Rng rng(20031218);
  const data::RatingTrace original = data::generate_netflix_like(nf, rng);
  data::InjectionConfig inj;
  Rng rng2(42);
  const data::RatingTrace attacked = data::inject_collaborative(original, inj, rng2);

  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 100;
  det_cfg.step_count = 25;
  const detect::ArSuspicionDetector det(det_cfg);

  auto min_error_in_window = [&](const RatingSeries& s) {
    double best = 1.0;
    for (const auto& w : det.analyze(s, 0.0, nf.days).windows) {
      if (!w.evaluated) continue;
      if (w.window.end > inj.attack_start && w.window.start < inj.attack_end) {
        best = std::min(best, w.model_error);
      }
    }
    return best;
  };
  EXPECT_LT(min_error_in_window(attacked.ratings),
            0.75 * min_error_in_window(original.ratings));
}

// -------------------------------------------------- marketplace (Figs 6-12)

TEST(Integration, MarketplaceTrustSeparatesPopulations) {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.months = 6;  // half the paper's horizon keeps the test fast
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);
  const auto& last = result.months.back();

  // Fig. 6 ordering: reliable > careless > 0.5 > PC.
  EXPECT_GT(last.mean_trust_reliable, last.mean_trust_careless);
  EXPECT_GT(last.mean_trust_careless, 0.5);
  EXPECT_LT(last.mean_trust_pc, 0.5);

  // Figs. 7-8: meaningful PC detection, low honest false alarm.
  EXPECT_GT(last.detection_pc, 0.5);
  EXPECT_LT(last.false_alarm_reliable, 0.1);
}

TEST(Integration, MarketplaceDetectionImprovesOverTime) {
  core::MarketplaceExperimentConfig cfg;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);
  // Fig. 9 shape: later months dominate early months on rating detection,
  // and false alarms decay.
  const auto& m2 = result.months[1];
  const auto& m12 = result.months[11];
  EXPECT_GT(m12.rating_metrics.detection_ratio(),
            m2.rating_metrics.detection_ratio());
  EXPECT_LT(m12.rating_metrics.false_alarm_ratio(), 0.03);
}

TEST(Integration, MarketplaceAggregationProtectsDishonestProducts) {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 8.0;
  cfg.market.bias_shift2 = 0.15;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);

  double dev_simple = 0.0;
  double dev_weighted = 0.0;
  int n = 0;
  for (const auto& a : result.aggregates) {
    if (!a.dishonest) continue;
    dev_simple += std::fabs(a.simple_average - a.quality);
    dev_weighted += std::fabs(a.weighted - a.quality);
    ++n;
  }
  ASSERT_GT(n, 0);
  // Figs. 11: the proposed scheme at least halves the boost.
  EXPECT_LT(dev_weighted, 0.6 * dev_simple);
}

TEST(Integration, HonestProductsUnaffectedByScheme) {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 8.0;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);
  for (const auto& a : result.aggregates) {
    if (a.dishonest) continue;
    // Fig. 10: every scheme tracks honest products' quality.
    EXPECT_NEAR(a.simple_average, a.quality, 0.08);
    EXPECT_NEAR(a.weighted, a.quality, 0.08);
  }
}

TEST(Integration, ExperimentIsDeterministic) {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.months = 3;
  cfg.system = core::default_marketplace_system_config();
  const auto a = core::run_marketplace_experiment(cfg);
  const auto b = core::run_marketplace_experiment(cfg);
  ASSERT_EQ(a.final_trust.size(), b.final_trust.size());
  for (std::size_t i = 0; i < a.final_trust.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.final_trust[i], b.final_trust[i]);
  }
}

TEST(Integration, BurstAttacksNeedVolumeGatedDetector) {
  // The ablation bench's finding as a regression test: at bias 0.2 the
  // volume-gated narrow-window configuration detects burst campaigns that
  // the default configuration misses.
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 8.0;
  cfg.market.bias_shift2 = 0.2;
  cfg.market.recruit_burst = true;
  cfg.market.months = 6;
  cfg.system = core::default_marketplace_system_config();
  const auto plain = core::run_marketplace_experiment(cfg);

  cfg.system.ar.window_days = 3.0;
  cfg.system.ar.step_days = 1.5;
  cfg.system.ar.min_ratings = 60;
  cfg.system.ar.error_threshold = 0.03;
  const auto gated = core::run_marketplace_experiment(cfg);

  EXPECT_GT(gated.months.back().detection_pc,
            plain.months.back().detection_pc + 0.3);
  EXPECT_LT(gated.months.back().false_alarm_reliable, 0.05);
}

}  // namespace
}  // namespace trustrate
