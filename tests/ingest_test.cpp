// Fault-tolerance tests for the hardened streaming front-end: the
// bounded-lateness ingest buffer, quarantine semantics, degraded-mode
// epoch handling, and the FaultInjector-driven end-to-end suite (each
// fault class must leave the stream running with accurate counters, and
// repairable faults must reproduce the clean run's trust values exactly).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/streaming.hpp"
#include "data/inject.hpp"

namespace trustrate {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ----------------------------------------------------------- IngestBuffer

TEST(IngestBuffer, ReleasesInTimeOrderWithinLatenessBound) {
  core::IngestBuffer buffer({.max_lateness_days = 5.0});
  std::vector<Rating> released;
  EXPECT_EQ(buffer.submit({10.0, 0.5, 1, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kAccepted);
  EXPECT_EQ(buffer.submit({12.0, 0.5, 2, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kAccepted);
  // 11.0 regresses but stays within the bound: accepted as reordered.
  EXPECT_EQ(buffer.submit({11.0, 0.5, 3, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kReordered);
  // Nothing released yet: watermark is 12 - 5 = 7.
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(buffer.buffered(), 3u);

  // 18.0 pushes the watermark to 13: everything releases, sorted.
  buffer.submit({18.0, 0.5, 4, 0, RatingLabel::kHonest}, released);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_DOUBLE_EQ(released[0].time, 10.0);
  EXPECT_DOUBLE_EQ(released[1].time, 11.0);
  EXPECT_DOUBLE_EQ(released[2].time, 12.0);
  EXPECT_EQ(buffer.buffered(), 1u);

  buffer.drain(released);
  ASSERT_EQ(released.size(), 4u);
  EXPECT_DOUBLE_EQ(released[3].time, 18.0);
  EXPECT_EQ(buffer.stats().accepted, 4u);
  EXPECT_EQ(buffer.stats().reordered, 1u);
}

TEST(IngestBuffer, BehindWatermarkDroppedLate) {
  core::IngestBuffer buffer({.max_lateness_days = 2.0});
  std::vector<Rating> released;
  buffer.submit({10.0, 0.5, 1, 0, RatingLabel::kHonest}, released);
  EXPECT_EQ(buffer.submit({7.5, 0.5, 2, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kLate);
  EXPECT_EQ(buffer.stats().dropped_late, 1u);
  EXPECT_EQ(buffer.stats().quarantined, 1u);
  ASSERT_EQ(buffer.quarantine().size(), 1u);
  EXPECT_EQ(buffer.quarantine().front().reason, core::IngestClass::kLate);
}

TEST(IngestBuffer, ExactDuplicatesDropped) {
  core::IngestBuffer buffer({.max_lateness_days = 10.0});
  std::vector<Rating> released;
  const Rating r{5.0, 0.7, 9, 3, RatingLabel::kHonest};
  EXPECT_EQ(buffer.submit(r, released), core::IngestClass::kAccepted);
  EXPECT_EQ(buffer.submit(r, released), core::IngestClass::kDuplicate);
  // Same rater/time but different value is NOT a duplicate (equal time is
  // not a regression, so it is a plain accept).
  EXPECT_EQ(buffer.submit({5.0, 0.8, 9, 3, RatingLabel::kHonest}, released),
            core::IngestClass::kAccepted);
  EXPECT_EQ(buffer.stats().duplicates, 1u);
  EXPECT_EQ(buffer.stats().accepted, 2u);
}

TEST(IngestBuffer, MalformedQuarantined) {
  core::IngestBuffer buffer;
  std::vector<Rating> released;
  EXPECT_EQ(buffer.submit({kNan, 0.5, 1, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kMalformed);
  EXPECT_EQ(buffer.submit({1.0, kNan, 1, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kMalformed);
  EXPECT_EQ(buffer.submit({1.0, 1.5, 1, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kMalformed);
  EXPECT_EQ(buffer.submit({1.0, -0.1, 1, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kMalformed);
  EXPECT_EQ(buffer.stats().malformed, 4u);
  EXPECT_EQ(buffer.stats().quarantined, 4u);
  EXPECT_EQ(buffer.stats().accepted, 0u);
  EXPECT_TRUE(released.empty());
}

TEST(IngestBuffer, QuarantineCapped) {
  core::IngestBuffer buffer({.max_lateness_days = 0.0, .max_quarantine = 3});
  std::vector<Rating> released;
  for (int i = 0; i < 10; ++i) {
    buffer.submit({1.0, 2.0 + i, 1, 0, RatingLabel::kHonest}, released);
  }
  EXPECT_EQ(buffer.stats().quarantined, 10u);  // counters keep counting
  EXPECT_EQ(buffer.quarantine().size(), 3u);   // list stays bounded
  // Newest offenders are retained.
  EXPECT_DOUBLE_EQ(buffer.quarantine().back().rating.value, 11.0);
}

TEST(IngestBuffer, ZeroLatenessDemandsSortedStream) {
  core::IngestBuffer buffer;  // default: max_lateness_days = 0
  std::vector<Rating> released;
  buffer.submit({1.0, 0.5, 1, 0, RatingLabel::kHonest}, released);
  ASSERT_EQ(released.size(), 1u);  // released immediately
  EXPECT_EQ(buffer.submit({0.5, 0.5, 2, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kLate);
  // Equal times are fine.
  EXPECT_EQ(buffer.submit({1.0, 0.6, 3, 0, RatingLabel::kHonest}, released),
            core::IngestClass::kAccepted);
}

TEST(IngestBuffer, ClassNames) {
  EXPECT_STREQ(core::to_string(core::IngestClass::kAccepted), "accepted");
  EXPECT_STREQ(core::to_string(core::IngestClass::kMalformed), "malformed");
}

// ----------------------------------------------------- streaming + faults

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Three months of honest traffic with a month-2 shill campaign — enough
/// structure for the detector to have something to find.
RatingSeries attack_stream(std::uint64_t seed) {
  Rng rng(seed);
  RatingSeries stream;
  for (int month = 0; month < 3; ++month) {
    const double t0 = month * 30.0;
    for (double t = t0 + rng.exponential(8.0); t < t0 + 30.0;
         t += rng.exponential(8.0)) {
      stream.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 200)), 1,
           RatingLabel::kHonest});
    }
    if (month == 1) {
      RaterId shill = 9000;
      for (double t = t0 + 8.0 + rng.exponential(18.0); t < t0 + 18.0;
           t += rng.exponential(18.0)) {
        stream.push_back(
            {t, quantize_unit(clamp_unit(rng.gaussian(0.72, 0.02)), 10, false),
             shill++, 1, RatingLabel::kCollaborative2});
      }
    }
  }
  sort_by_time(stream);
  return stream;
}

/// Runs a full stream through a fresh system and returns it.
core::StreamingRatingSystem run_stream(const RatingSeries& arrivals,
                                       core::IngestConfig ingest = {}) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0, 2, ingest);
  for (const Rating& r : arrivals) stream.submit(r);
  stream.flush();
  return stream;
}

/// Asserts bit-exact trust equality over the union of both stores.
void expect_identical_trust(const core::StreamingRatingSystem& a,
                            const core::StreamingRatingSystem& b) {
  const auto& ra = a.system().trust_store().records();
  const auto& rb = b.system().trust_store().records();
  ASSERT_EQ(ra.size(), rb.size());
  for (const auto& [id, rec] : ra) {
    ASSERT_TRUE(rb.contains(id)) << "rater " << id;
    EXPECT_EQ(rec.successes, rb.at(id).successes) << "rater " << id;
    EXPECT_EQ(rec.failures, rb.at(id).failures) << "rater " << id;
  }
}

TEST(FaultTolerance, ReorderedWithinBoundMatchesCleanRunExactly) {
  const RatingSeries clean = attack_stream(101);
  data::FaultInjector injector({.delay_fraction = 0.3, .max_delay_days = 3.0},
                               7);
  const RatingSeries faulted = injector.corrupt(clean);
  ASSERT_GT(injector.summary().reordered, 10u);

  const auto baseline = run_stream(clean);
  const auto hardened = run_stream(faulted, {.max_lateness_days = 3.0});

  const auto& stats = hardened.ingest_stats();
  EXPECT_EQ(stats.submitted, faulted.size());
  EXPECT_EQ(stats.accepted, clean.size());
  EXPECT_EQ(stats.reordered, injector.summary().reordered);
  EXPECT_EQ(stats.dropped_late, 0u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.malformed, 0u);

  // Bounded reordering is fully repaired: bit-exact downstream equality.
  EXPECT_EQ(hardened.epochs_closed(), baseline.epochs_closed());
  expect_identical_trust(baseline, hardened);
  EXPECT_EQ(baseline.aggregate(1), hardened.aggregate(1));
}

TEST(FaultTolerance, DuplicatesDroppedAndCounted) {
  const RatingSeries clean = attack_stream(102);
  data::FaultInjector injector({.duplicate_fraction = 0.25}, 8);
  const RatingSeries faulted = injector.corrupt(clean);
  ASSERT_GT(injector.summary().duplicated, 10u);

  const auto baseline = run_stream(clean);
  const auto hardened = run_stream(faulted);

  EXPECT_EQ(hardened.ingest_stats().duplicates, injector.summary().duplicated);
  EXPECT_EQ(hardened.ingest_stats().accepted, clean.size());
  expect_identical_trust(baseline, hardened);
}

TEST(FaultTolerance, MalformedQuarantinedAndCounted) {
  const RatingSeries clean = attack_stream(103);
  data::FaultInjector injector({.corrupt_fraction = 0.1}, 9);
  const RatingSeries faulted = injector.corrupt(clean);
  ASSERT_GT(injector.summary().corrupted, 5u);

  const auto hardened = run_stream(faulted);
  const auto& stats = hardened.ingest_stats();
  EXPECT_EQ(stats.malformed, injector.summary().corrupted);
  EXPECT_EQ(stats.quarantined, injector.summary().corrupted);
  EXPECT_EQ(stats.accepted, clean.size() - injector.summary().corrupted);
  // The pipeline still closed its epochs and still distrusts the shills.
  EXPECT_EQ(hardened.epochs_closed(), 3u);
  double shill_trust = 0.0;
  int shills = 0;
  for (const auto& [id, rec] : hardened.system().trust_store().records()) {
    if (id >= 9000) {
      shill_trust += rec.trust();
      ++shills;
    }
  }
  ASSERT_GT(shills, 5);
  EXPECT_LT(shill_trust / shills, 0.45);
}

TEST(FaultTolerance, BeyondBoundDroppedLateStreamSurvives) {
  const RatingSeries clean = attack_stream(104);
  data::FaultInjector injector({.delay_fraction = 0.2, .max_delay_days = 10.0},
                               10);
  const RatingSeries faulted = injector.corrupt(clean);

  // Lateness bound much smaller than the injected delays: some arrivals
  // miss the window and must be dead-lettered, not processed or thrown.
  const auto hardened = run_stream(faulted, {.max_lateness_days = 1.0});
  const auto& stats = hardened.ingest_stats();
  EXPECT_GT(stats.dropped_late, 0u);
  EXPECT_EQ(stats.submitted, faulted.size());
  EXPECT_EQ(stats.accepted + stats.dropped_late, faulted.size());
  EXPECT_EQ(stats.quarantined, stats.dropped_late + stats.malformed);
  for (const auto& q : hardened.quarantine()) {
    EXPECT_EQ(q.reason, core::IngestClass::kLate);
  }
}

TEST(FaultTolerance, AllFaultClassesAtOnceCountersReconcile) {
  const RatingSeries clean = attack_stream(105);
  data::FaultInjector injector({.delay_fraction = 0.2,
                                .max_delay_days = 2.0,
                                .duplicate_fraction = 0.1,
                                .corrupt_fraction = 0.05},
                               11);
  const RatingSeries faulted = injector.corrupt(clean);

  const auto hardened = run_stream(faulted, {.max_lateness_days = 2.0});
  const auto& stats = hardened.ingest_stats();
  EXPECT_EQ(stats.submitted, faulted.size());
  EXPECT_EQ(stats.duplicates, injector.summary().duplicated);
  EXPECT_EQ(stats.malformed, injector.summary().corrupted);
  EXPECT_EQ(stats.reordered, injector.summary().reordered);
  EXPECT_EQ(stats.dropped_late, 0u);  // delays within the bound
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.duplicates + stats.malformed);
}

// ---------------------------------------------------------- degraded mode

TEST(DegradedMode, SparseEpochFallsBackToBetaFilterOnly) {
  // Three ratings per epoch: every AR window is shorter than the normal
  // equations need, so the epoch must close on the beta-filter-only path
  // with a health flag — not throw.
  core::StreamingRatingSystem stream(pipeline_config(), 30.0);
  for (int epoch = 0; epoch < 2; ++epoch) {
    const double t0 = epoch * 30.0;
    stream.submit({t0 + 1.0, 0.5, 1, 0, RatingLabel::kHonest});
    stream.submit({t0 + 2.0, 0.6, 2, 0, RatingLabel::kHonest});
    stream.submit({t0 + 3.0, 0.4, 3, 0, RatingLabel::kHonest});
  }
  stream.flush();
  ASSERT_EQ(stream.epochs_closed(), 2u);
  ASSERT_EQ(stream.epoch_health().size(), 2u);
  EXPECT_EQ(stream.epoch_health()[0], core::EpochHealth::kDegradedDetector);
  EXPECT_EQ(stream.degraded_epochs(), 2u);
  // Trust was still updated from the filter path.
  EXPECT_GT(stream.system().trust_store().size(), 0u);
}

TEST(DegradedMode, FallbackMatchesDetectorDisabledRun) {
  // A degraded epoch's trust updates must equal a run with the AR detector
  // explicitly disabled — the documented beta-filter-only fallback.
  RatingSeries sparse;
  for (int i = 0; i < 5; ++i) {
    sparse.push_back({static_cast<double>(i), 0.4 + 0.05 * i,
                      static_cast<RaterId>(i), 0, RatingLabel::kHonest});
  }
  auto degraded_cfg = pipeline_config();
  core::StreamingRatingSystem degraded(degraded_cfg, 30.0);
  for (const Rating& r : sparse) degraded.submit(r);
  degraded.flush();
  ASSERT_EQ(degraded.degraded_epochs(), 1u);

  auto no_detector_cfg = pipeline_config();
  no_detector_cfg.enable_ar_detector = false;
  core::StreamingRatingSystem reference(no_detector_cfg, 30.0);
  for (const Rating& r : sparse) reference.submit(r);
  reference.flush();

  for (RaterId id = 0; id < 5; ++id) {
    EXPECT_EQ(degraded.trust(id), reference.trust(id)) << "rater " << id;
  }
}

TEST(DegradedMode, HealthyEpochNotFlagged) {
  const RatingSeries clean = attack_stream(106);
  const auto stream = run_stream(clean);
  ASSERT_GT(stream.epoch_health().size(), 0u);
  EXPECT_EQ(stream.epoch_health()[0], core::EpochHealth::kHealthy);
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjector, DeterministicGivenSeed) {
  const RatingSeries clean = attack_stream(107);
  data::FaultInjector a({.delay_fraction = 0.2, .max_delay_days = 2.0}, 3);
  data::FaultInjector b({.delay_fraction = 0.2, .max_delay_days = 2.0}, 3);
  EXPECT_EQ(a.corrupt(clean), b.corrupt(clean));
}

TEST(FaultInjector, NoFaultsIsIdentity) {
  const RatingSeries clean = attack_stream(108);
  data::FaultInjector injector({}, 4);
  EXPECT_EQ(injector.corrupt(clean), clean);
  EXPECT_EQ(injector.summary().total, clean.size());
  EXPECT_EQ(injector.summary().reordered, 0u);
}

TEST(FaultInjector, ValidatesConfig) {
  EXPECT_THROW(data::FaultInjector({.delay_fraction = 0.8,
                                    .duplicate_fraction = 0.3},
                                   1),
               PreconditionError);
  EXPECT_THROW(data::FaultInjector({.max_delay_days = -1.0}, 1),
               PreconditionError);
}

}  // namespace
}  // namespace trustrate
