// Unit tests for the aggregation module: the four §III-B.2 schemes and the
// eq.(1) attack-power analysis.
#include <gtest/gtest.h>

#include "agg/aggregator.hpp"
#include "agg/attack_power.hpp"
#include "common/error.hpp"

namespace trustrate::agg {
namespace {

std::vector<TrustedRating> mixed_population() {
  // 2 honest raters (rating 0.8, trust 0.9), 2 attackers (0.4, trust 0.3).
  return {{0.8, 0.9}, {0.8, 0.9}, {0.4, 0.3}, {0.4, 0.3}};
}

// --------------------------------------------------------------- schemes

TEST(SimpleAverage, IgnoresTrust) {
  const SimpleAverage s;
  EXPECT_DOUBLE_EQ(s.aggregate(mixed_population()), 0.6);
}

TEST(SimpleAverage, SingleRating) {
  const SimpleAverage s;
  const std::vector<TrustedRating> one{{0.3, 0.5}};
  EXPECT_DOUBLE_EQ(s.aggregate(one), 0.3);
}

TEST(BetaAggregation, MatchesClosedForm) {
  const BetaAggregation b;
  // S' = 2.4, F' = 1.6 -> (2.4 + 1) / (2.4 + 1.6 + 2) = 3.4/6.
  EXPECT_NEAR(b.aggregate(mixed_population()), 3.4 / 6.0, 1e-12);
}

TEST(BetaAggregation, PullsTowardHalfWithFewRatings) {
  const BetaAggregation b;
  const std::vector<TrustedRating> one{{1.0, 0.9}};
  // (1+1)/(1+0+2) = 2/3: strong prior pull with a single rating.
  EXPECT_NEAR(b.aggregate(one), 2.0 / 3.0, 1e-12);
}

TEST(ModifiedWeightedAverage, ExcludesAtOrBelowNeutral) {
  const ModifiedWeightedAverage w;
  // Attackers at trust 0.3 get weight 0 -> pure honest mean.
  EXPECT_DOUBLE_EQ(w.aggregate(mixed_population()), 0.8);
}

TEST(ModifiedWeightedAverage, WeightIsTrustAboveNeutral) {
  const ModifiedWeightedAverage w;
  const std::vector<TrustedRating> ratings{{1.0, 0.9}, {0.0, 0.6}};
  // weights 0.4 and 0.1 -> (0.4*1 + 0.1*0)/0.5 = 0.8.
  EXPECT_NEAR(w.aggregate(ratings), 0.8, 1e-12);
}

TEST(ModifiedWeightedAverage, AllNeutralFallsBackToMean) {
  const ModifiedWeightedAverage w;
  const std::vector<TrustedRating> ratings{{0.2, 0.5}, {0.6, 0.5}};
  EXPECT_DOUBLE_EQ(w.aggregate(ratings), 0.4);
}

TEST(ModifiedWeightedAverage, ExactlyNeutralTrustExcluded) {
  const ModifiedWeightedAverage w;
  const std::vector<TrustedRating> ratings{{0.2, 0.5}, {0.9, 0.8}};
  EXPECT_DOUBLE_EQ(w.aggregate(ratings), 0.9);
}

TEST(OpinionAggregation, AdmitsAboveThresholdEqually) {
  const OpinionAggregation o;
  // Attacker trust 0.3 rejected; honest 0.9 admitted.
  EXPECT_DOUBLE_EQ(o.aggregate(mixed_population()), 0.8);
}

TEST(OpinionAggregation, ModeratelyTrustedAttackersAdmittedFullWeight) {
  // The failure mode the paper measured: trust 0.6 attackers participate
  // at full weight, dragging the aggregate to the plain mean.
  const OpinionAggregation o;
  const std::vector<TrustedRating> ratings{{0.8, 0.95}, {0.8, 0.95},
                                           {0.4, 0.6}, {0.4, 0.6}};
  EXPECT_DOUBLE_EQ(o.aggregate(ratings), 0.6);
}

TEST(OpinionAggregation, NobodyAdmittedFallsBackToMean) {
  const OpinionAggregation o;
  const std::vector<TrustedRating> ratings{{0.2, 0.3}, {0.8, 0.4}};
  EXPECT_DOUBLE_EQ(o.aggregate(ratings), 0.5);
}

TEST(Aggregators, EmptyInputThrows) {
  const std::vector<TrustedRating> empty;
  EXPECT_THROW(SimpleAverage{}.aggregate(empty), PreconditionError);
  EXPECT_THROW(BetaAggregation{}.aggregate(empty), PreconditionError);
  EXPECT_THROW(ModifiedWeightedAverage{}.aggregate(empty), PreconditionError);
  EXPECT_THROW(OpinionAggregation{}.aggregate(empty), PreconditionError);
}

TEST(Aggregators, FactoryCoversAllKinds) {
  EXPECT_EQ(make_aggregator(AggregatorKind::kSimpleAverage)->name(),
            "simple-average");
  EXPECT_EQ(make_aggregator(AggregatorKind::kBetaFunction)->name(),
            "beta-function");
  EXPECT_EQ(make_aggregator(AggregatorKind::kModifiedWeightedAverage)->name(),
            "modified-weighted-average");
  EXPECT_EQ(make_aggregator(AggregatorKind::kOpinionTrustModel)->name(),
            "opinion-trust-model");
}

// Property: every scheme returns a value inside the rating range.
class AggregatorBoundsTest : public ::testing::TestWithParam<AggregatorKind> {};

TEST_P(AggregatorBoundsTest, OutputWithinUnitInterval) {
  const auto aggregator = make_aggregator(GetParam());
  const std::vector<std::vector<TrustedRating>> cases{
      {{0.0, 0.1}}, {{1.0, 0.99}},
      {{0.0, 0.9}, {1.0, 0.9}},
      {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}},
      {{0.1, 0.2}, {0.9, 0.8}, {0.3, 0.6}, {0.7, 0.4}},
  };
  for (const auto& ratings : cases) {
    const double out = aggregator->aggregate(ratings);
    EXPECT_GE(out, 0.0) << aggregator->name();
    EXPECT_LE(out, 1.0) << aggregator->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AggregatorBoundsTest,
                         ::testing::Values(AggregatorKind::kSimpleAverage,
                                           AggregatorKind::kBetaFunction,
                                           AggregatorKind::kModifiedWeightedAverage,
                                           AggregatorKind::kOpinionTrustModel));

// The paper's headline aggregation property, as a deterministic test.
TEST(Aggregators, ProposedSchemeResistsMajorityAttack) {
  // 10 honest at 0.8 (trust 0.95) vs 10 attackers at 0.4 (trust 0.3):
  // only the modified weighted average stays at the honest consensus.
  std::vector<TrustedRating> ratings;
  for (int i = 0; i < 10; ++i) ratings.push_back({0.8, 0.95});
  for (int i = 0; i < 10; ++i) ratings.push_back({0.4, 0.3});
  EXPECT_NEAR(ModifiedWeightedAverage{}.aggregate(ratings), 0.8, 1e-9);
  EXPECT_NEAR(SimpleAverage{}.aggregate(ratings), 0.6, 1e-9);
  EXPECT_LT(BetaAggregation{}.aggregate(ratings), 0.65);
}

// ------------------------------------------------------------ eq (1)

TEST(AttackPower, AveragedRatingMatchesFormula) {
  EXPECT_DOUBLE_EQ(averaged_rating(3.0, 90, 5.0, 30), (270.0 + 150.0) / 120.0);
}

TEST(AttackPower, PaperStrategyOneThreshold) {
  // Strategy 1 (rate 5): M > N/3.
  EXPECT_EQ(min_attackers_to_boost(3.0, 90, 5.0, 3.5), 31);
  EXPECT_EQ(min_attackers_to_boost(3.0, 30, 5.0, 3.5), 11);
}

TEST(AttackPower, PaperStrategyTwoThreshold) {
  // Strategy 2 (rate 4): M > N.
  EXPECT_EQ(min_attackers_to_boost(3.0, 90, 4.0, 3.5), 91);
}

TEST(AttackPower, MinimumIsTight) {
  for (long long n : {10, 50, 100}) {
    const long long m = min_attackers_to_boost(3.0, n, 5.0, 3.5);
    EXPECT_GT(averaged_rating(3.0, n, 5.0, m), 3.5);
    if (m > 1) {
      EXPECT_LE(averaged_rating(3.0, n, 5.0, m - 1), 3.5);
    }
  }
}

TEST(AttackPower, ZeroHonestNeedsOneAttacker) {
  EXPECT_EQ(min_attackers_to_boost(3.0, 0, 5.0, 3.5), 1);
}

TEST(AttackPower, PreconditionChecks) {
  EXPECT_THROW(min_attackers_to_boost(3.0, 10, 3.4, 3.5), PreconditionError);
  EXPECT_THROW(min_attackers_to_boost(3.6, 10, 5.0, 3.5), PreconditionError);
  EXPECT_THROW(averaged_rating(3.0, 0, 5.0, 0), PreconditionError);
}

}  // namespace
}  // namespace trustrate::agg
