// Sharded-engine tests (ISSUE 8): SPSC ring semantics (FIFO, wraparound,
// backpressure, a two-thread hammer — the TSan target for the shard
// transport), cross-shard merge determinism under adversarial placement
// skew, per-shard quarantine caps and skipped-cell accounting, checkpoint
// v3<->v4 compatibility at changing shard counts, and the sharded durable
// front-end's recovery: clean reopen, a torn shard WAL (cross-shard
// ordinal gap -> discard + WAL reset), and an on-disk layout change.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/durable/sharded_durable.hpp"
#include "core/durable/wal.hpp"
#include "core/shard/sharded_system.hpp"
#include "core/shard/spsc_queue.hpp"
#include "core/streaming.hpp"

namespace trustrate {
namespace {

namespace fs = std::filesystem;
using core::durable::ShardedDurableOptions;
using core::durable::ShardedDurableStream;
using core::shard::ShardedRatingSystem;
using core::shard::ShardOptions;
using core::shard::SpscQueue;

/// Fresh per-test scratch directory under the system temp dir.
fs::path test_dir(const std::string& name) {
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path dir =
      fs::temp_directory_path() / ("trustrate-sharding-" + uniq) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Deterministic mixed stream: 7 products, 13 raters, in-bound reorder,
/// exact duplicates, watermark-late drops, and malformed values — enough
/// ingest texture that a layout-dependent bug in the classifier front door
/// or the dead-letter routing shows up in the checkpoint bytes.
RatingSeries mixed_stream() {
  RatingSeries s;
  double t = 0.0;
  for (int i = 0; i < 240; ++i) {
    t += 0.5;
    s.push_back({t, (i % 11) * 0.09, static_cast<RaterId>(1 + i % 13),
                 static_cast<ProductId>(1 + i % 7), RatingLabel::kHonest});
    if (i % 37 == 5) s.push_back(s.back());  // exact duplicate
    if (i % 41 == 7) {
      // In-bound reorder: 1 day behind the watermark, lateness allows 2.
      s.push_back({t - 1.0, 0.4, static_cast<RaterId>(2 + i % 5),
                   static_cast<ProductId>(1 + (i + 3) % 7),
                   RatingLabel::kHonest});
    }
    if (i % 53 == 9) {
      s.push_back({t - 30.0, 0.5, 3, 2, RatingLabel::kHonest});  // late drop
    }
    if (i % 61 == 11) {
      s.push_back({t, 2.5, 4, 3, RatingLabel::kHonest});  // malformed value
    }
  }
  return s;
}

core::IngestConfig mixed_ingest() { return {.max_lateness_days = 2.0}; }

ShardOptions make_options(std::size_t shards, bool threaded = false,
                          std::size_t queue_capacity = 4096) {
  ShardOptions options;
  options.shards = shards;
  options.threaded = threaded;
  options.queue_capacity = queue_capacity;
  return options;
}

/// Layout with predictable placement (p % shards) — tests that aim at a
/// specific shard use it instead of the default hash.
ShardOptions modulo_layout(std::size_t shards) {
  ShardOptions options = make_options(shards);
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  return options;
}

/// Collapsed-v3 rendering of a sharded system's state: byte-comparable
/// against save_checkpoint of a plain stream AND against any other shard
/// layout (v3 has no layout section).
std::string v3_bytes(ShardedRatingSystem& system) {
  std::ostringstream out;
  core::write_checkpoint(system.snapshot(), core::kCheckpointVersion, out);
  return out.str();
}

std::string v3_bytes(const core::StreamingRatingSystem& stream) {
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  return out.str();
}

std::string v4_bytes(ShardedRatingSystem& system) {
  std::ostringstream out;
  system.save(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// SPSC ring.

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueue, FifoAcrossManyWraparounds) {
  SpscQueue<std::uint64_t> q(4);
  ASSERT_EQ(q.capacity(), 4u);
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  // Varying batch sizes walk every head/tail phase of the ring many times
  // past the capacity, so a wraparound off-by-one cannot hide.
  for (int round = 0; round < 300; ++round) {
    const std::size_t batch = 1 + round % 4;
    for (std::size_t i = 0; i < batch; ++i) {
      ASSERT_TRUE(q.try_push(std::uint64_t{produced}));
      ++produced;
    }
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      ASSERT_TRUE(q.try_pop(out));
      ASSERT_EQ(out, consumed);
      ++consumed;
    }
    ASSERT_TRUE(q.empty());
  }
  EXPECT_EQ(produced, consumed);
}

TEST(SpscQueue, TryPushFailsOnlyWhenFull) {
  SpscQueue<int> q(2);
  ASSERT_EQ(q.capacity(), 2u);
  // Every slot is usable: a capacity-2 ring holds 2 elements.
  EXPECT_TRUE(q.try_push(10));
  EXPECT_TRUE(q.try_push(11));
  EXPECT_FALSE(q.try_push(12));  // full: this IS the backpressure signal
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(q.try_push(12));  // one free slot again
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 12);
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, RejectedPushLeavesValueIntact) {
  SpscQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(q.try_push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(3);
  // A failed try_push must not consume the moved-from argument.
  ASSERT_FALSE(q.try_push(std::move(extra)));
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out, 1);
  ASSERT_TRUE(q.try_push(std::move(extra)));
  EXPECT_EQ(extra, nullptr);  // accepted push does consume it
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out, 2);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out, 3);
}

TEST(SpscQueue, HammerProducerRacesConsumer) {
  // The TSan target for the shard transport: a tiny ring forces constant
  // backpressure, so both the blocking push path (spin -> yield) and the
  // cached-index refresh paths run millions of times under contention.
  constexpr std::uint64_t kCount = 50000;
  SpscQueue<std::uint64_t> q(8);
  std::atomic<bool> in_order{true};
  std::thread consumer([&q, &in_order] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      std::uint64_t value = 0;
      if (!q.pop(value) || value != i) {
        in_order.store(false);
        return;
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) q.push(std::uint64_t{i});
  consumer.join();
  EXPECT_TRUE(in_order.load());
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Cross-shard merge determinism.

TEST(ShardedEngine, MatchesPlainStreamAtEveryShardCount) {
  const RatingSeries stream = mixed_stream();
  core::StreamingRatingSystem plain(pipeline_config(), 10.0, 2,
                                    mixed_ingest());
  for (const Rating& r : stream) plain.submit(r);
  plain.flush();
  const std::string reference = v3_bytes(plain);

  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    ShardedRatingSystem sharded(pipeline_config(), make_options(shards), 10.0,
                                2, mixed_ingest());
    for (const Rating& r : stream) sharded.submit(r);
    sharded.flush();
    EXPECT_EQ(v3_bytes(sharded), reference) << "shards=" << shards;
    EXPECT_EQ(sharded.epochs_closed(), plain.epochs_closed());
    EXPECT_EQ(sharded.ingest_stats(), plain.ingest_stats());
  }
}

TEST(ShardedEngine, AdversarialSkewAllProductsOnOneShard) {
  // Placement is layout, not semantics: routing EVERY product to shard 2 of
  // 4 (three shards permanently empty) must not move a single bit.
  const RatingSeries stream = mixed_stream();
  core::StreamingRatingSystem plain(pipeline_config(), 10.0, 2,
                                    mixed_ingest());
  for (const Rating& r : stream) plain.submit(r);
  plain.flush();

  ShardOptions skew;
  skew.shards = 4;
  skew.shard_fn = [](ProductId, std::size_t) -> std::size_t { return 2; };
  ShardedRatingSystem sharded(pipeline_config(), skew, 10.0, 2,
                              mixed_ingest());
  for (const Rating& r : stream) sharded.submit(r);
  sharded.flush();
  EXPECT_EQ(v3_bytes(sharded), v3_bytes(plain));
  // The idle shards really were idle: every close skipped them.
  const auto skipped = sharded.shard_skipped_cells();
  ASSERT_EQ(skipped.size(), 4u);
  EXPECT_EQ(skipped[2], 0u);
  EXPECT_GT(skipped[0], 0u);
  EXPECT_EQ(skipped[0], skipped[1]);
  EXPECT_EQ(skipped[0], skipped[3]);
}

TEST(ShardedEngine, SingleRaterSpanningEveryShard) {
  // Rater 1 rates all 7 products — its C(i) terms come from every shard and
  // must fold in canonical product order regardless of layout.
  RatingSeries stream;
  for (int day = 1; day <= 90; ++day) {
    for (ProductId p = 1; p <= 7; ++p) {
      stream.push_back({day + p * 0.01, ((day + p) % 10) * 0.1, 1, p,
                        RatingLabel::kHonest});
      stream.push_back({day + p * 0.01 + 0.005, ((day * p) % 10) * 0.1,
                        static_cast<RaterId>(1 + p), p, RatingLabel::kHonest});
    }
  }
  core::StreamingRatingSystem plain(pipeline_config(), 30.0, 2, {});
  for (const Rating& r : stream) plain.submit(r);
  plain.flush();

  ShardOptions one_per_product;
  one_per_product.shards = 7;
  one_per_product.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p - 1) % n;
  };
  ShardedRatingSystem sharded(pipeline_config(), one_per_product, 30.0, 2,
                              {});
  for (const Rating& r : stream) sharded.submit(r);
  sharded.flush();
  EXPECT_EQ(v3_bytes(sharded), v3_bytes(plain));
  // Bitwise, not approximately: the spanning rater's trust value.
  const double spanning = sharded.trust(1);
  const double expected = plain.trust(1);
  EXPECT_EQ(std::memcmp(&spanning, &expected, sizeof(double)), 0);
}

TEST(ShardedEngine, ThreadedModeMatchesInline) {
  const RatingSeries stream = mixed_stream();
  ShardedRatingSystem inline_system(pipeline_config(), make_options(3), 10.0,
                                    2, mixed_ingest());
  for (const Rating& r : stream) inline_system.submit(r);
  inline_system.flush();

  ShardedRatingSystem threaded(pipeline_config(),
                               make_options(3, true), 10.0, 2,
                               mixed_ingest());
  for (const Rating& r : stream) threaded.submit(r);
  threaded.flush();
  EXPECT_EQ(v3_bytes(threaded), v3_bytes(inline_system));
  EXPECT_EQ(threaded.epochs_closed(), inline_system.epochs_closed());
}

TEST(ShardedEngine, ThreadedTinyQueuesBackpressureStillExact) {
  // capacity 2 rings: the coordinator blocks on nearly every route and the
  // merge thread on nearly every cell — the full-pipeline TSan hammer. The
  // result must not move a bit relative to inline execution.
  const RatingSeries stream = mixed_stream();
  ShardedRatingSystem inline_system(pipeline_config(), make_options(2), 10.0,
                                    2, mixed_ingest());
  for (const Rating& r : stream) inline_system.submit(r);
  inline_system.flush();

  ShardedRatingSystem threaded(
      pipeline_config(), make_options(2, true, 2),
      10.0, 2, mixed_ingest());
  for (const Rating& r : stream) threaded.submit(r);
  threaded.flush();
  EXPECT_EQ(v3_bytes(threaded), v3_bytes(inline_system));
}

// ---------------------------------------------------------------------------
// Per-shard accounting: quarantine caps and skipped cells.

TEST(ShardedEngine, PerShardQuarantineCapPreservesGlobalMetric) {
  core::IngestConfig ingest;
  ingest.max_quarantine = 2;
  ShardOptions options;
  options.shards = 2;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  ShardedRatingSystem sharded(pipeline_config(), options, 30.0, 2, ingest);
  core::StreamingRatingSystem plain(pipeline_config(), 30.0, 2, ingest);
  // Six malformed ratings alternating products 1, 2 — three per shard.
  for (int i = 0; i < 6; ++i) {
    const Rating bad{1.0 + i, 5.0, static_cast<RaterId>(1 + i),
                     static_cast<ProductId>(1 + i % 2), RatingLabel::kHonest};
    EXPECT_EQ(sharded.submit(bad), core::IngestClass::kMalformed);
    plain.submit(bad);
  }
  // The counter is global and layout-independent...
  EXPECT_EQ(sharded.ingest_stats().quarantined, 6u);
  EXPECT_EQ(sharded.ingest_stats(), plain.ingest_stats());
  // ...while the cap is per-shard: each store keeps its newest 2, so the
  // sharded system retains 4 dead letters where the plain one keeps 2.
  EXPECT_EQ(sharded.shard_quarantine(0).size(), 2u);
  EXPECT_EQ(sharded.shard_quarantine(1).size(), 2u);
  const auto merged = sharded.quarantine();
  ASSERT_EQ(merged.size(), 4u);
  // Merged back into global arrival order: the survivors are the last two
  // per shard, i.e. global ordinals 2,3,4,5 -> times 3,4,5,6.
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].rating.time, 3.0 + i);
    EXPECT_EQ(merged[i].reason, core::IngestClass::kMalformed);
  }
}

TEST(ShardedEngine, GapOnOneShardIsASkippedCellNotAFastForward) {
  ShardOptions options;
  options.shards = 2;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  // Product 2 -> shard 0, product 1 -> shard 1. Shard 1 has data in every
  // epoch; shard 0 only in the first and last.
  ShardedRatingSystem sharded(pipeline_config(), options, 10.0, 2, {});
  sharded.submit({1.0, 0.5, 1, 2, RatingLabel::kHonest});
  sharded.submit({1.1, 0.5, 2, 1, RatingLabel::kHonest});
  sharded.submit({12.0, 0.6, 2, 1, RatingLabel::kHonest});   // closes epoch 1
  sharded.submit({22.0, 0.4, 2, 1, RatingLabel::kHonest});   // closes epoch 2
  sharded.submit({32.0, 0.7, 2, 1, RatingLabel::kHonest});   // closes epoch 3
  sharded.submit({32.5, 0.7, 1, 2, RatingLabel::kHonest});
  sharded.flush();                                           // closes epoch 4
  EXPECT_EQ(sharded.epochs_closed(), 4u);
  // Shard 1 always had pending data, so the global cursor never
  // fast-forwarded — shard 0 just sat out epochs 2 and 3.
  EXPECT_EQ(sharded.skipped_empty_epochs(), 0u);
  const auto skipped = sharded.shard_skipped_cells();
  ASSERT_EQ(skipped.size(), 2u);
  EXPECT_EQ(skipped[0], 2u);
  EXPECT_EQ(skipped[1], 0u);
}

TEST(ShardedEngine, FullyEmptyGapFastForwardsWithoutShardSkips) {
  // Product 1 -> shard 1, product 2 -> shard 0; both epochs that actually
  // close hold data on BOTH shards.
  ShardedRatingSystem sharded(pipeline_config(), modulo_layout(2), 10.0, 2,
                              {});
  sharded.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  sharded.submit({1.2, 0.6, 2, 2, RatingLabel::kHonest});
  // Next ratings land 4 epochs later: epoch 1 closes with data, epochs
  // [11,21), [21,31), [31,41) are empty EVERYWHERE and fast-forward in O(1)
  // — no shard records a skipped cell because no cell was ever issued.
  sharded.submit({45.0, 0.4, 1, 1, RatingLabel::kHonest});
  sharded.submit({45.3, 0.5, 2, 2, RatingLabel::kHonest});
  sharded.flush();
  EXPECT_EQ(sharded.epochs_closed(), 2u);
  EXPECT_EQ(sharded.skipped_empty_epochs(), 3u);
  for (const std::size_t cells : sharded.shard_skipped_cells()) {
    EXPECT_EQ(cells, 0u);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint compatibility across versions and layouts.

TEST(ShardedCheckpoint, V3PreShardCheckpointLoadsBitExact) {
  const RatingSeries stream = mixed_stream();
  const std::size_t cut = stream.size() / 2;
  core::StreamingRatingSystem plain(pipeline_config(), 10.0, 2,
                                    mixed_ingest());
  for (std::size_t i = 0; i < cut; ++i) plain.submit(stream[i]);
  std::ostringstream checkpoint;
  core::save_checkpoint(plain, checkpoint);  // v3: no layout section

  std::istringstream in(checkpoint.str());
  auto sharded = ShardedRatingSystem::load(in, pipeline_config(),
                                           make_options(3));
  ASSERT_EQ(sharded->shards(), 3u);
  // Both continue through the second half; the resumed sharded system must
  // shadow the uninterrupted plain stream exactly.
  for (std::size_t i = cut; i < stream.size(); ++i) {
    plain.submit(stream[i]);
    sharded->submit(stream[i]);
  }
  plain.flush();
  sharded->flush();
  EXPECT_EQ(v3_bytes(*sharded), v3_bytes(plain));
  EXPECT_EQ(sharded->ingest_stats(), plain.ingest_stats());
}

TEST(ShardedCheckpoint, V4ResumesAtDifferentShardCount) {
  const RatingSeries stream = mixed_stream();
  const std::size_t cut = stream.size() / 3;
  core::StreamingRatingSystem plain(pipeline_config(), 10.0, 2,
                                    mixed_ingest());
  ShardedRatingSystem first(pipeline_config(), make_options(2), 10.0, 2,
                            mixed_ingest());
  for (std::size_t i = 0; i < cut; ++i) {
    plain.submit(stream[i]);
    first.submit(stream[i]);
  }
  std::istringstream in(v4_bytes(first));
  auto resumed = ShardedRatingSystem::load(
      in, pipeline_config(), make_options(5, true));
  ASSERT_EQ(resumed->shards(), 5u);
  for (std::size_t i = cut; i < stream.size(); ++i) {
    plain.submit(stream[i]);
    resumed->submit(stream[i]);
  }
  plain.flush();
  resumed->flush();
  EXPECT_EQ(v3_bytes(*resumed), v3_bytes(plain));
}

TEST(ShardedCheckpoint, V4LoadsIntoPlainStream) {
  const RatingSeries stream = mixed_stream();
  core::StreamingRatingSystem plain(pipeline_config(), 10.0, 2,
                                    mixed_ingest());
  ShardedRatingSystem sharded(pipeline_config(), make_options(4), 10.0, 2,
                              mixed_ingest());
  for (const Rating& r : stream) {
    plain.submit(r);
    sharded.submit(r);
  }
  std::istringstream in(v4_bytes(sharded));
  const auto loaded = core::load_checkpoint(in, pipeline_config());
  EXPECT_EQ(v3_bytes(loaded), v3_bytes(plain));
}

TEST(ShardedCheckpoint, SkippedCellCountersAreLayoutScoped) {
  ShardOptions options;
  options.shards = 2;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  ShardedRatingSystem sharded(pipeline_config(), options, 10.0, 2, {});
  sharded.submit({1.0, 0.5, 2, 1, RatingLabel::kHonest});
  sharded.submit({12.0, 0.6, 2, 1, RatingLabel::kHonest});
  sharded.submit({22.0, 0.4, 2, 1, RatingLabel::kHonest});
  const std::vector<std::size_t> expected{2u, 0u};
  ASSERT_EQ(sharded.shard_skipped_cells(), expected);

  const std::string bytes = v4_bytes(sharded);
  {
    // Same shard count: the diagnostic counters survive the round trip.
    std::istringstream in(bytes);
    auto same = ShardedRatingSystem::load(in, pipeline_config(), options);
    EXPECT_EQ(same->shard_skipped_cells(), expected);
  }
  {
    // Different shard count: cells are a property of the old layout and
    // reset to zero rather than restoring somewhere meaningless.
    std::istringstream in(bytes);
    auto moved = ShardedRatingSystem::load(in, pipeline_config(),
                                           make_options(3));
    const std::vector<std::size_t> zeros{0u, 0u, 0u};
    EXPECT_EQ(moved->shard_skipped_cells(), zeros);
  }
}

// ---------------------------------------------------------------------------
// Sharded durable front-end.

/// Sorted two-product stream for the durable tests: the placement function
/// p % shards makes which shard owns each global ordinal predictable, so
/// the torn-tail test can aim at a specific record.
RatingSeries alternating_stream(int count) {
  RatingSeries s;
  for (int i = 0; i < count; ++i) {
    s.push_back({1.0 + i, (i % 10) * 0.1, static_cast<RaterId>(1 + i % 5),
                 static_cast<ProductId>(1 + i % 2), RatingLabel::kHonest});
  }
  return s;
}

std::size_t count_checkpoints(const fs::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    n += entry.path().filename().string().rfind("ckpt-", 0) == 0 ? 1 : 0;
  }
  return n;
}

TEST(ShardedDurable, CleanReopenReplaysTailBitExact) {
  const fs::path dir = test_dir("clean-reopen");
  const RatingSeries stream = mixed_stream();
  ShardedDurableOptions durable_options;
  durable_options.segment_bytes = 512;
  durable_options.keep_checkpoints = 2;
  std::uint64_t last_seq = 0;
  {
    ShardedDurableStream durable(dir, pipeline_config(), make_options(2), 10.0,
                                 2, mixed_ingest(), durable_options);
    EXPECT_FALSE(durable.recovery().recovered);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      durable.submit(stream[i]);
      if (i == 60 || i == 120 || i == 180) last_seq = durable.checkpoint();
    }
    EXPECT_EQ(durable.acknowledged(), stream.size());
  }
  // Three checkpoints taken, two kept.
  EXPECT_EQ(count_checkpoints(dir), 2u);
  EXPECT_EQ(last_seq, 181u);

  ShardedDurableStream reopened(dir, pipeline_config(), make_options(2), 10.0,
                                2, mixed_ingest(), durable_options);
  EXPECT_TRUE(reopened.recovery().recovered);
  EXPECT_TRUE(reopened.recovery().loaded_checkpoint);
  EXPECT_EQ(reopened.recovery().checkpoint_seq, last_seq);
  EXPECT_EQ(reopened.recovery().replayed_ratings, stream.size() - last_seq);
  EXPECT_EQ(reopened.recovery().torn_shards, 0u);
  EXPECT_EQ(reopened.recovery().discarded_records, 0u);
  EXPECT_FALSE(reopened.recovery().wal_reset);
  EXPECT_EQ(reopened.acknowledged(), stream.size());

  ShardedRatingSystem reference(pipeline_config(), make_options(2), 10.0, 2,
                                mixed_ingest());
  for (const Rating& r : stream) reference.submit(r);
  EXPECT_EQ(v4_bytes(reopened.system()), v4_bytes(reference));
}

TEST(ShardedDurable, TornShardWalDiscardsCrossShardSuffixAndResets) {
  const fs::path dir = test_dir("torn-shard");
  const RatingSeries stream = alternating_stream(60);
  {
    ShardedDurableStream durable(dir, pipeline_config(), modulo_layout(2));
    for (const Rating& r : stream) durable.submit(r);
  }
  // Global ordinal 58 is product 1 -> shard 1; ordinal 59 is product 2 ->
  // shard 0. Tearing shard 1's tail (a partial final frame) loses ordinal
  // 58; ordinal 59 survives on shard 0 but sits past the hole.
  const auto segments =
      core::durable::wal_segments(ShardedDurableStream::shard_dir(dir, 1));
  ASSERT_FALSE(segments.empty());
  const fs::path tail = segments.back().path;
  ASSERT_GT(fs::file_size(tail), 5u);
  fs::resize_file(tail, fs::file_size(tail) - 5);

  ShardedRatingSystem reference(pipeline_config(), modulo_layout(2));
  for (std::size_t i = 0; i < 58; ++i) reference.submit(stream[i]);
  const std::string expected = v4_bytes(reference);

  {
    ShardedDurableStream recovered(dir, pipeline_config(), modulo_layout(2));
    EXPECT_TRUE(recovered.recovery().recovered);
    EXPECT_FALSE(recovered.recovery().loaded_checkpoint);
    EXPECT_EQ(recovered.recovery().torn_shards, 1u);
    EXPECT_EQ(recovered.recovery().replayed_ratings, 58u);
    // The stream cannot skip an acknowledged submission: ordinal 59 is
    // unreplayable past the hole at 58 and is discarded...
    EXPECT_EQ(recovered.recovery().discarded_records, 1u);
    // ...which forces a fresh checkpoint + WAL reset so the orphaned frame
    // can never resurface.
    EXPECT_TRUE(recovered.recovery().wal_reset);
    EXPECT_EQ(recovered.acknowledged(), 58u);
    EXPECT_EQ(v4_bytes(recovered.system()), expected);
  }

  // The reset converged: a third open finds the post-reset checkpoint,
  // replays nothing, and loses nothing more.
  ShardedDurableStream third(dir, pipeline_config(), modulo_layout(2));
  EXPECT_TRUE(third.recovery().loaded_checkpoint);
  EXPECT_EQ(third.recovery().replayed_records, 0u);
  EXPECT_EQ(third.recovery().torn_shards, 0u);
  EXPECT_EQ(third.recovery().discarded_records, 0u);
  EXPECT_FALSE(third.recovery().wal_reset);
  EXPECT_EQ(v4_bytes(third.system()), expected);
}

TEST(ShardedDurable, OnDiskLayoutChangeRepartitionsAndResets) {
  const fs::path dir = test_dir("layout-change");
  const RatingSeries stream = alternating_stream(80);
  {
    ShardedDurableStream durable(dir, pipeline_config(), modulo_layout(2));
    for (const Rating& r : stream) durable.submit(r);
    durable.checkpoint();
  }
  // Reopen at 3 shards: recovery reassembles the global order, replays it
  // into the new layout, then re-checkpoints and resets the WALs (the old
  // shard-count logs are unusable under the new layout).
  ShardedDurableStream moved(dir, pipeline_config(), modulo_layout(3));
  EXPECT_TRUE(moved.recovery().recovered);
  EXPECT_TRUE(moved.recovery().loaded_checkpoint);
  EXPECT_EQ(moved.recovery().discarded_records, 0u);
  EXPECT_TRUE(moved.recovery().wal_reset);
  EXPECT_EQ(moved.acknowledged(), stream.size());
  EXPECT_EQ(moved.system().shards(), 3u);

  // Semantically bit-exact: compare the layout-collapsed v3 rendering —
  // per-shard skipped-cell counters are diagnostics of the OLD layout and
  // deliberately reset to zero across the reshard, so the v4 `layout`
  // section legitimately differs from an uninterrupted 3-shard run's.
  ShardedRatingSystem reference(pipeline_config(), modulo_layout(3));
  for (const Rating& r : stream) reference.submit(r);
  EXPECT_EQ(v3_bytes(moved.system()), v3_bytes(reference));
  const std::vector<std::size_t> zeros{0u, 0u, 0u};
  EXPECT_EQ(moved.system().shard_skipped_cells(), zeros);
}

}  // namespace
}  // namespace trustrate
