// Durability-layer tests (ISSUE 4): WAL framing and torn-tail recovery,
// checkpoint v3 integrity fuzzing, the recovery ladder, and the crash-point
// sweep proving bit-exact recovery with no acknowledged rating lost.
//
// Environment knobs (the nightly CI job sets these for a date-seeded,
// densely-strided run under ASan):
//   TRUSTRATE_DURABILITY_SEED    scenario seed for the crash sweep
//   TRUSTRATE_DURABILITY_STRIDE  distance between sampled crash budgets
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/durable/crc32c.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/durable/wal.hpp"
#include "testkit/crash.hpp"
#include "testkit/scenario.hpp"

namespace trustrate {
namespace {

namespace fs = std::filesystem;
using core::durable::DurableOptions;
using core::durable::DurableStream;
using core::durable::FsyncPolicy;
using core::durable::WalOptions;
using core::durable::WalRecord;
using core::durable::WalRecordType;
using core::durable::WalWriter;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Fresh per-test scratch directory under the system temp dir.
fs::path test_dir(const std::string& name) {
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path dir = fs::temp_directory_path() /
                       ("trustrate-durability-" + uniq) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Small deterministic rating stream: a few products, enough time span to
/// close epochs, one malformed rating to populate the quarantine.
RatingSeries small_stream() {
  RatingSeries stream;
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {
    t += 0.75;
    stream.push_back({t, (i % 10) * 0.1,
                      static_cast<RaterId>(1 + i % 13),
                      static_cast<ProductId>(1 + i % 3), RatingLabel::kHonest});
  }
  stream.push_back({t + 0.5, 2.5, 99, 1, RatingLabel::kHonest});  // malformed
  return stream;
}

std::vector<WalRecord> sample_records() {
  std::vector<WalRecord> records;
  WalRecord r;
  r.type = WalRecordType::kRating;
  r.rating = {12.5, 0.7, 42, 7, RatingLabel::kHonest};
  r.ingest_class = core::IngestClass::kAccepted;
  records.push_back(r);

  r.rating = {11.0, std::nan(""), 43, 7, RatingLabel::kCollaborative1};
  r.ingest_class = core::IngestClass::kMalformed;  // NaN must survive bitwise
  records.push_back(r);

  WalRecord close;
  close.type = WalRecordType::kEpochClose;
  close.epochs_closed = 3;
  close.epoch_start = 90.0;
  records.push_back(close);

  WalRecord flush;
  flush.type = WalRecordType::kFlush;
  flush.epochs_closed = 4;
  records.push_back(flush);
  return records;
}

std::string flip_byte(std::string text, std::size_t offset) {
  text[offset] = static_cast<char>(text[offset] ^ 0x01);
  return text;
}

void overwrite_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Flips one byte in the middle of `path` (corrupting a checkpoint or
/// segment in place).
void corrupt_file(const fs::path& path) {
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 2u);
  overwrite_file(path, flip_byte(std::move(bytes), bytes.size() / 2));
}

std::string state_bytes(const core::StreamingRatingSystem& stream) {
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  return out.str();
}

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 CRC32C test vector.
  EXPECT_EQ(core::durable::crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(core::durable::crc32c(std::string_view("")), 0x00000000u);
  // Chunked computation chains through the seed parameter.
  const std::uint32_t first = core::durable::crc32c("12345", 5);
  EXPECT_EQ(core::durable::crc32c("6789", 4, first), 0xE3069283u);
}

TEST(Wal, RoundTripsAllRecordTypesBitExactly) {
  const fs::path dir = test_dir("wal-roundtrip");
  const std::vector<WalRecord> records = sample_records();
  {
    WalWriter writer(dir, 0, WalOptions{});
    for (const WalRecord& r : records) writer.append(r);
    writer.sync();
  }
  const auto recovered = core::durable::read_wal(dir);
  EXPECT_FALSE(recovered.tail_truncated);
  EXPECT_EQ(recovered.next_lsn, records.size());
  ASSERT_EQ(recovered.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(recovered.records[i].first, i);
    // encode_frame is a bijection over valid records, so frame equality is
    // record equality — including NaN payload bits.
    EXPECT_EQ(core::durable::encode_frame(recovered.records[i].second),
              core::durable::encode_frame(records[i]));
  }
}

TEST(Wal, TornTailIsTruncatedNotFatal) {
  const fs::path dir = test_dir("wal-torn");
  const std::vector<WalRecord> records = sample_records();
  {
    WalWriter writer(dir, 0, WalOptions{});
    for (const WalRecord& r : records) writer.append(r);
  }
  const auto segments = core::durable::wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string intact = slurp(segments[0].path);
  overwrite_file(segments[0].path, intact + "GARBAGE-TORN-WRITE");

  const auto recovered = core::durable::read_wal(dir);
  EXPECT_TRUE(recovered.tail_truncated);
  EXPECT_EQ(recovered.truncated_bytes, std::strlen("GARBAGE-TORN-WRITE"));
  EXPECT_EQ(recovered.records.size(), records.size());
  // The truncation is physical: a second scan sees a clean log.
  EXPECT_EQ(slurp(segments[0].path), intact);
  EXPECT_FALSE(core::durable::read_wal(dir).tail_truncated);
}

TEST(Wal, MidLogCorruptionThrows) {
  const fs::path dir = test_dir("wal-midlog");
  {
    WalWriter writer(dir, 0, WalOptions{});
    for (const WalRecord& r : sample_records()) writer.append(r);
  }
  const auto segments = core::durable::wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  // Flip a byte inside the FIRST frame: valid frames follow, so this is
  // corruption, not a torn tail.
  overwrite_file(segments[0].path, flip_byte(slurp(segments[0].path), 20));
  EXPECT_THROW(core::durable::read_wal(dir), WalError);
}

TEST(Wal, SegmentGapThrows) {
  const fs::path dir = test_dir("wal-gap");
  WalOptions options;
  options.segment_bytes = 64;  // rotate every couple of frames
  {
    WalWriter writer(dir, 0, options);
    for (int i = 0; i < 4; ++i) {
      for (const WalRecord& r : sample_records()) writer.append(r);
    }
  }
  auto segments = core::durable::wal_segments(dir);
  ASSERT_GE(segments.size(), 3u);
  fs::remove(segments[1].path);  // a middle segment vanishes
  EXPECT_THROW(core::durable::read_wal(dir), WalError);
}

TEST(Wal, TornSegmentCreationIsRemoved) {
  const fs::path dir = test_dir("wal-torn-create");
  const std::vector<WalRecord> records = sample_records();
  {
    WalWriter writer(dir, 0, WalOptions{});
    for (const WalRecord& r : records) writer.append(r);
  }
  // The process died while writing the next segment's magic.
  overwrite_file(dir / WalWriter::segment_name(records.size()), "trustr");
  const auto recovered = core::durable::read_wal(dir);
  EXPECT_EQ(recovered.records.size(), records.size());
  EXPECT_EQ(recovered.next_lsn, records.size());
  EXPECT_FALSE(fs::exists(dir / WalWriter::segment_name(records.size())));
}

TEST(Wal, FlippedByteRecoversPrefixOrThrows) {
  const fs::path dir = test_dir("wal-fuzz-src");
  const std::vector<WalRecord> records = sample_records();
  {
    WalWriter writer(dir, 0, WalOptions{});
    for (int rep = 0; rep < 3; ++rep) {
      for (const WalRecord& r : records) writer.append(r);
    }
  }
  const auto segments = core::durable::wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string intact = slurp(segments[0].path);
  const std::string segment_name = segments[0].path.filename().string();

  // Frame end offsets: a flip inside frame j leaves exactly the frames
  // that end at or before the flip (0..j-1) recoverable.
  const auto reference = core::durable::read_wal(dir);
  std::vector<std::size_t> frame_ends;
  {
    std::size_t offset = 16;  // past the magic
    for (const auto& [lsn, record] : reference.records) {
      offset += core::durable::encode_frame(record).size();
      frame_ends.push_back(offset);
    }
  }
  const std::size_t magic_size = 16;

  const fs::path fuzz_dir = test_dir("wal-fuzz");
  for (std::size_t offset = 0; offset < intact.size(); offset += 3) {
    fs::remove_all(fuzz_dir);
    fs::create_directories(fuzz_dir);
    overwrite_file(fuzz_dir / segment_name, flip_byte(intact, offset));
    try {
      const auto read = core::durable::read_wal(fuzz_dir);
      // No error: the only legitimate silent outcome is a clean prefix —
      // every frame that ends at or before the flipped byte survives
      // verbatim, everything from the flipped frame on is gone (a flip in
      // the final frame is indistinguishable from a torn tail).
      ASSERT_GE(offset, magic_size)
          << "flip in the magic at " << offset << " was not detected";
      std::size_t survivors = 0;
      while (survivors < frame_ends.size() && frame_ends[survivors] <= offset) {
        ++survivors;
      }
      ASSERT_EQ(read.records.size(), survivors) << "flip at " << offset;
      for (std::size_t i = 0; i < read.records.size(); ++i) {
        ASSERT_EQ(core::durable::encode_frame(read.records[i].second),
                  core::durable::encode_frame(reference.records[i].second))
            << "flip at " << offset;
      }
    } catch (const WalError&) {
      // Detected corruption is always an acceptable outcome.
    }
  }
}

TEST(CheckpointFuzz, FlippedByteLoadsIdenticalOrThrows) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0, 2,
                                     {.max_lateness_days = 2.0});
  for (const Rating& r : small_stream()) stream.submit(r);
  const std::string intact = state_bytes(stream);
  ASSERT_NE(intact.find("crc "), std::string::npos);

  // Bytes before the filecrc line are covered by the whole-file checksum:
  // flipping any of them MUST be detected. The filecrc line and the `end`
  // trailer protect themselves structurally, but a flip that only perturbs
  // token whitespace there can legally parse — then the restored state must
  // still be identical (round-trip-or-throw).
  const std::size_t covered = intact.find("\nfilecrc ") + 1;
  ASSERT_NE(covered, std::string::npos + 1);
  for (std::size_t offset = 0; offset < intact.size(); offset += 3) {
    const std::string mutated = flip_byte(intact, offset);
    try {
      std::istringstream in(mutated);
      const auto loaded = core::load_checkpoint(in, pipeline_config());
      EXPECT_GE(offset, covered)
          << "flip at " << offset << " inside the checksummed bytes "
          << "was not detected";
      EXPECT_EQ(state_bytes(loaded), intact) << "flip at " << offset;
    } catch (const CheckpointError&) {
      // Detection is always acceptable.
    }
  }
}

TEST(DurableStream, RecoveryFallsBackPastCorruptNewestCheckpoint) {
  const fs::path dir = test_dir("ladder");
  const RatingSeries ratings = small_stream();
  const std::size_t cut = ratings.size() / 2;

  core::StreamingRatingSystem reference(pipeline_config(), 30.0, 2, {});
  for (const Rating& r : ratings) reference.submit(r);

  {
    DurableStream durable(dir, pipeline_config(), 30.0, 2, {});
    for (std::size_t i = 0; i < ratings.size(); ++i) {
      durable.submit(ratings[i]);
      if (i == cut || i + 1 == ratings.size()) durable.checkpoint();
    }
  }
  auto newest = fs::path();
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 &&
        (newest.empty() || name > newest.filename().string())) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  corrupt_file(newest);

  DurableStream recovered(dir, pipeline_config(), 30.0, 2, {});
  EXPECT_EQ(recovered.recovery().corrupt_checkpoints, 1u);
  EXPECT_TRUE(recovered.recovery().loaded_checkpoint);
  EXPECT_GT(recovered.recovery().replayed_ratings, 0u);
  EXPECT_EQ(state_bytes(recovered.stream()), state_bytes(reference));
}

TEST(DurableStream, FreshReplayWhenEveryCheckpointIsCorrupt) {
  const fs::path dir = test_dir("ladder-fresh");
  const RatingSeries ratings = small_stream();

  core::StreamingRatingSystem reference(pipeline_config(), 30.0, 2, {});
  for (const Rating& r : ratings) reference.submit(r);

  {
    DurableStream durable(dir, pipeline_config(), 30.0, 2, {});
    for (std::size_t i = 0; i < ratings.size(); ++i) {
      durable.submit(ratings[i]);
      if (i == ratings.size() / 2) durable.checkpoint();
    }
    durable.checkpoint();
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("ckpt-", 0) == 0) {
      corrupt_file(entry.path());
    }
  }

  DurableStream recovered(dir, pipeline_config(), 30.0, 2, {});
  EXPECT_EQ(recovered.recovery().corrupt_checkpoints, 2u);
  EXPECT_FALSE(recovered.recovery().loaded_checkpoint);
  EXPECT_EQ(recovered.recovery().replayed_ratings, ratings.size());
  EXPECT_EQ(state_bytes(recovered.stream()), state_bytes(reference));
}

TEST(DurableStream, UnreachablePrunedLogIsARecoveryError) {
  const fs::path dir = test_dir("ladder-pruned");
  DurableOptions options;
  options.segment_bytes = 256;  // many small segments
  options.keep_checkpoints = 1;
  {
    DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);
    const RatingSeries ratings = small_stream();
    for (const Rating& r : ratings) durable.submit(r);
    durable.checkpoint();  // prunes everything before it
  }
  // Pruning must have dropped the head of the log...
  ASSERT_GT(core::durable::wal_segments(dir).front().first_lsn, 0u);
  // ...so when the only checkpoint rots, nothing can rebuild the state.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("ckpt-", 0) == 0) {
      corrupt_file(entry.path());
    }
  }
  EXPECT_THROW(
      (DurableStream(dir, pipeline_config(), 30.0, 2, {}, options)),
      RecoveryError);
}

TEST(DurableStream, CheckpointPrunesObsoleteSegmentsAndCheckpoints) {
  const fs::path dir = test_dir("prune");
  DurableOptions options;
  options.segment_bytes = 256;
  options.keep_checkpoints = 2;
  DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, options);
  const RatingSeries ratings = small_stream();
  std::size_t checkpoints_taken = 0;
  for (std::size_t i = 0; i < ratings.size(); ++i) {
    durable.submit(ratings[i]);
    if (i % 40 == 39) {
      durable.checkpoint();
      ++checkpoints_taken;
    }
  }
  ASSERT_GE(checkpoints_taken, 3u);
  std::size_t kept = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    kept += entry.path().filename().string().rfind("ckpt-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(kept, 2u);
  // The surviving log must still cover the oldest kept checkpoint, and a
  // recovery over the pruned directory still works.
  DurableStream recovered(dir, pipeline_config(), 30.0, 2, {}, options);
  EXPECT_EQ(state_bytes(recovered.stream()), state_bytes(durable.stream()));
}

TEST(CrashSweep, RecoveryIsBitExactAtEveryCrashPoint) {
  const std::uint64_t seed = env_u64("TRUSTRATE_DURABILITY_SEED", 11);
  const testkit::Scenario scenario = testkit::make_scenario(seed);
  testkit::CrashSweepOptions options;
  options.checkpoint_every = 48;
  options.stride = env_u64("TRUSTRATE_DURABILITY_STRIDE", 509);
  const auto result =
      testkit::run_crash_sweep(scenario, test_dir("sweep"), options);
  EXPECT_TRUE(result.ok) << result.divergence;
  EXPECT_GT(result.total_bytes, 0u);
  EXPECT_GT(result.crash_points, 0u);
  EXPECT_GT(result.clean_points, 0u);
}

TEST(CrashSweep, AllFsyncPoliciesRecover) {
  // The byte stream is policy-independent; what moves is where the sync
  // barriers sit, i.e. which budgets die before an fsync vs after. A
  // coarser stride per policy keeps the matrix cheap.
  const testkit::Scenario scenario = testkit::make_scenario(3);
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kEpoch, FsyncPolicy::kAlways}) {
    testkit::CrashSweepOptions options;
    options.checkpoint_every = 64;
    options.stride = env_u64("TRUSTRATE_DURABILITY_STRIDE", 509) * 4;
    options.first = 13;
    options.fsync = policy;
    const auto result = testkit::run_crash_sweep(
        scenario,
        test_dir(std::string("sweep-") + core::durable::to_string(policy)),
        options);
    EXPECT_TRUE(result.ok)
        << core::durable::to_string(policy) << ": " << result.divergence;
    EXPECT_GT(result.crash_points, 0u)
        << core::durable::to_string(policy);
  }
}

}  // namespace
}  // namespace trustrate
