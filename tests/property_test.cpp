// Property-based tests: invariants that must hold across randomized inputs
// and parameter sweeps (parameterized gtest). Complements the example-based
// unit tests with coverage of the configuration space.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "agg/aggregator.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "detect/cluster_filter.hpp"
#include "detect/endorsement_filter.hpp"
#include "detect/entropy_filter.hpp"
#include "signal/ar.hpp"
#include "stats/special.hpp"
#include "trust/opinion.hpp"
#include "trust/record.hpp"

namespace trustrate {
namespace {

RatingSeries random_series(Rng& rng, std::size_t n) {
  RatingSeries s;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(4.0);
    s.push_back({t, quantize_unit(rng.uniform(), 10, false),
                 static_cast<RaterId>(rng.uniform_int(0, 50)), 0,
                 RatingLabel::kHonest});
  }
  return s;
}

// ------------------------------------------------------- filter invariants

// Every RatingFilter must produce an exact, order-preserving partition.
class FilterPartitionTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<detect::RatingFilter> make(int kind) const {
    switch (kind) {
      case 0: return std::make_unique<detect::BetaQuantileFilter>();
      case 1: return std::make_unique<detect::EntropyFilter>();
      case 2: return std::make_unique<detect::EndorsementFilter>();
      case 3: return std::make_unique<detect::ClusterFilter>();
      default: return std::make_unique<detect::NullFilter>();
    }
  }
};

TEST_P(FilterPartitionTest, PartitionInvariant) {
  const auto filter = make(GetParam());
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  for (std::size_t n : {0u, 1u, 5u, 40u, 200u}) {
    const RatingSeries s = random_series(rng, n);
    const auto out = filter->filter(s);
    // Partition: kept + removed == all indices, disjoint, sorted, in range.
    EXPECT_EQ(out.kept.size() + out.removed.size(), s.size()) << filter->name();
    std::vector<std::size_t> all(out.kept);
    all.insert(all.end(), out.removed.begin(), out.removed.end());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], i) << filter->name() << " n=" << n;
    }
    EXPECT_TRUE(std::is_sorted(out.kept.begin(), out.kept.end()));
  }
}

TEST_P(FilterPartitionTest, DeterministicOnSameInput) {
  const auto filter = make(GetParam());
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const RatingSeries s = random_series(rng, 120);
  const auto a = filter->filter(s);
  const auto b = filter->filter(s);
  EXPECT_EQ(a.kept, b.kept);
  EXPECT_EQ(a.removed, b.removed);
}

INSTANTIATE_TEST_SUITE_P(AllFilters, FilterPartitionTest,
                         ::testing::Values(0, 1, 2, 3, 4));

// --------------------------------------------------------- AR invariants

// Sweep (estimator, order, demean): errors are finite and in range for
// arbitrary rating-like data, including nasty shapes.
class ArInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(ArInvariantTest, ErrorsWellDefinedOnNastyInputs) {
  const auto [est, order, demean] = GetParam();
  const signal::ArOptions options{.demean = demean};
  auto fit = [&](std::span<const double> xs) {
    switch (est) {
      case 0: return signal::fit_ar_covariance(xs, order, options);
      case 1: return signal::fit_ar_autocorrelation(xs, order, options);
      default: return signal::fit_ar_burg(xs, order, options);
    }
  };

  Rng rng(3000);
  std::vector<std::vector<double>> inputs;
  // Random, constant, two-level alternating, ramp, spike.
  std::vector<double> random_x;
  for (int i = 0; i < 64; ++i) random_x.push_back(rng.uniform());
  inputs.push_back(random_x);
  inputs.push_back(std::vector<double>(64, 0.7));
  std::vector<double> alt;
  for (int i = 0; i < 64; ++i) alt.push_back(i % 2 ? 0.2 : 0.8);
  inputs.push_back(alt);
  std::vector<double> ramp;
  for (int i = 0; i < 64; ++i) ramp.push_back(i / 64.0);
  inputs.push_back(ramp);
  std::vector<double> spike(64, 0.5);
  spike[32] = 1.0;
  inputs.push_back(spike);

  for (const auto& xs : inputs) {
    const signal::ArModel m = fit(xs);
    EXPECT_TRUE(std::isfinite(m.normalized_error));
    EXPECT_GE(m.normalized_error, 0.0);
    EXPECT_LE(m.normalized_error, 1.0);
    EXPECT_TRUE(std::isfinite(m.residual_variance()));
    EXPECT_GE(m.residual_variance(), 0.0);
    EXPECT_GE(m.residual_energy, -1e-12);
    for (double c : m.coeffs) EXPECT_TRUE(std::isfinite(c));
    EXPECT_EQ(m.sample_count, xs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArInvariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2),       // estimator
                       ::testing::Values(1, 2, 4, 8),    // order
                       ::testing::Bool()));              // demean

TEST(ArProperty, HigherOrderNeverIncreasesCovarianceResidual) {
  // Least squares: adding coefficients cannot hurt the fit.
  Rng rng(3100);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform());
    double prev = std::numeric_limits<double>::infinity();
    for (int p = 1; p <= 8; ++p) {
      const auto m = signal::fit_ar_covariance(xs, p);
      // Residual over a shrinking fit range; allow tiny numerical slack.
      EXPECT_LE(m.residual_energy, prev + 1e-9) << "order " << p;
      prev = m.residual_energy;
    }
  }
}

TEST(ArProperty, ScaleInvarianceOfNormalizedError) {
  Rng rng(3200);
  std::vector<double> xs;
  for (int i = 0; i < 80; ++i) xs.push_back(rng.gaussian(0.0, 1.0));
  std::vector<double> scaled(xs);
  for (double& v : scaled) v *= 7.5;
  const auto a = signal::fit_ar_covariance(xs, 4, {.demean = true});
  const auto b = signal::fit_ar_covariance(scaled, 4, {.demean = true});
  EXPECT_NEAR(a.normalized_error, b.normalized_error, 1e-9);
  // Residual variance scales with the square of the amplitude.
  EXPECT_NEAR(b.residual_variance() / a.residual_variance(), 7.5 * 7.5, 1e-6);
}

// ------------------------------------------------------ trust invariants

class TrustSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TrustSweepTest, TrustMonotoneInEvidence) {
  const double b = GetParam();
  // More suspicion never raises trust; more clean ratings never lower it.
  trust::TrustRecord base;
  update_record(base, {.ratings = 5, .suspicious = 1, .suspicion_value = 0.5}, b);

  trust::TrustRecord more_clean = base;
  update_record(more_clean, {.ratings = 3}, b);
  EXPECT_GE(more_clean.trust(), base.trust());

  trust::TrustRecord more_suspicion = base;
  update_record(more_suspicion,
                {.ratings = 1, .suspicious = 1, .suspicion_value = 0.9}, b);
  EXPECT_LE(more_suspicion.trust(), base.trust() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(BSweep, TrustSweepTest,
                         ::testing::Values(0.0, 1.0, 4.0, 10.0, 25.0));

TEST(TrustProperty, TrustBoundedForArbitraryUpdateSequences) {
  Rng rng(4000);
  for (int trial = 0; trial < 50; ++trial) {
    trust::TrustRecord r;
    for (int step = 0; step < 30; ++step) {
      trust::EpochObservation obs;
      obs.ratings = static_cast<std::size_t>(rng.uniform_int(0, 10));
      obs.filtered = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(obs.ratings)));
      obs.suspicious = static_cast<std::size_t>(rng.uniform_int(0, 5));
      obs.suspicion_value = rng.uniform(0.0, 3.0);
      update_record(r, obs, rng.uniform(0.0, 12.0));
      if (rng.bernoulli(0.3)) r.fade(rng.uniform(0.5, 1.0));
      EXPECT_GT(r.trust(), 0.0);
      EXPECT_LT(r.trust(), 1.0);
      EXPECT_GE(r.successes, 0.0);
      EXPECT_GE(r.failures, 0.0);
    }
  }
}

TEST(OpinionProperty, AlgebraClosedUnderRandomCompositions) {
  Rng rng(4100);
  for (int trial = 0; trial < 200; ++trial) {
    const trust::Opinion a =
        trust::Opinion::from_evidence(rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0));
    const trust::Opinion b =
        trust::Opinion::from_value(rng.uniform(), rng.uniform(0.01, 0.99));
    const trust::Opinion d = trust::discount(a, b);
    const trust::Opinion c = trust::consensus(a, d);
    EXPECT_TRUE(a.valid() && b.valid() && d.valid() && c.valid());
    EXPECT_GE(c.expectation(), 0.0);
    EXPECT_LE(c.expectation(), 1.0);
  }
}

// ------------------------------------------------- aggregation invariants

TEST(AggregationProperty, BoundedByInputRange) {
  Rng rng(5000);
  const auto kinds = {agg::AggregatorKind::kSimpleAverage,
                      agg::AggregatorKind::kBetaFunction,
                      agg::AggregatorKind::kModifiedWeightedAverage,
                      agg::AggregatorKind::kOpinionTrustModel};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<agg::TrustedRating> ratings;
    const int n = static_cast<int>(rng.uniform_int(1, 30));
    double lo = 1.0;
    double hi = 0.0;
    for (int i = 0; i < n; ++i) {
      const double v = rng.uniform();
      ratings.push_back({v, rng.uniform()});
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    for (auto kind : kinds) {
      const double out = agg::make_aggregator(kind)->aggregate(ratings);
      if (kind == agg::AggregatorKind::kBetaFunction) {
        // Beta aggregation shrinks toward 0.5, so it can leave [lo, hi]
        // but never [0, 1].
        EXPECT_GE(out, 0.0);
        EXPECT_LE(out, 1.0);
      } else {
        EXPECT_GE(out, lo - 1e-12);
        EXPECT_LE(out, hi + 1e-12);
      }
    }
  }
}

TEST(AggregationProperty, WeightedAverageMonotoneInAttackerTrust) {
  // Lowering an attacker's trust never moves the aggregate toward them.
  std::vector<agg::TrustedRating> ratings{{0.8, 0.9}, {0.8, 0.9}, {0.2, 0.9}};
  const agg::ModifiedWeightedAverage w;
  double prev = w.aggregate(ratings);
  for (double t : {0.8, 0.7, 0.6, 0.5, 0.4}) {
    ratings[2].trust = t;
    const double out = w.aggregate(ratings);
    EXPECT_GE(out, prev - 1e-12);
    prev = out;
  }
  EXPECT_DOUBLE_EQ(prev, 0.8);  // fully excluded at t <= 0.5
}

// -------------------------------------------------- special functions

TEST(SpecialProperty, BetaQuantileMonotoneInP) {
  Rng rng(6000);
  for (int trial = 0; trial < 30; ++trial) {
    const double a = rng.uniform(0.2, 20.0);
    const double b = rng.uniform(0.2, 20.0);
    double prev = 0.0;
    for (double p = 0.05; p < 1.0; p += 0.05) {
      const double x = stats::beta_quantile(p, a, b);
      EXPECT_GE(x, prev - 1e-12);
      prev = x;
    }
  }
}

TEST(SpecialProperty, ChiSquaredCdfMonotone) {
  for (double k : {1.0, 2.0, 5.0, 10.0}) {
    double prev = 0.0;
    for (double x = 0.0; x < 30.0; x += 0.5) {
      const double c = stats::chi_squared_cdf(x, k);
      EXPECT_GE(c, prev - 1e-12);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
  }
}

}  // namespace
}  // namespace trustrate
