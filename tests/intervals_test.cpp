// Unit tests for proportion confidence intervals.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/intervals.hpp"

namespace trustrate::stats {
namespace {

TEST(Wilson, KnownTextbookValue) {
  // 8 of 10 at 95%: Wilson interval ~ [0.490, 0.943].
  const Interval ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.lo, 0.490, 0.01);
  EXPECT_NEAR(ci.hi, 0.943, 0.01);
  EXPECT_TRUE(ci.contains(0.8));
}

TEST(Wilson, BoundariesStayInUnitInterval) {
  const Interval none = wilson_interval(0, 50);
  EXPECT_NEAR(none.lo, 0.0, 1e-12);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_LT(none.hi, 0.15);

  const Interval all = wilson_interval(50, 50);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_GT(all.lo, 0.85);
}

TEST(Wilson, ShrinksWithSampleSize) {
  const Interval small = wilson_interval(10, 20);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.width(), small.width());
  EXPECT_TRUE(small.contains(0.5));
  EXPECT_TRUE(large.contains(0.5));
}

TEST(Wilson, WiderAtHigherConfidence) {
  const Interval z95 = wilson_interval(30, 100, 1.96);
  const Interval z99 = wilson_interval(30, 100, 2.5758);
  EXPECT_GT(z99.width(), z95.width());
  EXPECT_LE(z99.lo, z95.lo);
  EXPECT_GE(z99.hi, z95.hi);
}

TEST(Wilson, CoverageNearNominal) {
  // Empirical check: ~95% of intervals from Binomial(100, 0.3) samples
  // cover the true p.
  Rng rng(42);
  const double p = 0.3;
  int covered = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    std::size_t successes = 0;
    for (int i = 0; i < 100; ++i) successes += rng.bernoulli(p) ? 1 : 0;
    if (wilson_interval(successes, 100).contains(p)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GT(coverage, 0.92);
  EXPECT_LT(coverage, 0.98);
}

TEST(Wilson, PreconditionChecks) {
  EXPECT_THROW(wilson_interval(1, 0), PreconditionError);
  EXPECT_THROW(wilson_interval(5, 4), PreconditionError);
  EXPECT_THROW(wilson_interval(1, 10, 0.0), PreconditionError);
}

}  // namespace
}  // namespace trustrate::stats
