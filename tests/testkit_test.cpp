// Unit tests for the conformance testkit itself (ctest label: tier1).
//
// The randomized sweep (conformance_test.cpp) is only as trustworthy as the
// generator, the shadow-ingest reference, and the digests — these tests pin
// their contracts directly and keep one differential + metamorphic smoke
// run in the default tier.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/ingest.hpp"
#include "testkit/metamorphic.hpp"
#include "testkit/oracle.hpp"

namespace {

using trustrate::Rating;
using trustrate::RatingSeries;
using namespace trustrate::testkit;

// Renders a series bit-exactly (arrival sequences contain NaN-valued
// malformed junk, so Rating::operator== cannot compare them).
std::string render(const RatingSeries& series) {
  std::ostringstream out;
  for (const Rating& r : series) {
    out << hex_double(r.time) << ' ' << hex_double(r.value) << ' ' << r.rater
        << ' ' << r.product << '\n';
  }
  return out.str();
}

TEST(ScenarioGenerator, DeterministicFromSeed) {
  const Scenario a = make_scenario(1234);
  const Scenario b = make_scenario(1234);
  EXPECT_EQ(a.ratings, b.ratings);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.epoch_days, b.epoch_days);
  const ArrivalPlan pa = make_arrivals(a);
  const ArrivalPlan pb = make_arrivals(b);
  EXPECT_EQ(render(pa.arrivals), render(pb.arrivals));
  EXPECT_EQ(pa.plan.moves.size(), pb.plan.moves.size());

  const Scenario c = make_scenario(1235);
  EXPECT_NE(a.ratings, c.ratings);
}

TEST(ScenarioGenerator, GridAlignedStrictlyIncreasingTimes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Scenario s = make_scenario(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_FALSE(s.ratings.empty());
    double prev = -1.0;
    for (const Rating& r : s.ratings) {
      // Strictly increasing: no downstream tie-break can involve IDs.
      ASSERT_GT(r.time, prev);
      prev = r.time;
      // On the 2^-10 lattice: division by the grid is exact.
      const double cells = r.time / kTimeGrid;
      ASSERT_EQ(cells, std::floor(cells)) << "time off-grid: " << r.time;
      ASSERT_GE(r.value, 0.0);
      ASSERT_LE(r.value, 1.0);
    }
  }
}

TEST(ScenarioGenerator, AtBoundPairsSitExactlyOnTheLatenessBound) {
  std::size_t seen = 0;
  for (std::uint64_t seed = 1; seed <= 40 && seen < 5; ++seed) {
    const Scenario s = make_scenario(seed);
    for (const Displacement& d : s.at_bound_pairs) {
      ASSERT_LT(d.from, d.to);
      EXPECT_EQ(s.ratings[d.to].time - s.ratings[d.from].time,
                s.ingest.max_lateness_days);
      EXPECT_TRUE(d.exactly_at_bound);
      ++seen;
    }
  }
  EXPECT_GE(seen, 5u) << "generator stopped producing at-bound pairs";
}

// The shadow classifier and the real IngestBuffer must agree on every
// arrival sequence the generator produces — and both must recover exactly
// the clean stream.
TEST(ShadowIngest, MatchesRealIngestBuffer) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Scenario s = make_scenario(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + " [" + s.summary + "]");
    const ArrivalPlan plan = make_arrivals(s);

    trustrate::core::IngestBuffer buffer(s.ingest);
    RatingSeries released;
    std::vector<Rating> batch;
    for (const Rating& r : plan.arrivals) {
      batch.clear();
      buffer.submit(r, batch);
      released.insert(released.end(), batch.begin(), batch.end());
    }
    batch.clear();
    buffer.drain(batch);
    released.insert(released.end(), batch.begin(), batch.end());

    const ShadowIngestOutcome shadow = shadow_ingest(plan.arrivals, s.ingest);
    EXPECT_TRUE(buffer.stats() == shadow.stats);
    EXPECT_EQ(released, shadow.accepted_sorted);
    EXPECT_EQ(released, s.ratings);  // ingest repaired the perturbation
  }
}

TEST(Digest, HexDoubleIsBitExact) {
  EXPECT_EQ(hex_double(1.0), "0x1p+0");
  EXPECT_NE(hex_double(0.1), hex_double(0.1 + 1e-17));
  EXPECT_EQ(hex_double(0.1), hex_double(0.1));
}

TEST(Digest, TrustDigestSortsByMappedId) {
  trustrate::trust::TrustStore store;
  store.record(7) = {2.0, 1.0};
  store.record(3) = {1.0, 0.0};
  const std::string plain = digest_trust(store);
  EXPECT_LT(plain.find("3 "), plain.find("7 "));

  // Swapping 3 <-> 7 through a map must produce the digest of the swapped
  // store, proving relabel comparisons are meaningful.
  const std::unordered_map<trustrate::RaterId, trustrate::RaterId> swap_map{
      {3, 7}, {7, 3}};
  trustrate::trust::TrustStore swapped;
  swapped.record(3) = {2.0, 1.0};
  swapped.record(7) = {1.0, 0.0};
  EXPECT_EQ(digest_trust(store, &swap_map), digest_trust(swapped));
}

TEST(Oracle, DownconvertedCheckpointLoadsAsV1) {
  const Scenario s = make_scenario(11);
  const StreamOutcome base = run_stream(s, s.ratings, 1);
  const std::string v1 = downconvert_checkpoint_v1(base.checkpoint);
  EXPECT_NE(v1.find("trustrate-checkpoint 1\n"), std::string::npos);

  std::istringstream in(v1);
  const trustrate::core::StreamingRatingSystem restored =
      trustrate::core::load_checkpoint(in, s.config);
  // v1 carries no skipped-empty-epoch counter; everything else round-trips.
  EXPECT_EQ(restored.skipped_empty_epochs(), 0u);
  EXPECT_EQ(restored.epochs_closed(), base.epochs_closed);
  std::ostringstream resaved;
  trustrate::core::save_checkpoint(restored, resaved);
  EXPECT_EQ(normalize_skipped_counter(resaved.str()),
            normalize_skipped_counter(base.checkpoint));
}

TEST(Oracle, StripIngestNoiseRemovesOnlyStatsAndQuarantine) {
  const Scenario s = make_scenario(11);
  const StreamOutcome base = run_stream(s, s.ratings, 1);
  const std::string stripped = strip_ingest_noise(base.checkpoint);
  EXPECT_NE(stripped.find("stats -\n"), std::string::npos);
  EXPECT_NE(stripped.find("quarantine -\n"), std::string::npos);
  EXPECT_NE(stripped.find("trust "), std::string::npos);
  EXPECT_NE(stripped.find("end\n"), std::string::npos);
}

TEST(Conformance, SmokeOneSeed) {
  const Scenario s = make_scenario(42);
  const DifferentialResult diff = run_differential(s);
  EXPECT_TRUE(diff.ok) << diff.divergence;
  const MetamorphicResult meta = run_metamorphic(s);
  EXPECT_TRUE(meta.ok) << meta.violation;
}

}  // namespace
