// Shard-supervision tests (ISSUE 9): SpscQueue close/poison semantics and
// batched span transfers, crash containment at chosen event ordinals
// across shard counts, watchdog stall classification (fires exactly once,
// and slowness is NOT a stall), poison propagation to every public API
// entry point, shutdown-under-poison termination (this binary's ctest
// TIMEOUT is the external watchdog — a hang fails the suite), a TSan
// hammer of the close/poison paths, the durable heal's bitwise oracle,
// fail-stop with heal_attempts=0, and a seeded thread-fault sweep proving
// the trichotomy: every plan either heals bitwise-identical, fail-stops
// with a structured ShardFailure, or completes unharmed — never hangs,
// never std::terminate()s.
//
// Environment knobs (the nightly CI thread-fault-matrix job sets these
// for a date-seeded run):
//   TRUSTRATE_SUPERVISION_SEED          base seed for the generated sweep
//   TRUSTRATE_SUPERVISION_PLANS         plans per sweep
//   TRUSTRATE_SUPERVISION_ARTIFACT_DIR  where failing runs dump audit JSONL
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/durable/sharded_durable.hpp"
#include "core/shard/sharded_system.hpp"
#include "core/shard/spsc_queue.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "testkit/threadfault.hpp"

namespace trustrate {
namespace {

namespace fs = std::filesystem;
using core::durable::ShardedDurableOptions;
using core::durable::ShardedDurableStream;
using core::shard::ShardedRatingSystem;
using core::shard::ShardOptions;
using core::shard::SpscQueue;
using testkit::InjectedThreadFault;
using testkit::ThreadFaultInjector;
using testkit::ThreadFaultKind;
using testkit::ThreadFaultPlan;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

fs::path artifact_path(const std::string& name) {
  const char* dir = std::getenv("TRUSTRATE_SUPERVISION_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  fs::create_directories(dir);
  return fs::path(dir) / (name + ".jsonl");
}

/// Dumps the captured audit trail next to a failing sweep run so the
/// nightly CI matrix uploads a replayable diagnosis artifact.
void write_artifact(const fs::path& path, const obs::MemoryAuditSink& audit,
                    const std::string& note) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  out << "{\"note\":\"" << note << "\"}\n";
  for (const obs::AuditEvent& event : audit.snapshot()) {
    out << obs::to_jsonl(event) << '\n';
  }
}

/// Fresh per-test scratch directory under the system temp dir.
fs::path test_dir(const std::string& name) {
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path dir =
      fs::temp_directory_path() / ("trustrate-supervision-" + uniq) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Deterministic multi-epoch stream over 16 products — wide enough that a
/// modulo placement puts work on every shard at counts up to 7, so a fault
/// planted on ANY shard index reliably reaches its event ordinal.
RatingSeries wide_stream(int count = 320) {
  RatingSeries stream;
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += 0.45;
    stream.push_back({t, (i % 10) * 0.1, static_cast<RaterId>(1 + i % 13),
                      static_cast<ProductId>(1 + i % 16),
                      RatingLabel::kHonest});
  }
  return stream;
}

/// Drives the whole stream plus flush, catching the structured failure the
/// supervised pipeline surfaces on whichever public call trips first.
std::optional<ShardFailure> drive(ShardedRatingSystem& system,
                                  const RatingSeries& stream) {
  try {
    for (const Rating& r : stream) system.submit(r);
    system.flush();
  } catch (const ShardFailure& failure) {
    return failure;
  }
  return std::nullopt;
}

/// Fault-free reference: the same stream through the threaded sharded
/// durable front-end, rendered as collapsed-v3 checkpoint bytes.
std::string reference_digest(const RatingSeries& stream, std::size_t shards) {
  const fs::path dir = test_dir("reference-" + std::to_string(shards));
  ShardOptions shard_options;
  shard_options.shards = shards;
  shard_options.threaded = true;
  ShardedDurableOptions options;
  options.fsync = core::durable::FsyncPolicy::kNone;
  ShardedDurableStream durable(dir, pipeline_config(), shard_options, 30.0, 2,
                               {}, options);
  for (const Rating& r : stream) durable.submit(r);
  durable.flush();
  std::ostringstream bytes;
  core::write_checkpoint(durable.system().snapshot(), core::kCheckpointVersion,
                         bytes);
  fs::remove_all(dir);
  return bytes.str();
}

// ---------------------------------------------------------------------------
// SpscQueue close / poison semantics (satellite a)

TEST(SpscClose, CloseRefusesNewPushesButDeliversQueued) {
  SpscQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  int v = 41;
  EXPECT_FALSE(q.try_push(std::move(v)));
  v = 42;
  EXPECT_FALSE(q.push(std::move(v)));
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  // Drained and closed: pop reports shutdown instead of blocking forever.
  EXPECT_FALSE(q.pop(out));
  EXPECT_EQ(q.pop_n(&out, 1), 0u);
}

TEST(SpscClose, CloseReleasesBlockedPop) {
  SpscQueue<int> q(4);
  std::atomic<bool> released{false};
  std::thread consumer([&] {
    int out = 0;
    while (q.pop(out)) {
    }
    released.store(true, std::memory_order_release);
  });
  // The consumer is (or is about to be) parked in pop on an empty ring;
  // close must wake it with "no more items".
  q.close();
  consumer.join();
  EXPECT_TRUE(released.load(std::memory_order_acquire));
}

TEST(SpscClose, CloseReleasesBlockedPush) {
  SpscQueue<int> q(2);
  int v0 = 0, v1 = 1;
  ASSERT_TRUE(q.try_push(std::move(v0)));
  ASSERT_TRUE(q.try_push(std::move(v1)));
  std::atomic<bool> refused{false};
  std::thread producer([&] {
    int v = 2;
    // Ring is full and nobody pops: only close can release this.
    if (!q.push(std::move(v))) refused.store(true, std::memory_order_release);
  });
  q.close();
  producer.join();
  EXPECT_TRUE(refused.load(std::memory_order_acquire));
  // The two items queued before close still drain.
  int out = -1;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.pop(out));
}

// ---------------------------------------------------------------------------
// Batched span transfers (satellite c)

TEST(SpscBatch, SpanRoundTripKeepsFifo) {
  SpscQueue<std::uint64_t> q(16);
  std::array<std::uint64_t, 8> span{};
  std::uint64_t next = 0;
  std::uint64_t expect = 0;
  for (int round = 0; round < 64; ++round) {
    for (auto& s : span) s = next++;
    std::size_t done = 0;
    while (done < span.size()) {
      done += q.try_push_n(span.data() + done, span.size() - done);
      std::array<std::uint64_t, 8> out{};
      const std::size_t n = q.try_pop_n(out.data(), out.size());
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], expect++);
    }
  }
  std::array<std::uint64_t, 16> tail{};
  std::size_t n = 0;
  while ((n = q.try_pop_n(tail.data(), tail.size())) != 0) {
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(tail[i], expect++);
  }
  EXPECT_EQ(expect, next);
}

TEST(SpscBatch, TryPushNIsBoundedBySpace) {
  SpscQueue<int> q(4);
  std::array<int, 8> items{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(q.try_push_n(items.data(), items.size()), 4u);
  EXPECT_EQ(q.try_push_n(items.data() + 4, 4), 0u);
  std::array<int, 8> out{};
  EXPECT_EQ(q.try_pop_n(out.data(), out.size()), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SpscBatch, PopNDrainsThenReportsClose) {
  SpscQueue<int> q(8);
  std::array<int, 3> items{7, 8, 9};
  ASSERT_EQ(q.try_push_n(items.data(), items.size()), 3u);
  q.close();
  std::array<int, 8> out{};
  EXPECT_EQ(q.pop_n(out.data(), out.size()), 3u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(q.pop_n(out.data(), out.size()), 0u);
}

TEST(SpscBatch, ThreadedSpanHammer) {
  // TSan target: one producer pushing spans, one consumer popping spans,
  // with a mid-stream close from the producer side after the last item.
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> q(64);
  std::atomic<bool> in_order{true};
  std::thread consumer([&] {
    std::array<std::uint64_t, 32> span{};
    std::uint64_t expect = 0;
    std::size_t n = 0;
    while ((n = q.pop_n(span.data(), span.size())) != 0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (span[i] != expect++) {
          in_order.store(false, std::memory_order_release);
          return;
        }
      }
    }
    if (expect != kItems) in_order.store(false, std::memory_order_release);
  });
  std::array<std::uint64_t, 32> out{};
  std::uint64_t sent = 0;
  while (sent < kItems) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size(), kItems - sent));
    for (std::size_t i = 0; i < want; ++i) out[i] = sent + i;
    std::size_t done = 0;
    while (done < want) done += q.try_push_n(out.data() + done, want - done);
    sent += want;
  }
  q.close();
  consumer.join();
  EXPECT_TRUE(in_order.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// Crash containment (tentpole: poisoned shards)

TEST(Supervision, CrashAtOrdinalSweepAcrossShardCounts) {
  const RatingSeries stream = wide_stream();
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (const std::uint64_t ordinal : {0u, 3u, 11u}) {
      const std::size_t target = shards / 2;  // middle shard, 0 for 1-shard
      ThreadFaultPlan plan;
      plan.shard = target;
      plan.at_ordinal = ordinal;
      plan.kind = ThreadFaultKind::kThrow;
      ThreadFaultInjector injector(plan);
      obs::MetricsRegistry metrics;
      obs::MemoryAuditSink audit;
      ShardOptions options;
      options.shards = shards;
      options.threaded = true;
      // Deterministic placement: every shard owns products, so the fault
      // ordinal is reachable on any target shard (results are
      // placement-invariant; this only routes work).
      options.shard_fn = [](ProductId p, std::size_t n) {
        return static_cast<std::size_t>(p) % n;
      };
      options.event_hook = injector.hook();
      {
        ShardedRatingSystem system(pipeline_config(), options, 30.0, 2, {});
        system.set_observability({&metrics, nullptr, &audit});
        const std::optional<ShardFailure> failure = drive(system, stream);
        ASSERT_TRUE(failure.has_value())
            << "shards=" << shards << " ordinal=" << ordinal
            << ": injected crash did not surface";
        EXPECT_EQ(failure->kind(), ShardFailureKind::kPoisoned);
        EXPECT_EQ(failure->shard(), target);
        EXPECT_NE(failure->diagnostic().find("shard"), std::string::npos);
        EXPECT_NE(std::string(failure->what()).find("injected crash"),
                  std::string::npos);
        EXPECT_TRUE(system.failed());
        ASSERT_TRUE(system.failure().has_value());
        EXPECT_EQ(system.failure()->kind(), ShardFailureKind::kPoisoned);
        // Destruction with a poisoned shard must terminate (the suite's
        // ctest TIMEOUT is the external watchdog).
      }
      EXPECT_TRUE(injector.fired());
      EXPECT_EQ(audit.of_type(obs::AuditEventType::kShardPoisoned).size(), 1u);
      EXPECT_EQ(metrics.counter("trustrate_shard_poisoned_total").value(), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Watchdog (tentpole: deterministic stall classification)

TEST(Supervision, StallClassifiedExactlyOnce) {
  ThreadFaultPlan plan;
  plan.shard = 1;
  plan.at_ordinal = 4;
  plan.kind = ThreadFaultKind::kStall;
  plan.slices = 60000;  // minutes if un-aborted: the watchdog MUST cut in
  ThreadFaultInjector injector(plan);
  obs::MetricsRegistry metrics;
  obs::MemoryAuditSink audit;
  ShardOptions options;
  options.shards = 2;
  options.threaded = true;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  options.supervision.stall_ticks = 8;  // tiny budget: classify fast
  options.event_hook = injector.hook();
  {
    ShardedRatingSystem system(pipeline_config(), options, 30.0, 2, {});
    system.set_observability({&metrics, nullptr, &audit});
    const std::optional<ShardFailure> failure = drive(system, wide_stream());
    ASSERT_TRUE(failure.has_value()) << "stalled shard was never classified";
    EXPECT_EQ(failure->kind(), ShardFailureKind::kStalled);
    EXPECT_EQ(failure->shard(), 1u);
    EXPECT_NE(failure->diagnostic().find("mid-event"), std::string::npos);
  }
  // The worker saw the watchdog's abort flag and resolved the stall
  // through the poison path (joined by the destructor above).
  EXPECT_TRUE(injector.aborted());
  // Fires exactly once: the failure latch is first-wins, so the aborted
  // stall's secondary containment emits no second event.
  EXPECT_EQ(audit.of_type(obs::AuditEventType::kShardStalled).size(), 1u);
  EXPECT_EQ(audit.of_type(obs::AuditEventType::kShardPoisoned).size(), 0u);
  EXPECT_EQ(metrics.counter("trustrate_shard_stalled_total").value(), 1u);
}

TEST(Supervision, SlownessIsNotAStall) {
  ThreadFaultPlan plan;
  plan.shard = 0;
  plan.at_ordinal = 2;
  plan.kind = ThreadFaultKind::kSlow;
  plan.slices = 40;  // one 40ms hiccup
  ThreadFaultInjector injector(plan);
  obs::MemoryAuditSink audit;
  ShardOptions options;
  options.shards = 2;
  options.threaded = true;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  // Generous default budget: a slow shard makes progress between ticks
  // and must NOT be classified.
  options.event_hook = injector.hook();
  ShardedRatingSystem system(pipeline_config(), options, 30.0, 2, {});
  system.set_observability({nullptr, nullptr, &audit});
  const std::optional<ShardFailure> failure = drive(system, wide_stream());
  EXPECT_FALSE(failure.has_value());
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(system.failed());
  EXPECT_EQ(audit.of_type(obs::AuditEventType::kShardStalled).size(), 0u);
  EXPECT_GT(system.epochs_closed(), 0u);
}

// ---------------------------------------------------------------------------
// Poison propagation (tentpole: every public entry point throws)

TEST(Supervision, PoisonPropagatesToEveryPublicEntryPoint) {
  ThreadFaultPlan plan;
  plan.shard = 0;
  plan.at_ordinal = 0;
  plan.kind = ThreadFaultKind::kThrow;
  ThreadFaultInjector injector(plan);
  ShardOptions options;
  options.shards = 2;
  options.threaded = true;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  options.event_hook = injector.hook();
  ShardedRatingSystem system(pipeline_config(), options, 30.0, 2, {});
  ASSERT_TRUE(drive(system, wide_stream()).has_value());

  const Rating r{1.0, 0.5, 1, 1, RatingLabel::kHonest};
  const std::vector<std::pair<const char*, std::function<void()>>> calls = {
      {"submit", [&] { system.submit(r); }},
      {"flush", [&] { system.flush(); }},
      {"trust", [&] { system.trust(1); }},
      {"malicious", [&] { system.malicious(); }},
      {"aggregate", [&] { system.aggregate(1); }},
      {"epochs_closed", [&] { system.epochs_closed(); }},
      {"epoch_health", [&] { system.epoch_health(); }},
      {"degraded_epochs", [&] { system.degraded_epochs(); }},
      {"skipped_empty_epochs", [&] { system.skipped_empty_epochs(); }},
      {"shard_skipped_cells", [&] { system.shard_skipped_cells(); }},
      {"pending_ratings", [&] { system.pending_ratings(); }},
      {"quarantine", [&] { system.quarantine(); }},
      {"shard_quarantine", [&] { system.shard_quarantine(0); }},
      {"snapshot", [&] { system.snapshot(); }},
      {"save",
       [&] {
         std::ostringstream out;
         system.save(out);
       }},
      {"quiesce", [&] { system.quiesce(); }},
  };
  for (const auto& [name, call] : calls) {
    EXPECT_THROW(call(), ShardFailure) << "entry point: " << name;
  }
  // failed()/failure() are the non-throwing observers.
  EXPECT_TRUE(system.failed());
  EXPECT_TRUE(system.failure().has_value());
}

TEST(Supervision, RepeatedShutdownUnderPoisonTerminates) {
  // Poison at varied ordinals and destroy immediately, without draining:
  // stop_threads() under a latched failure must never hang (the ctest
  // TIMEOUT is the watchdog). Small rings force the blocking-push paths.
  const RatingSeries stream = wide_stream(96);
  for (std::uint64_t ordinal = 0; ordinal < 10; ++ordinal) {
    ThreadFaultPlan plan;
    plan.shard = ordinal % 3;
    plan.at_ordinal = ordinal;
    plan.kind = ThreadFaultKind::kThrow;
    ThreadFaultInjector injector(plan);
    ShardOptions options;
    options.shards = 3;
    options.threaded = true;
    options.queue_capacity = 4;  // tiny rings: exercise full-ring closes
    options.shard_fn = [](ProductId p, std::size_t n) {
      return static_cast<std::size_t>(p) % n;
    };
    options.event_hook = injector.hook();
    ShardedRatingSystem system(pipeline_config(), options, 30.0, 2, {});
    try {
      for (const Rating& r : stream) system.submit(r);
      system.flush();
    } catch (const ShardFailure&) {
      // Destroy with queues mid-flight.
    }
    EXPECT_TRUE(injector.fired()) << "ordinal " << ordinal;
  }
}

// ---------------------------------------------------------------------------
// Durable heal and fail-stop (tentpole: recovery)

TEST(Supervision, HealedRunIsBitwiseIdenticalToFaultFree) {
  const RatingSeries stream = wide_stream();
  const std::string reference = reference_digest(stream, 3);

  const fs::path dir = test_dir("heal-bitwise");
  ThreadFaultPlan plan;
  plan.shard = 1;
  plan.at_ordinal = 6;
  plan.kind = ThreadFaultKind::kThrow;
  ThreadFaultInjector injector(plan);
  obs::MemoryAuditSink audit;
  ShardOptions shard_options;
  shard_options.shards = 3;
  shard_options.threaded = true;
  shard_options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  shard_options.event_hook = injector.hook();
  ShardedDurableOptions options;
  options.fsync = core::durable::FsyncPolicy::kNone;
  options.heal_attempts = 2;
  options.obs = {nullptr, nullptr, &audit};
  {
    ShardedDurableStream durable(dir, pipeline_config(), shard_options, 30.0,
                                 2, {}, options);
    for (const Rating& r : stream) durable.submit(r);
    durable.flush();
    EXPECT_TRUE(injector.fired());
    EXPECT_GE(durable.supervision().heals, 1u);
    EXPECT_EQ(durable.supervision().failstops, 0u);
    EXPECT_NE(durable.supervision().last_failure.find("poisoned"),
              std::string::npos);
    std::ostringstream bytes;
    core::write_checkpoint(durable.system().snapshot(),
                           core::kCheckpointVersion, bytes);
    EXPECT_EQ(bytes.str(), reference)
        << "healed state diverged from fault-free";
  }
  EXPECT_GE(audit.of_type(obs::AuditEventType::kPipelineHealed).size(), 1u);
  EXPECT_EQ(audit.of_type(obs::AuditEventType::kPipelineFailstop).size(), 0u);
  fs::remove_all(dir);
}

TEST(Supervision, ZeroHealAttemptsFailStopsThenHealsOnDemand) {
  const RatingSeries stream = wide_stream();
  const fs::path dir = test_dir("failstop");
  ThreadFaultPlan plan;
  plan.shard = 0;
  plan.at_ordinal = 3;
  plan.kind = ThreadFaultKind::kThrow;
  ThreadFaultInjector injector(plan);
  obs::MemoryAuditSink audit;
  ShardOptions shard_options;
  shard_options.shards = 2;
  shard_options.threaded = true;
  shard_options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  shard_options.event_hook = injector.hook();
  ShardedDurableOptions options;
  options.fsync = core::durable::FsyncPolicy::kNone;
  options.heal_attempts = 0;  // fail-stop immediately
  options.obs = {nullptr, nullptr, &audit};
  ShardedDurableStream durable(dir, pipeline_config(), shard_options, 30.0, 2,
                               {}, options);
  bool failed = false;
  try {
    for (const Rating& r : stream) durable.submit(r);
    durable.flush();
  } catch (const ShardFailure& failure) {
    failed = true;
    EXPECT_EQ(failure.kind(), ShardFailureKind::kPoisoned);
  }
  ASSERT_TRUE(failed) << "fail-stop never surfaced";
  EXPECT_EQ(durable.supervision().failstops, 1u);
  EXPECT_EQ(durable.supervision().heals, 0u);
  EXPECT_EQ(audit.of_type(obs::AuditEventType::kPipelineFailstop).size(), 1u);

  // Explicit heal (the operator's lever): the stream rebuilds from its own
  // durable state; acknowledged() is the documented resume cursor — every
  // submission at or past it was never acked, so the client re-sends from
  // there and nothing is applied twice.
  ASSERT_TRUE(durable.try_heal());
  EXPECT_EQ(durable.supervision().heals, 1u);
  for (std::size_t i = static_cast<std::size_t>(durable.acknowledged());
       i < stream.size(); ++i) {
    durable.submit(stream[i]);
  }
  durable.flush();
  std::ostringstream bytes;
  core::write_checkpoint(durable.system().snapshot(), core::kCheckpointVersion,
                         bytes);
  EXPECT_EQ(bytes.str(), reference_digest(stream, 2));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Seeded sweep: the trichotomy (acceptance criterion)

TEST(Supervision, SeededThreadFaultSweepTrichotomy) {
  // Every generated plan must end in exactly one of: (1) the run completes
  // and its state is bitwise-identical to fault-free (healed, or the fault
  // was benign); (2) a structured ShardFailure surfaces (fail-stop); it
  // never hangs (ctest TIMEOUT) and never escapes as another exception
  // type (which would std::terminate on the worker).
  const std::uint64_t seed = env_u64("TRUSTRATE_SUPERVISION_SEED", 424242);
  const std::uint64_t plans = env_u64("TRUSTRATE_SUPERVISION_PLANS", 10);
  constexpr std::size_t kShards = 3;
  const RatingSeries stream = wide_stream();
  const std::string reference = reference_digest(stream, kShards);

  for (std::uint64_t p = 0; p < plans; ++p) {
    const ThreadFaultPlan plan =
        ThreadFaultPlan::generate(seed + p, kShards);
    SCOPED_TRACE("seed " + std::to_string(seed + p) + ": " + plan.summary());
    ThreadFaultInjector injector(plan);
    obs::MemoryAuditSink audit;
    const fs::path dir = test_dir("sweep-" + std::to_string(p));
    ShardOptions shard_options;
    shard_options.shards = kShards;
    shard_options.threaded = true;
    shard_options.shard_fn = [](ProductId pr, std::size_t n) {
      return static_cast<std::size_t>(pr) % n;
    };
    shard_options.supervision.stall_ticks = 1 << 12;  // classify stalls fast
    shard_options.event_hook = injector.hook();
    ShardedDurableOptions options;
    options.fsync = core::durable::FsyncPolicy::kNone;
    options.heal_attempts = 1;
    options.obs = {nullptr, nullptr, &audit};
    bool completed = false;
    std::string outcome;
    try {
      ShardedDurableStream durable(dir, pipeline_config(), shard_options,
                                   30.0, 2, {}, options);
      for (const Rating& r : stream) durable.submit(r);
      durable.flush();
      std::ostringstream bytes;
      core::write_checkpoint(durable.system().snapshot(),
                             core::kCheckpointVersion, bytes);
      completed = true;
      outcome = "completed, heals=" +
                std::to_string(durable.supervision().heals);
      if (bytes.str() != reference) {
        write_artifact(artifact_path("sweep-" + std::to_string(seed + p)),
                       audit, "digest divergence: " + plan.summary());
        FAIL() << "completed run diverged from fault-free reference";
      }
    } catch (const ShardFailure& failure) {
      outcome = std::string("failstop: ") + failure.what();
    } catch (const std::exception& e) {
      write_artifact(artifact_path("sweep-" + std::to_string(seed + p)),
                     audit, std::string("unstructured escape: ") + e.what());
      FAIL() << "non-ShardFailure escaped: " << e.what();
    }
    EXPECT_TRUE(completed || !outcome.empty());
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace trustrate
