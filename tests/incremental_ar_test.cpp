// Incremental covariance AR estimation (ISSUE 7 tentpole): the sliding
// estimator must match from-scratch fits bit for bit — including through
// degenerate and order-reduced windows — the SIMD kernels must match their
// scalar references bit for bit, and the detector's steady-state
// analyze_into path must not touch the heap.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "detect/ar_detector.hpp"
#include "signal/ar.hpp"
#include "signal/ar_incremental.hpp"
#include "signal/window.hpp"
#include "testkit/digest.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: global operator new/delete replacements for this test
// binary only. The counter observes every heap allocation, which is what
// lets AnalyzeIntoIsAllocationFree assert an exact zero over the warm path.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// noinline keeps GCC from pairing an inlined std::free with a visible new
// expression and warning about a mismatch that does not exist (both sides
// of the replacement pair are malloc-backed).
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

__attribute__((noinline)) void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace trustrate {
namespace {

using testkit::hex_double;

RatingSeries make_series(std::size_t n) {
  Rng rng(7);
  RatingSeries series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i].time = static_cast<double>(i) * 0.25;
    series[i].value = rng.gaussian(0.5, 0.2);
    series[i].rater = static_cast<RaterId>(i % 41);
  }
  // A constant stretch: singular normal equations at p >= 2, solvable at
  // p = 1 — the order-reduction ladder.
  for (std::size_t i = 100; i < 160 && i < n; ++i) series[i].value = 0.6;
  // A zero stretch: no window energy at all — the degenerate early exit.
  for (std::size_t i = 200; i < 260 && i < n; ++i) series[i].value = 0.0;
  return series;
}

void expect_bitwise_equal_fits(const signal::CovFitStats& inc,
                               const signal::CovWorkspace& inc_ws,
                               const signal::CovFitStats& fresh,
                               const signal::CovWorkspace& fresh_ws,
                               std::size_t window_index) {
  SCOPED_TRACE("window " + std::to_string(window_index));
  ASSERT_EQ(inc.fitted_order, fresh.fitted_order);
  EXPECT_EQ(inc.sample_count, fresh.sample_count);
  EXPECT_EQ(inc.degenerate, fresh.degenerate);
  // Hexfloat renders are bit-exact: any last-bit divergence fails loudly
  // and legibly.
  EXPECT_EQ(hex_double(inc.residual_energy), hex_double(fresh.residual_energy));
  EXPECT_EQ(hex_double(inc.reference_energy), hex_double(fresh.reference_energy));
  EXPECT_EQ(hex_double(inc.residual_variance()), hex_double(fresh.residual_variance()));
  EXPECT_EQ(hex_double(inc.normalized_error()), hex_double(fresh.normalized_error()));
  for (int k = 0; k < inc.fitted_order; ++k) {
    EXPECT_EQ(hex_double(inc_ws.coeffs[static_cast<std::size_t>(k)]),
              hex_double(fresh_ws.coeffs[static_cast<std::size_t>(k)]))
        << "coefficient a_" << k + 1;
  }
}

TEST(IncrementalAr, OverlappingSlidesMatchFreshFitsBitwise) {
  const RatingSeries series = make_series(400);
  constexpr int kOrder = 4;

  signal::SlidingCovarianceEstimator est;
  signal::CovWorkspace inc_ws;
  signal::CovWorkspace fresh_ws;
  est.begin_series(kOrder);

  const auto windows = signal::make_count_windows(series.size(), 50, 25);
  ASSERT_GT(windows.size(), 10u);
  std::vector<double> values;
  std::size_t degenerate_seen = 0;
  std::size_t reduced_seen = 0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    est.advance(series, windows[w].begin, windows[w].end);
    const signal::CovFitStats inc = est.fit(inc_ws);

    values.clear();
    for (std::size_t i = windows[w].begin; i < windows[w].end; ++i) {
      values.push_back(series[i].value);
    }
    const signal::CovFitStats fresh = signal::fit_cov_scratch(values, kOrder, fresh_ws);
    expect_bitwise_equal_fits(inc, inc_ws, fresh, fresh_ws, w);
    degenerate_seen += inc.degenerate ? 1 : 0;
    reduced_seen += (!inc.degenerate && inc.fitted_order < kOrder) ? 1 : 0;
  }
  // The series is constructed so the sweep exercises both fallback paths.
  EXPECT_GE(degenerate_seen, 1u);
  EXPECT_GE(reduced_seen, 1u);
}

TEST(IncrementalAr, SparseJumpAdvancesMatchFreshFits) {
  const RatingSeries series = make_series(400);
  constexpr int kOrder = 4;

  signal::SlidingCovarianceEstimator est;
  signal::CovWorkspace inc_ws;
  signal::CovWorkspace fresh_ws;
  est.begin_series(kOrder);

  // Disjoint and unevenly-sized windows: eviction drops whole spans and
  // the buffers compact across gaps, not just 50% overlaps.
  const std::vector<signal::IndexWindow> windows = {
      {0, 50}, {80, 131}, {131, 140}, {290, 353}, {390, 400}};
  std::vector<double> values;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    est.advance(series, windows[w].begin, windows[w].end);
    if (windows[w].size() < static_cast<std::size_t>(2 * kOrder + 1)) continue;
    const signal::CovFitStats inc = est.fit(inc_ws);
    values.clear();
    for (std::size_t i = windows[w].begin; i < windows[w].end; ++i) {
      values.push_back(series[i].value);
    }
    const signal::CovFitStats fresh = signal::fit_cov_scratch(values, kOrder, fresh_ws);
    expect_bitwise_equal_fits(inc, inc_ws, fresh, fresh_ws, w);
  }
}

TEST(IncrementalAr, CanonicalKernelAgreesWithNaiveCovarianceFit) {
  // Not bitwise — the naive fit uses different summation — but the two
  // solve the same normal equations, so the statistics must agree tightly
  // on a well-conditioned window.
  Rng rng(11);
  std::vector<double> xs(120);
  for (double& x : xs) x = rng.gaussian(0.5, 0.2);
  const signal::ArModel canonical = signal::fit_ar_covariance_canonical(xs, 4);
  const signal::ArModel naive = signal::fit_ar_covariance(xs, 4);
  ASSERT_EQ(canonical.order(), naive.order());
  EXPECT_NEAR(canonical.residual_energy, naive.residual_energy,
              1e-9 * naive.residual_energy);
  EXPECT_NEAR(canonical.reference_energy, naive.reference_energy,
              1e-9 * naive.reference_energy);
  for (int k = 0; k < naive.order(); ++k) {
    EXPECT_NEAR(canonical.coeffs[static_cast<std::size_t>(k)],
                naive.coeffs[static_cast<std::size_t>(k)], 1e-8);
  }
}

TEST(IncrementalAr, DetectorIncrementalFlagDoesNotChangeResults) {
  const RatingSeries series = make_series(600);
  detect::ArDetectorConfig cfg;
  cfg.window_days = 10.0;
  cfg.step_days = 5.0;
  cfg.error_threshold = 0.05;  // make sure some windows trip

  cfg.incremental = true;
  const detect::SuspicionResult on =
      detect::ArSuspicionDetector(cfg).analyze(series, 0.0, 100.0);
  cfg.incremental = false;
  const detect::SuspicionResult off =
      detect::ArSuspicionDetector(cfg).analyze(series, 0.0, 100.0);

  ASSERT_EQ(on.windows.size(), off.windows.size());
  for (std::size_t w = 0; w < on.windows.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w));
    EXPECT_EQ(on.windows[w].evaluated, off.windows[w].evaluated);
    EXPECT_EQ(on.windows[w].suspicious, off.windows[w].suspicious);
    EXPECT_EQ(hex_double(on.windows[w].model_error),
              hex_double(off.windows[w].model_error));
    EXPECT_EQ(hex_double(on.windows[w].level), hex_double(off.windows[w].level));
  }
  EXPECT_EQ(on.in_suspicious_window, off.in_suspicious_window);
  ASSERT_EQ(on.suspicion.size(), off.suspicion.size());
  for (const auto& [rater, c] : on.suspicion) {
    ASSERT_TRUE(off.suspicion.contains(rater)) << "rater " << rater;
    EXPECT_EQ(hex_double(c), hex_double(off.suspicion.at(rater)));
  }
}

TEST(IncrementalAr, SimdKernelsMatchScalarReferenceBitwise) {
  Rng rng(13);
  // Sizes straddling every vector-width boundary, including the empty and
  // sub-width cases that exercise only the scalar tail.
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u,
                              50u, 63u, 64u, 65u, 200u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.gaussian(0.0, 1.0) * std::pow(10.0, rng.uniform(-3.0, 3.0));
      b[i] = rng.gaussian(0.0, 1.0);
    }
    EXPECT_EQ(hex_double(simd::sum(a.data(), n)),
              hex_double(simd::sum_scalar(a.data(), n)));
    EXPECT_EQ(hex_double(simd::dot(a.data(), b.data(), n)),
              hex_double(simd::dot_scalar(a.data(), b.data(), n)));
    EXPECT_EQ(hex_double(simd::energy(a.data(), n)),
              hex_double(simd::dot_scalar(a.data(), a.data(), n)));
    std::vector<double> dst(n, 0.0), dst_ref(n, 0.0);
    simd::multiply(dst.data(), a.data(), b.data(), n);
    simd::multiply_scalar(dst_ref.data(), a.data(), b.data(), n);
    EXPECT_EQ(dst, dst_ref);

    // sum_rows must equal per-row sum bitwise for every row count around
    // the fusion widths (AVX2 fuses 4 rows, NEON 2) — and the row count
    // the kernel actually uses is order+1 = 5.
    std::vector<std::vector<double>> rows_data;
    std::vector<const double*> row_ptrs;
    for (std::size_t r = 0; r < 9; ++r) {
      std::vector<double> row(n);
      for (auto& v : row) v = rng.gaussian(0.0, 1.0);
      rows_data.push_back(std::move(row));
    }
    for (const auto& row : rows_data) row_ptrs.push_back(row.data());
    for (const std::size_t rc : {1u, 2u, 3u, 4u, 5u, 8u, 9u}) {
      SCOPED_TRACE("rows=" + std::to_string(rc));
      std::vector<double> fused(rc), reference(rc);
      simd::sum_rows(row_ptrs.data(), rc, n, fused.data());
      simd::sum_rows_scalar(row_ptrs.data(), rc, n, reference.data());
      for (std::size_t r = 0; r < rc; ++r) {
        EXPECT_EQ(hex_double(fused[r]), hex_double(reference[r]));
        EXPECT_EQ(hex_double(fused[r]),
                  hex_double(simd::sum(row_ptrs[r], n)));
      }
    }

    // multiply_lagged fills every lag column with the identical single
    // multiplies the scalar reference produces. Lag d reads x[i − d], so
    // hand it a pointer with enough history in front.
    if (n > 8) {
      const std::size_t lags = 5, hist = lags - 1;
      const double* x = a.data() + hist;
      const std::size_t len = n - hist;
      std::vector<std::vector<double>> got(lags, std::vector<double>(len)),
          want(lags, std::vector<double>(len));
      std::vector<double*> got_ptrs, want_ptrs;
      for (std::size_t d = 0; d < lags; ++d) {
        got_ptrs.push_back(got[d].data());
        want_ptrs.push_back(want[d].data());
      }
      simd::multiply_lagged(got_ptrs.data(), x, lags, len);
      simd::multiply_lagged_scalar(want_ptrs.data(), x, lags, len);
      for (std::size_t d = 0; d < lags; ++d) EXPECT_EQ(got[d], want[d]);
    }

    // Unaligned slices must not change lane assignment (it is by element
    // index, not address).
    if (n > 3) {
      EXPECT_EQ(hex_double(simd::sum(a.data() + 1, n - 3)),
                hex_double(simd::sum_scalar(a.data() + 1, n - 3)));
      EXPECT_EQ(hex_double(simd::dot(a.data() + 1, b.data() + 2, n - 3)),
                hex_double(simd::dot_scalar(a.data() + 1, b.data() + 2, n - 3)));
    }
  }
}

TEST(IncrementalAr, AnalyzeIntoIsAllocationFreeSteadyState) {
  const RatingSeries series = make_series(600);
  detect::ArDetectorConfig cfg;
  cfg.window_days = 10.0;
  cfg.step_days = 5.0;
  cfg.error_threshold = 0.05;  // suspicious windows exercise the run maps
  const detect::ArSuspicionDetector det(cfg);

  detect::ArScratch scratch;
  detect::SuspicionResult result;
  // Warm every high-water mark (buffers, flat maps, estimator storage).
  det.analyze_into(series, 0.0, 100.0, scratch, result);
  det.analyze_into(series, 0.0, 100.0, scratch, result);
  ASSERT_GT(result.suspicious_count(), 0u);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  det.analyze_into(series, 0.0, 100.0, scratch, result);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state analyze_into touched the heap";

  // Count-based windowing shares the contract.
  detect::ArDetectorConfig count_cfg = cfg;
  count_cfg.count_based = true;
  count_cfg.window_count = 50;
  count_cfg.step_count = 25;
  const detect::ArSuspicionDetector count_det(count_cfg);
  count_det.analyze_into(series, 0.0, 0.0, scratch, result);
  count_det.analyze_into(series, 0.0, 0.0, scratch, result);
  const std::uint64_t before2 = g_alloc_count.load(std::memory_order_relaxed);
  count_det.analyze_into(series, 0.0, 0.0, scratch, result);
  const std::uint64_t after2 = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after2 - before2, 0u)
      << "steady-state count-window analyze_into touched the heap";
}

}  // namespace
}  // namespace trustrate
