// Unit tests for the detect module: filter outcomes, beta-quantile filter,
// AR suspicion detector (Procedure 1), and the three baseline filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "detect/cluster_filter.hpp"
#include "detect/endorsement_filter.hpp"
#include "detect/entropy_filter.hpp"
#include "detect/filter.hpp"

namespace trustrate::detect {
namespace {

// Gaussian ratings around `quality` at 1/day for `days` days.
RatingSeries honest_series(Rng& rng, int days, double quality, double sigma,
                           double per_day = 4.0) {
  RatingSeries s;
  RaterId next = 0;
  for (double t = rng.exponential(per_day); t < days;
       t += rng.exponential(per_day)) {
    s.push_back({t, clamp_unit(rng.gaussian(quality, sigma)), next++, 0,
                 RatingLabel::kHonest});
  }
  return s;
}

// Appends a tight collaborative block on [t0, t1).
void add_attack(RatingSeries& s, Rng& rng, double t0, double t1, double mean,
                double per_day = 6.0, RaterId first_rater = 10000) {
  RaterId next = first_rater;
  for (double t = t0 + rng.exponential(per_day); t < t1;
       t += rng.exponential(per_day)) {
    s.push_back({t, clamp_unit(rng.gaussian(mean, 0.02)), next++, 0,
                 RatingLabel::kCollaborative2});
  }
  sort_by_time(s);
}

// --------------------------------------------------------- FilterOutcome

TEST(FilterOutcome, KeptSeriesPreservesOrder) {
  RatingSeries s{{1.0, 0.1, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.2, 2, 0, RatingLabel::kHonest},
                 {3.0, 0.3, 3, 0, RatingLabel::kHonest}};
  FilterOutcome out;
  out.kept = {0, 2};
  out.removed = {1};
  const RatingSeries kept = out.kept_series(s);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].value, 0.1);
  EXPECT_DOUBLE_EQ(kept[1].value, 0.3);
}

TEST(FilterOutcome, RemovedMask) {
  FilterOutcome out;
  out.kept = {0, 2};
  out.removed = {1};
  const auto mask = out.removed_mask(3);
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
}

TEST(NullFilter, KeepsEverything) {
  Rng rng(1);
  const RatingSeries s = honest_series(rng, 10, 0.5, 0.2);
  const NullFilter f;
  const auto out = f.filter(s);
  EXPECT_EQ(out.kept.size(), s.size());
  EXPECT_TRUE(out.removed.empty());
}

// ------------------------------------------------------------ BetaFilter

TEST(BetaFilter, KeepsSmallSamplesUntouched) {
  const BetaQuantileFilter f({.q = 0.1, .min_ratings = 5});
  RatingSeries s{{1.0, 0.9, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.1, 2, 0, RatingLabel::kHonest}};
  const auto out = f.filter(s);
  EXPECT_EQ(out.kept.size(), 2u);
}

TEST(BetaFilter, RemovesFarOutliers) {
  Rng rng(5);
  RatingSeries s = honest_series(rng, 30, 0.7, 0.1);
  // A blatant ballot-stuffing block at the bottom of the scale.
  for (int i = 0; i < 5; ++i) {
    s.push_back({10.0 + i, 0.0, static_cast<RaterId>(900 + i), 0,
                 RatingLabel::kCollaborative1});
  }
  sort_by_time(s);
  const BetaQuantileFilter f({.q = 0.05});
  const auto out = f.filter(s);
  std::size_t removed_attackers = 0;
  for (std::size_t i : out.removed) {
    if (s[i].value == 0.0) ++removed_attackers;
  }
  EXPECT_EQ(removed_attackers, 5u);
}

TEST(BetaFilter, ModerateBiasSurvives) {
  // The paper's motivating failure: a +0.15 shifted block passes.
  Rng rng(6);
  RatingSeries s = honest_series(rng, 30, 0.5, 0.2);
  add_attack(s, rng, 10.0, 20.0, 0.65, 4.0);
  const BetaQuantileFilter f({.q = 0.1});
  const auto out = f.filter(s);
  std::size_t removed_attackers = 0;
  std::size_t attackers = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!is_unfair(s[i].label)) continue;
    ++attackers;
    if (std::find(out.removed.begin(), out.removed.end(), i) != out.removed.end()) {
      ++removed_attackers;
    }
  }
  ASSERT_GT(attackers, 10u);
  EXPECT_LT(static_cast<double>(removed_attackers) / attackers, 0.2);
}

TEST(BetaFilter, PartitionIsExactAndSorted) {
  Rng rng(7);
  const RatingSeries s = honest_series(rng, 40, 0.5, 0.25);
  const BetaQuantileFilter f({.q = 0.1});
  const auto out = f.filter(s);
  EXPECT_EQ(out.kept.size() + out.removed.size(), s.size());
  EXPECT_TRUE(std::is_sorted(out.kept.begin(), out.kept.end()));
  EXPECT_TRUE(std::is_sorted(out.removed.begin(), out.removed.end()));
  // Disjoint.
  for (std::size_t i : out.kept) {
    EXPECT_EQ(std::find(out.removed.begin(), out.removed.end(), i),
              out.removed.end());
  }
}

TEST(BetaFilter, IdenticalRatingsNeverFiltered) {
  RatingSeries s;
  for (int i = 0; i < 20; ++i) {
    s.push_back({static_cast<double>(i), 0.6, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  const BetaQuantileFilter f({.q = 0.1});
  EXPECT_TRUE(f.filter(s).removed.empty());
}

TEST(BetaFilter, RejectsBadConfig) {
  EXPECT_THROW(BetaQuantileFilter({.q = 0.0}), PreconditionError);
  EXPECT_THROW(BetaQuantileFilter({.q = 0.6}), PreconditionError);
  EXPECT_THROW(BetaQuantileFilter({.q = 0.1, .min_ratings = 5,
                                   .max_iterations = 0}),
               PreconditionError);
}

// ------------------------------------------------------------ ArDetector

TEST(ArDetector, HonestStreamMostlyClean) {
  Rng rng(11);
  const RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 8.0);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 5;
  cfg.error_threshold = 0.015;  // well under the sigma^2 = 0.04 baseline
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  EXPECT_EQ(res.suspicious_count(), 0u);
  EXPECT_TRUE(res.suspicion.empty());
}

TEST(ArDetector, TightCollaborativeBlockFlagged) {
  Rng rng(12);
  RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 6.0);
  add_attack(s, rng, 25.0, 35.0, 0.6, 14.0);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 5;
  cfg.error_threshold = 0.02;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  ASSERT_GT(res.suspicious_count(), 0u);
  // Every suspicious window overlaps the attack interval.
  for (const auto& w : res.windows) {
    if (!w.suspicious) continue;
    EXPECT_GT(w.window.end, 25.0);
    EXPECT_LT(w.window.start, 35.0);
  }
}

TEST(ArDetector, SuspicionAssignedToRatersInWindow) {
  Rng rng(13);
  RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 6.0);
  add_attack(s, rng, 25.0, 35.0, 0.6, 20.0, /*first_rater=*/5000);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 5;
  cfg.error_threshold = 0.022;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  ASSERT_FALSE(res.suspicion.empty());
  // Most of the accumulated suspicion mass belongs to attackers.
  double attacker_mass = 0.0;
  double total_mass = 0.0;
  for (const auto& [rater, c] : res.suspicion) {
    EXPECT_GT(c, 0.0);
    total_mass += c;
    if (rater >= 5000) attacker_mass += c;
  }
  EXPECT_GT(attacker_mass / total_mass, 0.5);
}

TEST(ArDetector, LevelBoundedByScale) {
  Rng rng(14);
  RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 6.0);
  add_attack(s, rng, 25.0, 35.0, 0.6, 14.0);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 5;
  cfg.error_threshold = 0.02;
  cfg.scale = 0.7;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  for (const auto& w : res.windows) {
    EXPECT_LE(w.level, 0.7 + 1e-12);
    EXPECT_GE(w.level, 0.0);
  }
}

TEST(ArDetector, OverlappingWindowsDoNotDoubleCountSuspicion) {
  // A rater inside one suspicious episode accrues at most the maximum
  // window level, even with heavy window overlap.
  Rng rng(15);
  RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 6.0);
  add_attack(s, rng, 25.0, 35.0, 0.6, 14.0, 5000);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 1;  // 10x overlap
  cfg.error_threshold = 0.02;
  cfg.scale = 1.0;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  for (const auto& [rater, c] : res.suspicion) {
    EXPECT_LE(c, 1.0 + 1e-12) << "rater " << rater;
  }
}

// Deterministic low-variance block on [t0, t1): `raters` raters take turns
// rating every 1/per_day days with values tightly around `mean` (sigma
// controls the window's AR model error, hence the suspicion level).
void add_block(RatingSeries& s, Rng& rng, double t0, double t1, double mean,
               double sigma, double per_day, RaterId first_rater,
               RaterId raters) {
  std::size_t k = 0;
  for (double t = t0 + 0.5 / per_day; t < t1; t += 1.0 / per_day, ++k) {
    s.push_back({t, clamp_unit(rng.gaussian(mean, sigma)),
                 first_rater + static_cast<RaterId>(k % raters), 0,
                 RatingLabel::kCollaborative2});
  }
  sort_by_time(s);
}

TEST(ArDetector, DisjointSuspiciousRunsEachCreditFullLevel) {
  // Regression (ISSUE 2): a rater active in two suspicious intervals that
  // do NOT share a run must accumulate the full level of each. The old
  // bookkeeping never reset the per-rater "latest level", so the second,
  // genuinely new interval credited only the delta and under-counted C(i).
  Rng rng(81);
  RatingSeries s;
  // Suspicious block A on [0, 10), honest noise on [10, 20), suspicious
  // block B on [20, 30); the same 20 raters form both blocks.
  add_block(s, rng, 0.0, 10.0, 0.6, 0.005, 2.0, 1, 20);
  add_block(s, rng, 10.0, 20.0, 0.5, 0.2, 2.0, 500, 20);  // honest middle
  add_block(s, rng, 20.0, 30.0, 0.6, 0.005, 2.0, 1, 20);

  ArDetectorConfig cfg;
  cfg.window_days = 10.0;
  cfg.step_days = 10.0;  // windows [0,10), [10,20), [20,30): no overlap
  cfg.error_threshold = 0.02;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 30.0);

  ASSERT_EQ(res.windows.size(), 3u);
  ASSERT_TRUE(res.windows[0].suspicious);
  ASSERT_FALSE(res.windows[1].suspicious);  // honest middle window
  ASSERT_TRUE(res.windows[2].suspicious);
  const double expected = res.windows[0].level + res.windows[2].level;
  ASSERT_TRUE(res.suspicion.contains(1));
  EXPECT_DOUBLE_EQ(res.suspicion.at(1), expected);
}

TEST(ArDetector, RunCreditsItsMaximumLevelOnce) {
  // Within one run of consecutive suspicious windows a rater contributes
  // the run's *maximum* level exactly once. The old bookkeeping summed
  // every positive level delta, so a dip-and-recover level profile
  // over-counted (e.g. levels 0.9, 0.7, 0.9 credited 1.1).
  Rng rng(82);
  RatingSeries s;
  // One contiguous block on [0, 30) whose variance bulges in the middle:
  // windows overlapping [12, 18) have a higher model error, so the level
  // profile dips there and recovers after.
  add_block(s, rng, 0.0, 12.0, 0.6, 0.004, 2.0, 1, 20);
  add_block(s, rng, 12.0, 18.0, 0.6, 0.06, 2.0, 1, 20);
  add_block(s, rng, 18.0, 30.0, 0.6, 0.004, 2.0, 1, 20);

  ArDetectorConfig cfg;
  cfg.window_days = 10.0;
  cfg.step_days = 5.0;
  cfg.error_threshold = 0.02;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 30.0);

  // Precondition of the scenario: every window is suspicious (one run) and
  // the level profile actually dips and recovers.
  double max_level = 0.0;
  bool dipped = false;
  for (std::size_t i = 0; i < res.windows.size(); ++i) {
    ASSERT_TRUE(res.windows[i].suspicious) << "window " << i;
    max_level = std::max(max_level, res.windows[i].level);
    if (i > 0 && i + 1 < res.windows.size() &&
        res.windows[i].level < res.windows[i - 1].level &&
        res.windows[i].level < res.windows[i + 1].level) {
      dipped = true;
    }
  }
  ASSERT_TRUE(dipped) << "scenario must produce a level dip";
  // Rater 1 rates every 10 days/20 = twice per window: present in every
  // window, so its C equals the single run's maximum level exactly.
  ASSERT_TRUE(res.suspicion.contains(1));
  EXPECT_DOUBLE_EQ(res.suspicion.at(1), max_level);
}

TEST(ArDetector, NearZeroLevelRaterIsStillCredited) {
  // A window whose model error sits just below the threshold has a level
  // near 0. The old code used `latest == 0.0` as the "rater not seen"
  // sentinel, conflating it with legitimate near-zero levels; the
  // window-ordinal bookkeeping keeps the two distinct, and every rater of
  // a suspicious window appears in the suspicion map with C > 0.
  Rng rng(83);
  RatingSeries s;
  add_block(s, rng, 0.0, 10.0, 0.6, 0.13, 2.0, 1, 10);  // error just below thr
  ArDetectorConfig cfg;
  cfg.window_days = 10.0;
  cfg.step_days = 10.0;
  cfg.error_threshold = 0.02;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 10.0);
  ASSERT_EQ(res.windows.size(), 1u);
  if (!res.windows[0].suspicious) {
    GTEST_SKIP() << "seed produced error above threshold";
  }
  ASSERT_GT(res.windows[0].level, 0.0);
  for (RaterId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(res.suspicion.contains(id)) << "rater " << id;
    EXPECT_DOUBLE_EQ(res.suspicion.at(id), res.windows[0].level);
  }
}

TEST(ArDetector, SparseWindowsSkipped) {
  RatingSeries s;
  for (int i = 0; i < 5; ++i) {
    s.push_back({i * 10.0, 0.5, static_cast<RaterId>(i), 0, RatingLabel::kHonest});
  }
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 10;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 50.0);
  for (const auto& w : res.windows) {
    EXPECT_FALSE(w.evaluated);
    EXPECT_FALSE(w.suspicious);
    // A skipped window has no error value: NaN, not the old on-scale 1.0
    // sentinel that polluted ungated averages.
    EXPECT_TRUE(std::isnan(w.model_error));
  }
}

TEST(ArDetector, CountBasedWindows) {
  Rng rng(16);
  const RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 8.0);
  ArDetectorConfig cfg;
  cfg.count_based = true;
  cfg.window_count = 50;
  cfg.step_count = 25;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 0.0);  // t0/t1 ignored
  EXPECT_EQ(res.windows.size(), (s.size() - 50) / 25 + 1);
}

TEST(ArDetector, CountWindowSpansAreHalfOpen) {
  // Distinct strictly increasing times so span membership is unambiguous.
  RatingSeries s;
  for (int i = 0; i < 30; ++i) {
    s.push_back({static_cast<double>(i) * 1.5, 0.5, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  ArDetectorConfig cfg;
  cfg.count_based = true;
  cfg.window_count = 9;
  cfg.step_count = 4;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 0.0);
  ASSERT_FALSE(res.windows.empty());
  for (const auto& w : res.windows) {
    // Half-open like every other TimeWindow: starts at the first rating
    // and ends just past the last one, so contains() holds for exactly the
    // ratings in [first, last). (It used to report the end-inclusive
    // [first.time, last.time], excluding the final rating.)
    EXPECT_EQ(w.window.start, s[w.first].time);
    EXPECT_EQ(w.window.end,
              std::nextafter(s[w.last - 1].time,
                             std::numeric_limits<double>::infinity()));
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(w.window.contains(s[i].time), i >= w.first && i < w.last)
          << "rating " << i;
    }
  }
}

TEST(ArDetector, InSuspiciousWindowMaskMatchesWindows) {
  Rng rng(17);
  RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 6.0);
  add_attack(s, rng, 25.0, 35.0, 0.6, 14.0);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 5;
  cfg.error_threshold = 0.02;
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  std::vector<bool> expected(s.size(), false);
  for (const auto& w : res.windows) {
    if (!w.suspicious) continue;
    for (std::size_t i = w.first; i < w.last; ++i) expected[i] = true;
  }
  EXPECT_EQ(res.in_suspicious_window, expected);
}

TEST(ArDetector, RequiresSortedSeries) {
  RatingSeries s{{5.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {1.0, 0.5, 2, 0, RatingLabel::kHonest}};
  const ArSuspicionDetector det{ArDetectorConfig{}};
  EXPECT_THROW(det.analyze(s, 0.0, 10.0), PreconditionError);
}

TEST(ArDetector, ConfigValidation) {
  ArDetectorConfig bad;
  bad.order = 0;
  EXPECT_THROW(ArSuspicionDetector{bad}, PreconditionError);
  bad = {};
  bad.error_threshold = 0.0;
  EXPECT_THROW(ArSuspicionDetector{bad}, PreconditionError);
  bad = {};
  bad.scale = 1.5;
  EXPECT_THROW(ArSuspicionDetector{bad}, PreconditionError);
  bad = {};
  bad.window_days = -1.0;
  EXPECT_THROW(ArSuspicionDetector{bad}, PreconditionError);
}

// Parameterized: all three estimators must agree on the qualitative
// honest-vs-attack separation.
class ArDetectorEstimatorTest : public ::testing::TestWithParam<ArEstimator> {};

TEST_P(ArDetectorEstimatorTest, AttackWindowsHaveLowerError) {
  Rng rng(18);
  RatingSeries s = honest_series(rng, 60, 0.5, 0.2, 6.0);
  add_attack(s, rng, 25.0, 35.0, 0.6, 14.0);
  ArDetectorConfig cfg;
  cfg.window_days = 10;
  cfg.step_days = 5;
  cfg.estimator = GetParam();
  cfg.error_threshold = 0.0001;  // never fires; we compare raw errors
  const ArSuspicionDetector det(cfg);
  const auto res = det.analyze(s, 0.0, 60.0);
  double attack_min = 1.0;
  double honest_min = 1.0;
  for (const auto& w : res.windows) {
    if (!w.evaluated) continue;
    const bool overlaps = w.window.end > 25.0 && w.window.start < 35.0;
    if (overlaps) {
      attack_min = std::min(attack_min, w.model_error);
    } else {
      honest_min = std::min(honest_min, w.model_error);
    }
  }
  EXPECT_LT(attack_min, honest_min);
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, ArDetectorEstimatorTest,
                         ::testing::Values(ArEstimator::kCovariance,
                                           ArEstimator::kAutocorrelation,
                                           ArEstimator::kBurg));

// -------------------------------------------------------- EntropyFilter

TEST(EntropyFilter, AcceptsConsistentStream) {
  Rng rng(21);
  RatingSeries s;
  for (int i = 0; i < 100; ++i) {
    s.push_back({static_cast<double>(i),
                 quantize_unit(clamp_unit(rng.gaussian(0.6, 0.15)), 10, false),
                 static_cast<RaterId>(i), 0, RatingLabel::kHonest});
  }
  const EntropyFilter f({.levels = 10, .threshold = 0.12, .warmup = 10});
  const auto out = f.filter(s);
  EXPECT_LT(out.removed.size(), s.size() / 5);
}

TEST(EntropyFilter, WarmupAlwaysAccepted) {
  RatingSeries s;
  for (int i = 0; i < 5; ++i) {
    s.push_back({static_cast<double>(i), i % 2 ? 1.0 : 0.1,
                 static_cast<RaterId>(i), 0, RatingLabel::kHonest});
  }
  const EntropyFilter f({.levels = 10, .threshold = 0.001, .warmup = 5});
  EXPECT_TRUE(f.filter(s).removed.empty());
}

TEST(EntropyFilter, FlagsSurpriseAfterConsensus) {
  RatingSeries s;
  // 40 identical ratings, then one at the other end of the scale.
  for (int i = 0; i < 40; ++i) {
    s.push_back({static_cast<double>(i), 0.6, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  s.push_back({41.0, 0.1, 99, 0, RatingLabel::kCollaborative1});
  const EntropyFilter f({.levels = 10, .threshold = 0.02, .warmup = 10});
  const auto out = f.filter(s);
  ASSERT_EQ(out.removed.size(), 1u);
  EXPECT_EQ(out.removed[0], 40u);
}

TEST(EntropyFilter, ConfigValidation) {
  EXPECT_THROW(EntropyFilter({.levels = 1}), PreconditionError);
  EXPECT_THROW(EntropyFilter({.levels = 10, .threshold = 0.0}),
               PreconditionError);
}

// ---------------------------------------------------- EndorsementFilter

TEST(EndorsementFilter, QualityHighForAgreement) {
  RatingSeries s{{1.0, 0.5, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.5, 2, 0, RatingLabel::kHonest},
                 {3.0, 0.5, 3, 0, RatingLabel::kHonest}};
  const auto q = EndorsementFilter::qualities(s);
  for (double v : q) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(EndorsementFilter, LonelyOutlierHasLowQuality) {
  RatingSeries s;
  for (int i = 0; i < 9; ++i) {
    s.push_back({static_cast<double>(i), 0.6, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  s.push_back({10.0, 0.0, 99, 0, RatingLabel::kCollaborative1});
  const auto q = EndorsementFilter::qualities(s);
  EXPECT_LT(q.back(), q.front());
  const EndorsementFilter f({.deviations = 2.0});
  const auto out = f.filter(s);
  ASSERT_EQ(out.removed.size(), 1u);
  EXPECT_EQ(out.removed[0], 9u);
}

TEST(EndorsementFilter, CollaborativeBlockEndorsesItself) {
  // The paper's argument: a mutually-consistent collaborative block keeps
  // high endorsement quality and passes.
  Rng rng(22);
  RatingSeries s = honest_series(rng, 30, 0.5, 0.2);
  add_attack(s, rng, 10.0, 20.0, 0.65, 6.0);
  const EndorsementFilter f({.deviations = 2.0});
  const auto out = f.filter(s);
  std::size_t removed_attackers = 0;
  for (std::size_t i : out.removed) {
    if (is_unfair(s[i].label)) ++removed_attackers;
  }
  EXPECT_LT(removed_attackers, count_unfair(s) / 5 + 1);
}

TEST(EndorsementFilter, SmallSamplesUntouched) {
  RatingSeries s{{1.0, 0.0, 1, 0, RatingLabel::kHonest},
                 {2.0, 1.0, 2, 0, RatingLabel::kHonest}};
  const EndorsementFilter f({.deviations = 1.0, .min_ratings = 5});
  EXPECT_TRUE(f.filter(s).removed.empty());
}

// -------------------------------------------------------- ClusterFilter

TEST(ClusterFilter, OptimalSplitSeparatesTwoBlobs) {
  std::vector<double> values{0.1, 0.12, 0.15, 0.8, 0.82, 0.85};
  const double split = ClusterFilter::optimal_split(values);
  EXPECT_GE(split, 0.15);
  EXPECT_LT(split, 0.8);
}

TEST(ClusterFilter, RemovesSeparatedMinority) {
  RatingSeries s;
  for (int i = 0; i < 12; ++i) {
    s.push_back({static_cast<double>(i), 0.7, static_cast<RaterId>(i), 0,
                 RatingLabel::kHonest});
  }
  for (int i = 0; i < 4; ++i) {
    s.push_back({20.0 + i, 0.1, static_cast<RaterId>(100 + i), 0,
                 RatingLabel::kCollaborative1});
  }
  sort_by_time(s);
  const ClusterFilter f{ClusterFilterConfig{}};
  const auto out = f.filter(s);
  EXPECT_EQ(out.removed.size(), 4u);
  for (std::size_t i : out.removed) EXPECT_DOUBLE_EQ(s[i].value, 0.1);
}

TEST(ClusterFilter, ModerateBiasNotSeparated) {
  // +0.15 bias does not produce the separation the filter needs: the
  // paper's strategy-2 evasion.
  Rng rng(23);
  RatingSeries s = honest_series(rng, 30, 0.5, 0.2);
  add_attack(s, rng, 10.0, 20.0, 0.65, 6.0);
  const ClusterFilter f{ClusterFilterConfig{}};
  const auto out = f.filter(s);
  std::size_t removed_attackers = 0;
  for (std::size_t i : out.removed) {
    if (is_unfair(s[i].label)) ++removed_attackers;
  }
  EXPECT_LT(removed_attackers, count_unfair(s) / 4 + 1);
}

TEST(ClusterFilter, BalancedClustersKept) {
  RatingSeries s;
  for (int i = 0; i < 10; ++i) {
    s.push_back({static_cast<double>(i), i % 2 ? 0.2 : 0.8,
                 static_cast<RaterId>(i), 0, RatingLabel::kHonest});
  }
  const ClusterFilter f({.min_separation = 0.3, .max_minority_fraction = 0.45});
  // 50/50 split: neither side is a minority; keep everything.
  EXPECT_TRUE(f.filter(s).removed.empty());
}

TEST(ClusterFilter, SplitRequiresTwoValues) {
  EXPECT_THROW(ClusterFilter::optimal_split({1.0}), PreconditionError);
}

}  // namespace
}  // namespace trustrate::detect
