// Live-introspection tests (ISSUE 10): endpoint goldens for the /healthz
// and /status renderers, the Prometheus exposition-format contract for
// labeled metric families and histogram snapshots, the deprecated-name
// mirroring of the renamed shard counters, causal-ID threading through
// the ingest → shard ring → epoch close → merge trace chain, SPSC ring
// backpressure telemetry, the HTTP exposition server's lifecycle and
// malformed-request robustness, a scrape-while-ingesting hammer (the TSan
// target for the probe path), the server-on-vs-off bitwise digest oracle,
// the durable-layer probe's clock-free record ages, and the acceptance
// path: a ThreadFaultPlan-poisoned shard is visible on /healthz before
// try_heal() and the pipeline reports ok after.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "core/checkpoint.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/durable/sharded_durable.hpp"
#include "core/shard/sharded_system.hpp"
#include "core/shard/spsc_queue.hpp"
#include "obs/http.hpp"
#include "obs/introspect.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testkit/threadfault.hpp"

namespace trustrate {
namespace {

namespace fs = std::filesystem;
using core::durable::DurableStream;
using core::durable::ShardedDurableOptions;
using core::durable::ShardedDurableStream;
using core::shard::ShardedRatingSystem;
using core::shard::ShardOptions;
using core::shard::SpscQueue;
using obs::ExpositionServer;
using obs::bind_introspection;
using testkit::ThreadFaultInjector;
using testkit::ThreadFaultKind;
using testkit::ThreadFaultPlan;

fs::path test_dir(const std::string& name) {
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path dir =
      fs::temp_directory_path() / ("trustrate-introspection-" + uniq) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Deterministic multi-epoch stream over 16 products (modulo placement
/// reaches every shard at the counts these tests use).
RatingSeries wide_stream(int count = 320) {
  RatingSeries stream;
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += 0.45;
    stream.push_back({t, (i % 10) * 0.1, static_cast<RaterId>(1 + i % 13),
                      static_cast<ProductId>(1 + i % 16),
                      RatingLabel::kHonest});
  }
  return stream;
}

ShardOptions threaded_options(std::size_t shards) {
  ShardOptions options;
  options.shards = shards;
  options.threaded = true;
  options.shard_fn = [](ProductId p, std::size_t n) {
    return static_cast<std::size_t>(p) % n;
  };
  return options;
}

/// Bitwise state digest: the serialized checkpoint, as the supervision
/// oracle uses it.
std::string state_digest(ShardedRatingSystem& system) {
  std::ostringstream out;
  core::write_checkpoint(system.snapshot(), core::kCheckpointVersion, out);
  return out.str();
}

// --------------------------------------------------------- HTTP client

/// Sends raw bytes to 127.0.0.1:port and drains the response until the
/// server closes (every response is Connection: close).
std::string http_raw(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) break;  // server may close early (oversized head): fine
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_raw(port, "GET " + path +
                            " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                            "Connection: close\r\n\r\n");
}

int status_of(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

// ------------------------------------------------------ endpoint goldens

TEST(IntrospectGolden, HealthzIdleDefaults) {
  const obs::PipelineProbe pipeline;
  const obs::DurabilityProbe durability;
  EXPECT_EQ(obs::render_healthz(pipeline, durability),
            "{\"status\":\"ok\",\"pipeline\":{\"mode\":\"inline\","
            "\"failed\":false,\"merge_lag\":0,\"merge_stall_age\":0,"
            "\"stall_budget\":0,\"shards\":[]},"
            "\"durability\":{\"present\":false}}\n");
}

TEST(IntrospectGolden, StatusIdleDefaults) {
  const obs::PipelineProbe pipeline;
  const obs::DurabilityProbe durability;
  EXPECT_EQ(obs::render_status(pipeline, durability),
            "{\"epoch\":{\"anchored\":false,\"epoch_start\":0,"
            "\"last_time\":0,\"cells_issued\":0,\"cells_merged\":0,"
            "\"merge_lag\":0,\"skipped_empty_epochs\":0},"
            "\"ingest\":{\"submitted\":0,\"pending\":0,\"buffered\":0},"
            "\"shards\":[],\"durability\":{\"present\":false}}\n");
}

TEST(IntrospectGolden, HealthzFailedPipelineWithPoisonedShard) {
  obs::PipelineProbe p;
  p.threaded = true;
  p.failed = true;
  p.failure_kind = "poisoned";
  p.failure_shard = 1;
  p.failure_message = "worker died";
  p.merge_lag = 2;
  p.stall_budget = 100;
  obs::ShardProbe ok;
  ok.index = 0;
  obs::ShardProbe bad;
  bad.index = 1;
  bad.health = obs::ShardHealth::kPoisoned;
  bad.poisoned = true;
  bad.heartbeat_age = 1;
  p.shards = {ok, bad};
  obs::DurabilityProbe d;
  d.present = true;
  d.state = "durable";
  d.heals = 1;
  EXPECT_EQ(obs::render_healthz(p, d),
            "{\"status\":\"failed\",\"pipeline\":{\"mode\":\"threaded\","
            "\"failed\":true,\"failure_kind\":\"poisoned\","
            "\"failure_shard\":1,\"failure_message\":\"worker died\","
            "\"merge_lag\":2,\"merge_stall_age\":0,\"stall_budget\":100,"
            "\"shards\":[{\"shard\":0,\"state\":\"ok\",\"heartbeat_age\":0,"
            "\"stall_age\":0},{\"shard\":1,\"state\":\"poisoned\","
            "\"heartbeat_age\":1,\"stall_age\":0}]},"
            "\"durability\":{\"present\":true,\"state\":\"durable\","
            "\"heals\":1,\"failstops\":0}}\n");
}

TEST(IntrospectGolden, HealthzDegradedDurabilityCarriesLastFailure) {
  const obs::PipelineProbe p;
  obs::DurabilityProbe d;
  d.present = true;
  d.state = "degraded";
  d.last_failure = "fsync on 'wal': EIO";
  const std::string body = obs::render_healthz(p, d);
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"last_failure\":\"fsync on 'wal': EIO\""),
            std::string::npos)
      << body;
}

TEST(IntrospectGolden, StatusFullSnapshot) {
  obs::PipelineProbe p;
  p.threaded = true;
  p.anchored = true;
  p.epoch_start = 30.5;
  p.last_time = 29.25;
  p.cells_issued = 4;
  p.cells_merged = 3;
  p.merge_lag = 1;
  p.skipped_empty_epochs = 2;
  p.submitted = 100;
  p.pending = 3;
  p.buffered = 2;
  obs::ShardProbe s;
  s.index = 0;
  s.health = obs::ShardHealth::kSlow;
  s.stall_age = 7;
  s.events_pushed = 50;
  s.events_processed = 48;
  s.inbox = {2, 10, 1, 4096};
  s.outbox = {0, 3, 0, 4096};
  s.quarantine_size = 5;
  s.skipped_cells = 1;
  p.shards = {s};
  obs::DurabilityProbe d;
  d.present = true;
  d.state = "durable";
  d.acknowledged = 100;
  d.durable_acknowledged = 100;
  d.last_checkpoint = 40;
  d.records_since_checkpoint = 60;
  d.wal_records = 100;
  d.active_segment_records = 60;
  d.wal_segments = 2;
  EXPECT_EQ(
      obs::render_status(p, d),
      "{\"epoch\":{\"anchored\":true,\"epoch_start\":30.5,"
      "\"last_time\":29.25,\"cells_issued\":4,\"cells_merged\":3,"
      "\"merge_lag\":1,\"skipped_empty_epochs\":2},"
      "\"ingest\":{\"submitted\":100,\"pending\":3,\"buffered\":2},"
      "\"shards\":[{\"shard\":0,\"state\":\"slow\",\"events_pushed\":50,"
      "\"events_processed\":48,\"inbox\":{\"depth\":2,\"high_water\":10,"
      "\"stalls\":1,\"capacity\":4096},\"outbox\":{\"depth\":0,"
      "\"high_water\":3,\"stalls\":0,\"capacity\":4096},\"quarantine\":5,"
      "\"skipped_cells\":1}],\"durability\":{\"present\":true,"
      "\"state\":\"durable\",\"heals\":0,\"failstops\":0,"
      "\"acknowledged\":100,\"durable_acknowledged\":100,"
      "\"backlog_records\":0,\"last_checkpoint\":40,"
      "\"records_since_checkpoint\":60,\"wal_records\":100,"
      "\"wal_segments\":2,\"active_segment_records\":60}}\n");
}

TEST(IntrospectGolden, ShardHealthNamesAreStable) {
  EXPECT_STREQ(obs::to_string(obs::ShardHealth::kOk), "ok");
  EXPECT_STREQ(obs::to_string(obs::ShardHealth::kSlow), "slow");
  EXPECT_STREQ(obs::to_string(obs::ShardHealth::kStalled), "stalled");
  EXPECT_STREQ(obs::to_string(obs::ShardHealth::kPoisoned), "poisoned");
}

// ----------------------------------------- Prometheus exposition format

TEST(PrometheusExposition, LabeledSeriesShareOneFamilyHeader) {
  obs::MetricsRegistry m;
  m.counter("trustrate_shard_routed_total{shard=\"0\"}", "Routed per shard")
      .add(3);
  m.counter("trustrate_shard_routed_total{shard=\"1\"}", "Routed per shard")
      .add(4);
  m.gauge("trustrate_deprecated_metric_names", "Deprecated series").set(6.0);
  EXPECT_EQ(m.prometheus(),
            "# HELP trustrate_deprecated_metric_names Deprecated series\n"
            "# TYPE trustrate_deprecated_metric_names gauge\n"
            "trustrate_deprecated_metric_names 6\n"
            "# HELP trustrate_shard_routed_total Routed per shard\n"
            "# TYPE trustrate_shard_routed_total counter\n"
            "trustrate_shard_routed_total{shard=\"0\"} 3\n"
            "trustrate_shard_routed_total{shard=\"1\"} 4\n");
}

TEST(PrometheusExposition, HistogramSnapshotGolden) {
  // Exposition-format contract: cumulative le buckets, an explicit +Inf
  // bucket, _sum, and _count EQUAL to the +Inf bucket.
  obs::MetricsRegistry m;
  obs::Histogram& h = m.histogram("demo_seconds", {0.5, 2.0}, "Demo latency");
  h.observe(0.25);
  h.observe(1.0);
  h.observe(5.0);
  EXPECT_EQ(m.prometheus(),
            "# HELP demo_seconds Demo latency\n"
            "# TYPE demo_seconds histogram\n"
            "demo_seconds_bucket{le=\"0.5\"} 1\n"
            "demo_seconds_bucket{le=\"2\"} 2\n"
            "demo_seconds_bucket{le=\"+Inf\"} 3\n"
            "demo_seconds_sum 6.25\n"
            "demo_seconds_count 3\n");
}

TEST(MetricNaming, DeprecatedFlatShardNamesMirrorLabeledSeries) {
  // The flat trustrate_shard<K>_* names predate Prometheus label
  // conventions; they stay for one release, bit-identical to the labeled
  // series, with a gauge counting the deprecated surface.
  obs::MetricsRegistry metrics;
  obs::Observability o;
  o.metrics = &metrics;
  ShardOptions options = threaded_options(2);
  options.threaded = false;
  ShardedRatingSystem system(pipeline_config(), options, 30.0, 2, {});
  system.set_observability(o);
  for (const Rating& r : wide_stream(160)) system.submit(r);
  system.flush();

  for (const char* stem : {"routed", "cells", "skipped_cells"}) {
    for (int k = 0; k < 2; ++k) {
      const std::string flat = "trustrate_shard" + std::to_string(k) + "_" +
                               stem + "_total";
      const std::string labeled = std::string("trustrate_shard_") + stem +
                                  "_total{shard=\"" + std::to_string(k) +
                                  "\"}";
      EXPECT_EQ(metrics.counter(flat).value(),
                metrics.counter(labeled).value())
          << flat;
    }
  }
  EXPECT_GT(metrics.counter("trustrate_shard_routed_total{shard=\"0\"}")
                .value(),
            0u);
  EXPECT_EQ(metrics.gauge("trustrate_deprecated_metric_names").value(), 6.0);

  const std::string text = metrics.prometheus();
  EXPECT_NE(text.find("DEPRECATED flat name"), std::string::npos);
  // One family header for the labeled series, however many shards.
  std::size_t headers = 0;
  for (std::size_t at = 0;
       (at = text.find("# TYPE trustrate_shard_routed_total counter", at)) !=
       std::string::npos;
       ++at) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u) << text;
}

// ------------------------------------------------------- causal tracing

TEST(CausalTrace, JsonlEmitsCausalOnlyWhenSet) {
  obs::TraceSpan span;
  span.name = "ingest.classify";
  span.start_ns = 1;
  span.duration_ns = 2;
  span.id = 7;
  span.causal = 42;
  span.detail = "verdict=accepted";
  EXPECT_EQ(obs::to_jsonl(span),
            "{\"span\":\"ingest.classify\",\"start_ns\":1,\"duration_ns\":2,"
            "\"id\":7,\"causal\":42,\"detail\":\"verdict=accepted\"}");
  span.causal = 0;
  EXPECT_EQ(obs::to_jsonl(span),
            "{\"span\":\"ingest.classify\",\"start_ns\":1,\"duration_ns\":2,"
            "\"id\":7,\"detail\":\"verdict=accepted\"}");
}

/// Parses "causal=[lo,hi]" from a span detail; returns {0,0} when absent.
std::pair<std::uint64_t, std::uint64_t> causal_range(
    const std::string& detail) {
  const auto at = detail.find("causal=[");
  if (at == std::string::npos) return {0, 0};
  unsigned long long lo = 0;
  unsigned long long hi = 0;
  if (std::sscanf(detail.c_str() + at, "causal=[%llu,%llu]", &lo, &hi) != 2) {
    return {0, 0};
  }
  return {static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)};
}

TEST(CausalTrace, IngestToMergeChainIsReconstructible) {
  // The causal ID is the 1-based global submission ordinal, threaded from
  // ingest classification through the shard ring to the merge. From the
  // span stream alone we must be able to reconstruct which submissions
  // each merged cell covered.
  const RatingSeries stream = wide_stream();
  obs::RingBufferTraceSink trace(1 << 16);
  obs::Observability o;
  o.trace = &trace;
  ShardedRatingSystem system(pipeline_config(), threaded_options(3), 30.0, 2,
                             {});
  system.set_observability(o);
  for (const Rating& r : stream) system.submit(r);
  system.flush();

  std::uint64_t classify_spans = 0;
  std::uint64_t last_classify = 0;
  std::map<std::uint64_t, std::uint64_t> analyze_hi_by_epoch;
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> merges;
  for (const obs::TraceSpan& span : trace.snapshot()) {
    if (span.name == "ingest.classify") {
      ++classify_spans;
      EXPECT_GT(span.causal, last_classify)
          << "submission ordinals must be strictly increasing";
      last_classify = span.causal;
      EXPECT_NE(span.detail.find("verdict="), std::string::npos);
    } else if (span.name.find(".analyze") != std::string::npos &&
               span.causal != 0) {
      const auto [lo, hi] = causal_range(span.detail);
      ASSERT_NE(lo, 0u) << span.detail;
      EXPECT_LE(lo, hi);
      EXPECT_EQ(hi, span.causal);
      EXPECT_LE(hi, stream.size());
      std::uint64_t& epoch_hi = analyze_hi_by_epoch[span.epoch];
      if (hi > epoch_hi) epoch_hi = hi;
    } else if (span.name == "merge.cell" && span.causal != 0) {
      const auto [lo, hi] = causal_range(span.detail);
      ASSERT_NE(lo, 0u) << span.detail;
      EXPECT_LE(lo, hi);
      EXPECT_EQ(hi, span.causal);
      merges[span.epoch] = {lo, hi};
    }
  }
  EXPECT_EQ(classify_spans, stream.size());
  EXPECT_EQ(last_classify, stream.size());
  ASSERT_FALSE(merges.empty());
  // Each merge's causal hi is exactly the newest submission any of its
  // shard slices analyzed, and cells cover disjoint, increasing ranges.
  std::uint64_t prev_hi = 0;
  for (const auto& [epoch, range] : merges) {
    const auto analyzed = analyze_hi_by_epoch.find(epoch);
    ASSERT_NE(analyzed, analyze_hi_by_epoch.end()) << "epoch " << epoch;
    EXPECT_EQ(range.second, analyzed->second) << "epoch " << epoch;
    EXPECT_GT(range.first, prev_hi) << "epoch " << epoch;
    prev_hi = range.second;
  }
}

// -------------------------------------------------- SPSC ring telemetry

TEST(SpscTelemetry, HighWaterAndProducerStalls) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.high_water(), 0u);
  EXPECT_EQ(q.producer_stalls(), 0u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.high_water(), 4u);
  EXPECT_EQ(q.producer_stalls(), 0u);
  EXPECT_FALSE(q.try_push(9));  // full: counted as a producer stall
  EXPECT_FALSE(q.try_push(9));
  EXPECT_EQ(q.producer_stalls(), 2u);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  ASSERT_TRUE(q.try_push(9));
  EXPECT_EQ(q.high_water(), 4u);  // high-water is monotone
  int batch[2] = {1, 2};
  EXPECT_EQ(q.try_push_n(batch, 2), 0u);  // full again: one more stall
  EXPECT_EQ(q.producer_stalls(), 3u);
}

// ------------------------------------------------------ the HTTP server

TEST(HttpServer, StartStopRestartOnEphemeralPort) {
  ExpositionServer server;
  server.handle("/ping", [] {
    obs::HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_TRUE(server.running());
  const std::uint16_t first_port = server.port();
  ASSERT_NE(first_port, 0);
  std::string response = http_get(first_port, "/ping");
  EXPECT_EQ(status_of(response), 200);
  EXPECT_EQ(body_of(response), "pong\n");
  server.stop();
  EXPECT_FALSE(server.running());

  // Restart binds a fresh listener (possibly a different ephemeral port).
  ASSERT_TRUE(server.start()) << server.error();
  response = http_get(server.port(), "/ping");
  EXPECT_EQ(status_of(response), 200);
  EXPECT_EQ(body_of(response), "pong\n");
  EXPECT_GE(server.requests_served(), 2u);
  server.stop();
}

TEST(HttpServer, MalformedRequestsAreBoundedAndAnswered) {
  ExpositionServer server;
  server.handle("/ok", [] { return obs::HttpResponse{200, "text/plain", "y"}; });
  ASSERT_TRUE(server.start()) << server.error();
  const std::uint16_t port = server.port();

  EXPECT_EQ(status_of(http_get(port, "/nope")), 404);
  EXPECT_EQ(status_of(http_raw(port, "POST /ok HTTP/1.1\r\nHost: x\r\n\r\n")),
            405);
  EXPECT_NE(http_raw(port, "POST /ok HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("Allow: GET"),
            std::string::npos);
  EXPECT_EQ(status_of(http_raw(port, "not an http request\r\n\r\n")), 400);
  EXPECT_EQ(status_of(http_raw(port, "GET relative-path HTTP/1.1\r\n\r\n")),
            400);
  // Oversized request head: answered 400 (or dropped), never a hang.
  const std::string huge = "GET /ok HTTP/1.1\r\nX-Filler: " +
                           std::string(64 * 1024, 'a') + "\r\n\r\n";
  const std::string response = http_raw(port, huge);
  if (!response.empty()) {
    EXPECT_EQ(status_of(response), 400);
  }
  // The server survives all of the above.
  EXPECT_EQ(status_of(http_get(port, "/ok")), 200);
  server.stop();
}

TEST(HttpServer, ThrowingHandlerYields500) {
  ExpositionServer server;
  server.handle("/boom", []() -> obs::HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.start()) << server.error();
  const std::string response = http_get(server.port(), "/boom");
  EXPECT_EQ(status_of(response), 500);
  EXPECT_NE(body_of(response).find("handler exploded"), std::string::npos);
  server.stop();
}

TEST(HttpServer, QueryStringsAreStrippedFromThePath) {
  ExpositionServer server;
  server.handle("/metrics", [] { return obs::HttpResponse{200, "t", "m"}; });
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_EQ(status_of(http_get(server.port(), "/metrics?name=x")), 200);
  server.stop();
}

// ----------------------------------------- endpoints over a live system

TEST(Introspection, EndpointsServeALivePipeline) {
  obs::MetricsRegistry metrics;
  obs::Observability o;
  o.metrics = &metrics;
  ShardedRatingSystem system(pipeline_config(), threaded_options(3), 30.0, 2,
                             {});
  system.set_observability(o);
  for (const Rating& r : wide_stream()) system.submit(r);
  system.flush();

  ExpositionServer server;
  bind_introspection(server, &metrics, [&system] { return system.probe(); });
  ASSERT_TRUE(server.start()) << server.error();

  const std::string metrics_response = http_get(server.port(), "/metrics");
  EXPECT_EQ(status_of(metrics_response), 200);
  EXPECT_NE(metrics_response.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(body_of(metrics_response)
                .find("trustrate_ingest_submitted_total"),
            std::string::npos);
  EXPECT_NE(body_of(metrics_response)
                .find("trustrate_shard_routed_total{shard=\"0\"}"),
            std::string::npos);

  const std::string healthz = body_of(http_get(server.port(), "/healthz"));
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"mode\":\"threaded\""), std::string::npos);

  const std::string status = body_of(http_get(server.port(), "/status"));
  EXPECT_NE(status.find("\"submitted\":320"), std::string::npos) << status;
  EXPECT_NE(status.find("\"high_water\""), std::string::npos);
  EXPECT_NE(status.find("\"cells_merged\""), std::string::npos);
  server.stop();
}

// --------------------------- scrape-while-ingesting (the TSan target)

TEST(IntrospectionHammer, ConcurrentScrapesWhileIngesting) {
  obs::MetricsRegistry metrics;
  obs::Observability o;
  o.metrics = &metrics;
  ShardedRatingSystem system(pipeline_config(), threaded_options(3), 30.0, 2,
                             {});
  system.set_observability(o);

  ExpositionServer server;
  bind_introspection(server, &metrics, [&system] { return system.probe(); });
  ASSERT_TRUE(server.start()) << server.error();
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok_responses{0};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 3; ++i) {
    scrapers.emplace_back([&stop, &ok_responses, port] {
      const char* paths[] = {"/metrics", "/healthz", "/status"};
      std::size_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (status_of(http_get(port, paths[n++ % 3])) == 200) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const RatingSeries stream = wide_stream(960);
  for (const Rating& r : stream) system.submit(r);
  system.flush();
  stop.store(true);
  for (std::thread& t : scrapers) t.join();
  server.stop();

  EXPECT_GT(ok_responses.load(), 0u);
  EXPECT_EQ(system.ingest_stats().submitted, stream.size());
  const obs::PipelineProbe probe = system.probe();
  EXPECT_FALSE(probe.failed);
  EXPECT_EQ(probe.cells_issued, probe.cells_merged);
}

// ------------------------------- the server-on-vs-off digest oracle

std::string digest_with_optional_server(bool with_server) {
  ShardedRatingSystem system(pipeline_config(), threaded_options(3), 30.0, 2,
                             {});
  obs::MetricsRegistry metrics;
  std::unique_ptr<ExpositionServer> server;
  std::atomic<bool> stop{false};
  std::thread scraper;
  if (with_server) {
    obs::Observability o;
    o.metrics = &metrics;
    system.set_observability(o);
    server = std::make_unique<ExpositionServer>();
    bind_introspection(*server, &metrics,
                       [&system] { return system.probe(); });
    EXPECT_TRUE(server->start()) << server->error();
    const std::uint16_t port = server->port();
    scraper = std::thread([&stop, port] {
      const char* paths[] = {"/metrics", "/healthz", "/status"};
      std::size_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        http_get(port, paths[n++ % 3]);
      }
    });
  }
  for (const Rating& r : wide_stream()) system.submit(r);
  system.flush();
  if (with_server) {
    stop.store(true);
    scraper.join();
    server->stop();
  }
  return state_digest(system);
}

TEST(IntrospectionOracle, DigestsBitwiseIdenticalWithServerScraping) {
  // The acceptance criterion: scraping /metrics, /healthz and /status
  // concurrently with a threaded sharded run changes NOTHING about the
  // trust state — the serialized checkpoints are bitwise equal.
  const std::string without = digest_with_optional_server(false);
  const std::string with = digest_with_optional_server(true);
  ASSERT_FALSE(without.empty());
  EXPECT_EQ(without, with) << "introspection perturbed the pipeline";
}

// ------------------------------------------- durable-layer record ages

TEST(DurabilityIntrospection, ProbeTracksClockFreeRecordAges) {
  const fs::path dir = test_dir("durable-probe");
  DurableStream durable(dir, pipeline_config(), 30.0, 2, {}, {});
  obs::DurabilityProbe p = durable.probe();
  EXPECT_TRUE(p.present);
  EXPECT_EQ(p.state, "durable");
  EXPECT_EQ(p.acknowledged, 0u);
  EXPECT_EQ(p.wal_records, 0u);
  // The writer creates the segment file on first append, so a fresh
  // stream has no segment on disk yet.
  EXPECT_EQ(p.wal_segments, 0u);

  for (int i = 0; i < 10; ++i) {
    durable.submit({0.1 * (i + 1), 0.5, static_cast<RaterId>(1 + i % 5), 1,
                    RatingLabel::kHonest});
  }
  p = durable.probe();
  EXPECT_EQ(p.acknowledged, 10u);
  EXPECT_EQ(p.durable_acknowledged, 10u);
  EXPECT_EQ(p.wal_records, 10u);
  EXPECT_EQ(p.last_checkpoint, 0u);
  EXPECT_EQ(p.records_since_checkpoint, 10u);  // checkpoint age in records
  EXPECT_EQ(p.active_segment_records, 10u);    // segment age in records
  EXPECT_EQ(p.backlog_records, 0u);

  durable.checkpoint();
  p = durable.probe();
  EXPECT_EQ(p.last_checkpoint, 10u);
  EXPECT_EQ(p.records_since_checkpoint, 0u);
  EXPECT_EQ(p.wal_segments, 1u);  // checkpoint re-scans the directory

  durable.submit({2.0, 0.5, 2, 1, RatingLabel::kHonest});
  p = durable.probe();
  EXPECT_EQ(p.records_since_checkpoint, 1u);
  EXPECT_EQ(p.heals, 0u);
  fs::remove_all(dir);
}

TEST(DurabilityIntrospection, ShardedProbeSumsAcrossShardLogs) {
  const fs::path dir = test_dir("sharded-probe");
  ShardedDurableOptions options;
  options.fsync = core::durable::FsyncPolicy::kNone;
  ShardedDurableStream durable(dir, pipeline_config(), threaded_options(3),
                               30.0, 2, {}, options);
  const RatingSeries stream = wide_stream(96);
  for (const Rating& r : stream) durable.submit(r);
  obs::DurabilityProbe p = durable.probe();
  EXPECT_TRUE(p.present);
  EXPECT_EQ(p.state, "durable");
  EXPECT_EQ(p.acknowledged, stream.size());
  EXPECT_EQ(p.wal_records, stream.size());  // summed across the shard logs
  EXPECT_EQ(p.records_since_checkpoint, stream.size());
  durable.checkpoint();
  p = durable.probe();
  EXPECT_EQ(p.last_checkpoint, stream.size());
  EXPECT_EQ(p.records_since_checkpoint, 0u);
  EXPECT_EQ(p.wal_segments, 3u);  // one active segment per shard
  fs::remove_all(dir);
}

// ----------------------------------------------- the acceptance path

TEST(IntrospectionAcceptance, PoisonedShardVisibleOnHealthzThenHealsToOk) {
  const RatingSeries stream = wide_stream();
  const fs::path dir = test_dir("acceptance");
  ThreadFaultPlan plan;
  plan.shard = 0;
  plan.at_ordinal = 3;
  plan.kind = ThreadFaultKind::kThrow;
  ThreadFaultInjector injector(plan);
  ShardOptions shard_options = threaded_options(2);
  shard_options.event_hook = injector.hook();
  ShardedDurableOptions options;
  options.fsync = core::durable::FsyncPolicy::kNone;
  options.heal_attempts = 0;  // surface the failure so we can scrape it
  ShardedDurableStream durable(dir, pipeline_config(), shard_options, 30.0, 2,
                               {}, options);
  ExpositionServer server;
  bind_introspection(
      server, nullptr, [&durable] { return durable.system().probe(); },
      [&durable] { return durable.probe(); });
  ASSERT_TRUE(server.start()) << server.error();
  const std::uint16_t port = server.port();

  bool failed = false;
  try {
    for (const Rating& r : stream) durable.submit(r);
    durable.flush();
  } catch (const ShardFailure& failure) {
    failed = true;
    EXPECT_EQ(failure.kind(), ShardFailureKind::kPoisoned);
  }
  ASSERT_TRUE(failed) << "the injected fault never fired";

  // Before the heal: /healthz names the poisoned shard and the fail-stop.
  std::string body = body_of(http_get(port, "/healthz"));
  EXPECT_NE(body.find("\"status\":\"failed\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"state\":\"poisoned\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"failure_kind\":\"poisoned\""), std::string::npos);
  EXPECT_NE(body.find("\"failstops\":1"), std::string::npos) << body;

  // Heal, resume from the exactly-once cursor, finish the stream.
  ASSERT_TRUE(durable.try_heal());
  for (std::size_t i = static_cast<std::size_t>(durable.acknowledged());
       i < stream.size(); ++i) {
    durable.submit(stream[i]);
  }
  durable.flush();

  // After the heal: every shard reports ok and the heal is counted. (The
  // durability block's last_failure keeps the contained failure's text —
  // that is the record of what was healed, not a live verdict.)
  body = body_of(http_get(port, "/healthz"));
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_EQ(body.find("\"state\":\"poisoned\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"heals\":1"), std::string::npos) << body;
  server.stop();

  // And the healed state matches a fault-free reference run, bitwise.
  ShardedRatingSystem reference(pipeline_config(), threaded_options(2), 30.0,
                                2, {});
  for (const Rating& r : stream) reference.submit(r);
  reference.flush();
  EXPECT_EQ(state_digest(durable.system()), state_digest(reference));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace trustrate
