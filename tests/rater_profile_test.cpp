// Unit tests for rater behavioral profiles and dispositional debiasing.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "trust/rater_profile.hpp"

namespace trustrate::trust {
namespace {

// One product rated by the standard cast: rater 1 inflates by +0.15,
// rater 2 deflates by -0.15, rater 3 is noisy, raters 4+ are normal.
RatingSeries cast_product(Rng& rng, ProductId product, double quality) {
  RatingSeries s;
  double t = product * 10.0;
  auto add = [&](RaterId id, double value) {
    s.push_back({t += 0.1, clamp_unit(value), id, product, RatingLabel::kHonest});
  };
  add(1, quality + 0.15 + rng.gaussian(0.0, 0.03));
  add(2, quality - 0.15 + rng.gaussian(0.0, 0.03));
  add(3, quality + rng.gaussian(0.0, 0.35));
  for (RaterId id = 4; id < 24; ++id) {
    add(id, quality + rng.gaussian(0.0, 0.05));
  }
  return s;
}

RaterProfileStore trained_store(std::uint64_t seed = 11, int products = 30) {
  RaterProfileStore store{ProfileClassifierConfig{}};
  Rng rng(seed);
  for (int p = 0; p < products; ++p) {
    store.observe_product(cast_product(rng, static_cast<ProductId>(p),
                                       rng.uniform(0.35, 0.65)));
  }
  return store;
}

TEST(RaterProfile, BiasAndSpreadFromDeviations) {
  RaterProfile p;
  p.add(0.1);
  p.add(0.3);
  EXPECT_DOUBLE_EQ(p.bias(), 0.2);
  EXPECT_NEAR(p.spread(), 0.1, 1e-12);
}

TEST(RaterProfile, EmptyProfileIsNeutral) {
  RaterProfile p;
  EXPECT_DOUBLE_EQ(p.bias(), 0.0);
  EXPECT_DOUBLE_EQ(p.spread(), 0.0);
}

TEST(ProfileStore, ClassifiesTheCast) {
  const RaterProfileStore store = trained_store();
  EXPECT_EQ(store.classify(1), RaterBehavior::kBiasedHigh);
  EXPECT_EQ(store.classify(2), RaterBehavior::kBiasedLow);
  EXPECT_EQ(store.classify(3), RaterBehavior::kCareless);
  EXPECT_EQ(store.classify(10), RaterBehavior::kNormal);
  EXPECT_EQ(store.classify(999), RaterBehavior::kUnclassified);
}

TEST(ProfileStore, BiasEstimateNearTruth) {
  const RaterProfileStore store = trained_store();
  EXPECT_NEAR(store.bias_of(1), 0.15, 0.05);
  EXPECT_NEAR(store.bias_of(2), -0.15, 0.05);
  EXPECT_NEAR(store.bias_of(10), 0.0, 0.05);
}

TEST(ProfileStore, FewRatingsStayUnclassified) {
  RaterProfileStore store({.bias_threshold = 0.08, .spread_threshold = 0.22,
                           .min_ratings = 8});
  Rng rng(12);
  store.observe_product(cast_product(rng, 0, 0.5));  // a single product
  EXPECT_EQ(store.classify(1), RaterBehavior::kUnclassified);
  EXPECT_DOUBLE_EQ(store.bias_of(1), 0.0);  // debiasing stays a no-op
}

TEST(ProfileStore, DebiasRecoversConsensusView) {
  const RaterProfileStore store = trained_store();
  // The inflater rates a product 0.75; debiased it should read ~0.60.
  EXPECT_NEAR(store.debias(1, 0.75), 0.60, 0.05);
  // Unknown raters pass through unchanged.
  EXPECT_DOUBLE_EQ(store.debias(999, 0.75), 0.75);
}

TEST(ProfileStore, DebiasClampsToUnitInterval) {
  const RaterProfileStore store = trained_store();
  EXPECT_GE(store.debias(2, 0.02), 0.0);  // deflater near the bottom
  EXPECT_LE(store.debias(1, 0.99), 1.0);
}

TEST(ProfileStore, TinyProductsIgnored) {
  RaterProfileStore store{ProfileClassifierConfig{}};
  RatingSeries one{{1.0, 0.9, 7, 0, RatingLabel::kHonest}};
  store.observe_product(one);
  EXPECT_EQ(store.size(), 0u);
}

TEST(ProfileStore, LeaveOneOutConsensusExcludesSelf) {
  // Two raters: 0.2 and 0.8. Each one's consensus is the *other* rating,
  // so the deviations are symmetric and full-sized (not halved).
  RaterProfileStore store{ProfileClassifierConfig{}};
  RatingSeries s{{1.0, 0.2, 1, 0, RatingLabel::kHonest},
                 {2.0, 0.8, 2, 0, RatingLabel::kHonest}};
  store.observe_product(s);
  EXPECT_DOUBLE_EQ(store.find(1)->deviation_sum, -0.6);
  EXPECT_DOUBLE_EQ(store.find(2)->deviation_sum, 0.6);
}

TEST(ProfileStore, ConfigValidation) {
  ProfileClassifierConfig bad;
  bad.min_ratings = 1;
  EXPECT_THROW(RaterProfileStore{bad}, PreconditionError);
  bad = {};
  bad.bias_threshold = 0.0;
  EXPECT_THROW(RaterProfileStore{bad}, PreconditionError);
}

// The headline property: debiasing improves aggregation accuracy on a
// population with dispositional raters.
TEST(ProfileStore, DebiasingImprovesAggregateAccuracy) {
  Rng rng(13);
  RaterProfileStore store{ProfileClassifierConfig{}};
  // Train on 40 products.
  std::vector<double> qualities;
  for (int p = 0; p < 40; ++p) {
    const double q = rng.uniform(0.35, 0.65);
    qualities.push_back(q);
    store.observe_product(cast_product(rng, static_cast<ProductId>(p), q));
  }
  // Evaluate on 20 fresh products: mean absolute aggregation error with
  // and without debiasing.
  double err_raw = 0.0;
  double err_debiased = 0.0;
  const int kEval = 20;
  for (int p = 0; p < kEval; ++p) {
    const double q = rng.uniform(0.35, 0.65);
    const RatingSeries s = cast_product(rng, static_cast<ProductId>(100 + p), q);
    double raw = 0.0;
    double debiased = 0.0;
    for (const Rating& r : s) {
      raw += r.value;
      debiased += store.debias(r.rater, r.value);
    }
    raw /= static_cast<double>(s.size());
    debiased /= static_cast<double>(s.size());
    err_raw += std::abs(raw - q);
    err_debiased += std::abs(debiased - q);
  }
  EXPECT_LT(err_debiased, err_raw);
}

}  // namespace
}  // namespace trustrate::trust
