// Tests for the extension modules: AR spectrum estimation, the arrival-
// rate anomaly detector, and the streaming system facade.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/streaming.hpp"
#include "detect/rate_detector.hpp"
#include "signal/spectrum.hpp"

namespace trustrate {
namespace {

// --------------------------------------------------------------- spectrum

TEST(Spectrum, WhiteNoiseIsFlat) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.gaussian(0.0, 1.0));
  const double flatness =
      signal::window_spectral_flatness(xs, 4, {.demean = true});
  EXPECT_GT(flatness, 0.9);
}

TEST(Spectrum, Ar1HasLowFrequencyPeak) {
  // x(n) = 0.9 x(n-1) + w: power concentrates at f = 0.
  Rng rng(2);
  std::vector<double> noise;
  for (int i = 0; i < 2000; ++i) noise.push_back(rng.gaussian(0.0, 1.0));
  const std::vector<double> coeffs{-0.9};
  const auto x = signal::synthesize_ar(coeffs, noise);
  const auto model = signal::fit_ar_covariance(x, 1, {.demean = true});
  EXPECT_GT(signal::ar_psd(model, 0.0), 10.0 * signal::ar_psd(model, 0.5));
  EXPECT_LT(signal::spectral_flatness(model), 0.5);
}

TEST(Spectrum, NegativeAr1PeaksAtNyquist) {
  // x(n) = -0.9 x(n-1) + w alternates: power at f = 0.5.
  Rng rng(3);
  std::vector<double> noise;
  for (int i = 0; i < 2000; ++i) noise.push_back(rng.gaussian(0.0, 1.0));
  const std::vector<double> coeffs{0.9};
  const auto x = signal::synthesize_ar(coeffs, noise);
  const auto model = signal::fit_ar_covariance(x, 1, {.demean = true});
  EXPECT_GT(signal::ar_psd(model, 0.5), 10.0 * signal::ar_psd(model, 0.0));
}

TEST(Spectrum, GridMatchesPointEvaluation) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform());
  const auto model = signal::fit_ar_covariance(xs, 3);
  const auto grid = signal::ar_psd_grid(model, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], signal::ar_psd(model, 0.0));
  EXPECT_DOUBLE_EQ(grid[4], signal::ar_psd(model, 0.5));
}

TEST(Spectrum, FlatnessBounded) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform());
    const double f = signal::window_spectral_flatness(xs, 4);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Spectrum, CollaborativeWindowLessFlatThanHonest) {
  // The detector's premise, in the spectral domain: a rating window with a
  // collaborative block has a less-flat AR spectrum (structure) than an
  // honest window.
  Rng rng(6);
  std::vector<double> honest;
  for (int i = 0; i < 100; ++i) {
    honest.push_back(quantize_unit(clamp_unit(rng.gaussian(0.5, 0.25)), 10, false));
  }
  std::vector<double> attacked;
  for (int i = 0; i < 100; ++i) {
    const bool attack_phase = i >= 30 && i < 70;
    const double v = attack_phase && rng.bernoulli(0.6)
                         ? rng.gaussian(0.65, 0.02)
                         : rng.gaussian(0.5, 0.25);
    attacked.push_back(quantize_unit(clamp_unit(v), 10, false));
  }
  EXPECT_LT(signal::window_spectral_flatness(attacked, 4),
            signal::window_spectral_flatness(honest, 4));
}

TEST(Spectrum, PreconditionChecks) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.uniform());
  const auto model = signal::fit_ar_covariance(xs, 2);
  EXPECT_THROW(signal::ar_psd(model, 0.6), PreconditionError);
  EXPECT_THROW(signal::ar_psd_grid(model, 1), PreconditionError);
}

// ---------------------------------------------------------- rate detector

TEST(PoissonTail, MatchesExactSmallCases) {
  // P(X >= 1) = 1 - e^-m.
  EXPECT_NEAR(detect::poisson_upper_tail(2.0, 1), 1.0 - std::exp(-2.0), 1e-12);
  // P(X >= 0) = 1.
  EXPECT_DOUBLE_EQ(detect::poisson_upper_tail(2.0, 0), 1.0);
  // Far tail is tiny.
  EXPECT_LT(detect::poisson_upper_tail(2.0, 20), 1e-10);
}

TEST(PoissonTail, NormalApproxContinuousWithExact) {
  // At the exact/approx boundary (mean 50) the two should roughly agree.
  const double exact_side = detect::poisson_upper_tail(49.9, 70);
  const double approx_side = detect::poisson_upper_tail(50.1, 70);
  EXPECT_NEAR(std::log10(exact_side), std::log10(approx_side), 0.5);
}

RatingSeries poisson_stream(Rng& rng, double rate, double t0, double t1,
                            RatingSeries base = {}) {
  for (double t = t0 + rng.exponential(rate); t < t1;
       t += rng.exponential(rate)) {
    base.push_back({t, 0.5, 0, 0, RatingLabel::kHonest});
  }
  sort_by_time(base);
  return base;
}

TEST(RateDetector, SteadyStreamNotAnomalous) {
  Rng rng(10);
  const auto s = poisson_stream(rng, 10.0, 0.0, 30.0);
  const detect::RateAnomalyDetector det{detect::RateDetectorConfig{}};
  const auto res = det.analyze(s, 0.0, 30.0);
  EXPECT_EQ(res.anomalous_count(), 0u);
  EXPECT_NEAR(res.baseline_rate, 10.0, 3.0);
}

TEST(RateDetector, BurstFlagged) {
  Rng rng(11);
  auto s = poisson_stream(rng, 10.0, 0.0, 30.0);
  // A 2-day burst at 8x the base rate.
  s = poisson_stream(rng, 80.0, 12.0, 14.0, std::move(s));
  const detect::RateAnomalyDetector det{detect::RateDetectorConfig{}};
  const auto res = det.analyze(s, 0.0, 30.0);
  ASSERT_GT(res.anomalous_count(), 0u);
  for (const auto& w : res.windows) {
    if (!w.anomalous) continue;
    EXPECT_GT(w.window.end, 12.0);
    EXPECT_LT(w.window.start, 14.0);
  }
}

TEST(RateDetector, TrimmedBaselineResistsBurstInflation) {
  Rng rng(12);
  auto s = poisson_stream(rng, 10.0, 0.0, 30.0);
  s = poisson_stream(rng, 80.0, 12.0, 14.0, std::move(s));
  const detect::RateAnomalyDetector det{detect::RateDetectorConfig{}};
  const auto res = det.analyze(s, 0.0, 30.0);
  // Baseline estimated from the quiet windows, not dragged up by the burst.
  EXPECT_LT(res.baseline_rate, 20.0);
}

TEST(RateDetector, MaskCoversAnomalousRatings) {
  Rng rng(13);
  auto s = poisson_stream(rng, 10.0, 0.0, 30.0);
  s = poisson_stream(rng, 80.0, 12.0, 14.0, std::move(s));
  const detect::RateAnomalyDetector det{detect::RateDetectorConfig{}};
  const auto res = det.analyze(s, 0.0, 30.0);
  ASSERT_EQ(res.in_anomalous_window.size(), s.size());
  std::size_t flagged = 0;
  for (bool b : res.in_anomalous_window) flagged += b ? 1 : 0;
  EXPECT_GT(flagged, 100u);  // the burst has ~160 ratings
}

TEST(RateDetector, EmptySeriesNoWindowsFlagged) {
  const detect::RateAnomalyDetector det{detect::RateDetectorConfig{}};
  const auto res = det.analyze({}, 0.0, 30.0);
  EXPECT_EQ(res.anomalous_count(), 0u);
}

TEST(RateDetector, ConfigValidation) {
  detect::RateDetectorConfig bad;
  bad.p_value = 0.0;
  EXPECT_THROW(detect::RateAnomalyDetector{bad}, PreconditionError);
  bad = {};
  bad.window_days = 0.0;
  EXPECT_THROW(detect::RateAnomalyDetector{bad}, PreconditionError);
}

// --------------------------------------------------------------- streaming

core::SystemConfig streaming_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

TEST(Streaming, EpochsCloseOnTime) {
  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  EXPECT_EQ(stream.epochs_closed(), 0u);
  stream.submit({0.0, 0.5, 1, 0, RatingLabel::kHonest});
  stream.submit({29.9, 0.5, 2, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 0u);
  EXPECT_EQ(stream.pending_ratings(), 2u);
  stream.submit({30.1, 0.5, 3, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 1u);
  EXPECT_EQ(stream.pending_ratings(), 1u);
}

TEST(Streaming, AnchorsAtFirstRating) {
  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  stream.submit({1000.0, 0.5, 1, 0, RatingLabel::kHonest});
  stream.submit({1029.0, 0.5, 2, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 0u);  // window is [1000, 1030)
  stream.submit({1030.5, 0.5, 3, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 1u);
}

TEST(Streaming, TimeRegressionQuarantinedNotThrown) {
  // Documented submit() contract: with the default lateness bound of 0, a
  // time regression is dropped late and dead-lettered, never processed and
  // never an exception (see core/streaming.hpp and DESIGN.md §6).
  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  stream.submit({10.0, 0.5, 1, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.submit({5.0, 0.5, 2, 0, RatingLabel::kHonest}),
            core::IngestClass::kLate);
  EXPECT_EQ(stream.ingest_stats().dropped_late, 1u);
  EXPECT_EQ(stream.ingest_stats().quarantined, 1u);
  ASSERT_EQ(stream.quarantine().size(), 1u);
  EXPECT_EQ(stream.quarantine().front().rating.rater, 2u);
  EXPECT_EQ(stream.quarantine().front().reason, core::IngestClass::kLate);
  // The regressed rating never reached the pipeline.
  EXPECT_EQ(stream.pending_ratings(), 1u);
}

TEST(Streaming, LongGapSkipsEmptyEpochs) {
  // [0,30) holds a rating and closes; [30,60) and [60,90) are fully empty
  // and are fast-forwarded over in O(1), not closed one by one.
  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  stream.submit({0.0, 0.5, 1, 0, RatingLabel::kHonest});
  stream.submit({100.0, 0.5, 2, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 1u);
  EXPECT_EQ(stream.skipped_empty_epochs(), 2u);
  EXPECT_EQ(stream.epoch_health().size(), 1u);
  // The second rating landed in the live epoch [90, 120).
  EXPECT_EQ(stream.pending_ratings(), 1u);
  stream.submit({120.0, 0.5, 3, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 2u);
  EXPECT_EQ(stream.skipped_empty_epochs(), 2u);
}

TEST(Streaming, YearLongGapFastForwardsInConstantTime) {
  // Regression for the empty-epoch spin: with a small epoch, a year-long
  // timestamp gap used to run thousands of empty close_epoch calls, each
  // appending an EpochHealth entry. Now the empty span is skipped in O(1)
  // and only counted.
  core::StreamingRatingSystem stream(streaming_config(), /*epoch_days=*/0.25);
  stream.submit({0.0, 0.5, 1, 0, RatingLabel::kHonest});
  stream.submit({365.0, 0.5, 2, 0, RatingLabel::kHonest});
  EXPECT_EQ(stream.epochs_closed(), 1u);  // only [0, 0.25) held data
  EXPECT_EQ(stream.epoch_health().size(), 1u);
  EXPECT_EQ(stream.skipped_empty_epochs(), 1459u);  // (365 − 0.25) / 0.25
  // The stream still works after the jump: the late rating is pending in
  // the epoch containing t = 365.
  EXPECT_EQ(stream.pending_ratings(), 1u);
  EXPECT_EQ(stream.flush(), 1u);
  EXPECT_EQ(stream.epochs_closed(), 2u);
}

TEST(Streaming, FlushProcessesPending) {
  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  Rng rng(20);
  for (double t = 0.0; t < 20.0; t += 0.2) {
    stream.submit({t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.25)), 10, false),
                   static_cast<RaterId>(rng.uniform_int(0, 50)), 7,
                   RatingLabel::kHonest});
  }
  EXPECT_EQ(stream.epochs_closed(), 0u);
  EXPECT_EQ(stream.flush(), 1u);
  EXPECT_EQ(stream.epochs_closed(), 1u);
  EXPECT_EQ(stream.pending_ratings(), 0u);
}

TEST(Streaming, MatchesBatchSystemOnSameData) {
  // Streaming the marketplace's first month product-by-product must yield
  // the same trust values as the batch API.
  Rng rng(21);
  RatingSeries all;
  for (ProductId p = 0; p < 3; ++p) {
    for (double t = rng.exponential(6.0); t < 30.0; t += rng.exponential(6.0)) {
      all.push_back({t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.25)), 10, false),
                     static_cast<RaterId>(rng.uniform_int(0, 100)), p,
                     RatingLabel::kHonest});
    }
  }
  sort_by_time(all);

  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  for (const Rating& r : all) stream.submit(r);
  stream.flush();

  core::TrustEnhancedRatingSystem batch(streaming_config());
  std::vector<core::ProductObservation> observations(3);
  for (ProductId p = 0; p < 3; ++p) {
    observations[p].product = p;
    observations[p].t_start = all.front().time;
    observations[p].t_end = 30.0;
  }
  for (const Rating& r : all) observations[r.product].ratings.push_back(r);
  // Match the streaming epoch window [first_rating, first_rating + 30).
  const double anchor = all.front().time;
  for (auto& obs : observations) {
    obs.t_start = anchor;
    obs.t_end = std::max(all.back().time + 1e-9, anchor + 30.0);
  }
  batch.process_epoch(observations);

  for (RaterId id = 0; id <= 100; ++id) {
    EXPECT_NEAR(stream.trust(id), batch.trust(id), 1e-12) << "rater " << id;
  }
}

TEST(Streaming, AggregateAvailableForRetainedProducts) {
  core::StreamingRatingSystem stream(streaming_config(), 30.0, 2);
  Rng rng(22);
  for (double t = 0.0; t < 95.0; t += 0.4) {
    stream.submit({t, quantize_unit(clamp_unit(rng.gaussian(0.6, 0.25)), 10, false),
                   static_cast<RaterId>(rng.uniform_int(0, 80)), 5,
                   RatingLabel::kHonest});
  }
  const auto agg = stream.aggregate(5);
  ASSERT_TRUE(agg.has_value());
  EXPECT_NEAR(*agg, 0.6, 0.1);
  EXPECT_FALSE(stream.aggregate(999).has_value());
}

TEST(Streaming, DetectsAttackAcrossEpochs) {
  core::StreamingRatingSystem stream(streaming_config(), 30.0);
  Rng rng(23);
  // Six months; the same shill block (ids 5000+) attacks each month.
  for (int month = 0; month < 6; ++month) {
    const double t0 = month * 30.0;
    RatingSeries epoch;
    for (double t = t0 + rng.exponential(8.0); t < t0 + 30.0;
         t += rng.exponential(8.0)) {
      epoch.push_back({t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.25)), 10, false),
                       static_cast<RaterId>(rng.uniform_int(0, 200)),
                       static_cast<ProductId>(month), RatingLabel::kHonest});
    }
    RaterId shill = 5000;
    for (double t = t0 + 5.0 + rng.exponential(16.0); t < t0 + 15.0;
         t += rng.exponential(16.0)) {
      epoch.push_back({t, quantize_unit(clamp_unit(rng.gaussian(0.65, 0.02)), 10, false),
                       shill++, static_cast<ProductId>(month),
                       RatingLabel::kCollaborative2});
    }
    sort_by_time(epoch);
    for (const Rating& r : epoch) stream.submit(r);
  }
  stream.flush();
  // Shills distrusted, honest majority not.
  double shill_trust = 0.0;
  int shills = 0;
  for (RaterId id = 5000; id < 5040; ++id) {
    if (stream.system().trust_store().records().contains(id)) {
      shill_trust += stream.trust(id);
      ++shills;
    }
  }
  ASSERT_GT(shills, 5);
  EXPECT_LT(shill_trust / shills, 0.45);
}

}  // namespace
}  // namespace trustrate
