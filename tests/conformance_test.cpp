// Seed-replayable conformance sweep (ctest label: conformance).
//
// Each seed builds one scenario (testkit/scenario.hpp) and pushes it
// through the differential oracle (batch vs streaming vs perturbed ingest
// vs checkpoint-resume vs 1/2/4 workers, all bitwise) and the metamorphic
// relation suite. A failure prints the seed, the scenario summary, and a
// one-line repro command:
//
//   TRUSTRATE_SEED=<seed> ./tests/conformance_test
//       --gtest_filter='Conformance.ReplaySeed'
//
// The sweep is 8 shards x 25 seeds = 200 scenarios; override the base seed
// with TRUSTRATE_CONFORMANCE_BASE_SEED to sweep a different region (the
// nightly CI job does).
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "testkit/metamorphic.hpp"
#include "testkit/oracle.hpp"

namespace {

using trustrate::testkit::ArrivalPlan;
using trustrate::testkit::DifferentialResult;
using trustrate::testkit::make_arrivals;
using trustrate::testkit::make_scenario;
using trustrate::testkit::MetamorphicResult;
using trustrate::testkit::run_differential;
using trustrate::testkit::run_metamorphic;
using trustrate::testkit::run_stream;
using trustrate::testkit::Scenario;
using trustrate::testkit::StreamOutcome;

constexpr std::size_t kShards = 8;
constexpr std::size_t kSeedsPerShard = 25;  // 8 x 25 = 200 scenarios

// Pinned regression seeds (see ConformanceRegression below); each test
// ASSERTs the property that made its seed worth pinning.
constexpr std::uint64_t kGapSeed = 3;         // 19-epoch dead gap, 18 skipped
constexpr std::uint64_t kBoundarySeed = 2;    // 3 at-bound pairs, 3 horizon retries
constexpr std::uint64_t kQuarantineSeed = 5;  // 7 junk ratings vs cap 4

std::uint64_t base_seed() {
  if (const char* env = std::getenv("TRUSTRATE_CONFORMANCE_BASE_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x7275737472617465ull;  // "trustrate"
}

/// Full conformance check of one seed: differential oracle + all four
/// metamorphic relations. Failure messages carry the repro command.
void run_seed(std::uint64_t seed) {
  const Scenario scenario = make_scenario(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + " [" + scenario.summary + "]");
  const DifferentialResult diff = run_differential(scenario);
  EXPECT_TRUE(diff.ok) << diff.divergence;
  const MetamorphicResult meta = run_metamorphic(scenario);
  EXPECT_TRUE(meta.ok) << meta.violation;
}

class ConformanceShard : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConformanceShard, DifferentialAndMetamorphic) {
  const std::uint64_t base = base_seed();
  for (std::size_t k = 0; k < kSeedsPerShard; ++k) {
    run_seed(base + GetParam() * kSeedsPerShard + k);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConformanceShard,
                         ::testing::Range(std::size_t{0}, kShards));

// Replays one scenario end-to-end; the entry point every divergence message
// points at.
TEST(Conformance, ReplaySeed) {
  const char* env = std::getenv("TRUSTRATE_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set TRUSTRATE_SEED=<seed> to replay a scenario";
  }
  run_seed(std::strtoull(env, nullptr, 0));
}

// ---------------------------------------------------------------------------
// Pinned regression scenarios. The seeds below were selected by scanning the
// generator for scenarios that provably hit the targeted mechanism; the
// ASSERTs keep the pin honest if the generator ever changes.

// Streaming empty-epoch fast-forward: a scenario with a multi-epoch dead gap
// must produce bitwise-identical C(i)/trust to the batch partition, and the
// skipped epochs must never enter Procedure 2 (no forgetting, no updates).
TEST(ConformanceRegression, GapFastForwardMatchesBatch) {
  const std::uint64_t seed = kGapSeed;
  const Scenario scenario = make_scenario(seed);
  ASSERT_GT(scenario.gap_epochs, 0u) << "pin drifted: scenario has no gap";
  const StreamOutcome stream = run_stream(scenario, scenario.ratings, 1);
  ASSERT_GT(stream.skipped_empty_epochs, 0u)
      << "pin drifted: stream skipped no empty epochs";
  run_seed(seed);
}

// Watermark boundary: an arrival whose event time lands *exactly* on the
// watermark (t == max_time - lateness) must be accepted, and a resubmission
// whose dedup key sits exactly on the horizon must still be recognized.
TEST(ConformanceRegression, WatermarkBoundaryArrivals) {
  const std::uint64_t seed = kBoundarySeed;
  const Scenario scenario = make_scenario(seed);
  ASSERT_FALSE(scenario.at_bound_pairs.empty())
      << "pin drifted: no exact at-bound pairs";
  const ArrivalPlan plan = make_arrivals(scenario);
  ASSERT_FALSE(plan.plan.horizon_retries.empty())
      << "pin drifted: no dedup-horizon retries";
  run_seed(seed);
}

// Quarantine cap: more dead-lettered ratings than max_quarantine — the
// dead-letter deque must hold exactly the cap, while the counters keep the
// full totals and the pipeline output is untouched.
TEST(ConformanceRegression, QuarantineCapOverflow) {
  const std::uint64_t seed = kQuarantineSeed;
  const Scenario scenario = make_scenario(seed);
  const ArrivalPlan plan = make_arrivals(scenario);
  ASSERT_GT(plan.plan.stale + plan.plan.malformed,
            scenario.ingest.max_quarantine)
      << "pin drifted: junk does not overflow the quarantine cap";
  run_seed(seed);
}

}  // namespace
