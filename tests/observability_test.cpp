// Observability-subsystem tests (ISSUE 5): metrics registry semantics and
// golden Prometheus/JSON expositions, trace and audit sink behaviour with
// golden JSONL lines, a multi-threaded registry hammer (the TSan target),
// and the out-of-band contract — the differential digests of a full
// pipeline run are bitwise-identical with every sink attached and with
// none, and the audit JSONL itself is byte-identical across runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/checkpoint.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/durable/wal.hpp"
#include "core/streaming.hpp"
#include "core/system.hpp"
#include "obs/observability.hpp"
#include "testkit/digest.hpp"
#include "testkit/scenario.hpp"

namespace trustrate {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndGaugeSemantics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("trustrate_demo_total", "Demo");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Gauge& g = reg.gauge("trustrate_demo_gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.25);  // last write wins
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  obs::MetricsRegistry reg;
  obs::Histogram& h =
      reg.histogram("trustrate_demo_seconds", {0.25, 0.5, 1.0}, "Demo");
  h.observe(0.25);  // exactly on a bound lands in that bucket
  h.observe(0.30);  // just past the bound: next bucket
  h.observe(0.75);
  h.observe(99.0);  // implicit +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.sum(), 0.25 + 0.30 + 0.75 + 99.0);
}

TEST(Metrics, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("trustrate_demo_total", "first help");
  obs::Counter& b = reg.counter("trustrate_demo_total", "ignored");
  EXPECT_EQ(&a, &b);  // instrument addresses are stable and shared

  obs::Histogram& h1 = reg.histogram("trustrate_h_seconds", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("trustrate_h_seconds", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));  // original kept
}

TEST(Metrics, DefaultSecondsBucketsArePowerOfFourMicroseconds) {
  const std::vector<double> bounds = obs::default_seconds_buckets();
  ASSERT_EQ(bounds.size(), 12u);
  EXPECT_EQ(bounds.front(), 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], bounds[i - 1] * 4.0);
  }
}

/// Builds the small synthetic registry both golden tests pin. All values
/// are dyadic, so the %.17g renderings below are exact and short.
void fill_golden_registry(obs::MetricsRegistry& reg) {
  reg.counter("trustrate_demo_total", "Demo counter").add(3);
  reg.gauge("trustrate_queue_depth", "Queue depth").set(2.5);
  obs::Histogram& h =
      reg.histogram("trustrate_demo_seconds", {0.25, 0.5, 1.0}, "Demo timing");
  h.observe(0.25);
  h.observe(0.5);
  h.observe(3.0);
}

TEST(Metrics, PrometheusGolden) {
  obs::MetricsRegistry reg;
  fill_golden_registry(reg);
  // Name-sorted entries; cumulative histogram buckets; HELP only when the
  // help text is non-empty. Pinning the exact bytes is safe because every
  // value is deterministic (the counter/timing split of DESIGN.md §11).
  EXPECT_EQ(reg.prometheus(),
            "# HELP trustrate_demo_seconds Demo timing\n"
            "# TYPE trustrate_demo_seconds histogram\n"
            "trustrate_demo_seconds_bucket{le=\"0.25\"} 1\n"
            "trustrate_demo_seconds_bucket{le=\"0.5\"} 2\n"
            "trustrate_demo_seconds_bucket{le=\"1\"} 2\n"
            "trustrate_demo_seconds_bucket{le=\"+Inf\"} 3\n"
            "trustrate_demo_seconds_sum 3.75\n"
            "trustrate_demo_seconds_count 3\n"
            "# HELP trustrate_demo_total Demo counter\n"
            "# TYPE trustrate_demo_total counter\n"
            "trustrate_demo_total 3\n"
            "# HELP trustrate_queue_depth Queue depth\n"
            "# TYPE trustrate_queue_depth gauge\n"
            "trustrate_queue_depth 2.5\n");
}

TEST(Metrics, JsonGolden) {
  obs::MetricsRegistry reg;
  fill_golden_registry(reg);
  EXPECT_EQ(reg.json(),
            "{\"counters\":{\"trustrate_demo_total\":3},"
            "\"gauges\":{\"trustrate_queue_depth\":2.5},"
            "\"histograms\":{\"trustrate_demo_seconds\":"
            "{\"bounds\":[0.25,0.5,1],\"buckets\":[1,1,0,1],"
            "\"sum\":3.75,\"count\":3}}}");
}

// The TSan target: hot-path updates from epoch_workers-style threads racing
// registration, other updaters, and snapshotters. Totals must come out
// exact (relaxed atomics lose no increments) and snapshots must never tear
// the registry structures.
TEST(MetricsHammer, ConcurrentUpdatesRegistrationAndSnapshots) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;

  // Register up front so the snapshotter always sees a non-empty registry
  // (workers still race the registration path below).
  reg.counter("trustrate_hammer_total");
  reg.gauge("trustrate_hammer_gauge");
  reg.histogram("trustrate_hammer_seconds", obs::default_seconds_buckets());

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string p = reg.prometheus();
      const std::string j = reg.json();
      EXPECT_FALSE(p.empty());
      EXPECT_FALSE(j.empty());
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Resolve-once pattern (what set_observability does), but also hit
      // the registration path concurrently every few iterations.
      obs::Counter& c = reg.counter("trustrate_hammer_total");
      obs::Gauge& g = reg.gauge("trustrate_hammer_gauge");
      obs::Histogram& h =
          reg.histogram("trustrate_hammer_seconds", obs::default_seconds_buckets());
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.set(static_cast<double>(i));
        h.observe(1e-6 * static_cast<double>((t * 131 + i) % 4096));
        if (i % 512 == 0) {
          EXPECT_EQ(&reg.counter("trustrate_hammer_total"), &c);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_EQ(reg.counter("trustrate_hammer_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  const obs::Histogram& h =
      reg.histogram("trustrate_hammer_seconds", obs::default_seconds_buckets());
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : h.bucket_counts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h.count());
}

// ---------------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------------

TEST(Trace, SpanJsonlGolden) {
  obs::TraceSpan full;
  full.name = "epoch.close";
  full.start_ns = 100;
  full.duration_ns = 50;
  full.epoch = 2;
  full.id = 7;
  full.detail = "fsync=\"epoch\"";
  EXPECT_EQ(obs::to_jsonl(full),
            "{\"span\":\"epoch.close\",\"start_ns\":100,\"duration_ns\":50,"
            "\"epoch\":2,\"id\":7,\"detail\":\"fsync=\\\"epoch\\\"\"}");

  obs::TraceSpan minimal;  // epoch 0 / id -1 / empty detail are omitted
  minimal.name = "wal.append";
  minimal.start_ns = 5;
  minimal.duration_ns = 1;
  EXPECT_EQ(obs::to_jsonl(minimal),
            "{\"span\":\"wal.append\",\"start_ns\":5,\"duration_ns\":1}");
}

TEST(Trace, RingBufferKeepsNewestAndCountsDrops) {
  obs::RingBufferTraceSink ring(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    obs::TraceSpan s;
    s.name = "span" + std::to_string(i);
    ring.record(s);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<obs::TraceSpan> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.front().name, "span2");
  EXPECT_EQ(kept.back().name, "span4");
}

TEST(Trace, SpanTimerRecordsOnDestructionAndNullSinkIsFree) {
  obs::RingBufferTraceSink ring;
  {
    obs::SpanTimer span(&ring, "unit.test", /*epoch=*/3, /*id=*/42);
    span.set_detail("k=v");
  }
  {
    obs::SpanTimer null_span(nullptr, "never.recorded");  // must be a no-op
    null_span.set_detail("ignored");
  }
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.test");
  EXPECT_EQ(spans[0].epoch, 3u);
  EXPECT_EQ(spans[0].id, 42);
  EXPECT_EQ(spans[0].detail, "k=v");
  EXPECT_GT(spans[0].start_ns, 0u);
}

TEST(Trace, JsonlSinkWritesOneLinePerSpan) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  obs::TraceSpan s;
  s.name = "a";
  s.start_ns = 1;
  s.duration_ns = 2;
  sink.record(s);
  s.name = "b";
  sink.record(s);
  EXPECT_EQ(out.str(),
            "{\"span\":\"a\",\"start_ns\":1,\"duration_ns\":2}\n"
            "{\"span\":\"b\",\"start_ns\":1,\"duration_ns\":2}\n");
}

// ---------------------------------------------------------------------------
// Audit log
// ---------------------------------------------------------------------------

TEST(Audit, EventJsonlGolden) {
  obs::AuditEvent full;
  full.type = obs::AuditEventType::kSuspiciousInterval;
  full.epoch = 3;
  full.rater = 42;
  full.product = 7;
  full.window_start = 12.5;
  full.window_end = 20.5;
  full.model_error = 0.0078125;
  full.threshold = 0.03125;
  full.value = 0.5;
  full.detail = "run start";
  EXPECT_EQ(obs::to_jsonl(full),
            "{\"event\":\"suspicious_interval\",\"epoch\":3,\"rater\":42,"
            "\"product\":7,\"window_start\":12.5,\"window_end\":20.5,"
            "\"model_error\":0.0078125,\"threshold\":0.03125,\"value\":0.5,"
            "\"detail\":\"run start\"}");

  obs::AuditEvent minimal;  // epoch 0 and absent optionals are omitted
  minimal.type = obs::AuditEventType::kWalTailTruncated;
  minimal.value = 17.0;
  EXPECT_EQ(obs::to_jsonl(minimal),
            "{\"event\":\"wal_tail_truncated\",\"value\":17}");

  obs::AuditEvent escaped;
  escaped.type = obs::AuditEventType::kRatingQuarantined;
  escaped.detail = "a \"quoted\"\nline";
  EXPECT_EQ(obs::to_jsonl(escaped),
            "{\"event\":\"rating_quarantined\","
            "\"detail\":\"a \\\"quoted\\\"\\nline\"}");
}

TEST(Audit, EventTypeNamesAreStable) {
  using T = obs::AuditEventType;
  EXPECT_STREQ(obs::to_string(T::kRatingQuarantined), "rating_quarantined");
  EXPECT_STREQ(obs::to_string(T::kRatingFiltered), "rating_filtered");
  EXPECT_STREQ(obs::to_string(T::kSuspiciousInterval), "suspicious_interval");
  EXPECT_STREQ(obs::to_string(T::kSuspicionIncrement), "suspicion_increment");
  EXPECT_STREQ(obs::to_string(T::kTrustDemotion), "trust_demotion");
  EXPECT_STREQ(obs::to_string(T::kDegradedEpoch), "degraded_epoch");
  EXPECT_STREQ(obs::to_string(T::kObserverNotRestored), "observer_not_restored");
  EXPECT_STREQ(obs::to_string(T::kWalTailTruncated), "wal_tail_truncated");
}

TEST(Audit, MemorySinkBoundsAndFiltersByType) {
  obs::MemoryAuditSink sink(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    obs::AuditEvent e;
    e.type = i % 2 == 0 ? obs::AuditEventType::kRatingFiltered
                        : obs::AuditEventType::kTrustDemotion;
    e.epoch = static_cast<std::uint64_t>(i + 1);
    sink.record(e);
  }
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto kept = sink.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.front().epoch, 3u);  // newest 3 survive
  EXPECT_EQ(kept.back().epoch, 5u);
  const auto demotions = sink.of_type(obs::AuditEventType::kTrustDemotion);
  ASSERT_EQ(demotions.size(), 1u);  // epoch-2 demotion was evicted
  EXPECT_EQ(demotions[0].epoch, 4u);
}

TEST(Audit, JsonlSinkWritesOneLinePerEvent) {
  std::ostringstream out;
  obs::JsonlAuditSink sink(out);
  obs::AuditEvent e;
  e.type = obs::AuditEventType::kDegradedEpoch;
  e.epoch = 9;
  sink.record(e);
  EXPECT_EQ(out.str(), "{\"event\":\"degraded_epoch\",\"epoch\":9}\n");
}

// ---------------------------------------------------------------------------
// Pipeline integration: the out-of-band contract
// ---------------------------------------------------------------------------

/// Everything a full streaming run of a testkit scenario produces that the
/// out-of-band contract must hold fixed: per-epoch report digests, the
/// trust digest, the complete serialized state, plus (when instrumented)
/// the audit JSONL and the ingest-counter metric values.
struct ScenarioRun {
  std::vector<std::string> report_digests;
  std::string trust_digest;
  std::string state_bytes;  ///< full save_checkpoint serialization
  std::string audit_jsonl;
  core::IngestStats stats;
  std::size_t epochs_closed = 0;
  std::uint64_t metric_submitted = 0;
  std::uint64_t metric_epochs_closed = 0;
  std::uint64_t metric_skipped_empty = 0;
  std::uint64_t trace_recorded = 0;
};

ScenarioRun run_scenario(const testkit::Scenario& scenario,
                         const RatingSeries& arrivals, bool instrumented,
                         std::size_t epoch_workers = 1) {
  core::SystemConfig config = scenario.config;
  config.epoch_workers = epoch_workers;
  core::StreamingRatingSystem stream(config, scenario.epoch_days,
                                     scenario.retention_epochs,
                                     scenario.ingest);

  obs::MetricsRegistry metrics;
  obs::RingBufferTraceSink trace(1 << 16);
  std::ostringstream audit_out;
  obs::JsonlAuditSink audit(audit_out);
  if (instrumented) {
    obs::Observability o;
    o.metrics = &metrics;
    o.trace = &trace;
    o.audit = &audit;
    stream.set_observability(o);
  }

  ScenarioRun run;
  stream.set_epoch_observer(
      [&run](const core::EpochReport& report, double, double) {
        run.report_digests.push_back(testkit::digest_report(report));
      });
  for (const Rating& r : arrivals) stream.submit(r);
  stream.flush();

  run.trust_digest = testkit::digest_trust(stream.system().trust_store());
  std::ostringstream state;
  core::save_checkpoint(stream, state);
  run.state_bytes = state.str();
  run.audit_jsonl = audit_out.str();
  run.stats = stream.ingest_stats();
  run.epochs_closed = stream.epochs_closed();
  if (instrumented) {
    run.metric_submitted =
        metrics.counter("trustrate_ingest_submitted_total").value();
    run.metric_epochs_closed =
        metrics.counter("trustrate_epochs_closed_total").value();
    run.metric_skipped_empty =
        metrics.counter("trustrate_epochs_skipped_empty_total").value();
    run.trace_recorded = trace.recorded();
  }
  return run;
}

TEST(OutOfBand, DigestsIdenticalWithAndWithoutSinks) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const testkit::Scenario scenario = testkit::make_scenario(seed);
    const testkit::ArrivalPlan plan = testkit::make_arrivals(scenario);
    const ScenarioRun off = run_scenario(scenario, plan.arrivals, false);
    const ScenarioRun on = run_scenario(scenario, plan.arrivals, true);
    ASSERT_FALSE(off.report_digests.empty()) << scenario.summary;
    EXPECT_EQ(off.report_digests, on.report_digests) << scenario.summary;
    EXPECT_EQ(off.trust_digest, on.trust_digest) << scenario.summary;
    // Strongest form: the complete serialized streaming state (hexfloat
    // checkpoint bytes) is bitwise-identical with every sink attached.
    EXPECT_EQ(off.state_bytes, on.state_bytes) << scenario.summary;
    EXPECT_GT(on.trace_recorded, 0u) << scenario.summary;
  }
}

TEST(OutOfBand, AuditJsonlIsByteIdenticalAcrossRuns) {
  std::size_t total_events = 0;
  for (const std::uint64_t seed : {3ull, 11ull, 17ull}) {
    const testkit::Scenario scenario = testkit::make_scenario(seed);
    const testkit::ArrivalPlan plan = testkit::make_arrivals(scenario);
    const ScenarioRun first = run_scenario(scenario, plan.arrivals, true);
    const ScenarioRun second = run_scenario(scenario, plan.arrivals, true);
    EXPECT_EQ(first.audit_jsonl, second.audit_jsonl) << scenario.summary;
    for (const char c : first.audit_jsonl) total_events += c == '\n';
  }
  // The sweep must actually exercise the audit trail, not compare empties.
  EXPECT_GT(total_events, 0u);
}

TEST(OutOfBand, CountersMatchPipelineStats) {
  const testkit::Scenario scenario = testkit::make_scenario(3);
  const testkit::ArrivalPlan plan = testkit::make_arrivals(scenario);
  const ScenarioRun run = run_scenario(scenario, plan.arrivals, true);
  EXPECT_EQ(run.metric_submitted, run.stats.submitted);
  EXPECT_EQ(run.metric_epochs_closed, run.epochs_closed);
}

// epoch_workers > 1: filter/AR spans and instruments are updated from the
// engine's worker threads. The digests must still match the serial run
// (worker-count invariance survives instrumentation), and under
// -DTRUSTRATE_SANITIZE=thread this is the pipeline-shaped race check.
TEST(OutOfBand, ParallelEpochWorkersShareInstrumentsSafely) {
  const testkit::Scenario scenario = testkit::make_scenario(11);
  const testkit::ArrivalPlan plan = testkit::make_arrivals(scenario);
  const ScenarioRun serial = run_scenario(scenario, plan.arrivals, true, 1);
  const ScenarioRun parallel = run_scenario(scenario, plan.arrivals, true, 4);
  EXPECT_EQ(serial.report_digests, parallel.report_digests);
  EXPECT_EQ(serial.trust_digest, parallel.trust_digest);
  EXPECT_EQ(serial.audit_jsonl, parallel.audit_jsonl);
  EXPECT_GT(parallel.trace_recorded, 0u);
}

// ---------------------------------------------------------------------------
// Audit semantics on crafted streams
// ---------------------------------------------------------------------------

core::SystemConfig demotion_config() {
  core::SystemConfig config;
  config.filter.q = 0.1;
  config.ar.window_days = 8.0;
  config.ar.step_days = 2.0;
  config.b = 10.0;
  return config;
}

/// One product, one epoch: 19 moderate ratings plus one far-outlier from
/// rater 100 that the beta filter provably removes, driving rater 100's
/// trust from the 0.5 prior to below the malicious threshold (f=1, n=1:
/// trust <= 1/3) — a guaranteed demotion.
core::ProductObservation demotion_epoch() {
  core::ProductObservation po;
  po.product = 1;
  po.t_start = 0.0;
  po.t_end = 20.0;
  const double values[] = {0.45, 0.5, 0.55, 0.5, 0.5};
  for (int i = 0; i < 19; ++i) {
    po.ratings.push_back({0.5 + i, values[i % 5],
                          static_cast<RaterId>(1 + i), 1, RatingLabel::kHonest});
  }
  po.ratings.push_back({19.5, 0.99, 100, 1, RatingLabel::kCollaborative1});
  return po;
}

TEST(AuditPipeline, TrustDemotionIsCountedAndLogged) {
  core::TrustEnhancedRatingSystem system(demotion_config());
  obs::MetricsRegistry metrics;
  obs::MemoryAuditSink audit;
  obs::Observability o;
  o.metrics = &metrics;
  o.audit = &audit;
  system.set_observability(o);

  const core::ProductObservation po = demotion_epoch();
  system.process_epoch(std::span<const core::ProductObservation>(&po, 1));

  EXPECT_LT(system.trust(100), system.config().malicious_threshold);
  EXPECT_GE(metrics.counter("trustrate_trust_demotions_total").value(), 1u);
  EXPECT_GE(metrics.counter("trustrate_ratings_filtered_total").value(), 1u);
  bool found = false;
  for (const obs::AuditEvent& e :
       audit.of_type(obs::AuditEventType::kTrustDemotion)) {
    if (e.rater == RaterId{100}) {
      found = true;
      EXPECT_EQ(e.epoch, 1u);
      ASSERT_TRUE(e.threshold.has_value());
      EXPECT_EQ(*e.threshold, system.config().malicious_threshold);
      ASSERT_TRUE(e.value.has_value());
      EXPECT_LT(*e.value, 0.5);
    }
  }
  EXPECT_TRUE(found);
  // The hard evidence behind it: rater 100's filtered rating.
  bool filtered = false;
  for (const obs::AuditEvent& e :
       audit.of_type(obs::AuditEventType::kRatingFiltered)) {
    filtered |= e.rater == RaterId{100};
  }
  EXPECT_TRUE(filtered);
}

// The store observer captures `this`; moving the system must re-wire it to
// the new object or demotions silently vanish (and ASan flags the stale
// capture). Regression test for the explicit move operations.
TEST(AuditPipeline, SurvivesSystemMove) {
  core::TrustEnhancedRatingSystem original(demotion_config());
  obs::MetricsRegistry metrics;
  obs::MemoryAuditSink audit;
  obs::Observability o;
  o.metrics = &metrics;
  o.audit = &audit;
  original.set_observability(o);

  core::TrustEnhancedRatingSystem moved = std::move(original);
  const core::ProductObservation po = demotion_epoch();
  moved.process_epoch(std::span<const core::ProductObservation>(&po, 1));

  EXPECT_GE(metrics.counter("trustrate_trust_demotions_total").value(), 1u);
  EXPECT_FALSE(audit.of_type(obs::AuditEventType::kTrustDemotion).empty());

  // Move-assignment re-wires too (a fresh system, so rater 100 crosses the
  // threshold again rather than already sitting below it).
  core::TrustEnhancedRatingSystem fresh(demotion_config());
  fresh.set_observability(o);
  core::TrustEnhancedRatingSystem assigned(demotion_config());
  assigned = std::move(fresh);
  assigned.process_epoch(std::span<const core::ProductObservation>(&po, 1));
  EXPECT_GE(metrics.counter("trustrate_trust_demotions_total").value(), 2u);
}

TEST(AuditPipeline, QuarantineEventsCarryTheReason) {
  core::StreamingRatingSystem stream(demotion_config(), /*epoch_days=*/30.0);
  obs::MetricsRegistry metrics;
  obs::MemoryAuditSink audit;
  obs::Observability o;
  o.metrics = &metrics;
  o.audit = &audit;
  stream.set_observability(o);

  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.submit({2.0, 2.5, 2, 1, RatingLabel::kHonest});   // out of range
  stream.submit({0.25, 0.5, 3, 1, RatingLabel::kHonest});  // behind watermark

  EXPECT_EQ(metrics.counter("trustrate_ingest_malformed_total").value(), 1u);
  EXPECT_EQ(metrics.counter("trustrate_ingest_late_total").value(), 1u);
  EXPECT_EQ(metrics.counter("trustrate_ingest_quarantined_total").value(), 2u);
  const auto events = audit.of_type(obs::AuditEventType::kRatingQuarantined);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].rater, RaterId{2});
  EXPECT_FALSE(events[0].detail.empty());
  EXPECT_EQ(events[1].rater, RaterId{3});
}

// ---------------------------------------------------------------------------
// Checkpoint restore: the one-shot observer_not_restored warning
// ---------------------------------------------------------------------------

/// Closes one epoch on a fresh stream and returns its checkpoint bytes.
std::string checkpointed_stream_bytes(const core::SystemConfig& config) {
  core::StreamingRatingSystem stream(config, /*epoch_days=*/30.0);
  for (int i = 0; i < 12; ++i) {
    stream.submit({1.0 + i * 2.5, 0.4 + 0.01 * i,
                   static_cast<RaterId>(1 + i), 1, RatingLabel::kHonest});
  }
  stream.submit({35.0, 0.5, 99, 1, RatingLabel::kHonest});  // closes epoch 1
  std::ostringstream out;
  core::save_checkpoint(stream, out);
  return out.str();
}

TEST(ObserverRestore, WarnsOnceWhenNoObserverReattached) {
  const core::SystemConfig config = demotion_config();
  const std::string bytes = checkpointed_stream_bytes(config);

  std::istringstream in(bytes);
  core::StreamingRatingSystem restored = core::load_checkpoint(in, config);
  obs::MemoryAuditSink audit;
  obs::Observability o;
  o.audit = &audit;
  restored.set_observability(o);

  restored.submit({40.0, 0.5, 7, 1, RatingLabel::kHonest});
  restored.flush();  // first epoch close after the restore
  auto warnings = audit.of_type(obs::AuditEventType::kObserverNotRestored);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].epoch, 2u);  // ordinal of the closing epoch

  // One-shot: later closes stay silent.
  restored.submit({70.0, 0.5, 7, 1, RatingLabel::kHonest});
  restored.flush();
  warnings = audit.of_type(obs::AuditEventType::kObserverNotRestored);
  EXPECT_EQ(warnings.size(), 1u);
}

TEST(ObserverRestore, SilentWhenObserverIsReattached) {
  const core::SystemConfig config = demotion_config();
  const std::string bytes = checkpointed_stream_bytes(config);

  std::istringstream in(bytes);
  core::StreamingRatingSystem restored = core::load_checkpoint(in, config);
  obs::MemoryAuditSink audit;
  obs::Observability o;
  o.audit = &audit;
  restored.set_observability(o);
  restored.set_epoch_observer([](const core::EpochReport&, double, double) {});

  restored.submit({40.0, 0.5, 7, 1, RatingLabel::kHonest});
  restored.flush();
  EXPECT_TRUE(audit.of_type(obs::AuditEventType::kObserverNotRestored).empty());
}

TEST(ObserverRestore, FreshStreamsNeverWarn) {
  core::StreamingRatingSystem stream(demotion_config(), /*epoch_days=*/30.0);
  obs::MemoryAuditSink audit;
  obs::Observability o;
  o.audit = &audit;
  stream.set_observability(o);
  stream.submit({1.0, 0.5, 1, 1, RatingLabel::kHonest});
  stream.flush();
  EXPECT_TRUE(audit.of_type(obs::AuditEventType::kObserverNotRestored).empty());
}

// ---------------------------------------------------------------------------
// Durable layer: WAL/recovery health metrics and the torn-tail audit event
// ---------------------------------------------------------------------------

fs::path test_dir(const std::string& name) {
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path dir =
      fs::temp_directory_path() / ("trustrate-observability-" + uniq) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

RatingSeries durable_stream_data() {
  RatingSeries stream;
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {
    t += 0.75;
    stream.push_back({t, (i % 10) * 0.1, static_cast<RaterId>(1 + i % 13),
                      static_cast<ProductId>(1 + i % 3), RatingLabel::kHonest});
  }
  return stream;
}

TEST(DurableObservability, WalCheckpointAndRecoveryMetrics) {
  const fs::path dir = test_dir("metrics");
  const core::SystemConfig config = demotion_config();
  const RatingSeries data = durable_stream_data();

  obs::MetricsRegistry write_metrics;
  obs::MemoryAuditSink write_audit;
  core::durable::DurableOptions options;
  options.obs.metrics = &write_metrics;
  options.obs.audit = &write_audit;
  {
    core::durable::DurableStream durable(dir, config, /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2, {}, options);
    // Checkpoint midway so recovery has WAL records to replay.
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (i == data.size() / 2) durable.checkpoint();
      durable.submit(data[i]);
    }
  }
  EXPECT_EQ(write_metrics.counter("trustrate_wal_records_total").value(),
            static_cast<std::uint64_t>(data.size()) +
                write_metrics.counter("trustrate_epochs_closed_total").value());
  EXPECT_GT(write_metrics.counter("trustrate_wal_bytes_total").value(), 0u);
  EXPECT_GT(write_metrics.counter("trustrate_wal_fsyncs_total").value(), 0u);
  EXPECT_EQ(write_metrics.counter("trustrate_checkpoints_written_total").value(),
            1u);

  // Tear the WAL tail the way a kill -9 mid-write would.
  const auto segments = core::durable::wal_segments(dir);
  ASSERT_FALSE(segments.empty());
  {
    std::ofstream out(segments.back().path,
                      std::ios::binary | std::ios::app);
    out << "GARBAGE-TORN-WRITE";
  }

  obs::MetricsRegistry recovery_metrics;
  obs::MemoryAuditSink recovery_audit;
  core::durable::DurableOptions recovery_options;
  recovery_options.obs.metrics = &recovery_metrics;
  recovery_options.obs.audit = &recovery_audit;
  core::durable::DurableStream recovered(dir, config, /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2, {},
                                         recovery_options);

  EXPECT_TRUE(recovered.recovery().wal_tail_truncated);
  EXPECT_EQ(
      recovery_metrics.counter("trustrate_wal_torn_tail_truncations_total")
          .value(),
      1u);
  const auto torn =
      recovery_audit.of_type(obs::AuditEventType::kWalTailTruncated);
  ASSERT_EQ(torn.size(), 1u);
  ASSERT_TRUE(torn[0].value.has_value());
  EXPECT_EQ(*torn[0].value, 18.0);  // strlen("GARBAGE-TORN-WRITE")

  EXPECT_GT(recovered.recovery().replayed_records, 0u);
  EXPECT_EQ(
      recovery_metrics.counter("trustrate_recovery_replayed_records_total")
          .value(),
      recovered.recovery().replayed_records);
  EXPECT_EQ(
      recovery_metrics.counter("trustrate_recovery_replayed_ratings_total")
          .value(),
      recovered.recovery().replayed_ratings);
  EXPECT_EQ(
      recovery_metrics.counter("trustrate_recovery_corrupt_checkpoints_total")
          .value(),
      0u);
  // The durable layer re-attaches its own epoch observer before replay, so
  // recovery must never trip the observer_not_restored warning.
  recovered.flush();
  EXPECT_TRUE(recovery_audit.of_type(obs::AuditEventType::kObserverNotRestored)
                  .empty());
  fs::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace trustrate
