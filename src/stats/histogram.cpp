#include "stats/histogram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trustrate::stats {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0) {
  TRUSTRATE_EXPECTS(bins >= 1, "Histogram needs at least one bin");
  TRUSTRATE_EXPECTS(hi > lo, "Histogram needs hi > lo");
}

void Histogram::add(double x) {
  int idx = static_cast<int>(std::floor((x - lo_) / width_));
  if (idx < 0) idx = 0;
  if (idx >= bins()) idx = bins() - 1;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(int i) const {
  TRUSTRATE_EXPECTS(i >= 0 && i < bins(), "Histogram bin index out of range");
  return counts_[static_cast<std::size_t>(i)];
}

double Histogram::bin_center(int i) const {
  TRUSTRATE_EXPECTS(i >= 0 && i < bins(), "Histogram bin index out of range");
  return lo_ + (i + 0.5) * width_;
}

double Histogram::frequency(int i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double Histogram::entropy() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace trustrate::stats
