// Fixed-bin histogram over a closed interval.
#pragma once

#include <span>
#include <vector>

namespace trustrate::stats {

/// Histogram with `bins` equal-width bins over [lo, hi]. Values exactly at
/// `hi` land in the last bin; values outside [lo, hi] are clamped into the
/// boundary bins (rating data is already clipped, so this is a safety net).
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t total() const { return total_; }

  /// Raw count of bin i.
  std::size_t count(int i) const;

  /// Center of bin i.
  double bin_center(int i) const;

  /// Fraction of samples in bin i (0 when empty histogram).
  double frequency(int i) const;

  /// Counts as a vector (for printing / plotting).
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Shannon entropy (nats) of the bin distribution; 0 for empty histogram.
  double entropy() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace trustrate::stats
