#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace trustrate::stats {

Summary summarize(std::span<const double> xs) {
  TRUSTRATE_EXPECTS(!xs.empty(), "summarize requires a non-empty sample");
  Summary s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = mean;
  s.variance = (n >= 2) ? m2 / static_cast<double>(n - 1) : 0.0;
  s.stddev = std::sqrt(s.variance);
  return s;
}

double sample_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return summarize(xs).variance;
}

double population_variance(std::span<const double> xs) {
  TRUSTRATE_EXPECTS(!xs.empty(), "population_variance requires non-empty sample");
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) {
  return quantile(xs, 0.5);
}

double quantile(std::span<const double> xs, double q) {
  TRUSTRATE_EXPECTS(!xs.empty(), "quantile requires a non-empty sample");
  TRUSTRATE_EXPECTS(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson_correlation(std::span<const double> a, std::span<const double> b) {
  TRUSTRATE_EXPECTS(a.size() == b.size() && a.size() >= 2,
                    "pearson_correlation requires equal sizes >= 2");
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  const double denom = std::sqrt(saa * sbb);
  if (denom <= 0.0) return 0.0;
  return sab / denom;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  TRUSTRATE_EXPECTS(a.size() == b.size() && !a.empty(),
                    "rmse requires equal non-empty sizes");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

std::vector<double> autocorrelation(std::span<const double> xs, int max_lag) {
  TRUSTRATE_EXPECTS(!xs.empty(), "autocorrelation requires non-empty sample");
  TRUSTRATE_EXPECTS(max_lag >= 0, "autocorrelation max_lag must be >= 0");
  const auto n = xs.size();
  const double m = mean_of(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  std::vector<double> r(static_cast<std::size_t>(max_lag) + 1, 0.0);
  if (denom <= 0.0) return r;  // constant series: define all correlations as 0
  for (int k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) < n; ++i) {
      acc += (xs[i] - m) * (xs[i + static_cast<std::size_t>(k)] - m);
    }
    r[static_cast<std::size_t>(k)] = acc / denom;
  }
  return r;
}

}  // namespace trustrate::stats
