#include "stats/whiteness.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace trustrate::stats {

TestResult ljung_box(std::span<const double> xs, int lags) {
  TRUSTRATE_EXPECTS(lags >= 1, "ljung_box requires lags >= 1");
  TRUSTRATE_EXPECTS(xs.size() > static_cast<std::size_t>(lags),
                    "ljung_box requires more samples than lags");
  const double n = static_cast<double>(xs.size());
  const auto r = autocorrelation(xs, lags);
  double q = 0.0;
  for (int k = 1; k <= lags; ++k) {
    const double rk = r[static_cast<std::size_t>(k)];
    q += rk * rk / (n - k);
  }
  q *= n * (n + 2.0);
  TestResult result;
  result.statistic = q;
  result.p_value = 1.0 - chi_squared_cdf(q, static_cast<double>(lags));
  return result;
}

TestResult turning_point(std::span<const double> xs) {
  TRUSTRATE_EXPECTS(xs.size() >= 3, "turning_point requires >= 3 samples");
  const std::size_t n = xs.size();
  std::size_t turns = 0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const bool peak = xs[i] > xs[i - 1] && xs[i] > xs[i + 1];
    const bool valley = xs[i] < xs[i - 1] && xs[i] < xs[i + 1];
    if (peak || valley) ++turns;
  }
  const double nn = static_cast<double>(n);
  const double mean = 2.0 * (nn - 2.0) / 3.0;
  const double variance = (16.0 * nn - 29.0) / 90.0;
  TestResult result;
  result.statistic = (static_cast<double>(turns) - mean) / std::sqrt(variance);
  result.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(result.statistic)));
  return result;
}

}  // namespace trustrate::stats
