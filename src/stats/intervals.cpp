#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trustrate::stats {

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  TRUSTRATE_EXPECTS(trials >= 1, "wilson_interval needs at least one trial");
  TRUSTRATE_EXPECTS(successes <= trials, "successes cannot exceed trials");
  TRUSTRATE_EXPECTS(z > 0.0, "z must be positive");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::clamp(center - margin, 0.0, 1.0),
          std::clamp(center + margin, 0.0, 1.0)};
}

}  // namespace trustrate::stats
