#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace trustrate::stats {

namespace {

// Lanczos approximation coefficients (g = 7, n = 9).
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// Continued fraction for the incomplete gamma function Q(a, x)
// (Numerical Recipes `gcf`).
double gamma_q_continued_fraction(double a, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

// Series expansion for P(a, x) (Numerical Recipes `gser`).
double gamma_p_series(double a, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction for the incomplete beta function (Lentz's method,
// Numerical Recipes `betacf`).
double beta_continued_fraction(double x, double a, double b) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) break;
  }
  return h;
}

}  // namespace

double log_gamma(double x) {
  TRUSTRATE_EXPECTS(x > 0.0, "log_gamma requires x > 0");
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos series in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) acc += kLanczos[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t + std::log(acc);
}

double regularized_gamma_p(double a, double x) {
  TRUSTRATE_EXPECTS(a > 0.0, "regularized_gamma_p requires a > 0");
  TRUSTRATE_EXPECTS(x >= 0.0, "regularized_gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double chi_squared_cdf(double x, double k) {
  TRUSTRATE_EXPECTS(k > 0.0, "chi_squared_cdf requires k > 0");
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k / 2.0, x / 2.0);
}

double regularized_beta(double x, double a, double b) {
  TRUSTRATE_EXPECTS(a > 0.0 && b > 0.0, "regularized_beta requires a, b > 0");
  TRUSTRATE_EXPECTS(x >= 0.0 && x <= 1.0, "regularized_beta requires x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                           a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(x, a, b) / a;
  }
  return 1.0 - front * beta_continued_fraction(1.0 - x, b, a) / b;
}

double beta_cdf(double x, double a, double b) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return regularized_beta(x, a, b);
}

double beta_quantile(double p, double a, double b) {
  TRUSTRATE_EXPECTS(p >= 0.0 && p <= 1.0, "beta_quantile requires p in [0,1]");
  TRUSTRATE_EXPECTS(a > 0.0 && b > 0.0, "beta_quantile requires a, b > 0");
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  double x = a / (a + b);  // start at the mean
  for (int i = 0; i < 200; ++i) {
    const double c = beta_cdf(x, a, b);
    if (std::fabs(c - p) < 1e-12) break;
    if (c < p) {
      lo = x;
    } else {
      hi = x;
    }
    // Newton step using the beta pdf, falling back to bisection when it
    // leaves the bracket.
    const double log_pdf = (a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) +
                           log_gamma(a + b) - log_gamma(a) - log_gamma(b);
    const double pdf = std::exp(log_pdf);
    double next = (pdf > 0.0) ? x - (c - p) / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-14) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

}  // namespace trustrate::stats
