// Confidence intervals for proportions — Monte-Carlo experiments report
// detection/false-alarm *rates*; a 500-run estimate deserves an interval,
// not just a point.
#pragma once

#include <cstddef>

namespace trustrate::stats {

/// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  bool contains(double p) const { return p >= lo && p <= hi; }
  double width() const { return hi - lo; }
};

/// Wilson score interval for a binomial proportion: `successes` of `trials`
/// at confidence z (1.96 for 95%). Well-behaved at the boundaries (0 or n
/// successes), unlike the Wald interval. Requires trials >= 1, z > 0.
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.959963984540054);

}  // namespace trustrate::stats
