// Descriptive statistics over double samples.
#pragma once

#include <span>
#include <vector>

namespace trustrate::stats {

/// Summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased sample variance (0 when count < 2)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes the full summary in one pass (Welford). Requires non-empty xs.
Summary summarize(std::span<const double> xs);

/// Unbiased sample variance; 0.0 when xs.size() < 2.
double sample_variance(std::span<const double> xs);

/// Population variance (divide by n); requires non-empty xs.
double population_variance(std::span<const double> xs);

/// Median by partial sort of a copy; requires non-empty xs.
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]; requires non-empty xs.
/// quantile(xs, 0) == min, quantile(xs, 1) == max.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation of two equal-length samples; 0.0 when either is
/// (numerically) constant. Requires size >= 2.
double pearson_correlation(std::span<const double> a, std::span<const double> b);

/// Root-mean-square error between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Biased sample autocorrelation r[k] = sum_{n} (x[n]-m)(x[n+k]-m) / sum (x[n]-m)^2
/// for k = 0..max_lag. r[0] == 1 unless the series is constant (then all 0).
std::vector<double> autocorrelation(std::span<const double> xs, int max_lag);

}  // namespace trustrate::stats
