#include "stats/moving.hpp"

#include "common/error.hpp"

namespace trustrate::stats {

std::vector<MovingPoint> moving_average_by_count(std::span<const double> values,
                                                 std::span<const double> positions,
                                                 std::size_t window,
                                                 std::size_t step) {
  TRUSTRATE_EXPECTS(values.size() == positions.size(),
                    "values and positions must pair up");
  TRUSTRATE_EXPECTS(window >= 1 && step >= 1,
                    "window and step must be at least 1");
  std::vector<MovingPoint> out;
  for (std::size_t start = 0; start + window <= values.size(); start += step) {
    MovingPoint p;
    p.count = window;
    double sum_v = 0.0;
    double sum_t = 0.0;
    for (std::size_t i = start; i < start + window; ++i) {
      sum_v += values[i];
      sum_t += positions[i];
    }
    p.value = sum_v / static_cast<double>(window);
    p.position = sum_t / static_cast<double>(window);
    out.push_back(p);
  }
  return out;
}

std::vector<MovingPoint> moving_average_by_time(std::span<const double> values,
                                                std::span<const double> positions,
                                                double start, double end,
                                                double width, double step) {
  TRUSTRATE_EXPECTS(values.size() == positions.size(),
                    "values and positions must pair up");
  TRUSTRATE_EXPECTS(width > 0.0 && step > 0.0, "width and step must be positive");
  std::vector<MovingPoint> out;
  for (double t0 = start; t0 < end; t0 += step) {
    const double t1 = t0 + width;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (positions[i] >= t0 && positions[i] < t1) {
        sum += values[i];
        ++n;
      }
    }
    if (n == 0) continue;
    out.push_back({t0 + width / 2.0, sum / static_cast<double>(n), n});
  }
  return out;
}

}  // namespace trustrate::stats
