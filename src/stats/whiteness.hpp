// Whiteness tests: is a series compatible with white noise?
//
// The paper's detector relies on the premise that honest de-meaned ratings
// are approximately white. These tests let us validate that premise (in
// tests and ablations) independently of the AR-model error.
#pragma once

#include <span>

namespace trustrate::stats {

/// Result of a hypothesis test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;  ///< probability of a statistic this extreme under H0
};

/// Ljung–Box portmanteau test on the first `lags` autocorrelations.
/// H0: the series is white. Small p-value => reject whiteness.
/// Requires xs.size() > static_cast<std::size_t>(lags) and lags >= 1.
TestResult ljung_box(std::span<const double> xs, int lags);

/// Turning-point test: counts local extrema; for an i.i.d. series the count
/// is asymptotically normal with mean 2(n-2)/3. Two-sided p-value.
/// Requires xs.size() >= 3.
TestResult turning_point(std::span<const double> xs);

}  // namespace trustrate::stats
