// Windowed / moving statistics used by the figures (moving average of
// ratings) and by detectors (per-window series extraction).
#pragma once

#include <span>
#include <vector>

namespace trustrate::stats {

/// One point of a moving-statistic series.
struct MovingPoint {
  double position = 0.0;  ///< window center (index- or time-domain)
  double value = 0.0;     ///< statistic over the window
  std::size_t count = 0;  ///< samples in the window
};

/// Moving average over count-based windows: each window holds `window`
/// consecutive samples and consecutive windows start `step` samples apart
/// (Fig. 4 of the paper uses window=20, step=10). `positions` gives the
/// x-coordinate of each sample (e.g. rating times); the emitted position is
/// the mean position inside the window. Windows that would run past the end
/// are dropped. Requires window >= 1, step >= 1, equal-length inputs.
std::vector<MovingPoint> moving_average_by_count(std::span<const double> values,
                                                 std::span<const double> positions,
                                                 std::size_t window,
                                                 std::size_t step);

/// Mean of `values` whose paired `positions` fall in [t0, t1); skips empty
/// windows (no point emitted). Windows advance by `step` from `start` while
/// window start < `end`.
std::vector<MovingPoint> moving_average_by_time(std::span<const double> values,
                                                std::span<const double> positions,
                                                double start, double end,
                                                double width, double step);

}  // namespace trustrate::stats
