// Special functions: log-gamma, regularized incomplete gamma/beta, and the
// beta distribution built on them. Hand-rolled (Lanczos + continued
// fractions, cf. Numerical Recipes) because the reproduction must not depend
// on external math libraries.
#pragma once

namespace trustrate::stats {

/// Natural log of the gamma function, x > 0.
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x); a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Chi-squared CDF with k degrees of freedom (k > 0, x >= 0).
double chi_squared_cdf(double x, double k);

/// Regularized incomplete beta I_x(a, b); a, b > 0, x in [0, 1].
double regularized_beta(double x, double a, double b);

/// Beta(a, b) distribution CDF at x in [0, 1].
double beta_cdf(double x, double a, double b);

/// Beta(a, b) distribution quantile (inverse CDF) for p in [0, 1].
/// Bisection refined with Newton steps; accurate to ~1e-10.
double beta_quantile(double p, double a, double b);

/// Standard normal CDF.
double normal_cdf(double x);

/// Standard normal PDF.
double normal_pdf(double x);

}  // namespace trustrate::stats
