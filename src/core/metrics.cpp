#include "core/metrics.hpp"

#include "common/error.hpp"

namespace trustrate::core {

double DetectionMetrics::detection_ratio() const {
  const std::size_t positives = true_positive + false_negative;
  if (positives == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(positives);
}

double DetectionMetrics::false_alarm_ratio() const {
  const std::size_t negatives = false_positive + true_negative;
  if (negatives == 0) return 0.0;
  return static_cast<double>(false_positive) / static_cast<double>(negatives);
}

DetectionMetrics& DetectionMetrics::operator+=(const DetectionMetrics& other) {
  true_positive += other.true_positive;
  false_positive += other.false_positive;
  false_negative += other.false_negative;
  true_negative += other.true_negative;
  return *this;
}

DetectionMetrics score_rating_flags(const RatingSeries& series,
                                    const std::vector<bool>& flagged) {
  TRUSTRATE_EXPECTS(series.size() == flagged.size(),
                    "flag vector must match series size");
  DetectionMetrics m;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const bool unfair = is_unfair(series[i].label);
    if (unfair && flagged[i]) ++m.true_positive;
    if (unfair && !flagged[i]) ++m.false_negative;
    if (!unfair && flagged[i]) ++m.false_positive;
    if (!unfair && !flagged[i]) ++m.true_negative;
  }
  return m;
}

DetectionMetrics score_rater_detection(const std::vector<RaterId>& all_raters,
                                       const std::unordered_set<RaterId>& truly_unfair,
                                       const std::unordered_set<RaterId>& detected) {
  DetectionMetrics m;
  for (RaterId id : all_raters) {
    const bool unfair = truly_unfair.contains(id);
    const bool flagged = detected.contains(id);
    if (unfair && flagged) ++m.true_positive;
    if (unfair && !flagged) ++m.false_negative;
    if (!unfair && flagged) ++m.false_positive;
    if (!unfair && !flagged) ++m.true_negative;
  }
  return m;
}

}  // namespace trustrate::core
