#include "core/marketplace_experiment.hpp"

#include "common/rng.hpp"

namespace trustrate::core {

SystemConfig default_marketplace_system_config() {
  SystemConfig cfg;
  cfg.enable_filter = true;
  cfg.filter.q = 0.02;         // paper uses 0.1; see EXPERIMENTS.md calibration
  cfg.filter.min_ratings = 5;

  cfg.enable_ar_detector = true;
  // The paper uses 10-day windows stepping by 5. With the attack interval
  // itself 10 days long, a window only aligns with the full attack when the
  // random attack offset happens to match the grid; 8-day windows stepping
  // by 2 always place one window (nearly) inside the attack, which removes
  // the alignment lottery (EXPERIMENTS.md calibration).
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.order = 4;
  // The paper's threshold is 0.02 on the residual-variance scale; our
  // beta-filter pass compresses the kept ratings' variance a little more
  // than theirs did, moving the honest/attack gap down to ~[0.015, 0.022)
  // (calibration in EXPERIMENTS.md).
  cfg.ar.error_threshold = 0.024;
  cfg.ar.scale = 1.0;

  // The paper uses b = 1 with an *unbounded* suspicion level
  // L = (1 - e)/threshold (tens per hit). Our level is bounded to (0, 1],
  // so the equivalent evidence weight moves into b.
  cfg.b = 10.0;

  // Record maintenance: exponential forgetting keeps trust tracking the
  // *recent* behaviour rate instead of lifetime totals; without it a
  // collaborative rater's accumulated honest evidence eventually outweighs
  // monthly attack hits and trust drifts back up ([8]'s fading scheme).
  cfg.forgetting = 0.95;

  cfg.malicious_threshold = 0.5;  // paper threshold_sus
  cfg.aggregator = agg::AggregatorKind::kModifiedWeightedAverage;
  return cfg;
}

MarketplaceExperimentResult run_marketplace_experiment(
    const MarketplaceExperimentConfig& config) {
  Rng rng(config.seed);
  const sim::MarketplaceResult market = sim::simulate_marketplace(config.market, rng);

  TrustEnhancedRatingSystem system(config.system);
  MarketplaceExperimentResult result;
  result.rater_kind = market.rater_kind;

  for (int month = 0; month < config.market.months; ++month) {
    // Assemble this month's observations.
    std::vector<ProductObservation> observations;
    std::vector<const sim::SimProduct*> products = market.products_in_month(month);
    observations.reserve(products.size());
    for (const sim::SimProduct* p : products) {
      observations.push_back({p->id, p->t_start, p->t_end, p->ratings});
    }

    const EpochReport report = system.process_epoch(observations);

    // Aggregated ratings for this month's products, with this month's trust.
    for (const sim::SimProduct* p : products) {
      if (p->ratings.empty()) continue;
      ProductAggregate agg;
      agg.id = p->id;
      agg.dishonest = p->dishonest;
      agg.quality = p->quality;
      agg.simple_average =
          system.aggregate_with(p->ratings, agg::AggregatorKind::kSimpleAverage);
      agg.beta_function =
          system.aggregate_with(p->ratings, agg::AggregatorKind::kBetaFunction);
      agg.weighted = system.aggregate_with(
          p->ratings, agg::AggregatorKind::kModifiedWeightedAverage);
      result.aggregates.push_back(agg);
    }

    // Population statistics.
    MonthlyStats stats;
    stats.month = month + 1;
    stats.window_metrics = report.rating_metrics;

    // Rater-level reading of Fig. 9: a rating is flagged when its rater is
    // currently below the malicious-trust threshold. Fair ratings submitted
    // by potential-collaborative raters are excluded from the false-alarm
    // denominator: flagging an attacker's off-duty ratings is not an alarm.
    for (const sim::SimProduct* p : products) {
      for (const Rating& r : p->ratings) {
        const bool flagged =
            system.trust(r.rater) < config.system.malicious_threshold;
        if (is_unfair(r.label)) {
          if (flagged) {
            ++stats.rating_metrics.true_positive;
          } else {
            ++stats.rating_metrics.false_negative;
          }
        } else if (market.rater_kind[r.rater] !=
                   sim::RaterKind::kPotentialCollaborative) {
          if (flagged) {
            ++stats.rating_metrics.false_positive;
          } else {
            ++stats.rating_metrics.true_negative;
          }
        }
      }
    }

    double sum_reliable = 0.0;
    double sum_careless = 0.0;
    double sum_pc = 0.0;
    std::size_t n_reliable = 0;
    std::size_t n_careless = 0;
    std::size_t n_pc = 0;
    std::size_t flagged_reliable = 0;
    std::size_t flagged_careless = 0;
    std::size_t flagged_pc = 0;
    const double threshold = config.system.malicious_threshold;
    for (RaterId id = 0; id < market.rater_count(); ++id) {
      const double trust = system.trust(id);
      const bool flagged = trust < threshold;
      switch (market.rater_kind[id]) {
        case sim::RaterKind::kReliable:
          sum_reliable += trust;
          ++n_reliable;
          flagged_reliable += flagged ? 1 : 0;
          break;
        case sim::RaterKind::kCareless:
          sum_careless += trust;
          ++n_careless;
          flagged_careless += flagged ? 1 : 0;
          break;
        case sim::RaterKind::kPotentialCollaborative:
          sum_pc += trust;
          ++n_pc;
          flagged_pc += flagged ? 1 : 0;
          break;
      }
    }
    if (n_reliable > 0) {
      stats.mean_trust_reliable = sum_reliable / static_cast<double>(n_reliable);
      stats.false_alarm_reliable =
          static_cast<double>(flagged_reliable) / static_cast<double>(n_reliable);
    }
    if (n_careless > 0) {
      stats.mean_trust_careless = sum_careless / static_cast<double>(n_careless);
      stats.false_alarm_careless =
          static_cast<double>(flagged_careless) / static_cast<double>(n_careless);
    }
    if (n_pc > 0) {
      stats.mean_trust_pc = sum_pc / static_cast<double>(n_pc);
      stats.detection_pc =
          static_cast<double>(flagged_pc) / static_cast<double>(n_pc);
    }
    result.months.push_back(stats);
  }

  result.final_trust.reserve(market.rater_count());
  for (RaterId id = 0; id < market.rater_count(); ++id) {
    result.final_trust.push_back(system.trust(id));
  }
  return result;
}

}  // namespace trustrate::core
