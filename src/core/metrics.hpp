// Evaluation metrics: detection ratio and false-alarm ratio, computed from
// ground-truth labels carried by simulated ratings/raters.
#pragma once

#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace trustrate::core {

/// Binary confusion counts.
struct DetectionMetrics {
  std::size_t true_positive = 0;   ///< unfair, flagged
  std::size_t false_positive = 0;  ///< fair, flagged
  std::size_t false_negative = 0;  ///< unfair, missed
  std::size_t true_negative = 0;   ///< fair, passed

  /// TP / (TP + FN); 0 when there are no positives.
  double detection_ratio() const;

  /// FP / (FP + TN); 0 when there are no negatives.
  double false_alarm_ratio() const;

  /// Merges another confusion table into this one.
  DetectionMetrics& operator+=(const DetectionMetrics& other);
};

/// Scores per-rating flags against the series' ground-truth labels.
/// `flagged[i]` says rating i was marked unfair. Sizes must match.
DetectionMetrics score_rating_flags(const RatingSeries& series,
                                    const std::vector<bool>& flagged);

/// Scores rater-level detection: `detected` against the ground-truth set of
/// unfair raters, over the universe `all_raters`.
DetectionMetrics score_rater_detection(const std::vector<RaterId>& all_raters,
                                       const std::unordered_set<RaterId>& truly_unfair,
                                       const std::unordered_set<RaterId>& detected);

}  // namespace trustrate::core
