// Detector evaluation utilities: ROC curves and area-under-curve over a
// threshold sweep. Factored out of the ablation benches so downstream
// users can calibrate the detector on their own labelled data.
#pragma once

#include <functional>
#include <vector>

#include "core/metrics.hpp"

namespace trustrate::core {

/// One operating point of a detector.
struct RocPoint {
  double threshold = 0.0;
  double detection = 0.0;    ///< true-positive rate
  double false_alarm = 0.0;  ///< false-positive rate
};

/// Evaluates `score_at` (threshold -> confusion counts) at each threshold
/// and returns the operating points in the given threshold order.
std::vector<RocPoint> roc_curve(
    const std::vector<double>& thresholds,
    const std::function<DetectionMetrics(double)>& score_at);

/// Area under the ROC curve by trapezoidal integration over false-alarm
/// rate, with the (0,0) and (1,1) endpoints added. Points may be given in
/// any order. Returns a value in [0, 1]; 0.5 = chance. Requires at least
/// one point.
double roc_auc(std::vector<RocPoint> points);

/// The point with the highest Youden index (detection − false_alarm) — a
/// standard automatic threshold choice. Requires a non-empty curve.
RocPoint best_youden(const std::vector<RocPoint>& points);

}  // namespace trustrate::core
