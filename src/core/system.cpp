#include "core/system.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/parallel/epoch_engine.hpp"

namespace trustrate::core {

TrustEnhancedRatingSystem::TrustEnhancedRatingSystem(SystemConfig config)
    : config_(config), filter_(config.filter), detector_(config.ar),
      engine_(std::make_unique<parallel::EpochEngine>(config.epoch_workers)) {
  TRUSTRATE_EXPECTS(config_.b >= 0.0, "Procedure 2 parameter b must be >= 0");
  TRUSTRATE_EXPECTS(config_.forgetting > 0.0 && config_.forgetting <= 1.0,
                    "forgetting factor must be in (0, 1]");
  TRUSTRATE_EXPECTS(config_.malicious_threshold > 0.0 &&
                        config_.malicious_threshold < 1.0,
                    "malicious threshold must be in (0, 1)");
}

TrustEnhancedRatingSystem::~TrustEnhancedRatingSystem() = default;

// Moves are member-wise except for the trust-store observer, which captures
// `this` (wire_store_observer) and must be re-bound to the new address.
TrustEnhancedRatingSystem::TrustEnhancedRatingSystem(
    TrustEnhancedRatingSystem&& other) noexcept
    : config_(other.config_),
      filter_(std::move(other.filter_)),
      detector_(std::move(other.detector_)),
      engine_(std::move(other.engine_)),
      store_(std::move(other.store_)),
      recommendations_(std::move(other.recommendations_)),
      epochs_(other.epochs_),
      obs_(other.obs_),
      epoch_seconds_(other.epoch_seconds_),
      analyze_seconds_(other.analyze_seconds_),
      trust_update_seconds_(other.trust_update_seconds_),
      suspicious_intervals_(other.suspicious_intervals_),
      trust_demotions_(other.trust_demotions_),
      trust_transitions_(std::move(other.trust_transitions_)) {
  wire_store_observer();
}

TrustEnhancedRatingSystem& TrustEnhancedRatingSystem::operator=(
    TrustEnhancedRatingSystem&& other) noexcept {
  if (this != &other) {
    config_ = other.config_;
    filter_ = std::move(other.filter_);
    detector_ = std::move(other.detector_);
    engine_ = std::move(other.engine_);
    store_ = std::move(other.store_);
    recommendations_ = std::move(other.recommendations_);
    epochs_ = other.epochs_;
    obs_ = other.obs_;
    epoch_seconds_ = other.epoch_seconds_;
    analyze_seconds_ = other.analyze_seconds_;
    trust_update_seconds_ = other.trust_update_seconds_;
    suspicious_intervals_ = other.suspicious_intervals_;
    trust_demotions_ = other.trust_demotions_;
    trust_transitions_ = std::move(other.trust_transitions_);
    wire_store_observer();
  }
  return *this;
}

EpochReport TrustEnhancedRatingSystem::process_epoch(
    std::span<const ProductObservation> observations) {
  const auto epoch_ordinal = static_cast<std::uint64_t>(epochs_) + 1;
  const obs::SpanTimer epoch_span(obs_.trace, "epoch.process", epoch_ordinal);
  const std::uint64_t epoch_t0 =
      epoch_seconds_ != nullptr ? obs::monotonic_ns() : 0;
  // Stage 1 — independent per-product analysis (filter → Procedure 1 →
  // flags), sharded across the epoch engine. Slot i of `products` holds
  // observation i's report regardless of which worker computed it. The
  // stage never reads the trust store, so the evidence fade can happen in
  // the merge half below with identical results.
  const parallel::StageContext ctx{&config_, &filter_, &detector_, &obs_};
  std::vector<ProductReport> products;
  {
    const obs::SpanTimer span(obs_.trace, "epoch.analyze", epoch_ordinal);
    const std::uint64_t t0 =
        analyze_seconds_ != nullptr ? obs::monotonic_ns() : 0;
    products = engine_->analyze(observations, ctx);
    if (analyze_seconds_ != nullptr) {
      analyze_seconds_->observe(
          static_cast<double>(obs::monotonic_ns() - t0) * 1e-9);
    }
  }

  EpochReport report =
      merge_epoch_impl(epoch_ordinal, observations, std::move(products));
  if (epoch_seconds_ != nullptr) {
    epoch_seconds_->observe(
        static_cast<double>(obs::monotonic_ns() - epoch_t0) * 1e-9);
  }
  return report;
}

EpochReport TrustEnhancedRatingSystem::merge_epoch(
    std::span<const ProductObservation> observations,
    std::vector<ProductReport> products) {
  TRUSTRATE_EXPECTS(products.size() == observations.size(),
                    "merge_epoch: one report per observation required");
  const auto epoch_ordinal = static_cast<std::uint64_t>(epochs_) + 1;
  const obs::SpanTimer epoch_span(obs_.trace, "epoch.merge", epoch_ordinal);
  return merge_epoch_impl(epoch_ordinal, observations, std::move(products));
}

EpochReport TrustEnhancedRatingSystem::merge_epoch_impl(
    std::uint64_t epoch_ordinal, std::span<const ProductObservation> observations,
    std::vector<ProductReport> products) {
  EpochReport report;

  // Record maintenance: fade old evidence before folding in the new epoch.
  if (config_.forgetting < 1.0) store_.fade_all(config_.forgetting);

  // Stage 2 — deterministic merge in input-slot order. Every accumulation
  // below (metrics, per-rater n/f/s/C) runs in exactly the order of the
  // serial loop, so the report and the trust store are bitwise-identical
  // at any worker count.
  std::unordered_map<RaterId, trust::EpochObservation> epoch_obs;
  // Per-product suspicion contributions are summed *canonically* (sorted
  // ascending) per rater, not in product order: C(i) is then invariant under
  // any relabeling of product IDs (which reorders the epoch's products),
  // not just order-preserving ones — one of the metamorphic guarantees
  // src/testkit checks. Counters are integers and need no such care.
  std::unordered_map<RaterId, std::vector<double>> suspicion_terms;
  for (std::size_t slot = 0; slot < observations.size(); ++slot) {
    const ProductObservation& obs = observations[slot];
    ProductReport& pr = products[slot];
    const RatingSeries& detector_input =
        config_.detector_on_filtered ? pr.kept : obs.ratings;

    report.detector_degraded |= pr.detector_degraded;
    report.rating_metrics += score_rating_flags(obs.ratings, pr.flagged);

    // Observation buffer: accumulate n / f / s / C per rater.
    for (const Rating& r : obs.ratings) {
      ++epoch_obs[r.rater].ratings;
    }
    for (std::size_t i : pr.filter_outcome.removed) {
      ++epoch_obs[obs.ratings[i].rater].filtered;
    }
    // s_i counts *ratings* inside suspicious windows (per product).
    for (std::size_t k = 0; k < detector_input.size(); ++k) {
      if (pr.suspicion.in_suspicious_window[k]) {
        ++epoch_obs[detector_input[k].rater].suspicious;
      }
    }
    for (const auto& [rater, c] : pr.suspicion.suspicion) {
      suspicion_terms[rater].push_back(c);
    }

    report.products.push_back(std::move(pr));
  }
  for (auto& [rater, terms] : suspicion_terms) {
    std::sort(terms.begin(), terms.end());
    double sum = 0.0;
    for (const double term : terms) sum += term;
    epoch_obs[rater].suspicion_value = sum;
  }

  // Procedure 2: one trust update per active rater.
  trust_transitions_.clear();
  {
    const obs::SpanTimer span(obs_.trace, "epoch.trust_update", epoch_ordinal);
    const std::uint64_t t0 =
        trust_update_seconds_ != nullptr ? obs::monotonic_ns() : 0;
    for (const auto& [rater, obs] : epoch_obs) {
      store_.update(rater, obs, config_.b);
    }
    if (trust_update_seconds_ != nullptr) {
      trust_update_seconds_->observe(
          static_cast<double>(obs::monotonic_ns() - t0) * 1e-9);
    }
  }
  ++epochs_;
  if (obs_.enabled()) {
    finish_epoch_observability(epoch_ordinal, report, observations, epoch_obs);
  }
  return report;
}

void TrustEnhancedRatingSystem::set_observability(const obs::Observability& o) {
  obs_ = o;
  filter_.set_observability(o);
  detector_.set_observability(o);
  if (o.metrics != nullptr) {
    epoch_seconds_ = &o.metrics->histogram(
        "trustrate_epoch_process_seconds", obs::default_seconds_buckets(),
        "Full process_epoch wall time");
    analyze_seconds_ = &o.metrics->histogram(
        "trustrate_epoch_analyze_seconds", obs::default_seconds_buckets(),
        "Per-product analysis stage (filter + AR sweep) wall time");
    trust_update_seconds_ = &o.metrics->histogram(
        "trustrate_epoch_trust_update_seconds", obs::default_seconds_buckets(),
        "Procedure-2 trust update stage wall time");
    suspicious_intervals_ = &o.metrics->counter(
        "trustrate_suspicious_intervals_total",
        "Suspicious window runs opened by Procedure 1");
    trust_demotions_ = &o.metrics->counter(
        "trustrate_trust_demotions_total",
        "Raters whose trust crossed below the malicious threshold");
  } else {
    epoch_seconds_ = nullptr;
    analyze_seconds_ = nullptr;
    trust_update_seconds_ = nullptr;
    suspicious_intervals_ = nullptr;
    trust_demotions_ = nullptr;
  }
  wire_store_observer();
}

void TrustEnhancedRatingSystem::wire_store_observer() {
  if (obs_.enabled()) {
    store_.set_update_observer([this](RaterId id, double before, double after) {
      trust_transitions_.push_back({id, before, after});
    });
  } else {
    store_.set_update_observer({});
  }
}

void TrustEnhancedRatingSystem::finish_epoch_observability(
    std::uint64_t epoch_ordinal, const EpochReport& report,
    std::span<const ProductObservation> observations,
    const std::unordered_map<RaterId, trust::EpochObservation>& epoch_obs) {
  const double threshold = config_.ar.error_threshold;

  // Per product (input-slot order): filtered ratings, then suspicious
  // window runs. Both streams are deterministic — slot order is the
  // epoch's canonical product order and windows are time-ordered.
  for (std::size_t slot = 0; slot < report.products.size(); ++slot) {
    const ProductReport& pr = report.products[slot];
    const ProductObservation& po = observations[slot];
    if (obs_.audit != nullptr) {
      for (const std::size_t i : pr.filter_outcome.removed) {
        obs::AuditEvent e;
        e.type = obs::AuditEventType::kRatingFiltered;
        e.epoch = epoch_ordinal;
        e.rater = po.ratings[i].rater;
        e.product = pr.product;
        e.value = po.ratings[i].value;
        obs_.audit->record(e);
      }
    }
    // A suspicious *interval* opens at each evaluated-window transition
    // into suspicion (the run bookkeeping of Procedure 1, DESIGN.md §6).
    bool prev_suspicious = false;
    for (const detect::WindowReport& w : pr.suspicion.windows) {
      if (!w.evaluated) continue;
      if (w.suspicious && !prev_suspicious) {
        if (suspicious_intervals_ != nullptr) suspicious_intervals_->add();
        if (obs_.audit != nullptr) {
          obs::AuditEvent e;
          e.type = obs::AuditEventType::kSuspiciousInterval;
          e.epoch = epoch_ordinal;
          e.product = pr.product;
          e.window_start = w.window.start;
          e.window_end = w.window.end;
          e.model_error = w.model_error;
          e.threshold = threshold;
          e.value = w.level;
          obs_.audit->record(e);
        }
      }
      prev_suspicious = w.suspicious;
    }
  }

  // C(i) increments, rater-sorted: the soft-evidence half of Procedure 2,
  // with the epoch's hard counts in `detail` so the update is replayable
  // from the log alone.
  if (obs_.audit != nullptr) {
    std::vector<RaterId> raters;
    for (const auto& [rater, o] : epoch_obs) {
      if (o.suspicion_value > 0.0) raters.push_back(rater);
    }
    std::sort(raters.begin(), raters.end());
    for (const RaterId rater : raters) {
      const trust::EpochObservation& o = epoch_obs.at(rater);
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kSuspicionIncrement;
      e.epoch = epoch_ordinal;
      e.rater = rater;
      e.value = o.suspicion_value;
      e.detail = "n=" + std::to_string(o.ratings) +
                 " f=" + std::to_string(o.filtered) +
                 " s=" + std::to_string(o.suspicious);
      obs_.audit->record(e);
    }
  }

  // Trust demotions, rater-sorted: Procedure-2 updates that moved a rater
  // from at-or-above the malicious threshold to below it.
  std::sort(trust_transitions_.begin(), trust_transitions_.end(),
            [](const TrustTransition& a, const TrustTransition& b) {
              return a.rater < b.rater;
            });
  for (const TrustTransition& t : trust_transitions_) {
    if (!(t.before >= config_.malicious_threshold &&
          t.after < config_.malicious_threshold)) {
      continue;
    }
    if (trust_demotions_ != nullptr) trust_demotions_->add();
    if (obs_.audit != nullptr) {
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kTrustDemotion;
      e.epoch = epoch_ordinal;
      e.rater = t.rater;
      e.threshold = config_.malicious_threshold;
      e.value = t.after;
      e.detail = "before=" + std::to_string(t.before);
      obs_.audit->record(e);
    }
  }
  trust_transitions_.clear();
}

std::vector<RaterId> TrustEnhancedRatingSystem::malicious() const {
  return store_.below(config_.malicious_threshold);
}

double TrustEnhancedRatingSystem::aggregate(const RatingSeries& ratings) const {
  return aggregate_with(ratings, config_.aggregator);
}

double TrustEnhancedRatingSystem::aggregate_with(const RatingSeries& ratings,
                                                 agg::AggregatorKind kind) const {
  TRUSTRATE_EXPECTS(!ratings.empty(), "cannot aggregate an empty series");

  // Apply the filter first (the aggregator only sees normal ratings).
  RatingSeries kept = config_.enable_filter
                          ? filter_.filter(ratings).kept_series(ratings)
                          : ratings;
  if (kept.empty()) kept = ratings;  // filter nuked everything: fall back

  // One rating per rater: average multiple ratings from the same rater.
  std::unordered_map<RaterId, std::pair<double, std::size_t>> per_rater;
  for (const Rating& r : kept) {
    auto& [sum, count] = per_rater[r.rater];
    sum += r.value;
    ++count;
  }
  std::vector<agg::TrustedRating> trusted;
  trusted.reserve(per_rater.size());
  for (const auto& [rater, sum_count] : per_rater) {
    trusted.push_back({sum_count.first / static_cast<double>(sum_count.second),
                       store_.trust(rater)});
  }
  return agg::make_aggregator(kind)->aggregate(trusted);
}

void TrustEnhancedRatingSystem::restore(trust::TrustStore store,
                                        std::size_t epochs_processed) {
  store_ = std::move(store);
  epochs_ = epochs_processed;
  // The moved-in store has no observer; re-attach ours (the hook is not
  // checkpoint state — see TrustStore::set_update_observer).
  wire_store_observer();
}

void TrustEnhancedRatingSystem::add_recommendation(const trust::Recommendation& rec) {
  recommendations_.add(rec);
}

double TrustEnhancedRatingSystem::combined_trust(RaterId id) const {
  return trust::combined_trust(store_, recommendations_, id);
}

}  // namespace trustrate::core
