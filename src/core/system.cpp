#include "core/system.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/parallel/epoch_engine.hpp"

namespace trustrate::core {

TrustEnhancedRatingSystem::TrustEnhancedRatingSystem(SystemConfig config)
    : config_(config), filter_(config.filter), detector_(config.ar),
      engine_(std::make_unique<parallel::EpochEngine>(config.epoch_workers)) {
  TRUSTRATE_EXPECTS(config_.b >= 0.0, "Procedure 2 parameter b must be >= 0");
  TRUSTRATE_EXPECTS(config_.forgetting > 0.0 && config_.forgetting <= 1.0,
                    "forgetting factor must be in (0, 1]");
  TRUSTRATE_EXPECTS(config_.malicious_threshold > 0.0 &&
                        config_.malicious_threshold < 1.0,
                    "malicious threshold must be in (0, 1)");
}

TrustEnhancedRatingSystem::~TrustEnhancedRatingSystem() = default;
TrustEnhancedRatingSystem::TrustEnhancedRatingSystem(
    TrustEnhancedRatingSystem&&) noexcept = default;
TrustEnhancedRatingSystem& TrustEnhancedRatingSystem::operator=(
    TrustEnhancedRatingSystem&&) noexcept = default;

EpochReport TrustEnhancedRatingSystem::process_epoch(
    std::span<const ProductObservation> observations) {
  EpochReport report;

  // Record maintenance: fade old evidence before folding in the new epoch.
  if (config_.forgetting < 1.0) store_.fade_all(config_.forgetting);

  // Stage 1 — independent per-product analysis (filter → Procedure 1 →
  // flags), sharded across the epoch engine. Slot i of `products` holds
  // observation i's report regardless of which worker computed it.
  const parallel::StageContext ctx{&config_, &filter_, &detector_};
  std::vector<ProductReport> products = engine_->analyze(observations, ctx);

  // Stage 2 — deterministic merge in input-slot order. Every accumulation
  // below (metrics, per-rater n/f/s/C) runs in exactly the order of the
  // serial loop, so the report and the trust store are bitwise-identical
  // at any worker count.
  std::unordered_map<RaterId, trust::EpochObservation> epoch_obs;
  // Per-product suspicion contributions are summed *canonically* (sorted
  // ascending) per rater, not in product order: C(i) is then invariant under
  // any relabeling of product IDs (which reorders the epoch's products),
  // not just order-preserving ones — one of the metamorphic guarantees
  // src/testkit checks. Counters are integers and need no such care.
  std::unordered_map<RaterId, std::vector<double>> suspicion_terms;
  for (std::size_t slot = 0; slot < observations.size(); ++slot) {
    const ProductObservation& obs = observations[slot];
    ProductReport& pr = products[slot];
    const RatingSeries& detector_input =
        config_.detector_on_filtered ? pr.kept : obs.ratings;

    report.detector_degraded |= pr.detector_degraded;
    report.rating_metrics += score_rating_flags(obs.ratings, pr.flagged);

    // Observation buffer: accumulate n / f / s / C per rater.
    for (const Rating& r : obs.ratings) {
      ++epoch_obs[r.rater].ratings;
    }
    for (std::size_t i : pr.filter_outcome.removed) {
      ++epoch_obs[obs.ratings[i].rater].filtered;
    }
    // s_i counts *ratings* inside suspicious windows (per product).
    for (std::size_t k = 0; k < detector_input.size(); ++k) {
      if (pr.suspicion.in_suspicious_window[k]) {
        ++epoch_obs[detector_input[k].rater].suspicious;
      }
    }
    for (const auto& [rater, c] : pr.suspicion.suspicion) {
      suspicion_terms[rater].push_back(c);
    }

    report.products.push_back(std::move(pr));
  }
  for (auto& [rater, terms] : suspicion_terms) {
    std::sort(terms.begin(), terms.end());
    double sum = 0.0;
    for (const double term : terms) sum += term;
    epoch_obs[rater].suspicion_value = sum;
  }

  // Procedure 2: one trust update per active rater.
  for (const auto& [rater, obs] : epoch_obs) {
    store_.update(rater, obs, config_.b);
  }
  ++epochs_;
  return report;
}

std::vector<RaterId> TrustEnhancedRatingSystem::malicious() const {
  return store_.below(config_.malicious_threshold);
}

double TrustEnhancedRatingSystem::aggregate(const RatingSeries& ratings) const {
  return aggregate_with(ratings, config_.aggregator);
}

double TrustEnhancedRatingSystem::aggregate_with(const RatingSeries& ratings,
                                                 agg::AggregatorKind kind) const {
  TRUSTRATE_EXPECTS(!ratings.empty(), "cannot aggregate an empty series");

  // Apply the filter first (the aggregator only sees normal ratings).
  RatingSeries kept = config_.enable_filter
                          ? filter_.filter(ratings).kept_series(ratings)
                          : ratings;
  if (kept.empty()) kept = ratings;  // filter nuked everything: fall back

  // One rating per rater: average multiple ratings from the same rater.
  std::unordered_map<RaterId, std::pair<double, std::size_t>> per_rater;
  for (const Rating& r : kept) {
    auto& [sum, count] = per_rater[r.rater];
    sum += r.value;
    ++count;
  }
  std::vector<agg::TrustedRating> trusted;
  trusted.reserve(per_rater.size());
  for (const auto& [rater, sum_count] : per_rater) {
    trusted.push_back({sum_count.first / static_cast<double>(sum_count.second),
                       store_.trust(rater)});
  }
  return agg::make_aggregator(kind)->aggregate(trusted);
}

void TrustEnhancedRatingSystem::restore(trust::TrustStore store,
                                        std::size_t epochs_processed) {
  store_ = std::move(store);
  epochs_ = epochs_processed;
}

void TrustEnhancedRatingSystem::add_recommendation(const trust::Recommendation& rec) {
  recommendations_.add(rec);
}

double TrustEnhancedRatingSystem::combined_trust(RaterId id) const {
  return trust::combined_trust(store_, recommendations_, id);
}

}  // namespace trustrate::core
