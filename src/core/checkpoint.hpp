// Streaming checkpoint/recovery (extension beyond the paper).
//
// The trust store alone (trust/store_io.hpp) is not enough to restart a
// deployed StreamingRatingSystem: mid-epoch state — the epoch anchor, the
// reorder buffer, per-product pending and retained series, ingestion
// counters — would be lost, and the restarted process would diverge from
// the uninterrupted run. save_checkpoint captures the *complete* streaming
// state; load_checkpoint restores it so the resumed stream reproduces the
// uninterrupted run's trust values and aggregates exactly.
//
// Format: a versioned, line-oriented text file. The header is
// `trustrate-checkpoint <version>`; unknown versions are rejected with
// CheckpointError. Floating-point state is serialized as C hexfloats
// (`%a`), so every double round-trips bit-exactly — "resume equals rerun"
// is an equality, not an approximation.
//
// Version 3 added integrity and completeness (DESIGN.md §10): every
// section is followed by a `crc <name> <hex8>` line carrying the CRC32C of
// the section's exact bytes, and a `filecrc <hex8>` line before the
// trailing `end` covers the whole file — any single corrupted byte is
// detected at load and reported with its line number, never silently
// restored. v3 also persists each quarantined rating's human-readable
// `detail` string (percent-escaped into one token); v1/v2 dropped it.
//
// Version 4 (sharded engine, DESIGN.md §14) keeps every global section of
// v3 byte-for-byte — the classifier front door, stats, health, the merged
// dead-letter list — and replaces the global `pending`/`retained` sections
// with a `layout` section (shard count + per-shard skipped-cell counters)
// followed by one `shard <k>` section per shard holding that shard's
// pending/retained partition, each with its own CRC. Loading always
// reassembles the global view first and re-partitions under the *target*
// layout, so a v3 checkpoint loads into a sharded system, a v4 checkpoint
// loads into a plain stream, and a v4 written at N shards resumes at M —
// all bit-exactly (per-shard skipped-cell counters are layout-scoped
// diagnostics: they restore only when the shard count matches, and reset
// to zero otherwise).
//
// Older versions still load (v1/v2 have no checksums to verify, details
// restore empty).
//
// Not captured: the SystemConfig (the caller re-supplies it — configs hold
// enums and nested structs whose wire format would outgrow this layer) and
// the recommendation buffer (rater-on-rater feedback is not streaming
// state).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "core/streaming.hpp"

namespace trustrate::core {

/// Checkpoint format version written for a plain (unsharded) stream.
/// Version 2 added the skipped-empty-epoch counter to the anchor line;
/// version 3 added per-section and whole-file CRC32C checksums plus the
/// quarantined-rating detail string. Note the parallel epoch engine's
/// worker count is deliberately NOT part of the format — it is
/// configuration (SystemConfig::epoch_workers, re-supplied by the caller),
/// and results are worker-count-invariant, so a checkpoint taken at 8
/// workers resumes bit-exactly at 1 and vice versa.
inline constexpr int kCheckpointVersion = 3;

/// Checkpoint format version written for a sharded system (per-shard
/// pending/retained sections + layout). The shard count, like the worker
/// count, is layout — results are shard-count-invariant — but v4 frames
/// the partitions separately so each shard's section carries its own CRC.
inline constexpr int kShardedCheckpointVersion = 4;

/// The complete streaming state as plain data — the meeting point of every
/// checkpoint path. take_snapshot/restore_stream convert to and from a
/// live StreamingRatingSystem; the sharded engine (core/shard) converts to
/// and from its partitioned state; parse_checkpoint/write_checkpoint
/// convert to and from checkpoint bytes of any supported version. All
/// collections are held in their canonical (wire) order.
struct StreamSnapshot {
  // `config` section.
  double epoch_days = 30.0;
  std::size_t retention_epochs = 2;
  IngestConfig ingest_config;

  // `anchor` section.
  bool anchored = false;
  double epoch_start = 0.0;
  double last_time = 0.0;
  std::size_t epochs_closed = 0;
  std::size_t skipped_empty_epochs = 0;
  std::size_t system_epochs = 0;

  // `stats` / `health` sections.
  IngestStats stats;
  std::vector<EpochHealth> health;

  // `ingest` section: classifier state plus the dead-letter list in global
  // arrival order (a sharded system merges its per-shard stores by their
  // global dead-letter ordinal before snapshotting).
  bool ingest_anchored = false;
  double ingest_max_time = 0.0;
  std::vector<Rating> buffer;  ///< time order, ties in insertion order
  std::vector<IngestBuffer::SeenKey> seen;
  std::vector<QuarantinedRating> quarantine;

  // `pending` / `retained` sections (or their union across `shard <k>`
  // sections), keyed in sorted product order.
  std::map<ProductId, RatingSeries> pending;
  std::map<ProductId, std::vector<RatingSeries>> retained;

  // `trust` section, sorted by rater.
  std::vector<std::pair<RaterId, trust::TrustRecord>> trust;

  // `layout` section (v4 only). shards == 0 marks an unsharded snapshot;
  // shard_skipped_cells has one entry per shard when shards > 0.
  std::size_t shards = 0;
  std::vector<std::size_t> shard_skipped_cells;
};

/// Copies a stream's complete state out (read-only; the stream is intact).
StreamSnapshot take_snapshot(const StreamingRatingSystem& stream);

/// Builds a live stream from a snapshot. `config` is the pipeline
/// configuration, as with load_checkpoint. Sharded-layout fields are
/// ignored (the global sections already hold the union).
StreamingRatingSystem restore_stream(const StreamSnapshot& snapshot,
                                     const SystemConfig& config);

/// Parses checkpoint bytes of any supported version (1–4) into a snapshot,
/// verifying every checksum first for v3+. Throws CheckpointError with the
/// offending line on truncation, corruption, or an unknown version.
StreamSnapshot parse_checkpoint(const std::string& text);

/// Renders a snapshot as checkpoint bytes. `version` must be
/// kCheckpointVersion (global pending/retained sections; any shard layout
/// is collapsed) or kShardedCheckpointVersion (layout + per-shard
/// sections; an unsharded snapshot writes as one shard). Deterministic:
/// equal snapshots produce byte-identical output.
void write_checkpoint(const StreamSnapshot& snapshot, int version,
                      std::ostream& out);

/// Writes the complete streaming state (version kCheckpointVersion).
/// Deterministic: products and raters are sorted, so equal states produce
/// byte-identical checkpoints.
void save_checkpoint(const StreamingRatingSystem& stream, std::ostream& out);

/// Restores a stream from a checkpoint written by save_checkpoint (or from
/// a v4 sharded checkpoint, whose partitions are merged). `config` must be
/// the pipeline configuration the checkpointed system ran with (epoch
/// length, retention, and ingestion settings come from the checkpoint
/// itself). Throws CheckpointError on a truncated, corrupted, or
/// version-mismatched checkpoint.
StreamingRatingSystem load_checkpoint(std::istream& in,
                                      const SystemConfig& config);

}  // namespace trustrate::core
