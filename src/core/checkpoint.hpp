// Streaming checkpoint/recovery (extension beyond the paper).
//
// The trust store alone (trust/store_io.hpp) is not enough to restart a
// deployed StreamingRatingSystem: mid-epoch state — the epoch anchor, the
// reorder buffer, per-product pending and retained series, ingestion
// counters — would be lost, and the restarted process would diverge from
// the uninterrupted run. save_checkpoint captures the *complete* streaming
// state; load_checkpoint restores it so the resumed stream reproduces the
// uninterrupted run's trust values and aggregates exactly.
//
// Format: a versioned, line-oriented text file. The header is
// `trustrate-checkpoint <version>`; unknown versions are rejected with
// CheckpointError. Floating-point state is serialized as C hexfloats
// (`%a`), so every double round-trips bit-exactly — "resume equals rerun"
// is an equality, not an approximation.
//
// Version 3 (current) adds integrity and completeness (DESIGN.md §10):
// every section is followed by a `crc <name> <hex8>` line carrying the
// CRC32C of the section's exact bytes, and a `filecrc <hex8>` line before
// the trailing `end` covers the whole file — any single corrupted byte is
// detected at load and reported with its line number, never silently
// restored. v3 also persists each quarantined rating's human-readable
// `detail` string (percent-escaped into one token); v1/v2 dropped it.
// Older versions still load (no checksums to verify, detail restored
// empty).
//
// Not captured: the SystemConfig (the caller re-supplies it — configs hold
// enums and nested structs whose wire format would outgrow this layer) and
// the recommendation buffer (rater-on-rater feedback is not streaming
// state).
#pragma once

#include <iosfwd>

#include "core/streaming.hpp"

namespace trustrate::core {

/// Current checkpoint format version. Version 2 added the skipped-empty-
/// epoch counter to the anchor line; version 3 added per-section and
/// whole-file CRC32C checksums plus the quarantined-rating detail string.
/// Version-1/2 checkpoints still load (the counter defaults to 0, details
/// restore empty, nothing is checksum-verified). Note the parallel epoch
/// engine's worker count is deliberately NOT part of the format — it is
/// configuration (SystemConfig::epoch_workers, re-supplied by the caller),
/// and results are worker-count-invariant, so a checkpoint taken at 8
/// workers resumes bit-exactly at 1 and vice versa.
inline constexpr int kCheckpointVersion = 3;

/// Writes the complete streaming state. Deterministic: products and raters
/// are sorted, so equal states produce byte-identical checkpoints.
void save_checkpoint(const StreamingRatingSystem& stream, std::ostream& out);

/// Restores a stream from a checkpoint written by save_checkpoint. `config`
/// must be the pipeline configuration the checkpointed system ran with
/// (epoch length, retention, and ingestion settings come from the
/// checkpoint itself). Throws CheckpointError on a truncated, corrupted,
/// or version-mismatched checkpoint.
StreamingRatingSystem load_checkpoint(std::istream& in,
                                      const SystemConfig& config);

}  // namespace trustrate::core
