#include "core/ingest.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace trustrate::core {

const char* to_string(IngestClass c) {
  switch (c) {
    case IngestClass::kAccepted:  return "accepted";
    case IngestClass::kReordered: return "reordered";
    case IngestClass::kDuplicate: return "duplicate";
    case IngestClass::kLate:      return "late";
    case IngestClass::kMalformed: return "malformed";
  }
  return "unknown";
}

IngestBuffer::IngestBuffer(IngestConfig config) : config_(config) {
  TRUSTRATE_EXPECTS(config_.max_lateness_days >= 0.0 &&
                        std::isfinite(config_.max_lateness_days),
                    "lateness bound must be finite and >= 0");
}

double IngestBuffer::watermark() const {
  if (!anchored_) return -std::numeric_limits<double>::infinity();
  return max_time_ - config_.max_lateness_days;
}

void IngestBuffer::quarantine_rating(const Rating& rating, IngestClass reason,
                                     std::string detail) {
  ++stats_.quarantined;
  if (quarantine_sink_) {
    quarantine_sink_({rating, reason, std::move(detail)});
    return;
  }
  quarantine_.push_back({rating, reason, std::move(detail)});
  while (quarantine_.size() > config_.max_quarantine) quarantine_.pop_front();
}

IngestClass IngestBuffer::submit(const Rating& rating,
                                 std::vector<Rating>& released) {
  ++stats_.submitted;

  // Validation: classify, never throw.
  if (!std::isfinite(rating.time) || !std::isfinite(rating.value)) {
    ++stats_.malformed;
    quarantine_rating(rating, IngestClass::kMalformed, "non-finite time or value");
    return IngestClass::kMalformed;
  }
  if (rating.value < 0.0 || rating.value > 1.0) {
    ++stats_.malformed;
    quarantine_rating(rating, IngestClass::kMalformed,
                      "value " + std::to_string(rating.value) + " outside [0,1]");
    return IngestClass::kMalformed;
  }

  // Lateness: behind the watermark means the reorder window already closed.
  if (anchored_ && rating.time < watermark()) {
    ++stats_.dropped_late;
    quarantine_rating(rating, IngestClass::kLate,
                      "time " + std::to_string(rating.time) +
                          " behind watermark " + std::to_string(watermark()));
    return IngestClass::kLate;
  }

  // Duplicate: exact resubmission inside the lateness horizon.
  const SeenKey key{rating.time, rating.rater, rating.product, rating.value};
  if (!seen_.insert(key).second) {
    ++stats_.duplicates;
    return IngestClass::kDuplicate;
  }

  ++stats_.accepted;
  const bool out_of_order = anchored_ && rating.time < max_time_;
  if (out_of_order) ++stats_.reordered;

  buffer_.insert(rating);
  if (!anchored_ || rating.time > max_time_) {
    anchored_ = true;
    max_time_ = rating.time;
  }
  release_ready(released);
  return out_of_order ? IngestClass::kReordered : IngestClass::kAccepted;
}

void IngestBuffer::release_ready(std::vector<Rating>& released) {
  const double mark = watermark();
  while (!buffer_.empty() && buffer_.begin()->time <= mark) {
    released.push_back(*buffer_.begin());
    buffer_.erase(buffer_.begin());
  }
  // Expire duplicate-horizon keys strictly behind the watermark: anything
  // resubmitted there is dropped late before the duplicate check runs.
  while (!seen_.empty() && std::get<0>(*seen_.begin()) < mark) {
    seen_.erase(seen_.begin());
  }
}

void IngestBuffer::drain(std::vector<Rating>& released) {
  for (const Rating& r : buffer_) released.push_back(r);
  buffer_.clear();
}

}  // namespace trustrate::core
