// Tolerant stream ingestion for the streaming front-end (extension beyond
// the paper).
//
// Real rating streams are hostile input: events arrive late or out of
// order, clients retry and duplicate submissions, and malformed records
// slip through upstream producers. The fraud-detection literature the
// ROADMAP points at (BIRDNEST, Allahbakhsh et al.) stresses that detection
// pipelines must survive exactly this traffic, so the streaming system no
// longer assumes a clean, time-ordered trace.
//
// IngestBuffer implements the classic bounded-lateness design:
//
//  * every accepted rating advances `max_time`, and the **watermark** is
//    `max_time - max_lateness_days`;
//  * accepted ratings sit in a reorder buffer until the watermark passes
//    their event time, then are released in non-decreasing time order —
//    downstream consumers see a sorted stream, exactly as if the input had
//    been sorted up front;
//  * a rating older than the watermark missed its window: it is *dropped
//    late* and dead-lettered, never silently reordered;
//  * an exact resubmission (same rater, product, time, value) of a rating
//    still inside the lateness horizon is a *duplicate* and is dropped;
//  * a malformed rating (non-finite time/value, value outside [0, 1]) is
//    *quarantined*.
//
// Classification is in-band — `submit` never throws on bad data — and every
// outcome is counted in IngestStats so operators can watch the failure
// rates. The dead-letter list keeps the most recent offenders (bounded by
// `max_quarantine`) for debugging.
#pragma once

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.hpp"

namespace trustrate::core {

/// Outcome of ingesting one rating.
enum class IngestClass : std::uint8_t {
  kAccepted = 0,  ///< accepted, arrived in watermark order
  kReordered,     ///< accepted, arrived out of order but within the bound
  kDuplicate,     ///< exact duplicate of an accepted rating; dropped
  kLate,          ///< behind the watermark; dropped and dead-lettered
  kMalformed,     ///< non-finite or out-of-range; dead-lettered
};

const char* to_string(IngestClass c);

struct IngestConfig {
  /// Bounded lateness: a rating may trail the newest accepted rating by up
  /// to this many days and still be merged in order. 0 demands a sorted
  /// stream (any regression is dropped late).
  double max_lateness_days = 0.0;

  /// Dead-letter list capacity; oldest entries are evicted beyond this.
  std::size_t max_quarantine = 1024;
};

/// Ingestion counters. `accepted` includes `reordered`; the dead-letter
/// total `quarantined` equals `dropped_late + malformed`.
struct IngestStats {
  std::size_t submitted = 0;     ///< everything offered to submit()
  std::size_t accepted = 0;      ///< released (or releasable) downstream
  std::size_t reordered = 0;     ///< accepted with time < max seen time
  std::size_t duplicates = 0;    ///< exact resubmissions dropped
  std::size_t dropped_late = 0;  ///< behind the watermark
  std::size_t malformed = 0;     ///< failed validation
  std::size_t quarantined = 0;   ///< dead-letter total (late + malformed)

  friend bool operator==(const IngestStats&, const IngestStats&) = default;
};

/// One dead-lettered rating with its classification and a human-readable
/// reason (the detail is diagnostic only and is not checkpointed).
struct QuarantinedRating {
  Rating rating;
  IngestClass reason = IngestClass::kMalformed;
  std::string detail;
};

/// Bounded-lateness reordering buffer with duplicate detection and a
/// dead-letter quarantine. See the file comment for the semantics.
class IngestBuffer {
 public:
  /// Duplicate-horizon key: (time, rater, product, value). Ordered by time
  /// first so expired keys form a prefix. Public so checkpoint/snapshot
  /// code can carry the horizon state around.
  using SeenKey = std::tuple<double, RaterId, ProductId, double>;

  explicit IngestBuffer(IngestConfig config = {});

  /// Classifies one rating. Accepted ratings are buffered; every buffered
  /// rating whose time the new watermark has passed is appended to
  /// `released` in non-decreasing time order. Never throws on bad data.
  IngestClass submit(const Rating& rating, std::vector<Rating>& released);

  /// Releases everything still buffered (end of stream), in time order.
  /// The watermark and duplicate horizon are unchanged.
  void drain(std::vector<Rating>& released);

  /// Current watermark (-infinity before the first accepted rating).
  double watermark() const;

  /// True once at least one rating has been accepted.
  bool anchored() const { return anchored_; }

  /// Ratings accepted but still held for reordering.
  std::size_t buffered() const { return buffer_.size(); }

  const IngestStats& stats() const { return stats_; }
  const std::deque<QuarantinedRating>& quarantine() const { return quarantine_; }
  const IngestConfig& config() const { return config_; }

  /// Redirects dead-lettered ratings to `sink` instead of the internal
  /// capped deque. Counters (`quarantined`, `dropped_late`, `malformed`)
  /// still advance globally; only the storage moves. The sharded engine
  /// uses this to keep per-shard quarantine stores with per-shard caps
  /// while classification stays at the (global) front door. Pass an empty
  /// function to restore the internal deque.
  void set_quarantine_sink(std::function<void(QuarantinedRating&&)> sink) {
    quarantine_sink_ = std::move(sink);
  }

 private:
  friend struct CheckpointAccess;  ///< checkpoint.cpp serializes the state

  void quarantine_rating(const Rating& rating, IngestClass reason,
                         std::string detail);
  void release_ready(std::vector<Rating>& released);

  IngestConfig config_;
  IngestStats stats_;

  bool anchored_ = false;
  double max_time_ = 0.0;  ///< newest accepted event time (valid when anchored)

  /// Accepted ratings awaiting release, ordered by time (stable for ties).
  struct TimeLess {
    bool operator()(const Rating& a, const Rating& b) const {
      return a.time < b.time;
    }
  };
  std::multiset<Rating, TimeLess> buffer_;

  /// Keys of accepted ratings with time >= watermark (buffer + just-released
  /// boundary); older keys cannot collide because their duplicates would be
  /// dropped late anyway.
  std::set<SeenKey> seen_;

  std::deque<QuarantinedRating> quarantine_;
  std::function<void(QuarantinedRating&&)> quarantine_sink_;
};

}  // namespace trustrate::core
