#include "core/shard/sharded_system.hpp"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "core/parallel/epoch_engine.hpp"

namespace trustrate::core::shard {

namespace {

/// The merge authority never runs stage 1, so its engine stays serial
/// regardless of the configured worker count (per-shard engines get the
/// workers instead).
SystemConfig merge_config(SystemConfig config) {
  config.epoch_workers = 1;
  return config;
}

/// Spin rounds between watchdog observations in a supervised wait; one
/// observation round == one deterministic supervision tick.
constexpr std::size_t kWaitSpinLimit = 64;

/// Span size for batched ring transfers (worker inbox drain, merge outbox
/// refill): one index handoff per span instead of per event.
constexpr std::size_t kDrainBatch = 32;

std::string describe_exception(std::exception_ptr error) {
  if (!error) return "unknown error";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace

ShardedRatingSystem::Shard::Shard(const SystemConfig& config,
                                  std::size_t workers,
                                  std::size_t queue_capacity)
    : filter(config.filter),
      detector(config.ar),
      engine(std::make_unique<parallel::EpochEngine>(workers)),
      inbox(queue_capacity),
      outbox(queue_capacity) {}

ShardedRatingSystem::ShardedRatingSystem(SystemConfig config,
                                         ShardOptions options,
                                         double epoch_days,
                                         std::size_t retention_epochs,
                                         IngestConfig ingest)
    : config_(config),
      options_(std::move(options)),
      merge_(merge_config(config)),
      epoch_days_(epoch_days),
      retention_epochs_(retention_epochs),
      ingest_(ingest) {
  TRUSTRATE_EXPECTS(epoch_days > 0.0, "epoch length must be positive");
  TRUSTRATE_EXPECTS(options_.shards >= 1, "shard count must be >= 1");
  const std::size_t workers =
      options_.epoch_workers != 0
          ? options_.epoch_workers
          : (config_.epoch_workers != 0 ? config_.epoch_workers : 1);
  shards_.reserve(options_.shards);
  for (std::size_t k = 0; k < options_.shards; ++k) {
    shards_.push_back(
        std::make_unique<Shard>(config_, workers, options_.queue_capacity));
  }

  // Dead letters are classified globally (the counters in IngestStats keep
  // their stream-wide meaning) but *stored* per shard with a per-shard cap
  // — the sink captures the global ordinal so the stores merge back into
  // arrival order for checkpoints and the quarantine() view.
  ingest_.set_quarantine_sink([this](QuarantinedRating&& q) {
    const std::uint64_t seq = ingest_.stats().quarantined;
    const std::size_t k = shard_index(q.rating.product);
    if (threads_running_) {
      ShardEvent e;
      e.type = ShardEvent::Type::kQuarantine;
      e.dead = std::move(q);
      e.seq = seq;
      enqueue(k, std::move(e));
    } else {
      add_dead_letter(*shards_[k], std::move(q), seq);
    }
  });

  if (options_.threaded) start_threads();
}

ShardedRatingSystem::~ShardedRatingSystem() { stop_threads(); }

std::size_t ShardedRatingSystem::shard_index(ProductId product) const {
  const std::size_t n = shards_.size();
  if (options_.shard_fn) return options_.shard_fn(product, n) % n;
  return shard_of(product, n);
}

IngestClass ShardedRatingSystem::submit(const Rating& rating) {
  throw_if_failed();
  released_.clear();
  const IngestClass result = ingest_.submit(rating, released_);
  // Causal ID (ISSUE 10): the 1-based global submission ordinal of this
  // call. Every rating this call releases into routing is stamped with it,
  // so its path — classify → shard ring → epoch close → merge — can be
  // reconstructed from the trace sink. Zero cost with a null sink.
  current_causal_ = static_cast<std::uint64_t>(ingest_.stats().submitted);
  if (obs_.trace != nullptr) {
    obs::SpanTimer span(obs_.trace, "ingest.classify", 0,
                        static_cast<std::int64_t>(rating.product));
    span.set_causal(current_causal_);
    span.set_detail(std::string("verdict=") + to_string(result));
  }
  if (ingest_submitted_ != nullptr) {
    ingest_submitted_->add();
    switch (result) {
      case IngestClass::kAccepted:
        ingest_accepted_->add();
        break;
      case IngestClass::kReordered:
        ingest_accepted_->add();
        ingest_reordered_->add();
        break;
      case IngestClass::kDuplicate:
        ingest_duplicates_->add();
        break;
      case IngestClass::kLate:
        ingest_late_->add();
        ingest_quarantined_->add();
        break;
      case IngestClass::kMalformed:
        ingest_malformed_->add();
        ingest_quarantined_->add();
        break;
    }
  }
  for (const Rating& r : released_) route(r);
  if (threads_running_) flush_staged();
  current_causal_ = 0;
  update_gauges();
  return result;
}

void ShardedRatingSystem::route(const Rating& rating) {
  if (!anchored_) {
    anchored_ = true;
    epoch_start_ = rating.time;
  }
  last_time_ = rating.time;

  // Same boundary walk as StreamingRatingSystem::route: close every cell
  // the stream moved past; once NOTHING is pending anywhere, the rest of
  // the gap is fully empty and fast-forwards in O(1). A shard-local gap is
  // not a stream gap — shards with no data for a closing cell record a
  // skipped cell in analyze_cell instead of stalling or skipping others.
  while (rating.time >= epoch_start_ + epoch_days_) {
    if (pending_count_ == 0) {
      fast_forward_empty_epochs(rating.time);
      break;
    }
    issue_close(epoch_start_ + epoch_days_);
  }

  const std::size_t k = shard_index(rating.product);
  Shard& shard = *shards_[k];
  if (shard.routed_metric != nullptr) {
    shard.routed_metric->add();
    shard.routed_labeled_->add();
  }
  if (threads_running_) {
    ShardEvent e;
    e.type = ShardEvent::Type::kRating;
    e.rating = rating;
    e.causal = current_causal_;
    stage_event(k, std::move(e));
  } else {
    shard.pending[rating.product].push_back(rating);
    // Inline mode: the coordinator owns the cell's causal range directly
    // (the worker owns it in threaded mode — never both).
    if (shard.cell_causal_lo == 0) shard.cell_causal_lo = current_causal_;
    shard.cell_causal_hi = current_causal_;
  }
  ++pending_count_;
}

void ShardedRatingSystem::fast_forward_empty_epochs(double now) {
  // now >= epoch_start_ + epoch_days_, so skip >= 1. Identical arithmetic
  // (including the FP boundary guards) to the unsharded stream and the
  // batch oracle — the three must land on the same grid cell.
  auto skip = static_cast<std::size_t>((now - epoch_start_) / epoch_days_);
  epoch_start_ += static_cast<double>(skip) * epoch_days_;
  while (epoch_start_ > now) {
    epoch_start_ -= epoch_days_;
    --skip;
  }
  while (now >= epoch_start_ + epoch_days_) {
    epoch_start_ += epoch_days_;
    ++skip;
  }
  skipped_empty_epochs_ += skip;
  if (epochs_skipped_empty_metric_ != nullptr) {
    epochs_skipped_empty_metric_->add(static_cast<std::uint64_t>(skip));
  }
}

void ShardedRatingSystem::issue_close(double epoch_end) {
  const std::uint64_t cell = cells_issued_++;
  const double cell_start = epoch_start_;
  if (threads_running_) {
    // Staged ratings for this cell must reach their shards before the
    // close event does (per-shard FIFO is the only ordering guarantee).
    flush_staged();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      ShardEvent e;
      e.type = ShardEvent::Type::kClose;
      e.seq = cell;
      e.epoch_start = cell_start;
      e.epoch_end = epoch_end;
      enqueue(k, std::move(e));
    }
  } else {
    std::vector<ShardResult> results;
    results.reserve(shards_.size());
    for (auto& shard : shards_) {
      results.push_back(analyze_cell(*shard, cell, cell_start, epoch_end));
    }
    merge_cell(std::move(results));
  }
  epoch_start_ = epoch_end;
  pending_count_ = 0;
}

ShardedRatingSystem::ShardResult ShardedRatingSystem::analyze_cell(
    Shard& shard, std::uint64_t cell, double epoch_start, double epoch_end) {
  ShardResult result;
  result.cell = cell;
  result.epoch_start = epoch_start;
  result.epoch_end = epoch_end;
  result.causal_lo = shard.cell_causal_lo;
  result.causal_hi = shard.cell_causal_hi;
  shard.cell_causal_lo = 0;
  shard.cell_causal_hi = 0;
  if (shard.pending.empty()) {
    // This shard saw nothing this cell — a shard-local gap. The close
    // still happens globally; only this shard's participation is skipped.
    ++shard.skipped_cells;
    shard.skipped_cells_pub.fetch_add(1, std::memory_order_relaxed);
    if (shard.skipped_metric != nullptr) {
      shard.skipped_metric->add();
      shard.skipped_labeled_->add();
    }
    return result;
  }

  result.observations.reserve(shard.pending.size());
  for (auto& [product, series] : shard.pending) {
    ProductObservation obs;
    obs.product = product;
    obs.t_start = epoch_start;
    obs.t_end = epoch_end;
    obs.ratings = std::move(series);
    result.observations.push_back(std::move(obs));
  }
  shard.pending.clear();
  std::sort(result.observations.begin(), result.observations.end(),
            [](const ProductObservation& a, const ProductObservation& b) {
              return a.product < b.product;
            });

  {
    obs::SpanTimer span(
        obs_.trace,
        shard.analyze_span_name.empty() ? "shard.analyze"
                                        : shard.analyze_span_name.c_str(),
        cell + 1);
    if (result.causal_hi != 0) {
      span.set_causal(result.causal_hi);
      span.set_detail("causal=[" + std::to_string(result.causal_lo) + "," +
                      std::to_string(result.causal_hi) + "]");
    }
    const parallel::StageContext ctx{&config_, &shard.filter, &shard.detector,
                                     &obs_};
    result.reports = shard.engine->analyze(result.observations, ctx);
  }
  if (shard.cells_metric != nullptr) {
    shard.cells_metric->add();
    shard.cells_labeled_->add();
  }

  // Retention is shard-local state; the observations themselves travel to
  // the merger, so the retained window keeps a copy.
  for (const ProductObservation& obs : result.observations) {
    Shard::Retained& r = shard.retained[obs.product];
    r.epochs.push_back(obs.ratings);
    if (r.epochs.size() > retention_epochs_) {
      r.epochs.erase(r.epochs.begin());
    }
  }
  return result;
}

void ShardedRatingSystem::merge_cell(std::vector<ShardResult> results) {
  const double cell_start = results.front().epoch_start;
  const double cell_end = results.front().epoch_end;

  // Merge span carries the cell's whole causal range (min/max of the
  // shard slices), closing the ingest → ring → close → merge trace chain.
  obs::SpanTimer merge_span(obs_.trace, "merge.cell",
                            results.front().cell + 1);
  if (obs_.trace != nullptr) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    for (const ShardResult& r : results) {
      if (r.causal_lo == 0) continue;
      if (lo == 0 || r.causal_lo < lo) lo = r.causal_lo;
      if (r.causal_hi > hi) hi = r.causal_hi;
    }
    if (hi != 0) {
      merge_span.set_causal(hi);
      merge_span.set_detail("causal=[" + std::to_string(lo) + "," +
                            std::to_string(hi) + "]");
    }
  }

  std::vector<ProductObservation> observations;
  std::vector<ProductReport> reports;
  for (ShardResult& r : results) {
    observations.insert(observations.end(),
                        std::make_move_iterator(r.observations.begin()),
                        std::make_move_iterator(r.observations.end()));
    reports.insert(reports.end(), std::make_move_iterator(r.reports.begin()),
                   std::make_move_iterator(r.reports.end()));
  }

  // Canonical product order: each shard slice is sorted and the slices are
  // disjoint, so sorting the concatenation recreates exactly the product
  // order the unsharded close would have fed process_epoch.
  std::vector<std::size_t> order(observations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return observations[a].product < observations[b].product;
  });
  std::vector<ProductObservation> sorted_obs;
  sorted_obs.reserve(observations.size());
  std::vector<ProductReport> sorted_reports;
  sorted_reports.reserve(reports.size());
  for (const std::size_t i : order) {
    sorted_obs.push_back(std::move(observations[i]));
    sorted_reports.push_back(std::move(reports[i]));
  }

  EpochHealth health = EpochHealth::kHealthy;
  if (!sorted_obs.empty()) {
    const EpochReport report =
        merge_.merge_epoch(sorted_obs, std::move(sorted_reports));
    if (report.detector_degraded) health = EpochHealth::kDegradedDetector;
    last_close_products_ = sorted_obs.size();
    if (epoch_observer_) epoch_observer_(report, cell_start, cell_end);
  } else {
    // Unreachable through the coordinator (it only closes when something
    // is pending), kept for defensive parity with the unsharded close.
    last_close_products_ = 0;
  }
  ++epochs_closed_;
  epoch_health_.push_back(health);
  if (epochs_closed_metric_ != nullptr) epochs_closed_metric_->add();
  if (health == EpochHealth::kDegradedDetector) {
    if (epochs_degraded_metric_ != nullptr) epochs_degraded_metric_->add();
    if (obs_.audit != nullptr) {
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kDegradedEpoch;
      e.epoch = static_cast<std::uint64_t>(epochs_closed_);
      e.window_start = cell_start;
      e.window_end = cell_end;
      e.detail = "AR detector contributed nothing; beta-filter-only path";
      obs_.audit->record(e);
    }
  }
  // Publishes every merge-thread write above to quiescing readers.
  cells_merged_.fetch_add(1, std::memory_order_release);
}

std::size_t ShardedRatingSystem::flush() {
  throw_if_failed();
  released_.clear();
  ingest_.drain(released_);
  // Drained ratings are admitted by this flush; their causal ID is the
  // newest submission ordinal (the one whose flush released them).
  current_causal_ = static_cast<std::uint64_t>(ingest_.stats().submitted);
  for (const Rating& r : released_) route(r);
  if (threads_running_) flush_staged();
  if (!anchored_ || pending_count_ == 0) {
    current_causal_ = 0;
    quiesce();
    update_gauges();
    return 0;
  }
  issue_close(std::max(last_time_ + 1e-9, epoch_start_ + epoch_days_));
  current_causal_ = 0;
  quiesce();
  update_gauges();
  return last_close_products_;
}

void ShardedRatingSystem::add_dead_letter(Shard& shard,
                                          QuarantinedRating&& entry,
                                          std::uint64_t seq) {
  shard.quarantine.push_back({std::move(entry), seq});
  while (shard.quarantine.size() > ingest_.config().max_quarantine) {
    shard.quarantine.pop_front();
  }
  // Occupancy mirror for probe(): the owner thread is the only writer.
  shard.quarantine_size.store(shard.quarantine.size(),
                              std::memory_order_relaxed);
}

// ------------------------------------------------------------- threading

void ShardedRatingSystem::enqueue(std::size_t k, ShardEvent&& event) {
  Shard& shard = *shards_[k];
  std::size_t spins = 0;
  while (!shard.inbox.try_push(std::move(event))) {
    if (shard.inbox.closed()) {
      // Closed mid-stream only by a latched failure; surface it.
      throw_if_failed();
      return;  // unreachable unless closed during shutdown — drop
    }
    if (++spins >= kWaitSpinLimit) {
      supervised_tick();  // throws once a stall/poison is classified
      std::this_thread::yield();
      spins = 0;
    }
  }
  // Coordinator-owned counter: relaxed is enough (workers only read it
  // for approximate diagnostics).
  shard.events_pushed.store(
      shard.events_pushed.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
}

void ShardedRatingSystem::stage_event(std::size_t k, ShardEvent&& event) {
  shards_[k]->staged.push_back(std::move(event));
}

void ShardedRatingSystem::flush_staged() {
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    std::vector<ShardEvent>& batch = shard.staged;
    if (batch.empty()) continue;
    std::size_t done = 0;
    std::size_t spins = 0;
    while (done < batch.size()) {
      done += shard.inbox.try_push_n(batch.data() + done, batch.size() - done);
      if (done == batch.size()) break;
      if (shard.inbox.closed()) {
        batch.clear();
        throw_if_failed();
        return;
      }
      if (++spins >= kWaitSpinLimit) {
        supervised_tick();
        std::this_thread::yield();
        spins = 0;
      }
    }
    shard.events_pushed.store(
        shard.events_pushed.load(std::memory_order_relaxed) + batch.size(),
        std::memory_order_relaxed);
    batch.clear();
  }
}

void ShardedRatingSystem::shard_worker(std::size_t k) {
  Shard& shard = *shards_[k];
  try {
    // Draining in spans amortizes the ring's cache-line handoff: one
    // acquire/release pair covers up to kDrainBatch events.
    std::vector<ShardEvent> batch(kDrainBatch);
    for (;;) {
      const std::size_t n = shard.inbox.pop_n(batch.data(), kDrainBatch);
      if (n == 0) return;  // closed and drained: failure or shutdown
      for (std::size_t i = 0; i < n; ++i) {
        ShardEvent& event = batch[i];
        // Heartbeat marks "started an event"; events_processed marks
        // "finished it" — the gap tells the watchdog's diagnostic whether
        // the worker is wedged mid-event or between events.
        shard.heartbeat.fetch_add(1, std::memory_order_relaxed);
        if (options_.event_hook) {
          ShardEventContext ctx;
          ctx.shard = k;
          ctx.ordinal = shard.events_processed.load(std::memory_order_relaxed);
          ctx.abort = &shard.abort_requested;
          options_.event_hook(ctx);
        }
        bool stop = false;
        switch (event.type) {
          case ShardEvent::Type::kRating:
            shard.pending[event.rating.product].push_back(event.rating);
            // Worker-owned causal range for the cell in progress; the
            // coordinator never touches these fields in threaded mode.
            if (shard.cell_causal_lo == 0) shard.cell_causal_lo = event.causal;
            if (event.causal > shard.cell_causal_hi) {
              shard.cell_causal_hi = event.causal;
            }
            break;
          case ShardEvent::Type::kQuarantine:
            add_dead_letter(shard, std::move(event.dead), event.seq);
            break;
          case ShardEvent::Type::kClose:
            if (!shard.outbox.push(analyze_cell(shard, event.seq,
                                                event.epoch_start,
                                                event.epoch_end))) {
              return;  // outbox closed: the pipeline is coming down
            }
            break;
          case ShardEvent::Type::kStop: {
            ShardResult sentinel;
            sentinel.cell = kStopCell;
            shard.outbox.push(std::move(sentinel));
            stop = true;
            break;
          }
        }
        // Release: quiescing readers that observe this count also observe
        // the shard-state writes the event caused.
        shard.events_processed.fetch_add(1, std::memory_order_release);
        if (stop) return;
      }
    }
  } catch (...) {
    contain_worker_failure(k, std::current_exception());
  }
}

void ShardedRatingSystem::merge_worker() {
  try {
    // Per-shard staging deques: whenever the pipeline runs deep, a single
    // try_pop_n span refills several cells' worth of results at once.
    std::vector<std::deque<ShardResult>> ready(shards_.size());
    std::vector<ShardResult> batch(kDrainBatch);
    for (;;) {
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        while (ready[k].empty()) {
          const std::size_t n =
              shards_[k]->outbox.pop_n(batch.data(), kDrainBatch);
          if (n == 0) return;  // closed: failure latched elsewhere
          for (std::size_t i = 0; i < n; ++i) {
            ready[k].push_back(std::move(batch[i]));
          }
        }
      }
      // Each shard receives closes (and the final stop) in the same
      // order, and processes its inbox FIFO — so the k-th outbox head is
      // always the same cell as shard 0's (or the matching sentinel).
      bool stopping = false;
      for (const auto& q : ready) {
        if (q.front().cell == kStopCell || q.front().cell == kPoisonCell) {
          stopping = true;
          break;
        }
      }
      if (stopping) return;
      std::vector<ShardResult> results;
      results.reserve(shards_.size());
      for (auto& q : ready) {
        results.push_back(std::move(q.front()));
        q.pop_front();
      }
      merge_cell(std::move(results));
    }
  } catch (...) {
    // Merge-thread containment: shards().size() designates the merger.
    fail_pipeline(ShardFailureKind::kPoisoned, shards_.size(),
                  describe_exception(std::current_exception()),
                  "merge thread threw; surviving shards were drained and "
                  "their rings closed",
                  std::current_exception());
  }
}

void ShardedRatingSystem::start_threads() {
  threads_running_ = true;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->worker = std::thread([this, k] { shard_worker(k); });
  }
  merge_thread_ = std::thread([this] { merge_worker(); });
}

void ShardedRatingSystem::stop_threads() {
  if (!threads_running_) return;
  if (!pipeline_failed_.load(std::memory_order_acquire)) {
    // Normal shutdown: a stop event per shard; each worker acknowledges
    // with a stop sentinel the merger folds. try_push (not enqueue): a
    // failure racing in closes the ring, and then the closes below are
    // the shutdown signal.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      ShardEvent e;
      e.type = ShardEvent::Type::kStop;
      bool pushed = shards_[k]->inbox.try_push(std::move(e));
      if (!pushed && !shards_[k]->inbox.closed()) {
        // Ring full (tiny-queue configurations): fall back to the
        // blocking push, which a racing close still bounds.
        ShardEvent stop;
        stop.type = ShardEvent::Type::kStop;
        pushed = shards_[k]->inbox.push(std::move(stop));
      }
      if (pushed) {
        shards_[k]->events_pushed.store(
            shards_[k]->events_pushed.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
      }
    }
  }
  // Close every ring regardless of path. After this line every blocked
  // push/pop in the system returns within a bounded number of steps
  // (DESIGN.md §15), so the joins below cannot hang on a dead peer.
  for (auto& shard : shards_) {
    shard->inbox.close();
    shard->outbox.close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (merge_thread_.joinable()) merge_thread_.join();
  threads_running_ = false;
}

void ShardedRatingSystem::quiesce() const {
  throw_if_failed();
  if (!threads_running_) return;
  for (const auto& shard : shards_) {
    std::size_t spins = 0;
    while (shard->events_processed.load(std::memory_order_acquire) <
           shard->events_pushed.load(std::memory_order_relaxed)) {
      if (++spins >= kWaitSpinLimit) {
        supervised_tick();  // bounds the wait: throws on stall/poison
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  std::size_t spins = 0;
  while (cells_merged_.load(std::memory_order_acquire) < cells_issued_) {
    if (++spins >= kWaitSpinLimit) {
      supervised_tick();
      std::this_thread::yield();
      spins = 0;
    }
  }
  // A failure can land between the last counter check and here (e.g. a
  // worker poisoned by its final event); surface it rather than letting
  // the caller read torn state.
  throw_if_failed();
}

// ----------------------------------------------------------- supervision

std::string ShardedRatingSystem::shard_diagnostic(std::size_t k) const {
  const Shard& shard = *shards_[k];
  const std::uint64_t processed =
      shard.events_processed.load(std::memory_order_acquire);
  const std::uint64_t beat = shard.heartbeat.load(std::memory_order_acquire);
  std::string out = "shard " + std::to_string(k) + ": inbox depth " +
                    std::to_string(shard.inbox.size()) + ", events " +
                    std::to_string(shard.events_pushed.load(
                        std::memory_order_relaxed)) + " pushed / " +
                    std::to_string(processed) + " processed, heartbeat " +
                    std::to_string(beat);
  out += beat > processed ? " (mid-event)" : " (between events)";
  return out;
}

void ShardedRatingSystem::throw_if_failed() const {
  if (!pipeline_failed_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(failure_mutex_);
  throw ShardFailure(failure_kind_, failure_shard_, failure_diagnostic_,
                     failure_message_);
}

std::optional<ShardFailure> ShardedRatingSystem::failure() const {
  if (!pipeline_failed_.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard lock(failure_mutex_);
  return ShardFailure(failure_kind_, failure_shard_, failure_diagnostic_,
                      failure_message_);
}

void ShardedRatingSystem::fail_pipeline(ShardFailureKind kind,
                                        std::size_t shard,
                                        const std::string& message,
                                        std::string diagnostic,
                                        std::exception_ptr error) noexcept {
  bool first = false;
  {
    std::lock_guard lock(failure_mutex_);
    if (!failure_recorded_) {
      failure_recorded_ = true;
      failure_kind_ = kind;
      failure_shard_ = shard;
      failure_message_ = "sharded pipeline " + std::string(to_string(kind)) +
                         " (shard " + std::to_string(shard) + "): " + message;
      failure_diagnostic_ = std::move(diagnostic);
      failure_error_ = std::move(error);
      first = true;
    }
  }
  if (!first) return;
  // Latch BEFORE closing: a waiter released by a closed ring must already
  // see the failure when it asks.
  pipeline_failed_.store(true, std::memory_order_release);
  for (auto& s : shards_) {
    s->inbox.close();
    s->outbox.close();
  }
  if (kind == ShardFailureKind::kPoisoned && shard_poisoned_metric_ != nullptr) {
    shard_poisoned_metric_->add();
  }
  if (kind == ShardFailureKind::kStalled && shard_stalled_metric_ != nullptr) {
    shard_stalled_metric_->add();
  }
  if (obs_.audit != nullptr) {
    obs::AuditEvent e;
    e.type = kind == ShardFailureKind::kPoisoned
                 ? obs::AuditEventType::kShardPoisoned
                 : obs::AuditEventType::kShardStalled;
    e.value = static_cast<double>(shard);
    std::lock_guard lock(failure_mutex_);
    e.detail = failure_message_ + " — " + failure_diagnostic_;
    obs_.audit->record(e);
  }
}

void ShardedRatingSystem::contain_worker_failure(
    std::size_t k, std::exception_ptr error) noexcept {
  Shard& shard = *shards_[k];
  shard.worker_error = error;
  shard.poisoned.store(true, std::memory_order_release);
  // Best-effort poison sentinel so the merger unblocks without waiting
  // for the closes below to propagate; a full or already-closed outbox is
  // fine — close() is the stronger signal.
  ShardResult sentinel;
  sentinel.cell = kPoisonCell;
  shard.outbox.try_push(std::move(sentinel));
  fail_pipeline(ShardFailureKind::kPoisoned, k, describe_exception(error),
                shard_diagnostic(k), error);
}

void ShardedRatingSystem::supervised_tick() const {
  throw_if_failed();
  const std::uint64_t budget = options_.supervision.stall_ticks;
  if (budget == 0) return;  // watchdog disabled
  bool all_shards_idle = true;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    const std::uint64_t processed =
        shard.events_processed.load(std::memory_order_acquire);
    if (processed != shard.watch_processed) {
      shard.watch_processed = processed;
      shard.stall_age.store(0, std::memory_order_relaxed);
    } else if (shard.events_pushed.load(std::memory_order_relaxed) >
               processed) {
      all_shards_idle = false;
      const std::uint64_t age =
          shard.stall_age.fetch_add(1, std::memory_order_relaxed) + 1;
      if (age >= budget) {
        shard.abort_requested.store(true, std::memory_order_release);
        const_cast<ShardedRatingSystem*>(this)->fail_pipeline(
            ShardFailureKind::kStalled, k,
            "no progress for " + std::to_string(age) + " supervision ticks",
            shard_diagnostic(k), nullptr);
        throw_if_failed();
      }
    } else {
      shard.stall_age.store(0, std::memory_order_relaxed);
    }
  }
  // The merger only looks stalled while waiting on a stalled shard — so
  // it is classified only once every shard has fully caught up.
  const std::uint64_t merged = cells_merged_.load(std::memory_order_acquire);
  if (merged != merge_watch_) {
    merge_watch_ = merged;
    merge_stall_age_.store(0, std::memory_order_relaxed);
  } else if (all_shards_idle && merged < cells_issued_) {
    const std::uint64_t age =
        merge_stall_age_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (age >= budget) {
      const_cast<ShardedRatingSystem*>(this)->fail_pipeline(
          ShardFailureKind::kStalled, shards_.size(),
          "merge made no progress for " + std::to_string(age) +
              " supervision ticks",
          "merge: cells " + std::to_string(cells_issued_) + " issued / " +
              std::to_string(merged) + " merged; every shard inbox drained",
          nullptr);
      throw_if_failed();
    }
  } else {
    merge_stall_age_.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- queries

double ShardedRatingSystem::trust(RaterId id) const {
  quiesce();
  return merge_.trust(id);
}

std::vector<RaterId> ShardedRatingSystem::malicious() const {
  quiesce();
  return merge_.malicious();
}

std::optional<double> ShardedRatingSystem::aggregate(ProductId product) const {
  quiesce();
  const Shard& shard = *shards_[shard_index(product)];
  RatingSeries all;
  if (const auto it = shard.retained.find(product); it != shard.retained.end()) {
    for (const RatingSeries& epoch : it->second.epochs) {
      all.insert(all.end(), epoch.begin(), epoch.end());
    }
  }
  if (const auto it = shard.pending.find(product); it != shard.pending.end()) {
    all.insert(all.end(), it->second.begin(), it->second.end());
  }
  if (all.empty()) return std::nullopt;
  return merge_.aggregate(all);
}

std::size_t ShardedRatingSystem::epochs_closed() const {
  quiesce();
  return epochs_closed_;
}

const std::vector<EpochHealth>& ShardedRatingSystem::epoch_health() const {
  quiesce();
  return epoch_health_;
}

std::size_t ShardedRatingSystem::degraded_epochs() const {
  quiesce();
  return static_cast<std::size_t>(
      std::count(epoch_health_.begin(), epoch_health_.end(),
                 EpochHealth::kDegradedDetector));
}

std::size_t ShardedRatingSystem::skipped_empty_epochs() const {
  throw_if_failed();
  return skipped_empty_epochs_;
}

std::vector<std::size_t> ShardedRatingSystem::shard_skipped_cells() const {
  quiesce();
  std::vector<std::size_t> cells;
  cells.reserve(shards_.size());
  for (const auto& shard : shards_) cells.push_back(shard->skipped_cells);
  return cells;
}

std::size_t ShardedRatingSystem::pending_ratings() const {
  throw_if_failed();
  return pending_count_;
}

std::vector<QuarantinedRating> ShardedRatingSystem::shard_quarantine(
    std::size_t k) const {
  TRUSTRATE_EXPECTS(k < shards_.size(), "shard index out of range");
  quiesce();
  std::vector<QuarantinedRating> out;
  out.reserve(shards_[k]->quarantine.size());
  for (const DeadLetter& d : shards_[k]->quarantine) out.push_back(d.entry);
  return out;
}

std::vector<QuarantinedRating> ShardedRatingSystem::quarantine() const {
  quiesce();
  std::vector<const DeadLetter*> all;
  for (const auto& shard : shards_) {
    for (const DeadLetter& d : shard->quarantine) all.push_back(&d);
  }
  std::sort(all.begin(), all.end(),
            [](const DeadLetter* a, const DeadLetter* b) {
              return a->seq < b->seq;
            });
  std::vector<QuarantinedRating> out;
  out.reserve(all.size());
  for (const DeadLetter* d : all) out.push_back(d->entry);
  return out;
}

// --------------------------------------------------------- observability

void ShardedRatingSystem::set_epoch_observer(EpochCloseObserver observer) {
  quiesce();
  epoch_observer_ = std::move(observer);
}

void ShardedRatingSystem::set_observability(const obs::Observability& o) {
  quiesce();
  obs_ = o;
  merge_.set_observability(o);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    shard.filter.set_observability(o);
    shard.detector.set_observability(o);
    if (o.metrics != nullptr) {
      // Naming-drift fix (ISSUE 10 satellite): the shard dimension moves
      // out of the metric name and into a label —
      // trustrate_shard_routed_total{shard="k"} is the conforming family.
      // The old flat names (trustrate_shardK_*) stay emitted for one
      // release behind the trustrate_deprecated_metric_names gauge.
      const std::string prefix = "trustrate_shard" + std::to_string(k);
      const std::string label = "{shard=\"" + std::to_string(k) + "\"}";
      shard.analyze_span_name = "shard" + std::to_string(k) + ".analyze";
      shard.routed_metric = &o.metrics->counter(
          prefix + "_routed_total",
          "DEPRECATED flat name; use trustrate_shard_routed_total");
      shard.cells_metric = &o.metrics->counter(
          prefix + "_cells_total",
          "DEPRECATED flat name; use trustrate_shard_cells_total");
      shard.skipped_metric = &o.metrics->counter(
          prefix + "_skipped_cells_total",
          "DEPRECATED flat name; use trustrate_shard_skipped_cells_total");
      shard.routed_labeled_ =
          &o.metrics->counter("trustrate_shard_routed_total" + label,
                              "Ratings routed to this shard");
      shard.cells_labeled_ =
          &o.metrics->counter("trustrate_shard_cells_total" + label,
                              "Epoch cells this shard analyzed");
      shard.skipped_labeled_ = &o.metrics->counter(
          "trustrate_shard_skipped_cells_total" + label,
          "Epoch cells closed with no pending data on this shard");
    } else {
      shard.analyze_span_name.clear();
      shard.routed_metric = nullptr;
      shard.cells_metric = nullptr;
      shard.skipped_metric = nullptr;
      shard.routed_labeled_ = nullptr;
      shard.cells_labeled_ = nullptr;
      shard.skipped_labeled_ = nullptr;
    }
  }
  if (o.metrics != nullptr) {
    obs::MetricsRegistry& m = *o.metrics;
    ingest_submitted_ = &m.counter("trustrate_ingest_submitted_total",
                                   "Ratings offered to submit()");
    ingest_accepted_ = &m.counter("trustrate_ingest_accepted_total",
                                  "Ratings accepted (includes reordered)");
    ingest_reordered_ = &m.counter(
        "trustrate_ingest_reordered_total",
        "Ratings accepted out of order within the lateness bound");
    ingest_duplicates_ = &m.counter("trustrate_ingest_duplicates_total",
                                    "Exact resubmissions dropped");
    ingest_late_ = &m.counter("trustrate_ingest_late_total",
                              "Ratings dropped behind the watermark");
    ingest_malformed_ = &m.counter("trustrate_ingest_malformed_total",
                                   "Ratings failing validation");
    ingest_quarantined_ = &m.counter(
        "trustrate_ingest_quarantined_total",
        "Dead-lettered ratings (late + malformed)");
    epochs_closed_metric_ =
        &m.counter("trustrate_epochs_closed_total", "Epochs closed");
    epochs_degraded_metric_ = &m.counter(
        "trustrate_epochs_degraded_total",
        "Epochs that fell back to the beta-filter-only path");
    epochs_skipped_empty_metric_ = &m.counter(
        "trustrate_epochs_skipped_empty_total",
        "Fully empty epochs fast-forwarded over");
    shard_poisoned_metric_ = &m.counter(
        "trustrate_shard_poisoned_total",
        "Shard or merge workers that threw and were contained");
    shard_stalled_metric_ = &m.counter(
        "trustrate_shard_stalled_total",
        "Shards the watchdog classified as stalled");
    pending_gauge_ = &m.gauge(
        "trustrate_pending_ratings",
        "Ratings routed into the current epoch but not yet processed");
    buffered_gauge_ = &m.gauge(
        "trustrate_buffered_ratings",
        "Accepted ratings still held by the reordering buffer");
    // Deprecation gate (ISSUE 10 satellite): counts the old flat-name
    // series (trustrate_shardK_{routed,cells,skipped_cells}_total) still
    // emitted alongside their labeled replacements. Dashboards alert on
    // this being nonzero; the flat names disappear next release.
    m.gauge("trustrate_deprecated_metric_names",
            "Metric series emitted under deprecated names (removed next "
            "release)")
        .set(static_cast<double>(shards_.size() * 3));
    update_gauges();
  } else {
    ingest_submitted_ = nullptr;
    ingest_accepted_ = nullptr;
    ingest_reordered_ = nullptr;
    ingest_duplicates_ = nullptr;
    ingest_late_ = nullptr;
    ingest_malformed_ = nullptr;
    ingest_quarantined_ = nullptr;
    epochs_closed_metric_ = nullptr;
    epochs_degraded_metric_ = nullptr;
    epochs_skipped_empty_metric_ = nullptr;
    pending_gauge_ = nullptr;
    buffered_gauge_ = nullptr;
    shard_poisoned_metric_ = nullptr;
    shard_stalled_metric_ = nullptr;
  }
}

void ShardedRatingSystem::update_gauges() {
  // Probe mirrors publish unconditionally (a handful of relaxed stores):
  // the introspection server may attach mid-run without observability.
  probe_pub_.submitted.store(
      static_cast<std::uint64_t>(ingest_.stats().submitted),
      std::memory_order_relaxed);
  probe_pub_.pending.store(static_cast<std::uint64_t>(pending_count_),
                           std::memory_order_relaxed);
  probe_pub_.buffered.store(static_cast<std::uint64_t>(ingest_.buffered()),
                            std::memory_order_relaxed);
  probe_pub_.cells_issued.store(cells_issued_, std::memory_order_relaxed);
  probe_pub_.skipped_empty.store(
      static_cast<std::uint64_t>(skipped_empty_epochs_),
      std::memory_order_relaxed);
  probe_pub_.epoch_start.store(epoch_start_, std::memory_order_relaxed);
  probe_pub_.last_time.store(last_time_, std::memory_order_relaxed);
  probe_pub_.anchored.store(anchored_, std::memory_order_relaxed);
  if (pending_gauge_ == nullptr) return;
  pending_gauge_->set(static_cast<double>(pending_count_));
  buffered_gauge_->set(static_cast<double>(ingest_.buffered()));
}

obs::PipelineProbe ShardedRatingSystem::probe() const noexcept {
  obs::PipelineProbe p;
  p.threaded = options_.threaded;
  p.stall_budget = options_.supervision.stall_ticks;
  p.failed = pipeline_failed_.load(std::memory_order_acquire);
  if (p.failed) {
    // Post-latch the details are frozen; the lock is uncontended.
    std::lock_guard lock(failure_mutex_);
    p.failure_kind = to_string(failure_kind_);
    p.failure_shard = failure_shard_;
    p.failure_message = failure_message_;
  }
  p.submitted = probe_pub_.submitted.load(std::memory_order_relaxed);
  p.pending = probe_pub_.pending.load(std::memory_order_relaxed);
  p.buffered = probe_pub_.buffered.load(std::memory_order_relaxed);
  p.anchored = probe_pub_.anchored.load(std::memory_order_relaxed);
  p.epoch_start = probe_pub_.epoch_start.load(std::memory_order_relaxed);
  p.last_time = probe_pub_.last_time.load(std::memory_order_relaxed);
  p.cells_issued = probe_pub_.cells_issued.load(std::memory_order_relaxed);
  p.cells_merged = cells_merged_.load(std::memory_order_acquire);
  p.merge_lag =
      p.cells_issued > p.cells_merged ? p.cells_issued - p.cells_merged : 0;
  // A residual stall age with no outstanding cells is stale — the watchdog
  // only resets it on its next tick, which may never come once the wait
  // loop that was counting exits. No lag, no stall.
  p.merge_stall_age =
      p.merge_lag > 0 ? merge_stall_age_.load(std::memory_order_relaxed) : 0;
  p.skipped_empty_epochs =
      probe_pub_.skipped_empty.load(std::memory_order_relaxed);
  p.shards.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = *shards_[k];
    obs::ShardProbe s;
    s.index = k;
    s.poisoned = shard.poisoned.load(std::memory_order_acquire);
    s.abort_requested = shard.abort_requested.load(std::memory_order_acquire);
    s.events_pushed = shard.events_pushed.load(std::memory_order_relaxed);
    s.events_processed =
        shard.events_processed.load(std::memory_order_acquire);
    const std::uint64_t beat = shard.heartbeat.load(std::memory_order_relaxed);
    s.heartbeat_age = beat > s.events_processed ? beat - s.events_processed : 0;
    // Same staleness rule as merge_stall_age: an age left over from a wait
    // loop that already got its progress means nothing once the inbox is
    // drained.
    s.stall_age = s.events_pushed > s.events_processed
                      ? shard.stall_age.load(std::memory_order_relaxed)
                      : 0;
    s.inbox = {shard.inbox.size(), shard.inbox.high_water(),
               shard.inbox.producer_stalls(), shard.inbox.capacity()};
    s.outbox = {shard.outbox.size(), shard.outbox.high_water(),
                shard.outbox.producer_stalls(), shard.outbox.capacity()};
    s.quarantine_size = shard.quarantine_size.load(std::memory_order_relaxed);
    s.skipped_cells = shard.skipped_cells_pub.load(std::memory_order_relaxed);
    // Watchdog verdict (DESIGN.md §15 taxonomy): poisoned beats stalled
    // beats slow; "slow" is a positive stall age still under budget.
    if (s.poisoned) {
      s.health = obs::ShardHealth::kPoisoned;
    } else if (s.abort_requested ||
               (p.failed && p.failure_kind == "stalled" &&
                p.failure_shard == k)) {
      s.health = obs::ShardHealth::kStalled;
    } else if (s.stall_age > 0) {
      s.health = obs::ShardHealth::kSlow;
    } else {
      s.health = obs::ShardHealth::kOk;
    }
    p.shards.push_back(std::move(s));
  }
  return p;
}

}  // namespace trustrate::core::shard
