// Bounded lock-free single-producer/single-consumer ring queue — the
// transport between the ingest thread and each shard worker, and between
// each shard worker and the merge thread (DESIGN.md §14).
//
// Classic Lamport ring with C++11 atomics:
//
//  * capacity is rounded up to a power of two; indices are monotonic, so
//    occupancy is head − tail and every slot is usable (no sacrificial
//    empty slot);
//  * the producer owns `head_` (writes with release after constructing the
//    slot), the consumer owns `tail_` (writes with release after moving
//    the slot out); each side reads the other's index with acquire and
//    caches it to avoid ping-ponging the line on every call;
//  * indices are monotonically increasing u64s masked into the ring, so
//    wraparound is free of ABA concerns for any realistic stream length;
//  * head_/tail_ live on separate (destructive-interference-sized) cache
//    lines so the producer and consumer don't false-share.
//
// Backpressure contract: try_push fails (returns false) when the ring is
// full — the bounded buffer IS the backpressure; push() spins briefly and
// then yields, so a producer ahead of a slow shard degrades to polite
// blocking instead of unbounded memory growth (and still makes progress on
// a single hardware thread, where spinning alone would deadlock the
// consumer off the core). pop()/try_pop mirror the same discipline.
//
// T must be movable. The queue never allocates after construction; slots
// are default-constructed up front and assigned through.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace trustrate::core::shard {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is the number of elements the ring can hold; it is rounded
  /// up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }  ///< usable slots

  /// Producer side. False when the ring is full (backpressure).
  bool try_push(T&& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push: spins a bounded number of times, then yields between
  /// attempts — the consumer may be sharing this core.
  void push(T&& value) {
    std::size_t spins = 0;
    while (!try_push(std::move(value))) {
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Blocking pop, same spin-then-yield discipline as push().
  T pop() {
    T out;
    std::size_t spins = 0;
    while (!try_pop(out)) {
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    return out;
  }

  /// Consumer-visible occupancy (approximate from any other thread).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }

 private:
  static constexpr std::size_t kSpinLimit = 64;
  /// Destructive-interference distance, fixed at 64 bytes (every target we
  /// build for) rather than std::hardware_destructive_interference_size,
  /// whose value — and hence this header's ABI — shifts with -mtune.
  static constexpr std::size_t kLine = 64;

  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(kLine) std::atomic<std::uint64_t> head_{0};  ///< producer-owned
  alignas(kLine) std::uint64_t cached_tail_ = 0;       ///< producer-local
  alignas(kLine) std::atomic<std::uint64_t> tail_{0};  ///< consumer-owned
  alignas(kLine) std::uint64_t cached_head_ = 0;       ///< consumer-local
};

}  // namespace trustrate::core::shard
