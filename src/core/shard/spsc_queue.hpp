// Bounded lock-free single-producer/single-consumer ring queue — the
// transport between the ingest thread and each shard worker, and between
// each shard worker and the merge thread (DESIGN.md §14, §15).
//
// Classic Lamport ring with C++11 atomics:
//
//  * capacity is rounded up to a power of two; indices are monotonic, so
//    occupancy is head − tail and every slot is usable (no sacrificial
//    empty slot);
//  * the producer owns `head_` (writes with release after constructing the
//    slot), the consumer owns `tail_` (writes with release after moving
//    the slot out); each side reads the other's index with acquire and
//    caches it to avoid ping-ponging the line on every call;
//  * indices are monotonically increasing u64s masked into the ring, so
//    wraparound is free of ABA concerns for any realistic stream length;
//  * head_/tail_ live on separate (destructive-interference-sized) cache
//    lines so the producer and consumer don't false-share.
//
// Backpressure contract: try_push fails (returns false) when the ring is
// full — the bounded buffer IS the backpressure; push() spins briefly and
// then yields, so a producer ahead of a slow shard degrades to polite
// blocking instead of unbounded memory growth (and still makes progress on
// a single hardware thread, where spinning alone would deadlock the
// consumer off the core). pop()/try_pop mirror the same discipline.
//
// Close/poison contract (DESIGN.md §15): either side (or a supervisor
// thread) may close() the queue. A closed queue refuses new items —
// push()/try_push return false — but still DELIVERS everything enqueued
// before the close: pop() drains the ring and only then returns false.
// This is what makes a supervised shutdown provably non-blocking: once
// every ring is closed, every blocked push() and pop() in the system
// returns within a bounded number of steps, so worker joins cannot hang on
// a dead peer. An item raced in concurrently with close() may be either
// delivered or dropped; supervision only closes rings it is about to
// discard, so the ambiguity is harmless.
//
// Batched transfers: try_push_n/try_pop_n move a span of items with ONE
// index store (one release, one cache-line handoff) instead of one per
// item, amortizing the inter-core traffic that dominates small-payload
// rings; pop_n is the blocking form the shard workers drain with.
//
// T must be movable. The queue never allocates after construction; slots
// are default-constructed up front and assigned through.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace trustrate::core::shard {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is the number of elements the ring can hold; it is rounded
  /// up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }  ///< usable slots

  /// Poisons the queue: subsequent pushes are refused, blocked calls on
  /// either side return once the ring drains. Idempotent; any thread may
  /// call it (this is the one operation a third, supervising thread is
  /// allowed).
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Producer side. False when the ring is full (backpressure) or closed.
  /// On failure `value` is untouched, so the caller can retry or reroute.
  bool try_push(T&& value) {
    if (closed()) return false;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    note_occupancy(head + 1 - cached_tail_);
    return true;
  }

  /// Producer side, span form: moves out of items[0..n) as many as fit and
  /// publishes them with a single release store. Returns the count moved
  /// (0 when full or closed); items beyond it are untouched.
  std::size_t try_push_n(T* items, std::size_t n) {
    if (n == 0 || closed()) return 0;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(head - cached_tail_);
    if (free < n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(head - cached_tail_);
    }
    const std::size_t count = std::min(n, free);
    if (count == 0) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    for (std::size_t i = 0; i < count; ++i) {
      slots_[(head + i) & mask_] = std::move(items[i]);
    }
    head_.store(head + count, std::memory_order_release);
    note_occupancy(head + count - cached_tail_);
    return count;
  }

  /// Blocking push: spins a bounded number of times, then yields between
  /// attempts — the consumer may be sharing this core. Returns false (with
  /// `value` untouched) when the queue is closed: the consumer is gone and
  /// waiting longer cannot help.
  bool push(T&& value) {
    std::size_t spins = 0;
    while (!try_push(std::move(value))) {
      if (closed()) return false;
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, span form: pops up to `max` immediately-available
  /// items into out[0..) and retires them with a single release store.
  /// Returns the count popped (0 when the ring is momentarily empty).
  std::size_t try_pop_n(T* out, std::size_t max) {
    if (max == 0) return 0;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_head_ - tail);
    if (avail == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_head_ - tail);
      if (avail == 0) return 0;
    }
    const std::size_t count = std::min(max, avail);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Blocking pop, same spin-then-yield discipline as push(). Returns
  /// false only when the queue is closed AND fully drained — items pushed
  /// before the close are always delivered (the close() release /
  /// closed() acquire pair makes the final head_ store visible before the
  /// drain check concludes).
  bool pop(T& out) {
    std::size_t spins = 0;
    for (;;) {
      if (try_pop(out)) return true;
      if (closed()) return try_pop(out);
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  /// Blocking span pop: waits until at least one item is available (or
  /// the queue is closed and drained — returns 0), then pops up to `max`
  /// with one index store.
  std::size_t pop_n(T* out, std::size_t max) {
    std::size_t spins = 0;
    for (;;) {
      const std::size_t n = try_pop_n(out, max);
      if (n != 0) return n;
      if (closed()) return try_pop_n(out, max);
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  /// Consumer-visible occupancy (approximate from any other thread).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }

  // -- Backpressure telemetry (ISSUE 10). Relaxed atomics, written only by
  // the producer, readable from ANY thread (the introspection server
  // scrapes them mid-run) without perturbing semantics: the on-vs-off
  // digest oracle in tests/introspection_test.cpp pins that pushing with a
  // scraper attached changes nothing the pipeline computes.

  /// Max occupancy the producer has observed just after a push. Computed
  /// against its cached view of the consumer cursor, so it is an upper
  /// bound on true occupancy at that instant — an honest high-water mark
  /// for "how full did this ring get", not an exact trajectory.
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Failed push attempts against a FULL ring (closed refusals excluded).
  /// Each spin iteration of a blocked producer counts, so the number reads
  /// as backpressure *pressure*, not distinct episodes.
  std::uint64_t producer_stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  /// Producer-only high-water update: single writer, relaxed is enough.
  void note_occupancy(std::uint64_t occupancy) {
    if (occupancy > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(occupancy, std::memory_order_relaxed);
    }
  }

  static constexpr std::size_t kSpinLimit = 64;
  /// Destructive-interference distance, fixed at 64 bytes (every target we
  /// build for) rather than std::hardware_destructive_interference_size,
  /// whose value — and hence this header's ABI — shifts with -mtune.
  static constexpr std::size_t kLine = 64;

  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(kLine) std::atomic<std::uint64_t> head_{0};  ///< producer-owned
  /// cached_tail_ shares the producer-local line with the telemetry cells:
  /// all three are written by the producer only, so co-residency is free.
  alignas(kLine) std::uint64_t cached_tail_ = 0;
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> stalls_{0};
  alignas(kLine) std::atomic<std::uint64_t> tail_{0};  ///< consumer-owned
  alignas(kLine) std::uint64_t cached_head_ = 0;       ///< consumer-local
  /// Written at most once per lifecycle; read in every blocking loop. Own
  /// line so the hot index lines stay exclusive to their owners.
  alignas(kLine) std::atomic<bool> closed_{false};
};

}  // namespace trustrate::core::shard
