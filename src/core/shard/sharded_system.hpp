// Sharded multi-core service engine (ISSUE 8 tentpole, DESIGN.md §14).
//
// StreamingRatingSystem is one pipeline: one reorder buffer, one pending
// map, one epoch engine. The parallel engine (core/parallel) saturates
// cores *within* an epoch close, but every rating still funnels through a
// single routing path. ShardedRatingSystem partitions products across N
// independent shards — each with its own pending/retained maps, its own
// BetaQuantileFilter + ArSuspicionDetector + EpochEngine, and its own
// capped dead-letter store — while keeping the three pieces of state that
// must stay global exactly where they are:
//
//  * the ingest classifier (watermark, duplicate horizon, counters): a
//    rating's accepted/late/duplicate verdict must not depend on the shard
//    layout, so classification happens at the front door before routing;
//  * the epoch grid cursor: epochs are a property of the stream, not of a
//    shard — one coordinator walks the same boundary logic as
//    StreamingRatingSystem::route, and a fully-empty gap fast-forwards in
//    O(1) only when *no* shard holds pending data (a gap on one shard
//    never fast-forwards the others; shards merely record a skipped cell);
//  * rater-level trust: C(i) and trust records span shards, so one merge
//    authority (a TrustEnhancedRatingSystem) folds the per-shard analyses
//    into Procedure 2.
//
// Determinism argument (the oracle's path 9 asserts it bitwise): per-
// product analysis is a pure function of (observation, config) — the same
// property that makes the epoch engine worker-count-invariant — so *which*
// shard analyzes a product cannot change its report. At each epoch close
// the shards' report slices are concatenated and sorted by product ID,
// recreating exactly the canonical product order of the unsharded close,
// and TrustEnhancedRatingSystem::merge_epoch runs the same stage-2 merge
// (integer counts in slot order, per-rater suspicion terms sorted before
// summing — the PR 3 discipline). Digests are therefore bitwise identical
// at ANY shard count, any worker count, and any placement function.
//
// Execution modes:
//
//  * inline (ShardOptions::threaded == false): everything runs on the
//    calling thread; shards are just partitioned state. This is the mode
//    the conformance oracle sweeps — identical results, zero threads.
//  * threaded: the submit() caller classifies and routes events into one
//    bounded lock-free SPSC queue per shard (core/shard/spsc_queue.hpp;
//    a full ring blocks the producer — bounded memory backpressure);
//    shard workers buffer ratings and analyze their slice at each close;
//    a merge thread combines one result per shard per cell, in cell
//    order, and applies the canonical merge. Pipeline parallelism: shard
//    k can analyze cell c while the merger folds cell c−1.
//
// Threading contract: one thread calls submit()/flush(). Query methods
// (trust, aggregate, stats, health) quiesce first — they wait until every
// routed event is consumed and every issued cell is merged — and must not
// run concurrently with submit(). The epoch observer fires on the merge
// thread in threaded mode.
//
// Checkpoints: snapshot() produces the global StreamSnapshot (per-shard
// dead letters merged by their global arrival ordinal); save() writes
// checkpoint v4 (layout + per-shard sections). from_snapshot() partitions
// under the *target* layout, so any checkpoint version resumes at any
// shard count — including a v3 pre-shard checkpoint (the v3→v4
// compatibility regression pins this).
//
// Supervision (ISSUE 9 tentpole, DESIGN.md §15): in threaded mode every
// worker runs under exception containment. A throwing worker marks its
// shard *poisoned* (the exception_ptr is stashed), emits a poison sentinel
// downstream, and closes every ring, so no thread can block on a dead
// peer; a deterministic tick-driven watchdog classifies a shard as
// *stalled* when its inbox is non-empty but events_processed stops
// advancing within SupervisionOptions::stall_ticks observation rounds.
// Either way the pipeline latches a structured failure: the next public
// API call throws ShardFailure (common/error.hpp) instead of hanging or
// aborting, and destruction still joins cleanly because closed rings
// bound every wait (the shutdown-protocol proof sketch is in DESIGN.md
// §15). ShardedDurableStream catches ShardFailure and heals by replaying
// checkpoint + WAL — bitwise-identical to a fault-free run (oracle path
// 10) — or fail-stops with the diagnostic when healing is disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/ingest.hpp"
#include "core/shard/shard_map.hpp"
#include "core/shard/spsc_queue.hpp"
#include "core/system.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "obs/introspect.hpp"

namespace trustrate::core {
struct CheckpointAccess;  // checkpoint.cpp moves state in and out
}  // namespace trustrate::core

namespace trustrate::core::parallel {
class EpochEngine;
}  // namespace trustrate::core::parallel

namespace trustrate::core::shard {

/// Watchdog budgets for the threaded pipeline. The supervisor runs on the
/// coordinator thread and counts deterministic *observation ticks* (one
/// per submit() plus one per round of any bounded wait — a virtual clock
/// like the durable layer's VirtualIoClock, no wall time), so stall
/// classification does not depend on machine speed for whether it fires,
/// only for how long a tick takes.
struct SupervisionOptions {
  /// Consecutive no-progress observation ticks (inbox non-empty, no
  /// events_processed advance) before a shard is classified as stalled
  /// and the pipeline fail-stops. 0 disables the watchdog: waits then
  /// block until the peer makes progress or a failure closes the rings,
  /// exactly the pre-supervision behavior.
  std::uint64_t stall_ticks = std::uint64_t{1} << 26;
};

/// Context handed to ShardOptions::event_hook before a shard worker
/// processes each event. `abort` is set by the watchdog once the shard is
/// classified as stalled — a cooperative injected stall polls it so
/// shutdown provably terminates.
struct ShardEventContext {
  std::size_t shard = 0;       ///< worker's shard index
  std::uint64_t ordinal = 0;   ///< events this shard processed so far
  const std::atomic<bool>* abort = nullptr;
};

/// Test-only fault injection point (testkit::ThreadFaultInjector adapts
/// onto it). Called on the worker thread; may throw (crash), sleep
/// (slow), or poll ctx.abort in a bounded loop (stall). Null — and zero
/// cost — in production. Threaded mode only.
using ShardEventHook = std::function<void(const ShardEventContext&)>;

struct ShardOptions {
  /// Number of product shards (>= 1).
  std::size_t shards = 1;

  /// false: inline mode — partitioned state, zero threads, bitwise the
  /// reference. true: one worker thread per shard plus a merge thread.
  bool threaded = false;

  /// Capacity of each SPSC ring (rounded up to a power of two). A full
  /// ring blocks the producer: this bound IS the backpressure.
  std::size_t queue_capacity = 4096;

  /// Worker count of each shard's epoch engine; 0 inherits
  /// SystemConfig::epoch_workers.
  std::size_t epoch_workers = 0;

  /// Product placement override for tests (default: shard_of). Layout
  /// only — results are placement-invariant; the adversarial-skew tests
  /// route everything to one shard and assert digests don't move.
  std::function<std::size_t(ProductId, std::size_t)> shard_fn;

  /// Watchdog budgets (threaded mode).
  SupervisionOptions supervision;

  /// Per-event fault-injection hook (threaded mode, tests only).
  ShardEventHook event_hook;
};

class ShardedRatingSystem {
 public:
  ShardedRatingSystem(SystemConfig config, ShardOptions options,
                      double epoch_days = 30.0,
                      std::size_t retention_epochs = 2, IngestConfig ingest = {});
  ~ShardedRatingSystem();

  ShardedRatingSystem(const ShardedRatingSystem&) = delete;
  ShardedRatingSystem& operator=(const ShardedRatingSystem&) = delete;

  /// Classifies and routes one rating; same in-band error policy as
  /// StreamingRatingSystem::submit. In threaded mode the call returns once
  /// the event is enqueued (or after blocking on a full ring).
  IngestClass submit(const Rating& rating);

  /// Drains the reorder buffer and closes the in-progress epoch regardless
  /// of time. Returns the number of products processed. Quiesces.
  std::size_t flush();

  double trust(RaterId id) const;
  std::vector<RaterId> malicious() const;

  /// Trust-weighted aggregate over the owning shard's retained + pending
  /// ratings for the product (see StreamingRatingSystem::aggregate).
  std::optional<double> aggregate(ProductId product) const;

  std::size_t epochs_closed() const;
  const std::vector<EpochHealth>& epoch_health() const;
  std::size_t degraded_epochs() const;

  /// Fully-empty epochs the *global* cursor fast-forwarded over (no shard
  /// had pending data) — same meaning as the unsharded counter.
  std::size_t skipped_empty_epochs() const;

  /// Per-shard skipped cells: epoch closes that ran with no pending data
  /// on that shard (plus nothing at a flush). Layout-scoped diagnostics —
  /// they restore from a checkpoint only at a matching shard count.
  std::vector<std::size_t> shard_skipped_cells() const;

  std::size_t pending_ratings() const;
  std::size_t buffered_ratings() const { return ingest_.buffered(); }
  const IngestStats& ingest_stats() const { return ingest_.stats(); }

  /// Shard k's dead-letter store, oldest first (per-shard cap =
  /// IngestConfig::max_quarantine). The global `quarantined` counter in
  /// ingest_stats() is preserved across the split.
  std::vector<QuarantinedRating> shard_quarantine(std::size_t k) const;

  /// All shards' dead letters merged back into global arrival order.
  std::vector<QuarantinedRating> quarantine() const;

  using EpochCloseObserver = StreamingRatingSystem::EpochCloseObserver;
  /// Fires after each non-empty epoch closes (merge thread in threaded
  /// mode). Call before submitting; not checkpoint state.
  void set_epoch_observer(EpochCloseObserver observer);

  /// Attaches metrics/trace/audit. Global ingest + epoch instruments plus
  /// per-shard routed/cells/skipped counters and per-shard analyze spans.
  /// Out-of-band; call before submitting, never mid-stream.
  void set_observability(const obs::Observability& o);

  /// The merge authority: global trust state, epoch counter, aggregation.
  const TrustEnhancedRatingSystem& system() const { return merge_; }
  /// Which shard owns `product` under this system's layout.
  std::size_t shard_for(ProductId product) const { return shard_index(product); }
  double epoch_days() const { return epoch_days_; }
  std::size_t retention_epochs() const { return retention_epochs_; }
  std::size_t shards() const { return shards_.size(); }
  const ShardOptions& options() const { return options_; }

  /// Blocks until every routed event is consumed and every issued cell is
  /// merged. No-op in inline mode. Safe to call repeatedly. The wait is
  /// bounded by supervision: if a shard is poisoned, or stops making
  /// progress for SupervisionOptions::stall_ticks observation rounds,
  /// this throws ShardFailure naming the wedged shard (inbox depth,
  /// events pushed vs processed, heartbeat age) instead of hanging.
  void quiesce() const;

  /// True once supervision has latched a failure; every public entry
  /// point then throws the corresponding ShardFailure. Destruction stays
  /// safe — closed rings bound every wait, so joins complete.
  bool failed() const {
    return pipeline_failed_.load(std::memory_order_acquire);
  }

  /// The latched failure, rebuilt as a throwable ShardFailure (nullptr
  /// when healthy). For a poisoned shard the original worker exception is
  /// nested in the message.
  std::optional<ShardFailure> failure() const;

  /// Lock-free-ish introspection snapshot for the /healthz and /status
  /// endpoints (ISSUE 10). Unlike every other query this does NOT quiesce
  /// and never throws: it reads only relaxed/acquire atomics (plus the
  /// failure mutex once a failure has latched, by then uncontended), so
  /// the HTTP server thread may call it while another thread submits.
  /// The snapshot is approximate — a scrape racing an ingest batch sees a
  /// recent past, not a linearizable cut (DESIGN.md §16).
  obs::PipelineProbe probe() const noexcept;

  /// Global state extraction (quiesces first): per-shard pending/retained
  /// merged, dead letters in global order, layout recorded.
  StreamSnapshot snapshot();

  /// Writes a v4 (sharded) checkpoint.
  void save(std::ostream& out);

  /// Rebuilds a sharded system from any snapshot, partitioning under THIS
  /// options' layout. snapshot.shards may differ from options.shards (or
  /// be 0 for a pre-shard checkpoint): pending/retained re-partition;
  /// per-shard skipped-cell counters restore only on a layout match.
  static std::unique_ptr<ShardedRatingSystem> from_snapshot(
      const StreamSnapshot& snapshot, const SystemConfig& config,
      ShardOptions options);

  /// parse_checkpoint + from_snapshot (accepts checkpoint versions 1–4).
  static std::unique_ptr<ShardedRatingSystem> load(std::istream& in,
                                                   const SystemConfig& config,
                                                   ShardOptions options);

 private:
  friend struct trustrate::core::CheckpointAccess;

  /// One dead-lettered rating with its global arrival ordinal (the value
  /// of IngestStats::quarantined when it was dead-lettered): per-shard
  /// stores merge back into global order by sorting on it.
  struct DeadLetter {
    QuarantinedRating entry;
    std::uint64_t seq = 0;
  };

  /// Event streamed to a shard worker (threaded mode).
  struct ShardEvent {
    enum class Type : std::uint8_t { kRating, kQuarantine, kClose, kStop };
    Type type = Type::kRating;
    Rating rating;            ///< kRating
    QuarantinedRating dead;   ///< kQuarantine
    std::uint64_t seq = 0;    ///< kQuarantine: dead-letter ordinal; kClose: cell
    double epoch_start = 0.0;  ///< kClose
    double epoch_end = 0.0;    ///< kClose
    /// kRating: causal ID — the global submission ordinal of the submit()
    /// that admitted this rating into routing (its own ordinal for
    /// in-order arrivals; the releasing submission's for reordered ones).
    std::uint64_t causal = 0;
  };

  /// One shard's contribution to one epoch cell (threaded mode). The
  /// sentinel (cell == kStopCell) acknowledges kStop; kPoisonCell is the
  /// poison sentinel a dying worker emits so the merge thread never
  /// blocks on a dead outbox.
  struct ShardResult {
    std::uint64_t cell = 0;
    double epoch_start = 0.0;
    double epoch_end = 0.0;
    std::vector<ProductObservation> observations;  ///< sorted by product
    std::vector<ProductReport> reports;            ///< aligned with above
    /// Causal ID range of the ratings this cell analyzed on this shard
    /// (0,0 when the cell saw none) — carried so merge spans can report
    /// the whole cell's range.
    std::uint64_t causal_lo = 0;
    std::uint64_t causal_hi = 0;
  };
  static constexpr std::uint64_t kStopCell = ~std::uint64_t{0};
  static constexpr std::uint64_t kPoisonCell = ~std::uint64_t{0} - 1;

  struct Shard {
    detect::BetaQuantileFilter filter;
    detect::ArSuspicionDetector detector;
    std::unique_ptr<parallel::EpochEngine> engine;

    std::unordered_map<ProductId, RatingSeries> pending;
    struct Retained {
      std::vector<RatingSeries> epochs;
    };
    std::unordered_map<ProductId, Retained> retained;
    std::deque<DeadLetter> quarantine;
    std::size_t skipped_cells = 0;

    /// Owner-thread causal-range accumulator for the cell in progress
    /// (coordinator in inline mode, worker in threaded mode — never both).
    std::uint64_t cell_causal_lo = 0;
    std::uint64_t cell_causal_hi = 0;

    /// Probe mirrors (ISSUE 10): relaxed atomics published by the owner
    /// thread so the introspection server can read dead-letter occupancy
    /// and skipped-cell counts without touching the deque/counter.
    std::atomic<std::uint64_t> quarantine_size{0};
    std::atomic<std::uint64_t> skipped_cells_pub{0};

    // Threaded mode.
    SpscQueue<ShardEvent> inbox;
    SpscQueue<ShardResult> outbox;
    std::thread worker;
    /// Coordinator-owned writer; atomic because worker-side diagnostics
    /// (contain_worker_failure) read it from the failing thread.
    std::atomic<std::uint64_t> events_pushed{0};
    std::atomic<std::uint64_t> events_processed{0};

    // Supervision (DESIGN.md §15). The worker bumps `heartbeat` when it
    // STARTS an event and events_processed when it finishes, so the
    // watchdog's diagnostic can tell "between events" from "mid-event".
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<bool> abort_requested{false};  ///< set when classified stalled
    std::atomic<bool> poisoned{false};
    std::exception_ptr worker_error;  ///< written before poisoned (release)

    // Watchdog state, coordinator-owned (mutated during const waits via
    // the unique_ptr indirection — the threading contract already pins
    // quiesce/queries to the submit thread). stall_age is atomic only so
    // probe() can read the watchdog's view from the server thread; the
    // coordinator remains its single writer.
    std::uint64_t watch_processed = 0;  ///< last observed events_processed
    std::atomic<std::uint64_t> stall_age{0};  ///< consecutive no-progress ticks
    std::vector<ShardEvent> staged;     ///< coordinator batch for try_push_n

    // Observability (resolved in set_observability; null when off). Each
    // per-shard counter has two series for one release: the labeled
    // family ("trustrate_shard_routed_total{shard=\"k\"}", the
    // convention-conforming form) and the deprecated flat name
    // ("trustrate_shardK_routed_total") — see the deprecation gauge.
    std::string analyze_span_name;  ///< stable storage for SpanTimer
    obs::Counter* routed_metric = nullptr;
    obs::Counter* cells_metric = nullptr;
    obs::Counter* skipped_metric = nullptr;
    obs::Counter* routed_labeled_ = nullptr;
    obs::Counter* cells_labeled_ = nullptr;
    obs::Counter* skipped_labeled_ = nullptr;

    Shard(const SystemConfig& config, std::size_t workers,
          std::size_t queue_capacity);
  };

  std::size_t shard_index(ProductId product) const;
  void route(const Rating& rating);
  void fast_forward_empty_epochs(double now);
  /// Issues the close of the cell ending at `epoch_end` (inline: runs it;
  /// threaded: enqueues kClose on every shard).
  void issue_close(double epoch_end);
  /// Analyzes one shard's pending slice for a cell; updates retained and
  /// skipped-cell accounting. Runs on the shard's owner thread.
  ShardResult analyze_cell(Shard& shard, std::uint64_t cell,
                           double epoch_start, double epoch_end);
  /// Concatenate-sort-merge one cell's shard results; fires the observer.
  /// Runs on the merge thread (threaded) or the caller (inline).
  void merge_cell(std::vector<ShardResult> results);
  void shard_worker(std::size_t k);
  void merge_worker();
  void start_threads();
  /// Close/poison-aware shutdown: closes every ring (so every blocked
  /// push/pop returns), then joins. Never throws, never hangs — see the
  /// protocol proof sketch in DESIGN.md §15.
  void stop_threads();
  void enqueue(std::size_t k, ShardEvent&& event);
  /// Buffers a rating event for `k`; flush_staged() pushes each shard's
  /// run with one try_push_n span (satellite: batched ring transfers).
  void stage_event(std::size_t k, ShardEvent&& event);
  void flush_staged();
  void add_dead_letter(Shard& shard, QuarantinedRating&& entry,
                       std::uint64_t seq);
  void update_gauges();

  // --- supervision (coordinator side unless noted) ---
  /// Rethrows the latched ShardFailure, if any.
  void throw_if_failed() const;
  /// Latches the failure (first caller wins), emits the audit event +
  /// metric, and closes every ring so no wait can outlive it. Safe from
  /// any thread; never throws.
  void fail_pipeline(ShardFailureKind kind, std::size_t shard,
                     const std::string& message, std::string diagnostic,
                     std::exception_ptr error) noexcept;
  /// Worker-side containment: stash the exception, poison the shard, emit
  /// the poison sentinel, then fail_pipeline.
  void contain_worker_failure(std::size_t k, std::exception_ptr error) noexcept;
  /// One watchdog observation round (a deterministic virtual-clock tick):
  /// advances per-shard stall ages, classifies stalls past the budget
  /// (latching a failure), and throws if the pipeline has failed.
  void supervised_tick() const;
  /// Progress counters for shard k, formatted for diagnostics.
  std::string shard_diagnostic(std::size_t k) const;

  SystemConfig config_;
  ShardOptions options_;
  TrustEnhancedRatingSystem merge_;  ///< global trust + stage-2 authority
  double epoch_days_;
  std::size_t retention_epochs_;

  IngestBuffer ingest_;  ///< global classifier front door
  std::vector<Rating> released_;

  bool anchored_ = false;
  double epoch_start_ = 0.0;
  double last_time_ = 0.0;
  std::size_t skipped_empty_epochs_ = 0;
  std::size_t pending_count_ = 0;  ///< ratings routed since the last close

  std::vector<std::unique_ptr<Shard>> shards_;

  // Written by the merge thread (threaded) or the caller (inline); reads
  // from other threads must quiesce first (cells_merged_ release/acquire
  // publishes them).
  std::size_t epochs_closed_ = 0;
  std::vector<EpochHealth> epoch_health_;
  std::size_t last_close_products_ = 0;
  EpochCloseObserver epoch_observer_;

  std::uint64_t cells_issued_ = 0;  ///< coordinator-owned
  std::atomic<std::uint64_t> cells_merged_{0};
  std::thread merge_thread_;
  bool threads_running_ = false;

  /// Causal ID of the submit() currently routing (0 outside submit/flush);
  /// coordinator-owned, stamped onto every kRating event it stages.
  std::uint64_t current_causal_ = 0;

  /// Probe mirrors (ISSUE 10): relaxed-atomic copies of coordinator-owned
  /// cursor state, published at the end of each submit()/flush() so the
  /// introspection server reads a TSan-clean recent past. Never read by
  /// the pipeline itself.
  struct ProbePub {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> pending{0};
    std::atomic<std::uint64_t> buffered{0};
    std::atomic<std::uint64_t> cells_issued{0};
    std::atomic<std::uint64_t> skipped_empty{0};
    std::atomic<double> epoch_start{0.0};
    std::atomic<double> last_time{0.0};
    std::atomic<bool> anchored{false};
  };
  mutable ProbePub probe_pub_;

  // Supervision state. `pipeline_failed_` is the fast-path flag; the
  // details live behind the mutex (workers, the merge thread, and the
  // watchdog may race to fail first — the first latches).
  std::atomic<bool> pipeline_failed_{false};
  mutable std::mutex failure_mutex_;
  bool failure_recorded_ = false;
  ShardFailureKind failure_kind_ = ShardFailureKind::kPoisoned;
  std::size_t failure_shard_ = 0;
  std::string failure_message_;
  std::string failure_diagnostic_;
  std::exception_ptr failure_error_;
  // Merge-thread watchdog counters (coordinator-owned, mutated during
  // const waits; merge_stall_age_ is atomic only for probe() reads).
  mutable std::uint64_t merge_watch_ = 0;
  mutable std::atomic<std::uint64_t> merge_stall_age_{0};

  obs::Observability obs_;
  obs::Counter* ingest_submitted_ = nullptr;
  obs::Counter* ingest_accepted_ = nullptr;
  obs::Counter* ingest_reordered_ = nullptr;
  obs::Counter* ingest_duplicates_ = nullptr;
  obs::Counter* ingest_late_ = nullptr;
  obs::Counter* ingest_malformed_ = nullptr;
  obs::Counter* ingest_quarantined_ = nullptr;
  obs::Counter* epochs_closed_metric_ = nullptr;
  obs::Counter* epochs_degraded_metric_ = nullptr;
  obs::Counter* epochs_skipped_empty_metric_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* buffered_gauge_ = nullptr;
  obs::Counter* shard_poisoned_metric_ = nullptr;
  obs::Counter* shard_stalled_metric_ = nullptr;
};

}  // namespace trustrate::core::shard
