// Sharded multi-core service engine (ISSUE 8 tentpole, DESIGN.md §14).
//
// StreamingRatingSystem is one pipeline: one reorder buffer, one pending
// map, one epoch engine. The parallel engine (core/parallel) saturates
// cores *within* an epoch close, but every rating still funnels through a
// single routing path. ShardedRatingSystem partitions products across N
// independent shards — each with its own pending/retained maps, its own
// BetaQuantileFilter + ArSuspicionDetector + EpochEngine, and its own
// capped dead-letter store — while keeping the three pieces of state that
// must stay global exactly where they are:
//
//  * the ingest classifier (watermark, duplicate horizon, counters): a
//    rating's accepted/late/duplicate verdict must not depend on the shard
//    layout, so classification happens at the front door before routing;
//  * the epoch grid cursor: epochs are a property of the stream, not of a
//    shard — one coordinator walks the same boundary logic as
//    StreamingRatingSystem::route, and a fully-empty gap fast-forwards in
//    O(1) only when *no* shard holds pending data (a gap on one shard
//    never fast-forwards the others; shards merely record a skipped cell);
//  * rater-level trust: C(i) and trust records span shards, so one merge
//    authority (a TrustEnhancedRatingSystem) folds the per-shard analyses
//    into Procedure 2.
//
// Determinism argument (the oracle's path 9 asserts it bitwise): per-
// product analysis is a pure function of (observation, config) — the same
// property that makes the epoch engine worker-count-invariant — so *which*
// shard analyzes a product cannot change its report. At each epoch close
// the shards' report slices are concatenated and sorted by product ID,
// recreating exactly the canonical product order of the unsharded close,
// and TrustEnhancedRatingSystem::merge_epoch runs the same stage-2 merge
// (integer counts in slot order, per-rater suspicion terms sorted before
// summing — the PR 3 discipline). Digests are therefore bitwise identical
// at ANY shard count, any worker count, and any placement function.
//
// Execution modes:
//
//  * inline (ShardOptions::threaded == false): everything runs on the
//    calling thread; shards are just partitioned state. This is the mode
//    the conformance oracle sweeps — identical results, zero threads.
//  * threaded: the submit() caller classifies and routes events into one
//    bounded lock-free SPSC queue per shard (core/shard/spsc_queue.hpp;
//    a full ring blocks the producer — bounded memory backpressure);
//    shard workers buffer ratings and analyze their slice at each close;
//    a merge thread combines one result per shard per cell, in cell
//    order, and applies the canonical merge. Pipeline parallelism: shard
//    k can analyze cell c while the merger folds cell c−1.
//
// Threading contract: one thread calls submit()/flush(). Query methods
// (trust, aggregate, stats, health) quiesce first — they wait until every
// routed event is consumed and every issued cell is merged — and must not
// run concurrently with submit(). The epoch observer fires on the merge
// thread in threaded mode.
//
// Checkpoints: snapshot() produces the global StreamSnapshot (per-shard
// dead letters merged by their global arrival ordinal); save() writes
// checkpoint v4 (layout + per-shard sections). from_snapshot() partitions
// under the *target* layout, so any checkpoint version resumes at any
// shard count — including a v3 pre-shard checkpoint (the v3→v4
// compatibility regression pins this).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/ingest.hpp"
#include "core/shard/shard_map.hpp"
#include "core/shard/spsc_queue.hpp"
#include "core/system.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"

namespace trustrate::core {
struct CheckpointAccess;  // checkpoint.cpp moves state in and out
}  // namespace trustrate::core

namespace trustrate::core::parallel {
class EpochEngine;
}  // namespace trustrate::core::parallel

namespace trustrate::core::shard {

struct ShardOptions {
  /// Number of product shards (>= 1).
  std::size_t shards = 1;

  /// false: inline mode — partitioned state, zero threads, bitwise the
  /// reference. true: one worker thread per shard plus a merge thread.
  bool threaded = false;

  /// Capacity of each SPSC ring (rounded up to a power of two). A full
  /// ring blocks the producer: this bound IS the backpressure.
  std::size_t queue_capacity = 4096;

  /// Worker count of each shard's epoch engine; 0 inherits
  /// SystemConfig::epoch_workers.
  std::size_t epoch_workers = 0;

  /// Product placement override for tests (default: shard_of). Layout
  /// only — results are placement-invariant; the adversarial-skew tests
  /// route everything to one shard and assert digests don't move.
  std::function<std::size_t(ProductId, std::size_t)> shard_fn;
};

class ShardedRatingSystem {
 public:
  ShardedRatingSystem(SystemConfig config, ShardOptions options,
                      double epoch_days = 30.0,
                      std::size_t retention_epochs = 2, IngestConfig ingest = {});
  ~ShardedRatingSystem();

  ShardedRatingSystem(const ShardedRatingSystem&) = delete;
  ShardedRatingSystem& operator=(const ShardedRatingSystem&) = delete;

  /// Classifies and routes one rating; same in-band error policy as
  /// StreamingRatingSystem::submit. In threaded mode the call returns once
  /// the event is enqueued (or after blocking on a full ring).
  IngestClass submit(const Rating& rating);

  /// Drains the reorder buffer and closes the in-progress epoch regardless
  /// of time. Returns the number of products processed. Quiesces.
  std::size_t flush();

  double trust(RaterId id) const;
  std::vector<RaterId> malicious() const;

  /// Trust-weighted aggregate over the owning shard's retained + pending
  /// ratings for the product (see StreamingRatingSystem::aggregate).
  std::optional<double> aggregate(ProductId product) const;

  std::size_t epochs_closed() const;
  const std::vector<EpochHealth>& epoch_health() const;
  std::size_t degraded_epochs() const;

  /// Fully-empty epochs the *global* cursor fast-forwarded over (no shard
  /// had pending data) — same meaning as the unsharded counter.
  std::size_t skipped_empty_epochs() const;

  /// Per-shard skipped cells: epoch closes that ran with no pending data
  /// on that shard (plus nothing at a flush). Layout-scoped diagnostics —
  /// they restore from a checkpoint only at a matching shard count.
  std::vector<std::size_t> shard_skipped_cells() const;

  std::size_t pending_ratings() const;
  std::size_t buffered_ratings() const { return ingest_.buffered(); }
  const IngestStats& ingest_stats() const { return ingest_.stats(); }

  /// Shard k's dead-letter store, oldest first (per-shard cap =
  /// IngestConfig::max_quarantine). The global `quarantined` counter in
  /// ingest_stats() is preserved across the split.
  std::vector<QuarantinedRating> shard_quarantine(std::size_t k) const;

  /// All shards' dead letters merged back into global arrival order.
  std::vector<QuarantinedRating> quarantine() const;

  using EpochCloseObserver = StreamingRatingSystem::EpochCloseObserver;
  /// Fires after each non-empty epoch closes (merge thread in threaded
  /// mode). Call before submitting; not checkpoint state.
  void set_epoch_observer(EpochCloseObserver observer);

  /// Attaches metrics/trace/audit. Global ingest + epoch instruments plus
  /// per-shard routed/cells/skipped counters and per-shard analyze spans.
  /// Out-of-band; call before submitting, never mid-stream.
  void set_observability(const obs::Observability& o);

  /// The merge authority: global trust state, epoch counter, aggregation.
  const TrustEnhancedRatingSystem& system() const { return merge_; }
  /// Which shard owns `product` under this system's layout.
  std::size_t shard_for(ProductId product) const { return shard_index(product); }
  double epoch_days() const { return epoch_days_; }
  std::size_t retention_epochs() const { return retention_epochs_; }
  std::size_t shards() const { return shards_.size(); }
  const ShardOptions& options() const { return options_; }

  /// Blocks until every routed event is consumed and every issued cell is
  /// merged. No-op in inline mode. Safe to call repeatedly.
  void quiesce() const;

  /// Global state extraction (quiesces first): per-shard pending/retained
  /// merged, dead letters in global order, layout recorded.
  StreamSnapshot snapshot();

  /// Writes a v4 (sharded) checkpoint.
  void save(std::ostream& out);

  /// Rebuilds a sharded system from any snapshot, partitioning under THIS
  /// options' layout. snapshot.shards may differ from options.shards (or
  /// be 0 for a pre-shard checkpoint): pending/retained re-partition;
  /// per-shard skipped-cell counters restore only on a layout match.
  static std::unique_ptr<ShardedRatingSystem> from_snapshot(
      const StreamSnapshot& snapshot, const SystemConfig& config,
      ShardOptions options);

  /// parse_checkpoint + from_snapshot (accepts checkpoint versions 1–4).
  static std::unique_ptr<ShardedRatingSystem> load(std::istream& in,
                                                   const SystemConfig& config,
                                                   ShardOptions options);

 private:
  friend struct trustrate::core::CheckpointAccess;

  /// One dead-lettered rating with its global arrival ordinal (the value
  /// of IngestStats::quarantined when it was dead-lettered): per-shard
  /// stores merge back into global order by sorting on it.
  struct DeadLetter {
    QuarantinedRating entry;
    std::uint64_t seq = 0;
  };

  /// Event streamed to a shard worker (threaded mode).
  struct ShardEvent {
    enum class Type : std::uint8_t { kRating, kQuarantine, kClose, kStop };
    Type type = Type::kRating;
    Rating rating;            ///< kRating
    QuarantinedRating dead;   ///< kQuarantine
    std::uint64_t seq = 0;    ///< kQuarantine: dead-letter ordinal; kClose: cell
    double epoch_start = 0.0;  ///< kClose
    double epoch_end = 0.0;    ///< kClose
  };

  /// One shard's contribution to one epoch cell (threaded mode). The
  /// sentinel (cell == kStopCell) acknowledges kStop.
  struct ShardResult {
    std::uint64_t cell = 0;
    double epoch_start = 0.0;
    double epoch_end = 0.0;
    std::vector<ProductObservation> observations;  ///< sorted by product
    std::vector<ProductReport> reports;            ///< aligned with above
  };
  static constexpr std::uint64_t kStopCell = ~std::uint64_t{0};

  struct Shard {
    detect::BetaQuantileFilter filter;
    detect::ArSuspicionDetector detector;
    std::unique_ptr<parallel::EpochEngine> engine;

    std::unordered_map<ProductId, RatingSeries> pending;
    struct Retained {
      std::vector<RatingSeries> epochs;
    };
    std::unordered_map<ProductId, Retained> retained;
    std::deque<DeadLetter> quarantine;
    std::size_t skipped_cells = 0;

    // Threaded mode.
    SpscQueue<ShardEvent> inbox;
    SpscQueue<ShardResult> outbox;
    std::thread worker;
    std::uint64_t events_pushed = 0;              ///< coordinator-owned
    std::atomic<std::uint64_t> events_processed{0};

    // Observability (resolved in set_observability; null when off).
    std::string analyze_span_name;  ///< stable storage for SpanTimer
    obs::Counter* routed_metric = nullptr;
    obs::Counter* cells_metric = nullptr;
    obs::Counter* skipped_metric = nullptr;

    Shard(const SystemConfig& config, std::size_t workers,
          std::size_t queue_capacity);
  };

  std::size_t shard_index(ProductId product) const;
  void route(const Rating& rating);
  void fast_forward_empty_epochs(double now);
  /// Issues the close of the cell ending at `epoch_end` (inline: runs it;
  /// threaded: enqueues kClose on every shard).
  void issue_close(double epoch_end);
  /// Analyzes one shard's pending slice for a cell; updates retained and
  /// skipped-cell accounting. Runs on the shard's owner thread.
  ShardResult analyze_cell(Shard& shard, std::uint64_t cell,
                           double epoch_start, double epoch_end);
  /// Concatenate-sort-merge one cell's shard results; fires the observer.
  /// Runs on the merge thread (threaded) or the caller (inline).
  void merge_cell(std::vector<ShardResult> results);
  void shard_worker(std::size_t k);
  void merge_worker();
  void start_threads();
  void stop_threads();
  void enqueue(std::size_t k, ShardEvent&& event);
  void add_dead_letter(Shard& shard, QuarantinedRating&& entry,
                       std::uint64_t seq);
  void update_gauges();

  SystemConfig config_;
  ShardOptions options_;
  TrustEnhancedRatingSystem merge_;  ///< global trust + stage-2 authority
  double epoch_days_;
  std::size_t retention_epochs_;

  IngestBuffer ingest_;  ///< global classifier front door
  std::vector<Rating> released_;

  bool anchored_ = false;
  double epoch_start_ = 0.0;
  double last_time_ = 0.0;
  std::size_t skipped_empty_epochs_ = 0;
  std::size_t pending_count_ = 0;  ///< ratings routed since the last close

  std::vector<std::unique_ptr<Shard>> shards_;

  // Written by the merge thread (threaded) or the caller (inline); reads
  // from other threads must quiesce first (cells_merged_ release/acquire
  // publishes them).
  std::size_t epochs_closed_ = 0;
  std::vector<EpochHealth> epoch_health_;
  std::size_t last_close_products_ = 0;
  EpochCloseObserver epoch_observer_;

  std::uint64_t cells_issued_ = 0;  ///< coordinator-owned
  std::atomic<std::uint64_t> cells_merged_{0};
  std::thread merge_thread_;
  bool threads_running_ = false;

  obs::Observability obs_;
  obs::Counter* ingest_submitted_ = nullptr;
  obs::Counter* ingest_accepted_ = nullptr;
  obs::Counter* ingest_reordered_ = nullptr;
  obs::Counter* ingest_duplicates_ = nullptr;
  obs::Counter* ingest_late_ = nullptr;
  obs::Counter* ingest_malformed_ = nullptr;
  obs::Counter* ingest_quarantined_ = nullptr;
  obs::Counter* epochs_closed_metric_ = nullptr;
  obs::Counter* epochs_degraded_metric_ = nullptr;
  obs::Counter* epochs_skipped_empty_metric_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* buffered_gauge_ = nullptr;
};

}  // namespace trustrate::core::shard
