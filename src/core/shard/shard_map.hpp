// Product → shard placement for the sharded service engine (DESIGN.md §14).
//
// The map must be a pure function of (product, shard_count): ingest
// threads, the checkpoint writer, and WAL recovery all re-derive the
// owning shard independently and must agree. It must also scatter
// well for non-power-of-two shard counts (the conformance oracle runs 7
// shards on purpose), so the product ID goes through a full-avalanche
// mixer (splitmix64's finalizer) before the modulo — consecutive product
// IDs land on unrelated shards.
//
// Placement is *layout*, not state: every cross-shard result is merged
// canonically (sorted by product / rater), so digests are identical for
// any placement function. Tests exploit that by overriding the map with
// adversarial skew (everything on one shard) and asserting nothing
// changes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace trustrate::core::shard {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Owning shard of a product under an N-shard layout. N must be >= 1.
inline std::size_t shard_of(ProductId product, std::size_t shards) {
  return static_cast<std::size_t>(mix64(product) %
                                  static_cast<std::uint64_t>(shards));
}

}  // namespace trustrate::core::shard
