// Streaming front-end for the trust-enhanced rating system (extension
// beyond the paper).
//
// TrustEnhancedRatingSystem is epoch-batched — the shape of the paper's
// experiments. Real deployments see a single time-ordered stream of
// ratings across many products. StreamingRatingSystem buffers the stream,
// closes an epoch every `epoch_days`, and feeds the buffered per-product
// series through the batch pipeline, so callers get the paper's exact
// semantics from an incremental API:
//
//     StreamingRatingSystem stream(config, /*epoch_days=*/30.0);
//     stream.submit(rating);              // time-ordered
//     stream.trust(rater);                // current trust
//     stream.aggregate(product);          // trust-weighted, retained window
//
// Epoch boundaries are anchored at the first submitted rating's time.
#pragma once

#include <optional>
#include <unordered_map>

#include "core/system.hpp"

namespace trustrate::core {

class StreamingRatingSystem {
 public:
  /// `epoch_days` is the trust-update cadence (the paper uses months);
  /// `retention_epochs` controls how many closed epochs of ratings are
  /// kept per product for aggregation queries.
  explicit StreamingRatingSystem(SystemConfig config, double epoch_days = 30.0,
                                 std::size_t retention_epochs = 2);

  /// Ingests one rating. Ratings must arrive in non-decreasing time order;
  /// a rating whose time has passed the current epoch's end closes the
  /// epoch (running the filter, detector, and Procedure 2 on everything
  /// buffered) before being buffered itself.
  void submit(const Rating& rating);

  /// Closes the in-progress epoch regardless of time. Returns the number
  /// of products processed. Call at end-of-stream.
  std::size_t flush();

  /// Current trust in a rater (0.5 when unknown).
  double trust(RaterId id) const { return system_.trust(id); }

  /// Raters currently below the malicious threshold.
  std::vector<RaterId> malicious() const { return system_.malicious(); }

  /// Trust-weighted aggregated rating over the product's retained ratings
  /// (buffered + up to `retention_epochs` closed epochs). Empty when the
  /// product has no retained ratings.
  std::optional<double> aggregate(ProductId product) const;

  std::size_t epochs_closed() const { return epochs_closed_; }
  std::size_t pending_ratings() const;
  const TrustEnhancedRatingSystem& system() const { return system_; }

 private:
  void close_epoch(double epoch_end);

  TrustEnhancedRatingSystem system_;
  double epoch_days_;
  std::size_t retention_epochs_;

  bool anchored_ = false;
  double epoch_start_ = 0.0;
  double last_time_ = 0.0;
  std::size_t epochs_closed_ = 0;

  std::unordered_map<ProductId, RatingSeries> pending_;
  /// Closed-epoch ratings per product, oldest first, at most
  /// retention_epochs entries' worth.
  struct Retained {
    std::vector<RatingSeries> epochs;
  };
  std::unordered_map<ProductId, Retained> retained_;
};

}  // namespace trustrate::core
