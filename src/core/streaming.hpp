// Streaming front-end for the trust-enhanced rating system (extension
// beyond the paper).
//
// TrustEnhancedRatingSystem is epoch-batched — the shape of the paper's
// experiments. Real deployments see a single stream of ratings across many
// products, and that stream is hostile: events arrive late, duplicated, or
// malformed. StreamingRatingSystem hardens the batch pipeline behind a
// tolerant ingestion layer (core/ingest.hpp), closes an epoch every
// `epoch_days`, and feeds the buffered per-product series through the batch
// pipeline, so callers get the paper's exact semantics from an incremental
// API:
//
//     StreamingRatingSystem stream(config, /*epoch_days=*/30.0);
//     stream.submit(rating);              // tolerant: classifies, never throws
//     stream.trust(rater);                // current trust
//     stream.aggregate(product);          // trust-weighted, retained window
//     stream.ingest_stats();              // accepted/reordered/dropped counters
//
// Error policy (DESIGN.md §6): `submit` never throws on bad *data* — each
// rating is classified in-band by the ingestion layer:
//
//  * out-of-order within `IngestConfig::max_lateness_days` → buffered and
//    merged in time order (kReordered); downstream results are identical to
//    a sorted run of the same ratings;
//  * behind the watermark (time regression beyond the bound; with the
//    default bound 0, *any* time regression) → dropped late and
//    dead-lettered, never processed (kLate);
//  * exact duplicates (same rater/product/time/value inside the lateness
//    horizon) → dropped (kDuplicate);
//  * malformed (non-finite time/value, value outside [0, 1]) → quarantined
//    (kMalformed).
//
// Epoch boundaries are anchored at the earliest *accepted* rating's time.
// When an epoch's AR detector degenerates (windows too short for the normal
// equations, or a fit failure), the epoch still closes on the beta-filter-
// only path and is flagged in `epoch_health()` instead of throwing.
//
// The full streaming state (ingest buffer, pending and retained series,
// epoch anchor, trust evidence) can be checkpointed and restored — see
// core/checkpoint.hpp.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/ingest.hpp"
#include "core/system.hpp"

namespace trustrate::core {

/// Outcome of one closed epoch, recorded per epoch in order.
enum class EpochHealth : std::uint8_t {
  kHealthy = 0,
  /// The AR detector contributed nothing (degenerate fit or every window
  /// too short); trust was updated from the beta filter alone.
  kDegradedDetector,
};

class StreamingRatingSystem {
 public:
  /// `epoch_days` is the trust-update cadence (the paper uses months);
  /// `retention_epochs` controls how many closed epochs of ratings are
  /// kept per product for aggregation queries; `ingest` configures the
  /// tolerant front-door (lateness bound, quarantine capacity).
  explicit StreamingRatingSystem(SystemConfig config, double epoch_days = 30.0,
                                 std::size_t retention_epochs = 2,
                                 IngestConfig ingest = {});

  /// Ingests one rating and returns its classification (see the file
  /// comment). Accepted ratings whose time the watermark has passed are
  /// routed into the current epoch; a rating that crosses the epoch's end
  /// closes the epoch (running the filter, detector, and Procedure 2 on
  /// everything buffered) first. Never throws on bad data.
  IngestClass submit(const Rating& rating);

  /// Drains the reorder buffer and closes the in-progress epoch regardless
  /// of time. Returns the number of products processed. Call at
  /// end-of-stream.
  std::size_t flush();

  /// Current trust in a rater (0.5 when unknown).
  double trust(RaterId id) const { return system_.trust(id); }

  /// Raters currently below the malicious threshold.
  std::vector<RaterId> malicious() const { return system_.malicious(); }

  /// Trust-weighted aggregated rating over the product's retained ratings
  /// (routed-but-unclosed + up to `retention_epochs` closed epochs; ratings
  /// still held in the reorder buffer are not yet visible). Empty when the
  /// product has no retained ratings.
  std::optional<double> aggregate(ProductId product) const;

  std::size_t epochs_closed() const { return epochs_closed_; }

  /// Ratings routed into the current epoch but not yet processed.
  std::size_t pending_ratings() const;

  /// Ratings accepted but still held by the reordering buffer.
  std::size_t buffered_ratings() const { return ingest_.buffered(); }

  /// Ingestion counters (accepted, reordered, duplicates, dropped_late,
  /// malformed, quarantined).
  const IngestStats& ingest_stats() const { return ingest_.stats(); }

  /// Most recent dead-lettered ratings, oldest first.
  const std::deque<QuarantinedRating>& quarantine() const {
    return ingest_.quarantine();
  }

  /// Per-epoch health flags, one per closed epoch, in close order. Fully
  /// empty epochs skipped by the gap fast-forward do not appear here.
  const std::vector<EpochHealth>& epoch_health() const { return epoch_health_; }

  /// Fully empty epochs the stream fast-forwarded over (large timestamp
  /// gaps): they closed nothing, updated no trust, and are not counted in
  /// epochs_closed() or epoch_health().
  std::size_t skipped_empty_epochs() const { return skipped_empty_epochs_; }

  /// Closed epochs that fell back to the beta-filter-only path.
  std::size_t degraded_epochs() const;

  /// Called after each non-empty epoch closes, with the epoch's report and
  /// its [start, end) boundaries. Observation hook for conformance tooling
  /// (src/testkit) and monitoring; not streaming state — checkpoints never
  /// record it, and a restored stream starts with no observer. The observer
  /// must not call back into this system.
  using EpochCloseObserver =
      std::function<void(const EpochReport&, double epoch_start, double epoch_end)>;
  void set_epoch_observer(EpochCloseObserver observer) {
    epoch_observer_ = std::move(observer);
  }

  const TrustEnhancedRatingSystem& system() const { return system_; }
  double epoch_days() const { return epoch_days_; }
  std::size_t retention_epochs() const { return retention_epochs_; }

  /// Attaches the observability bundle (DESIGN.md §11) to the stream and
  /// the wrapped batch system: ingest-class counters, epoch health
  /// counters/gauges, epoch-close spans, and audit events (quarantined
  /// ratings, degraded epochs, the one-shot observer_not_restored warning).
  /// Out-of-band — classifications, reports, and trust are identical with
  /// any combination of sinks. Not checkpointed; re-attach after restore.
  void set_observability(const obs::Observability& o);

 private:
  friend struct CheckpointAccess;  ///< checkpoint.cpp serializes the state

  /// Routes one watermark-released rating into the epoch pipeline.
  void route(const Rating& rating);
  void close_epoch(double epoch_end);

  /// Advances epoch_start_ over the fully empty span up to (and including)
  /// the epoch containing `now`, in O(1), bumping skipped_empty_epochs_.
  void fast_forward_empty_epochs(double now);

  TrustEnhancedRatingSystem system_;
  double epoch_days_;
  std::size_t retention_epochs_;

  IngestBuffer ingest_;
  std::vector<Rating> released_;  ///< scratch for watermark releases

  bool anchored_ = false;
  double epoch_start_ = 0.0;
  double last_time_ = 0.0;
  std::size_t epochs_closed_ = 0;
  std::size_t skipped_empty_epochs_ = 0;
  std::vector<EpochHealth> epoch_health_;
  EpochCloseObserver epoch_observer_;

  std::unordered_map<ProductId, RatingSeries> pending_;
  /// Closed-epoch ratings per product, oldest first, at most
  /// retention_epochs entries' worth.
  struct Retained {
    std::vector<RatingSeries> epochs;
  };
  std::unordered_map<ProductId, Retained> retained_;

  /// Refreshes the backlog gauges (pending / buffered / quarantine sizes).
  void update_gauges();

  obs::Observability obs_;
  obs::Counter* ingest_submitted_ = nullptr;
  obs::Counter* ingest_accepted_ = nullptr;
  obs::Counter* ingest_reordered_ = nullptr;
  obs::Counter* ingest_duplicates_ = nullptr;
  obs::Counter* ingest_late_ = nullptr;
  obs::Counter* ingest_malformed_ = nullptr;
  obs::Counter* ingest_quarantined_ = nullptr;
  obs::Counter* epochs_closed_metric_ = nullptr;
  obs::Counter* epochs_degraded_metric_ = nullptr;
  obs::Counter* epochs_skipped_empty_metric_ = nullptr;
  obs::Gauge* quarantine_size_gauge_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* buffered_gauge_ = nullptr;

  /// Set by checkpoint recovery (core/checkpoint.cpp): epoch observers are
  /// not checkpoint state, so the first epoch close after a restore emits a
  /// one-shot observer_not_restored audit event unless the caller (or the
  /// durable layer) re-attached one. In-memory only — never serialized.
  bool observer_restore_warning_pending_ = false;
};

}  // namespace trustrate::core
