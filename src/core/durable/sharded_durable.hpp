// Crash-safe front-end for the sharded engine (ISSUE 8): per-shard WAL
// segment streams plus shared v4 checkpoints, and the recovery
// orchestrator that merges the shard logs back into one global replay.
//
// Directory layout:
//
//   <dir>/ckpt-<seq20>.ckpt     v4 checkpoints (global; seq = acknowledged
//                               submission count at the checkpoint)
//   <dir>/shard-<k>/wal-*.log   shard k's WAL segments
//
// Each acknowledged submission is logged as a kShardRating frame to the
// shard that OWNS ITS PRODUCT, carrying the global submission ordinal —
// per-shard LSNs order one shard's log, the ordinal orders the stream.
// Explicit flush() writes a kShardFlush marker (ordinal + epochs_closed)
// to shard 0. Recovery merge-sorts every shard's surviving records by
// ordinal and replays the longest contiguous prefix above the newest
// valid checkpoint; replay re-classifies each submission and must agree
// with the logged verdict, so the recovered system is bitwise-identical
// to one that never died — at ANY target shard count, because replay
// reassembles the global order before the new layout re-partitions it.
//
// Torn shards and cross-shard gaps: each shard's torn tail is truncated
// independently (the standard single-WAL rule). A truncated shard leaves
// a HOLE in the global ordinal sequence; records with higher ordinals in
// OTHER shards' logs are unreplayable (the stream cannot skip an
// acknowledged submission) and are discarded. Whenever recovery loses
// anything this way — or the on-disk shard layout differs from the
// target layout — it immediately re-checkpoints the recovered state and
// resets every shard WAL, so the orphaned frames can never resurface.
//
// Scope vs DurableStream (core/durable/durable_stream.hpp): no
// degradation ladder and no environmental fault injection — an I/O error
// here throws IoError. Under FsyncPolicy::kEpoch the sync barrier is
// flush()/checkpoint() (epoch cells close on background threads in
// threaded mode; there is no synchronous close edge to hang a barrier
// on); kAlways syncs the owning shard's log after every append.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/durable/wal.hpp"
#include "core/shard/sharded_system.hpp"
#include "obs/introspect.hpp"

namespace trustrate::core::durable {

struct ShardedDurableOptions {
  FsyncPolicy fsync = FsyncPolicy::kEpoch;
  /// Per-shard WAL segment rotation threshold.
  std::size_t segment_bytes = 1 << 20;
  /// Checkpoints kept on disk (>= 1). Shard WAL segments wholly below the
  /// oldest kept checkpoint are pruned when their obsolescence is known
  /// (tracked per checkpoint written this process lifetime).
  std::size_t keep_checkpoints = 2;
  /// Supervised restarts per public call (DESIGN.md §15): when the
  /// threaded engine latches a ShardFailure, the stream tears the broken
  /// system down (close-aware shutdown — provably non-blocking), rebuilds
  /// it from the newest checkpoint + WAL replay, and retries the call.
  /// Every acknowledged submission is WAL-logged before its ack, so the
  /// healed state is bitwise-identical to fault-free (oracle path 10).
  /// 0 = fail-stop immediately: the ShardFailure propagates untouched.
  std::size_t heal_attempts = 1;
  /// Observability, threaded down to the sharded system and WAL writers.
  obs::Observability obs;
};

class ShardedDurableStream {
 public:
  struct RecoveryInfo {
    bool recovered = false;          ///< durable state existed in `dir`
    bool loaded_checkpoint = false;  ///< a checkpoint rung succeeded
    std::uint64_t checkpoint_seq = 0;
    std::size_t corrupt_checkpoints = 0;  ///< rungs skipped as corrupt
    std::size_t replayed_records = 0;     ///< WAL records applied
    std::size_t replayed_ratings = 0;     ///< submissions among them
    std::size_t torn_shards = 0;          ///< shard WAL tails truncated
    /// Records discarded past a cross-shard ordinal gap (acknowledged on a
    /// surviving shard after a lost record on a torn one).
    std::size_t discarded_records = 0;
    /// The recovered state was re-checkpointed and the shard WALs reset
    /// (data was discarded, or the shard layout changed on disk).
    bool wal_reset = false;
  };

  /// Opens (creating if needed) the sharded durable directory and recovers
  /// whatever state it holds into the layout `shard_options` describes —
  /// the on-disk layout may differ; recovery re-partitions. Throws
  /// WalError / RecoveryError / CheckpointError on unrecoverable
  /// corruption, IoError on environmental failure.
  ShardedDurableStream(const std::filesystem::path& dir,
                       const SystemConfig& config,
                       shard::ShardOptions shard_options,
                       double epoch_days = 30.0,
                       std::size_t retention_epochs = 2,
                       IngestConfig ingest = {},
                       ShardedDurableOptions options = {});

  /// WAL-backed submit: applies the rating, logs it to the owning shard,
  /// syncs per policy, then returns — the acknowledgement is the
  /// durability boundary (same contract as DurableStream::submit).
  IngestClass submit(const Rating& rating);

  /// Durable flush: drains + closes regardless of time, logs the marker so
  /// recovery reproduces the early close, and syncs every shard's log.
  std::size_t flush();

  /// Atomic v4 checkpoint of everything acknowledged so far; prunes
  /// obsolete checkpoints and provably covered WAL segments. Returns the
  /// checkpoint's submission ordinal.
  std::uint64_t checkpoint();

  /// Acknowledged submissions — the client's resume cursor after a crash.
  std::uint64_t acknowledged() const {
    return system_->ingest_stats().submitted;
  }

  const shard::ShardedRatingSystem& system() const { return *system_; }
  shard::ShardedRatingSystem& system() { return *system_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Supervised-restart bookkeeping (cumulative for this stream's life).
  struct SupervisionInfo {
    std::size_t heals = 0;      ///< pipeline rebuilds that succeeded
    std::size_t failstops = 0;  ///< ShardFailures surfaced to the caller
    std::string last_failure;   ///< what() of the last contained failure
  };
  const SupervisionInfo& supervision() const { return supervision_; }

  /// If the engine has latched a ShardFailure, rebuild it from durable
  /// state now (regardless of heal_attempts). Returns true when the
  /// engine is healthy afterwards. Epoch observers attached directly to
  /// system() do not survive a heal — re-attach before the next submit.
  bool try_heal();

  /// Snapshot of the durability surface for the introspection endpoints
  /// (/healthz, /status): checkpoint cursor, WAL record/segment totals
  /// summed across shards, supervised-restart counters. Safe to call from
  /// a server thread while the owner thread submits — returns a
  /// mutex-guarded copy refreshed on the owner thread at the end of every
  /// submit/flush/checkpoint/heal. Ages are record counts, not wall clock.
  obs::DurabilityProbe probe() const;

  /// Shard k's WAL directory under `dir` (exposed for tests/tools).
  static std::filesystem::path shard_dir(const std::filesystem::path& dir,
                                         std::size_t k);
  /// Checkpoint file name for a given submission ordinal.
  static std::string checkpoint_name(std::uint64_t seq);

 private:
  void recover(const SystemConfig& config, double epoch_days,
               std::size_t retention_epochs, const IngestConfig& ingest);
  /// Tears down the failed engine and rebuilds it from checkpoint + WAL;
  /// emits the pipeline_healed audit event. Throws (failstop) when the
  /// rebuild itself fails.
  void heal(const ShardFailure& failure);
  void record_failstop(const ShardFailure& failure);
  void open_writers(const std::vector<WalRecovered>& recovered);
  void reset_wals();
  void sync_all();
  void write_checkpoint_file();
  void prune();
  WalOptions wal_options() const;
  /// Rebuilds probe_snapshot_ from owner-thread state. `scan_segments`
  /// re-counts segment files across every shard directory (done only at
  /// recovery/checkpoint/heal boundaries, not per submit).
  void refresh_probe(bool scan_segments);

  std::filesystem::path dir_;
  shard::ShardOptions shard_options_;
  ShardedDurableOptions options_;
  RecoveryInfo recovery_;
  SupervisionInfo supervision_;
  // Construction parameters, kept so heal() can re-run recover().
  SystemConfig config_;
  double epoch_days_ = 30.0;
  std::size_t retention_epochs_ = 2;
  IngestConfig ingest_;
  std::unique_ptr<shard::ShardedRatingSystem> system_;
  std::vector<std::unique_ptr<WalWriter>> writers_;  ///< one per shard
  std::uint64_t last_checkpoint_seq_ = 0;
  /// Per-shard next_lsn at each checkpoint written this lifetime; prune()
  /// only removes segments below the oldest KEPT checkpoint's recorded
  /// cursor (unknown for checkpoints inherited from a previous process —
  /// those prune nothing until newer checkpoints displace them).
  std::map<std::uint64_t, std::vector<std::uint64_t>> checkpoint_wal_lsns_;

  /// Introspection snapshot (see probe()). Guarded by probe_mutex_; written
  /// only on the owner thread via refresh_probe().
  mutable std::mutex probe_mutex_;
  obs::DurabilityProbe probe_snapshot_;
};

}  // namespace trustrate::core::durable
