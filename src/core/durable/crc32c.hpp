// CRC32C (Castagnoli) — the checksum guarding every durable byte this
// system writes (WAL frames, checkpoint sections). Chosen over plain
// CRC32 for its strictly better error-detection properties (it is the
// polynomial used by iSCSI, ext4, and LevelDB's log format); a software
// table implementation is plenty here — durability cost is dominated by
// the write()/fsync() syscalls, not the checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace trustrate::core::durable {

/// CRC32C of `size` bytes at `data`, continuing from `seed` (pass a previous
/// return value to checksum a byte sequence in chunks; 0 starts fresh).
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32c(bytes.data(), bytes.size(), seed);
}

/// Renders a CRC as exactly 8 lowercase hex digits (the checkpoint-v3 wire
/// spelling).
std::string crc32c_hex(std::uint32_t crc);

}  // namespace trustrate::core::durable
