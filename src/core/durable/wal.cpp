#include "core/durable/wal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/durable/crc32c.hpp"

namespace trustrate::core::durable {
namespace {

constexpr char kMagic[] = "trustrate-wal 1\n";
constexpr std::size_t kMagicSize = sizeof(kMagic) - 1;  // 16 bytes
constexpr std::size_t kFrameHeader = 9;                 // len + crc + type
/// Sanity bound on one frame's payload; real payloads are tens of bytes, so
/// anything huge is corruption, not data — refuse before allocating.
constexpr std::uint32_t kMaxPayload = 1u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(b, 8);
}

void put_double(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

double get_double(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string encode_payload(const WalRecord& record) {
  std::string payload;
  switch (record.type) {
    case WalRecordType::kRating:
      payload.reserve(26);
      put_double(payload, record.rating.time);
      put_double(payload, record.rating.value);
      put_u32(payload, record.rating.rater);
      put_u32(payload, record.rating.product);
      payload.push_back(static_cast<char>(record.rating.label));
      payload.push_back(static_cast<char>(record.ingest_class));
      break;
    case WalRecordType::kEpochClose:
      put_u64(payload, record.epochs_closed);
      put_double(payload, record.epoch_start);
      break;
    case WalRecordType::kFlush:
      put_u64(payload, record.epochs_closed);
      break;
    case WalRecordType::kShardRating:
      payload.reserve(34);
      put_u64(payload, record.seq);
      put_double(payload, record.rating.time);
      put_double(payload, record.rating.value);
      put_u32(payload, record.rating.rater);
      put_u32(payload, record.rating.product);
      payload.push_back(static_cast<char>(record.rating.label));
      payload.push_back(static_cast<char>(record.ingest_class));
      break;
    case WalRecordType::kShardFlush:
      put_u64(payload, record.seq);
      put_u64(payload, record.epochs_closed);
      break;
  }
  return payload;
}

/// Attempts to decode the frame at `offset`. Returns the record and the
/// offset just past it, or nullopt when the bytes there are not a valid
/// frame (short, insane length, bad CRC, unknown type, bad payload).
std::optional<std::pair<WalRecord, std::size_t>> parse_frame(
    const std::string& data, std::size_t offset) {
  if (offset + kFrameHeader > data.size()) return std::nullopt;
  const std::uint32_t len = get_u32(data.data() + offset);
  if (len > kMaxPayload) return std::nullopt;
  const std::size_t end = offset + kFrameHeader + len;
  if (end > data.size()) return std::nullopt;
  const std::uint32_t stored_crc = get_u32(data.data() + offset + 4);
  // CRC covers length || type || payload, so a flip anywhere in the frame
  // (length field included) is caught.
  std::uint32_t crc = crc32c(data.data() + offset, 4);
  crc = crc32c(data.data() + offset + 8, 1 + len, crc);
  if (crc != stored_crc) return std::nullopt;

  WalRecord record;
  const char* p = data.data() + offset + kFrameHeader;
  const auto type = static_cast<unsigned char>(data[offset + 8]);
  switch (type) {
    case static_cast<unsigned char>(WalRecordType::kRating): {
      if (len != 26) return std::nullopt;
      record.type = WalRecordType::kRating;
      record.rating.time = get_double(p);
      record.rating.value = get_double(p + 8);
      record.rating.rater = static_cast<RaterId>(get_u32(p + 16));
      record.rating.product = static_cast<ProductId>(get_u32(p + 20));
      const auto label = static_cast<unsigned char>(p[24]);
      const auto klass = static_cast<unsigned char>(p[25]);
      if (label > static_cast<unsigned char>(RatingLabel::kCollaborative2) ||
          klass > static_cast<unsigned char>(IngestClass::kMalformed)) {
        return std::nullopt;
      }
      record.rating.label = static_cast<RatingLabel>(label);
      record.ingest_class = static_cast<IngestClass>(klass);
      break;
    }
    case static_cast<unsigned char>(WalRecordType::kEpochClose):
      if (len != 16) return std::nullopt;
      record.type = WalRecordType::kEpochClose;
      record.epochs_closed = get_u64(p);
      record.epoch_start = get_double(p + 8);
      break;
    case static_cast<unsigned char>(WalRecordType::kFlush):
      if (len != 8) return std::nullopt;
      record.type = WalRecordType::kFlush;
      record.epochs_closed = get_u64(p);
      break;
    case static_cast<unsigned char>(WalRecordType::kShardRating): {
      if (len != 34) return std::nullopt;
      record.type = WalRecordType::kShardRating;
      record.seq = get_u64(p);
      record.rating.time = get_double(p + 8);
      record.rating.value = get_double(p + 16);
      record.rating.rater = static_cast<RaterId>(get_u32(p + 24));
      record.rating.product = static_cast<ProductId>(get_u32(p + 28));
      const auto label = static_cast<unsigned char>(p[32]);
      const auto klass = static_cast<unsigned char>(p[33]);
      if (label > static_cast<unsigned char>(RatingLabel::kCollaborative2) ||
          klass > static_cast<unsigned char>(IngestClass::kMalformed)) {
        return std::nullopt;
      }
      record.rating.label = static_cast<RatingLabel>(label);
      record.ingest_class = static_cast<IngestClass>(klass);
      break;
    }
    case static_cast<unsigned char>(WalRecordType::kShardFlush):
      if (len != 16) return std::nullopt;
      record.type = WalRecordType::kShardFlush;
      record.seq = get_u64(p);
      record.epochs_closed = get_u64(p + 8);
      break;
    default:
      return std::nullopt;
  }
  return std::make_pair(record, end);
}

/// True when any byte offset in [from, end) starts a valid frame —
/// distinguishes a torn tail (garbage to the end of file) from mid-log
/// corruption (valid data survives past the bad frame).
bool valid_frame_after(const std::string& data, std::size_t from) {
  for (std::size_t at = from; at + kFrameHeader <= data.size(); ++at) {
    if (parse_frame(data, at).has_value()) return true;
  }
  return false;
}

}  // namespace

std::vector<WalSegment> wal_segments(const std::filesystem::path& dir) {
  std::vector<WalSegment> segments;
  if (!std::filesystem::exists(dir)) return segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || name.size() < 9 ||
        name.substr(name.size() - 4) != ".log") {
      continue;
    }
    WalSegment seg;
    seg.path = entry.path();
    seg.first_lsn = std::strtoull(name.c_str() + 4, nullptr, 10);
    segments.push_back(std::move(seg));
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:   return "none";
    case FsyncPolicy::kEpoch:  return "epoch";
    case FsyncPolicy::kAlways: return "always";
  }
  return "unknown";
}

std::string encode_frame(const WalRecord& record) {
  const std::string payload = encode_payload(record);
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  std::string covered;  // length || type || payload, the CRC'd bytes
  covered.reserve(5 + payload.size());
  put_u32(covered, static_cast<std::uint32_t>(payload.size()));
  covered.push_back(static_cast<char>(record.type));
  covered += payload;
  put_u32(frame, crc32c(covered));
  frame.push_back(static_cast<char>(record.type));
  frame += payload;
  return frame;
}

WalRecovered read_wal(const std::filesystem::path& dir, const IoEnv& env) {
  WalRecovered out;
  std::vector<WalSegment> segments = wal_segments(dir);

  // A last segment whose creation itself was torn (partial or corrupt magic,
  // no decodable frame) is removed up front; everything else must be intact.
  while (!segments.empty()) {
    const WalSegment& last = segments.back();
    const std::string data = stable_read_file(last.path, env);
    const bool magic_ok =
        data.size() >= kMagicSize && data.compare(0, kMagicSize, kMagic) == 0;
    if (magic_ok) break;
    if (valid_frame_after(data, 0)) {
      throw WalError("WAL segment '" + last.path.filename().string() +
                     "' has a corrupt header but decodable frames");
    }
    std::filesystem::remove(last.path);
    segments.pop_back();
  }

  if (segments.empty()) return out;
  out.first_lsn = segments.front().first_lsn;
  std::uint64_t lsn = out.first_lsn;

  for (std::size_t s = 0; s < segments.size(); ++s) {
    const WalSegment& seg = segments[s];
    const bool is_last = s + 1 == segments.size();
    if (seg.first_lsn != lsn) {
      throw WalError("WAL segment sequence gap: '" +
                     seg.path.filename().string() + "' starts at record " +
                     std::to_string(seg.first_lsn) + ", expected " +
                     std::to_string(lsn));
    }
    const std::string data = stable_read_file(seg.path, env);
    if (data.size() < kMagicSize || data.compare(0, kMagicSize, kMagic) != 0) {
      throw WalError("WAL segment '" + seg.path.filename().string() +
                     "' has a corrupt header");
    }
    std::size_t offset = kMagicSize;
    while (offset < data.size()) {
      auto frame = parse_frame(data, offset);
      if (!frame.has_value()) {
        // Torn-tail rule: only the very end of the last segment may be
        // unparseable, and only when nothing valid follows.
        if (is_last && !valid_frame_after(data, offset + 1)) {
          out.tail_truncated = true;
          out.truncated_bytes = data.size() - offset;
          std::filesystem::resize_file(seg.path, offset);
          break;
        }
        throw WalError("WAL corrupt at byte " + std::to_string(offset) +
                       " of segment '" + seg.path.filename().string() +
                       "' (not a torn tail: valid data follows)");
      }
      out.records.emplace_back(lsn++, frame->first);
      offset = frame->second;
    }
  }
  out.next_lsn = lsn;
  out.active_segment = segments.back().path;
  out.active_segment_first_lsn = segments.back().first_lsn;
  return out;
}

std::string WalWriter::segment_name(std::uint64_t lsn) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%020llu.log",
                static_cast<unsigned long long>(lsn));
  return buf;
}

WalWriter::WalWriter(const std::filesystem::path& dir, std::uint64_t next_lsn,
                     const WalOptions& options)
    : dir_(dir),
      options_(options),
      next_lsn_(next_lsn),
      active_first_lsn_(next_lsn) {
  resolve_instruments();
}

WalWriter::WalWriter(const std::filesystem::path& dir,
                     const WalRecovered& recovered, const WalOptions& options)
    : dir_(dir),
      options_(options),
      next_lsn_(recovered.next_lsn),
      active_first_lsn_(recovered.active_segment.empty()
                            ? recovered.next_lsn
                            : recovered.active_segment_first_lsn) {
  resolve_instruments();
  if (!recovered.active_segment.empty()) {
    open_segment(recovered.active_segment);
  }
}

void WalWriter::resolve_instruments() {
  obs::MetricsRegistry* m = options_.obs.metrics;
  if (m == nullptr) return;
  records_total_ =
      &m->counter("trustrate_wal_records_total", "Records appended to the WAL");
  bytes_total_ = &m->counter("trustrate_wal_bytes_total",
                             "Framed bytes appended to the WAL");
  fsyncs_total_ =
      &m->counter("trustrate_wal_fsyncs_total", "fsync barriers on the WAL");
  segments_rotated_ = &m->counter("trustrate_wal_segments_rotated_total",
                                  "WAL segment rotations");
  io_retries_ = &m->counter(
      "trustrate_io_retries_total",
      "Inline durable-I/O retries (EINTR, short writes, transient backoff)");
  append_seconds_ = &m->histogram("trustrate_wal_append_seconds",
                                  obs::default_seconds_buckets(),
                                  "WAL append latency (incl. any fsync)");
  fsync_seconds_ =
      &m->histogram("trustrate_wal_fsync_seconds",
                    obs::default_seconds_buckets(), "WAL fsync latency");
}

IoEnv WalWriter::io_env() const {
  IoEnv env;
  env.crash = options_.crash;
  env.faults = options_.faults;
  env.policy = options_.io;
  env.retries_total = io_retries_;
  return env;
}

void WalWriter::sync_segment() {
  if (segment_ == nullptr) return;
  const obs::SpanTimer span(options_.obs.trace, "wal.fsync");
  const std::uint64_t t0 = fsync_seconds_ != nullptr ? obs::monotonic_ns() : 0;
  try {
    segment_->sync();
  } catch (const IoError&) {
    wounded_ = true;  // poisoned handle: nothing unsynced can be trusted
    throw;
  }
  if (fsync_seconds_ != nullptr) {
    fsync_seconds_->observe(static_cast<double>(obs::monotonic_ns() - t0) *
                            1e-9);
  }
  if (fsyncs_total_ != nullptr) fsyncs_total_->add();
}

void WalWriter::open_segment(const std::filesystem::path& path) {
  segment_ = std::make_unique<DurableFile>(path, io_env());
  last_good_size_ = segment_->size();
  if (segment_->size() == 0) {
    segment_->append(std::string_view(kMagic, kMagicSize));
    last_good_size_ = segment_->size();
  }
}

void WalWriter::rotate() {
  if (segment_ != nullptr) {
    if (options_.fsync != FsyncPolicy::kNone) sync_segment();
    if (segments_rotated_ != nullptr) segments_rotated_->add();
  }
  segment_.reset();
  active_first_lsn_ = next_lsn_;
  open_segment(dir_ / segment_name(next_lsn_));
}

std::uint64_t WalWriter::append(const WalRecord& record) {
  if (wounded_) {
    throw IoError("append", dir_.string(), 0,
                  "WAL writer is wounded by a prior environmental fault; "
                  "repair() required before further appends");
  }
  const obs::SpanTimer span(options_.obs.trace, "wal.append", 0,
                            static_cast<std::int64_t>(next_lsn_));
  const std::uint64_t t0 = append_seconds_ != nullptr ? obs::monotonic_ns() : 0;
  const std::string frame = encode_frame(record);
  try {
    if (segment_ == nullptr || segment_->size() >= options_.segment_bytes) {
      rotate();
    }
    segment_->append(frame);
  } catch (const IoError&) {
    // The active segment may now carry a torn frame tail (the write made
    // partial progress before the fault persisted). next_lsn_ is untouched:
    // the record is NOT in the log. CrashInjected is deliberately not
    // caught — process death is not an environmental wound.
    wounded_ = true;
    throw;
  }
  last_good_size_ = segment_->size();
  const std::uint64_t lsn = next_lsn_++;
  if (records_total_ != nullptr) {
    records_total_->add();
    bytes_total_->add(frame.size());
  }
  // Under kAlways the frame is already in the log when this sync fails:
  // the lsn stays consumed and the writer is wounded (see header contract).
  if (options_.fsync == FsyncPolicy::kAlways) {
    sync_segment();
  }
  if (append_seconds_ != nullptr) {
    append_seconds_->observe(static_cast<double>(obs::monotonic_ns() - t0) *
                             1e-9);
  }
  return lsn;
}

void WalWriter::sync() {
  if (wounded_) {
    throw IoError("fsync", dir_.string(), 0,
                  "WAL writer is wounded by a prior environmental fault; "
                  "repair() required before further syncs");
  }
  sync_segment();
}

void WalWriter::repair() {
  namespace fs = std::filesystem;
  if (!wounded_ && segment_ != nullptr) return;
  if (segment_ != nullptr) {
    const fs::path active = segment_->path();
    const std::uint64_t keep = last_good_size_;
    segment_.reset();  // drop the (possibly poisoned) fd before truncating
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(active, ec);
    if (!ec && size > keep) fs::resize_file(active, keep, ec);
  }
  // Continue in a fresh segment: a poisoned fd must never be trusted again,
  // and naming the new file for next_lsn_ preserves read_wal's contiguity
  // rule by construction. Remove a partial segment left by an earlier heal
  // attempt that itself faulted; when the wounded segment held no complete
  // frames its name equals the fresh one, and removing it loses nothing
  // (it was magic-only or torn).
  const fs::path fresh = dir_ / segment_name(next_lsn_);
  std::error_code ec;
  fs::remove(fresh, ec);
  wounded_ = false;
  active_first_lsn_ = next_lsn_;
  try {
    open_segment(fresh);
  } catch (const IoError&) {
    wounded_ = true;  // environment still failing; stay wounded
    throw;
  }
  if (segments_rotated_ != nullptr) segments_rotated_->add();
}

}  // namespace trustrate::core::durable
