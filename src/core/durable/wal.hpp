// Write-ahead log for the streaming rating pipeline (ISSUE 4 tentpole).
//
// Checkpoints are periodic; every rating acknowledged between two
// checkpoints would be lost on a crash without a log. The WAL records
// every *submission* the streaming system acknowledges — accepted,
// reordered, duplicate, late, and malformed alike, because the ingestion
// counters and the quarantine are part of the bit-exact state — plus
// epoch-close markers and explicit flushes. Recovery = newest valid
// checkpoint + replay of the records after it; the replayed system is
// bitwise-identical to one that never died (core/durable/durable_stream.hpp).
//
// Wire format (binary, little-endian), per segment file `wal-<lsn20>.log`:
//
//   "trustrate-wal 1\n"                      16-byte segment magic
//   frame := u32 payload_len | u32 crc | u8 type | payload
//
// where crc = CRC32C over (payload_len || type || payload). Frame types:
//
//   kRating     payload = f64 time | f64 value | u32 rater | u32 product |
//               u8 label | u8 ingest_class        (26 bytes)
//   kEpochClose payload = u64 epochs_closed | f64 new epoch_start
//   kFlush      payload = u64 epochs_closed after the flush
//
// Doubles travel as raw IEEE-754 bit patterns — replay is bit-exact by
// construction. The ingest_class byte is the classification returned at
// submit time; replay re-classifies and must agree (cheap end-to-end check
// that the WAL matches the checkpoint it extends).
//
// Segments rotate at `segment_bytes`; file names carry the LSN (log
// sequence number = index of the segment's first record), so a checkpoint
// taken at LSN n obsoletes every segment entirely below n.
//
// Torn-tail rule (recovery): a bad frame — short header, insane length,
// CRC mismatch — at the end of the *last* segment with no valid frame
// after it is a torn write: the tail is truncated and the log ends there.
// A bad frame anywhere else (earlier segment, or followed by bytes that
// still parse as a valid frame) is mid-log corruption and throws WalError:
// silently resuming past it would drop acknowledged records.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "core/durable/io.hpp"
#include "core/ingest.hpp"
#include "obs/observability.hpp"

namespace trustrate::core::durable {

/// When the log is forced to stable storage.
enum class FsyncPolicy : std::uint8_t {
  kNone = 0,  ///< never fsync (page cache only; survives kill -9, not power loss)
  kEpoch,     ///< fsync on epoch-close markers, flushes, and checkpoints
  kAlways,    ///< fsync after every appended record
};

const char* to_string(FsyncPolicy policy);

enum class WalRecordType : std::uint8_t {
  kRating = 1,      ///< one acknowledged submission (any classification)
  kEpochClose = 2,  ///< an epoch closed while routing the previous rating
  kFlush = 3,       ///< explicit flush(): drain + close regardless of time
  /// Sharded-stream submission (core/durable/sharded_durable.hpp): the
  /// kRating payload prefixed with the u64 *global* submission ordinal.
  /// Each shard logs only its own products, so per-shard LSNs say nothing
  /// about global order — the ordinal is what recovery merge-sorts on.
  kShardRating = 4,
  /// Sharded-stream explicit flush: u64 global submission ordinal at the
  /// flush (replay applies it after that many submissions) + u64
  /// epochs_closed after it. Logged to shard 0 only.
  kShardFlush = 5,
};

/// One log record. Which fields are meaningful depends on `type`.
struct WalRecord {
  WalRecordType type = WalRecordType::kRating;
  Rating rating;                                      ///< kRating / kShardRating
  IngestClass ingest_class = IngestClass::kAccepted;  ///< kRating / kShardRating
  std::uint64_t epochs_closed = 0;  ///< kEpochClose / kFlush / kShardFlush
  double epoch_start = 0.0;         ///< kEpochClose
  std::uint64_t seq = 0;            ///< kShardRating / kShardFlush: global ordinal
};

/// Serializes one record as a framed byte string (exposed for tests).
std::string encode_frame(const WalRecord& record);

struct WalOptions {
  std::size_t segment_bytes = 1 << 20;  ///< rotation threshold
  FsyncPolicy fsync = FsyncPolicy::kEpoch;
  CrashInjector* crash = nullptr;
  /// Environmental fault injector (null in production) and the retry policy
  /// applied to transient faults on every segment write/fsync.
  FaultInjector* faults = nullptr;
  IoPolicy io;
  /// Observability (DESIGN.md §11): append/fsync/rotation counters, timing
  /// histograms, and fsync spans. Out-of-band — the bytes on disk and the
  /// record LSNs are identical with or without sinks.
  obs::Observability obs;
};

/// Everything read_wal learns from the segment files on disk.
struct WalRecovered {
  /// All decodable records, in order, paired with their LSN.
  std::vector<std::pair<std::uint64_t, WalRecord>> records;
  /// LSN of the first record present (segments below the newest checkpoint
  /// may have been pruned).
  std::uint64_t first_lsn = 0;
  /// LSN the next appended record will get.
  std::uint64_t next_lsn = 0;
  /// True when a torn tail was truncated off the last segment.
  bool tail_truncated = false;
  std::uint64_t truncated_bytes = 0;
  /// Last segment (append continues here), empty when no segment exists.
  std::filesystem::path active_segment;
  std::uint64_t active_segment_first_lsn = 0;
};

/// Scans `dir` for wal-*.log segments, validates every frame, truncates a
/// torn tail (physically, via resize_file), and returns the decoded
/// records. Throws WalError on mid-log corruption or a segment-sequence
/// gap. A directory with no segments returns an empty log. With a fault
/// injector in `env`, segment bytes come through stable_read_file, so a
/// transient read corruption is re-read before any destructive verdict
/// (tail truncation, segment removal, WalError).
WalRecovered read_wal(const std::filesystem::path& dir, const IoEnv& env = {});

/// One on-disk segment file and the LSN of its first record.
struct WalSegment {
  std::filesystem::path path;
  std::uint64_t first_lsn = 0;
};

/// Lists `dir`'s wal-*.log segments in ascending LSN order (no validation;
/// the checkpoint pruner uses this to find fully-obsolete segments).
std::vector<WalSegment> wal_segments(const std::filesystem::path& dir);

/// Append handle. Create fresh (`WalWriter(dir, 0, options)`) or continue
/// a recovered log (`WalWriter(dir, recovered, options)`).
class WalWriter {
 public:
  WalWriter(const std::filesystem::path& dir, std::uint64_t next_lsn,
            const WalOptions& options);
  WalWriter(const std::filesystem::path& dir, const WalRecovered& recovered,
            const WalOptions& options);

  /// Appends one record (rotating segments as needed) and returns its LSN.
  /// Under FsyncPolicy::kAlways the record is fsynced before returning.
  ///
  /// Fault contract: an IoError from the *write* path leaves next_lsn()
  /// unchanged (the record is not in the log) and wounds the writer; an
  /// IoError from the kAlways fsync step leaves next_lsn() advanced (the
  /// frame IS in the log, merely unsynced) and wounds the writer. Callers
  /// distinguish the two by sampling next_lsn() around the call.
  std::uint64_t append(const WalRecord& record);

  /// Explicit fsync barrier (epoch closes and checkpoints under kEpoch).
  /// A failed fsync poisons the segment handle and wounds the writer.
  void sync();

  /// True after an environmental fault left the active segment with a torn
  /// frame or a poisoned handle. A wounded writer refuses append()/sync()
  /// until repair().
  bool wounded() const { return wounded_; }

  /// Heals a wounded writer: truncates the active segment to its last
  /// complete-frame boundary, drops the (possibly poisoned) handle, and
  /// continues in a fresh segment named for next_lsn() — read_wal's
  /// contiguity invariant is preserved by construction. Throws IoError (and
  /// stays wounded) when the environment is still failing.
  void repair();

  std::uint64_t next_lsn() const { return next_lsn_; }

  /// First LSN of the active segment — next_lsn() minus this is how many
  /// records the segment holds, the "segment age" the introspection
  /// /status endpoint reports (clock-free, deterministic).
  std::uint64_t active_segment_first_lsn() const { return active_first_lsn_; }

  const WalOptions& options() const { return options_; }

  /// Segment file name for the record sequence starting at `lsn`.
  static std::string segment_name(std::uint64_t lsn);

 private:
  void open_segment(const std::filesystem::path& path);
  void rotate();
  /// fsyncs the active segment with span/counter/histogram instrumentation.
  void sync_segment();
  void resolve_instruments();
  IoEnv io_env() const;

  std::filesystem::path dir_;
  WalOptions options_;
  std::uint64_t next_lsn_ = 0;
  std::uint64_t active_first_lsn_ = 0;
  std::unique_ptr<DurableFile> segment_;
  /// Active-segment byte size at the last complete-frame boundary; repair()
  /// truncates a torn tail back to this.
  std::uint64_t last_good_size_ = 0;
  bool wounded_ = false;

  /// Resolved once at construction (null when WalOptions::obs has no
  /// registry); updates are relaxed atomics on the append path.
  obs::Counter* records_total_ = nullptr;
  obs::Counter* bytes_total_ = nullptr;
  obs::Counter* fsyncs_total_ = nullptr;
  obs::Counter* segments_rotated_ = nullptr;
  obs::Counter* io_retries_ = nullptr;
  obs::Histogram* append_seconds_ = nullptr;
  obs::Histogram* fsync_seconds_ = nullptr;
};

}  // namespace trustrate::core::durable
