// Environmental I/O fault injection and retry policy (ISSUE 6 tentpole).
//
// The CrashInjector (io.hpp) models one failure mode: abrupt process death.
// Real deployments also see the *environment* fail while the process lives:
// a full disk (ENOSPC), a dying device (EIO), interrupted syscalls (EINTR),
// short writes, fsyncs that fail once and then claim success, renames that
// fail, and reads that return corrupted bytes. The FaultInjector here is a
// VFS-level shim threaded through DurableFile / atomic_write_file /
// read_file alongside the crash injector: it deterministically injects
// errno-level faults from a seeded FaultPlan, so every fault schedule is
// replayable byte-for-byte (the same contract the crash sweep has).
//
// Fault taxonomy and who handles what (DESIGN.md §12):
//
//   EINTR, short write   always retried inline by DurableFile::append /
//                        sync — invisible above the VFS layer;
//   EIO, ENOSPC          retried per IoPolicy (bounded attempts, exponential
//                        backoff on a pluggable clock — virtual in tests);
//                        persistent faults surface as IoError and drive the
//                        DurableStream degradation ladder;
//   fsync failure        POISONS the file handle (the failed-fsync trap: a
//                        kernel may drop dirty pages on fsync error and
//                        report the *next* fsync as successful, so a
//                        subsequent fsync proves nothing). The layer above
//                        must reopen and rewrite from known-good state;
//   rename failure       retried per policy; persistent failure aborts the
//                        atomic checkpoint write (old file stays live);
//   read corruption      a read returns flipped bytes; readers re-read per
//                        policy before trusting a corruption verdict (a
//                        transient DMA/cable fault must not truncate a
//                        healthy WAL tail).
//
// A FaultPlan is a finite list of events; once every event has fired the
// environment has "healed" and no further faults occur. That finiteness is
// what the fault-sweep oracle (src/testkit/faults.hpp) leans on: any plan
// that heals before end-of-stream must yield digests bitwise identical to a
// fault-free run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trustrate::obs {
class Counter;  // obs/metrics.hpp
}

namespace trustrate::core::durable {

/// The injectable environmental faults.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kEintr,        ///< write/fsync interrupted; retry is always safe
  kShortWrite,   ///< write() persists only a prefix of the buffer
  kEio,          ///< device-level I/O error (possibly transient)
  kEnospc,       ///< disk full
  kFsyncFail,    ///< fsync reports failure; the handle is poisoned
  kRenameFail,   ///< rename(2) fails (checkpoint promotion blocked)
  kReadCorrupt,  ///< a read returns one flipped byte
};

const char* to_string(FaultKind kind);

/// The VFS operations the injector gates. Each keeps its own op counter, so
/// a plan event "the 3rd fsync fails" is independent of how many writes
/// happened in between.
enum class IoOp : std::uint8_t { kWrite = 0, kFsync, kRename, kRead };

inline constexpr std::size_t kIoOpCount = 4;

const char* to_string(IoOp op);

/// One scheduled fault: starting at the `at`-th operation of `op`'s kind
/// (0-based, counted over the injector's lifetime), the next `count`
/// operations of that kind fail with `kind`.
struct FaultEvent {
  IoOp op = IoOp::kWrite;
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kNone;
  std::uint32_t count = 1;
};

/// Knobs for FaultPlan::generate. Defaults give a plan of a handful of
/// faults spread over the first few thousand operations, with transient
/// bursts short enough that a default IoPolicy rides most of them out and
/// occasional bursts long enough to force a degradation.
struct FaultPlanOptions {
  std::size_t events = 6;           ///< scheduled faults
  /// Write-fault positions are drawn from [0, horizon); fsync, rename, and
  /// read events use a fraction of it matching how much rarer those ops are
  /// in WAL traffic (so a finite run actually reaches them).
  std::uint64_t horizon_ops = 2000;
  std::uint32_t max_burst = 8;      ///< max consecutive ops one event affects
  /// Include read-side corruption events (only meaningful for runs that
  /// exercise the recovery/read path).
  bool read_faults = false;
};

/// A deterministic, seeded schedule of environmental faults.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Deterministic plan from a seed: same seed, same plan, bit for bit.
  static FaultPlan generate(std::uint64_t seed,
                            const FaultPlanOptions& options = {});

  /// One-line human summary ("write@12 eio x3, fsync@2 fsync_fail x1, ...").
  std::string summary() const;
};

/// Deterministic errno-level fault injector. Thread-compatible (the durable
/// layer is single-writer, like the crash injector). Each on_*() call
/// advances the per-op counter exactly once, so the plan positions are
/// byte-reproducible across runs.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  /// What one write() attempt of `want` bytes does. kNone: all `want` bytes
  /// persist. kShortWrite: only `admit` bytes persist (a real short return).
  /// kEintr: nothing persists, errno EINTR. kEio/kEnospc: nothing persists,
  /// the corresponding errno.
  struct WriteOutcome {
    FaultKind kind = FaultKind::kNone;
    std::size_t admit = 0;  ///< bytes persisted (== want when kNone)
    int error = 0;          ///< errno to report (0 when kNone/kShortWrite)
  };
  WriteOutcome on_write(std::size_t want);

  /// errno for this fsync attempt (0 = success).
  int on_fsync();
  /// errno for this rename attempt (0 = success).
  int on_rename();
  /// True when this read should return corrupted bytes; `*flip_at` receives
  /// a deterministic byte position to XOR (caller clamps to buffer size).
  bool on_read(std::uint64_t* flip_at);

  /// Operations seen so far, per kind (armed or not — sizing aid).
  std::uint64_t ops(IoOp op) const { return ops_[static_cast<int>(op)]; }
  /// Faults injected so far, total and per kind.
  std::uint64_t injected() const { return injected_total_; }
  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<int>(kind)];
  }
  /// True once every scheduled event has fully fired: the environment has
  /// healed and no further faults will be injected.
  bool exhausted() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  /// The active fault (if any) for the current `op` operation, consuming
  /// one unit of the matching event's burst.
  FaultKind next_fault(IoOp op);

  FaultPlan plan_;
  std::vector<std::uint32_t> fired_;  ///< per-event count of fired ops
  std::uint64_t ops_[kIoOpCount] = {0, 0, 0, 0};
  std::uint64_t injected_[8] = {0};
  std::uint64_t injected_total_ = 0;
};

/// Clock used between I/O retries. Production code may sleep for real; the
/// deterministic tests use VirtualIoClock, which only accumulates.
class IoClock {
 public:
  virtual ~IoClock() = default;
  virtual void sleep_us(std::uint64_t us) = 0;
};

/// Deterministic clock: records the backoff schedule, never blocks.
class VirtualIoClock : public IoClock {
 public:
  void sleep_us(std::uint64_t us) override {
    slept_us_ += us;
    sleeps_.push_back(us);
  }
  std::uint64_t slept_us() const { return slept_us_; }
  const std::vector<std::uint64_t>& sleeps() const { return sleeps_; }

 private:
  std::uint64_t slept_us_ = 0;
  std::vector<std::uint64_t> sleeps_;
};

/// Bounded retry with exponential backoff for transient environmental
/// faults (EIO/ENOSPC, failed renames, corrupt reads). EINTR and short
/// writes are NOT governed by this — they are retried inline, always.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;        ///< total attempts (first + retries)
  std::uint64_t backoff_first_us = 100;  ///< delay before the first retry
  double backoff_multiplier = 8.0;
  std::uint64_t backoff_cap_us = 200'000;

  /// Backoff before retry number `retry` (1-based), per the schedule above.
  std::uint64_t backoff_us(std::uint32_t retry) const;
};

/// The retry/backoff configuration threaded through the durable VFS layer.
struct IoPolicy {
  RetryPolicy transient;
  /// Clock for retry backoff; null = retry immediately (no sleeping). Tests
  /// pass a VirtualIoClock to pin the schedule deterministically.
  IoClock* clock = nullptr;
};

class CrashInjector;  // io.hpp

/// Everything the durable VFS layer consults on each operation: the crash
/// injector (process death), the fault injector (environmental faults), and
/// the retry policy. Copyable, three pointers plus the policy; null members
/// mean "healthy environment", and every injection site reduces to a
/// pointer test on the hot path.
struct IoEnv {
  CrashInjector* crash = nullptr;
  FaultInjector* faults = nullptr;
  IoPolicy policy;
  /// When set, every inline retry (EINTR, short-write continuation,
  /// transient backoff retry) bumps this counter — `trustrate_io_retries_total`
  /// when threaded from the durable stream's metrics registry.
  obs::Counter* retries_total = nullptr;
};

}  // namespace trustrate::core::durable
