#include "core/durable/sharded_durable.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "core/checkpoint.hpp"

namespace trustrate::core::durable {
namespace {

/// Checkpoint files in `dir`, newest (highest ordinal) first.
std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_checkpoints(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0 || name.size() < 11 ||
        name.substr(name.size() - 5) != ".ckpt") {
      continue;
    }
    out.emplace_back(std::strtoull(name.c_str() + 5, nullptr, 10),
                     entry.path());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

/// Existing shard-<k> subdirectories, in index order (the on-disk layout,
/// which may differ from the target layout after a reshard).
std::vector<std::filesystem::path> list_shard_dirs(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    found.emplace_back(std::strtoull(name.c_str() + 6, nullptr, 10),
                       entry.path());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::filesystem::path> out;
  out.reserve(found.size());
  for (auto& [index, path] : found) out.push_back(std::move(path));
  return out;
}

}  // namespace

std::filesystem::path ShardedDurableStream::shard_dir(
    const std::filesystem::path& dir, std::size_t k) {
  return dir / ("shard-" + std::to_string(k));
}

std::string ShardedDurableStream::checkpoint_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%020llu.ckpt",
                static_cast<unsigned long long>(seq));
  return buf;
}

ShardedDurableStream::ShardedDurableStream(const std::filesystem::path& dir,
                                           const SystemConfig& config,
                                           shard::ShardOptions shard_options,
                                           double epoch_days,
                                           std::size_t retention_epochs,
                                           IngestConfig ingest,
                                           ShardedDurableOptions options)
    : dir_(dir),
      shard_options_(std::move(shard_options)),
      options_(std::move(options)),
      config_(config),
      epoch_days_(epoch_days),
      retention_epochs_(retention_epochs),
      ingest_(ingest) {
  recover(config_, epoch_days_, retention_epochs_, ingest_);
  refresh_probe(/*scan_segments=*/true);
}

void ShardedDurableStream::refresh_probe(bool scan_segments) {
  obs::DurabilityProbe p;
  p.present = true;
  // No degradation ladder here: an environmental I/O error throws instead
  // (see the file header). Engine health lives in the pipeline probe.
  p.state = "durable";
  p.acknowledged = acknowledged();
  p.durable_acknowledged = p.acknowledged;
  p.backlog_records = 0;
  p.last_checkpoint = last_checkpoint_seq_;
  p.records_since_checkpoint =
      p.acknowledged >= last_checkpoint_seq_
          ? p.acknowledged - last_checkpoint_seq_
          : 0;
  for (const auto& writer : writers_) {
    if (writer == nullptr) continue;
    p.wal_records += writer->next_lsn();
    p.active_segment_records +=
        writer->next_lsn() - writer->active_segment_first_lsn();
  }
  p.heals = supervision_.heals;
  p.failstops = supervision_.failstops;
  p.last_failure = supervision_.last_failure;
  std::size_t segments = 0;
  if (scan_segments) {
    for (std::size_t k = 0; k < writers_.size(); ++k) {
      segments += wal_segments(shard_dir(dir_, k)).size();
    }
  }
  std::lock_guard<std::mutex> lock(probe_mutex_);
  p.wal_segments = scan_segments ? segments : probe_snapshot_.wal_segments;
  probe_snapshot_ = std::move(p);
}

obs::DurabilityProbe ShardedDurableStream::probe() const {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  return probe_snapshot_;
}

WalOptions ShardedDurableStream::wal_options() const {
  WalOptions wal;
  wal.segment_bytes = options_.segment_bytes;
  wal.fsync = options_.fsync;
  wal.obs = options_.obs;
  return wal;
}

void ShardedDurableStream::recover(const SystemConfig& config,
                                   double epoch_days,
                                   std::size_t retention_epochs,
                                   const IngestConfig& ingest) {
  namespace fs = std::filesystem;
  const obs::SpanTimer recovery_span(options_.obs.trace, "shard.recovery");
  fs::create_directories(dir_);

  // Stale `.tmp` files from an interrupted atomic checkpoint write were
  // never the live checkpoint; delete them.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = kTempSuffix;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      fs::remove(entry.path());
    }
  }

  // The on-disk layout is whatever shard directories exist BEFORE this
  // open creates the target's — the reshard detection below compares the
  // two, so the listing must precede the creation.
  const std::vector<fs::path> disk_shards = list_shard_dirs(dir_);
  for (std::size_t k = 0; k < shard_options_.shards; ++k) {
    fs::create_directories(shard_dir(dir_, k));
  }
  std::vector<WalRecovered> recovered_logs;
  recovered_logs.reserve(disk_shards.size());
  for (const fs::path& sdir : disk_shards) {
    WalRecovered wal = read_wal(sdir);
    if (wal.tail_truncated) ++recovery_.torn_shards;
    recovered_logs.push_back(std::move(wal));
  }

  const auto checkpoints = list_checkpoints(dir_);
  recovery_.recovered =
      !checkpoints.empty() ||
      std::any_of(recovered_logs.begin(), recovered_logs.end(),
                  [](const WalRecovered& w) { return w.next_lsn > 0; });

  // Checkpoint rungs, newest first; a corrupt newer file never masks an
  // older valid one.
  StreamSnapshot snapshot;
  bool have_snapshot = false;
  for (const auto& [seq, path] : checkpoints) {
    try {
      snapshot = parse_checkpoint(stable_read_file(path));
      recovery_.loaded_checkpoint = true;
      recovery_.checkpoint_seq = seq;
      last_checkpoint_seq_ = seq;
      have_snapshot = true;
      break;
    } catch (const DataError&) {
      ++recovery_.corrupt_checkpoints;
    }
  }

  if (have_snapshot) {
    system_ = shard::ShardedRatingSystem::from_snapshot(snapshot, config,
                                                        shard_options_);
  } else {
    system_ = std::make_unique<shard::ShardedRatingSystem>(
        config, shard_options_, epoch_days, retention_epochs, ingest);
  }
  system_->set_observability(options_.obs);

  // Merge the shard logs into global submission order. Flush markers live
  // on shard 0 in log order; their ordinal is the submission count they
  // were issued after.
  std::vector<WalRecord> ratings;
  std::vector<WalRecord> flushes;
  for (std::size_t k = 0; k < recovered_logs.size(); ++k) {
    for (const auto& [lsn, record] : recovered_logs[k].records) {
      if (record.type == WalRecordType::kShardRating) {
        ratings.push_back(record);
      } else if (record.type == WalRecordType::kShardFlush) {
        flushes.push_back(record);
      } else {
        throw WalError("sharded WAL " + disk_shards[k].string() +
                       " holds a non-sharded record type " +
                       std::to_string(static_cast<int>(record.type)));
      }
    }
  }
  std::sort(ratings.begin(), ratings.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.seq < b.seq; });
  std::stable_sort(flushes.begin(), flushes.end(),
                   [](const WalRecord& a, const WalRecord& b) {
                     return a.seq < b.seq;
                   });

  // Longest contiguous ordinal run starting at the checkpoint horizon. A
  // hole means a torn shard lost an acknowledged submission; everything
  // after the hole is unreplayable regardless of which shard still holds
  // it (the classifier's verdicts depend on every prior submission).
  const std::uint64_t replay_from = system_->ingest_stats().submitted;
  std::uint64_t next_seq = replay_from;
  std::size_t flush_at = 0;
  std::size_t usable_ratings = 0;
  for (const WalRecord& record : ratings) {
    if (record.seq < replay_from) continue;
    if (record.seq != next_seq) break;  // hole: stop here
    ++usable_ratings;
    ++next_seq;
  }
  std::size_t discarded = 0;
  {
    std::size_t seen = 0;
    for (const WalRecord& record : ratings) {
      if (record.seq < replay_from) continue;
      ++seen;
    }
    discarded = seen - usable_ratings;
  }

  const obs::SpanTimer replay_span(options_.obs.trace, "shard.recovery.replay");
  std::uint64_t cursor = replay_from;
  auto apply_flushes_through = [&](std::uint64_t through) {
    while (flush_at < flushes.size() && flushes[flush_at].seq <= through) {
      if (flushes[flush_at].seq >= replay_from) {
        system_->flush();
        ++recovery_.replayed_records;
      }
      ++flush_at;
    }
  };
  for (const WalRecord& record : ratings) {
    if (record.seq < replay_from) continue;
    if (record.seq >= next_seq) break;
    apply_flushes_through(record.seq);
    const IngestClass klass = system_->submit(record.rating);
    if (klass != record.ingest_class) {
      throw RecoveryError(
          "sharded WAL replay diverged at submission " +
          std::to_string(record.seq) + ": logged verdict " +
          std::string(to_string(record.ingest_class)) + ", replay got " +
          std::string(to_string(klass)));
    }
    cursor = record.seq + 1;
    ++recovery_.replayed_records;
    ++recovery_.replayed_ratings;
  }
  apply_flushes_through(cursor);
  // Flush markers beyond the replayed prefix are as unreplayable as the
  // submissions they followed.
  discarded += flushes.size() - flush_at;
  recovery_.discarded_records = discarded;

  // When recovery lost anything — or the disk layout isn't the target
  // layout — re-anchor durability NOW: checkpoint the recovered state and
  // reset every shard log, so orphaned frames can never resurface and the
  // layouts agree from here on.
  // A fresh directory (no durable state at all) is not a reshard — only a
  // mismatch against state that actually existed forces the reset.
  const bool layout_changed =
      recovery_.recovered && disk_shards.size() != shard_options_.shards;
  if (discarded > 0 || recovery_.torn_shards > 0 || layout_changed) {
    write_checkpoint_file();
    reset_wals();
    recovery_.wal_reset = true;
    prune();
    return;
  }

  open_writers(recovered_logs);
}

void ShardedDurableStream::open_writers(
    const std::vector<WalRecovered>& recovered) {
  writers_.clear();
  writers_.reserve(shard_options_.shards);
  for (std::size_t k = 0; k < shard_options_.shards; ++k) {
    if (k < recovered.size()) {
      writers_.push_back(std::make_unique<WalWriter>(
          shard_dir(dir_, k), recovered[k], wal_options()));
    } else {
      writers_.push_back(std::make_unique<WalWriter>(shard_dir(dir_, k),
                                                     std::uint64_t{0},
                                                     wal_options()));
    }
  }
}

void ShardedDurableStream::reset_wals() {
  namespace fs = std::filesystem;
  writers_.clear();
  for (const fs::path& sdir : list_shard_dirs(dir_)) {
    const std::size_t index =
        std::strtoull(sdir.filename().string().c_str() + 6, nullptr, 10);
    for (const WalSegment& seg : wal_segments(sdir)) {
      fs::remove(seg.path);
    }
    if (index >= shard_options_.shards) fs::remove_all(sdir);
  }
  for (std::size_t k = 0; k < shard_options_.shards; ++k) {
    fs::create_directories(shard_dir(dir_, k));
    writers_.push_back(std::make_unique<WalWriter>(
        shard_dir(dir_, k), std::uint64_t{0}, wal_options()));
  }
}

IngestClass ShardedDurableStream::submit(const Rating& rating) {
  // Apply first, then log: the global ordinal is the submission's index in
  // arrival order, which the classifier's counter hands us post-increment.
  // The apply/log order also makes supervised healing exactly-once: a
  // submission interrupted by a ShardFailure was never logged, the rebuilt
  // system replays only acknowledged state, and the retry below
  // re-classifies it deterministically from scratch.
  IngestClass result{};
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      result = system_->submit(rating);
      break;
    } catch (const ShardFailure& failure) {
      if (attempt >= options_.heal_attempts) {
        record_failstop(failure);
        throw;
      }
      heal(failure);
    }
  }
  const std::uint64_t seq = system_->ingest_stats().submitted - 1;
  const std::size_t k = system_->shard_for(rating.product);
  WalRecord record;
  record.type = WalRecordType::kShardRating;
  record.rating = rating;
  record.ingest_class = result;
  record.seq = seq;
  writers_[k]->append(record);
  if (options_.fsync == FsyncPolicy::kAlways) writers_[k]->sync();
  refresh_probe(/*scan_segments=*/false);
  return result;
}

std::size_t ShardedDurableStream::flush() {
  std::size_t products = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      products = system_->flush();
      break;
    } catch (const ShardFailure& failure) {
      if (attempt >= options_.heal_attempts) {
        record_failstop(failure);
        throw;
      }
      heal(failure);
    }
  }
  WalRecord record;
  record.type = WalRecordType::kShardFlush;
  record.seq = system_->ingest_stats().submitted;
  record.epochs_closed = system_->epochs_closed();
  writers_[0]->append(record);
  if (options_.fsync != FsyncPolicy::kNone) sync_all();
  refresh_probe(/*scan_segments=*/false);
  return products;
}

bool ShardedDurableStream::try_heal() {
  if (!system_->failed()) return true;
  const std::optional<ShardFailure> failure = system_->failure();
  heal(*failure);
  return !system_->failed();
}

void ShardedDurableStream::heal(const ShardFailure& failure) {
  const obs::SpanTimer heal_span(options_.obs.trace, "shard.heal");
  supervision_.last_failure = failure.what();
  // Release the WAL writers first (recover() re-opens the segments), then
  // the engine — its destructor runs the close-aware shutdown protocol,
  // which cannot hang on the poisoned/stalled workers (DESIGN.md §15).
  writers_.clear();
  system_.reset();
  recovery_ = RecoveryInfo{};
  recover(config_, epoch_days_, retention_epochs_, ingest_);
  ++supervision_.heals;
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics
        ->counter("trustrate_pipeline_heals_total",
                  "Supervised pipeline rebuilds from checkpoint + WAL")
        .add();
  }
  if (options_.obs.audit != nullptr) {
    obs::AuditEvent e;
    e.type = obs::AuditEventType::kPipelineHealed;
    e.value = static_cast<double>(failure.shard());
    e.detail = std::string(to_string(failure.kind())) + ": " +
               failure.what() + " — replayed " +
               std::to_string(recovery_.replayed_ratings) +
               " submissions from checkpoint " +
               std::to_string(recovery_.checkpoint_seq);
    options_.obs.audit->record(e);
  }
  refresh_probe(/*scan_segments=*/true);
}

void ShardedDurableStream::record_failstop(const ShardFailure& failure) {
  ++supervision_.failstops;
  supervision_.last_failure = failure.what();
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics
        ->counter("trustrate_pipeline_failstops_total",
                  "ShardFailures surfaced to the caller with no heal left")
        .add();
  }
  if (options_.obs.audit != nullptr) {
    obs::AuditEvent e;
    e.type = obs::AuditEventType::kPipelineFailstop;
    e.value = static_cast<double>(failure.shard());
    e.detail = std::string(to_string(failure.kind())) + ": " +
               failure.what() + " — " + failure.diagnostic();
    options_.obs.audit->record(e);
  }
  refresh_probe(/*scan_segments=*/false);
}

void ShardedDurableStream::sync_all() {
  for (auto& writer : writers_) writer->sync();
}

void ShardedDurableStream::write_checkpoint_file() {
  const StreamSnapshot snapshot = system_->snapshot();
  std::ostringstream out;
  write_checkpoint(snapshot, kShardedCheckpointVersion, out);
  const std::uint64_t seq = snapshot.stats.submitted;
  atomic_write_file(dir_ / checkpoint_name(seq), out.str());
  last_checkpoint_seq_ = seq;
  std::vector<std::uint64_t> lsns;
  lsns.reserve(writers_.size());
  for (const auto& writer : writers_) {
    lsns.push_back(writer != nullptr ? writer->next_lsn() : 0);
  }
  checkpoint_wal_lsns_[seq] = std::move(lsns);
}

std::uint64_t ShardedDurableStream::checkpoint() {
  // snapshot() quiesces, so a latched failure surfaces here too.
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (options_.fsync != FsyncPolicy::kNone) sync_all();
      write_checkpoint_file();
      break;
    } catch (const ShardFailure& failure) {
      if (attempt >= options_.heal_attempts) {
        record_failstop(failure);
        throw;
      }
      heal(failure);
    }
  }
  prune();
  refresh_probe(/*scan_segments=*/true);
  return last_checkpoint_seq_;
}

void ShardedDurableStream::prune() {
  const auto checkpoints = list_checkpoints(dir_);  // newest first
  const std::size_t keep = std::max<std::size_t>(1, options_.keep_checkpoints);
  std::uint64_t oldest_kept = 0;
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    if (i < keep) {
      oldest_kept = checkpoints[i].first;
    } else {
      std::filesystem::remove(checkpoints[i].second);
      checkpoint_wal_lsns_.erase(checkpoints[i].first);
    }
  }
  // Shard segments are prunable only below a cursor we RECORDED for the
  // oldest kept checkpoint; inherited checkpoints (unknown cursors) prune
  // nothing until newer ones displace them.
  const auto it = checkpoint_wal_lsns_.find(oldest_kept);
  if (it == checkpoint_wal_lsns_.end()) return;
  const std::vector<std::uint64_t>& horizons = it->second;
  for (std::size_t k = 0; k < writers_.size() && k < horizons.size(); ++k) {
    const auto segments = wal_segments(shard_dir(dir_, k));
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      if (segments[i + 1].first_lsn <= horizons[k]) {
        std::filesystem::remove(segments[i].path);
      }
    }
  }
}

}  // namespace trustrate::core::durable
