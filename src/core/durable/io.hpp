// Low-level durable file I/O plus the deterministic crash-point injector
// (ISSUE 4 tentpole).
//
// Every byte the durability layer persists — WAL frames, checkpoint files —
// flows through DurableFile / atomic_write_file, and both route their
// writes through an optional CrashInjector. The injector models a
// `kill -9` at a byte-exact position: armed with a budget of k bytes, it
// lets exactly k more durable bytes reach the file and then throws
// CrashInjected *after* persisting that prefix — precisely the on-disk
// state an abrupt process death leaves behind (a torn tail on the file
// being written, nothing after it). Barrier operations (fsync, the
// temp-file rename) also consult the injector, so a sweep over k covers
// "crashed after the temp checkpoint was fully written but before the
// rename" and every other in-between state.
//
// The injector simulates *process* death: bytes handed to write() are
// assumed to survive (the page cache outlives the process). fsync matters
// for machine-level power loss, which no in-process test can simulate —
// the fsync policies are therefore exercised for correctness and measured
// for cost (bench/micro_durability), while the crash sweep proves the
// recovery logic over every partial-write state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace trustrate::core::durable {

/// Thrown by the crash injector to simulate an abrupt process kill mid-
/// durable-write. Deliberately NOT a DataError: nothing is wrong with any
/// data; the "process" just died. Test harnesses catch it, abandon the
/// in-memory state, and run recovery against the directory.
class CrashInjected : public Error {
 public:
  explicit CrashInjected(const std::string& where)
      : Error("crash injected " + where) {}
};

/// Deterministic byte-budget crash injector. Unarmed it only counts durable
/// bytes (a dry run sizes the sweep); armed with budget k it admits exactly
/// k more bytes, then the next durable operation throws CrashInjected.
class CrashInjector {
 public:
  void arm(std::uint64_t budget) {
    armed_ = true;
    remaining_ = budget;
  }
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  /// Durable bytes admitted since construction (armed or not).
  std::uint64_t total_written() const { return total_; }

  /// Gate for a durable write of `want` bytes: returns how many of them may
  /// be persisted. A return < want (possible only when armed) means the
  /// budget is exhausted — the caller persists exactly that prefix and then
  /// throws CrashInjected.
  std::size_t gate(std::size_t want) {
    if (!armed_) {
      total_ += want;
      return want;
    }
    const std::uint64_t allowed =
        remaining_ < want ? remaining_ : static_cast<std::uint64_t>(want);
    remaining_ -= allowed;
    total_ += allowed;
    return static_cast<std::size_t>(allowed);
  }

  /// True once an armed budget has run out: barrier operations (fsync,
  /// rename) call this and die *before* taking effect.
  bool exhausted() const { return armed_ && remaining_ == 0; }

 private:
  bool armed_ = false;
  std::uint64_t remaining_ = 0;
  std::uint64_t total_ = 0;
};

/// Unbuffered append-only file handle. Writes go straight to the OS (no
/// userspace buffering), so the injector's byte accounting equals what is
/// on disk; sync() is a real fsync on POSIX.
class DurableFile {
 public:
  /// Opens (creating if absent) `path` for appending. `crash` may be null.
  DurableFile(const std::filesystem::path& path, CrashInjector* crash);
  ~DurableFile();
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Appends `bytes`, throwing CrashInjected after persisting the admitted
  /// prefix when the injector's budget runs out.
  void append(std::string_view bytes);

  /// fsync barrier; consults the injector first (a crash can land exactly
  /// between the last write and the sync).
  void sync();

  /// Bytes in the file (including whatever it held when opened).
  std::uint64_t size() const { return size_; }

  const std::filesystem::path& path() const { return path_; }

  void close();

 private:
  std::filesystem::path path_;
  CrashInjector* crash_ = nullptr;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// write + fsync, rename over `path`, fsync the directory. A crash at any
/// injected point leaves either the old file (plus at most a stale temp)
/// or the complete new one — never a torn `path`.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes, CrashInjector* crash);

/// fsyncs a directory so a rename/create within it is durable (POSIX; no-op
/// elsewhere). Consults the injector as a barrier.
void sync_directory(const std::filesystem::path& dir, CrashInjector* crash);

/// Reads a whole file into a string. Throws DataError when unreadable.
std::string read_file(const std::filesystem::path& path);

/// Suffix of in-flight atomic writes; recovery deletes leftovers.
inline constexpr const char* kTempSuffix = ".tmp";

}  // namespace trustrate::core::durable
