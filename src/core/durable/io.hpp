// Low-level durable file I/O plus the deterministic crash-point injector
// (ISSUE 4 tentpole) and the environmental fault layer (ISSUE 6 tentpole).
//
// Every byte the durability layer persists — WAL frames, checkpoint files —
// flows through DurableFile / atomic_write_file, and both route their
// writes through an optional CrashInjector. The injector models a
// `kill -9` at a byte-exact position: armed with a budget of k bytes, it
// lets exactly k more durable bytes reach the file and then throws
// CrashInjected *after* persisting that prefix — precisely the on-disk
// state an abrupt process death leaves behind (a torn tail on the file
// being written, nothing after it). Barrier operations (fsync, the
// temp-file rename) also consult the injector, so a sweep over k covers
// "crashed after the temp checkpoint was fully written but before the
// rename" and every other in-between state.
//
// The injector simulates *process* death: bytes handed to write() are
// assumed to survive (the page cache outlives the process). fsync matters
// for machine-level power loss, which no in-process test can simulate —
// the fsync policies are therefore exercised for correctness and measured
// for cost (bench/micro_durability), while the crash sweep proves the
// recovery logic over every partial-write state.
//
// Orthogonal to process death, the same call sites consult an IoEnv
// (fault.hpp): a FaultInjector that injects errno-level environmental
// faults and an IoPolicy that bounds how hard the layer retries them.
// Retry semantics implemented here:
//
//   EINTR / short write   retried inline, always — both the injected kind
//                         and the real syscall returns (satellite fix: a
//                         short ::write must never corrupt the byte
//                         accounting the crash injector and WAL framing
//                         rely on);
//   EIO / ENOSPC          bounded attempts with exponential backoff on the
//                         policy clock, then IoError with op/path/errno;
//   failed fsync          poisons the handle: a kernel may drop dirty pages
//                         on fsync error and report the NEXT fsync as
//                         successful, so after one failure this handle
//                         refuses all further appends/syncs — the caller
//                         must reopen and rewrite from known-good state;
//   failed rename         retried per policy inside atomic_write_file; a
//                         persistent failure throws IoError and leaves the
//                         old file live (plus a complete, fsynced temp);
//   read corruption       injected in read_file; stable_read_file re-reads
//                         until two consecutive reads agree, so a transient
//                         fault cannot drive a destructive verdict.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "core/durable/fault.hpp"

namespace trustrate::core::durable {

/// Thrown by the crash injector to simulate an abrupt process kill mid-
/// durable-write. Deliberately NOT a DataError: nothing is wrong with any
/// data; the "process" just died. Test harnesses catch it, abandon the
/// in-memory state, and run recovery against the directory. The degradation
/// ladder never swallows it — an environmental fault can be survived in
/// process, a kill cannot.
class CrashInjected : public Error {
 public:
  explicit CrashInjected(const std::string& where)
      : Error("crash injected " + where) {}
};

/// Deterministic byte-budget crash injector. Unarmed it only counts durable
/// bytes (a dry run sizes the sweep); armed with budget k it admits exactly
/// k more bytes, then the next durable operation throws CrashInjected.
class CrashInjector {
 public:
  void arm(std::uint64_t budget) {
    armed_ = true;
    remaining_ = budget;
  }
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  /// Durable bytes admitted since construction (armed or not).
  std::uint64_t total_written() const { return total_; }

  /// Gate for a durable write of `want` bytes: returns how many of them may
  /// be persisted. A return < want (possible only when armed) means the
  /// budget is exhausted — the caller persists exactly that prefix and then
  /// throws CrashInjected.
  std::size_t gate(std::size_t want) {
    if (!armed_) {
      total_ += want;
      return want;
    }
    const std::uint64_t allowed =
        remaining_ < want ? remaining_ : static_cast<std::uint64_t>(want);
    remaining_ -= allowed;
    total_ += allowed;
    return static_cast<std::size_t>(allowed);
  }

  /// True once an armed budget has run out: barrier operations (fsync,
  /// rename) call this and die *before* taking effect.
  bool exhausted() const { return armed_ && remaining_ == 0; }

 private:
  bool armed_ = false;
  std::uint64_t remaining_ = 0;
  std::uint64_t total_ = 0;
};

/// Unbuffered append-only file handle. Writes go straight to the OS (no
/// userspace buffering), so the injector's byte accounting equals what is
/// on disk; sync() is a real fsync on POSIX.
class DurableFile {
 public:
  /// Opens (creating if absent) `path` for appending, consulting `env` on
  /// every subsequent operation. Default env = healthy environment.
  explicit DurableFile(const std::filesystem::path& path, IoEnv env = {});
  /// Back-compat convenience: crash injection only.
  DurableFile(const std::filesystem::path& path, CrashInjector* crash)
      : DurableFile(path, IoEnv{crash, nullptr, {}, nullptr}) {}
  ~DurableFile();
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Appends `bytes`, throwing CrashInjected after persisting the admitted
  /// prefix when the injector's budget runs out. EINTR and short writes
  /// (real or injected) are retried inline; EIO/ENOSPC per the policy, then
  /// IoError. size() always reflects exactly the bytes persisted.
  void append(std::string_view bytes);

  /// fsync barrier; consults the crash injector first (a crash can land
  /// exactly between the last write and the sync). EINTR is retried; any
  /// other failure poisons the handle and throws IoError — a poisoned
  /// handle refuses all further appends and syncs (see header comment).
  void sync();

  /// True after a failed fsync: the kernel may have dropped dirty pages and
  /// nothing written through this fd can be trusted durable. Reopen and
  /// rewrite from known-good state.
  bool poisoned() const { return poisoned_; }

  /// Bytes in the file (including whatever it held when opened).
  std::uint64_t size() const { return size_; }

  const std::filesystem::path& path() const { return path_; }

  void close();

 private:
  std::filesystem::path path_;
  IoEnv env_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  bool poisoned_ = false;
};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// write + fsync, rename over `path`, fsync the directory. A crash at any
/// injected point leaves either the old file (plus at most a stale temp)
/// or the complete new one — never a torn `path`. A failed rename is
/// retried per `env.policy`; a persistent failure throws IoError with the
/// old file still live.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes, IoEnv env = {});
/// Back-compat convenience: crash injection only.
inline void atomic_write_file(const std::filesystem::path& path,
                              std::string_view bytes, CrashInjector* crash) {
  atomic_write_file(path, bytes, IoEnv{crash, nullptr, {}, nullptr});
}

/// fsyncs a directory so a rename/create within it is durable (POSIX; no-op
/// elsewhere). Consults the crash injector as a barrier and the fault
/// injector's fsync gate.
void sync_directory(const std::filesystem::path& dir, IoEnv env = {});
inline void sync_directory(const std::filesystem::path& dir,
                           CrashInjector* crash) {
  sync_directory(dir, IoEnv{crash, nullptr, {}, nullptr});
}

/// Reads a whole file into a string (POSIX read with inline EINTR retry).
/// Throws IoError (a DataError) with path/op/errno when unreadable. When
/// `env.faults` is set, read-side corruption faults flip one byte.
std::string read_file(const std::filesystem::path& path, const IoEnv& env = {});

/// read_file hardened against transient read corruption: with a fault
/// injector attached, re-reads (bounded by `env.policy.transient`) until
/// two consecutive reads agree before returning. Callers that act
/// destructively on what they read (WAL tail truncation, checkpoint
/// rejection) go through this, so a one-off bad read cannot trigger data
/// loss. Without an injector it is a single read.
std::string stable_read_file(const std::filesystem::path& path,
                             const IoEnv& env = {});

/// Suffix of in-flight atomic writes; recovery deletes leftovers.
inline constexpr const char* kTempSuffix = ".tmp";

}  // namespace trustrate::core::durable
