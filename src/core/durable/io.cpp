#include "core/durable/io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace trustrate::core::durable {
namespace {

[[noreturn]] void throw_io(const std::string& what,
                           const std::filesystem::path& path) {
  throw DataError(what + " '" + path.string() + "': " + std::strerror(errno));
}

#ifndef _WIN32
void write_all(int fd, const char* data, std::size_t size,
               const std::filesystem::path& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("cannot write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}
#endif

}  // namespace

DurableFile::DurableFile(const std::filesystem::path& path, CrashInjector* crash)
    : path_(path), crash_(crash) {
#ifndef _WIN32
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_io("cannot open durable file", path);
  const off_t at = ::lseek(fd_, 0, SEEK_END);
  if (at < 0) throw_io("cannot seek durable file", path);
  size_ = static_cast<std::uint64_t>(at);
#else
  throw Error("durable file I/O requires a POSIX platform");
#endif
}

DurableFile::~DurableFile() { close(); }

void DurableFile::close() {
#ifndef _WIN32
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

void DurableFile::append(std::string_view bytes) {
#ifndef _WIN32
  const std::size_t allowed =
      crash_ != nullptr ? crash_->gate(bytes.size()) : bytes.size();
  write_all(fd_, bytes.data(), allowed, path_);
  size_ += allowed;
  if (allowed < bytes.size()) {
    throw CrashInjected("after byte " + std::to_string(size_) + " of '" +
                        path_.filename().string() + "'");
  }
#endif
}

void DurableFile::sync() {
#ifndef _WIN32
  if (crash_ != nullptr && crash_->exhausted()) {
    throw CrashInjected("before fsync of '" + path_.filename().string() + "'");
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) throw_io("cannot fsync", path_);
#endif
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes, CrashInjector* crash) {
  const std::filesystem::path tmp = path.string() + kTempSuffix;
  {
    // Truncate a stale temp from an earlier crashed attempt before reuse.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    DurableFile file(tmp, crash);
    file.append(bytes);
    file.sync();
  }
  if (crash != nullptr && crash->exhausted()) {
    throw CrashInjected("before rename of '" + tmp.filename().string() + "'");
  }
  std::filesystem::rename(tmp, path);
  sync_directory(path.parent_path(), crash);
}

void sync_directory(const std::filesystem::path& dir, CrashInjector* crash) {
#ifndef _WIN32
  if (crash != nullptr && crash->exhausted()) {
    throw CrashInjected("before directory fsync of '" + dir.string() + "'");
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_io("cannot fsync directory", dir);
#else
  (void)dir;
  (void)crash;
#endif
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_io("cannot read", path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace trustrate::core::durable
