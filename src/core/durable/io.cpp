#include "core/durable/io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.hpp"

namespace trustrate::core::durable {
namespace {

std::string describe_io(const char* op, const std::filesystem::path& path,
                        int err) {
  return std::string("cannot ") + op + " '" + path.string() +
         "': " + std::strerror(err) + " (errno " + std::to_string(err) + ")";
}

[[noreturn]] void throw_io(const char* op, const std::filesystem::path& path,
                           int err) {
  throw IoError(op, path.string(), err, describe_io(op, path, err));
}

void count_retry(const IoEnv& env) {
  if (env.retries_total != nullptr) env.retries_total->add(1);
}

void backoff(const IoEnv& env, std::uint32_t retry) {
  const std::uint64_t us = env.policy.transient.backoff_us(retry);
  if (env.policy.clock != nullptr && us > 0) env.policy.clock->sleep_us(us);
}

}  // namespace

DurableFile::DurableFile(const std::filesystem::path& path, IoEnv env)
    : path_(path), env_(env) {
#ifndef _WIN32
  do {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) throw_io("open", path, errno);
  const off_t at = ::lseek(fd_, 0, SEEK_END);
  if (at < 0) {
    const int err = errno;
    close();
    throw_io("seek", path, err);
  }
  size_ = static_cast<std::uint64_t>(at);
#else
  throw Error("durable file I/O requires a POSIX platform");
#endif
}

DurableFile::~DurableFile() { close(); }

void DurableFile::close() {
#ifndef _WIN32
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

void DurableFile::append(std::string_view bytes) {
#ifndef _WIN32
  if (poisoned_) {
    throw IoError("write", path_.string(), EIO,
                  "refusing to write '" + path_.string() +
                      "': handle poisoned by a failed fsync (dirty pages may "
                      "have been dropped; reopen and rewrite from known-good "
                      "state)");
  }
  const std::size_t allowed =
      env_.crash != nullptr ? env_.crash->gate(bytes.size()) : bytes.size();
  std::size_t done = 0;
  std::uint32_t transient = 0;  // consecutive EIO/ENOSPC attempts
  while (done < allowed) {
    std::size_t want = allowed - done;
    int err = 0;
    bool injected_retry = false;
    if (env_.faults != nullptr) {
      const FaultInjector::WriteOutcome fault = env_.faults->on_write(want);
      if (fault.error != 0) {
        err = fault.error;
      } else if (fault.admit < want) {
        want = fault.admit;  // injected short write: persist a prefix only
        injected_retry = true;
      }
    }
    if (err == 0) {
      const ssize_t n = ::write(fd_, bytes.data() + done, want);
      if (n < 0) {
        err = errno;
      } else {
        done += static_cast<std::size_t>(n);
        transient = 0;
        if (injected_retry || static_cast<std::size_t>(n) < want) {
          count_retry(env_);  // short return — loop continues the suffix
        }
        continue;
      }
    }
    if (err == EINTR) {
      count_retry(env_);
      continue;
    }
    // EIO / ENOSPC (or anything else errno-backed): bounded retries with
    // backoff, then surface with full classification. size_ reflects the
    // prefix actually persisted so the caller's accounting stays exact.
    ++transient;
    if (transient >= env_.policy.transient.max_attempts) {
      size_ += done;
      throw_io("write", path_, err);
    }
    backoff(env_, transient);
    count_retry(env_);
  }
  size_ += done;
  if (allowed < bytes.size()) {
    throw CrashInjected("after byte " + std::to_string(size_) + " of '" +
                        path_.filename().string() + "'");
  }
#endif
}

void DurableFile::sync() {
#ifndef _WIN32
  if (env_.crash != nullptr && env_.crash->exhausted()) {
    throw CrashInjected("before fsync of '" + path_.filename().string() + "'");
  }
  if (fd_ < 0) return;
  if (poisoned_) {
    throw IoError("fsync", path_.string(), EIO,
                  "refusing to fsync '" + path_.string() +
                      "': handle already poisoned by a failed fsync (a "
                      "subsequent fsync success proves nothing)");
  }
  while (true) {
    int err = env_.faults != nullptr ? env_.faults->on_fsync() : 0;
    if (err == 0 && ::fsync(fd_) != 0) err = errno;
    if (err == 0) return;
    if (err == EINTR) {
      count_retry(env_);
      continue;
    }
    // The failed-fsync trap: the kernel may discard the dirty pages whose
    // writeback failed, and the NEXT fsync of the same fd can then report
    // success having proven nothing. Never retry — poison the handle.
    poisoned_ = true;
    throw IoError("fsync", path_.string(), err,
                  describe_io("fsync", path_, err) +
                      " — handle poisoned; dirty pages may have been "
                      "dropped, rewrite from known-good state");
  }
#endif
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes, IoEnv env) {
  const std::filesystem::path tmp = path.string() + kTempSuffix;
  {
    // Truncate a stale temp from an earlier crashed attempt before reuse.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    DurableFile file(tmp, env);
    file.append(bytes);
    file.sync();
  }
  if (env.crash != nullptr && env.crash->exhausted()) {
    throw CrashInjected("before rename of '" + tmp.filename().string() + "'");
  }
  std::uint32_t attempts = 0;
  while (true) {
    int err = env.faults != nullptr ? env.faults->on_rename() : 0;
    if (err == 0) {
      std::error_code ec;
      std::filesystem::rename(tmp, path, ec);
      if (ec) err = ec.value() != 0 ? ec.value() : EIO;
    }
    if (err == 0) break;
    ++attempts;
    if (attempts >= env.policy.transient.max_attempts) {
      // The old `path` is still live and the temp is complete + fsynced;
      // nothing torn. The caller decides whether to degrade.
      throw_io("rename", path, err);
    }
    backoff(env, attempts);
    count_retry(env);
  }
  sync_directory(path.parent_path(), env);
}

void sync_directory(const std::filesystem::path& dir, IoEnv env) {
#ifndef _WIN32
  if (env.crash != nullptr && env.crash->exhausted()) {
    throw CrashInjected("before directory fsync of '" + dir.string() + "'");
  }
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw_io("open directory", dir, errno);
  while (true) {
    int err = env.faults != nullptr ? env.faults->on_fsync() : 0;
    if (err == 0 && ::fsync(fd) != 0) err = errno;
    if (err == 0) break;
    if (err == EINTR) {
      count_retry(env);
      continue;
    }
    ::close(fd);
    throw_io("fsync directory", dir, err);
  }
  ::close(fd);
#else
  (void)dir;
  (void)env;
#endif
}

std::string read_file(const std::filesystem::path& path, const IoEnv& env) {
#ifndef _WIN32
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw_io("open for read", path, errno);
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) {
        count_retry(env);
        continue;
      }
      const int err = errno;
      ::close(fd);
      throw_io("read", path, err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_io("read", path, errno);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string out = buffer.str();
#endif
  if (env.faults != nullptr && !out.empty()) {
    std::uint64_t flip = 0;
    if (env.faults->on_read(&flip)) {
      out[static_cast<std::size_t>(flip % out.size())] ^=
          static_cast<char>(0x01);
    }
  }
  return out;
}

std::string stable_read_file(const std::filesystem::path& path,
                             const IoEnv& env) {
  std::string data = read_file(path, env);
  if (env.faults == nullptr) return data;
  // Two consecutive identical reads rule out a transient read fault; with
  // bounded read bursts this converges before the attempt budget runs out.
  // On persistent disagreement, the final read wins (the verdict layer
  // above still applies its own corruption handling).
  const std::uint32_t max_attempts =
      env.policy.transient.max_attempts < 2 ? 2
                                            : env.policy.transient.max_attempts;
  for (std::uint32_t i = 1; i < max_attempts; ++i) {
    std::string again = read_file(path, env);
    if (again == data) return data;
    count_retry(env);
    data = std::move(again);
  }
  return data;
}

}  // namespace trustrate::core::durable
