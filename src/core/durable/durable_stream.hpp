// Crash-safe front-end for StreamingRatingSystem (ISSUE 4 tentpole): a
// directory of durable state — WAL segments plus checksummed, atomically
// written checkpoints — and the recovery orchestrator that rebuilds the
// exact in-memory stream from them after a crash.
//
//     durable::DurableStream ds(dir, config, /*epoch_days=*/30.0);
//     ds.submit(rating);      // logged to the WAL, then applied, then acked
//     ds.checkpoint();        // atomic v3 checkpoint; obsolete WAL pruned
//     ...process dies...
//     durable::DurableStream back(dir, config, 30.0);   // recovers
//     back.recovery().replayed_ratings;  // how much the WAL replayed
//
// Recovery ladder (each rung falls through to the next on corruption):
//
//   1. newest checkpoint `ckpt-<lsn>.ckpt`: checksum-verified load, then
//      replay of WAL records >= lsn;
//   2. older checkpoints, newest first, same way — a corrupt newer file
//      never masks an older valid one;
//   3. no checkpoint at all: fresh state, full WAL replay from record 0.
//
// If even rung 3 is impossible (all checkpoints corrupt AND the WAL's
// early segments were already pruned) recovery throws RecoveryError
// rather than fabricate partial state. A torn WAL tail — the partial last
// write of the crashed process — is truncated, never fatal; every fully
// framed record is replayed. Stale `.tmp` files from interrupted atomic
// checkpoint writes are deleted.
//
// Exactly-once resume: `acknowledged()` (== ingest submitted count) is the
// client's resume cursor. A crashed submit was never acknowledged; after
// recovery the client continues from arrivals[acknowledged()], and the
// resumed system is bitwise-identical to one that never crashed — the
// property the crash-point sweep (src/testkit/crash.hpp) proves for every
// kill position.
// Environmental faults and the degradation ladder (ISSUE 6 tentpole):
// when an I/O fault (ENOSPC, EIO, a failed fsync or rename) persists past
// the IoPolicy retry budget, the stream does NOT throw — it degrades:
//
//   durable     every acknowledgement is WAL-backed (the PR-4 contract);
//   degraded    the WAL is suspended; submissions are still applied and
//               acknowledged but buffered in an in-memory backlog — an
//               alarm (audit event + metrics) is raised, and
//               durable_acknowledged() stops advancing;
//   recovering  a heal probe rewrites a sentinel file; on success the
//               wounded segment is truncated to its last good frame, the
//               backlog is replayed into a fresh segment, and a checkpoint
//               re-establishes the durability horizon;
//   durable     the ladder closes; durable_acknowledged() == acknowledged().
//
// Exactly-once under degraded mode: acknowledged() keeps its meaning as
// the resume cursor, but only durable_acknowledged() submissions survive a
// process death while degraded — the client that needs the stronger
// guarantee resumes from the durable cursor and re-submits the rest, and
// re-application is deterministic, so the healed system is still bitwise
// identical to one that never saw a fault (the property run_fault_sweep in
// src/testkit/faults.hpp proves for every seeded plan that heals).
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>

#include "core/durable/wal.hpp"
#include "core/streaming.hpp"
#include "obs/introspect.hpp"

namespace trustrate::core::durable {

/// Rung of the persistence-degradation ladder (see file header).
enum class DurabilityState : std::uint8_t {
  kDurable = 0,
  kDegraded = 1,
  kRecovering = 2,
};

const char* to_string(DurabilityState state);

struct DurableOptions {
  FsyncPolicy fsync = FsyncPolicy::kEpoch;
  /// WAL segment rotation threshold.
  std::size_t segment_bytes = 1 << 20;
  /// Checkpoints kept on disk (>= 1); older ones and fully-covered WAL
  /// segments are pruned after each checkpoint().
  std::size_t keep_checkpoints = 2;
  /// Crash-point injector for recovery testing; null in production.
  CrashInjector* crash = nullptr;
  /// Environmental fault injector for fault testing; null in production.
  FaultInjector* faults = nullptr;
  /// Retry/backoff policy for transient environmental faults, threaded
  /// through every durable write/fsync/rename this stream performs.
  IoPolicy io;
  /// While degraded, a heal probe runs automatically every this many
  /// submissions (checkpoint() and try_heal() also probe). 0 disables
  /// auto-probing.
  std::size_t heal_probe_every = 16;
  /// On ENOSPC, try once to free space by pruning WAL segments and
  /// checkpoints below the durability horizon before degrading.
  bool emergency_prune = true;
  /// Observability (DESIGN.md §11), threaded down to the wrapped stream and
  /// the WAL writer: recovery-ladder spans/counters, checkpoint-write
  /// timing, torn-tail and degradation-ladder audit events. Out-of-band —
  /// recovered state and on-disk bytes are identical with or without sinks.
  obs::Observability obs;
};

class DurableStream {
 public:
  /// What the constructor's recovery pass found and did.
  struct RecoveryInfo {
    bool recovered = false;          ///< durable state existed in `dir`
    bool loaded_checkpoint = false;  ///< a checkpoint rung succeeded
    std::uint64_t checkpoint_lsn = 0;
    std::size_t corrupt_checkpoints = 0;  ///< rungs skipped as corrupt
    std::size_t replayed_records = 0;     ///< WAL records applied
    std::size_t replayed_ratings = 0;     ///< rating records among them
    bool wal_tail_truncated = false;      ///< a torn tail was cut off
  };

  /// Opens (creating if needed) the durable directory and recovers
  /// whatever state it holds. `config`/`epoch_days`/`retention_epochs`/
  /// `ingest` must be the configuration the directory's state ran with
  /// (pipeline shape comes from the checkpoint when one loads; the
  /// SystemConfig is re-supplied by the caller, as with load_checkpoint).
  /// Throws WalError / RecoveryError on unrecoverable corruption.
  DurableStream(const std::filesystem::path& dir, const SystemConfig& config,
                double epoch_days = 30.0, std::size_t retention_epochs = 2,
                IngestConfig ingest = {}, DurableOptions options = {});

  /// WAL-backed submit: applies the rating, logs it (and any epoch close it
  /// triggered), syncs per policy, and only then returns — the
  /// acknowledgement IS the durability boundary. Never throws on bad data
  /// (the classification is in-band, as with StreamingRatingSystem).
  ///
  /// Never throws IoError either: a persistent environmental fault moves
  /// the stream down the degradation ladder and the submission is buffered
  /// in the in-memory backlog (still applied, still acknowledged — but not
  /// durable until a heal). CrashInjected still propagates: process death
  /// cannot be survived in process.
  IngestClass submit(const Rating& rating);

  /// Durable flush: logged so recovery reproduces the early epoch close.
  /// Degrades instead of throwing IoError, like submit().
  std::size_t flush();

  /// Writes an atomic, checksummed checkpoint capturing everything up to
  /// the last acknowledged submission, then prunes obsolete checkpoints
  /// and WAL segments. Returns the checkpoint's LSN. While degraded this
  /// first attempts a heal; if the environment is still failing it leaves
  /// the old checkpoint live and returns last_checkpoint_lsn().
  std::uint64_t checkpoint();

  /// Current rung of the persistence-degradation ladder.
  DurabilityState durability_state() const { return state_; }

  /// Probe the environment and, on success, heal: truncate the wounded
  /// segment to its last complete frame, replay the backlog into a fresh
  /// segment, fsync, and re-checkpoint. Returns true when the stream ends
  /// durable. Safe to call in any state (no-op when already durable).
  bool try_heal();

  /// Number of acknowledged submissions — the client's resume cursor after
  /// a crash: continue with the arrival at this index.
  std::uint64_t acknowledged() const {
    return stream_->ingest_stats().submitted;
  }

  /// Acknowledged submissions whose durability is *not* in doubt: excludes
  /// the in-memory backlog (never reached the WAL) and frames appended
  /// since the last successful fsync barrier when that barrier later
  /// failed (the failed-fsync trap: those pages may have been dropped).
  /// Equal to acknowledged() whenever the stream is durable; the stronger
  /// resume cursor for clients that must survive degraded-mode death.
  std::uint64_t durable_acknowledged() const {
    return acknowledged() - backlog_ratings_ - suspect_ratings_;
  }

  /// Ratings currently buffered in memory awaiting a heal.
  std::size_t backlog_records() const { return backlog_.size(); }

  /// LSN of the newest successfully written checkpoint (0 before any).
  std::uint64_t last_checkpoint_lsn() const { return last_checkpoint_lsn_; }

  const StreamingRatingSystem& stream() const { return *stream_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Checkpoint file name for a given LSN (exposed for tests/tools).
  static std::string checkpoint_name(std::uint64_t lsn);

  /// Snapshot of the durability surface for the introspection endpoints
  /// (/healthz, /status). Safe to call from a server thread while the
  /// owner thread submits: returns a mutex-guarded copy refreshed on the
  /// owner thread at the end of every submit/flush/checkpoint/heal. All
  /// "ages" are record counts, not wall clock — deterministic and
  /// scrape-order independent.
  obs::DurabilityProbe probe() const;

 private:
  /// What one try_wal_append attempt did (see WalWriter::append's fault
  /// contract): logged and durable per policy; logged but unsynced (the
  /// kAlways fsync step failed after the frame hit the log — do NOT
  /// backlog it or replay would double-apply); or not logged at all.
  enum class AppendResult : std::uint8_t { kLogged, kLoggedUnsynced, kFailed };

  void recover(const SystemConfig& config, double epoch_days,
               std::size_t retention_epochs, const IngestConfig& ingest);
  void replay(const WalRecord& record, std::uint64_t lsn);
  void prune();
  IoEnv io_env() const;
  AppendResult try_wal_append(const WalRecord& record);
  /// Epoch/flush-barrier sync; degrades on persistent failure.
  void try_wal_sync();
  void note_io_fault(const IoError& error);
  void enter_degraded(const IoError& error);
  void enqueue_backlog(const WalRecord& record);
  /// Called on every degraded submit; runs try_heal() per heal_probe_every.
  void maybe_probe_heal();
  /// Rewrites + fsyncs a sentinel file through the fault layer; true when
  /// the environment accepts writes again.
  bool probe_environment();
  /// ENOSPC mitigation: drop checkpoints beyond the newest and WAL segments
  /// wholly below it. Returns true when anything was freed.
  bool emergency_prune_space();
  /// wal sync + serialized checkpoint + atomic write + prune. Throws
  /// IoError when the environment rejects it.
  void write_checkpoint_locked();
  void set_state(DurabilityState next, const std::string& detail);
  /// Rebuilds probe_snapshot_ from owner-thread state. `scan_segments`
  /// re-counts WAL segment files on disk (a directory scan — done only at
  /// recovery/checkpoint/heal boundaries, not per submit).
  void refresh_probe(bool scan_segments);

  std::filesystem::path dir_;
  DurableOptions options_;
  RecoveryInfo recovery_;
  std::optional<StreamingRatingSystem> stream_;
  std::optional<WalWriter> wal_;

  DurabilityState state_ = DurabilityState::kDurable;
  /// Records acknowledged while degraded, awaiting WAL replay on heal.
  std::deque<WalRecord> backlog_;
  std::size_t backlog_ratings_ = 0;
  /// Rating frames appended since the last successful fsync barrier; only
  /// meaningful for the failed-fsync accounting below.
  std::uint64_t unsynced_ratings_ = 0;
  /// Frozen copy of unsynced_ratings_ at degradation time: frames that were
  /// in the log when a barrier failed and stay suspect until a heal
  /// checkpoint supersedes them.
  std::uint64_t suspect_ratings_ = 0;
  std::size_t degraded_submits_ = 0;  ///< since the last auto heal probe
  std::uint64_t last_checkpoint_lsn_ = 0;
  std::uint64_t heals_count_ = 0;  ///< successful heals (for the probe)
  std::string last_failure_;       ///< newest degradation detail (for the probe)

  /// Introspection snapshot (see probe()). Guarded by probe_mutex_; written
  /// only on the owner thread via refresh_probe().
  mutable std::mutex probe_mutex_;
  obs::DurabilityProbe probe_snapshot_;

  obs::Counter* checkpoints_written_ = nullptr;
  obs::Histogram* checkpoint_write_seconds_ = nullptr;
  obs::Counter* degradations_total_ = nullptr;
  obs::Counter* heals_total_ = nullptr;
  obs::Counter* probe_failures_total_ = nullptr;
  obs::Counter* io_faults_total_ = nullptr;
  obs::Counter* emergency_prunes_total_ = nullptr;
  obs::Counter* io_retries_total_ = nullptr;
  obs::Gauge* state_gauge_ = nullptr;
  obs::Gauge* backlog_gauge_ = nullptr;
  /// Epoch-end times observed (via the stream's close observer) during the
  /// submit/flush/replay call in flight; cleared per call.
  std::vector<double> observed_closes_;
};

}  // namespace trustrate::core::durable
