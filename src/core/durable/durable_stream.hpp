// Crash-safe front-end for StreamingRatingSystem (ISSUE 4 tentpole): a
// directory of durable state — WAL segments plus checksummed, atomically
// written checkpoints — and the recovery orchestrator that rebuilds the
// exact in-memory stream from them after a crash.
//
//     durable::DurableStream ds(dir, config, /*epoch_days=*/30.0);
//     ds.submit(rating);      // logged to the WAL, then applied, then acked
//     ds.checkpoint();        // atomic v3 checkpoint; obsolete WAL pruned
//     ...process dies...
//     durable::DurableStream back(dir, config, 30.0);   // recovers
//     back.recovery().replayed_ratings;  // how much the WAL replayed
//
// Recovery ladder (each rung falls through to the next on corruption):
//
//   1. newest checkpoint `ckpt-<lsn>.ckpt`: checksum-verified load, then
//      replay of WAL records >= lsn;
//   2. older checkpoints, newest first, same way — a corrupt newer file
//      never masks an older valid one;
//   3. no checkpoint at all: fresh state, full WAL replay from record 0.
//
// If even rung 3 is impossible (all checkpoints corrupt AND the WAL's
// early segments were already pruned) recovery throws RecoveryError
// rather than fabricate partial state. A torn WAL tail — the partial last
// write of the crashed process — is truncated, never fatal; every fully
// framed record is replayed. Stale `.tmp` files from interrupted atomic
// checkpoint writes are deleted.
//
// Exactly-once resume: `acknowledged()` (== ingest submitted count) is the
// client's resume cursor. A crashed submit was never acknowledged; after
// recovery the client continues from arrivals[acknowledged()], and the
// resumed system is bitwise-identical to one that never crashed — the
// property the crash-point sweep (src/testkit/crash.hpp) proves for every
// kill position.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "core/durable/wal.hpp"
#include "core/streaming.hpp"

namespace trustrate::core::durable {

struct DurableOptions {
  FsyncPolicy fsync = FsyncPolicy::kEpoch;
  /// WAL segment rotation threshold.
  std::size_t segment_bytes = 1 << 20;
  /// Checkpoints kept on disk (>= 1); older ones and fully-covered WAL
  /// segments are pruned after each checkpoint().
  std::size_t keep_checkpoints = 2;
  /// Crash-point injector for recovery testing; null in production.
  CrashInjector* crash = nullptr;
  /// Observability (DESIGN.md §11), threaded down to the wrapped stream and
  /// the WAL writer: recovery-ladder spans/counters, checkpoint-write
  /// timing, and the torn-tail audit event. Out-of-band — recovered state
  /// and on-disk bytes are identical with or without sinks.
  obs::Observability obs;
};

class DurableStream {
 public:
  /// What the constructor's recovery pass found and did.
  struct RecoveryInfo {
    bool recovered = false;          ///< durable state existed in `dir`
    bool loaded_checkpoint = false;  ///< a checkpoint rung succeeded
    std::uint64_t checkpoint_lsn = 0;
    std::size_t corrupt_checkpoints = 0;  ///< rungs skipped as corrupt
    std::size_t replayed_records = 0;     ///< WAL records applied
    std::size_t replayed_ratings = 0;     ///< rating records among them
    bool wal_tail_truncated = false;      ///< a torn tail was cut off
  };

  /// Opens (creating if needed) the durable directory and recovers
  /// whatever state it holds. `config`/`epoch_days`/`retention_epochs`/
  /// `ingest` must be the configuration the directory's state ran with
  /// (pipeline shape comes from the checkpoint when one loads; the
  /// SystemConfig is re-supplied by the caller, as with load_checkpoint).
  /// Throws WalError / RecoveryError on unrecoverable corruption.
  DurableStream(const std::filesystem::path& dir, const SystemConfig& config,
                double epoch_days = 30.0, std::size_t retention_epochs = 2,
                IngestConfig ingest = {}, DurableOptions options = {});

  /// WAL-backed submit: applies the rating, logs it (and any epoch close it
  /// triggered), syncs per policy, and only then returns — the
  /// acknowledgement IS the durability boundary. Never throws on bad data
  /// (the classification is in-band, as with StreamingRatingSystem).
  IngestClass submit(const Rating& rating);

  /// Durable flush: logged so recovery reproduces the early epoch close.
  std::size_t flush();

  /// Writes an atomic, checksummed checkpoint capturing everything up to
  /// the last acknowledged submission, then prunes obsolete checkpoints
  /// and WAL segments. Returns the checkpoint's LSN.
  std::uint64_t checkpoint();

  /// Number of acknowledged submissions — the client's resume cursor after
  /// a crash: continue with the arrival at this index.
  std::uint64_t acknowledged() const {
    return stream_->ingest_stats().submitted;
  }

  const StreamingRatingSystem& stream() const { return *stream_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Checkpoint file name for a given LSN (exposed for tests/tools).
  static std::string checkpoint_name(std::uint64_t lsn);

 private:
  void recover(const SystemConfig& config, double epoch_days,
               std::size_t retention_epochs, const IngestConfig& ingest);
  void replay(const WalRecord& record, std::uint64_t lsn);
  void prune();

  std::filesystem::path dir_;
  DurableOptions options_;
  RecoveryInfo recovery_;
  std::optional<StreamingRatingSystem> stream_;
  std::optional<WalWriter> wal_;
  obs::Counter* checkpoints_written_ = nullptr;
  obs::Histogram* checkpoint_write_seconds_ = nullptr;
  /// Epoch-end times observed (via the stream's close observer) during the
  /// submit/flush/replay call in flight; cleared per call.
  std::vector<double> observed_closes_;
};

}  // namespace trustrate::core::durable
