#include "core/durable/durable_stream.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"

namespace trustrate::core::durable {
namespace {

constexpr char kCkptPrefix[] = "ckpt-";
constexpr char kCkptSuffix[] = ".ckpt";

/// Checkpoint files in `dir`, newest (highest LSN) first.
std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_checkpoints(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCkptPrefix, 0) != 0 || name.size() < 11 ||
        name.substr(name.size() - 5) != kCkptSuffix) {
      continue;
    }
    out.emplace_back(std::strtoull(name.c_str() + 5, nullptr, 10),
                     entry.path());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

const char* to_string(DurabilityState state) {
  switch (state) {
    case DurabilityState::kDurable:    return "durable";
    case DurabilityState::kDegraded:   return "degraded";
    case DurabilityState::kRecovering: return "recovering";
  }
  return "unknown";
}

std::string DurableStream::checkpoint_name(std::uint64_t lsn) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%020llu.ckpt",
                static_cast<unsigned long long>(lsn));
  return buf;
}

DurableStream::DurableStream(const std::filesystem::path& dir,
                             const SystemConfig& config, double epoch_days,
                             std::size_t retention_epochs, IngestConfig ingest,
                             DurableOptions options)
    : dir_(dir), options_(options) {
  recover(config, epoch_days, retention_epochs, ingest);
}

void DurableStream::recover(const SystemConfig& config, double epoch_days,
                            std::size_t retention_epochs,
                            const IngestConfig& ingest) {
  namespace fs = std::filesystem;
  const obs::SpanTimer recovery_span(options_.obs.trace, "recovery");
  obs::MetricsRegistry* metrics = options_.obs.metrics;
  const std::uint64_t recovery_t0 =
      metrics != nullptr ? obs::monotonic_ns() : 0;
  if (metrics != nullptr) {
    checkpoints_written_ = &metrics->counter(
        "trustrate_checkpoints_written_total", "Atomic checkpoints written");
    checkpoint_write_seconds_ = &metrics->histogram(
        "trustrate_checkpoint_write_seconds", obs::default_seconds_buckets(),
        "Checkpoint serialize + atomic write latency");
    degradations_total_ = &metrics->counter(
        "trustrate_durability_degradations_total",
        "Transitions into the degraded rung of the persistence ladder");
    heals_total_ =
        &metrics->counter("trustrate_durability_heals_total",
                          "Successful heals back to the durable rung");
    probe_failures_total_ =
        &metrics->counter("trustrate_durability_probe_failures_total",
                          "Heal probes rejected by the environment");
    io_faults_total_ = &metrics->counter(
        "trustrate_durability_io_faults_total",
        "Environmental I/O faults that persisted past the retry budget");
    emergency_prunes_total_ =
        &metrics->counter("trustrate_durability_emergency_prunes_total",
                          "ENOSPC emergency prunes of the durable directory");
    io_retries_total_ = &metrics->counter(
        "trustrate_io_retries_total",
        "Inline durable-I/O retries (EINTR, short writes, transient backoff)");
    state_gauge_ =
        &metrics->gauge("trustrate_durability_state",
                        "Ladder rung: 0 durable, 1 degraded, 2 recovering");
    backlog_gauge_ =
        &metrics->gauge("trustrate_durability_backlog_records",
                        "Records buffered in memory awaiting a heal");
  }
  fs::create_directories(dir_);

  // A crash mid-atomic-write leaves a `.tmp` the rename never promoted; it
  // was never the live checkpoint, so it is garbage.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = kTempSuffix;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      fs::remove(entry.path());
    }
  }

  const WalRecovered wal = read_wal(dir_, io_env());
  recovery_.wal_tail_truncated = wal.tail_truncated;
  if (wal.tail_truncated) {
    if (metrics != nullptr) {
      metrics
          ->counter("trustrate_wal_torn_tail_truncations_total",
                    "Torn WAL tails truncated during recovery")
          .add();
    }
    if (options_.obs.audit != nullptr) {
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kWalTailTruncated;
      e.value = static_cast<double>(wal.truncated_bytes);
      e.detail = "truncated " + std::to_string(wal.truncated_bytes) +
                 " torn byte(s) off the last WAL segment";
      options_.obs.audit->record(e);
    }
  }

  const auto checkpoints = list_checkpoints(dir_);
  recovery_.recovered = wal.next_lsn > 0 || !checkpoints.empty();

  // Rungs 1..n of the ladder: newest checkpoint first, falling past any
  // that fail their checksums (or any other load error).
  std::uint64_t replay_from = 0;
  for (const auto& [lsn, path] : checkpoints) {
    try {
      std::istringstream in(stable_read_file(path, io_env()));
      stream_.emplace(load_checkpoint(in, config));
      recovery_.loaded_checkpoint = true;
      recovery_.checkpoint_lsn = lsn;
      replay_from = lsn;
      break;
    } catch (const CheckpointError&) {
      ++recovery_.corrupt_checkpoints;
      if (metrics != nullptr) {
        metrics
            ->counter("trustrate_recovery_corrupt_checkpoints_total",
                      "Checkpoint rungs skipped as corrupt during recovery")
            .add();
      }
    }
  }

  if (!stream_.has_value()) {
    // Final rung: fresh state, full replay — valid only when the log still
    // reaches back to record 0 (pruning assumes the checkpoints it kept
    // were good; if they all rotted, the early log may be gone).
    if (wal.next_lsn > 0 && wal.first_lsn > 0) {
      throw RecoveryError(
          "no valid checkpoint and the WAL starts at record " +
          std::to_string(wal.first_lsn) + ", not 0 (" +
          std::to_string(recovery_.corrupt_checkpoints) +
          " corrupt checkpoint(s) skipped): state before record " +
          std::to_string(wal.first_lsn) + " is unrecoverable");
    }
    stream_.emplace(config, epoch_days, retention_epochs, ingest);
  } else if (wal.next_lsn > replay_from && wal.first_lsn > replay_from) {
    throw RecoveryError(
        "checkpoint at record " + std::to_string(replay_from) +
        " needs WAL records from " + std::to_string(replay_from) +
        " onward, but the log starts at record " +
        std::to_string(wal.first_lsn));
  }

  // Observability attaches before replay: the replayed epochs re-emit their
  // metrics and audit events, so a recovered process's telemetry describes
  // the state it actually rebuilt. This re-attaches the epoch observer too,
  // which is why the durable layer never triggers observer_not_restored.
  stream_->set_observability(options_.obs);
  stream_->set_epoch_observer(
      [this](const EpochReport&, double /*epoch_start*/, double epoch_end) {
        observed_closes_.push_back(epoch_end);
      });

  {
    const obs::SpanTimer replay_span(options_.obs.trace, "recovery.replay");
    for (const auto& [lsn, record] : wal.records) {
      if (lsn < replay_from) continue;
      replay(record, lsn);
      ++recovery_.replayed_records;
    }
  }
  if (metrics != nullptr) {
    metrics
        ->counter("trustrate_recovery_replayed_records_total",
                  "WAL records applied during recovery")
        .add(recovery_.replayed_records);
    metrics
        ->counter("trustrate_recovery_replayed_ratings_total",
                  "Rating records among the replayed WAL records")
        .add(recovery_.replayed_ratings);
  }

  WalOptions wal_options;
  wal_options.segment_bytes = options_.segment_bytes;
  wal_options.fsync = options_.fsync;
  wal_options.crash = options_.crash;
  wal_options.faults = options_.faults;
  wal_options.io = options_.io;
  wal_options.obs = options_.obs;
  if (wal.next_lsn < replay_from) {
    // The log ends before the checkpoint (its tail segments are gone, e.g.
    // pruned). New records must take LSNs after the checkpoint, or the next
    // recovery would discard them as already-captured.
    wal_.emplace(dir_, replay_from, wal_options);
  } else {
    wal_.emplace(dir_, wal, wal_options);
  }

  if (recovery_.loaded_checkpoint) {
    last_checkpoint_lsn_ = recovery_.checkpoint_lsn;
  }
  if (state_gauge_ != nullptr) state_gauge_->set(0.0);
  if (backlog_gauge_ != nullptr) backlog_gauge_->set(0.0);

  if (metrics != nullptr) {
    metrics
        ->histogram("trustrate_recovery_seconds",
                    obs::default_seconds_buckets(),
                    "Full recovery ladder wall time (scan + load + replay)")
        .observe(static_cast<double>(obs::monotonic_ns() - recovery_t0) *
                 1e-9);
  }
  refresh_probe(/*scan_segments=*/true);
}

void DurableStream::refresh_probe(bool scan_segments) {
  obs::DurabilityProbe p;
  p.present = true;
  p.state = to_string(state_);
  p.acknowledged = acknowledged();
  p.durable_acknowledged = durable_acknowledged();
  p.backlog_records = backlog_.size();
  p.last_checkpoint = last_checkpoint_lsn_;
  const std::uint64_t next = wal_->next_lsn();
  p.wal_records = next;
  p.records_since_checkpoint =
      next >= last_checkpoint_lsn_ ? next - last_checkpoint_lsn_ : 0;
  p.active_segment_records = next - wal_->active_segment_first_lsn();
  p.heals = heals_count_;
  p.failstops = 0;
  p.last_failure = last_failure_;
  const std::size_t segments =
      scan_segments ? wal_segments(dir_).size() : 0;
  std::lock_guard<std::mutex> lock(probe_mutex_);
  p.wal_segments =
      scan_segments ? segments : probe_snapshot_.wal_segments;
  probe_snapshot_ = std::move(p);
}

obs::DurabilityProbe DurableStream::probe() const {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  return probe_snapshot_;
}

IoEnv DurableStream::io_env() const {
  IoEnv env;
  env.crash = options_.crash;
  env.faults = options_.faults;
  env.policy = options_.io;
  env.retries_total = io_retries_total_;
  return env;
}

void DurableStream::set_state(DurabilityState next, const std::string& detail) {
  if (state_ == next) return;
  state_ = next;
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<double>(static_cast<int>(next)));
  }
  if (options_.obs.audit != nullptr) {
    obs::AuditEvent e;
    switch (next) {
      case DurabilityState::kDegraded:
        e.type = obs::AuditEventType::kDurabilityDegraded;
        break;
      case DurabilityState::kRecovering:
        e.type = obs::AuditEventType::kDurabilityRecovering;
        break;
      case DurabilityState::kDurable:
        e.type = obs::AuditEventType::kDurabilityRestored;
        break;
    }
    e.value = static_cast<double>(backlog_.size());
    e.detail = detail;
    options_.obs.audit->record(e);
  }
}

void DurableStream::note_io_fault(const IoError& error) {
  (void)error;
  if (io_faults_total_ != nullptr) io_faults_total_->add();
}

void DurableStream::enter_degraded(const IoError& error) {
  if (state_ != DurabilityState::kDurable) return;
  last_failure_ = std::string(error.op()) + " on '" + error.path() +
                  "': " + error.what();
  // Freeze the failed-fsync window: rating frames appended since the last
  // successful barrier stay suspect (their pages may have been dropped)
  // until a heal checkpoint rewrites the state through an independent path.
  suspect_ratings_ = unsynced_ratings_;
  unsynced_ratings_ = 0;
  degraded_submits_ = 0;
  if (degradations_total_ != nullptr) degradations_total_->add();
  set_state(DurabilityState::kDegraded,
            "WAL suspended after persistent '" + error.op() + "' fault on '" +
                error.path() + "': " + error.what());
}

void DurableStream::enqueue_backlog(const WalRecord& record) {
  backlog_.push_back(record);
  if (record.type == WalRecordType::kRating) ++backlog_ratings_;
  if (backlog_gauge_ != nullptr) {
    backlog_gauge_->set(static_cast<double>(backlog_.size()));
  }
}

DurableStream::AppendResult DurableStream::try_wal_append(
    const WalRecord& record) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t pre = wal_->next_lsn();
    try {
      wal_->append(record);
      if (record.type == WalRecordType::kRating) {
        if (options_.fsync == FsyncPolicy::kAlways) {
          unsynced_ratings_ = 0;  // append() synced the segment
        } else {
          ++unsynced_ratings_;
        }
      }
      return AppendResult::kLogged;
    } catch (const IoError& e) {
      note_io_fault(e);
      if (wal_->next_lsn() > pre) {
        // The frame IS in the log; only the kAlways fsync step failed. It
        // must not be backlogged (replay would double-apply it) — it joins
        // the suspect window instead.
        if (record.type == WalRecordType::kRating) ++unsynced_ratings_;
        enter_degraded(e);
        return AppendResult::kLoggedUnsynced;
      }
      if (attempt == 0 && e.error_code() == ENOSPC &&
          options_.emergency_prune && emergency_prune_space()) {
        try {
          wal_->repair();  // the failed append left a torn tail; clear it
          continue;        // space freed below the horizon — one retry
        } catch (const IoError& repair_error) {
          note_io_fault(repair_error);
          enter_degraded(repair_error);
          return AppendResult::kFailed;
        }
      }
      enter_degraded(e);
      return AppendResult::kFailed;
    }
  }
  return AppendResult::kFailed;
}

void DurableStream::try_wal_sync() {
  if (state_ != DurabilityState::kDurable) return;
  try {
    wal_->sync();
    unsynced_ratings_ = 0;
  } catch (const IoError& e) {
    note_io_fault(e);
    enter_degraded(e);
  }
}

void DurableStream::maybe_probe_heal() {
  if (options_.heal_probe_every == 0) return;
  if (++degraded_submits_ < options_.heal_probe_every) return;
  degraded_submits_ = 0;
  try_heal();
}

bool DurableStream::probe_environment() {
  namespace fs = std::filesystem;
  // kTempSuffix so a crash mid-probe leaves a file the recovery GC removes.
  const fs::path probe = dir_ / (std::string(".durability-probe") + kTempSuffix);
  std::error_code ec;
  fs::remove(probe, ec);
  try {
    DurableFile file(probe, io_env());
    file.append("trustrate durability probe\n");
    file.sync();
    file.close();
    fs::remove(probe, ec);
    return true;
  } catch (const IoError& e) {
    note_io_fault(e);
    if (probe_failures_total_ != nullptr) probe_failures_total_->add();
    fs::remove(probe, ec);
    return false;
  }
}

bool DurableStream::emergency_prune_space() {
  namespace fs = std::filesystem;
  // Disk full: free everything redundant without moving the durability
  // horizon backward — checkpoints beyond the newest, and WAL segments
  // wholly below it. Recovery depth shrinks to one rung, but the newest
  // checkpoint plus the surviving log still reproduce the exact state.
  bool freed = false;
  const auto checkpoints = list_checkpoints(dir_);  // newest first
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    std::error_code ec;
    freed = fs::remove(checkpoints[i].second, ec) || freed;
  }
  if (!checkpoints.empty()) {
    const std::uint64_t horizon = checkpoints.front().first;
    const auto segments = wal_segments(dir_);
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      if (segments[i + 1].first_lsn <= horizon) {
        std::error_code ec;
        freed = fs::remove(segments[i].path, ec) || freed;
      }
    }
  }
  if (freed && emergency_prunes_total_ != nullptr) {
    emergency_prunes_total_->add();
  }
  return freed;
}

bool DurableStream::try_heal() {
  if (state_ == DurabilityState::kDurable) return true;
  set_state(DurabilityState::kRecovering,
            "probing environment; " + std::to_string(backlog_.size()) +
                " backlog record(s) pending");
  if (!probe_environment()) {
    set_state(DurabilityState::kDegraded,
              "heal probe rejected by the environment");
    refresh_probe(/*scan_segments=*/false);
    return false;
  }
  std::uint64_t replayed_ratings = 0;
  try {
    wal_->repair();
    while (!backlog_.empty()) {
      const WalRecord record = backlog_.front();
      const std::uint64_t pre = wal_->next_lsn();
      try {
        wal_->append(record);
      } catch (const IoError&) {
        if (wal_->next_lsn() > pre) {
          // Logged but unsynced (kAlways fsync failed mid-heal): consume it
          // from the backlog — re-appending would duplicate the frame.
          backlog_.pop_front();
          if (record.type == WalRecordType::kRating) {
            --backlog_ratings_;
            ++replayed_ratings;
          }
          if (backlog_gauge_ != nullptr) {
            backlog_gauge_->set(static_cast<double>(backlog_.size()));
          }
        }
        throw;
      }
      backlog_.pop_front();
      if (record.type == WalRecordType::kRating) {
        --backlog_ratings_;
        ++replayed_ratings;
      }
      if (backlog_gauge_ != nullptr) {
        backlog_gauge_->set(static_cast<double>(backlog_.size()));
      }
    }
    // Re-establish the durability horizon through an independent path: the
    // checkpoint syncs the fresh segment and its own atomic file, which
    // supersedes every suspect frame — we never trust a later fsync of a
    // handle that failed one (the failed-fsync trap).
    write_checkpoint_locked();
    suspect_ratings_ = 0;
    ++heals_count_;
    if (heals_total_ != nullptr) heals_total_->add();
    set_state(DurabilityState::kDurable,
              "backlog replayed; checkpoint " +
                  std::to_string(last_checkpoint_lsn_) + " re-established");
    refresh_probe(/*scan_segments=*/true);
    return true;
  } catch (const IoError& e) {
    // Ratings replayed into the log during this failed heal are not yet
    // superseded by a checkpoint — keep them out of the durable cursor.
    suspect_ratings_ += replayed_ratings;
    note_io_fault(e);
    set_state(DurabilityState::kDegraded,
              std::string("heal failed: ") + e.what());
    refresh_probe(/*scan_segments=*/false);
    return false;
  }
}

void DurableStream::write_checkpoint_locked() {
  // The log must be on disk before a checkpoint claims to supersede it —
  // regardless of fsync policy.
  wal_->sync();
  unsynced_ratings_ = 0;
  const std::uint64_t lsn = wal_->next_lsn();
  std::ostringstream out;
  save_checkpoint(*stream_, out);
  atomic_write_file(dir_ / checkpoint_name(lsn), out.str(), io_env());
  prune();
  last_checkpoint_lsn_ = lsn;
  if (checkpoints_written_ != nullptr) checkpoints_written_->add();
}

void DurableStream::replay(const WalRecord& record, std::uint64_t lsn) {
  switch (record.type) {
    case WalRecordType::kRating: {
      observed_closes_.clear();
      const IngestClass got = stream_->submit(record.rating);
      ++recovery_.replayed_ratings;
      if (got != record.ingest_class) {
        throw WalError("WAL replay diverged at record " + std::to_string(lsn) +
                       ": logged classification '" +
                       to_string(record.ingest_class) +
                       "', replay produced '" + to_string(got) + "'");
      }
      break;
    }
    case WalRecordType::kEpochClose:
      // The closes themselves were re-triggered by replaying the preceding
      // rating; the marker just cross-checks that they happened.
      if (stream_->epochs_closed() != record.epochs_closed) {
        throw WalError(
            "WAL replay diverged at record " + std::to_string(lsn) +
            ": epoch-close marker expects " +
            std::to_string(record.epochs_closed) + " closed epoch(s), replay has " +
            std::to_string(stream_->epochs_closed()));
      }
      break;
    case WalRecordType::kFlush:
      observed_closes_.clear();
      stream_->flush();
      if (stream_->epochs_closed() != record.epochs_closed) {
        throw WalError(
            "WAL replay diverged at record " + std::to_string(lsn) +
            ": flush marker expects " + std::to_string(record.epochs_closed) +
            " closed epoch(s), replay has " +
            std::to_string(stream_->epochs_closed()));
      }
      break;
  }
}

IngestClass DurableStream::submit(const Rating& rating) {
  observed_closes_.clear();
  const std::uint64_t before = stream_->epochs_closed();
  const IngestClass klass = stream_->submit(rating);
  const std::uint64_t after = stream_->epochs_closed();

  // Apply-then-log is sound here: the in-memory effect dies with the
  // process, so a crash inside append simply un-happens the submit — the
  // caller was never acknowledged and resumes from acknowledged().
  WalRecord record;
  record.type = WalRecordType::kRating;
  record.rating = rating;
  record.ingest_class = klass;

  std::optional<WalRecord> marker;
  if (after > before) {
    WalRecord m;
    m.type = WalRecordType::kEpochClose;
    m.epochs_closed = after;
    m.epoch_start = observed_closes_.empty() ? 0.0 : observed_closes_.back();
    marker = m;
  }

  if (state_ != DurabilityState::kDurable) {
    // Degraded: the WAL is suspended. Apply-then-buffer keeps the
    // acknowledgement and LSN ordering; durability resumes on heal.
    enqueue_backlog(record);
    if (marker.has_value()) enqueue_backlog(*marker);
    maybe_probe_heal();
    refresh_probe(/*scan_segments=*/false);
    return klass;
  }

  if (try_wal_append(record) == AppendResult::kFailed) {
    enqueue_backlog(record);
    if (marker.has_value()) enqueue_backlog(*marker);
    refresh_probe(/*scan_segments=*/false);
    return klass;
  }
  if (marker.has_value()) {
    if (state_ == DurabilityState::kDurable) {
      if (try_wal_append(*marker) == AppendResult::kFailed) {
        enqueue_backlog(*marker);
      }
    } else {
      // The rating frame went in but its fsync degraded us mid-pair.
      enqueue_backlog(*marker);
    }
    if (state_ == DurabilityState::kDurable &&
        options_.fsync == FsyncPolicy::kEpoch) {
      try_wal_sync();
    }
  }
  refresh_probe(/*scan_segments=*/false);
  return klass;
}

std::size_t DurableStream::flush() {
  observed_closes_.clear();
  const std::size_t processed = stream_->flush();

  WalRecord record;
  record.type = WalRecordType::kFlush;
  record.epochs_closed = stream_->epochs_closed();

  if (state_ != DurabilityState::kDurable) {
    enqueue_backlog(record);
    maybe_probe_heal();
    refresh_probe(/*scan_segments=*/false);
    return processed;
  }
  if (try_wal_append(record) == AppendResult::kFailed) {
    enqueue_backlog(record);
    refresh_probe(/*scan_segments=*/false);
    return processed;
  }
  if (state_ == DurabilityState::kDurable &&
      options_.fsync == FsyncPolicy::kEpoch) {
    try_wal_sync();
  }
  refresh_probe(/*scan_segments=*/false);
  return processed;
}

std::uint64_t DurableStream::checkpoint() {
  if (state_ != DurabilityState::kDurable) {
    try_heal();  // a successful heal re-checkpoints as its final step
    return last_checkpoint_lsn_;
  }
  const obs::SpanTimer span(options_.obs.trace, "checkpoint.write");
  const std::uint64_t t0 =
      checkpoint_write_seconds_ != nullptr ? obs::monotonic_ns() : 0;
  try {
    write_checkpoint_locked();
  } catch (const IoError& e) {
    note_io_fault(e);
    bool healed_inline = false;
    if (e.error_code() == ENOSPC && options_.emergency_prune &&
        emergency_prune_space()) {
      try {
        write_checkpoint_locked();
        healed_inline = true;
      } catch (const IoError& retry_error) {
        note_io_fault(retry_error);
        enter_degraded(retry_error);
      }
    } else {
      enter_degraded(e);
    }
    if (!healed_inline) {
      refresh_probe(/*scan_segments=*/true);
      return last_checkpoint_lsn_;
    }
  }
  if (checkpoint_write_seconds_ != nullptr) {
    checkpoint_write_seconds_->observe(
        static_cast<double>(obs::monotonic_ns() - t0) * 1e-9);
  }
  refresh_probe(/*scan_segments=*/true);
  return last_checkpoint_lsn_;
}

void DurableStream::prune() {
  const auto checkpoints = list_checkpoints(dir_);  // newest first
  const std::size_t keep = std::max<std::size_t>(1, options_.keep_checkpoints);
  std::uint64_t oldest_kept = 0;
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    if (i < keep) {
      oldest_kept = checkpoints[i].first;
    } else {
      std::filesystem::remove(checkpoints[i].second);
    }
  }
  if (checkpoints.empty()) return;

  // A segment is obsolete when its *successor* starts at or below the
  // oldest kept checkpoint: every record in it is then < that checkpoint's
  // LSN. The last segment never qualifies (no successor), so the active
  // segment is never removed. Obsolete segments form a prefix, so the
  // surviving log stays contiguous even if a crash interrupts the loop.
  const auto segments = wal_segments(dir_);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first_lsn <= oldest_kept) {
      std::filesystem::remove(segments[i].path);
    }
  }
}

}  // namespace trustrate::core::durable
