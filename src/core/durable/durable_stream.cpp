#include "core/durable/durable_stream.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"

namespace trustrate::core::durable {
namespace {

constexpr char kCkptPrefix[] = "ckpt-";
constexpr char kCkptSuffix[] = ".ckpt";

/// Checkpoint files in `dir`, newest (highest LSN) first.
std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_checkpoints(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCkptPrefix, 0) != 0 || name.size() < 11 ||
        name.substr(name.size() - 5) != kCkptSuffix) {
      continue;
    }
    out.emplace_back(std::strtoull(name.c_str() + 5, nullptr, 10),
                     entry.path());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

std::string DurableStream::checkpoint_name(std::uint64_t lsn) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%020llu.ckpt",
                static_cast<unsigned long long>(lsn));
  return buf;
}

DurableStream::DurableStream(const std::filesystem::path& dir,
                             const SystemConfig& config, double epoch_days,
                             std::size_t retention_epochs, IngestConfig ingest,
                             DurableOptions options)
    : dir_(dir), options_(options) {
  recover(config, epoch_days, retention_epochs, ingest);
}

void DurableStream::recover(const SystemConfig& config, double epoch_days,
                            std::size_t retention_epochs,
                            const IngestConfig& ingest) {
  namespace fs = std::filesystem;
  const obs::SpanTimer recovery_span(options_.obs.trace, "recovery");
  obs::MetricsRegistry* metrics = options_.obs.metrics;
  const std::uint64_t recovery_t0 =
      metrics != nullptr ? obs::monotonic_ns() : 0;
  if (metrics != nullptr) {
    checkpoints_written_ = &metrics->counter(
        "trustrate_checkpoints_written_total", "Atomic checkpoints written");
    checkpoint_write_seconds_ = &metrics->histogram(
        "trustrate_checkpoint_write_seconds", obs::default_seconds_buckets(),
        "Checkpoint serialize + atomic write latency");
  }
  fs::create_directories(dir_);

  // A crash mid-atomic-write leaves a `.tmp` the rename never promoted; it
  // was never the live checkpoint, so it is garbage.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = kTempSuffix;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      fs::remove(entry.path());
    }
  }

  const WalRecovered wal = read_wal(dir_);
  recovery_.wal_tail_truncated = wal.tail_truncated;
  if (wal.tail_truncated) {
    if (metrics != nullptr) {
      metrics
          ->counter("trustrate_wal_torn_tail_truncations_total",
                    "Torn WAL tails truncated during recovery")
          .add();
    }
    if (options_.obs.audit != nullptr) {
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kWalTailTruncated;
      e.value = static_cast<double>(wal.truncated_bytes);
      e.detail = "truncated " + std::to_string(wal.truncated_bytes) +
                 " torn byte(s) off the last WAL segment";
      options_.obs.audit->record(e);
    }
  }

  const auto checkpoints = list_checkpoints(dir_);
  recovery_.recovered = wal.next_lsn > 0 || !checkpoints.empty();

  // Rungs 1..n of the ladder: newest checkpoint first, falling past any
  // that fail their checksums (or any other load error).
  std::uint64_t replay_from = 0;
  for (const auto& [lsn, path] : checkpoints) {
    try {
      std::istringstream in(read_file(path));
      stream_.emplace(load_checkpoint(in, config));
      recovery_.loaded_checkpoint = true;
      recovery_.checkpoint_lsn = lsn;
      replay_from = lsn;
      break;
    } catch (const CheckpointError&) {
      ++recovery_.corrupt_checkpoints;
      if (metrics != nullptr) {
        metrics
            ->counter("trustrate_recovery_corrupt_checkpoints_total",
                      "Checkpoint rungs skipped as corrupt during recovery")
            .add();
      }
    }
  }

  if (!stream_.has_value()) {
    // Final rung: fresh state, full replay — valid only when the log still
    // reaches back to record 0 (pruning assumes the checkpoints it kept
    // were good; if they all rotted, the early log may be gone).
    if (wal.next_lsn > 0 && wal.first_lsn > 0) {
      throw RecoveryError(
          "no valid checkpoint and the WAL starts at record " +
          std::to_string(wal.first_lsn) + ", not 0 (" +
          std::to_string(recovery_.corrupt_checkpoints) +
          " corrupt checkpoint(s) skipped): state before record " +
          std::to_string(wal.first_lsn) + " is unrecoverable");
    }
    stream_.emplace(config, epoch_days, retention_epochs, ingest);
  } else if (wal.next_lsn > replay_from && wal.first_lsn > replay_from) {
    throw RecoveryError(
        "checkpoint at record " + std::to_string(replay_from) +
        " needs WAL records from " + std::to_string(replay_from) +
        " onward, but the log starts at record " +
        std::to_string(wal.first_lsn));
  }

  // Observability attaches before replay: the replayed epochs re-emit their
  // metrics and audit events, so a recovered process's telemetry describes
  // the state it actually rebuilt. This re-attaches the epoch observer too,
  // which is why the durable layer never triggers observer_not_restored.
  stream_->set_observability(options_.obs);
  stream_->set_epoch_observer(
      [this](const EpochReport&, double /*epoch_start*/, double epoch_end) {
        observed_closes_.push_back(epoch_end);
      });

  {
    const obs::SpanTimer replay_span(options_.obs.trace, "recovery.replay");
    for (const auto& [lsn, record] : wal.records) {
      if (lsn < replay_from) continue;
      replay(record, lsn);
      ++recovery_.replayed_records;
    }
  }
  if (metrics != nullptr) {
    metrics
        ->counter("trustrate_recovery_replayed_records_total",
                  "WAL records applied during recovery")
        .add(recovery_.replayed_records);
    metrics
        ->counter("trustrate_recovery_replayed_ratings_total",
                  "Rating records among the replayed WAL records")
        .add(recovery_.replayed_ratings);
  }

  WalOptions wal_options;
  wal_options.segment_bytes = options_.segment_bytes;
  wal_options.fsync = options_.fsync;
  wal_options.crash = options_.crash;
  wal_options.obs = options_.obs;
  if (wal.next_lsn < replay_from) {
    // The log ends before the checkpoint (its tail segments are gone, e.g.
    // pruned). New records must take LSNs after the checkpoint, or the next
    // recovery would discard them as already-captured.
    wal_.emplace(dir_, replay_from, wal_options);
  } else {
    wal_.emplace(dir_, wal, wal_options);
  }

  if (metrics != nullptr) {
    metrics
        ->histogram("trustrate_recovery_seconds",
                    obs::default_seconds_buckets(),
                    "Full recovery ladder wall time (scan + load + replay)")
        .observe(static_cast<double>(obs::monotonic_ns() - recovery_t0) *
                 1e-9);
  }
}

void DurableStream::replay(const WalRecord& record, std::uint64_t lsn) {
  switch (record.type) {
    case WalRecordType::kRating: {
      observed_closes_.clear();
      const IngestClass got = stream_->submit(record.rating);
      ++recovery_.replayed_ratings;
      if (got != record.ingest_class) {
        throw WalError("WAL replay diverged at record " + std::to_string(lsn) +
                       ": logged classification '" +
                       to_string(record.ingest_class) +
                       "', replay produced '" + to_string(got) + "'");
      }
      break;
    }
    case WalRecordType::kEpochClose:
      // The closes themselves were re-triggered by replaying the preceding
      // rating; the marker just cross-checks that they happened.
      if (stream_->epochs_closed() != record.epochs_closed) {
        throw WalError(
            "WAL replay diverged at record " + std::to_string(lsn) +
            ": epoch-close marker expects " +
            std::to_string(record.epochs_closed) + " closed epoch(s), replay has " +
            std::to_string(stream_->epochs_closed()));
      }
      break;
    case WalRecordType::kFlush:
      observed_closes_.clear();
      stream_->flush();
      if (stream_->epochs_closed() != record.epochs_closed) {
        throw WalError(
            "WAL replay diverged at record " + std::to_string(lsn) +
            ": flush marker expects " + std::to_string(record.epochs_closed) +
            " closed epoch(s), replay has " +
            std::to_string(stream_->epochs_closed()));
      }
      break;
  }
}

IngestClass DurableStream::submit(const Rating& rating) {
  observed_closes_.clear();
  const std::uint64_t before = stream_->epochs_closed();
  const IngestClass klass = stream_->submit(rating);
  const std::uint64_t after = stream_->epochs_closed();

  // Apply-then-log is sound here: the in-memory effect dies with the
  // process, so a crash inside append simply un-happens the submit — the
  // caller was never acknowledged and resumes from acknowledged().
  WalRecord record;
  record.type = WalRecordType::kRating;
  record.rating = rating;
  record.ingest_class = klass;
  wal_->append(record);

  if (after > before) {
    WalRecord marker;
    marker.type = WalRecordType::kEpochClose;
    marker.epochs_closed = after;
    marker.epoch_start =
        observed_closes_.empty() ? 0.0 : observed_closes_.back();
    wal_->append(marker);
    if (options_.fsync == FsyncPolicy::kEpoch) {
      wal_->sync();
    }
  }
  return klass;
}

std::size_t DurableStream::flush() {
  observed_closes_.clear();
  const std::size_t processed = stream_->flush();

  WalRecord record;
  record.type = WalRecordType::kFlush;
  record.epochs_closed = stream_->epochs_closed();
  wal_->append(record);
  if (options_.fsync == FsyncPolicy::kEpoch) {
    wal_->sync();
  }
  return processed;
}

std::uint64_t DurableStream::checkpoint() {
  const obs::SpanTimer span(options_.obs.trace, "checkpoint.write");
  const std::uint64_t t0 =
      checkpoint_write_seconds_ != nullptr ? obs::monotonic_ns() : 0;
  // The log must be on disk before a checkpoint claims to supersede it —
  // regardless of fsync policy.
  wal_->sync();
  const std::uint64_t lsn = wal_->next_lsn();

  std::ostringstream out;
  save_checkpoint(*stream_, out);
  atomic_write_file(dir_ / checkpoint_name(lsn), out.str(), options_.crash);

  prune();
  if (checkpoints_written_ != nullptr) checkpoints_written_->add();
  if (checkpoint_write_seconds_ != nullptr) {
    checkpoint_write_seconds_->observe(
        static_cast<double>(obs::monotonic_ns() - t0) * 1e-9);
  }
  return lsn;
}

void DurableStream::prune() {
  const auto checkpoints = list_checkpoints(dir_);  // newest first
  const std::size_t keep = std::max<std::size_t>(1, options_.keep_checkpoints);
  std::uint64_t oldest_kept = 0;
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    if (i < keep) {
      oldest_kept = checkpoints[i].first;
    } else {
      std::filesystem::remove(checkpoints[i].second);
    }
  }
  if (checkpoints.empty()) return;

  // A segment is obsolete when its *successor* starts at or below the
  // oldest kept checkpoint: every record in it is then < that checkpoint's
  // LSN. The last segment never qualifies (no successor), so the active
  // segment is never removed. Obsolete segments form a prefix, so the
  // surviving log stays contiguous even if a crash interrupts the loop.
  const auto segments = wal_segments(dir_);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first_lsn <= oldest_kept) {
      std::filesystem::remove(segments[i].path);
    }
  }
}

}  // namespace trustrate::core::durable
