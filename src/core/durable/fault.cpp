#include "core/durable/fault.hpp"

#include <algorithm>
#include <cerrno>

#include "common/rng.hpp"

namespace trustrate::core::durable {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:        return "none";
    case FaultKind::kEintr:       return "eintr";
    case FaultKind::kShortWrite:  return "short_write";
    case FaultKind::kEio:         return "eio";
    case FaultKind::kEnospc:      return "enospc";
    case FaultKind::kFsyncFail:   return "fsync_fail";
    case FaultKind::kRenameFail:  return "rename_fail";
    case FaultKind::kReadCorrupt: return "read_corrupt";
  }
  return "unknown";
}

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kWrite:  return "write";
    case IoOp::kFsync:  return "fsync";
    case IoOp::kRename: return "rename";
    case IoOp::kRead:   return "read";
  }
  return "unknown";
}

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const FaultPlanOptions& options) {
  Rng rng(seed ^ 0xFA017c0de5eed571ull);
  FaultPlan plan;
  plan.events.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    FaultEvent event;
    // Weighted draw over the fault inventory. Writes dominate real WAL
    // traffic, so most faults land there; fsync/rename/read faults each get
    // a dedicated slice so every plan family appears across a seed sweep.
    const double which = rng.uniform();
    if (options.read_faults && which < 0.12) {
      event.op = IoOp::kRead;
      event.kind = FaultKind::kReadCorrupt;
    } else if (which < 0.30) {
      event.op = IoOp::kFsync;
      event.kind = rng.bernoulli(0.5) ? FaultKind::kFsyncFail
                                      : FaultKind::kEintr;
    } else if (which < 0.42) {
      event.op = IoOp::kRename;
      event.kind = FaultKind::kRenameFail;
    } else {
      event.op = IoOp::kWrite;
      const double w = rng.uniform();
      if (w < 0.30) {
        event.kind = FaultKind::kEintr;
      } else if (w < 0.55) {
        event.kind = FaultKind::kShortWrite;
      } else if (w < 0.80) {
        event.kind = FaultKind::kEio;
      } else {
        event.kind = FaultKind::kEnospc;
      }
    }
    // Positions are drawn from a per-op horizon scaled to how often each op
    // actually occurs in WAL traffic: writes dominate, fsyncs are barrier-
    // cadence, renames happen once per checkpoint, reads only at recovery.
    // A flat horizon would schedule most fsync/rename events past the ops a
    // run ever performs, so plans would rarely exhaust ("heal").
    std::uint64_t horizon = options.horizon_ops;
    switch (event.op) {
      case IoOp::kWrite:  break;
      case IoOp::kFsync:  horizon /= 32; break;
      case IoOp::kRename: horizon /= 64; break;
      case IoOp::kRead:   horizon /= 64; break;
    }
    event.at = static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(horizon > 0 ? horizon - 1 : 0)));
    event.count = static_cast<std::uint32_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::max(1u, options.max_burst))));
    // Read-corruption bursts stay short so stable_read_file's agreement
    // rule (two consecutive identical reads, bounded by the retry budget)
    // always converges — a burst outlasting the budget would let injected
    // corruption masquerade as on-disk corruption.
    if (event.kind == FaultKind::kReadCorrupt && event.count > 2) {
      event.count = 2;
    }
    plan.events.push_back(event);
  }
  return plan;
}

std::string FaultPlan::summary() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ", ";
    out += std::string(to_string(e.op)) + "@" + std::to_string(e.at) + " " +
           to_string(e.kind) + " x" + std::to_string(e.count);
  }
  return out.empty() ? "(no faults)" : out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.events.size(), 0) {}

FaultKind FaultInjector::next_fault(IoOp op) {
  const std::uint64_t index = ops_[static_cast<int>(op)]++;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.op != op || event.kind == FaultKind::kNone) continue;
    if (fired_[i] >= event.count) continue;
    // The event covers ops [at, at + count); ops inside the window consume
    // burst units in order. An op past the window retires the event (the
    // window was partially idle — e.g. two events overlapped).
    if (index < event.at) continue;
    if (index >= event.at + event.count) {
      fired_[i] = event.count;
      continue;
    }
    ++fired_[i];
    ++injected_total_;
    ++injected_[static_cast<int>(event.kind)];
    return event.kind;
  }
  return FaultKind::kNone;
}

FaultInjector::WriteOutcome FaultInjector::on_write(std::size_t want) {
  WriteOutcome out;
  out.kind = next_fault(IoOp::kWrite);
  switch (out.kind) {
    case FaultKind::kNone:
      out.admit = want;
      break;
    case FaultKind::kShortWrite:
      // A real short write persists a non-empty strict prefix when possible
      // (a one-byte write cannot be shortened); the prefix length is
      // deterministic in the op counter.
      out.admit = want > 1 ? 1 + (ops_[0] % (want - 1)) : want;
      break;
    case FaultKind::kEintr:
      out.error = EINTR;
      break;
    case FaultKind::kEio:
      out.error = EIO;
      break;
    case FaultKind::kEnospc:
      out.error = ENOSPC;
      break;
    default:
      // A write op can only draw write-class faults from the plan, but be
      // permissive: treat anything else as EIO.
      out.kind = FaultKind::kEio;
      out.error = EIO;
      break;
  }
  return out;
}

int FaultInjector::on_fsync() {
  switch (next_fault(IoOp::kFsync)) {
    case FaultKind::kNone:  return 0;
    case FaultKind::kEintr: return EINTR;
    default:                return EIO;  // kFsyncFail and anything else
  }
}

int FaultInjector::on_rename() {
  return next_fault(IoOp::kRename) == FaultKind::kNone ? 0 : EIO;
}

bool FaultInjector::on_read(std::uint64_t* flip_at) {
  const std::uint64_t index = ops_[static_cast<int>(IoOp::kRead)];
  if (next_fault(IoOp::kRead) == FaultKind::kNone) return false;
  // Deterministic flip position: a fixed-odd multiplier hash of the read op
  // index; the caller reduces it modulo the buffer size.
  *flip_at = index * 0x9E3779B97F4A7C15ull >> 16;
  return true;
}

bool FaultInjector::exhausted() const {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].kind != FaultKind::kNone &&
        fired_[i] < plan_.events[i].count) {
      return false;
    }
  }
  return true;
}

std::uint64_t RetryPolicy::backoff_us(std::uint32_t retry) const {
  if (retry == 0) return 0;
  double us = static_cast<double>(backoff_first_us);
  for (std::uint32_t i = 1; i < retry; ++i) us *= backoff_multiplier;
  const double cap = static_cast<double>(backoff_cap_us);
  return static_cast<std::uint64_t>(us < cap ? us : cap);
}

}  // namespace trustrate::core::durable
