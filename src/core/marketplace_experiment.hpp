// Driver for the paper's §IV experiments: runs the marketplace simulation
// month by month through the TrustEnhancedRatingSystem and collects the
// statistics behind Figs. 6-12.
//
// The epoch is one month; each month's products are handed to the system
// as ProductObservations, trust is updated by Procedure 2, and aggregated
// ratings for the month's products are computed with the trust available
// at that month's end (products are rated once, in their month, as in the
// paper).
#pragma once

#include <cstdint>
#include <vector>

#include "agg/aggregator.hpp"
#include "core/system.hpp"
#include "sim/marketplace.hpp"

namespace trustrate::core {

struct MarketplaceExperimentConfig {
  sim::MarketplaceConfig market;
  SystemConfig system;
  std::uint64_t seed = 20070615;
};

/// The §IV operating point for the trust system (calibrated; see
/// EXPERIMENTS.md for the calibration notes and the mapping onto the
/// paper's parameter table).
SystemConfig default_marketplace_system_config();

/// Population statistics at the end of one month.
struct MonthlyStats {
  int month = 0;  ///< 1-based, as in the paper's figures

  // Mean trust per rater kind (Fig. 6).
  double mean_trust_reliable = 0.5;
  double mean_trust_careless = 0.5;
  double mean_trust_pc = 0.5;

  // Rater-level detection with trust < malicious threshold (Figs. 7, 8):
  // fraction of each kind currently flagged.
  double false_alarm_reliable = 0.0;
  double false_alarm_careless = 0.0;
  double detection_pc = 0.0;

  // Rating-level detection for this month's ratings, two readings:
  //  * window_metrics — a rating is flagged when the filter removed it or
  //    it lies inside a suspicious window (raw Procedure-1 output; its
  //    false-alarm ratio has a floor at the fair share of attack windows).
  //  * rating_metrics — a rating is flagged when its *rater* is currently
  //    below the malicious-trust threshold. This is the reading consistent
  //    with Fig. 9's curves (detection rises, false alarm decays to ~0 as
  //    trust converges).
  DetectionMetrics window_metrics;
  DetectionMetrics rating_metrics;
};

/// Per-product aggregation outcomes (Figs. 10-12), computed at the end of
/// the product's month.
struct ProductAggregate {
  ProductId id = 0;
  bool dishonest = false;
  double quality = 0.0;
  double simple_average = 0.0;
  double beta_function = 0.0;
  double weighted = 0.0;  ///< the proposed modified weighted average
};

struct MarketplaceExperimentResult {
  std::vector<MonthlyStats> months;
  std::vector<ProductAggregate> aggregates;
  std::vector<double> final_trust;          ///< per rater id (Fig. 7/8 scatter)
  std::vector<sim::RaterKind> rater_kind;   ///< ground truth, per rater id
};

/// Runs the full experiment.
MarketplaceExperimentResult run_marketplace_experiment(
    const MarketplaceExperimentConfig& config);

}  // namespace trustrate::core
