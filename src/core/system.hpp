// TrustEnhancedRatingSystem — the end-to-end pipeline of the paper's
// Figure 1, wiring together:
//
//   raw ratings ──► rating filter (Feature Extraction I, Whitby beta)
//                │            │
//                │            ▼ filtered-out counts (observation buffer)
//                ├──► AR suspicion detector (Feature Extraction II,
//                │    Procedure 1) ──► suspicious values C(i)
//                │
//                ▼
//   trust manager (Procedure 2, beta trust, forgetting, malicious-rater
//   detection) ──► trust values T(i)
//                │
//                ▼
//   trust-weighted rating aggregation (Method 3 by default)
//
// Usage: feed the system one *epoch* at a time (the paper uses months).
// Each epoch holds the per-product rating series observed during that
// period; the system filters, detects, updates trust, and can then produce
// trust-weighted aggregated ratings and a malicious-rater list.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agg/aggregator.hpp"
#include "core/metrics.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "obs/observability.hpp"
#include "trust/propagation.hpp"
#include "trust/record.hpp"

namespace trustrate::core {

namespace parallel {
class EpochEngine;
}  // namespace parallel

struct SystemConfig {
  // Feature extraction I.
  bool enable_filter = true;
  detect::BetaFilterConfig filter;

  // Feature extraction II (Procedure 1).
  bool enable_ar_detector = true;
  detect::ArDetectorConfig ar;

  /// What the AR detector analyzes. Figure 1 of the paper feeds it the
  /// post-filter "normal ratings" — the default. Filtering trims the
  /// majority's tails, which homogenizes the honest residual variance
  /// across products (the careless-rater tails go away) and so sharpens
  /// the fixed-threshold separation; the raw-stream option exists for
  /// ablation.
  bool detector_on_filtered = true;

  // Procedure 2.
  double b = 1.0;  ///< weight of suspicion value relative to a filtered rating

  /// Per-epoch exponential forgetting on trust evidence (1 = no forgetting).
  double forgetting = 1.0;

  /// Trust below this marks a rater as (potentially) malicious (paper: 0.5).
  double malicious_threshold = 0.5;

  /// Aggregation scheme used by aggregate().
  agg::AggregatorKind aggregator = agg::AggregatorKind::kModifiedWeightedAverage;

  /// Worker count of the parallel epoch engine (core/parallel). 1 runs the
  /// classic serial loop with no threads; W > 1 shards the per-product
  /// filter + AR sweep across W workers (W − 1 pool threads plus the
  /// caller). Output is bitwise-identical at every worker count — see
  /// DESIGN.md §8. This is *configuration*, not state: checkpoints never
  /// record it, so a stream saved at 8 workers restores fine at 1.
  std::size_t epoch_workers = 1;
};

/// Ratings of one product during one epoch, with the product's active span
/// (the AR detector windows [t_start, t_end)).
struct ProductObservation {
  ProductId product = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  RatingSeries ratings;  ///< time-sorted
};

/// Per-product outcome of processing one epoch.
struct ProductReport {
  ProductId product = 0;
  detect::FilterOutcome filter_outcome;  ///< indices into the input
  /// Suspicion over the detector's input: the raw series, or the kept
  /// series when SystemConfig::detector_on_filtered is set.
  detect::SuspicionResult suspicion;
  std::vector<bool> flagged;  ///< per input rating: filtered OR suspicious
  RatingSeries kept;          ///< ratings surviving the filter

  /// True when the AR detector was enabled but could not contribute: every
  /// window was too short for the normal equations, or the fit raised an
  /// error. The product fell back to the beta-filter-only path.
  bool detector_degraded = false;
};

/// Per-epoch outcome.
struct EpochReport {
  std::vector<ProductReport> products;

  /// Confusion table of per-rating flags vs ground-truth labels, summed
  /// over the epoch's products (meaningful for simulated data only).
  DetectionMetrics rating_metrics;

  /// True when any product in the epoch degraded to the beta-filter-only
  /// path (see ProductReport::detector_degraded).
  bool detector_degraded = false;
};

class TrustEnhancedRatingSystem {
 public:
  explicit TrustEnhancedRatingSystem(SystemConfig config = {});
  ~TrustEnhancedRatingSystem();
  TrustEnhancedRatingSystem(TrustEnhancedRatingSystem&&) noexcept;
  TrustEnhancedRatingSystem& operator=(TrustEnhancedRatingSystem&&) noexcept;

  /// Processes one epoch: filters each product's ratings, runs the AR
  /// detector on the survivors, and applies Procedure 2 to every rater
  /// active in the epoch. Forgetting is applied before the update.
  ///
  /// The per-product stage runs on the epoch engine
  /// (SystemConfig::epoch_workers); reports and trust-evidence deltas are
  /// merged in input order, so results do not depend on the worker count.
  EpochReport process_epoch(std::span<const ProductObservation> observations);

  /// Second half of process_epoch for pre-analyzed products: folds
  /// `products` (slot i analyzing observation i, produced by
  /// parallel::analyze_product — e.g. on another system's engine, or on a
  /// shard's engine) into this system's trust state. Runs the fade, the
  /// canonical sorted suspicion merge, Procedure 2, and observability —
  /// everything process_epoch does except the analysis stage itself.
  /// Feeding it the concatenation of per-shard analyses, sorted by product
  /// ID, yields bitwise-identical results to process_epoch on the whole
  /// epoch: stage 1 is per-product-independent and stage 2 is
  /// product-order-canonical (DESIGN.md §14).
  EpochReport merge_epoch(std::span<const ProductObservation> observations,
                          std::vector<ProductReport> products);

  /// Trust in a rater (0.5 for unknown raters).
  double trust(RaterId id) const { return store_.trust(id); }

  /// All raters currently below the malicious threshold.
  std::vector<RaterId> malicious() const;

  /// Trust-weighted aggregated rating for a product's ratings: the filter
  /// is applied, per-rater means are formed (the paper assumes one rating
  /// per rater), and the configured aggregator combines them with current
  /// trust. Requires a non-empty series.
  double aggregate(const RatingSeries& ratings) const;

  /// Aggregate with an explicit scheme (for the scheme-comparison figures).
  double aggregate_with(const RatingSeries& ratings, agg::AggregatorKind kind) const;

  /// Adds rater-on-rater feedback for indirect trust.
  void add_recommendation(const trust::Recommendation& rec);

  /// Direct + indirect combined trust (uses the recommendation buffer).
  double combined_trust(RaterId id) const;

  const trust::TrustStore& trust_store() const { return store_; }
  const SystemConfig& config() const { return config_; }
  std::size_t epochs_processed() const { return epochs_; }

  /// Checkpoint support: replaces the accumulated trust evidence and the
  /// epoch counter with recovered state (core/checkpoint.hpp). The
  /// recommendation buffer is not part of streaming state and is left
  /// untouched.
  void restore(trust::TrustStore store, std::size_t epochs_processed);

  /// Attaches the observability bundle (DESIGN.md §11): epoch stage spans,
  /// detection audit events (filtered ratings, suspicious intervals, C(i)
  /// increments, trust demotions), and the filter/detector instruments.
  /// Strictly out-of-band — process_epoch results and the trust store are
  /// bitwise-identical with any combination of sinks. Not checkpointed;
  /// call before processing (never concurrently with it).
  void set_observability(const obs::Observability& o);

 private:
  /// Shared tail of process_epoch / merge_epoch: fade, deterministic slot-
  /// order merge, Procedure 2, epoch counter, observability.
  EpochReport merge_epoch_impl(std::uint64_t epoch_ordinal,
                               std::span<const ProductObservation> observations,
                               std::vector<ProductReport> products);

  /// Deterministic-count metrics and audit-log emissions for one processed
  /// epoch, in canonical order (slot, then window position, then rater).
  void finish_epoch_observability(
      std::uint64_t epoch_ordinal, const EpochReport& report,
      std::span<const ProductObservation> observations,
      const std::unordered_map<RaterId, trust::EpochObservation>& epoch_obs);

  /// (Re-)attaches the trust-store update observer that feeds
  /// trust_transitions_ (store replacement on restore drops it).
  void wire_store_observer();

  SystemConfig config_;
  detect::BetaQuantileFilter filter_;
  detect::ArSuspicionDetector detector_;
  std::unique_ptr<parallel::EpochEngine> engine_;
  trust::TrustStore store_;
  trust::RecommendationBuffer recommendations_;
  std::size_t epochs_ = 0;

  obs::Observability obs_;
  obs::Histogram* epoch_seconds_ = nullptr;
  obs::Histogram* analyze_seconds_ = nullptr;
  obs::Histogram* trust_update_seconds_ = nullptr;
  obs::Counter* suspicious_intervals_ = nullptr;
  obs::Counter* trust_demotions_ = nullptr;

  /// Scratch: (rater, before, after) per Procedure-2 update of the epoch
  /// in flight, filled by the store observer, sorted before audit emission.
  struct TrustTransition {
    RaterId rater;
    double before;
    double after;
  };
  std::vector<TrustTransition> trust_transitions_;
};

}  // namespace trustrate::core
