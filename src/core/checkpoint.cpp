#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace trustrate::core {
namespace {

// ---------------------------------------------------------------- writing

/// Hexfloat formatting: every finite double round-trips bit-exactly through
/// strtod, and nan/inf (possible in quarantined ratings) print readably.
std::string format_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  return buf;
}

void write_rating(std::ostream& out, const Rating& r) {
  out << format_double(r.time) << ' ' << format_double(r.value) << ' '
      << r.rater << ' ' << r.product << ' '
      << static_cast<unsigned>(r.label) << '\n';
}

template <typename Map>
std::vector<ProductId> sorted_keys(const Map& map) {
  std::vector<ProductId> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------------------------------------------------------------- reading

/// Whitespace-token reader over the checkpoint stream; every accessor
/// throws CheckpointError with the offending context on malformed input.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  std::string next(const char* what) {
    std::string token;
    if (!(in_ >> token)) {
      throw CheckpointError(std::string("checkpoint truncated: expected ") +
                            what);
    }
    return token;
  }

  void expect(const char* keyword) {
    const std::string token = next(keyword);
    if (token != keyword) {
      throw CheckpointError(std::string("checkpoint corrupt: expected '") +
                            keyword + "', found '" + token + "'");
    }
  }

  double read_double(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      throw CheckpointError(std::string("checkpoint corrupt: bad number '") +
                            token + "' for " + what);
    }
    return value;
  }

  std::size_t read_size(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || token.front() == '-') {
      throw CheckpointError(std::string("checkpoint corrupt: bad count '") +
                            token + "' for " + what);
    }
    return static_cast<std::size_t>(value);
  }

  bool read_bool(const char* what) {
    const std::size_t v = read_size(what);
    if (v > 1) {
      throw CheckpointError(std::string("checkpoint corrupt: bad flag for ") +
                            what);
    }
    return v == 1;
  }

  Rating read_rating() {
    Rating r;
    r.time = read_double("rating time");
    r.value = read_double("rating value");
    r.rater = static_cast<RaterId>(read_size("rating rater"));
    r.product = static_cast<ProductId>(read_size("rating product"));
    const std::size_t label = read_size("rating label");
    if (label > static_cast<std::size_t>(RatingLabel::kCollaborative2)) {
      throw CheckpointError("checkpoint corrupt: unknown rating label");
    }
    r.label = static_cast<RatingLabel>(label);
    return r;
  }

 private:
  std::istream& in_;
};

}  // namespace

/// Grants the checkpoint serializer access to the streaming internals; this
/// is the single place that knows the wire format.
struct CheckpointAccess {
  static void save(const StreamingRatingSystem& s, std::ostream& out) {
    const IngestBuffer& ing = s.ingest_;
    out << "trustrate-checkpoint " << kCheckpointVersion << '\n';
    out << "config " << format_double(s.epoch_days_) << ' '
        << s.retention_epochs_ << ' '
        << format_double(ing.config_.max_lateness_days) << ' '
        << ing.config_.max_quarantine << '\n';
    out << "anchor " << (s.anchored_ ? 1 : 0) << ' '
        << format_double(s.epoch_start_) << ' ' << format_double(s.last_time_)
        << ' ' << s.epochs_closed_ << ' ' << s.skipped_empty_epochs_ << ' '
        << s.system_.epochs_processed() << '\n';

    const IngestStats& st = ing.stats_;
    out << "stats " << st.submitted << ' ' << st.accepted << ' '
        << st.reordered << ' ' << st.duplicates << ' ' << st.dropped_late
        << ' ' << st.malformed << ' ' << st.quarantined << '\n';

    out << "health " << s.epoch_health_.size();
    for (EpochHealth h : s.epoch_health_) {
      out << ' ' << static_cast<unsigned>(h);
    }
    out << '\n';

    out << "ingest " << (ing.anchored_ ? 1 : 0) << ' '
        << format_double(ing.max_time_) << '\n';
    out << "buffer " << ing.buffer_.size() << '\n';
    for (const Rating& r : ing.buffer_) write_rating(out, r);
    out << "seen " << ing.seen_.size() << '\n';
    for (const auto& [time, rater, product, value] : ing.seen_) {
      out << format_double(time) << ' ' << rater << ' ' << product << ' '
          << format_double(value) << '\n';
    }
    out << "quarantine " << ing.quarantine_.size() << '\n';
    for (const QuarantinedRating& q : ing.quarantine_) {
      out << static_cast<unsigned>(q.reason) << ' ';
      write_rating(out, q.rating);
    }

    out << "pending " << s.pending_.size() << '\n';
    for (ProductId product : sorted_keys(s.pending_)) {
      const RatingSeries& series = s.pending_.at(product);
      out << product << ' ' << series.size() << '\n';
      for (const Rating& r : series) write_rating(out, r);
    }

    out << "retained " << s.retained_.size() << '\n';
    for (ProductId product : sorted_keys(s.retained_)) {
      const auto& epochs = s.retained_.at(product).epochs;
      out << product << ' ' << epochs.size() << '\n';
      for (const RatingSeries& epoch : epochs) {
        out << epoch.size() << '\n';
        for (const Rating& r : epoch) write_rating(out, r);
      }
    }

    const auto& records = s.system_.trust_store().records();
    std::vector<RaterId> raters;
    raters.reserve(records.size());
    for (const auto& [id, record] : records) raters.push_back(id);
    std::sort(raters.begin(), raters.end());
    out << "trust " << raters.size() << '\n';
    for (RaterId id : raters) {
      const trust::TrustRecord& r = records.at(id);
      out << id << ' ' << format_double(r.successes) << ' '
          << format_double(r.failures) << '\n';
    }
    out << "end\n";
  }

  static StreamingRatingSystem load(std::istream& in,
                                    const SystemConfig& config) {
    TokenReader reader(in);
    reader.expect("trustrate-checkpoint");
    const std::size_t version = reader.read_size("version");
    if (version < 1 || version > static_cast<std::size_t>(kCheckpointVersion)) {
      throw CheckpointError("unsupported checkpoint version " +
                            std::to_string(version));
    }

    reader.expect("config");
    const double epoch_days = reader.read_double("epoch_days");
    const std::size_t retention = reader.read_size("retention_epochs");
    IngestConfig ingest_config;
    ingest_config.max_lateness_days = reader.read_double("max_lateness_days");
    ingest_config.max_quarantine = reader.read_size("max_quarantine");

    StreamingRatingSystem s(config, epoch_days, retention, ingest_config);

    reader.expect("anchor");
    s.anchored_ = reader.read_bool("anchored");
    s.epoch_start_ = reader.read_double("epoch_start");
    s.last_time_ = reader.read_double("last_time");
    s.epochs_closed_ = reader.read_size("epochs_closed");
    if (version >= 2) {
      s.skipped_empty_epochs_ = reader.read_size("skipped_empty_epochs");
    }
    const std::size_t system_epochs = reader.read_size("system_epochs");

    IngestBuffer& ing = s.ingest_;
    reader.expect("stats");
    ing.stats_.submitted = reader.read_size("submitted");
    ing.stats_.accepted = reader.read_size("accepted");
    ing.stats_.reordered = reader.read_size("reordered");
    ing.stats_.duplicates = reader.read_size("duplicates");
    ing.stats_.dropped_late = reader.read_size("dropped_late");
    ing.stats_.malformed = reader.read_size("malformed");
    ing.stats_.quarantined = reader.read_size("quarantined");

    reader.expect("health");
    const std::size_t health_count = reader.read_size("health count");
    s.epoch_health_.reserve(health_count);
    for (std::size_t i = 0; i < health_count; ++i) {
      const std::size_t h = reader.read_size("health flag");
      if (h > static_cast<std::size_t>(EpochHealth::kDegradedDetector)) {
        throw CheckpointError("checkpoint corrupt: unknown epoch health flag");
      }
      s.epoch_health_.push_back(static_cast<EpochHealth>(h));
    }

    reader.expect("ingest");
    ing.anchored_ = reader.read_bool("ingest anchored");
    ing.max_time_ = reader.read_double("ingest max_time");
    reader.expect("buffer");
    const std::size_t buffered = reader.read_size("buffer count");
    for (std::size_t i = 0; i < buffered; ++i) {
      ing.buffer_.insert(reader.read_rating());
    }
    reader.expect("seen");
    const std::size_t seen = reader.read_size("seen count");
    for (std::size_t i = 0; i < seen; ++i) {
      const double time = reader.read_double("seen time");
      const auto rater = static_cast<RaterId>(reader.read_size("seen rater"));
      const auto product =
          static_cast<ProductId>(reader.read_size("seen product"));
      const double value = reader.read_double("seen value");
      ing.seen_.insert({time, rater, product, value});
    }
    reader.expect("quarantine");
    const std::size_t quarantined = reader.read_size("quarantine count");
    for (std::size_t i = 0; i < quarantined; ++i) {
      const std::size_t reason = reader.read_size("quarantine reason");
      if (reason > static_cast<std::size_t>(IngestClass::kMalformed)) {
        throw CheckpointError("checkpoint corrupt: unknown quarantine reason");
      }
      ing.quarantine_.push_back(
          {reader.read_rating(), static_cast<IngestClass>(reason), {}});
    }

    reader.expect("pending");
    const std::size_t pending_products = reader.read_size("pending products");
    for (std::size_t i = 0; i < pending_products; ++i) {
      const auto product =
          static_cast<ProductId>(reader.read_size("pending product"));
      const std::size_t count = reader.read_size("pending count");
      RatingSeries& series = s.pending_[product];
      series.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        series.push_back(reader.read_rating());
      }
    }

    reader.expect("retained");
    const std::size_t retained_products = reader.read_size("retained products");
    for (std::size_t i = 0; i < retained_products; ++i) {
      const auto product =
          static_cast<ProductId>(reader.read_size("retained product"));
      const std::size_t epochs = reader.read_size("retained epochs");
      auto& slot = s.retained_[product].epochs;
      slot.resize(epochs);
      for (std::size_t e = 0; e < epochs; ++e) {
        const std::size_t count = reader.read_size("retained epoch count");
        slot[e].reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          slot[e].push_back(reader.read_rating());
        }
      }
    }

    reader.expect("trust");
    const std::size_t raters = reader.read_size("trust count");
    trust::TrustStore store;
    for (std::size_t i = 0; i < raters; ++i) {
      const auto id = static_cast<RaterId>(reader.read_size("trust rater"));
      trust::TrustRecord record;
      record.successes = reader.read_double("trust successes");
      record.failures = reader.read_double("trust failures");
      if (store.records().contains(id)) {
        throw CheckpointError("checkpoint corrupt: duplicate trust rater " +
                              std::to_string(id));
      }
      store.record(id) = record;
    }
    s.system_.restore(std::move(store), system_epochs);

    reader.expect("end");
    return s;
  }
};

void save_checkpoint(const StreamingRatingSystem& stream, std::ostream& out) {
  CheckpointAccess::save(stream, out);
}

StreamingRatingSystem load_checkpoint(std::istream& in,
                                      const SystemConfig& config) {
  return CheckpointAccess::load(in, config);
}

}  // namespace trustrate::core
