#include "core/checkpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/durable/crc32c.hpp"

namespace trustrate::core {
namespace {

using durable::crc32c;
using durable::crc32c_hex;

// ---------------------------------------------------------------- writing

/// Hexfloat formatting: every finite double round-trips bit-exactly through
/// strtod, and nan/inf (possible in quarantined ratings) print readably.
std::string format_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  return buf;
}

void write_rating(std::ostream& out, const Rating& r) {
  out << format_double(r.time) << ' ' << format_double(r.value) << ' '
      << r.rater << ' ' << r.product << ' '
      << static_cast<unsigned>(r.label) << '\n';
}

template <typename Map>
std::vector<ProductId> sorted_keys(const Map& map) {
  std::vector<ProductId> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Quarantine detail strings are free text (spaces, anything ingest put
/// there); on the wire they must be a single whitespace-free token.
/// Percent-escaping: '%', whitespace, control, and non-ASCII bytes become
/// %XX; the empty string is spelled `-` (and a literal "-" is escaped so
/// the spelling stays unambiguous). Round-trips byte-exactly.
std::string escape_detail(const std::string& detail) {
  if (detail.empty()) return "-";
  std::string out;
  out.reserve(detail.size());
  for (const unsigned char c : detail) {
    if (c <= 0x20 || c >= 0x7F || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  if (out == "-") return "%2d";
  return out;
}

// ---------------------------------------------------------------- reading

/// Whitespace-token reader over the checkpoint stream; every accessor
/// throws CheckpointError with the offending context *and line number* on
/// malformed input (mirroring the CSV loader's line-numbered errors).
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  /// Line (1-based) of the most recently read token.
  std::size_t line() const { return token_line_; }

  [[noreturn]] void fail(const std::string& message) const {
    throw CheckpointError(message + " (line " + std::to_string(token_line_) +
                          ")");
  }

  std::string next(const char* what) {
    int c = in_.get();
    while (c != EOF && std::isspace(c)) {
      if (c == '\n') ++line_;
      c = in_.get();
    }
    token_line_ = line_;
    if (c == EOF) {
      fail(std::string("checkpoint truncated: expected ") + what);
    }
    std::string token(1, static_cast<char>(c));
    for (c = in_.get(); c != EOF && !std::isspace(c); c = in_.get()) {
      token += static_cast<char>(c);
    }
    if (c == '\n') ++line_;
    return token;
  }

  void expect(const char* keyword) {
    const std::string token = next(keyword);
    if (token != keyword) {
      fail(std::string("checkpoint corrupt: expected '") + keyword +
           "', found '" + token + "'");
    }
  }

  double read_double(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail(std::string("checkpoint corrupt: bad number '") + token + "' for " +
           what);
    }
    return value;
  }

  std::size_t read_size(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || token.front() == '-') {
      fail(std::string("checkpoint corrupt: bad count '") + token + "' for " +
           what);
    }
    return static_cast<std::size_t>(value);
  }

  bool read_bool(const char* what) {
    const std::size_t v = read_size(what);
    if (v > 1) {
      fail(std::string("checkpoint corrupt: bad flag for ") + what);
    }
    return v == 1;
  }

  Rating read_rating() {
    Rating r;
    r.time = read_double("rating time");
    r.value = read_double("rating value");
    r.rater = static_cast<RaterId>(read_size("rating rater"));
    r.product = static_cast<ProductId>(read_size("rating product"));
    const std::size_t label = read_size("rating label");
    if (label > static_cast<std::size_t>(RatingLabel::kCollaborative2)) {
      fail("checkpoint corrupt: unknown rating label");
    }
    r.label = static_cast<RatingLabel>(label);
    return r;
  }

  /// Inverse of escape_detail.
  std::string read_detail() {
    const std::string token = next("quarantine detail");
    if (token == "-") return {};
    std::string out;
    out.reserve(token.size());
    for (std::size_t i = 0; i < token.size(); ++i) {
      if (token[i] != '%') {
        out += token[i];
        continue;
      }
      if (i + 2 >= token.size() || !std::isxdigit(token[i + 1]) ||
          !std::isxdigit(token[i + 2])) {
        fail("checkpoint corrupt: bad escape in quarantine detail '" + token +
             "'");
      }
      const char hex[3] = {token[i + 1], token[i + 2], '\0'};
      out += static_cast<char>(std::strtoul(hex, nullptr, 16));
      i += 2;
    }
    return out;
  }

  /// Consumes a v3 `crc <name> <hex8>` line. The checksum itself was
  /// verified against the raw bytes before parsing began; this enforces
  /// only that the line is structurally where the format says it is.
  void consume_crc(const char* section) {
    expect("crc");
    const std::string name = next("crc section name");
    if (name != section) {
      fail(std::string("checkpoint corrupt: crc line names section '") + name +
           "', expected '" + section + "'");
    }
    next("crc value");
  }

 private:
  std::istream& in_;
  std::size_t line_ = 1;
  std::size_t token_line_ = 1;
};

/// Verifies every `crc <name> <hex8>` section checksum and the trailing
/// `filecrc <hex8>` of a version-3 checkpoint against the raw bytes.
/// Section coverage: from the byte after the previous crc line (the byte
/// after the header line for the first section) up to the start of the crc
/// line. filecrc covers everything from the first byte up to the start of
/// the filecrc line. Throws CheckpointError naming the section and line.
void verify_v3_checksums(const std::string& text) {
  std::size_t line_start = 0;
  std::size_t line_number = 0;
  std::size_t section_start = std::string::npos;  // set after the header line
  bool file_checked = false;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    ++line_number;
    const std::string_view line(text.data() + line_start,
                                line_end - line_start);
    if (line_number == 1) {
      section_start = line_end + 1;  // first section begins after the header
    } else if (line.rfind("crc ", 0) == 0) {
      std::istringstream fields{std::string(line)};
      std::string keyword, name, hex;
      fields >> keyword >> name >> hex;
      if (section_start == std::string::npos || section_start > line_start) {
        throw CheckpointError("checkpoint corrupt: stray crc line (line " +
                              std::to_string(line_number) + ")");
      }
      const std::uint32_t actual = crc32c(
          std::string_view(text.data() + section_start,
                           line_start - section_start));
      if (crc32c_hex(actual) != hex) {
        throw CheckpointError("checkpoint corrupt: section '" + name +
                              "' fails its checksum (crc line " +
                              std::to_string(line_number) + ")");
      }
      section_start = line_end + 1;
    } else if (line.rfind("filecrc ", 0) == 0) {
      std::istringstream fields{std::string(line)};
      std::string keyword, hex;
      fields >> keyword >> hex;
      const std::uint32_t actual =
          crc32c(std::string_view(text.data(), line_start));
      if (crc32c_hex(actual) != hex) {
        throw CheckpointError(
            "checkpoint corrupt: whole-file checksum mismatch (filecrc line " +
            std::to_string(line_number) + ")");
      }
      file_checked = true;
    }
    line_start = line_end + 1;
  }
  if (!file_checked) {
    throw CheckpointError(
        "checkpoint truncated: version 3 requires a filecrc line");
  }
}

}  // namespace

/// Grants the checkpoint serializer access to the streaming internals; this
/// is the single place that knows the wire format.
struct CheckpointAccess {
  static void save(const StreamingRatingSystem& s, std::ostream& out) {
    std::string text = "trustrate-checkpoint " +
                       std::to_string(kCheckpointVersion) + "\n";
    std::ostringstream sec;
    // Closes the open section: appends its bytes plus the `crc` line whose
    // checksum covers exactly those bytes.
    const auto end_section = [&text, &sec](const char* name) {
      const std::string body = sec.str();
      text += body;
      text += std::string("crc ") + name + ' ' + crc32c_hex(crc32c(body)) +
              '\n';
      sec.str({});
    };

    const IngestBuffer& ing = s.ingest_;
    sec << "config " << format_double(s.epoch_days_) << ' '
        << s.retention_epochs_ << ' '
        << format_double(ing.config_.max_lateness_days) << ' '
        << ing.config_.max_quarantine << '\n';
    end_section("config");

    sec << "anchor " << (s.anchored_ ? 1 : 0) << ' '
        << format_double(s.epoch_start_) << ' ' << format_double(s.last_time_)
        << ' ' << s.epochs_closed_ << ' ' << s.skipped_empty_epochs_ << ' '
        << s.system_.epochs_processed() << '\n';
    end_section("anchor");

    const IngestStats& st = ing.stats_;
    sec << "stats " << st.submitted << ' ' << st.accepted << ' '
        << st.reordered << ' ' << st.duplicates << ' ' << st.dropped_late
        << ' ' << st.malformed << ' ' << st.quarantined << '\n';
    end_section("stats");

    sec << "health " << s.epoch_health_.size();
    for (EpochHealth h : s.epoch_health_) {
      sec << ' ' << static_cast<unsigned>(h);
    }
    sec << '\n';
    end_section("health");

    sec << "ingest " << (ing.anchored_ ? 1 : 0) << ' '
        << format_double(ing.max_time_) << '\n';
    sec << "buffer " << ing.buffer_.size() << '\n';
    for (const Rating& r : ing.buffer_) write_rating(sec, r);
    sec << "seen " << ing.seen_.size() << '\n';
    for (const auto& [time, rater, product, value] : ing.seen_) {
      sec << format_double(time) << ' ' << rater << ' ' << product << ' '
          << format_double(value) << '\n';
    }
    sec << "quarantine " << ing.quarantine_.size() << '\n';
    for (const QuarantinedRating& q : ing.quarantine_) {
      sec << static_cast<unsigned>(q.reason) << ' ' << format_double(q.rating.time)
          << ' ' << format_double(q.rating.value) << ' ' << q.rating.rater
          << ' ' << q.rating.product << ' '
          << static_cast<unsigned>(q.rating.label) << ' '
          << escape_detail(q.detail) << '\n';
    }
    end_section("ingest");

    sec << "pending " << s.pending_.size() << '\n';
    for (ProductId product : sorted_keys(s.pending_)) {
      const RatingSeries& series = s.pending_.at(product);
      sec << product << ' ' << series.size() << '\n';
      for (const Rating& r : series) write_rating(sec, r);
    }
    end_section("pending");

    sec << "retained " << s.retained_.size() << '\n';
    for (ProductId product : sorted_keys(s.retained_)) {
      const auto& epochs = s.retained_.at(product).epochs;
      sec << product << ' ' << epochs.size() << '\n';
      for (const RatingSeries& epoch : epochs) {
        sec << epoch.size() << '\n';
        for (const Rating& r : epoch) write_rating(sec, r);
      }
    }
    end_section("retained");

    const auto& records = s.system_.trust_store().records();
    std::vector<RaterId> raters;
    raters.reserve(records.size());
    for (const auto& [id, record] : records) raters.push_back(id);
    std::sort(raters.begin(), raters.end());
    sec << "trust " << raters.size() << '\n';
    for (RaterId id : raters) {
      const trust::TrustRecord& r = records.at(id);
      sec << id << ' ' << format_double(r.successes) << ' '
          << format_double(r.failures) << '\n';
    }
    end_section("trust");

    text += "filecrc " + crc32c_hex(crc32c(text)) + "\n";
    text += "end\n";
    out << text;
  }

  static StreamingRatingSystem load(const std::string& text,
                                    const SystemConfig& config) {
    // Header peek: the version decides whether checksums exist to verify
    // before token parsing starts.
    {
      std::istringstream header(text);
      std::string magic;
      std::size_t version = 0;
      if ((header >> magic >> version) && magic == "trustrate-checkpoint" &&
          version == 3) {
        verify_v3_checksums(text);
      }
    }

    std::istringstream in(text);
    TokenReader reader(in);
    reader.expect("trustrate-checkpoint");
    const std::size_t version = reader.read_size("version");
    if (version < 1 || version > static_cast<std::size_t>(kCheckpointVersion)) {
      throw CheckpointError("unsupported checkpoint version " +
                            std::to_string(version));
    }
    const bool checksummed = version >= 3;

    reader.expect("config");
    const double epoch_days = reader.read_double("epoch_days");
    const std::size_t retention = reader.read_size("retention_epochs");
    IngestConfig ingest_config;
    ingest_config.max_lateness_days = reader.read_double("max_lateness_days");
    ingest_config.max_quarantine = reader.read_size("max_quarantine");
    if (checksummed) reader.consume_crc("config");

    StreamingRatingSystem s(config, epoch_days, retention, ingest_config);

    reader.expect("anchor");
    s.anchored_ = reader.read_bool("anchored");
    s.epoch_start_ = reader.read_double("epoch_start");
    s.last_time_ = reader.read_double("last_time");
    s.epochs_closed_ = reader.read_size("epochs_closed");
    if (version >= 2) {
      s.skipped_empty_epochs_ = reader.read_size("skipped_empty_epochs");
    }
    const std::size_t system_epochs = reader.read_size("system_epochs");
    if (checksummed) reader.consume_crc("anchor");

    IngestBuffer& ing = s.ingest_;
    reader.expect("stats");
    ing.stats_.submitted = reader.read_size("submitted");
    ing.stats_.accepted = reader.read_size("accepted");
    ing.stats_.reordered = reader.read_size("reordered");
    ing.stats_.duplicates = reader.read_size("duplicates");
    ing.stats_.dropped_late = reader.read_size("dropped_late");
    ing.stats_.malformed = reader.read_size("malformed");
    ing.stats_.quarantined = reader.read_size("quarantined");
    if (checksummed) reader.consume_crc("stats");

    reader.expect("health");
    const std::size_t health_count = reader.read_size("health count");
    s.epoch_health_.reserve(health_count);
    for (std::size_t i = 0; i < health_count; ++i) {
      const std::size_t h = reader.read_size("health flag");
      if (h > static_cast<std::size_t>(EpochHealth::kDegradedDetector)) {
        reader.fail("checkpoint corrupt: unknown epoch health flag");
      }
      s.epoch_health_.push_back(static_cast<EpochHealth>(h));
    }
    if (checksummed) reader.consume_crc("health");

    reader.expect("ingest");
    ing.anchored_ = reader.read_bool("ingest anchored");
    ing.max_time_ = reader.read_double("ingest max_time");
    reader.expect("buffer");
    const std::size_t buffered = reader.read_size("buffer count");
    for (std::size_t i = 0; i < buffered; ++i) {
      ing.buffer_.insert(reader.read_rating());
    }
    reader.expect("seen");
    const std::size_t seen = reader.read_size("seen count");
    for (std::size_t i = 0; i < seen; ++i) {
      const double time = reader.read_double("seen time");
      const auto rater = static_cast<RaterId>(reader.read_size("seen rater"));
      const auto product =
          static_cast<ProductId>(reader.read_size("seen product"));
      const double value = reader.read_double("seen value");
      ing.seen_.insert({time, rater, product, value});
    }
    reader.expect("quarantine");
    const std::size_t quarantined = reader.read_size("quarantine count");
    for (std::size_t i = 0; i < quarantined; ++i) {
      const std::size_t reason = reader.read_size("quarantine reason");
      if (reason > static_cast<std::size_t>(IngestClass::kMalformed)) {
        reader.fail("checkpoint corrupt: unknown quarantine reason");
      }
      const Rating rating = reader.read_rating();
      // v1/v2 dropped the diagnostic detail; v3 carries it escaped.
      std::string detail = checksummed ? reader.read_detail() : std::string{};
      ing.quarantine_.push_back(
          {rating, static_cast<IngestClass>(reason), std::move(detail)});
    }
    if (checksummed) reader.consume_crc("ingest");

    reader.expect("pending");
    const std::size_t pending_products = reader.read_size("pending products");
    for (std::size_t i = 0; i < pending_products; ++i) {
      const auto product =
          static_cast<ProductId>(reader.read_size("pending product"));
      const std::size_t count = reader.read_size("pending count");
      RatingSeries& series = s.pending_[product];
      series.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        series.push_back(reader.read_rating());
      }
    }
    if (checksummed) reader.consume_crc("pending");

    reader.expect("retained");
    const std::size_t retained_products = reader.read_size("retained products");
    for (std::size_t i = 0; i < retained_products; ++i) {
      const auto product =
          static_cast<ProductId>(reader.read_size("retained product"));
      const std::size_t epochs = reader.read_size("retained epochs");
      auto& slot = s.retained_[product].epochs;
      slot.resize(epochs);
      for (std::size_t e = 0; e < epochs; ++e) {
        const std::size_t count = reader.read_size("retained epoch count");
        slot[e].reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          slot[e].push_back(reader.read_rating());
        }
      }
    }
    if (checksummed) reader.consume_crc("retained");

    reader.expect("trust");
    const std::size_t raters = reader.read_size("trust count");
    trust::TrustStore store;
    for (std::size_t i = 0; i < raters; ++i) {
      const auto id = static_cast<RaterId>(reader.read_size("trust rater"));
      trust::TrustRecord record;
      record.successes = reader.read_double("trust successes");
      record.failures = reader.read_double("trust failures");
      if (store.records().contains(id)) {
        reader.fail("checkpoint corrupt: duplicate trust rater " +
                    std::to_string(id));
      }
      store.record(id) = record;
    }
    if (checksummed) reader.consume_crc("trust");
    s.system_.restore(std::move(store), system_epochs);

    if (checksummed) {
      reader.expect("filecrc");
      reader.next("filecrc value");
    }
    reader.expect("end");
    // Observers are not checkpoint state; arm the one-shot audit warning
    // that fires if nobody re-attaches one before the next epoch close
    // (core/streaming.cpp). In-memory flag only — the format is unchanged.
    s.observer_restore_warning_pending_ = true;
    return s;
  }
};

void save_checkpoint(const StreamingRatingSystem& stream, std::ostream& out) {
  CheckpointAccess::save(stream, out);
}

StreamingRatingSystem load_checkpoint(std::istream& in,
                                      const SystemConfig& config) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CheckpointAccess::load(buffer.str(), config);
}

}  // namespace trustrate::core
