#include "core/checkpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/durable/crc32c.hpp"
#include "core/shard/shard_map.hpp"
#include "core/shard/sharded_system.hpp"

namespace trustrate::core {
namespace {

using durable::crc32c;
using durable::crc32c_hex;

// ---------------------------------------------------------------- writing

/// Hexfloat formatting: every finite double round-trips bit-exactly through
/// strtod, and nan/inf (possible in quarantined ratings) print readably.
std::string format_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  return buf;
}

void write_rating(std::ostream& out, const Rating& r) {
  out << format_double(r.time) << ' ' << format_double(r.value) << ' '
      << r.rater << ' ' << r.product << ' '
      << static_cast<unsigned>(r.label) << '\n';
}

/// Quarantine detail strings are free text (spaces, anything ingest put
/// there); on the wire they must be a single whitespace-free token.
/// Percent-escaping: '%', whitespace, control, and non-ASCII bytes become
/// %XX; the empty string is spelled `-` (and a literal "-" is escaped so
/// the spelling stays unambiguous). Round-trips byte-exactly.
std::string escape_detail(const std::string& detail) {
  if (detail.empty()) return "-";
  std::string out;
  out.reserve(detail.size());
  for (const unsigned char c : detail) {
    if (c <= 0x20 || c >= 0x7F || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  if (out == "-") return "%2d";
  return out;
}

// ---------------------------------------------------------------- reading

/// Whitespace-token reader over the checkpoint stream; every accessor
/// throws CheckpointError with the offending context *and line number* on
/// malformed input (mirroring the CSV loader's line-numbered errors).
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  /// Line (1-based) of the most recently read token.
  std::size_t line() const { return token_line_; }

  [[noreturn]] void fail(const std::string& message) const {
    throw CheckpointError(message + " (line " + std::to_string(token_line_) +
                          ")");
  }

  std::string next(const char* what) {
    int c = in_.get();
    while (c != EOF && std::isspace(c)) {
      if (c == '\n') ++line_;
      c = in_.get();
    }
    token_line_ = line_;
    if (c == EOF) {
      fail(std::string("checkpoint truncated: expected ") + what);
    }
    std::string token(1, static_cast<char>(c));
    for (c = in_.get(); c != EOF && !std::isspace(c); c = in_.get()) {
      token += static_cast<char>(c);
    }
    if (c == '\n') ++line_;
    return token;
  }

  void expect(const char* keyword) {
    const std::string token = next(keyword);
    if (token != keyword) {
      fail(std::string("checkpoint corrupt: expected '") + keyword +
           "', found '" + token + "'");
    }
  }

  double read_double(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail(std::string("checkpoint corrupt: bad number '") + token + "' for " +
           what);
    }
    return value;
  }

  std::size_t read_size(const char* what) {
    const std::string token = next(what);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || token.front() == '-') {
      fail(std::string("checkpoint corrupt: bad count '") + token + "' for " +
           what);
    }
    return static_cast<std::size_t>(value);
  }

  bool read_bool(const char* what) {
    const std::size_t v = read_size(what);
    if (v > 1) {
      fail(std::string("checkpoint corrupt: bad flag for ") + what);
    }
    return v == 1;
  }

  Rating read_rating() {
    Rating r;
    r.time = read_double("rating time");
    r.value = read_double("rating value");
    r.rater = static_cast<RaterId>(read_size("rating rater"));
    r.product = static_cast<ProductId>(read_size("rating product"));
    const std::size_t label = read_size("rating label");
    if (label > static_cast<std::size_t>(RatingLabel::kCollaborative2)) {
      fail("checkpoint corrupt: unknown rating label");
    }
    r.label = static_cast<RatingLabel>(label);
    return r;
  }

  /// Inverse of escape_detail.
  std::string read_detail() {
    const std::string token = next("quarantine detail");
    if (token == "-") return {};
    std::string out;
    out.reserve(token.size());
    for (std::size_t i = 0; i < token.size(); ++i) {
      if (token[i] != '%') {
        out += token[i];
        continue;
      }
      if (i + 2 >= token.size() || !std::isxdigit(token[i + 1]) ||
          !std::isxdigit(token[i + 2])) {
        fail("checkpoint corrupt: bad escape in quarantine detail '" + token +
             "'");
      }
      const char hex[3] = {token[i + 1], token[i + 2], '\0'};
      out += static_cast<char>(std::strtoul(hex, nullptr, 16));
      i += 2;
    }
    return out;
  }

  /// Consumes a `crc <name> <hex8>` line (v3+). The checksum itself was
  /// verified against the raw bytes before parsing began; this enforces
  /// only that the line is structurally where the format says it is.
  void consume_crc(const std::string& section) {
    expect("crc");
    const std::string name = next("crc section name");
    if (name != section) {
      fail(std::string("checkpoint corrupt: crc line names section '") + name +
           "', expected '" + section + "'");
    }
    next("crc value");
  }

 private:
  std::istream& in_;
  std::size_t line_ = 1;
  std::size_t token_line_ = 1;
};

/// Verifies every `crc <name> <hex8>` section checksum and the trailing
/// `filecrc <hex8>` of a version-3+ checkpoint against the raw bytes.
/// Section coverage: from the byte after the previous crc line (the byte
/// after the header line for the first section) up to the start of the crc
/// line. filecrc covers everything from the first byte up to the start of
/// the filecrc line. Throws CheckpointError naming the section and line.
void verify_section_checksums(const std::string& text) {
  std::size_t line_start = 0;
  std::size_t line_number = 0;
  std::size_t section_start = std::string::npos;  // set after the header line
  bool file_checked = false;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    ++line_number;
    const std::string_view line(text.data() + line_start,
                                line_end - line_start);
    if (line_number == 1) {
      section_start = line_end + 1;  // first section begins after the header
    } else if (line.rfind("crc ", 0) == 0) {
      std::istringstream fields{std::string(line)};
      std::string keyword, name, hex;
      fields >> keyword >> name >> hex;
      if (section_start == std::string::npos || section_start > line_start) {
        throw CheckpointError("checkpoint corrupt: stray crc line (line " +
                              std::to_string(line_number) + ")");
      }
      const std::uint32_t actual = crc32c(
          std::string_view(text.data() + section_start,
                           line_start - section_start));
      if (crc32c_hex(actual) != hex) {
        throw CheckpointError("checkpoint corrupt: section '" + name +
                              "' fails its checksum (crc line " +
                              std::to_string(line_number) + ")");
      }
      section_start = line_end + 1;
    } else if (line.rfind("filecrc ", 0) == 0) {
      std::istringstream fields{std::string(line)};
      std::string keyword, hex;
      fields >> keyword >> hex;
      const std::uint32_t actual =
          crc32c(std::string_view(text.data(), line_start));
      if (crc32c_hex(actual) != hex) {
        throw CheckpointError(
            "checkpoint corrupt: whole-file checksum mismatch (filecrc line " +
            std::to_string(line_number) + ")");
      }
      file_checked = true;
    }
    line_start = line_end + 1;
  }
  if (!file_checked) {
    throw CheckpointError(
        "checkpoint truncated: version 3+ requires a filecrc line");
  }
}

/// Appends one `pending`-shaped product map (used for both the global v3
/// section body and each shard's slice of it in v4).
template <typename Iter>
void write_pending_body(std::ostream& sec, Iter begin, Iter end,
                        std::size_t count) {
  sec << "pending " << count << '\n';
  for (Iter it = begin; it != end; ++it) {
    sec << it->first << ' ' << it->second->size() << '\n';
    for (const Rating& r : *it->second) write_rating(sec, r);
  }
}

template <typename Iter>
void write_retained_body(std::ostream& sec, Iter begin, Iter end,
                         std::size_t count) {
  sec << "retained " << count << '\n';
  for (Iter it = begin; it != end; ++it) {
    sec << it->first << ' ' << it->second->size() << '\n';
    for (const RatingSeries& epoch : *it->second) {
      sec << epoch.size() << '\n';
      for (const Rating& r : epoch) write_rating(sec, r);
    }
  }
}

std::string render_checkpoint(const StreamSnapshot& s, int version) {
  TRUSTRATE_EXPECTS(version == kCheckpointVersion ||
                        version == kShardedCheckpointVersion,
                    "write_checkpoint renders version 3 or 4 only");
  std::string text =
      "trustrate-checkpoint " + std::to_string(version) + "\n";
  std::ostringstream sec;
  // Closes the open section: appends its bytes plus the `crc` line whose
  // checksum covers exactly those bytes.
  const auto end_section = [&text, &sec](const std::string& name) {
    const std::string body = sec.str();
    text += body;
    text += "crc " + name + ' ' + crc32c_hex(crc32c(body)) + '\n';
    sec.str({});
  };

  sec << "config " << format_double(s.epoch_days) << ' '
      << s.retention_epochs << ' '
      << format_double(s.ingest_config.max_lateness_days) << ' '
      << s.ingest_config.max_quarantine << '\n';
  end_section("config");

  sec << "anchor " << (s.anchored ? 1 : 0) << ' '
      << format_double(s.epoch_start) << ' ' << format_double(s.last_time)
      << ' ' << s.epochs_closed << ' ' << s.skipped_empty_epochs << ' '
      << s.system_epochs << '\n';
  end_section("anchor");

  sec << "stats " << s.stats.submitted << ' ' << s.stats.accepted << ' '
      << s.stats.reordered << ' ' << s.stats.duplicates << ' '
      << s.stats.dropped_late << ' ' << s.stats.malformed << ' '
      << s.stats.quarantined << '\n';
  end_section("stats");

  sec << "health " << s.health.size();
  for (EpochHealth h : s.health) {
    sec << ' ' << static_cast<unsigned>(h);
  }
  sec << '\n';
  end_section("health");

  sec << "ingest " << (s.ingest_anchored ? 1 : 0) << ' '
      << format_double(s.ingest_max_time) << '\n';
  sec << "buffer " << s.buffer.size() << '\n';
  for (const Rating& r : s.buffer) write_rating(sec, r);
  sec << "seen " << s.seen.size() << '\n';
  for (const auto& [time, rater, product, value] : s.seen) {
    sec << format_double(time) << ' ' << rater << ' ' << product << ' '
        << format_double(value) << '\n';
  }
  sec << "quarantine " << s.quarantine.size() << '\n';
  for (const QuarantinedRating& q : s.quarantine) {
    sec << static_cast<unsigned>(q.reason) << ' ' << format_double(q.rating.time)
        << ' ' << format_double(q.rating.value) << ' ' << q.rating.rater
        << ' ' << q.rating.product << ' '
        << static_cast<unsigned>(q.rating.label) << ' '
        << escape_detail(q.detail) << '\n';
  }
  end_section("ingest");

  // Sorted (product, payload) views shared by both layouts.
  using PendingRef = std::pair<ProductId, const RatingSeries*>;
  using RetainedRef = std::pair<ProductId, const std::vector<RatingSeries>*>;
  std::vector<PendingRef> pending;
  pending.reserve(s.pending.size());
  for (const auto& [product, series] : s.pending) {
    pending.push_back({product, &series});
  }
  std::vector<RetainedRef> retained;
  retained.reserve(s.retained.size());
  for (const auto& [product, epochs] : s.retained) {
    retained.push_back({product, &epochs});
  }

  if (version == kShardedCheckpointVersion) {
    // `layout N skip0 .. skipN-1`: the saved shard count and its per-shard
    // skipped-cell diagnostics. An unsharded snapshot writes as one shard.
    const std::size_t shards = s.shards == 0 ? 1 : s.shards;
    sec << "layout " << shards;
    for (std::size_t k = 0; k < shards; ++k) {
      sec << ' '
          << (k < s.shard_skipped_cells.size() ? s.shard_skipped_cells[k] : 0);
    }
    sec << '\n';
    end_section("layout");

    // One section per shard: the shard's slice of pending/retained, in
    // global sorted-product order (stable partition of a sorted list).
    for (std::size_t k = 0; k < shards; ++k) {
      std::vector<PendingRef> shard_pending;
      for (const PendingRef& p : pending) {
        if (shard::shard_of(p.first, shards) == k) shard_pending.push_back(p);
      }
      std::vector<RetainedRef> shard_retained;
      for (const RetainedRef& r : retained) {
        if (shard::shard_of(r.first, shards) == k) shard_retained.push_back(r);
      }
      sec << "shard " << k << '\n';
      write_pending_body(sec, shard_pending.begin(), shard_pending.end(),
                         shard_pending.size());
      write_retained_body(sec, shard_retained.begin(), shard_retained.end(),
                          shard_retained.size());
      end_section("shard" + std::to_string(k));
    }
  } else {
    write_pending_body(sec, pending.begin(), pending.end(), pending.size());
    end_section("pending");
    write_retained_body(sec, retained.begin(), retained.end(),
                        retained.size());
    end_section("retained");
  }

  sec << "trust " << s.trust.size() << '\n';
  for (const auto& [id, record] : s.trust) {
    sec << id << ' ' << format_double(record.successes) << ' '
        << format_double(record.failures) << '\n';
  }
  end_section("trust");

  text += "filecrc " + crc32c_hex(crc32c(text)) + "\n";
  text += "end\n";
  return text;
}

/// Parses one `pending ...` body into the (global) snapshot map, failing on
/// a product that already has pending state (a cross-shard duplicate).
void parse_pending_body(TokenReader& reader, StreamSnapshot& s) {
  reader.expect("pending");
  const std::size_t pending_products = reader.read_size("pending products");
  for (std::size_t i = 0; i < pending_products; ++i) {
    const auto product =
        static_cast<ProductId>(reader.read_size("pending product"));
    if (s.pending.contains(product)) {
      reader.fail("checkpoint corrupt: product " + std::to_string(product) +
                  " pending in two shards");
    }
    const std::size_t count = reader.read_size("pending count");
    RatingSeries& series = s.pending[product];
    series.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      series.push_back(reader.read_rating());
    }
  }
}

void parse_retained_body(TokenReader& reader, StreamSnapshot& s) {
  reader.expect("retained");
  const std::size_t retained_products = reader.read_size("retained products");
  for (std::size_t i = 0; i < retained_products; ++i) {
    const auto product =
        static_cast<ProductId>(reader.read_size("retained product"));
    if (s.retained.contains(product)) {
      reader.fail("checkpoint corrupt: product " + std::to_string(product) +
                  " retained in two shards");
    }
    const std::size_t epochs = reader.read_size("retained epochs");
    auto& slot = s.retained[product];
    slot.resize(epochs);
    for (std::size_t e = 0; e < epochs; ++e) {
      const std::size_t count = reader.read_size("retained epoch count");
      slot[e].reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        slot[e].push_back(reader.read_rating());
      }
    }
  }
}

}  // namespace

/// Grants the checkpoint serializer access to the streaming internals; this
/// is the single place that knows how to move state in and out of a live
/// stream (the wire format itself lives in render/parse above).
struct CheckpointAccess {
  static StreamSnapshot take(const StreamingRatingSystem& s) {
    StreamSnapshot snap;
    snap.epoch_days = s.epoch_days_;
    snap.retention_epochs = s.retention_epochs_;
    const IngestBuffer& ing = s.ingest_;
    snap.ingest_config = ing.config_;

    snap.anchored = s.anchored_;
    snap.epoch_start = s.epoch_start_;
    snap.last_time = s.last_time_;
    snap.epochs_closed = s.epochs_closed_;
    snap.skipped_empty_epochs = s.skipped_empty_epochs_;
    snap.system_epochs = s.system_.epochs_processed();

    snap.stats = ing.stats_;
    snap.health = s.epoch_health_;

    snap.ingest_anchored = ing.anchored_;
    snap.ingest_max_time = ing.max_time_;
    snap.buffer.assign(ing.buffer_.begin(), ing.buffer_.end());
    snap.seen.assign(ing.seen_.begin(), ing.seen_.end());
    snap.quarantine.assign(ing.quarantine_.begin(), ing.quarantine_.end());

    for (const auto& [product, series] : s.pending_) {
      snap.pending[product] = series;
    }
    for (const auto& [product, retained] : s.retained_) {
      snap.retained[product] = retained.epochs;
    }

    const auto& records = s.system_.trust_store().records();
    snap.trust.reserve(records.size());
    for (const auto& [id, record] : records) {
      snap.trust.push_back({id, record});
    }
    std::sort(snap.trust.begin(), snap.trust.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return snap;
  }

  static StreamingRatingSystem restore(const StreamSnapshot& snap,
                                       const SystemConfig& config) {
    StreamingRatingSystem s(config, snap.epoch_days, snap.retention_epochs,
                            snap.ingest_config);
    s.anchored_ = snap.anchored;
    s.epoch_start_ = snap.epoch_start;
    s.last_time_ = snap.last_time;
    s.epochs_closed_ = snap.epochs_closed;
    s.skipped_empty_epochs_ = snap.skipped_empty_epochs;
    s.epoch_health_ = snap.health;

    IngestBuffer& ing = s.ingest_;
    ing.stats_ = snap.stats;
    ing.anchored_ = snap.ingest_anchored;
    ing.max_time_ = snap.ingest_max_time;
    for (const Rating& r : snap.buffer) ing.buffer_.insert(r);
    for (const IngestBuffer::SeenKey& key : snap.seen) ing.seen_.insert(key);
    ing.quarantine_.assign(snap.quarantine.begin(), snap.quarantine.end());

    for (const auto& [product, series] : snap.pending) {
      s.pending_[product] = series;
    }
    for (const auto& [product, epochs] : snap.retained) {
      s.retained_[product].epochs = epochs;
    }

    trust::TrustStore store;
    for (const auto& [id, record] : snap.trust) {
      store.record(id) = record;
    }
    s.system_.restore(std::move(store), snap.system_epochs);

    // Observers are not checkpoint state; arm the one-shot audit warning
    // that fires if nobody re-attaches one before the next epoch close
    // (core/streaming.cpp). In-memory flag only — the format is unchanged.
    s.observer_restore_warning_pending_ = true;
    return s;
  }

  static StreamSnapshot take_sharded(shard::ShardedRatingSystem& sys) {
    sys.quiesce();
    StreamSnapshot snap;
    snap.epoch_days = sys.epoch_days_;
    snap.retention_epochs = sys.retention_epochs_;
    const IngestBuffer& ing = sys.ingest_;
    snap.ingest_config = ing.config_;

    snap.anchored = sys.anchored_;
    snap.epoch_start = sys.epoch_start_;
    snap.last_time = sys.last_time_;
    snap.epochs_closed = sys.epochs_closed_;
    snap.skipped_empty_epochs = sys.skipped_empty_epochs_;
    snap.system_epochs = sys.merge_.epochs_processed();

    snap.stats = ing.stats_;
    snap.health = sys.epoch_health_;

    snap.ingest_anchored = ing.anchored_;
    snap.ingest_max_time = ing.max_time_;
    snap.buffer.assign(ing.buffer_.begin(), ing.buffer_.end());
    snap.seen.assign(ing.seen_.begin(), ing.seen_.end());

    // The sharded system's quarantine sink bypasses the classifier's own
    // store, so the dead letters live per shard; merge them back into
    // global arrival order by their global ordinal.
    std::vector<const shard::ShardedRatingSystem::DeadLetter*> dead;
    for (const auto& sh : sys.shards_) {
      for (const auto& d : sh->quarantine) dead.push_back(&d);
    }
    std::sort(dead.begin(), dead.end(),
              [](const auto* a, const auto* b) { return a->seq < b->seq; });
    snap.quarantine.reserve(dead.size());
    for (const auto* d : dead) snap.quarantine.push_back(d->entry);

    // Union across shards; std::map restores the canonical product order.
    for (const auto& sh : sys.shards_) {
      for (const auto& [product, series] : sh->pending) {
        snap.pending[product] = series;
      }
      for (const auto& [product, retained] : sh->retained) {
        snap.retained[product] = retained.epochs;
      }
    }

    const auto& records = sys.merge_.trust_store().records();
    snap.trust.reserve(records.size());
    for (const auto& [id, record] : records) {
      snap.trust.push_back({id, record});
    }
    std::sort(snap.trust.begin(), snap.trust.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    snap.shards = sys.shards_.size();
    snap.shard_skipped_cells.reserve(snap.shards);
    for (const auto& sh : sys.shards_) {
      snap.shard_skipped_cells.push_back(sh->skipped_cells);
    }
    return snap;
  }

  static std::unique_ptr<shard::ShardedRatingSystem> restore_sharded(
      const StreamSnapshot& snap, const SystemConfig& config,
      shard::ShardOptions options) {
    // Build unthreaded, fill state on the calling thread, then start the
    // workers — no thread ever observes partially restored shards.
    const bool threaded = options.threaded;
    options.threaded = false;
    auto sys = std::make_unique<shard::ShardedRatingSystem>(
        config, std::move(options), snap.epoch_days, snap.retention_epochs,
        snap.ingest_config);

    sys->anchored_ = snap.anchored;
    sys->epoch_start_ = snap.epoch_start;
    sys->last_time_ = snap.last_time;
    sys->epochs_closed_ = snap.epochs_closed;
    sys->skipped_empty_epochs_ = snap.skipped_empty_epochs;
    sys->epoch_health_ = snap.health;

    IngestBuffer& ing = sys->ingest_;
    ing.stats_ = snap.stats;
    ing.anchored_ = snap.ingest_anchored;
    ing.max_time_ = snap.ingest_max_time;
    for (const Rating& r : snap.buffer) ing.buffer_.insert(r);
    for (const IngestBuffer::SeenKey& key : snap.seen) ing.seen_.insert(key);

    // Re-partition under the TARGET layout — the snapshot's shard count
    // (or a pre-shard v3 checkpoint with none at all) need not match.
    std::size_t pending_ratings = 0;
    for (const auto& [product, series] : snap.pending) {
      sys->shards_[sys->shard_index(product)]->pending[product] = series;
      pending_ratings += series.size();
    }
    sys->pending_count_ = pending_ratings;
    for (const auto& [product, epochs] : snap.retained) {
      sys->shards_[sys->shard_index(product)]->retained[product].epochs =
          epochs;
    }

    // Dead letters re-shard in global arrival order; relative order within
    // a shard is all the merge needs, and every future ordinal (>= the
    // quarantined counter) sorts after these.
    for (std::size_t i = 0; i < snap.quarantine.size(); ++i) {
      QuarantinedRating entry = snap.quarantine[i];
      const std::size_t k = sys->shard_index(entry.rating.product);
      sys->add_dead_letter(*sys->shards_[k], std::move(entry),
                           static_cast<std::uint64_t>(i));
    }

    // Skipped-cell counters are layout-scoped diagnostics: only meaningful
    // when the layout survives the round trip.
    if (snap.shards == sys->shards_.size() &&
        snap.shard_skipped_cells.size() == sys->shards_.size()) {
      for (std::size_t k = 0; k < sys->shards_.size(); ++k) {
        sys->shards_[k]->skipped_cells = snap.shard_skipped_cells[k];
        sys->shards_[k]->skipped_cells_pub.store(snap.shard_skipped_cells[k],
                                                 std::memory_order_relaxed);
      }
    }

    trust::TrustStore store;
    for (const auto& [id, record] : snap.trust) {
      store.record(id) = record;
    }
    sys->merge_.restore(std::move(store), snap.system_epochs);

    if (threaded) {
      sys->options_.threaded = true;
      sys->start_threads();
    }
    return sys;
  }
};

StreamSnapshot take_snapshot(const StreamingRatingSystem& stream) {
  return CheckpointAccess::take(stream);
}

StreamingRatingSystem restore_stream(const StreamSnapshot& snapshot,
                                     const SystemConfig& config) {
  return CheckpointAccess::restore(snapshot, config);
}

StreamSnapshot parse_checkpoint(const std::string& text) {
  // Header peek: the version decides whether checksums exist to verify
  // before token parsing starts.
  {
    std::istringstream header(text);
    std::string magic;
    std::size_t version = 0;
    if ((header >> magic >> version) && magic == "trustrate-checkpoint" &&
        version >= 3) {
      verify_section_checksums(text);
    }
  }

  std::istringstream in(text);
  TokenReader reader(in);
  reader.expect("trustrate-checkpoint");
  const std::size_t version = reader.read_size("version");
  if (version < 1 ||
      version > static_cast<std::size_t>(kShardedCheckpointVersion)) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version));
  }
  const bool checksummed = version >= 3;
  const bool sharded = version >= 4;

  StreamSnapshot s;
  reader.expect("config");
  s.epoch_days = reader.read_double("epoch_days");
  s.retention_epochs = reader.read_size("retention_epochs");
  s.ingest_config.max_lateness_days = reader.read_double("max_lateness_days");
  s.ingest_config.max_quarantine = reader.read_size("max_quarantine");
  if (checksummed) reader.consume_crc("config");

  reader.expect("anchor");
  s.anchored = reader.read_bool("anchored");
  s.epoch_start = reader.read_double("epoch_start");
  s.last_time = reader.read_double("last_time");
  s.epochs_closed = reader.read_size("epochs_closed");
  if (version >= 2) {
    s.skipped_empty_epochs = reader.read_size("skipped_empty_epochs");
  }
  s.system_epochs = reader.read_size("system_epochs");
  if (checksummed) reader.consume_crc("anchor");

  reader.expect("stats");
  s.stats.submitted = reader.read_size("submitted");
  s.stats.accepted = reader.read_size("accepted");
  s.stats.reordered = reader.read_size("reordered");
  s.stats.duplicates = reader.read_size("duplicates");
  s.stats.dropped_late = reader.read_size("dropped_late");
  s.stats.malformed = reader.read_size("malformed");
  s.stats.quarantined = reader.read_size("quarantined");
  if (checksummed) reader.consume_crc("stats");

  reader.expect("health");
  const std::size_t health_count = reader.read_size("health count");
  s.health.reserve(health_count);
  for (std::size_t i = 0; i < health_count; ++i) {
    const std::size_t h = reader.read_size("health flag");
    if (h > static_cast<std::size_t>(EpochHealth::kDegradedDetector)) {
      reader.fail("checkpoint corrupt: unknown epoch health flag");
    }
    s.health.push_back(static_cast<EpochHealth>(h));
  }
  if (checksummed) reader.consume_crc("health");

  reader.expect("ingest");
  s.ingest_anchored = reader.read_bool("ingest anchored");
  s.ingest_max_time = reader.read_double("ingest max_time");
  reader.expect("buffer");
  const std::size_t buffered = reader.read_size("buffer count");
  s.buffer.reserve(buffered);
  for (std::size_t i = 0; i < buffered; ++i) {
    s.buffer.push_back(reader.read_rating());
  }
  reader.expect("seen");
  const std::size_t seen = reader.read_size("seen count");
  s.seen.reserve(seen);
  for (std::size_t i = 0; i < seen; ++i) {
    const double time = reader.read_double("seen time");
    const auto rater = static_cast<RaterId>(reader.read_size("seen rater"));
    const auto product =
        static_cast<ProductId>(reader.read_size("seen product"));
    const double value = reader.read_double("seen value");
    s.seen.push_back({time, rater, product, value});
  }
  reader.expect("quarantine");
  const std::size_t quarantined = reader.read_size("quarantine count");
  s.quarantine.reserve(quarantined);
  for (std::size_t i = 0; i < quarantined; ++i) {
    const std::size_t reason = reader.read_size("quarantine reason");
    if (reason > static_cast<std::size_t>(IngestClass::kMalformed)) {
      reader.fail("checkpoint corrupt: unknown quarantine reason");
    }
    const Rating rating = reader.read_rating();
    // v1/v2 dropped the diagnostic detail; v3+ carries it escaped.
    std::string detail = checksummed ? reader.read_detail() : std::string{};
    s.quarantine.push_back(
        {rating, static_cast<IngestClass>(reason), std::move(detail)});
  }
  if (checksummed) reader.consume_crc("ingest");

  if (sharded) {
    reader.expect("layout");
    s.shards = reader.read_size("shard count");
    if (s.shards == 0) {
      reader.fail("checkpoint corrupt: zero-shard layout");
    }
    s.shard_skipped_cells.reserve(s.shards);
    for (std::size_t k = 0; k < s.shards; ++k) {
      s.shard_skipped_cells.push_back(reader.read_size("shard skipped cells"));
    }
    reader.consume_crc("layout");
    for (std::size_t k = 0; k < s.shards; ++k) {
      reader.expect("shard");
      const std::size_t index = reader.read_size("shard index");
      if (index != k) {
        reader.fail("checkpoint corrupt: shard sections out of order");
      }
      parse_pending_body(reader, s);
      parse_retained_body(reader, s);
      reader.consume_crc("shard" + std::to_string(k));
    }
  } else {
    parse_pending_body(reader, s);
    if (checksummed) reader.consume_crc("pending");
    parse_retained_body(reader, s);
    if (checksummed) reader.consume_crc("retained");
  }

  reader.expect("trust");
  const std::size_t raters = reader.read_size("trust count");
  s.trust.reserve(raters);
  for (std::size_t i = 0; i < raters; ++i) {
    const auto id = static_cast<RaterId>(reader.read_size("trust rater"));
    trust::TrustRecord record;
    record.successes = reader.read_double("trust successes");
    record.failures = reader.read_double("trust failures");
    if (!s.trust.empty() && s.trust.back().first >= id) {
      // The writer sorts raters, so an order violation is corruption (and a
      // duplicate is the equality case of the same check).
      reader.fail("checkpoint corrupt: trust raters out of order at " +
                  std::to_string(id));
    }
    s.trust.push_back({id, record});
  }
  if (checksummed) reader.consume_crc("trust");

  if (checksummed) {
    reader.expect("filecrc");
    reader.next("filecrc value");
  }
  reader.expect("end");
  return s;
}

void write_checkpoint(const StreamSnapshot& snapshot, int version,
                      std::ostream& out) {
  out << render_checkpoint(snapshot, version);
}

void save_checkpoint(const StreamingRatingSystem& stream, std::ostream& out) {
  write_checkpoint(take_snapshot(stream), kCheckpointVersion, out);
}

StreamingRatingSystem load_checkpoint(std::istream& in,
                                      const SystemConfig& config) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return restore_stream(parse_checkpoint(buffer.str()), config);
}

// Sharded checkpoint entry points live here because CheckpointAccess is the
// single owner of state movement in and out of live systems; the sharded
// engine's header only declares them.

StreamSnapshot shard::ShardedRatingSystem::snapshot() {
  return CheckpointAccess::take_sharded(*this);
}

void shard::ShardedRatingSystem::save(std::ostream& out) {
  write_checkpoint(snapshot(), kShardedCheckpointVersion, out);
}

std::unique_ptr<shard::ShardedRatingSystem> shard::ShardedRatingSystem::
    from_snapshot(const StreamSnapshot& snapshot, const SystemConfig& config,
                  ShardOptions options) {
  return CheckpointAccess::restore_sharded(snapshot, config,
                                           std::move(options));
}

std::unique_ptr<shard::ShardedRatingSystem> shard::ShardedRatingSystem::load(
    std::istream& in, const SystemConfig& config, ShardOptions options) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CheckpointAccess::restore_sharded(parse_checkpoint(buffer.str()),
                                           config, std::move(options));
}

}  // namespace trustrate::core
