#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trustrate::core {

StreamingRatingSystem::StreamingRatingSystem(SystemConfig config,
                                             double epoch_days,
                                             std::size_t retention_epochs,
                                             IngestConfig ingest)
    : system_(config), epoch_days_(epoch_days),
      retention_epochs_(retention_epochs), ingest_(ingest) {
  TRUSTRATE_EXPECTS(epoch_days > 0.0, "epoch length must be positive");
}

IngestClass StreamingRatingSystem::submit(const Rating& rating) {
  released_.clear();
  const IngestClass result = ingest_.submit(rating, released_);
  if (ingest_submitted_ != nullptr) {
    ingest_submitted_->add();
    switch (result) {
      case IngestClass::kAccepted:
        ingest_accepted_->add();
        break;
      case IngestClass::kReordered:
        ingest_accepted_->add();
        ingest_reordered_->add();
        break;
      case IngestClass::kDuplicate:
        ingest_duplicates_->add();
        break;
      case IngestClass::kLate:
        ingest_late_->add();
        ingest_quarantined_->add();
        break;
      case IngestClass::kMalformed:
        ingest_malformed_->add();
        ingest_quarantined_->add();
        break;
    }
  }
  if (obs_.audit != nullptr &&
      (result == IngestClass::kLate || result == IngestClass::kMalformed)) {
    obs::AuditEvent e;
    e.type = obs::AuditEventType::kRatingQuarantined;
    e.rater = rating.rater;
    e.product = rating.product;
    if (std::isfinite(rating.value)) e.value = rating.value;
    // The buffer just dead-lettered this rating; its entry (when capacity
    // allowed one) carries the classification reason.
    e.detail = !ingest_.quarantine().empty()
                   ? ingest_.quarantine().back().detail
                   : to_string(result);
    obs_.audit->record(e);
  }
  for (const Rating& r : released_) route(r);
  update_gauges();
  return result;
}

void StreamingRatingSystem::route(const Rating& rating) {
  if (!anchored_) {
    anchored_ = true;
    epoch_start_ = rating.time;
  }
  last_time_ = rating.time;

  // Close as many epochs as the stream has moved past. Only the first
  // close can carry data; once pending_ is empty the rest of the gap is
  // a fully empty span, which is skipped in O(1) instead of spinning one
  // close (and one EpochHealth entry) per elapsed epoch — a year-long gap
  // with a small epoch would otherwise close thousands of empty epochs.
  while (rating.time >= epoch_start_ + epoch_days_) {
    if (pending_.empty()) {
      fast_forward_empty_epochs(rating.time);
      break;
    }
    close_epoch(epoch_start_ + epoch_days_);
  }
  pending_[rating.product].push_back(rating);
}

void StreamingRatingSystem::fast_forward_empty_epochs(double now) {
  // now >= epoch_start_ + epoch_days_, so skip >= 1.
  auto skip = static_cast<std::size_t>((now - epoch_start_) / epoch_days_);
  epoch_start_ += static_cast<double>(skip) * epoch_days_;
  // Floating-point guards: land on the grid cell containing `now` even
  // when the multiply rounds the boundary across it.
  while (epoch_start_ > now) {
    epoch_start_ -= epoch_days_;
    --skip;
  }
  while (now >= epoch_start_ + epoch_days_) {
    epoch_start_ += epoch_days_;
    ++skip;
  }
  skipped_empty_epochs_ += skip;
  if (epochs_skipped_empty_metric_ != nullptr) {
    epochs_skipped_empty_metric_->add(static_cast<std::uint64_t>(skip));
  }
}

std::size_t StreamingRatingSystem::flush() {
  released_.clear();
  ingest_.drain(released_);
  for (const Rating& r : released_) route(r);
  if (!anchored_ || pending_.empty()) return 0;
  const std::size_t products = pending_.size();
  close_epoch(std::max(last_time_ + 1e-9, epoch_start_ + epoch_days_));
  return products;
}

void StreamingRatingSystem::close_epoch(double epoch_end) {
  const auto ordinal = static_cast<std::uint64_t>(epochs_closed_) + 1;
  const double span_start = epoch_start_;
  const obs::SpanTimer span(obs_.trace, "epoch.close", ordinal);
  std::vector<ProductObservation> observations;
  observations.reserve(pending_.size());
  for (auto& [product, series] : pending_) {
    ProductObservation obs;
    obs.product = product;
    obs.t_start = epoch_start_;
    obs.t_end = epoch_end;
    obs.ratings = std::move(series);
    observations.push_back(std::move(obs));
  }
  pending_.clear();
  // Fixed product-ID order: the epoch pipeline (and the parallel engine's
  // merge) sees products in the same order on every run and platform, not
  // in hash-map iteration order.
  std::sort(observations.begin(), observations.end(),
            [](const ProductObservation& a, const ProductObservation& b) {
              return a.product < b.product;
            });

  // One-shot recovery warning: epoch observers are not checkpoint state.
  // If nobody re-attached one by the first close after a restore, the
  // conformance/monitoring hook is silently gone — say so, once, in the
  // audit log. (The durable layer always re-attaches its own observer
  // before replay, so it clears this without an event.)
  if (observer_restore_warning_pending_) {
    observer_restore_warning_pending_ = false;
    if (!epoch_observer_ && obs_.audit != nullptr) {
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kObserverNotRestored;
      e.epoch = ordinal;
      e.detail =
          "first epoch close after checkpoint recovery with no epoch "
          "observer re-attached";
      obs_.audit->record(e);
    }
  }

  EpochHealth health = EpochHealth::kHealthy;
  if (!observations.empty()) {
    const EpochReport report = system_.process_epoch(observations);
    if (report.detector_degraded) health = EpochHealth::kDegradedDetector;
    if (epoch_observer_) epoch_observer_(report, epoch_start_, epoch_end);
    for (auto& obs : observations) {
      Retained& r = retained_[obs.product];
      r.epochs.push_back(std::move(obs.ratings));
      if (r.epochs.size() > retention_epochs_) {
        r.epochs.erase(r.epochs.begin());
      }
    }
  }
  epoch_start_ = epoch_end;
  ++epochs_closed_;
  epoch_health_.push_back(health);
  if (epochs_closed_metric_ != nullptr) epochs_closed_metric_->add();
  if (health == EpochHealth::kDegradedDetector) {
    if (epochs_degraded_metric_ != nullptr) epochs_degraded_metric_->add();
    if (obs_.audit != nullptr) {
      obs::AuditEvent e;
      e.type = obs::AuditEventType::kDegradedEpoch;
      e.epoch = ordinal;
      e.window_start = span_start;
      e.window_end = epoch_end;
      e.detail = "AR detector contributed nothing; beta-filter-only path";
      obs_.audit->record(e);
    }
  }
  update_gauges();
}

std::size_t StreamingRatingSystem::degraded_epochs() const {
  return static_cast<std::size_t>(
      std::count(epoch_health_.begin(), epoch_health_.end(),
                 EpochHealth::kDegradedDetector));
}

std::optional<double> StreamingRatingSystem::aggregate(ProductId product) const {
  RatingSeries all;
  if (const auto it = retained_.find(product); it != retained_.end()) {
    for (const RatingSeries& epoch : it->second.epochs) {
      all.insert(all.end(), epoch.begin(), epoch.end());
    }
  }
  if (const auto it = pending_.find(product); it != pending_.end()) {
    all.insert(all.end(), it->second.begin(), it->second.end());
  }
  if (all.empty()) return std::nullopt;
  return system_.aggregate(all);
}

std::size_t StreamingRatingSystem::pending_ratings() const {
  std::size_t n = 0;
  for (const auto& [product, series] : pending_) n += series.size();
  return n;
}

void StreamingRatingSystem::set_observability(const obs::Observability& o) {
  obs_ = o;
  system_.set_observability(o);
  if (o.metrics != nullptr) {
    obs::MetricsRegistry& m = *o.metrics;
    ingest_submitted_ = &m.counter("trustrate_ingest_submitted_total",
                                   "Ratings offered to submit()");
    ingest_accepted_ = &m.counter("trustrate_ingest_accepted_total",
                                  "Ratings accepted (includes reordered)");
    ingest_reordered_ = &m.counter(
        "trustrate_ingest_reordered_total",
        "Ratings accepted out of order within the lateness bound");
    ingest_duplicates_ = &m.counter("trustrate_ingest_duplicates_total",
                                    "Exact resubmissions dropped");
    ingest_late_ = &m.counter("trustrate_ingest_late_total",
                              "Ratings dropped behind the watermark");
    ingest_malformed_ = &m.counter("trustrate_ingest_malformed_total",
                                   "Ratings failing validation");
    ingest_quarantined_ = &m.counter(
        "trustrate_ingest_quarantined_total",
        "Dead-lettered ratings (late + malformed)");
    epochs_closed_metric_ =
        &m.counter("trustrate_epochs_closed_total", "Epochs closed");
    epochs_degraded_metric_ = &m.counter(
        "trustrate_epochs_degraded_total",
        "Epochs that fell back to the beta-filter-only path");
    epochs_skipped_empty_metric_ = &m.counter(
        "trustrate_epochs_skipped_empty_total",
        "Fully empty epochs fast-forwarded over");
    quarantine_size_gauge_ = &m.gauge("trustrate_quarantine_size",
                                      "Dead-letter list occupancy");
    pending_gauge_ = &m.gauge(
        "trustrate_pending_ratings",
        "Ratings routed into the current epoch but not yet processed");
    buffered_gauge_ = &m.gauge(
        "trustrate_buffered_ratings",
        "Accepted ratings still held by the reordering buffer");
    update_gauges();
  } else {
    ingest_submitted_ = nullptr;
    ingest_accepted_ = nullptr;
    ingest_reordered_ = nullptr;
    ingest_duplicates_ = nullptr;
    ingest_late_ = nullptr;
    ingest_malformed_ = nullptr;
    ingest_quarantined_ = nullptr;
    epochs_closed_metric_ = nullptr;
    epochs_degraded_metric_ = nullptr;
    epochs_skipped_empty_metric_ = nullptr;
    quarantine_size_gauge_ = nullptr;
    pending_gauge_ = nullptr;
    buffered_gauge_ = nullptr;
  }
}

void StreamingRatingSystem::update_gauges() {
  if (pending_gauge_ == nullptr) return;
  pending_gauge_->set(static_cast<double>(pending_ratings()));
  buffered_gauge_->set(static_cast<double>(ingest_.buffered()));
  quarantine_size_gauge_->set(static_cast<double>(ingest_.quarantine().size()));
}

}  // namespace trustrate::core
