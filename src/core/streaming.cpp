#include "core/streaming.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate::core {

StreamingRatingSystem::StreamingRatingSystem(SystemConfig config,
                                             double epoch_days,
                                             std::size_t retention_epochs,
                                             IngestConfig ingest)
    : system_(config), epoch_days_(epoch_days),
      retention_epochs_(retention_epochs), ingest_(ingest) {
  TRUSTRATE_EXPECTS(epoch_days > 0.0, "epoch length must be positive");
}

IngestClass StreamingRatingSystem::submit(const Rating& rating) {
  released_.clear();
  const IngestClass result = ingest_.submit(rating, released_);
  for (const Rating& r : released_) route(r);
  return result;
}

void StreamingRatingSystem::route(const Rating& rating) {
  if (!anchored_) {
    anchored_ = true;
    epoch_start_ = rating.time;
  }
  last_time_ = rating.time;

  // Close as many epochs as the stream has moved past. Only the first
  // close can carry data; once pending_ is empty the rest of the gap is
  // a fully empty span, which is skipped in O(1) instead of spinning one
  // close (and one EpochHealth entry) per elapsed epoch — a year-long gap
  // with a small epoch would otherwise close thousands of empty epochs.
  while (rating.time >= epoch_start_ + epoch_days_) {
    if (pending_.empty()) {
      fast_forward_empty_epochs(rating.time);
      break;
    }
    close_epoch(epoch_start_ + epoch_days_);
  }
  pending_[rating.product].push_back(rating);
}

void StreamingRatingSystem::fast_forward_empty_epochs(double now) {
  // now >= epoch_start_ + epoch_days_, so skip >= 1.
  auto skip = static_cast<std::size_t>((now - epoch_start_) / epoch_days_);
  epoch_start_ += static_cast<double>(skip) * epoch_days_;
  // Floating-point guards: land on the grid cell containing `now` even
  // when the multiply rounds the boundary across it.
  while (epoch_start_ > now) {
    epoch_start_ -= epoch_days_;
    --skip;
  }
  while (now >= epoch_start_ + epoch_days_) {
    epoch_start_ += epoch_days_;
    ++skip;
  }
  skipped_empty_epochs_ += skip;
}

std::size_t StreamingRatingSystem::flush() {
  released_.clear();
  ingest_.drain(released_);
  for (const Rating& r : released_) route(r);
  if (!anchored_ || pending_.empty()) return 0;
  const std::size_t products = pending_.size();
  close_epoch(std::max(last_time_ + 1e-9, epoch_start_ + epoch_days_));
  return products;
}

void StreamingRatingSystem::close_epoch(double epoch_end) {
  std::vector<ProductObservation> observations;
  observations.reserve(pending_.size());
  for (auto& [product, series] : pending_) {
    ProductObservation obs;
    obs.product = product;
    obs.t_start = epoch_start_;
    obs.t_end = epoch_end;
    obs.ratings = std::move(series);
    observations.push_back(std::move(obs));
  }
  pending_.clear();
  // Fixed product-ID order: the epoch pipeline (and the parallel engine's
  // merge) sees products in the same order on every run and platform, not
  // in hash-map iteration order.
  std::sort(observations.begin(), observations.end(),
            [](const ProductObservation& a, const ProductObservation& b) {
              return a.product < b.product;
            });

  EpochHealth health = EpochHealth::kHealthy;
  if (!observations.empty()) {
    const EpochReport report = system_.process_epoch(observations);
    if (report.detector_degraded) health = EpochHealth::kDegradedDetector;
    if (epoch_observer_) epoch_observer_(report, epoch_start_, epoch_end);
    for (auto& obs : observations) {
      Retained& r = retained_[obs.product];
      r.epochs.push_back(std::move(obs.ratings));
      if (r.epochs.size() > retention_epochs_) {
        r.epochs.erase(r.epochs.begin());
      }
    }
  }
  epoch_start_ = epoch_end;
  ++epochs_closed_;
  epoch_health_.push_back(health);
}

std::size_t StreamingRatingSystem::degraded_epochs() const {
  return static_cast<std::size_t>(
      std::count(epoch_health_.begin(), epoch_health_.end(),
                 EpochHealth::kDegradedDetector));
}

std::optional<double> StreamingRatingSystem::aggregate(ProductId product) const {
  RatingSeries all;
  if (const auto it = retained_.find(product); it != retained_.end()) {
    for (const RatingSeries& epoch : it->second.epochs) {
      all.insert(all.end(), epoch.begin(), epoch.end());
    }
  }
  if (const auto it = pending_.find(product); it != pending_.end()) {
    all.insert(all.end(), it->second.begin(), it->second.end());
  }
  if (all.empty()) return std::nullopt;
  return system_.aggregate(all);
}

std::size_t StreamingRatingSystem::pending_ratings() const {
  std::size_t n = 0;
  for (const auto& [product, series] : pending_) n += series.size();
  return n;
}

}  // namespace trustrate::core
