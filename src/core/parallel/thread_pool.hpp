// Fixed-size thread pool backing the parallel epoch engine (core/parallel).
//
// The pool starts its worker threads once and keeps them alive until
// destruction, so repeated per-epoch fan-outs (the streaming front-end
// closes an epoch every `epoch_days`) pay no thread-spawn cost. The only
// entry point is `parallel_for`, a blocking fork-join primitive: the
// calling thread participates as one worker, so a pool of W-1 threads
// yields W-way concurrency and a pool of 0 threads degenerates to a plain
// serial loop with no synchronization beyond function-call overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trustrate::core::parallel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is valid: parallel_for then runs entirely
  /// in the caller).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), blocking until all indices have
  /// executed. The caller participates, so total concurrency is
  /// threads() + 1. Indices are claimed dynamically from a shared ticket
  /// counter — *assignment* of index to thread is nondeterministic, so fn
  /// must write only to per-index state (slot i). The first exception
  /// thrown by fn is rethrown here after the join; remaining indices still
  /// run (there is no cancellation).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace trustrate::core::parallel
