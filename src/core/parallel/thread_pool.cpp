#include "core/parallel/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace trustrate::core::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for call: the ticket counter handing out
/// indices, a join latch over the helper tasks, and the first exception.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done;
  std::size_t live_helpers = 0;
  std::exception_ptr error;

  void run_shard() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        const std::lock_guard lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;  // caller blocks below, so the reference stays valid

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  state->live_helpers = helpers;
  if (helpers > 0) {
    {
      const std::lock_guard lock(mutex_);
      for (std::size_t i = 0; i < helpers; ++i) {
        queue_.push_back([state] {
          state->run_shard();
          const std::lock_guard lock(state->mutex);
          if (--state->live_helpers == 0) state->done.notify_one();
        });
      }
    }
    wake_.notify_all();
  }

  state->run_shard();  // the caller is a worker too
  {
    std::unique_lock lock(state->mutex);
    state->done.wait(lock, [&] { return state->live_helpers == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace trustrate::core::parallel
