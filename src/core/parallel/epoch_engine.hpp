// Deterministic sharded epoch engine — the parallel core of
// TrustEnhancedRatingSystem::process_epoch.
//
// Procedure 1 is embarrassingly parallel across objects: one product's beta
// filter pass, AR window sweep and suspicion accumulation read only that
// product's observation and the (immutable) pipeline configuration. The
// engine shards the per-product observations across a fixed ThreadPool and
// writes each ProductReport into the slot of its input observation.
//
// Determinism contract (DESIGN.md §8):
//  * analyze_product is a pure function of (observation, stage context) —
//    no RNG, no shared mutable state;
//  * shard *scheduling* is dynamic (ticket counter, load-balanced) and
//    therefore nondeterministic, but every result lands in its own output
//    slot, untouched by other workers;
//  * the caller (core/system.cpp) merges reports and trust-evidence deltas
//    in ascending input-slot order, so every floating-point accumulation
//    happens in exactly the order of the serial loop.
// Consequence: parallel output is bitwise-identical to the serial path at
// any worker count (covered by tests/parallel_test.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/system.hpp"

namespace trustrate::core::parallel {

class ThreadPool;

/// Read-only pipeline stages shared by every worker. The pointed-to objects
/// must outlive the analyze call; filter/detector are only dereferenced
/// when the corresponding SystemConfig stage is enabled.
struct StageContext {
  const SystemConfig* config = nullptr;
  const detect::BetaQuantileFilter* filter = nullptr;
  const detect::ArSuspicionDetector* detector = nullptr;
  /// Observability bundle (may be null, or hold null sinks). Trace sinks
  /// are thread-safe, so workers emit per-product spans concurrently;
  /// span *content* stays deterministic (name, epoch, product id), only
  /// timestamps vary. Strictly out-of-band — never read by the stages.
  const obs::Observability* obs = nullptr;
};

/// The per-product stage of process_epoch: rating filter → AR suspicion
/// detector (with the degraded-detector fallback of DESIGN.md §6) →
/// per-rating flags. Pure and thread-safe for concurrent calls on distinct
/// observations. Throws PreconditionError when the ratings are not
/// time-sorted.
ProductReport analyze_product(const ProductObservation& obs,
                              const StageContext& ctx);

/// Runs analyze_product over an epoch's observations, serial or sharded.
class EpochEngine {
 public:
  /// `workers` >= 1 is the total concurrency. A serial engine (workers ==
  /// 1) never starts a thread; otherwise workers − 1 pool threads are
  /// spawned (the calling thread is the extra worker).
  explicit EpochEngine(std::size_t workers);
  ~EpochEngine();

  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  /// Result slot i holds analyze_product(observations[i], ctx). Rethrows
  /// the first worker exception after all shards finish.
  std::vector<ProductReport> analyze(
      std::span<const ProductObservation> observations,
      const StageContext& ctx);

  std::size_t workers() const { return workers_; }

 private:
  std::size_t workers_;
  std::unique_ptr<ThreadPool> pool_;  ///< null for the serial engine
};

}  // namespace trustrate::core::parallel
