#include "core/parallel/epoch_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/parallel/thread_pool.hpp"

namespace trustrate::core::parallel {

ProductReport analyze_product(const ProductObservation& obs,
                              const StageContext& ctx) {
  const SystemConfig& config = *ctx.config;
  trustrate::obs::TraceSink* trace =
      ctx.obs != nullptr ? ctx.obs->trace : nullptr;
  TRUSTRATE_EXPECTS(is_time_sorted(obs.ratings),
                    "product ratings must be time-sorted");
  ProductReport pr;
  pr.product = obs.product;

  // Feature extraction I: the rating filter.
  {
    const trustrate::obs::SpanTimer span(trace, "product.filter", 0,
                                         static_cast<std::int64_t>(obs.product));
    if (config.enable_filter) {
      pr.filter_outcome = ctx.filter->filter(obs.ratings);
    } else {
      pr.filter_outcome = detect::NullFilter{}.filter(obs.ratings);
    }
    pr.kept = pr.filter_outcome.kept_series(obs.ratings);
  }

  // Feature extraction II: Procedure 1. A degenerate detector pass (fit
  // failure, or every window too short for the normal equations) must not
  // take the epoch down: the product degrades to the beta-filter-only
  // path and is flagged (DESIGN.md §6).
  const RatingSeries& detector_input =
      config.detector_on_filtered ? pr.kept : obs.ratings;
  if (config.enable_ar_detector) {
    const trustrate::obs::SpanTimer span(trace, "product.ar_detect", 0,
                                         static_cast<std::int64_t>(obs.product));
    try {
      pr.suspicion =
          ctx.detector->analyze(detector_input, obs.t_start, obs.t_end);
      const bool any_evaluated = std::any_of(
          pr.suspicion.windows.begin(), pr.suspicion.windows.end(),
          [](const detect::WindowReport& w) { return w.evaluated; });
      if (!detector_input.empty() && !any_evaluated) {
        pr.detector_degraded = true;
      }
    } catch (const Error&) {
      pr.suspicion = {};
      pr.suspicion.in_suspicious_window.assign(detector_input.size(), false);
      pr.detector_degraded = true;
    }
  } else {
    pr.suspicion.in_suspicious_window.assign(detector_input.size(), false);
  }

  // Per-rating flags over the *input* series: filtered or suspicious.
  pr.flagged.assign(obs.ratings.size(), false);
  for (std::size_t i : pr.filter_outcome.removed) pr.flagged[i] = true;
  for (std::size_t k = 0; k < detector_input.size(); ++k) {
    if (!pr.suspicion.in_suspicious_window[k]) continue;
    pr.flagged[config.detector_on_filtered ? pr.filter_outcome.kept[k] : k] =
        true;
  }
  return pr;
}

EpochEngine::EpochEngine(std::size_t workers) : workers_(workers) {
  TRUSTRATE_EXPECTS(workers >= 1, "epoch engine needs at least one worker");
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers - 1);
}

EpochEngine::~EpochEngine() = default;

std::vector<ProductReport> EpochEngine::analyze(
    std::span<const ProductObservation> observations, const StageContext& ctx) {
  std::vector<ProductReport> reports(observations.size());
  if (!pool_ || observations.size() < 2) {
    for (std::size_t i = 0; i < observations.size(); ++i) {
      reports[i] = analyze_product(observations[i], ctx);
    }
    return reports;
  }
  pool_->parallel_for(observations.size(), [&](std::size_t i) {
    reports[i] = analyze_product(observations[i], ctx);
  });
  return reports;
}

}  // namespace trustrate::core::parallel
