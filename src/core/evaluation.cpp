#include "core/evaluation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate::core {

std::vector<RocPoint> roc_curve(
    const std::vector<double>& thresholds,
    const std::function<DetectionMetrics(double)>& score_at) {
  TRUSTRATE_EXPECTS(static_cast<bool>(score_at), "score_at must be callable");
  std::vector<RocPoint> points;
  points.reserve(thresholds.size());
  for (double t : thresholds) {
    const DetectionMetrics m = score_at(t);
    points.push_back({t, m.detection_ratio(), m.false_alarm_ratio()});
  }
  return points;
}

double roc_auc(std::vector<RocPoint> points) {
  TRUSTRATE_EXPECTS(!points.empty(), "AUC needs at least one point");
  points.push_back({0.0, 0.0, 0.0});
  points.push_back({0.0, 1.0, 1.0});
  std::sort(points.begin(), points.end(),
            [](const RocPoint& a, const RocPoint& b) {
              if (a.false_alarm != b.false_alarm) {
                return a.false_alarm < b.false_alarm;
              }
              return a.detection < b.detection;
            });
  double auc = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dx = points[i].false_alarm - points[i - 1].false_alarm;
    auc += dx * 0.5 * (points[i].detection + points[i - 1].detection);
  }
  return std::clamp(auc, 0.0, 1.0);
}

RocPoint best_youden(const std::vector<RocPoint>& points) {
  TRUSTRATE_EXPECTS(!points.empty(), "best_youden needs a non-empty curve");
  return *std::max_element(points.begin(), points.end(),
                           [](const RocPoint& a, const RocPoint& b) {
                             return (a.detection - a.false_alarm) <
                                    (b.detection - b.false_alarm);
                           });
}

}  // namespace trustrate::core
