// Environmental-fault sweep oracle (ISSUE 6 tentpole, testing side).
//
// The crash sweep (testkit/crash.hpp) proves recovery over every byte-exact
// process death. This harness proves the orthogonal contract of the fault
// layer and the degradation ladder (core/durable/fault.hpp): under any
// seeded plan of environmental faults — ENOSPC, EIO, EINTR, short writes,
// fsync failures, rename failures, read corruption — that eventually heals,
// the durable stream must end bitwise identical to a fault-free run:
//
//   1. a fault-free reference run records the final state digest (the
//      serialized checkpoint bytes of the in-memory stream) and the
//      detection-audit digest (quarantine/suspicion/trust events — the
//      semantic record; durability-transition events are infrastructure
//      and legitimately differ between runs);
//   2. for each seed, the same run repeats with a FaultInjector driving a
//      generated FaultPlan through every durable write/fsync/rename/read.
//      Faults never surface to the client: submissions stay acknowledged,
//      the ladder degrades and heals, and the run completes;
//   3. final state digest and detection-audit digest must equal the
//      reference's byte for byte; once the plan is exhausted (environment
//      healed) the stream must be back on the durable rung with
//      durable_acknowledged() == acknowledged(), and a cold re-open of the
//      directory must rebuild the identical state from disk.
//
// With `with_crashes` set, each fault plan is additionally composed with
// the byte-budget crash sweep: the "process" dies at sampled budgets while
// the environment is faulty, recovery runs under the *continuing* fault
// plan, and the resumed run must still converge to the reference digest.
// The loss check uses durable_acknowledged(): acknowledgements issued in
// degraded mode are soft (the backlog dies with the process) and the
// client re-submits from the durable cursor.
//
// On failure the run directory is left behind and, when `audit_artifact`
// is set, the full audit trail (durability transitions included) is
// written there as JSONL — the nightly CI job uploads it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/durable/fault.hpp"
#include "core/durable/wal.hpp"
#include "testkit/scenario.hpp"

namespace trustrate::testkit {

struct FaultSweepOptions {
  /// Seeded fault plans to sweep; plan i uses seed
  /// plan_seed_base + 1000003 * scenario.seed + i.
  std::size_t plans = 8;
  std::uint64_t plan_seed_base = 0;
  /// Knobs for FaultPlan::generate (events, horizon, burst length).
  core::durable::FaultPlanOptions plan;
  core::durable::FsyncPolicy fsync = core::durable::FsyncPolicy::kEpoch;
  /// Checkpoint cadence of every run (same as the crash sweep's knob).
  std::size_t checkpoint_every = 64;
  /// DurableOptions::heal_probe_every of the fault runs.
  std::size_t heal_probe_every = 8;
  /// Compose each fault plan with byte-budget crashes (phase 2 recovery
  /// continues under the same fault plan).
  bool with_crashes = false;
  std::uint64_t crash_stride = 997;
  std::uint64_t crash_first = 1;
  /// On failure, the failing run's full audit trail is written here as
  /// JSONL (empty = skip).
  std::filesystem::path audit_artifact;
};

struct FaultSweepResult {
  bool ok = true;
  std::string divergence;  ///< empty when ok; names plan seed (and budget)
  std::size_t plans_run = 0;
  std::size_t healed_plans = 0;  ///< plans whose injector was exhausted
  std::uint64_t faults_injected = 0;
  std::uint64_t degradations = 0;  ///< ladder entries observed (audit)
  std::uint64_t heals = 0;         ///< restorations observed (audit)
  std::size_t crash_points = 0;    ///< composed mode: budgets that crashed
  std::size_t clean_points = 0;    ///< composed mode: budgets outlived
};

/// Runs the sweep for `scenario` under `dir` (created; wiped per run;
/// removed on success, left behind on failure as a repro artifact).
FaultSweepResult run_fault_sweep(const Scenario& scenario,
                                 const std::filesystem::path& dir,
                                 const FaultSweepOptions& options = {});

}  // namespace trustrate::testkit
