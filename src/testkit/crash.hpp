// Crash-point recovery sweep (ISSUE 4 tentpole, testing side).
//
// The durability layer's contract is byte-granular: kill the process after
// any prefix of its durable writes and recovery must rebuild a system that
// is bitwise-identical to the uninterrupted run, with every acknowledged
// rating intact. This harness proves that by brute force:
//
//   1. an uninterrupted reference run over the scenario's perturbed
//      arrivals (WAL + periodic on-disk checkpoints) records the final
//      checkpoint bytes and, via an unarmed CrashInjector, the total
//      number of durable bytes B the run produces;
//   2. for crash budgets k sampled over [0, B] (stride-sampled — B is tens
//      of thousands of bytes), the same run is repeated with the injector
//      armed at k: the process "dies" (CrashInjected) after exactly k
//      durable bytes, mid-frame, mid-checkpoint, between write and fsync,
//      before or after a rename — wherever k lands;
//   3. a fresh DurableStream recovers the directory, the client resumes
//      submitting at `acknowledged()` (its exactly-once cursor), and the
//      completed run's final checkpoint must equal the reference's
//      byte-for-byte. Any acknowledged-but-lost rating, torn state, or
//      replay divergence shows up as a byte diff or a thrown error.
//
// Used by tests/durability_test.cpp (fixed seeds + stride in CI, a
// date-seeded densely-strided sweep nightly under ASan).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/durable/wal.hpp"
#include "testkit/scenario.hpp"

namespace trustrate::testkit {

struct CrashSweepOptions {
  /// Take an on-disk checkpoint after every this-many acknowledged
  /// submissions (also exercises pruning; 0 disables mid-run checkpoints).
  std::size_t checkpoint_every = 64;
  /// Fsync policy of both the reference and the crashing runs (barrier
  /// operations consult the injector, so the policy shifts where budgets
  /// land).
  core::durable::FsyncPolicy fsync = core::durable::FsyncPolicy::kEpoch;
  /// Distance between sampled crash budgets; 1 sweeps every byte.
  std::uint64_t stride = 97;
  /// Offset of the first sampled budget (vary to cover different residues).
  std::uint64_t first = 1;
};

struct CrashSweepResult {
  bool ok = true;
  std::string divergence;  ///< empty when ok; names the failing budget k
  std::uint64_t total_bytes = 0;   ///< durable bytes of the reference run
  std::size_t crash_points = 0;    ///< budgets that actually crashed
  std::size_t clean_points = 0;    ///< budgets the run outlived (k >= B)
};

/// Runs the sweep for `scenario` under `dir` (created; wiped per budget;
/// removed on success, left behind on failure as a repro artifact).
CrashSweepResult run_crash_sweep(const Scenario& scenario,
                                 const std::filesystem::path& dir,
                                 const CrashSweepOptions& options = {});

}  // namespace trustrate::testkit
