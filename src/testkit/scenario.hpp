// Deterministic conformance-scenario generation (ISSUE 3 tentpole).
//
// A Scenario is everything the differential oracle (testkit/oracle.hpp)
// needs to exercise the full pipeline end-to-end, derived from a single
// uint64 seed via common/rng: a pipeline configuration, a clean time-sorted
// rating stream composing the paper's attack models (§IV/§V: honest
// baselines, sustained bias shifts, tight collusive bursts, churned shill
// identities, large empty-epoch gaps), and a *perturbation plan* of
// transport faults (in-bound reorder, retries, stale and malformed junk)
// that core/ingest must repair or reject without changing the outcome.
//
// Two generator guarantees make the metamorphic relations in
// testkit/metamorphic.hpp *bitwise* statements rather than tolerances:
//
//  * every event time is a multiple of kTimeGrid (2^-10 days) and small
//    enough that all boundary arithmetic in the pipeline (epoch grid,
//    watermark, AR window grid) stays exact — so a global integer time
//    shift changes no comparison outcome anywhere;
//  * event times are globally *strictly increasing*, so no tie-break ever
//    depends on rater or product IDs and relabeling either is outcome-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/ingest.hpp"
#include "core/system.hpp"

namespace trustrate::testkit {

/// All generated event times are multiples of this grid (2^-10 days).
inline constexpr double kTimeGrid = 1.0 / 1024.0;

/// Attack model composed per product (paper §IV marketplace + §V study).
enum class AttackModel : std::uint8_t {
  kHonestBaseline = 0,  ///< reliable + careless raters only
  kBiasShift,           ///< sustained moderate-bias collaborative stream
  kBurstCluster,        ///< tight low-variance collusive burst in one epoch
  kChurnRecruits,       ///< burst with fresh shill identities every epoch
};

const char* to_string(AttackModel model);

/// A clean rating `from` (index into Scenario::ratings) whose *arrival* is
/// displaced to immediately after index `to` (from < to). The pair is
/// constructed so t[to] - t[from] <= max_lateness_days, i.e. the ingest
/// layer must repair it; `exactly_at_bound` marks pairs with equality —
/// the rating arrives with its event time exactly on the watermark.
struct Displacement {
  std::size_t from = 0;
  std::size_t to = 0;
  bool exactly_at_bound = false;
};

/// Deterministic transport-fault plan applied by make_arrivals. Every entry
/// is constructed so the ingest layer provably accepts the same rating set
/// as the clean stream: moves are within the lateness bound, retries and
/// horizon_retries are exact duplicates, stale and malformed junk is
/// guaranteed to be dropped/quarantined.
struct PerturbationPlan {
  std::vector<Displacement> moves;
  /// Clean indices resubmitted verbatim immediately after the original
  /// (client retry): classified kDuplicate.
  std::vector<std::size_t> retries;
  /// `from` indices of exactly_at_bound moves additionally resubmitted
  /// right after arrival — the duplicate key sits exactly on the dedup
  /// horizon (time == watermark) and must still be recognized.
  std::vector<std::size_t> horizon_retries;
  std::size_t stale = 0;      ///< junk behind the watermark: kLate
  std::size_t malformed = 0;  ///< non-finite / out-of-range junk: kMalformed
};

/// One generated conformance scenario. `ratings` is the clean stream:
/// time-sorted, strictly increasing grid-aligned times, labelled ground
/// truth. config.epoch_workers is always 1 (the oracle varies it).
struct Scenario {
  std::uint64_t seed = 0;
  core::SystemConfig config;
  double epoch_days = 30.0;
  std::size_t retention_epochs = 2;
  core::IngestConfig ingest;
  RatingSeries ratings;
  std::vector<AttackModel> product_attacks;  ///< indexed by ProductId
  /// Indices of at-bound pairs prepared by the generator (event times were
  /// adjusted so t[to] - t[from] == max_lateness_days exactly).
  std::vector<Displacement> at_bound_pairs;
  /// Fraction of the clean stream submitted before the mid-run checkpoint.
  double checkpoint_cut = 0.5;
  /// Number of fully-empty epochs the generator's timeline gap spans (the
  /// streaming fast-forward path is exercised whenever this is > 0).
  std::size_t gap_epochs = 0;
  std::string summary;  ///< one-line description for failure messages
};

/// Builds the scenario for `seed`. Deterministic: equal seeds produce
/// byte-identical scenarios on every platform with the same libstdc++
/// distributions (the repo-wide reproducibility assumption).
Scenario make_scenario(std::uint64_t seed);

/// The perturbed arrival sequence for a scenario plus the plan that built
/// it. Deterministic from scenario.seed. When ingest.max_lateness_days is 0
/// the plan contains no moves (any reorder would be dropped late).
struct ArrivalPlan {
  RatingSeries arrivals;
  PerturbationPlan plan;
};

ArrivalPlan make_arrivals(const Scenario& scenario);

/// Reference reimplementation of the core/ingest classification semantics
/// (validation -> watermark lateness -> duplicate horizon), independent of
/// IngestBuffer: the differential oracle checks the real stats against
/// these. `accepted_sorted` is the accepted multiset in time order.
struct ShadowIngestOutcome {
  core::IngestStats stats;
  RatingSeries accepted_sorted;
};

ShadowIngestOutcome shadow_ingest(const RatingSeries& arrivals,
                                  const core::IngestConfig& config);

}  // namespace trustrate::testkit
