// Canonical textual digests of pipeline outcomes (ISSUE 3 tentpole).
//
// The differential oracle and the metamorphic relations compare runs by
// digest strings: every double is rendered as a C hexfloat, so two digests
// are equal iff the underlying state is *bitwise* equal — "same verdict" is
// an equality on bits, never a tolerance. Options let a relation exclude
// exactly the fields its transform legitimately changes (absolute times
// under a global time shift) or map relabeled IDs back to the originals
// before rendering (rater/product relabeling invariance).
#pragma once

#include <string>
#include <unordered_map>

#include "core/system.hpp"
#include "trust/record.hpp"

namespace trustrate::testkit {

/// Renders a double as a C hexfloat ("%a"): bit-exact round-trip, readable
/// NaN/inf. The same convention as core/checkpoint.
std::string hex_double(double x);

/// ID translation applied before rendering/sorting. nullptr = identity; a
/// present map must cover every ID encountered (unmapped IDs keep their
/// value, which makes partial maps detectable as digest mismatches).
struct ReportDigestOptions {
  /// Include absolute times (window boundaries, kept-rating timestamps).
  /// Off for the global-time-shift relation, whose transform moves them.
  bool include_times = true;
  /// Render products sorted by (mapped) product ID instead of report
  /// order. On for the product-relabeling relation, where the epoch's
  /// product sort order legitimately changes.
  bool canonical_product_order = false;
  const std::unordered_map<ProductId, ProductId>* product_map = nullptr;
  const std::unordered_map<RaterId, RaterId>* rater_map = nullptr;
};

/// Canonical digest of one epoch's full outcome: per-product filter
/// verdicts, kept series, per-rating flags, AR window sweep (model errors,
/// levels, suspicion flags), per-rater suspicious values C(i), and the
/// epoch's confusion counts.
std::string digest_report(const core::EpochReport& report,
                          const ReportDigestOptions& options = {});

/// Canonical digest of the full trust store: raters sorted by (mapped) ID
/// with hexfloat S/F evidence.
std::string digest_trust(
    const trust::TrustStore& store,
    const std::unordered_map<RaterId, RaterId>* rater_map = nullptr);

/// FNV-1a of a digest string, for compact failure messages.
std::uint64_t fnv1a(const std::string& text);

}  // namespace trustrate::testkit
