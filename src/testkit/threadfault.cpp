#include "testkit/threadfault.hpp"

#include <chrono>
#include <thread>

namespace trustrate::testkit {

namespace {

/// splitmix64 — the testkit's shared deterministic scrambler.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(ThreadFaultKind kind) {
  switch (kind) {
    case ThreadFaultKind::kThrow: return "throw";
    case ThreadFaultKind::kStall: return "stall";
    case ThreadFaultKind::kSlow:  return "slow";
  }
  return "unknown";
}

ThreadFaultPlan ThreadFaultPlan::generate(std::uint64_t seed,
                                          std::size_t shards) {
  std::uint64_t state = seed;
  ThreadFaultPlan plan;
  plan.shard = shards == 0 ? 0 : mix(state) % shards;
  // Early ordinals: every shard reaches a handful of events in any
  // non-trivial stream, so the fault reliably fires.
  plan.at_ordinal = mix(state) % 24;
  switch (mix(state) % 3) {
    case 0: plan.kind = ThreadFaultKind::kThrow; break;
    case 1: plan.kind = ThreadFaultKind::kStall; break;
    default: plan.kind = ThreadFaultKind::kSlow; break;
  }
  // Slow faults stay short; stalls run long enough for any sane watchdog
  // budget to classify them first, but still bounded.
  plan.slices = plan.kind == ThreadFaultKind::kSlow ? 3 : 2000;
  return plan;
}

std::string ThreadFaultPlan::summary() const {
  return std::string(to_string(kind)) + " on shard " + std::to_string(shard) +
         " at event ordinal " + std::to_string(at_ordinal) + " (" +
         std::to_string(slices) + " slice bound)";
}

core::shard::ShardEventHook ThreadFaultInjector::hook() {
  return [this](const core::shard::ShardEventContext& ctx) {
    if (ctx.shard != plan_.shard || ctx.ordinal != plan_.at_ordinal) return;
    if (fired_.exchange(true, std::memory_order_acq_rel)) return;
    switch (plan_.kind) {
      case ThreadFaultKind::kThrow:
        throw InjectedThreadFault("injected crash: " + plan_.summary());
      case ThreadFaultKind::kStall:
        // Bounded cooperative stall: the watchdog classifies the shard as
        // stalled (inbox non-empty, no progress), sets the abort flag, and
        // the throw below routes the stall through the poison path. With
        // no watchdog the loop simply expires and the worker continues.
        for (std::uint64_t slice = 0; slice < plan_.slices; ++slice) {
          if (ctx.abort != nullptr &&
              ctx.abort->load(std::memory_order_acquire)) {
            aborted_.store(true, std::memory_order_release);
            throw InjectedThreadFault("injected stall aborted by watchdog: " +
                                      plan_.summary());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return;
      case ThreadFaultKind::kSlow:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<long long>(plan_.slices)));
        return;
    }
  };
}

}  // namespace trustrate::testkit
