// Metamorphic relation suite (ISSUE 3 tentpole).
//
// Each relation applies a transform to a generated scenario whose effect on
// the pipeline output is known exactly, runs both versions, and compares
// digests *bitwise* (testkit/digest.hpp). The generator guarantees in
// testkit/scenario.hpp (grid-aligned, strictly increasing event times) are
// what make these equalities rather than tolerances:
//
//  * rater-ID relabeling — a bijective renaming of all rater IDs permutes
//    the trust store and the per-rater suspicion maps and changes nothing
//    else;
//  * product-ID relabeling — renaming products permutes each epoch's
//    product reports (the epoch loop orders products by ID) and changes no
//    verdict, no C(i), and no trust record;
//  * global time shift — adding a whole number of grid days to every event
//    time shifts window/epoch boundaries by exactly that amount and changes
//    no comparison outcome anywhere;
//  * duplicate-submission idempotence — submitting every rating twice
//    changes only the duplicate counter.
#pragma once

#include "testkit/scenario.hpp"

namespace trustrate::testkit {

struct MetamorphicResult {
  bool ok = true;
  std::string violation;  ///< empty when ok; includes seed + repro command
};

MetamorphicResult check_rater_relabel(const Scenario& scenario);
MetamorphicResult check_product_relabel(const Scenario& scenario);
MetamorphicResult check_time_shift(const Scenario& scenario);
MetamorphicResult check_duplicate_idempotence(const Scenario& scenario);

/// Runs all four relations; returns the first violation.
MetamorphicResult run_metamorphic(const Scenario& scenario);

}  // namespace trustrate::testkit
