// Differential conformance oracle (ISSUE 3 tentpole).
//
// One generated scenario (testkit/scenario.hpp) is pushed through every
// execution path the system promises is equivalent:
//
//   1. the batch epoch loop — an independent reimplementation of the
//      streaming epoch partition (anchor at first rating, fixed grid,
//      empty-gap fast-forward) driving TrustEnhancedRatingSystem directly;
//   2. StreamingRatingSystem on the clean, sorted stream;
//   3. StreamingRatingSystem on the *perturbed* arrival sequence (in-bound
//      reorder, retries, stale/malformed junk) that core/ingest must repair;
//   4. a mid-stream checkpoint/restore (optionally down-converted to the
//      v1 format first) resumed at a different worker count;
//   5. the parallel epoch engine at 2 and 4 workers;
//   6. the durable front-end (core/durable): WAL + on-disk atomic
//      checkpoint, live and after a cold recovery (restore + replay);
//   7. the AR detector's incremental covariance path vs a from-scratch fit;
//   8. the sharded engine (core/shard) at shard counts {1, 2, 4, 7} ×
//      worker counts {1, 2}, inline and threaded, including a mid-stream
//      v4 checkpoint resumed at a DIFFERENT shard count and a v3
//      (pre-shard) checkpoint loaded into a sharded system;
//   9. the threaded sharded durable front-end with a seeded worker crash
//      (testkit/threadfault.hpp): the stream must contain the crash,
//      heal from checkpoint + per-shard WAL replay (DESIGN.md §15), and
//      land bitwise-identical to the fault-free serial run — live and
//      after a cold reopen of the healed directory.
//
// All paths must agree *bitwise*: per-epoch reports (model errors, levels,
// suspicious values C(i)), trust records, and — where the comparison is
// meaningful — whole checkpoint byte strings. Ingestion statistics of the
// perturbed path are checked against an independent shadow classifier and
// the perturbation plan's exact expected counts (duplicates, late drops,
// malformed, quarantine cap).
#pragma once

#include <unordered_map>

#include "core/streaming.hpp"
#include "testkit/digest.hpp"
#include "testkit/scenario.hpp"

namespace trustrate::testkit {

/// Mid-run checkpoint/restore plan for run_stream: after `cut_index`
/// arrivals the state is serialized (optionally rewritten as a version-1
/// checkpoint) and restored into a fresh system with `resume_workers`.
struct CheckpointPlan {
  std::size_t cut_index = 0;
  bool downconvert_v1 = false;
  std::size_t resume_workers = 1;
};

/// Everything comparable about one streaming run.
struct StreamOutcome {
  std::vector<std::string> epoch_digests;  ///< one per closed epoch, in order
  std::string trust_digest;
  std::string checkpoint;                  ///< final serialized state
  core::IngestStats stats;
  std::vector<core::EpochHealth> health;
  std::size_t epochs_closed = 0;
  std::size_t skipped_empty_epochs = 0;
  std::size_t quarantine_size = 0;
};

/// Runs the scenario's pipeline over `arrivals` with the given worker
/// count, capturing per-epoch report digests via the epoch observer.
/// `digest_options`/`trust_map` configure digest rendering (metamorphic
/// relations map relabeled IDs back before comparing).
StreamOutcome run_stream(
    const Scenario& scenario, const RatingSeries& arrivals,
    std::size_t workers, const CheckpointPlan* plan = nullptr,
    const ReportDigestOptions& digest_options = {},
    const std::unordered_map<RaterId, RaterId>* trust_map = nullptr);

/// Outcome of the independent batch reference loop.
struct BatchOutcome {
  std::vector<std::string> epoch_digests;
  std::string trust_digest;
  std::size_t epochs_processed = 0;
  std::size_t skipped_empty_epochs = 0;
};

BatchOutcome run_batch_reference(const Scenario& scenario);

/// Mid-run checkpoint/resume plan for run_sharded: after `cut_index`
/// arrivals the sharded state is serialized (v4, or collapsed to the v3
/// pre-shard format when `via_v3`) and restored into a fresh sharded
/// system with `resume_shards` shards.
struct ShardPlan {
  std::size_t cut_index = 0;
  std::size_t resume_shards = 1;
  bool resume_threaded = false;
  /// Write the cut checkpoint in the v3 (unsharded) format — exercises the
  /// pre-shard-checkpoint-into-sharded-system compatibility path.
  bool via_v3 = false;
};

/// Runs the scenario's pipeline through the sharded engine (core/shard)
/// at the given shard/worker counts, capturing the same outcome fields as
/// run_stream (the final `checkpoint` is rendered in the v3 global format
/// so it compares byte-for-byte against a plain stream's).
StreamOutcome run_sharded(const Scenario& scenario,
                          const RatingSeries& arrivals, std::size_t shards,
                          std::size_t workers, bool threaded,
                          const ShardPlan* plan = nullptr);

/// Replaces the ingest-statistics line and the quarantine block (and, for
/// v3 checkpoints, the checksums covering them) with placeholders: the
/// perturbed path legitimately differs from the clean path in exactly
/// these (and nothing else).
std::string strip_ingest_noise(const std::string& checkpoint_text);

/// Replaces the skipped-empty-epoch counter in the anchor line (and the
/// v3 checksums covering it) with a placeholder (a v1-migrated run loses
/// the counter's pre-cut value).
std::string normalize_skipped_counter(const std::string& checkpoint_text);

/// Rewrites a current-version checkpoint as the v1 wire format (header
/// version 1, no skipped-empty-epoch token, no checksum lines, no
/// quarantine detail token) for migration testing.
std::string downconvert_checkpoint_v1(const std::string& checkpoint_text);

struct DifferentialResult {
  bool ok = true;
  std::string divergence;  ///< empty when ok; includes seed + repro command
};

/// The full oracle: streaming vs batch reference, parallel worker counts,
/// perturbed ingest, checkpoint resume/migration, the durable front-end,
/// and — because the AR detector's incremental and from-scratch covariance
/// paths promise bitwise-identical models — a run with
/// `ArDetectorConfig::incremental` flipped, compared digest-for-digest and
/// checkpoint-byte-for-byte against the base run.
DifferentialResult run_differential(const Scenario& scenario);

/// One-line command replaying `seed` (printed on every divergence).
std::string repro_command(std::uint64_t seed);

}  // namespace trustrate::testkit
