#include "testkit/digest.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace trustrate::testkit {
namespace {

template <typename Id>
Id mapped(Id id, const std::unordered_map<Id, Id>* map) {
  if (map == nullptr) return id;
  const auto it = map->find(id);
  return it == map->end() ? id : it->second;
}

void append_product(std::ostringstream& out, const core::ProductReport& pr,
                    const ReportDigestOptions& opt) {
  out << "product " << mapped(pr.product, opt.product_map)
      << " degraded " << pr.detector_degraded << '\n';
  out << "kept";
  for (const std::size_t i : pr.filter_outcome.kept) out << ' ' << i;
  out << "\nremoved";
  for (const std::size_t i : pr.filter_outcome.removed) out << ' ' << i;
  out << "\nflagged";
  for (const bool f : pr.flagged) out << ' ' << f;
  out << "\nseries";
  for (const Rating& r : pr.kept) {
    out << ' ' << mapped(r.rater, opt.rater_map) << ':' << hex_double(r.value);
    if (opt.include_times) out << '@' << hex_double(r.time);
  }
  out << "\nwindows";
  for (const detect::WindowReport& w : pr.suspicion.windows) {
    out << ' ' << w.first << '-' << w.last << '/' << w.evaluated << '/'
        << w.suspicious << '/' << hex_double(w.model_error) << '/'
        << hex_double(w.level);
    if (opt.include_times) {
      out << '/' << hex_double(w.window.start) << '/' << hex_double(w.window.end);
    }
  }
  out << "\nin_window";
  for (const bool b : pr.suspicion.in_suspicious_window) out << ' ' << b;
  out << "\nsuspicion";
  std::vector<std::pair<RaterId, double>> suspicion(
      pr.suspicion.suspicion.begin(), pr.suspicion.suspicion.end());
  for (auto& [rater, c] : suspicion) rater = mapped(rater, opt.rater_map);
  std::sort(suspicion.begin(), suspicion.end());
  for (const auto& [rater, c] : suspicion) {
    out << ' ' << rater << ':' << hex_double(c);
  }
  out << '\n';
}

}  // namespace

std::string hex_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  return buf;
}

std::string digest_report(const core::EpochReport& report,
                          const ReportDigestOptions& options) {
  std::ostringstream out;
  out << "epoch degraded " << report.detector_degraded << " metrics "
      << report.rating_metrics.true_positive << ' '
      << report.rating_metrics.false_positive << ' '
      << report.rating_metrics.false_negative << ' '
      << report.rating_metrics.true_negative << '\n';
  if (options.canonical_product_order) {
    std::vector<const core::ProductReport*> order;
    order.reserve(report.products.size());
    for (const core::ProductReport& pr : report.products) order.push_back(&pr);
    std::sort(order.begin(), order.end(),
              [&](const core::ProductReport* a, const core::ProductReport* b) {
                return mapped(a->product, options.product_map) <
                       mapped(b->product, options.product_map);
              });
    for (const core::ProductReport* pr : order) {
      append_product(out, *pr, options);
    }
  } else {
    for (const core::ProductReport& pr : report.products) {
      append_product(out, pr, options);
    }
  }
  return out.str();
}

std::string digest_trust(
    const trust::TrustStore& store,
    const std::unordered_map<RaterId, RaterId>* rater_map) {
  std::vector<std::pair<RaterId, const trust::TrustRecord*>> records;
  records.reserve(store.records().size());
  for (const auto& [id, record] : store.records()) {
    records.emplace_back(mapped(id, rater_map), &record);
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream out;
  for (const auto& [id, record] : records) {
    out << id << ' ' << hex_double(record->successes) << ' '
        << hex_double(record->failures) << '\n';
  }
  return out.str();
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace trustrate::testkit
