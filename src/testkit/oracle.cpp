#include "testkit/oracle.hpp"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/checkpoint.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/durable/sharded_durable.hpp"
#include "core/shard/sharded_system.hpp"
#include "testkit/threadfault.hpp"

namespace trustrate::testkit {
namespace {

std::string stats_to_string(const core::IngestStats& s) {
  std::ostringstream out;
  out << "submitted=" << s.submitted << " accepted=" << s.accepted
      << " reordered=" << s.reordered << " duplicates=" << s.duplicates
      << " dropped_late=" << s.dropped_late << " malformed=" << s.malformed
      << " quarantined=" << s.quarantined;
  return out.str();
}

/// Rewrites one checkpoint line per `edit`; lines are matched by prefix.
template <typename Edit>
std::string rewrite_lines(const std::string& text, Edit edit) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    edit(in, out, line);
  }
  return out.str();
}

bool starts_with(const std::string& line, const char* prefix) {
  return line.rfind(prefix, 0) == 0;
}

}  // namespace

StreamOutcome run_stream(
    const Scenario& scenario, const RatingSeries& arrivals,
    std::size_t workers, const CheckpointPlan* plan,
    const ReportDigestOptions& digest_options,
    const std::unordered_map<RaterId, RaterId>* trust_map) {
  core::SystemConfig config = scenario.config;
  config.epoch_workers = workers;
  core::StreamingRatingSystem stream(config, scenario.epoch_days,
                                     scenario.retention_epochs,
                                     scenario.ingest);

  StreamOutcome out;
  const auto observer = [&out, &digest_options](const core::EpochReport& report,
                                                double, double) {
    out.epoch_digests.push_back(digest_report(report, digest_options));
  };
  stream.set_epoch_observer(observer);

  // The restored system must live as long as the loop; `active` points at
  // whichever instance is currently consuming the stream.
  std::optional<core::StreamingRatingSystem> resumed;
  core::StreamingRatingSystem* active = &stream;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (plan != nullptr && i == plan->cut_index) {
      std::ostringstream bytes;
      core::save_checkpoint(*active, bytes);
      std::string text = bytes.str();
      if (plan->downconvert_v1) text = downconvert_checkpoint_v1(text);
      core::SystemConfig resume_config = scenario.config;
      resume_config.epoch_workers = plan->resume_workers;
      std::istringstream in(text);
      resumed.emplace(core::load_checkpoint(in, resume_config));
      resumed->set_epoch_observer(observer);
      active = &*resumed;
    }
    active->submit(arrivals[i]);
  }
  active->flush();

  out.trust_digest = digest_trust(active->system().trust_store(), trust_map);
  std::ostringstream final_bytes;
  core::save_checkpoint(*active, final_bytes);
  out.checkpoint = final_bytes.str();
  out.stats = active->ingest_stats();
  out.health = active->epoch_health();
  out.epochs_closed = active->epochs_closed();
  out.skipped_empty_epochs = active->skipped_empty_epochs();
  out.quarantine_size = active->quarantine().size();
  return out;
}

StreamOutcome run_sharded(const Scenario& scenario,
                          const RatingSeries& arrivals, std::size_t shards,
                          std::size_t workers, bool threaded,
                          const ShardPlan* plan) {
  core::SystemConfig config = scenario.config;
  config.epoch_workers = workers;
  core::shard::ShardOptions options;
  options.shards = shards;
  options.threaded = threaded;
  auto system = std::make_unique<core::shard::ShardedRatingSystem>(
      config, options, scenario.epoch_days, scenario.retention_epochs,
      scenario.ingest);

  StreamOutcome out;
  // In threaded mode the observer fires on the merge thread; reads below
  // happen after flush()/queries quiesce, which orders them after every
  // merge the coordinator issued.
  const auto observer = [&out](const core::EpochReport& report, double,
                               double) {
    out.epoch_digests.push_back(digest_report(report, {}));
  };
  system->set_epoch_observer(observer);

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (plan != nullptr && i == plan->cut_index) {
      std::ostringstream bytes;
      core::write_checkpoint(system->snapshot(),
                             plan->via_v3 ? core::kCheckpointVersion
                                          : core::kShardedCheckpointVersion,
                             bytes);
      core::shard::ShardOptions resume_options;
      resume_options.shards = plan->resume_shards;
      resume_options.threaded = plan->resume_threaded;
      std::istringstream in(bytes.str());
      system = core::shard::ShardedRatingSystem::load(in, config,
                                                      resume_options);
      system->set_epoch_observer(observer);
    }
    system->submit(arrivals[i]);
  }
  system->flush();

  out.trust_digest = digest_trust(system->system().trust_store(), nullptr);
  std::ostringstream final_bytes;
  core::write_checkpoint(system->snapshot(), core::kCheckpointVersion,
                         final_bytes);
  out.checkpoint = final_bytes.str();
  out.stats = system->ingest_stats();
  out.health = system->epoch_health();
  out.epochs_closed = system->epochs_closed();
  out.skipped_empty_epochs = system->skipped_empty_epochs();
  out.quarantine_size = system->quarantine().size();
  return out;
}

BatchOutcome run_batch_reference(const Scenario& scenario) {
  core::TrustEnhancedRatingSystem system(scenario.config);
  BatchOutcome out;

  std::unordered_map<ProductId, RatingSeries> pending;
  bool anchored = false;
  double epoch_start = 0.0;
  double last_time = 0.0;
  const double epoch_days = scenario.epoch_days;

  const auto close = [&](double epoch_end) {
    std::vector<core::ProductObservation> observations;
    observations.reserve(pending.size());
    for (auto& [product, series] : pending) {
      core::ProductObservation obs;
      obs.product = product;
      obs.t_start = epoch_start;
      obs.t_end = epoch_end;
      obs.ratings = std::move(series);
      observations.push_back(std::move(obs));
    }
    pending.clear();
    std::sort(observations.begin(), observations.end(),
              [](const core::ProductObservation& a,
                 const core::ProductObservation& b) {
                return a.product < b.product;
              });
    const core::EpochReport report = system.process_epoch(observations);
    out.epoch_digests.push_back(digest_report(report));
    epoch_start = epoch_end;
    ++out.epochs_processed;
  };

  for (const Rating& rating : scenario.ratings) {
    if (!anchored) {
      anchored = true;
      epoch_start = rating.time;
    }
    last_time = rating.time;
    // Same grid walk as StreamingRatingSystem::route /
    // fast_forward_empty_epochs, including the rounding guards — the two
    // loops must agree on which cell every rating lands in.
    while (rating.time >= epoch_start + epoch_days) {
      if (pending.empty()) {
        auto skip =
            static_cast<std::size_t>((rating.time - epoch_start) / epoch_days);
        epoch_start += static_cast<double>(skip) * epoch_days;
        while (epoch_start > rating.time) {
          epoch_start -= epoch_days;
          --skip;
        }
        while (rating.time >= epoch_start + epoch_days) {
          epoch_start += epoch_days;
          ++skip;
        }
        out.skipped_empty_epochs += skip;
        break;
      }
      close(epoch_start + epoch_days);
    }
    pending[rating.product].push_back(rating);
  }
  if (anchored && !pending.empty()) {
    close(std::max(last_time + 1e-9, epoch_start + epoch_days));
  }

  out.trust_digest = digest_trust(system.trust_store());
  return out;
}

std::string strip_ingest_noise(const std::string& checkpoint_text) {
  return rewrite_lines(
      checkpoint_text,
      [](std::istream& in, std::ostream& out, const std::string& line) {
        if (starts_with(line, "stats ")) {
          out << "stats -\n";
          return;
        }
        if (starts_with(line, "quarantine ")) {
          std::istringstream fields(line);
          std::string keyword;
          std::size_t count = 0;
          fields >> keyword >> count;
          std::string entry;
          for (std::size_t i = 0; i < count; ++i) std::getline(in, entry);
          out << "quarantine -\n";
          return;
        }
        // v3: the checksums over the stripped sections (and the whole file)
        // legitimately differ with the stripped content.
        if (starts_with(line, "crc stats ") || starts_with(line, "crc ingest ")) {
          std::istringstream fields(line);
          std::string keyword, name;
          fields >> keyword >> name;
          out << "crc " << name << " -\n";
          return;
        }
        if (starts_with(line, "filecrc ")) {
          out << "filecrc -\n";
          return;
        }
        out << line << '\n';
      });
}

std::string normalize_skipped_counter(const std::string& checkpoint_text) {
  return rewrite_lines(
      checkpoint_text,
      [](std::istream&, std::ostream& out, const std::string& line) {
        if (starts_with(line, "anchor ")) {
          std::istringstream fields(line);
          std::string keyword, anchored, epoch_start, last_time, closed,
              skipped, system_epochs;
          fields >> keyword >> anchored >> epoch_start >> last_time >> closed >>
              skipped >> system_epochs;
          out << "anchor " << anchored << ' ' << epoch_start << ' ' << last_time
              << ' ' << closed << " - " << system_epochs << '\n';
          return;
        }
        // v3: the anchor section's checksum (and the file's) move with the
        // normalized counter.
        if (starts_with(line, "crc anchor ")) {
          out << "crc anchor -\n";
          return;
        }
        if (starts_with(line, "filecrc ")) {
          out << "filecrc -\n";
          return;
        }
        out << line << '\n';
      });
}

std::string downconvert_checkpoint_v1(const std::string& checkpoint_text) {
  return rewrite_lines(
      checkpoint_text,
      [](std::istream& in, std::ostream& out, const std::string& line) {
        if (starts_with(line, "trustrate-checkpoint ")) {
          out << "trustrate-checkpoint 1\n";
          return;
        }
        if (starts_with(line, "anchor ")) {
          std::istringstream fields(line);
          std::string keyword, anchored, epoch_start, last_time, closed,
              skipped, system_epochs;
          fields >> keyword >> anchored >> epoch_start >> last_time >> closed >>
              skipped >> system_epochs;
          out << "anchor " << anchored << ' ' << epoch_start << ' ' << last_time
              << ' ' << closed << ' ' << system_epochs << '\n';
          return;
        }
        // v1 has no checksum lines and no quarantine detail token.
        if (starts_with(line, "crc ") || starts_with(line, "filecrc ")) {
          return;
        }
        if (starts_with(line, "quarantine ")) {
          std::istringstream fields(line);
          std::string keyword;
          std::size_t count = 0;
          fields >> keyword >> count;
          out << line << '\n';
          std::string entry;
          for (std::size_t i = 0; i < count; ++i) {
            std::getline(in, entry);
            const std::size_t last_space = entry.find_last_of(' ');
            out << entry.substr(0, last_space) << '\n';
          }
          return;
        }
        out << line << '\n';
      });
}

std::string repro_command(std::uint64_t seed) {
  return "TRUSTRATE_SEED=" + std::to_string(seed) +
         " ./tests/conformance_test --gtest_filter='Conformance.ReplaySeed'";
}

DifferentialResult run_differential(const Scenario& scenario) {
  DifferentialResult result;
  const auto fail = [&](const std::string& what) {
    result.ok = false;
    result.divergence = "seed " + std::to_string(scenario.seed) + " [" +
                        scenario.summary + "]: " + what +
                        "\n  repro: " + repro_command(scenario.seed);
    return result;
  };
  const auto compare_epochs = [&](const std::vector<std::string>& expected,
                                  const std::vector<std::string>& actual,
                                  const std::string& what)
      -> std::optional<std::string> {
    if (expected.size() != actual.size()) {
      return what + ": epoch count " + std::to_string(actual.size()) +
             " != " + std::to_string(expected.size());
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (expected[i] != actual[i]) {
        std::ostringstream msg;
        msg << what << ": epoch " << i << " report diverged (digest fnv "
            << std::hex << fnv1a(actual[i]) << " != " << fnv1a(expected[i])
            << ")";
        return msg.str();
      }
    }
    return std::nullopt;
  };

  const ArrivalPlan arrival_plan = make_arrivals(scenario);

  // 0. Generator self-check: the shadow-ingest reference must recover the
  // clean stream from the perturbed arrivals. A failure here means the
  // perturbation constructor or the shadow semantics drifted — either way
  // the scenario is not a valid oracle input.
  const ShadowIngestOutcome shadow =
      shadow_ingest(arrival_plan.arrivals, scenario.ingest);
  if (shadow.accepted_sorted != scenario.ratings) {
    return fail("shadow ingest did not recover the clean stream from the "
                "perturbed arrivals");
  }

  // 1. Serial streaming on the clean stream: the comparison baseline.
  const StreamOutcome base = run_stream(scenario, scenario.ratings, 1);

  // 2. Batch reference: an independent epoch partition driving the batch
  // pipeline directly.
  const BatchOutcome batch = run_batch_reference(scenario);
  if (const auto d = compare_epochs(batch.epoch_digests, base.epoch_digests,
                                    "streaming vs batch reference")) {
    return fail(*d);
  }
  if (batch.trust_digest != base.trust_digest) {
    return fail("streaming vs batch reference: trust records diverged");
  }
  if (batch.epochs_processed != base.epochs_closed) {
    return fail("streaming vs batch reference: epochs closed " +
                std::to_string(base.epochs_closed) + " != " +
                std::to_string(batch.epochs_processed));
  }
  if (batch.skipped_empty_epochs != base.skipped_empty_epochs) {
    return fail("streaming vs batch reference: skipped empty epochs " +
                std::to_string(base.skipped_empty_epochs) + " != " +
                std::to_string(batch.skipped_empty_epochs));
  }

  // 3. Parallel epoch engine at 2 and 4 workers: the whole checkpoint (all
  // trust evidence, retained series, counters) must be byte-identical.
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const StreamOutcome par = run_stream(scenario, scenario.ratings, workers);
    if (const auto d = compare_epochs(
            base.epoch_digests, par.epoch_digests,
            "workers=" + std::to_string(workers) + " vs serial")) {
      return fail(*d);
    }
    if (par.checkpoint != base.checkpoint) {
      return fail("workers=" + std::to_string(workers) +
                  " vs serial: final checkpoint bytes diverged");
    }
  }

  // 4. Perturbed arrivals through the real ingest layer: identical epochs
  // and trust, stats exactly as planned, state equal up to ingest noise.
  const StreamOutcome perturbed =
      run_stream(scenario, arrival_plan.arrivals, 1);
  if (const auto d = compare_epochs(base.epoch_digests,
                                    perturbed.epoch_digests,
                                    "perturbed vs clean arrivals")) {
    return fail(*d);
  }
  if (perturbed.trust_digest != base.trust_digest) {
    return fail("perturbed vs clean arrivals: trust records diverged");
  }
  if (strip_ingest_noise(perturbed.checkpoint) !=
      strip_ingest_noise(base.checkpoint)) {
    return fail("perturbed vs clean arrivals: checkpoint differs beyond "
                "ingest stats/quarantine");
  }
  if (perturbed.stats != shadow.stats) {
    return fail("perturbed ingest stats {" + stats_to_string(perturbed.stats) +
                "} != shadow reference {" + stats_to_string(shadow.stats) +
                "}");
  }
  const PerturbationPlan& plan = arrival_plan.plan;
  if (perturbed.stats.duplicates !=
      plan.retries.size() + plan.horizon_retries.size()) {
    return fail("perturbed ingest: duplicates " +
                std::to_string(perturbed.stats.duplicates) + " != planned " +
                std::to_string(plan.retries.size() +
                               plan.horizon_retries.size()));
  }
  if (perturbed.stats.dropped_late != plan.stale) {
    return fail("perturbed ingest: dropped_late " +
                std::to_string(perturbed.stats.dropped_late) +
                " != planned stale " + std::to_string(plan.stale));
  }
  if (perturbed.stats.malformed != plan.malformed) {
    return fail("perturbed ingest: malformed " +
                std::to_string(perturbed.stats.malformed) + " != planned " +
                std::to_string(plan.malformed));
  }
  if (perturbed.stats.reordered != plan.moves.size()) {
    return fail("perturbed ingest: reordered " +
                std::to_string(perturbed.stats.reordered) + " != planned " +
                std::to_string(plan.moves.size()));
  }
  if (perturbed.stats.quarantined !=
      perturbed.stats.dropped_late + perturbed.stats.malformed) {
    return fail("perturbed ingest: quarantined is not late + malformed");
  }
  const std::size_t expected_quarantine = std::min(
      perturbed.stats.quarantined, scenario.ingest.max_quarantine);
  if (perturbed.quarantine_size != expected_quarantine) {
    return fail("perturbed ingest: quarantine size " +
                std::to_string(perturbed.quarantine_size) +
                " != min(quarantined, cap) = " +
                std::to_string(expected_quarantine));
  }

  // 5. Mid-stream checkpoint/restore, resumed at a different worker count:
  // resume must equal rerun down to the final checkpoint bytes.
  const std::size_t cut = std::clamp<std::size_t>(
      static_cast<std::size_t>(scenario.checkpoint_cut *
                               static_cast<double>(scenario.ratings.size())),
      1, scenario.ratings.size() - 1);
  const CheckpointPlan resume_plan{cut, /*downconvert_v1=*/false,
                                  /*resume_workers=*/2};
  const StreamOutcome resumed =
      run_stream(scenario, scenario.ratings, 1, &resume_plan);
  if (const auto d = compare_epochs(base.epoch_digests, resumed.epoch_digests,
                                    "checkpoint-resumed vs uninterrupted")) {
    return fail(*d);
  }
  if (resumed.checkpoint != base.checkpoint) {
    return fail("checkpoint-resumed vs uninterrupted: final checkpoint bytes "
                "diverged");
  }

  // 6. v1 -> v2 checkpoint migration: a v1 restore loses only the skipped-
  // empty-epoch counter; everything else must match bit-for-bit.
  const CheckpointPlan migrate_plan{cut, /*downconvert_v1=*/true,
                                    /*resume_workers=*/1};
  const StreamOutcome migrated =
      run_stream(scenario, scenario.ratings, 1, &migrate_plan);
  if (const auto d = compare_epochs(base.epoch_digests, migrated.epoch_digests,
                                    "v1-migrated vs uninterrupted")) {
    return fail(*d);
  }
  if (migrated.trust_digest != base.trust_digest) {
    return fail("v1-migrated vs uninterrupted: trust records diverged");
  }
  if (normalize_skipped_counter(migrated.checkpoint) !=
      normalize_skipped_counter(base.checkpoint)) {
    return fail("v1-migrated vs uninterrupted: checkpoint differs beyond the "
                "skipped-empty-epoch counter");
  }

  // 7. Durable front-end (core/durable): the perturbed arrivals through the
  // WAL + atomic-checkpoint layer, with a mid-run on-disk checkpoint, then a
  // cold recovery (checkpoint restore + WAL replay). Both the live durable
  // run and the recovered one must match the in-memory run bit-for-bit.
  // fsync is off here for oracle speed; the sync paths and crash points are
  // the durability suite's job (testkit/crash.hpp, tests/durability_test).
  namespace fs = std::filesystem;
#ifndef _WIN32
  const std::string uniq = std::to_string(::getpid());
#else
  const std::string uniq = "w";
#endif
  const fs::path durable_dir =
      fs::temp_directory_path() /
      ("trustrate-oracle-" + uniq + "-" + std::to_string(scenario.seed));
  fs::remove_all(durable_dir);
  core::durable::DurableOptions durable_options;
  durable_options.fsync = core::durable::FsyncPolicy::kNone;
  std::string durable_live;
  {
    core::durable::DurableStream durable(durable_dir, scenario.config,
                                         scenario.epoch_days,
                                         scenario.retention_epochs,
                                         scenario.ingest, durable_options);
    for (std::size_t i = 0; i < arrival_plan.arrivals.size(); ++i) {
      durable.submit(arrival_plan.arrivals[i]);
      if (i == cut) durable.checkpoint();
    }
    durable.flush();
    std::ostringstream bytes;
    core::save_checkpoint(durable.stream(), bytes);
    durable_live = bytes.str();
  }
  if (durable_live != perturbed.checkpoint) {
    return fail("durable vs in-memory run: final checkpoint bytes diverged");
  }
  {
    core::durable::DurableStream recovered(durable_dir, scenario.config,
                                           scenario.epoch_days,
                                           scenario.retention_epochs,
                                           scenario.ingest, durable_options);
    std::ostringstream bytes;
    core::save_checkpoint(recovered.stream(), bytes);
    if (bytes.str() != perturbed.checkpoint) {
      return fail("durable recovery (checkpoint + WAL replay) vs in-memory "
                  "run: final checkpoint bytes diverged");
    }
    if (!recovered.recovery().loaded_checkpoint) {
      return fail("durable recovery did not restore the on-disk checkpoint");
    }
  }
  fs::remove_all(durable_dir);  // kept on failure as a repro artifact

  // 8. Incremental vs from-scratch AR estimation: the sliding covariance
  // estimator maintains lag-product columns and reduces them with the same
  // canonical kernel a fresh fit uses, so flipping the config bit must not
  // move a single bit of output — same epoch digests (which include
  // hexfloat window errors), same trust records, same checkpoint bytes.
  {
    Scenario flipped = scenario;
    flipped.config.ar.incremental = !scenario.config.ar.incremental;
    const StreamOutcome other = run_stream(flipped, scenario.ratings, 1);
    if (const auto d = compare_epochs(base.epoch_digests, other.epoch_digests,
                                      "incremental-flipped AR vs base")) {
      return fail(*d);
    }
    if (other.trust_digest != base.trust_digest) {
      return fail("incremental-flipped AR vs base: trust records diverged");
    }
    if (other.checkpoint != base.checkpoint) {
      return fail("incremental-flipped AR vs base: final checkpoint bytes "
                  "diverged");
    }
  }

  // 9. Sharded engine (core/shard): the product partition is layout, not
  // state — digests, trust, and the collapsed-v3 checkpoint must be
  // byte-identical at every shard count × worker count.
  const auto check_sharded = [&](const StreamOutcome& outcome,
                                 const std::string& what)
      -> std::optional<std::string> {
    if (const auto d =
            compare_epochs(base.epoch_digests, outcome.epoch_digests, what)) {
      return d;
    }
    if (outcome.trust_digest != base.trust_digest) {
      return what + ": trust records diverged";
    }
    if (outcome.checkpoint != base.checkpoint) {
      return what + ": collapsed-v3 checkpoint bytes diverged";
    }
    return std::nullopt;
  };
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
      const StreamOutcome sharded = run_sharded(
          scenario, scenario.ratings, shards, workers, /*threaded=*/false);
      if (const auto d = check_sharded(
              sharded, "sharded " + std::to_string(shards) + "x" +
                           std::to_string(workers) + " vs serial")) {
        return fail(*d);
      }
    }
  }
  {
    const StreamOutcome threaded = run_sharded(scenario, scenario.ratings,
                                               /*shards=*/3, /*workers=*/1,
                                               /*threaded=*/true);
    if (const auto d = check_sharded(threaded, "sharded threaded vs serial")) {
      return fail(*d);
    }
  }
  {
    // Mid-stream v4 checkpoint taken at 2 shards, resumed at 5 threaded —
    // the layout changes UNDER the cut and nothing may move.
    const ShardPlan reshard_plan{cut, /*resume_shards=*/5,
                                 /*resume_threaded=*/true, /*via_v3=*/false};
    const StreamOutcome resharded =
        run_sharded(scenario, scenario.ratings, /*shards=*/2, /*workers=*/1,
                    /*threaded=*/false, &reshard_plan);
    if (const auto d = check_sharded(
            resharded, "sharded 2->5 checkpoint-resumed vs serial")) {
      return fail(*d);
    }
  }
  {
    // v3 (pre-shard) checkpoint loaded into a sharded system: the
    // compatibility regression, cut mid-stream like path 5.
    const ShardPlan migrate_plan{cut, /*resume_shards=*/4,
                                 /*resume_threaded=*/false, /*via_v3=*/true};
    const StreamOutcome migrated =
        run_sharded(scenario, scenario.ratings, /*shards=*/1, /*workers=*/1,
                    /*threaded=*/false, &migrate_plan);
    if (const auto d = check_sharded(
            migrated, "v3-checkpoint-into-sharded vs serial")) {
      return fail(*d);
    }
  }
  // The perturbed arrivals through the sharded front door: the global
  // classifier must keep its verdicts (and the per-shard dead-letter
  // stores their merged order) independent of the layout.
  {
    const StreamOutcome sharded_perturbed = run_sharded(
        scenario, arrival_plan.arrivals, /*shards=*/4, /*workers=*/1,
        /*threaded=*/false);
    if (const auto d = compare_epochs(base.epoch_digests,
                                      sharded_perturbed.epoch_digests,
                                      "sharded perturbed vs serial")) {
      return fail(*d);
    }
    if (sharded_perturbed.stats != perturbed.stats) {
      return fail("sharded perturbed ingest stats {" +
                  stats_to_string(sharded_perturbed.stats) +
                  "} != plain perturbed {" + stats_to_string(perturbed.stats) +
                  "}");
    }
    if (strip_ingest_noise(sharded_perturbed.checkpoint) !=
        strip_ingest_noise(base.checkpoint)) {
      return fail("sharded perturbed vs serial: checkpoint differs beyond "
                  "ingest stats/quarantine");
    }
    // Quarantine caps are per shard (satellite 4): below the cap the merged
    // store equals the plain stream's; once the cap binds, sharding retains
    // at least as much (up to cap × shards), never less.
    if (perturbed.stats.quarantined <= scenario.ingest.max_quarantine) {
      if (sharded_perturbed.quarantine_size != perturbed.quarantine_size) {
        return fail("sharded perturbed: merged quarantine size " +
                    std::to_string(sharded_perturbed.quarantine_size) +
                    " != plain " + std::to_string(perturbed.quarantine_size));
      }
    } else if (sharded_perturbed.quarantine_size < perturbed.quarantine_size) {
      return fail("sharded perturbed: per-shard caps retained fewer dead "
                  "letters (" +
                  std::to_string(sharded_perturbed.quarantine_size) +
                  ") than the plain stream's global cap (" +
                  std::to_string(perturbed.quarantine_size) + ")");
    }
  }

  // 10. Supervised heal (DESIGN.md §15): the clean stream through the
  // THREADED sharded durable front-end with a seeded worker crash. The
  // stream must contain the crash as a ShardFailure, rebuild the engine
  // from checkpoint + per-shard WAL replay, retry the interrupted call,
  // and still land bitwise-identical to the fault-free serial run —
  // exactly-once comes from apply-then-log: a submission interrupted by
  // the failure was never logged, so replay omits it and the retry
  // re-applies it once. The injector latches after one shot, so the
  // healed replay does NOT re-fire. A cold reopen of the healed directory
  // must agree too.
  {
    const fs::path heal_dir =
        fs::temp_directory_path() /
        ("trustrate-oracle-heal-" + uniq + "-" + std::to_string(scenario.seed));
    fs::remove_all(heal_dir);
    ThreadFaultPlan fault_plan;
    fault_plan.shard = static_cast<std::size_t>(scenario.seed % 3);
    fault_plan.at_ordinal = 5 + scenario.seed % 7;
    fault_plan.kind = ThreadFaultKind::kThrow;
    ThreadFaultInjector injector(fault_plan);
    core::shard::ShardOptions heal_shards;
    heal_shards.shards = 3;
    heal_shards.threaded = true;
    heal_shards.event_hook = injector.hook();
    core::durable::ShardedDurableOptions heal_stream;
    heal_stream.fsync = core::durable::FsyncPolicy::kNone;
    heal_stream.heal_attempts = 2;
    std::string healed_checkpoint;
    {
      core::durable::ShardedDurableStream durable(
          heal_dir, scenario.config, heal_shards, scenario.epoch_days,
          scenario.retention_epochs, scenario.ingest, heal_stream);
      for (const Rating& r : scenario.ratings) durable.submit(r);
      durable.flush();
      if (injector.fired() && durable.supervision().heals == 0) {
        return fail("sharded heal: injected crash fired (" +
                    fault_plan.summary() + ") but the stream never healed");
      }
      if (digest_trust(durable.system().system().trust_store(), nullptr) !=
          base.trust_digest) {
        return fail("sharded heal vs serial: trust digest diverged");
      }
      std::ostringstream bytes;
      core::write_checkpoint(durable.system().snapshot(),
                             core::kCheckpointVersion, bytes);
      healed_checkpoint = bytes.str();
    }
    if (healed_checkpoint != base.checkpoint) {
      return fail("sharded heal vs serial: final checkpoint bytes diverged");
    }
    {
      core::shard::ShardOptions reopen_shards;
      reopen_shards.shards = 3;
      reopen_shards.threaded = true;
      core::durable::ShardedDurableStream reopened(
          heal_dir, scenario.config, reopen_shards, scenario.epoch_days,
          scenario.retention_epochs, scenario.ingest, heal_stream);
      std::ostringstream bytes;
      core::write_checkpoint(reopened.system().snapshot(),
                             core::kCheckpointVersion, bytes);
      if (bytes.str() != base.checkpoint) {
        return fail(
            "sharded heal cold reopen vs serial: checkpoint bytes diverged");
      }
    }
    fs::remove_all(heal_dir);  // kept on failure as a repro artifact
  }

  return result;
}

}  // namespace trustrate::testkit
