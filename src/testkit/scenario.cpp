#include "testkit/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <tuple>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace trustrate::testkit {
namespace {

/// Snaps t onto the kTimeGrid lattice (exact: grid is a power of two).
double to_grid(double t) { return std::floor(t / kTimeGrid) * kTimeGrid; }

struct Timeline {
  double t0 = 0.0;
  std::vector<double> span_starts;  ///< generator spans, one per "month"
  double epoch_days = 30.0;
  std::size_t gap_epochs = 0;
};

Timeline make_timeline(Rng& rng) {
  Timeline tl;
  const double choices[] = {10.0, 15.0, 30.0};
  tl.epoch_days = choices[rng.uniform_int(0, 2)];
  tl.t0 = to_grid(rng.uniform(3.0, 20.0));
  const std::size_t spans = static_cast<std::size_t>(rng.uniform_int(2, 4));
  // With probability ~0.4 a long fully-empty gap is inserted between two
  // spans, exercising the streaming empty-epoch fast-forward.
  std::size_t gap_after = spans;  // no gap
  if (rng.bernoulli(0.4) && spans >= 2) {
    tl.gap_epochs = static_cast<std::size_t>(rng.uniform_int(2, 30));
    gap_after = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(spans) - 1));
  }
  double t = tl.t0;
  for (std::size_t e = 0; e < spans; ++e) {
    if (e == gap_after) t += static_cast<double>(tl.gap_epochs) * tl.epoch_days;
    tl.span_starts.push_back(t);
    t += tl.epoch_days;
  }
  return tl;
}

AttackModel pick_attack(Rng& rng) {
  const double p = rng.uniform();
  if (p < 0.35) return AttackModel::kHonestBaseline;
  if (p < 0.60) return AttackModel::kBiasShift;
  if (p < 0.82) return AttackModel::kBurstCluster;
  return AttackModel::kChurnRecruits;
}

}  // namespace

const char* to_string(AttackModel model) {
  switch (model) {
    case AttackModel::kHonestBaseline: return "honest";
    case AttackModel::kBiasShift:      return "bias-shift";
    case AttackModel::kBurstCluster:   return "burst";
    case AttackModel::kChurnRecruits:  return "churn";
  }
  return "unknown";
}

Scenario make_scenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;

  // --- pipeline configuration (epoch_workers stays 1; the oracle varies it)
  s.config.filter.q = rng.bernoulli(0.5) ? 0.1 : 0.05;
  s.config.enable_filter = !rng.bernoulli(0.05);
  s.config.detector_on_filtered = !rng.bernoulli(0.1);
  if (rng.bernoulli(0.5)) {
    s.config.ar.window_days = 10.0;
    s.config.ar.step_days = 5.0;
  } else {
    s.config.ar.window_days = 8.0;
    s.config.ar.step_days = 4.0;
  }
  const double thresholds[] = {0.015, 0.02, 0.03};
  s.config.ar.error_threshold = thresholds[rng.uniform_int(0, 2)];
  s.config.b = rng.bernoulli(0.5) ? 1.0 : 5.0;
  s.config.forgetting = rng.bernoulli(0.3) ? 0.95 : 1.0;

  const Timeline tl = make_timeline(rng);
  s.epoch_days = tl.epoch_days;
  s.gap_epochs = tl.gap_epochs;
  s.retention_epochs = static_cast<std::size_t>(rng.uniform_int(1, 3));

  const double lateness[] = {0.0, 0.5, 2.0};
  s.ingest.max_lateness_days = lateness[rng.uniform_int(0, 2)];
  const std::size_t quarantine_caps[] = {4, 8, 1024};
  s.ingest.max_quarantine = quarantine_caps[rng.uniform_int(0, 2)];

  s.checkpoint_cut = rng.uniform(0.2, 0.8);

  // --- population
  const auto reliable = static_cast<RaterId>(rng.uniform_int(25, 90));
  const auto careless = static_cast<RaterId>(rng.uniform_int(10, 30));
  const std::size_t products = static_cast<std::size_t>(rng.uniform_int(2, 5));

  // --- per-product streams composing the attack models
  for (ProductId p = 0; p < products; ++p) {
    const AttackModel attack = pick_attack(rng);
    s.product_attacks.push_back(attack);
    const double quality = rng.uniform(0.35, 0.65);
    const double bias =
        (rng.bernoulli(0.5) ? 1.0 : -1.0) * rng.uniform(0.12, 0.2);
    const std::size_t burst_span = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(tl.span_starts.size()) - 1));

    for (std::size_t e = 0; e < tl.span_starts.size(); ++e) {
      const double span_start = tl.span_starts[e];
      // Honest + careless baseline traffic.
      const std::int64_t honest_n = rng.uniform_int(15, 45);
      for (std::int64_t k = 0; k < honest_n; ++k) {
        const auto rater =
            static_cast<RaterId>(rng.uniform_int(0, reliable + careless - 1));
        const double sigma = rater < reliable ? 0.2 : 0.3;
        Rating r;
        r.time = to_grid(span_start + rng.uniform(0.0, tl.epoch_days));
        r.value = quantize_unit(clamp_unit(rng.gaussian(quality, sigma)), 10, false);
        r.rater = rater;
        r.product = p;
        r.label = rater < reliable ? RatingLabel::kHonest : RatingLabel::kCareless;
        s.ratings.push_back(r);
      }

      // Attack traffic.
      if (attack == AttackModel::kBiasShift) {
        // Persistent shill pool spreading moderately biased ratings over
        // every span (the paper's strategy-2 flavor).
        const std::int64_t pool = 4 + static_cast<std::int64_t>(p) % 3 * 2;
        const std::int64_t shots = rng.uniform_int(3, 8);
        for (std::int64_t k = 0; k < shots; ++k) {
          Rating r;
          r.time = to_grid(span_start + rng.uniform(0.0, tl.epoch_days));
          r.value = clamp_unit(rng.gaussian(quality + bias, 0.05));
          r.rater = static_cast<RaterId>(100000 + 1000 * p +
                                         rng.uniform_int(0, pool - 1));
          r.product = p;
          r.label = RatingLabel::kCollaborative2;
          s.ratings.push_back(r);
        }
      } else if ((attack == AttackModel::kBurstCluster && e == burst_span) ||
                 attack == AttackModel::kChurnRecruits) {
        // Tight low-variance collusive burst; churn uses fresh identities
        // every span (whitewash), burst a single persistent campaign.
        const double burst_len = rng.uniform(2.0, 4.0);
        const double burst_at =
            span_start + rng.uniform(0.0, tl.epoch_days - burst_len);
        const std::int64_t m = rng.uniform_int(8, 18);
        const RaterId base =
            attack == AttackModel::kChurnRecruits
                ? static_cast<RaterId>(200000 + 10000 * p + 500 * e)
                : static_cast<RaterId>(150000 + 1000 * p);
        for (std::int64_t k = 0; k < m; ++k) {
          Rating r;
          r.time = to_grid(burst_at + rng.uniform(0.0, burst_len));
          r.value = clamp_unit(rng.gaussian(quality + bias, 0.02));
          r.rater = base + static_cast<RaterId>(k);
          r.product = p;
          r.label = RatingLabel::kCollaborative2;
          s.ratings.push_back(r);
        }
      }
    }
  }

  // Canonical clean stream: sorted, then strictly increasing times (bump
  // collisions by one grid step) so no downstream tie-break ever involves
  // rater or product IDs — the metamorphic relations rely on this.
  std::sort(s.ratings.begin(), s.ratings.end(),
            [](const Rating& a, const Rating& b) {
              return std::tie(a.time, a.rater, a.product) <
                     std::tie(b.time, b.rater, b.product);
            });
  for (std::size_t i = 1; i < s.ratings.size(); ++i) {
    if (s.ratings[i].time <= s.ratings[i - 1].time) {
      s.ratings[i].time = s.ratings[i - 1].time + kTimeGrid;
    }
  }

  // Exact watermark-boundary pairs: adjust a later rating's event time to
  // sit exactly max_lateness_days after an earlier one; make_arrivals then
  // delays the earlier rating to arrive right after it, hitting the
  // watermark with equality (must be accepted, not dropped late).
  if (s.ingest.max_lateness_days > 0.0 && s.ratings.size() > 8) {
    const double bound = s.ingest.max_lateness_days;
    std::vector<std::pair<std::size_t, std::size_t>> used;
    for (int attempt = 0; attempt < 3; ++attempt) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.ratings.size()) - 2));
      const double target = s.ratings[i].time + bound;
      const auto it = std::lower_bound(
          s.ratings.begin(), s.ratings.end(), target,
          [](const Rating& r, double t) { return r.time < t; });
      if (it == s.ratings.end()) continue;
      const auto j = static_cast<std::size_t>(it - s.ratings.begin());
      if (j <= i) continue;
      const bool overlaps = std::any_of(
          used.begin(), used.end(), [&](const auto& range) {
            return i <= range.second && range.first <= j;
          });
      if (overlaps) continue;
      s.ratings[j].time = target;  // keeps strict order: t[j-1] < target <= old t[j]
      s.at_bound_pairs.push_back({i, j, true});
      used.emplace_back(i, j);
    }
    std::sort(s.at_bound_pairs.begin(), s.at_bound_pairs.end(),
              [](const Displacement& a, const Displacement& b) {
                return a.from < b.from;
              });
  }

  std::ostringstream summary;
  summary << "products=" << products << " spans=" << tl.span_starts.size()
          << " epoch_days=" << tl.epoch_days << " gap=" << tl.gap_epochs
          << " lateness=" << s.ingest.max_lateness_days
          << " qcap=" << s.ingest.max_quarantine << " attacks=[";
  for (std::size_t p = 0; p < s.product_attacks.size(); ++p) {
    summary << (p ? "," : "") << to_string(s.product_attacks[p]);
  }
  summary << "] ratings=" << s.ratings.size();
  s.summary = summary.str();
  return s;
}

ArrivalPlan make_arrivals(const Scenario& scenario) {
  Rng rng(scenario.seed ^ 0xda3e39cb94b95bdbull);
  const RatingSeries& clean = scenario.ratings;
  const std::size_t n = clean.size();
  const double bound = scenario.ingest.max_lateness_days;

  ArrivalPlan out;
  out.plan.moves = scenario.at_bound_pairs;

  // Extra random in-bound displacements on index ranges disjoint from each
  // other and from the at-bound pairs, so at each displaced arrival the
  // maximum time seen so far is exactly the target rating's time.
  if (bound > 0.0) {
    auto reserved_end = [&](std::size_t i) -> std::size_t {
      for (const Displacement& d : scenario.at_bound_pairs) {
        if (i >= d.from && i <= d.to) return d.to + 1;
      }
      return i;
    };
    std::size_t i = 0;
    while (i + 1 < n) {
      const std::size_t skip = reserved_end(i);
      if (skip != i) { i = skip; continue; }
      if (rng.bernoulli(0.12)) {
        // Furthest in-bound target, stopping before the next reserved range.
        std::size_t j = i;
        while (j + 1 < n && clean[j + 1].time - clean[i].time <= bound &&
               reserved_end(j + 1) == j + 1) {
          ++j;
        }
        if (j > i) {
          const auto jj = static_cast<std::size_t>(rng.uniform_int(
              static_cast<std::int64_t>(i) + 1, static_cast<std::int64_t>(j)));
          out.plan.moves.push_back(
              {i, jj, clean[jj].time - clean[i].time == bound});
          i = jj + 1;
          continue;
        }
      }
      ++i;
    }
    std::sort(out.plan.moves.begin(), out.plan.moves.end(),
              [](const Displacement& a, const Displacement& b) {
                return a.from < b.from;
              });
  }

  // Arrival sequence with displacements applied; ranges are disjoint, so at
  // most one rating is in flight. clean_index tracks provenance (-1: junk).
  std::vector<std::pair<Rating, std::ptrdiff_t>> seq;
  seq.reserve(n + 16);
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (next < out.plan.moves.size() && out.plan.moves[next].from == i) {
      continue;  // held; emitted right after its target below
    }
    seq.emplace_back(clean[i], static_cast<std::ptrdiff_t>(i));
    if (next < out.plan.moves.size() && out.plan.moves[next].to == i) {
      const Displacement& d = out.plan.moves[next];
      seq.emplace_back(clean[d.from], static_cast<std::ptrdiff_t>(d.from));
      if (d.exactly_at_bound && rng.bernoulli(0.6)) {
        // Resubmission whose dedup key sits exactly on the horizon.
        seq.emplace_back(clean[d.from], -1);
        out.plan.horizon_retries.push_back(d.from);
      }
      ++next;
    }
  }

  // Client retries: verbatim resubmission immediately after the original.
  {
    std::vector<std::pair<Rating, std::ptrdiff_t>> with_retries;
    with_retries.reserve(seq.size() + 8);
    for (const auto& entry : seq) {
      with_retries.push_back(entry);
      if (entry.second >= 0 && rng.bernoulli(0.04)) {
        with_retries.emplace_back(entry.first, -1);
        out.plan.retries.push_back(static_cast<std::size_t>(entry.second));
      }
    }
    seq = std::move(with_retries);
  }

  // Stale junk (guaranteed behind the watermark at its arrival position)
  // and malformed junk. Both are guaranteed drops: the accepted rating set
  // stays exactly the clean stream.
  const auto stale_n = static_cast<std::size_t>(rng.uniform_int(0, 5));
  for (std::size_t k = 0; k < stale_n && !seq.empty(); ++k) {
    auto pos = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(seq.size())));
    double max_time = -std::numeric_limits<double>::infinity();
    for (std::size_t q = 0; q < pos; ++q) {
      const Rating& r = seq[q].first;
      if (std::isfinite(r.time) && std::isfinite(r.value) && r.value >= 0.0 &&
          r.value <= 1.0) {
        max_time = std::max(max_time, r.time);
      }
    }
    if (!std::isfinite(max_time)) continue;  // nothing accepted yet there
    Rating stale;
    stale.time = max_time - bound -
                 kTimeGrid * static_cast<double>(rng.uniform_int(1, 2000));
    stale.value = 0.5;
    stale.rater = static_cast<RaterId>(900100 + k);
    stale.product = 0;
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(pos), {stale, -1});
    ++out.plan.stale;
  }
  const auto malformed_n = static_cast<std::size_t>(rng.uniform_int(0, 5));
  for (std::size_t k = 0; k < malformed_n; ++k) {
    Rating junk;
    junk.rater = static_cast<RaterId>(900000 + k);
    junk.product = 0;
    junk.time = 1.0;
    switch (rng.uniform_int(0, 3)) {
      case 0: junk.value = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: junk.value = 1.5; break;
      case 2: junk.value = -0.25; break;
      default:
        junk.value = 0.5;
        junk.time = std::numeric_limits<double>::infinity();
        break;
    }
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seq.size())));
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(pos), {junk, -1});
    ++out.plan.malformed;
  }

  out.arrivals.reserve(seq.size());
  for (const auto& [rating, idx] : seq) out.arrivals.push_back(rating);
  return out;
}

ShadowIngestOutcome shadow_ingest(const RatingSeries& arrivals,
                                  const core::IngestConfig& config) {
  ShadowIngestOutcome out;
  core::IngestStats& st = out.stats;
  bool anchored = false;
  double max_time = 0.0;
  std::set<std::tuple<double, RaterId, ProductId, double>> seen;
  for (const Rating& r : arrivals) {
    ++st.submitted;
    if (!std::isfinite(r.time) || !std::isfinite(r.value) || r.value < 0.0 ||
        r.value > 1.0) {
      ++st.malformed;
      ++st.quarantined;
      continue;
    }
    if (anchored && r.time < max_time - config.max_lateness_days) {
      ++st.dropped_late;
      ++st.quarantined;
      continue;
    }
    if (!seen.insert({r.time, r.rater, r.product, r.value}).second) {
      ++st.duplicates;
      continue;
    }
    ++st.accepted;
    if (anchored && r.time < max_time) ++st.reordered;
    out.accepted_sorted.push_back(r);
    if (!anchored || r.time > max_time) {
      anchored = true;
      max_time = r.time;
    }
    const double mark = max_time - config.max_lateness_days;
    while (!seen.empty() && std::get<0>(*seen.begin()) < mark) {
      seen.erase(seen.begin());
    }
  }
  sort_by_time(out.accepted_sorted);
  return out;
}

}  // namespace trustrate::testkit
