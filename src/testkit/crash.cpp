#include "testkit/crash.hpp"

#include <sstream>

#include "core/checkpoint.hpp"
#include "core/durable/durable_stream.hpp"

namespace trustrate::testkit {
namespace {

using core::durable::CrashInjected;
using core::durable::CrashInjector;
using core::durable::DurableOptions;
using core::durable::DurableStream;

std::string final_checkpoint(const DurableStream& durable) {
  std::ostringstream bytes;
  core::save_checkpoint(durable.stream(), bytes);
  return bytes.str();
}

/// One client run from wherever `durable` stands to end-of-stream: the
/// resume cursor is acknowledged(), checkpoints ride on the ack count.
/// Returns the final checkpoint bytes; CrashInjected escapes to the caller.
std::string drive(DurableStream& durable, const RatingSeries& arrivals,
                  std::size_t checkpoint_every) {
  while (durable.acknowledged() < arrivals.size()) {
    durable.submit(arrivals[durable.acknowledged()]);
    if (checkpoint_every != 0 &&
        durable.acknowledged() % checkpoint_every == 0) {
      durable.checkpoint();
    }
  }
  durable.flush();
  durable.checkpoint();
  return final_checkpoint(durable);
}

}  // namespace

CrashSweepResult run_crash_sweep(const Scenario& scenario,
                                 const std::filesystem::path& dir,
                                 const CrashSweepOptions& options) {
  namespace fs = std::filesystem;
  CrashSweepResult result;
  const RatingSeries arrivals = make_arrivals(scenario).arrivals;
  fs::remove_all(dir);

  const auto fail = [&](std::uint64_t k, const std::string& what) {
    result.ok = false;
    result.divergence = "seed " + std::to_string(scenario.seed) + " [" +
                        scenario.summary + "] crash budget k=" +
                        std::to_string(k) + ": " + what;
    return result;
  };

  // Uninterrupted reference run; the unarmed injector counts the durable
  // bytes the full run produces, which bounds the sweep.
  std::string reference;
  {
    CrashInjector counter;
    DurableOptions ref_options;
    ref_options.fsync = options.fsync;
    ref_options.crash = &counter;
    DurableStream durable(dir / "ref", scenario.config, scenario.epoch_days,
                          scenario.retention_epochs, scenario.ingest,
                          ref_options);
    reference = drive(durable, arrivals, options.checkpoint_every);
    result.total_bytes = counter.total_written();
  }

  for (std::uint64_t k = options.first;; k += options.stride) {
    const bool past_end = k >= result.total_bytes;
    const fs::path run_dir = dir / ("k" + std::to_string(k));
    fs::remove_all(run_dir);

    CrashInjector injector;
    injector.arm(k);
    DurableOptions crash_options;
    crash_options.fsync = options.fsync;
    crash_options.crash = &injector;

    // Phase 1: run until the injector kills the "process" (or to the end
    // when k covers the whole run).
    std::uint64_t client_acked = 0;
    bool crashed = false;
    std::string outcome;
    try {
      DurableStream durable(run_dir, scenario.config, scenario.epoch_days,
                            scenario.retention_epochs, scenario.ingest,
                            crash_options);
      while (durable.acknowledged() < arrivals.size()) {
        durable.submit(arrivals[durable.acknowledged()]);
        client_acked = durable.acknowledged();
        if (options.checkpoint_every != 0 &&
            client_acked % options.checkpoint_every == 0) {
          durable.checkpoint();
        }
      }
      durable.flush();
      durable.checkpoint();
      outcome = final_checkpoint(durable);
    } catch (const CrashInjected&) {
      crashed = true;
    }

    if (!crashed) {
      ++result.clean_points;
      if (!past_end) {
        return fail(k, "budget below the run's durable bytes did not crash");
      }
      if (outcome != reference) {
        return fail(k, "outlived run's final checkpoint diverged");
      }
    } else {
      ++result.crash_points;
      // Phase 2: cold recovery, resume at the exactly-once cursor, finish.
      try {
        DurableOptions recover_options;
        recover_options.fsync = options.fsync;
        DurableStream durable(run_dir, scenario.config, scenario.epoch_days,
                              scenario.retention_epochs, scenario.ingest,
                              recover_options);
        if (durable.acknowledged() < client_acked) {
          return fail(k, "lost acknowledged ratings: client saw " +
                             std::to_string(client_acked) +
                             " acks, recovery restored " +
                             std::to_string(durable.acknowledged()));
        }
        // At most the one in-flight (never-acknowledged) submission may
        // have reached the log before the crash.
        if (durable.acknowledged() > client_acked + 1) {
          return fail(k, "recovered " +
                             std::to_string(durable.acknowledged()) +
                             " submissions but the client was only acked " +
                             std::to_string(client_acked));
        }
        if (drive(durable, arrivals, options.checkpoint_every) != reference) {
          return fail(k,
                      "recovered + resumed run's final checkpoint diverged "
                      "from the uninterrupted run");
        }
      } catch (const Error& e) {
        return fail(k, std::string("recovery threw: ") + e.what());
      }
    }
    fs::remove_all(run_dir);
    if (past_end) break;
  }

  fs::remove_all(dir);  // left behind on failure as a repro artifact
  return result;
}

}  // namespace trustrate::testkit
