#include "testkit/metamorphic.hpp"

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "testkit/oracle.hpp"

namespace trustrate::testkit {
namespace {

MetamorphicResult violation(const Scenario& scenario, const char* relation,
                            const std::string& what) {
  MetamorphicResult r;
  r.ok = false;
  r.violation = std::string(relation) + ": seed " +
                std::to_string(scenario.seed) + " [" + scenario.summary +
                "]: " + what + "\n  repro: " + repro_command(scenario.seed);
  return r;
}

/// Epoch-by-epoch + trust digest comparison between a base run and a
/// transformed run (whose digests were already mapped back).
std::optional<std::string> compare_runs(const StreamOutcome& base,
                                        const StreamOutcome& variant) {
  if (base.epoch_digests.size() != variant.epoch_digests.size()) {
    return "epoch count " + std::to_string(variant.epoch_digests.size()) +
           " != " + std::to_string(base.epoch_digests.size());
  }
  for (std::size_t i = 0; i < base.epoch_digests.size(); ++i) {
    if (base.epoch_digests[i] != variant.epoch_digests[i]) {
      return "epoch " + std::to_string(i) + " report diverged";
    }
  }
  if (base.trust_digest != variant.trust_digest) {
    return "trust records diverged";
  }
  return std::nullopt;
}

/// Random permutation of [0, n) via Fisher-Yates on the repo Rng (std::
/// shuffle's algorithm is implementation-defined; this one is pinned).
std::vector<std::size_t> permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

MetamorphicResult check_rater_relabel(const Scenario& scenario) {
  std::set<RaterId> distinct;
  for (const Rating& r : scenario.ratings) distinct.insert(r.rater);
  const std::vector<RaterId> raters(distinct.begin(), distinct.end());

  Rng rng(scenario.seed ^ 0x6a09e667f3bcc909ull);
  const std::vector<std::size_t> perm = permutation(raters.size(), rng);
  std::unordered_map<RaterId, RaterId> forward, inverse;
  for (std::size_t k = 0; k < raters.size(); ++k) {
    // Fresh ID range far above every generator-assigned ID, so the renaming
    // is a bijection with no accidental collisions.
    const auto relabeled = static_cast<RaterId>(0x20000000u + perm[k]);
    forward[raters[k]] = relabeled;
    inverse[relabeled] = raters[k];
  }

  Scenario variant = scenario;
  for (Rating& r : variant.ratings) r.rater = forward.at(r.rater);

  const StreamOutcome base = run_stream(scenario, scenario.ratings, 1);
  ReportDigestOptions options;
  options.rater_map = &inverse;
  const StreamOutcome mapped =
      run_stream(variant, variant.ratings, 1, nullptr, options, &inverse);
  if (const auto d = compare_runs(base, mapped)) {
    return violation(scenario, "rater-relabel", *d);
  }
  return {};
}

MetamorphicResult check_product_relabel(const Scenario& scenario) {
  const std::size_t products = scenario.product_attacks.size();
  Rng rng(scenario.seed ^ 0xbb67ae8584caa73bull);
  const std::vector<std::size_t> perm = permutation(products, rng);
  std::unordered_map<ProductId, ProductId> forward, inverse;
  for (std::size_t p = 0; p < products; ++p) {
    // A permuted dense range: relabeling reorders the epoch loop's
    // sorted-by-ID product sequence, which is exactly the point.
    const auto relabeled = static_cast<ProductId>(1000 + perm[p]);
    forward[static_cast<ProductId>(p)] = relabeled;
    inverse[relabeled] = static_cast<ProductId>(p);
  }

  Scenario variant = scenario;
  for (Rating& r : variant.ratings) r.product = forward.at(r.product);

  ReportDigestOptions base_options;
  base_options.canonical_product_order = true;
  const StreamOutcome base =
      run_stream(scenario, scenario.ratings, 1, nullptr, base_options);
  ReportDigestOptions mapped_options;
  mapped_options.canonical_product_order = true;
  mapped_options.product_map = &inverse;
  const StreamOutcome mapped =
      run_stream(variant, variant.ratings, 1, nullptr, mapped_options);
  if (const auto d = compare_runs(base, mapped)) {
    return violation(scenario, "product-relabel", *d);
  }
  return {};
}

MetamorphicResult check_time_shift(const Scenario& scenario) {
  Rng rng(scenario.seed ^ 0x3c6ef372fe94f82bull);
  // A power-of-two whole-day shift: every shifted event time is still an
  // exact multiple of kTimeGrid well inside double precision, so all
  // boundary arithmetic shifts exactly and no comparison flips.
  const double shift = 1024.0 * static_cast<double>(
                                    std::int64_t{1} << rng.uniform_int(0, 2));

  Scenario variant = scenario;
  for (Rating& r : variant.ratings) r.time += shift;

  ReportDigestOptions timeless;
  timeless.include_times = false;
  const StreamOutcome base =
      run_stream(scenario, scenario.ratings, 1, nullptr, timeless);
  const StreamOutcome shifted =
      run_stream(variant, variant.ratings, 1, nullptr, timeless);
  if (const auto d = compare_runs(base, shifted)) {
    return violation(scenario, "time-shift", *d);
  }
  if (base.skipped_empty_epochs != shifted.skipped_empty_epochs) {
    return violation(scenario, "time-shift",
                     "skipped empty epochs " +
                         std::to_string(shifted.skipped_empty_epochs) +
                         " != " + std::to_string(base.skipped_empty_epochs));
  }
  return {};
}

MetamorphicResult check_duplicate_idempotence(const Scenario& scenario) {
  RatingSeries doubled;
  doubled.reserve(scenario.ratings.size() * 2);
  for (const Rating& r : scenario.ratings) {
    doubled.push_back(r);
    doubled.push_back(r);
  }

  const StreamOutcome base = run_stream(scenario, scenario.ratings, 1);
  const StreamOutcome twice = run_stream(scenario, doubled, 1);
  if (const auto d = compare_runs(base, twice)) {
    return violation(scenario, "duplicate-idempotence", *d);
  }
  if (twice.stats.duplicates != scenario.ratings.size()) {
    return violation(scenario, "duplicate-idempotence",
                     "duplicate count " +
                         std::to_string(twice.stats.duplicates) + " != " +
                         std::to_string(scenario.ratings.size()));
  }
  if (strip_ingest_noise(twice.checkpoint) !=
      strip_ingest_noise(base.checkpoint)) {
    return violation(scenario, "duplicate-idempotence",
                     "checkpoint differs beyond ingest stats");
  }
  return {};
}

MetamorphicResult run_metamorphic(const Scenario& scenario) {
  if (MetamorphicResult r = check_rater_relabel(scenario); !r.ok) return r;
  if (MetamorphicResult r = check_product_relabel(scenario); !r.ok) return r;
  if (MetamorphicResult r = check_time_shift(scenario); !r.ok) return r;
  return check_duplicate_idempotence(scenario);
}

}  // namespace trustrate::testkit
