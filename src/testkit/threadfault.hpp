// Seeded thread-fault injection for the sharded pipeline (ISSUE 9): makes
// a chosen shard worker throw, stall, or slow down at a chosen event
// ordinal, so every supervision transition in DESIGN.md §15 — poison
// containment, watchdog stall classification, fail-stop, durable heal —
// is deterministically reachable from a test.
//
// The injector adapts onto ShardOptions::event_hook: the hook fires on
// the worker thread before each event, and the plan triggers exactly once
// (an atomic latch), so a healed pipeline that replays the same stream
// does NOT re-fire and runs to completion — which is precisely what the
// healed-vs-fault-free oracle (path 10) needs.
//
// Fault model (bounded by construction, so supervised shutdown provably
// terminates — the DESIGN.md §15 proof leans on this):
//
//  * kThrow — throws InjectedThreadFault; the worker's containment stashes
//    it, poisons the shard, and fail-stops the pipeline.
//  * kStall — spins in bounded 1ms slices, polling the watchdog's abort
//    flag; when aborted (the shard was classified stalled) it throws, so
//    the stall resolves through the same poison path. If the watchdog is
//    off or slower than `stall_slices`, the stall simply ends and the
//    worker continues unharmed.
//  * kSlow — sleeps a few slices once, then continues; no failure. The
//    watchdog must NOT fire (slowness is not a stall).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/shard/sharded_system.hpp"

namespace trustrate::testkit {

enum class ThreadFaultKind : std::uint8_t { kThrow, kStall, kSlow };

const char* to_string(ThreadFaultKind kind);

/// The exception an injected crash (or aborted stall) throws inside the
/// worker; supervision reports it through ShardFailure's message.
class InjectedThreadFault : public std::runtime_error {
 public:
  explicit InjectedThreadFault(const std::string& what)
      : std::runtime_error(what) {}
};

struct ThreadFaultPlan {
  std::size_t shard = 0;        ///< worker the fault lands on
  std::uint64_t at_ordinal = 0; ///< fires before this shard-local event
  ThreadFaultKind kind = ThreadFaultKind::kThrow;
  /// kStall/kSlow: bound in ~1ms slices (kStall polls abort every slice).
  std::uint64_t slices = 2000;

  /// Deterministic plan from a seed: same splitmix64 discipline as the
  /// I/O FaultPlan, so a date-seeded CI matrix replays exactly.
  static ThreadFaultPlan generate(std::uint64_t seed, std::size_t shards);

  std::string summary() const;
};

class ThreadFaultInjector {
 public:
  explicit ThreadFaultInjector(ThreadFaultPlan plan) : plan_(plan) {}

  /// The hook to install as ShardOptions::event_hook. The injector must
  /// outlive every system the hook is installed on.
  core::shard::ShardEventHook hook();

  const ThreadFaultPlan& plan() const { return plan_; }
  /// The fault has triggered (it triggers at most once).
  bool fired() const { return fired_.load(std::memory_order_acquire); }
  /// A kStall saw the watchdog's abort flag and threw.
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  ThreadFaultPlan plan_;
  std::atomic<bool> fired_{false};
  std::atomic<bool> aborted_{false};
};

}  // namespace trustrate::testkit
