#include "testkit/faults.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/durable/durable_stream.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"

namespace trustrate::testkit {
namespace {

using core::durable::CrashInjected;
using core::durable::CrashInjector;
using core::durable::DurabilityState;
using core::durable::DurableOptions;
using core::durable::DurableStream;
using core::durable::FaultInjector;
using core::durable::FaultPlan;
using core::durable::VirtualIoClock;

std::string state_digest(const DurableStream& durable) {
  std::ostringstream bytes;
  core::save_checkpoint(durable.stream(), bytes);
  return bytes.str();
}

/// The semantic audit record: detection-side events only. Durability
/// transitions (and other infrastructure events) legitimately differ
/// between a faulted and a fault-free run; the *detections* must not.
std::string detection_audit_digest(const obs::MemoryAuditSink& sink) {
  std::string out;
  for (const obs::AuditEvent& event : sink.snapshot()) {
    if (event.type > obs::AuditEventType::kDegradedEpoch) continue;
    out += obs::to_jsonl(event);
    out += '\n';
  }
  return out;
}

std::uint64_t count_of(const obs::MemoryAuditSink& sink,
                       obs::AuditEventType type) {
  return static_cast<std::uint64_t>(sink.of_type(type).size());
}

void write_artifact(const std::filesystem::path& path,
                    const obs::MemoryAuditSink& sink,
                    const std::string& divergence) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "{\"divergence\":\"" << divergence << "\"}\n";
  for (const obs::AuditEvent& event : sink.snapshot()) {
    out << obs::to_jsonl(event) << '\n';
  }
}

/// One client run from wherever `durable` stands to end-of-stream,
/// mirroring the crash sweep's drive loop. CrashInjected escapes.
void drive(DurableStream& durable, const RatingSeries& arrivals,
           std::size_t checkpoint_every) {
  while (durable.acknowledged() < arrivals.size()) {
    durable.submit(arrivals[durable.acknowledged()]);
    if (checkpoint_every != 0 &&
        durable.acknowledged() % checkpoint_every == 0) {
      durable.checkpoint();
    }
  }
  durable.flush();
  durable.checkpoint();
}

}  // namespace

FaultSweepResult run_fault_sweep(const Scenario& scenario,
                                 const std::filesystem::path& dir,
                                 const FaultSweepOptions& options) {
  namespace fs = std::filesystem;
  FaultSweepResult result;
  const RatingSeries arrivals = make_arrivals(scenario).arrivals;
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Fault-free reference: the digests every faulted run must converge to.
  // The empty-plan injector riding along injects nothing; it counts the
  // run's I/O ops so plan horizons can be clamped to ops the run actually
  // performs (a fault scheduled past end-of-run would never fire and the
  // plan could never heal).
  std::string reference_state;
  std::string reference_audit;
  FaultInjector sizing;
  {
    obs::MetricsRegistry metrics;
    obs::MemoryAuditSink audit(1 << 20);
    DurableOptions ref_options;
    ref_options.fsync = options.fsync;
    ref_options.faults = &sizing;
    ref_options.obs = {&metrics, nullptr, &audit};
    DurableStream durable(dir / "ref", scenario.config, scenario.epoch_days,
                          scenario.retention_epochs, scenario.ingest,
                          ref_options);
    drive(durable, arrivals, options.checkpoint_every);
    reference_state = state_digest(durable);
    reference_audit = detection_audit_digest(audit);
  }
  core::durable::FaultPlanOptions plan_options = options.plan;
  plan_options.horizon_ops =
      std::min<std::uint64_t>(plan_options.horizon_ops,
                              std::max<std::uint64_t>(
                                  8, sizing.ops(core::durable::IoOp::kWrite) *
                                         3 / 4));

  for (std::size_t i = 0; i < options.plans; ++i) {
    const std::uint64_t plan_seed =
        options.plan_seed_base + 1000003ull * scenario.seed + i;
    const FaultPlan plan = FaultPlan::generate(plan_seed, plan_options);

    const auto fail = [&](const obs::MemoryAuditSink& audit,
                          const std::string& what) {
      result.ok = false;
      result.divergence = "seed " + std::to_string(scenario.seed) + " [" +
                          scenario.summary + "] fault plan " +
                          std::to_string(plan_seed) + " (" + plan.summary() +
                          "): " + what;
      write_artifact(options.audit_artifact, audit, result.divergence);
      return result;
    };

    ++result.plans_run;

    if (!options.with_crashes) {
      const fs::path run_dir = dir / ("plan" + std::to_string(i));
      fs::remove_all(run_dir);
      FaultInjector injector(plan);
      VirtualIoClock clock;
      obs::MetricsRegistry metrics;
      obs::MemoryAuditSink audit(1 << 20);
      DurableOptions fault_options;
      fault_options.fsync = options.fsync;
      fault_options.faults = &injector;
      fault_options.io.clock = &clock;
      fault_options.heal_probe_every = options.heal_probe_every;
      fault_options.obs = {&metrics, nullptr, &audit};
      try {
        DurableStream durable(run_dir, scenario.config, scenario.epoch_days,
                              scenario.retention_epochs, scenario.ingest,
                              fault_options);
        drive(durable, arrivals, options.checkpoint_every);
        result.faults_injected += injector.injected();
        result.degradations +=
            count_of(audit, obs::AuditEventType::kDurabilityDegraded);
        result.heals +=
            count_of(audit, obs::AuditEventType::kDurabilityRestored);

        if (state_digest(durable) != reference_state) {
          return fail(audit, "final state diverged from the fault-free run");
        }
        if (detection_audit_digest(audit) != reference_audit) {
          return fail(audit,
                      "detection audit trail diverged from the fault-free run");
        }
        if (injector.exhausted()) {
          ++result.healed_plans;
          if (durable.durability_state() != DurabilityState::kDurable) {
            return fail(audit, "plan exhausted but the stream is still " +
                                   std::string(to_string(
                                       durable.durability_state())));
          }
          if (durable.durable_acknowledged() != durable.acknowledged()) {
            return fail(
                audit,
                "healed stream still excludes " +
                    std::to_string(durable.acknowledged() -
                                   durable.durable_acknowledged()) +
                    " acknowledged rating(s) from the durable cursor");
          }
          // The healed directory must rebuild the identical state cold.
          DurableStream reopened(run_dir, scenario.config, scenario.epoch_days,
                                 scenario.retention_epochs, scenario.ingest,
                                 DurableOptions{options.fsync});
          if (reopened.acknowledged() != durable.acknowledged() ||
              state_digest(reopened) != reference_state) {
            return fail(audit,
                        "cold re-open of the healed directory diverged");
          }
        }
      } catch (const Error& e) {
        obs::MemoryAuditSink empty(1);
        return fail(audit.recorded() > 0 ? audit : empty,
                    std::string("fault run threw: ") + e.what());
      }
      fs::remove_all(run_dir);
      continue;
    }

    // Composed mode: this plan's fault-only run sizes the crash sweep, then
    // every sampled budget kills the process mid-faulty-run and recovery
    // proceeds under the continuing plan.
    std::uint64_t total_bytes = 0;
    {
      const fs::path ref_dir = dir / ("plan" + std::to_string(i) + "-ref");
      fs::remove_all(ref_dir);
      FaultInjector injector(plan);
      VirtualIoClock clock;
      CrashInjector counter;  // unarmed: counts durable bytes
      DurableOptions fault_options;
      fault_options.fsync = options.fsync;
      fault_options.faults = &injector;
      fault_options.crash = &counter;
      fault_options.io.clock = &clock;
      fault_options.heal_probe_every = options.heal_probe_every;
      obs::MemoryAuditSink audit(1 << 20);
      try {
        DurableStream durable(ref_dir, scenario.config, scenario.epoch_days,
                              scenario.retention_epochs, scenario.ingest,
                              fault_options);
        drive(durable, arrivals, options.checkpoint_every);
        if (state_digest(durable) != reference_state) {
          return fail(audit, "fault-only composed reference diverged");
        }
      } catch (const Error& e) {
        return fail(audit, std::string("composed reference threw: ") + e.what());
      }
      total_bytes = counter.total_written();
      result.faults_injected += injector.injected();
      if (injector.exhausted()) ++result.healed_plans;
      fs::remove_all(ref_dir);
    }

    for (std::uint64_t k = options.crash_first;; k += options.crash_stride) {
      const bool past_end = k >= total_bytes;
      const fs::path run_dir =
          dir / ("plan" + std::to_string(i) + "-k" + std::to_string(k));
      fs::remove_all(run_dir);

      FaultInjector injector(plan);
      VirtualIoClock clock;
      CrashInjector crash;
      crash.arm(k);
      obs::MetricsRegistry metrics;
      obs::MemoryAuditSink audit(1 << 20);

      const auto fail_k = [&](const std::string& what) {
        return fail(audit, "crash budget k=" + std::to_string(k) + ": " + what);
      };

      DurableOptions crash_options;
      crash_options.fsync = options.fsync;
      crash_options.faults = &injector;
      crash_options.crash = &crash;
      crash_options.io.clock = &clock;
      crash_options.heal_probe_every = options.heal_probe_every;
      crash_options.obs = {&metrics, nullptr, &audit};

      std::uint64_t client_acked = 0;
      std::uint64_t client_durable = 0;
      bool crashed = false;
      std::string outcome;
      try {
        DurableStream durable(run_dir, scenario.config, scenario.epoch_days,
                              scenario.retention_epochs, scenario.ingest,
                              crash_options);
        while (durable.acknowledged() < arrivals.size()) {
          durable.submit(arrivals[durable.acknowledged()]);
          client_acked = durable.acknowledged();
          if (durable.durable_acknowledged() > client_durable) {
            client_durable = durable.durable_acknowledged();
          }
          if (options.checkpoint_every != 0 &&
              client_acked % options.checkpoint_every == 0) {
            durable.checkpoint();
            if (durable.durable_acknowledged() > client_durable) {
              client_durable = durable.durable_acknowledged();
            }
          }
        }
        durable.flush();
        durable.checkpoint();
        outcome = state_digest(durable);
      } catch (const CrashInjected&) {
        crashed = true;
      }

      if (!crashed) {
        ++result.clean_points;
        if (!past_end) {
          return fail_k("budget below the run's durable bytes did not crash");
        }
        if (outcome != reference_state) {
          return fail_k("outlived run's final state diverged");
        }
      } else {
        ++result.crash_points;
        // Cold recovery under the CONTINUING fault plan: the environment
        // does not heal just because the process died.
        try {
          DurableOptions recover_options;
          recover_options.fsync = options.fsync;
          recover_options.faults = &injector;
          recover_options.io.clock = &clock;
          recover_options.heal_probe_every = options.heal_probe_every;
          DurableStream durable(run_dir, scenario.config, scenario.epoch_days,
                                scenario.retention_epochs, scenario.ingest,
                                recover_options);
          if (durable.acknowledged() < client_durable) {
            return fail_k("lost durably-acknowledged ratings: client saw " +
                          std::to_string(client_durable) +
                          " durable acks, recovery restored " +
                          std::to_string(durable.acknowledged()));
          }
          if (durable.acknowledged() > client_acked + 1) {
            return fail_k("recovered " + std::to_string(durable.acknowledged()) +
                          " submissions but the client was only acked " +
                          std::to_string(client_acked));
          }
          drive(durable, arrivals, options.checkpoint_every);
          if (state_digest(durable) != reference_state) {
            return fail_k(
                "recovered + resumed run's final state diverged from the "
                "fault-free run");
          }
        } catch (const Error& e) {
          return fail_k(std::string("recovery threw: ") + e.what());
        }
      }
      fs::remove_all(run_dir);
      if (past_end) break;
    }
  }

  fs::remove_all(dir);  // left behind on failure as a repro artifact
  return result;
}

}  // namespace trustrate::testkit
