#include "detect/adaptive_threshold.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate::detect {

AdaptiveThresholdTracker::AdaptiveThresholdTracker(AdaptiveThresholdConfig config)
    : config_(config), mean_(config.initial_mean) {
  TRUSTRATE_EXPECTS(config_.ratio > 0.0 && config_.ratio < 1.0,
                    "ratio must be in (0, 1)");
  TRUSTRATE_EXPECTS(config_.alpha > 0.0 && config_.alpha <= 1.0,
                    "alpha must be in (0, 1]");
  TRUSTRATE_EXPECTS(config_.floor >= 0.0, "floor must be non-negative");
  TRUSTRATE_EXPECTS(config_.initial_mean > 0.0, "initial mean must be positive");
}

double AdaptiveThresholdTracker::threshold() const {
  return std::max(config_.floor, mean_ * config_.ratio);
}

bool AdaptiveThresholdTracker::observe(double error) {
  TRUSTRATE_EXPECTS(error >= 0.0, "window error must be non-negative");
  const bool clears = error >= threshold();
  if (clears) recalibrating_ = false;
  const bool absorb =
      observations_ < config_.warmup || clears || recalibrating_;
  if (absorb) {
    mean_ += config_.alpha * (error - mean_);
    ++observations_;
    consecutive_rejections_ = 0;
    return true;
  }
  if (++consecutive_rejections_ >= config_.recalibrate_after) {
    // Persistent low errors: treat as a population change, not a campaign.
    recalibrating_ = true;
    consecutive_rejections_ = 0;
  }
  return false;
}

}  // namespace trustrate::detect
