// Beta-function quantile filter (Whitby, Jøsang & Indulska 2004, the
// paper's ref. [4] and its Feature Extraction I).
//
// The kept ratings define a "majority opinion": a Beta distribution fitted
// to them by moments (the predictive distribution of a single rating). A
// rating is abnormal when it falls outside the [q, 1−q] quantile band of
// that distribution. Removal changes the majority, so the test can be
// iterated; the default is a single pass, matching the filter's role in
// the paper (it catches only far-from-majority ratings).
#pragma once

#include "detect/filter.hpp"
#include "obs/observability.hpp"

namespace trustrate::detect {

struct BetaFilterConfig {
  /// Sensitivity: fraction of each tail treated as abnormal (paper §IV
  /// uses 0.1). Must be in (0, 0.5).
  double q = 0.1;

  /// Below this many ratings the majority is statistically meaningless and
  /// the filter keeps everything.
  std::size_t min_ratings = 5;

  /// Number of filter passes (each pass refits the majority opinion to the
  /// survivors). One pass is the paper's operating point; more passes make
  /// the filter stricter.
  int max_iterations = 1;
};

class BetaQuantileFilter final : public RatingFilter {
 public:
  explicit BetaQuantileFilter(BetaFilterConfig config = {});

  FilterOutcome filter(const RatingSeries& series) const override;
  std::string name() const override { return "beta-quantile"; }

  const BetaFilterConfig& config() const { return config_; }

  /// Attaches metrics (per-call filter timing, removed-rating counter).
  /// Out-of-band: filter() outcomes are identical either way. Must not
  /// race filter(); the instruments themselves are thread-safe.
  void set_observability(const obs::Observability& o);

 private:
  FilterOutcome filter_impl(const RatingSeries& series) const;

  BetaFilterConfig config_;

  obs::Histogram* filter_seconds_ = nullptr;
  obs::Counter* ratings_filtered_ = nullptr;
};

}  // namespace trustrate::detect
