#include "detect/endorsement_filter.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace trustrate::detect {

EndorsementFilter::EndorsementFilter(EndorsementFilterConfig config)
    : config_(config) {
  TRUSTRATE_EXPECTS(config_.deviations > 0.0,
                    "endorsement filter deviations must be positive");
}

std::vector<double> EndorsementFilter::qualities(const RatingSeries& series) {
  const std::size_t n = series.size();
  std::vector<double> q(n, 1.0);
  if (n < 2) return q;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      acc += 1.0 - std::fabs(series[i].value - series[j].value);
    }
    q[i] = acc / static_cast<double>(n - 1);
  }
  return q;
}

FilterOutcome EndorsementFilter::filter(const RatingSeries& series) const {
  FilterOutcome out;
  if (series.size() < config_.min_ratings) {
    out.kept.resize(series.size());
    std::iota(out.kept.begin(), out.kept.end(), 0);
    return out;
  }
  const auto q = qualities(series);
  const auto summary = stats::summarize(q);
  const double cutoff = summary.mean - config_.deviations * summary.stddev;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (q[i] < cutoff) {
      out.removed.push_back(i);
    } else {
      out.kept.push_back(i);
    }
  }
  return out;
}

}  // namespace trustrate::detect
