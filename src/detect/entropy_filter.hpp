// Entropy-based unfair-rating filter (Weng, Miao & Goh 2006, the paper's
// ref. [5] — one of the baselines the paper argues fails against
// moderate-bias collaborative attacks).
//
// Ratings are processed in arrival order. The level distribution seen so
// far (Laplace-smoothed) has entropy H; a new rating whose inclusion
// *raises* the entropy by more than `threshold` is considered low-quality
// (it clashes with the accumulated opinion and adds uncertainty) and is
// filtered out. Agreeing ratings lower the entropy and always pass.
// Filtered ratings do not update the distribution.
#pragma once

#include "detect/filter.hpp"

namespace trustrate::detect {

struct EntropyFilterConfig {
  int levels = 10;             ///< discrete rating levels
  bool levels_include_zero = false;
  double threshold = 0.08;     ///< entropy increase (nats) marking a rating unfair
  std::size_t warmup = 10;     ///< ratings accepted unconditionally at start

  /// Number of most recent accepted ratings forming the reference
  /// distribution. Bounding the memory keeps the per-rating entropy change
  /// on a meaningful scale: with an unbounded history |dH| tends to zero
  /// and the filter goes inert.
  std::size_t memory = 50;
};

class EntropyFilter final : public RatingFilter {
 public:
  explicit EntropyFilter(EntropyFilterConfig config = {});

  FilterOutcome filter(const RatingSeries& series) const override;
  std::string name() const override { return "entropy"; }

  const EntropyFilterConfig& config() const { return config_; }

 private:
  /// Level index of a unit-interval value.
  int level_of(double value) const;

  EntropyFilterConfig config_;
};

}  // namespace trustrate::detect
