#include "detect/rate_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace trustrate::detect {

double poisson_upper_tail(double mean, std::size_t count) {
  TRUSTRATE_EXPECTS(mean >= 0.0, "Poisson mean must be non-negative");
  if (count == 0) return 1.0;
  if (mean <= 0.0) return 0.0;
  if (mean < 50.0) {
    // Exact: P(X >= c) = 1 - sum_{k < c} e^-m m^k / k!.
    double term = std::exp(-mean);
    double cdf = term;
    for (std::size_t k = 1; k < count; ++k) {
      term *= mean / static_cast<double>(k);
      cdf += term;
    }
    return std::max(1.0 - cdf, 0.0);
  }
  // Normal approximation with continuity correction.
  const double z =
      (static_cast<double>(count) - 0.5 - mean) / std::sqrt(mean);
  return 1.0 - stats::normal_cdf(z);
}

std::size_t RateAnomalyResult::anomalous_count() const {
  return static_cast<std::size_t>(
      std::count_if(windows.begin(), windows.end(),
                    [](const RateWindowReport& w) { return w.anomalous; }));
}

RateAnomalyDetector::RateAnomalyDetector(RateDetectorConfig config)
    : config_(config) {
  TRUSTRATE_EXPECTS(config_.window_days > 0.0 && config_.step_days > 0.0,
                    "window and step must be positive");
  TRUSTRATE_EXPECTS(config_.p_value > 0.0 && config_.p_value < 0.5,
                    "p-value must be in (0, 0.5)");
  TRUSTRATE_EXPECTS(config_.trim_fraction >= 0.0 && config_.trim_fraction < 1.0,
                    "trim fraction must be in [0, 1)");
}

RateAnomalyResult RateAnomalyDetector::analyze(const RatingSeries& series,
                                               double t0, double t1) const {
  TRUSTRATE_EXPECTS(is_time_sorted(series), "series must be time-sorted");
  TRUSTRATE_EXPECTS(t1 > t0, "analysis interval must be non-empty");
  RateAnomalyResult result;
  result.in_anomalous_window.assign(series.size(), false);

  const auto tiles =
      signal::make_time_windows(t0, t1, config_.window_days, config_.step_days);
  std::vector<double> counts;
  counts.reserve(tiles.size());
  for (const auto& tw : tiles) {
    RateWindowReport r;
    r.window = tw;
    const auto idx = signal::indices_in_window(series, tw);
    r.first = idx.begin;
    r.last = idx.end;
    counts.push_back(static_cast<double>(idx.size()));
    result.windows.push_back(r);
  }
  if (result.windows.empty()) return result;

  // Trimmed-mean baseline: drop the busiest windows so campaigns cannot
  // raise their own bar.
  std::vector<double> sorted(counts);
  std::sort(sorted.begin(), sorted.end());
  const auto keep = std::max<std::size_t>(
      1, sorted.size() - static_cast<std::size_t>(
                             config_.trim_fraction * static_cast<double>(sorted.size())));
  double sum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) sum += sorted[i];
  result.baseline_rate =
      std::max(sum / static_cast<double>(keep) / config_.window_days,
               config_.min_rate);

  const double expected = result.baseline_rate * config_.window_days;
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    RateWindowReport& r = result.windows[i];
    r.expected = expected;
    const auto count = static_cast<std::size_t>(counts[i]);
    if (poisson_upper_tail(expected, count) < config_.p_value) {
      r.anomalous = true;
      for (std::size_t k = r.first; k < r.last; ++k) {
        result.in_anomalous_window[k] = true;
      }
    }
  }
  return result;
}

}  // namespace trustrate::detect
