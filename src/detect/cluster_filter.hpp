// Clustering-based unfair-rating filter (inspired by Dellarocas 2000, the
// paper's ref. [3] — baseline).
//
// Rating values are split into two clusters by exact 1-D 2-means (optimal
// split point of the sorted values). When the clusters are well separated
// and one is a minority, the minority cluster is deemed unfair — the
// classic picture of a ballot-stuffing block far from the honest mass.
// Moderate-bias collaborative ratings overlap the honest cluster, so the
// split never separates them: the paper's argument for why this baseline
// fails against strategy 2.
#pragma once

#include "detect/filter.hpp"

namespace trustrate::detect {

struct ClusterFilterConfig {
  /// Minimum |mean(cluster A) − mean(cluster B)| for the split to count as
  /// two genuine opinions rather than noise.
  double min_separation = 0.3;

  /// The flagged cluster must hold at most this fraction of the ratings.
  double max_minority_fraction = 0.45;

  std::size_t min_ratings = 6;  ///< below this, keep everything
};

class ClusterFilter final : public RatingFilter {
 public:
  explicit ClusterFilter(ClusterFilterConfig config = {});

  FilterOutcome filter(const RatingSeries& series) const override;
  std::string name() const override { return "cluster"; }

  /// Exact 1-D 2-means: returns the threshold value such that values <=
  /// threshold form the low cluster, minimizing within-cluster sum of
  /// squares. Requires >= 2 values.
  static double optimal_split(std::vector<double> values);

 private:
  ClusterFilterConfig config_;
};

}  // namespace trustrate::detect
