#include "detect/ar_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trustrate::detect {

ArSuspicionDetector::ArSuspicionDetector(ArDetectorConfig config)
    : config_(config) {
  TRUSTRATE_EXPECTS(config_.order >= 1, "AR detector order must be >= 1");
  TRUSTRATE_EXPECTS(config_.error_threshold > 0.0 && config_.error_threshold <= 1.0,
                    "error threshold must be in (0, 1]");
  TRUSTRATE_EXPECTS(config_.scale > 0.0 && config_.scale <= 1.0,
                    "scale must be in (0, 1]");
  if (config_.count_based) {
    TRUSTRATE_EXPECTS(config_.window_count >= 1 && config_.step_count >= 1,
                      "count windows must be non-empty");
  } else {
    TRUSTRATE_EXPECTS(config_.window_days > 0.0 && config_.step_days > 0.0,
                      "time windows must have positive width and step");
  }
}

void ArSuspicionDetector::set_observability(const obs::Observability& o) {
  if (o.metrics == nullptr) {
    fit_seconds_ = nullptr;
    windows_evaluated_ = nullptr;
    windows_suspicious_ = nullptr;
    return;
  }
  fit_seconds_ = &o.metrics->histogram(
      "trustrate_ar_fit_seconds", obs::default_seconds_buckets(),
      "Per-window AR model fit wall time (Procedure 1)");
  windows_evaluated_ = &o.metrics->counter(
      "trustrate_ar_windows_evaluated_total",
      "AR windows with enough ratings for the normal equations");
  windows_suspicious_ = &o.metrics->counter(
      "trustrate_ar_windows_suspicious_total",
      "AR windows whose model error fell below the threshold");
}

double ArSuspicionDetector::window_error(std::span<const double> values) const {
  const signal::ArOptions options{.demean = config_.demean};
  signal::ArModel model;
  switch (config_.estimator) {
    case ArEstimator::kAutocorrelation:
      model = signal::fit_ar_autocorrelation(values, config_.order, options);
      break;
    case ArEstimator::kBurg:
      model = signal::fit_ar_burg(values, config_.order, options);
      break;
    case ArEstimator::kCovariance:
      model = signal::fit_ar_covariance(values, config_.order, options);
      break;
  }
  return config_.normalization == ErrorNormalization::kResidualVariance
             ? model.residual_variance()
             : model.normalized_error;
}

SuspicionResult ArSuspicionDetector::analyze(const RatingSeries& series,
                                             double t0, double t1) const {
  // The detector is shared across epoch-engine worker threads; per-thread
  // scratch keeps analyze() reentrant while still amortizing the buffers.
  static thread_local ArScratch scratch;
  SuspicionResult result;
  analyze_into(series, t0, t1, scratch, result);
  return result;
}

void ArSuspicionDetector::analyze_into(const RatingSeries& series, double t0,
                                       double t1, ArScratch& scratch,
                                       SuspicionResult& result) const {
  TRUSTRATE_EXPECTS(is_time_sorted(series), "series must be time-sorted");
  result.windows.clear();
  result.suspicion.clear();
  result.in_suspicious_window.assign(series.size(), false);

  const std::size_t needed = std::max<std::size_t>(
      config_.min_ratings, 2 * static_cast<std::size_t>(config_.order) + 1);

  // Build the window index ranges.
  if (config_.count_based) {
    signal::make_count_windows_into(series.size(), config_.window_count,
                                    config_.step_count, scratch.index_windows);
    for (const auto& iw : scratch.index_windows) {
      WindowReport r;
      r.first = iw.begin;
      r.last = iw.end;
      // Half-open span covering exactly the ratings in [first, last).
      r.window = {series[iw.begin].time,
                  std::nextafter(series[iw.end - 1].time,
                                 std::numeric_limits<double>::infinity())};
      result.windows.push_back(r);
    }
  } else if (t1 > t0) {
    signal::make_time_windows_into(t0, t1, config_.window_days,
                                   config_.step_days, scratch.time_windows);
    for (const auto& tw : scratch.time_windows) {
      WindowReport r;
      r.window = tw;
      const auto idx = signal::indices_in_window(series, tw);
      r.first = idx.begin;
      r.last = idx.end;
      result.windows.push_back(r);
    }
  }

  // The paper's operating point (covariance method, no demeaning) routes
  // through the canonical kernel: incrementally sliding the lag-product
  // state by default, or rebuilding it per window when config_.incremental
  // is off. Both arms execute identical arithmetic — the differential
  // oracle compares their digests bitwise. Demeaned / autocorrelation /
  // Burg fits stay on the legacy allocating estimators.
  const bool canonical =
      config_.estimator == ArEstimator::kCovariance && !config_.demean;
  const bool incremental = canonical && config_.incremental;
  if (incremental) {
    scratch.estimator.begin_series(
        config_.order, config_.count_based ? config_.window_count : 0);
  }

  // Procedure 1: evaluate windows in time order, accumulating C(i) with
  // per-rater *run* bookkeeping. A run is a streak of suspicious windows
  // in consecutive evaluated windows all containing the rater; within one
  // run the rater contributes the run's maximum level exactly once (the
  // max-level reading, see the header). When the rater was absent from the
  // preceding evaluated window the run is over, and the next suspicious
  // appearance credits its full level again — the old code kept the stale
  // level and credited only the delta, under-counting C(i). Tracking the
  // evaluated-window ordinal (not a 0.0-level sentinel) keeps "not seen
  // yet" distinct from a legitimate near-zero level.
  scratch.runs.clear();
  std::size_t eval_ordinal = 0;
  for (WindowReport& r : result.windows) {
    const std::size_t n = r.last - r.first;
    if (n < needed) continue;  // stays unevaluated, model_error stays NaN

    const std::uint64_t fit_start =
        fit_seconds_ != nullptr ? obs::monotonic_ns() : 0;
    if (incremental) {
      scratch.estimator.advance(series, r.first, r.last);
      const signal::CovFitStats stats = scratch.estimator.fit(scratch.workspace);
      r.model_error =
          config_.normalization == ErrorNormalization::kResidualVariance
              ? stats.residual_variance()
              : stats.normalized_error();
    } else {
      scratch.values.clear();
      for (std::size_t i = r.first; i < r.last; ++i) {
        scratch.values.push_back(series[i].value);
      }
      if (canonical) {
        const signal::CovFitStats stats =
            signal::fit_cov_scratch(scratch.values, config_.order, scratch.workspace);
        r.model_error =
            config_.normalization == ErrorNormalization::kResidualVariance
                ? stats.residual_variance()
                : stats.normalized_error();
      } else {
        r.model_error = window_error(scratch.values);
      }
    }
    if (fit_seconds_ != nullptr) {
      fit_seconds_->observe(
          static_cast<double>(obs::monotonic_ns() - fit_start) * 1e-9);
    }

    r.evaluated = true;
    if (windows_evaluated_ != nullptr) windows_evaluated_->add();
    const std::size_t ordinal = eval_ordinal++;
    if (r.model_error < config_.error_threshold) {
      r.suspicious = true;
      if (windows_suspicious_ != nullptr) windows_suspicious_->add();
      r.level = config_.scale * (1.0 - r.model_error / config_.error_threshold);

      for (std::size_t i = r.first; i < r.last; ++i) {
        result.in_suspicious_window[i] = true;
        const RaterId rater = series[i].rater;
        const bool fresh = !scratch.runs.contains(rater);
        SuspicionRun& run = scratch.runs[rater];
        if (!fresh && run.window == ordinal) continue;  // already credited here
        if (fresh || run.window + 1 != ordinal) {
          // New run: the rater was absent from the preceding evaluated
          // window (or never seen) — credit the full level.
          result.suspicion[rater] += r.level;
          run.level = r.level;
        } else if (r.level > run.level) {
          // Run continues: top up to the new running maximum.
          result.suspicion[rater] += r.level - run.level;
          run.level = r.level;
        }
        run.window = ordinal;
      }
    }
  }
}

std::size_t SuspicionResult::suspicious_count() const {
  return static_cast<std::size_t>(
      std::count_if(windows.begin(), windows.end(),
                    [](const WindowReport& w) { return w.suspicious; }));
}

}  // namespace trustrate::detect
