#include "detect/ar_detector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate::detect {

ArSuspicionDetector::ArSuspicionDetector(ArDetectorConfig config)
    : config_(config) {
  TRUSTRATE_EXPECTS(config_.order >= 1, "AR detector order must be >= 1");
  TRUSTRATE_EXPECTS(config_.error_threshold > 0.0 && config_.error_threshold <= 1.0,
                    "error threshold must be in (0, 1]");
  TRUSTRATE_EXPECTS(config_.scale > 0.0 && config_.scale <= 1.0,
                    "scale must be in (0, 1]");
  if (config_.count_based) {
    TRUSTRATE_EXPECTS(config_.window_count >= 1 && config_.step_count >= 1,
                      "count windows must be non-empty");
  } else {
    TRUSTRATE_EXPECTS(config_.window_days > 0.0 && config_.step_days > 0.0,
                      "time windows must have positive width and step");
  }
}

void ArSuspicionDetector::set_observability(const obs::Observability& o) {
  if (o.metrics == nullptr) {
    fit_seconds_ = nullptr;
    windows_evaluated_ = nullptr;
    windows_suspicious_ = nullptr;
    return;
  }
  fit_seconds_ = &o.metrics->histogram(
      "trustrate_ar_fit_seconds", obs::default_seconds_buckets(),
      "Per-window AR model fit wall time (Procedure 1)");
  windows_evaluated_ = &o.metrics->counter(
      "trustrate_ar_windows_evaluated_total",
      "AR windows with enough ratings for the normal equations");
  windows_suspicious_ = &o.metrics->counter(
      "trustrate_ar_windows_suspicious_total",
      "AR windows whose model error fell below the threshold");
}

double ArSuspicionDetector::window_error(std::span<const double> values) const {
  const signal::ArOptions options{.demean = config_.demean};
  signal::ArModel model;
  switch (config_.estimator) {
    case ArEstimator::kAutocorrelation:
      model = signal::fit_ar_autocorrelation(values, config_.order, options);
      break;
    case ArEstimator::kBurg:
      model = signal::fit_ar_burg(values, config_.order, options);
      break;
    case ArEstimator::kCovariance:
      model = signal::fit_ar_covariance(values, config_.order, options);
      break;
  }
  return config_.normalization == ErrorNormalization::kResidualVariance
             ? model.residual_variance()
             : model.normalized_error;
}

SuspicionResult ArSuspicionDetector::analyze(const RatingSeries& series,
                                             double t0, double t1) const {
  TRUSTRATE_EXPECTS(is_time_sorted(series), "series must be time-sorted");
  SuspicionResult result;
  result.in_suspicious_window.assign(series.size(), false);

  const std::size_t needed = std::max<std::size_t>(
      config_.min_ratings, 2 * static_cast<std::size_t>(config_.order) + 1);

  // Build the window index ranges.
  std::vector<WindowReport> reports;
  if (config_.count_based) {
    for (const auto& iw : signal::make_count_windows(
             series.size(), config_.window_count, config_.step_count)) {
      WindowReport r;
      r.first = iw.begin;
      r.last = iw.end;
      r.window = {series[iw.begin].time,
                  series[iw.end - 1].time};  // informational span
      reports.push_back(r);
    }
  } else if (t1 > t0) {
    for (const auto& tw :
         signal::make_time_windows(t0, t1, config_.window_days, config_.step_days)) {
      WindowReport r;
      r.window = tw;
      const auto idx = signal::indices_in_window(series, tw);
      r.first = idx.begin;
      r.last = idx.end;
      reports.push_back(r);
    }
  }

  // Procedure 1: evaluate windows in time order, accumulating C(i) with
  // per-rater *run* bookkeeping. A run is a streak of suspicious windows
  // in consecutive evaluated windows all containing the rater; within one
  // run the rater contributes the run's maximum level exactly once (the
  // max-level reading, see the header). When the rater was absent from the
  // preceding evaluated window the run is over, and the next suspicious
  // appearance credits its full level again — the old code kept the stale
  // level and credited only the delta, under-counting C(i). Tracking the
  // evaluated-window ordinal (not a 0.0-level sentinel) keeps "not seen
  // yet" distinct from a legitimate near-zero level.
  struct RunState {
    std::size_t window = 0;  ///< evaluated-window ordinal of the last hit
    double level = 0.0;      ///< running maximum level of the current run
  };
  std::unordered_map<RaterId, RunState> runs;
  std::size_t eval_ordinal = 0;
  for (WindowReport& r : reports) {
    const std::size_t n = r.last - r.first;
    if (n < needed) {
      result.windows.push_back(r);
      continue;
    }
    std::vector<double> values;
    values.reserve(n);
    for (std::size_t i = r.first; i < r.last; ++i) values.push_back(series[i].value);

    if (fit_seconds_ != nullptr) {
      const std::uint64_t fit_start = obs::monotonic_ns();
      r.model_error = window_error(values);
      fit_seconds_->observe(
          static_cast<double>(obs::monotonic_ns() - fit_start) * 1e-9);
    } else {
      r.model_error = window_error(values);
    }
    r.evaluated = true;
    if (windows_evaluated_ != nullptr) windows_evaluated_->add();
    const std::size_t ordinal = eval_ordinal++;
    if (r.model_error < config_.error_threshold) {
      r.suspicious = true;
      if (windows_suspicious_ != nullptr) windows_suspicious_->add();
      r.level = config_.scale * (1.0 - r.model_error / config_.error_threshold);

      for (std::size_t i = r.first; i < r.last; ++i) {
        result.in_suspicious_window[i] = true;
        const RaterId rater = series[i].rater;
        const auto [it, fresh] = runs.try_emplace(rater, RunState{ordinal, 0.0});
        RunState& run = it->second;
        if (!fresh && run.window == ordinal) continue;  // already credited here
        if (fresh || run.window + 1 != ordinal) {
          // New run: the rater was absent from the preceding evaluated
          // window (or never seen) — credit the full level.
          result.suspicion[rater] += r.level;
          run.level = r.level;
        } else if (r.level > run.level) {
          // Run continues: top up to the new running maximum.
          result.suspicion[rater] += r.level - run.level;
          run.level = r.level;
        }
        run.window = ordinal;
      }
    }
    result.windows.push_back(r);
  }
  return result;
}

std::size_t SuspicionResult::suspicious_count() const {
  return static_cast<std::size_t>(
      std::count_if(windows.begin(), windows.end(),
                    [](const WindowReport& w) { return w.suspicious; }));
}

}  // namespace trustrate::detect
