#include "detect/cusum_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace trustrate::detect {

std::size_t CusumResult::first_alarm() const {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].alarm) return i;
  }
  return points.size();
}

std::size_t CusumResult::alarm_count() const {
  return static_cast<std::size_t>(
      std::count_if(points.begin(), points.end(),
                    [](const CusumPoint& p) { return p.alarm; }));
}

CusumDetector::CusumDetector(CusumConfig config) : config_(config) {
  TRUSTRATE_EXPECTS(config_.k >= 0.0, "CUSUM slack must be non-negative");
  TRUSTRATE_EXPECTS(config_.h > 0.0, "CUSUM threshold must be positive");
  TRUSTRATE_EXPECTS(config_.warmup >= 2, "CUSUM warmup needs >= 2 ratings");
  TRUSTRATE_EXPECTS(config_.min_sigma > 0.0, "CUSUM min_sigma must be positive");
}

CusumResult CusumDetector::analyze(const RatingSeries& series) const {
  TRUSTRATE_EXPECTS(is_time_sorted(series), "series must be time-sorted");
  CusumResult result;
  result.points.resize(series.size());
  result.in_alarm.assign(series.size(), false);
  if (series.size() < config_.warmup) return result;

  // Reference statistics from the warmup prefix.
  std::vector<double> warmup_values;
  warmup_values.reserve(config_.warmup);
  for (std::size_t i = 0; i < config_.warmup; ++i) {
    warmup_values.push_back(series[i].value);
  }
  const auto summary = stats::summarize(warmup_values);
  result.mu0 = summary.mean;
  result.sigma0 = std::max(summary.stddev, config_.min_sigma);

  double upper = 0.0;
  double lower = 0.0;
  // Onset tracking: when an alarm fires, every rating since the last zero
  // of the breaching sum belongs to the detected shift.
  std::size_t upper_onset = config_.warmup;
  std::size_t lower_onset = config_.warmup;
  for (std::size_t i = config_.warmup; i < series.size(); ++i) {
    const double z = (series[i].value - result.mu0) / result.sigma0;
    const double upper_next = std::max(0.0, upper + z - config_.k);
    const double lower_next = std::max(0.0, lower - z - config_.k);
    if (upper == 0.0 && upper_next > 0.0) upper_onset = i;
    if (lower == 0.0 && lower_next > 0.0) lower_onset = i;
    upper = upper_next;
    lower = lower_next;
    CusumPoint& p = result.points[i];
    p.upper = upper;
    p.lower = lower;
    if (upper > config_.h || lower > config_.h) {
      p.alarm = true;
      std::size_t onset = upper > config_.h ? upper_onset : lower_onset;
      if (i - onset > config_.max_backtrack) onset = i - config_.max_backtrack;
      for (std::size_t k = onset; k <= i; ++k) result.in_alarm[k] = true;
      upper = 0.0;  // restart after an alarm
      lower = 0.0;
      upper_onset = i + 1;
      lower_onset = i + 1;
    }
  }
  return result;
}

}  // namespace trustrate::detect
